# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); the bench target records the micro-benchmark
# numbers the evaluation-kernel work is measured by (EXPERIMENTS.md).

GO ?= go
# Restrict with e.g. `make bench BENCH=BenchmarkMicro` for a faster run.
BENCH ?= .

.PHONY: build test race bench bench-micro

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep with allocation counts, teed into BENCH_kernel.json
# so before/after kernel comparisons have a durable artifact.
bench:
	$(GO) test -bench $(BENCH) -benchmem -run '^$$' | tee BENCH_kernel.json

# The smoke variant CI runs: every micro benchmark once, allocations shown.
bench-micro:
	$(GO) test -bench BenchmarkMicro -benchmem -benchtime 1x -run '^$$' ./...
