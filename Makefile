# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); the bench target records the micro-benchmark
# numbers the evaluation-kernel work is measured by (EXPERIMENTS.md).

GO ?= go
# Restrict with e.g. `make bench BENCH=BenchmarkMicro` for a faster run.
BENCH ?= .

# Build identity stamped into every binary (qfe_build_info, /stats,
# /cluster/stats). Overridable: `make build VERSION=v1.2.3`.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -ldflags "-X qfe/internal/obs.Version=$(VERSION) -X qfe/internal/obs.Commit=$(COMMIT)"

.PHONY: build test race test-parallel bench bench-micro bench-batch bench-guard sim sim-smoke chaos chaos-smoke fault-smoke cluster cluster-smoke metrics-smoke

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The worker-count determinism matrix and race-stress tests with GOMAXPROCS
# pinned above the core count (oversubscription maximises interleavings) —
# the same command the CI parallel-determinism job runs.
test-parallel:
	GOMAXPROCS=8 $(GO) test -race -count=2 \
		-run 'Parallel|Concurrent|Steal|Block|Degenerate|GetBatch' ./...

# Full benchmark sweep with allocation counts, teed into BENCH_batch.json —
# the durable artifact of the columnar batch-engine PR (BENCH_kernel.json
# remains the PR 3 hash-kernel record).
bench:
	$(GO) test -bench $(BENCH) -benchmem -run '^$$' | tee BENCH_batch.json

# The smoke variant CI runs: every micro benchmark once, allocations shown.
bench-micro:
	$(GO) test -bench BenchmarkMicro -benchmem -benchtime 1x -run '^$$' ./...

# Focused batch-engine benchmarks: the shared-scan evaluator against the
# scalar reference, plus the two acceptance gates.
bench-batch:
	$(GO) test -bench 'BenchmarkMicroBatchEval|BenchmarkMicroFullSession|BenchmarkMicroAlg4Parallelism' \
		-benchmem -run '^$$' .

# Benchmark gates (CI): fail when MicroFullSession allocs/op exceeds the
# recorded BENCH_baseline.txt by more than 20%, or (on hosts with >= 8
# cores) when the parallel session / Algorithm 4 benchmarks miss their
# speedup ratios. Refresh the allocation baseline after an intentional
# change with scripts/bench_guard.sh --record.
bench-guard:
	./scripts/bench_guard.sh

# Small seeded simulation gate (CI): generate a corpus, drive every scenario
# through a full QFE session under target feedback, and fail on any
# invariant violation or non-convergence. ~30s ceiling on one core.
sim-smoke:
	$(GO) run ./cmd/qfe-sim generate -n 25 -seed 7 -out /tmp/qfe-sim-smoke.jsonl
	$(GO) run ./cmd/qfe-sim run -corpus /tmp/qfe-sim-smoke.jsonl -policy target \
		-fresh 1 -require-converge 1.0 -report /tmp/qfe-sim-smoke-report.json

# Full simulation benchmark: the 100-scenario corpus of EXPERIMENTS.md,
# recorded as BENCH_sim.json (deterministic modulo the timing block).
sim:
	$(GO) run ./cmd/qfe-sim generate -n 100 -seed 1 -out corpus_sim.jsonl
	$(GO) run ./cmd/qfe-sim run -corpus corpus_sim.jsonl -policy target \
		-fresh 2 -require-converge 0.95 -report BENCH_sim.json

# Crash-recovery chaos gate (CI): SIGKILL a live qfe-server mid-round a few
# times and fail on any lost acknowledged session, outcome mismatch against
# an uninterrupted reference pass, or session error (DESIGN.md §11).
chaos-smoke:
	$(GO) build -o /tmp/qfe-server ./cmd/qfe-server
	$(GO) run ./cmd/qfe-sim generate -n 12 -seed 7 -out /tmp/qfe-chaos-smoke.jsonl
	$(GO) run ./cmd/qfe-sim chaos -corpus /tmp/qfe-chaos-smoke.jsonl \
		-server-bin /tmp/qfe-server -sessions 24 -workers 4 -kills 3 -seed 7 \
		-report /tmp/qfe-chaos-smoke-report.json

# Fault-injection gate (CI): the chaos harness plus a seeded deterministic
# fault schedule — torn write, EIO, an ENOSPC window (degraded read-only
# mode + auto-recovery), an fsync stall, an inbound partition, injected
# latency and a dropped response — on top of the SIGKILLs. Fails on any
# lost acknowledged session or outcome mismatch, and on vacuity: the run
# must observe injected WAL append errors and a degraded-mode round trip
# (DESIGN.md §14).
fault-smoke:
	$(GO) build -o /tmp/qfe-server ./cmd/qfe-server
	$(GO) run ./cmd/qfe-sim generate -n 12 -seed 7 -out /tmp/qfe-chaos-smoke.jsonl
	$(GO) run ./cmd/qfe-sim chaos -corpus /tmp/qfe-chaos-smoke.jsonl \
		-server-bin /tmp/qfe-server -sessions 24 -workers 4 -kills 2 -seed 7 \
		-fault-schedule seed:7 \
		-report /tmp/qfe-fault-smoke-report.json

# Full chaos run recorded as BENCH_chaos.json (EXPERIMENTS.md): 80 sessions
# (>=50 complete after skipping non-reproducible scenarios), 6 SIGKILL+
# restart cycles at progress-randomized points, plus the seeded fault
# schedule (torn write, EIO, ENOSPC degraded-mode window, fsync stall,
# partition, latency, response drop) injected throughout the kill pass.
chaos:
	$(GO) build -o /tmp/qfe-server ./cmd/qfe-server
	$(GO) run ./cmd/qfe-sim generate -n 20 -seed 1 -out corpus_chaos.jsonl
	$(GO) run ./cmd/qfe-sim chaos -corpus corpus_chaos.jsonl \
		-server-bin /tmp/qfe-server -sessions 80 -workers 8 -kills 6 -seed 1 \
		-fault-schedule seed:1 \
		-report BENCH_chaos.json

# Cluster failover gate (CI): 3 qfe-server workers behind qfe-router; one
# worker is SIGKILLed mid-run and never restarted — the router must fence
# it, hand its WAL estate to the survivors, and reassign its hash range
# with zero lost acknowledged sessions and outcomes identical to a
# single-node reference pass (DESIGN.md §12).
cluster-smoke:
	$(GO) build -o /tmp/qfe-server ./cmd/qfe-server
	$(GO) build -o /tmp/qfe-router ./cmd/qfe-router
	$(GO) run ./cmd/qfe-sim generate -n 12 -seed 7 -out /tmp/qfe-cluster-smoke.jsonl
	$(GO) run ./cmd/qfe-sim chaos -corpus /tmp/qfe-cluster-smoke.jsonl \
		-server-bin /tmp/qfe-server -router-bin /tmp/qfe-router \
		-cluster 3 -sessions 24 -workers 4 -kills 1 -seed 7 \
		-report /tmp/qfe-cluster-smoke-report.json

# Full cluster chaos run recorded as BENCH_cluster.json (EXPERIMENTS.md):
# router + 3 workers, 2 of the 3 SIGKILLed at progress-randomized points —
# the second death exercises chained failover (the estate list, including
# the first victim's, is re-adopted by the last survivor).
cluster:
	$(GO) build -o /tmp/qfe-server ./cmd/qfe-server
	$(GO) build -o /tmp/qfe-router ./cmd/qfe-router
	$(GO) run ./cmd/qfe-sim generate -n 20 -seed 1 -out corpus_chaos.jsonl
	$(GO) run ./cmd/qfe-sim chaos -corpus corpus_chaos.jsonl \
		-server-bin /tmp/qfe-server -router-bin /tmp/qfe-router \
		-cluster 3 -sessions 80 -workers 8 -kills 2 -seed 1 \
		-report BENCH_cluster.json

# Observability gate (CI): boot a 2-worker cluster behind the router, run
# real sessions, kill one worker, then scrape /metrics on the router and the
# surviving worker — fail unless the round-phase histograms, WAL fsync
# latency, evalcache counters and the failover counter are present and
# non-zero (DESIGN.md §13).
metrics-smoke:
	$(GO) build $(LDFLAGS) -o /tmp/qfe-server ./cmd/qfe-server
	$(GO) build $(LDFLAGS) -o /tmp/qfe-router ./cmd/qfe-router
	./scripts/metrics_smoke.sh /tmp/qfe-server /tmp/qfe-router
