package qfe

import (
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API on the paper's worked
// example: parse the intended query from SQL, generate candidates from the
// example pair, winnow with a target oracle, and check the survivor behaves
// like the target.
func TestFacadeEndToEnd(t *testing.T) {
	d, r := example11DB()

	target, err := ParseSQL("SELECT Employee.name FROM Employee WHERE Employee.salary > 4000")
	if err != nil {
		t.Fatal(err)
	}
	got, err := target.Evaluate(d)
	if err != nil || !got.BagEqual(r) {
		t.Fatalf("target should produce R: %v %v", got, err)
	}

	qc, err := GenerateCandidates(d, r, DefaultGenerateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qc) < 3 {
		t.Fatalf("only %d candidates", len(qc))
	}

	cfg := DefaultSessionConfig()
	cfg.Gen.Budget = Budget{MaxPairs: 100000}
	s, err := NewSession(d, r, qc, TargetOracle{Query: target}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || len(out.Remaining) == 0 {
		t.Fatalf("no outcome: %+v", out)
	}
	// Survivors must agree with the target on the original database.
	for _, q := range out.Remaining {
		res, err := q.Evaluate(d)
		if err != nil || !res.BagEqual(r) {
			t.Errorf("survivor %s diverges on D", q.Name)
		}
	}
}

func TestFacadeSQLRoundTrip(t *testing.T) {
	q, err := ParseSQL("SELECT DISTINCT a.x FROM a WHERE a.x IN (1, 2) OR a.y <= 'm'")
	if err != nil {
		t.Fatal(err)
	}
	sql := q.SQL()
	if !strings.Contains(sql, "DISTINCT") || !strings.Contains(sql, "IN (1, 2)") {
		t.Errorf("SQL = %q", sql)
	}
	q2, err := ParseSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint() != q2.Fingerprint() {
		t.Error("round trip changed the query")
	}
}

func TestFacadeEditDistance(t *testing.T) {
	a := NewRelation("a", NewSchema("x", KindInt)).Append(NewTuple(1), NewTuple(2))
	b := NewRelation("b", NewSchema("x", KindInt)).Append(NewTuple(1), NewTuple(3))
	if MinEdit(a, b) != 1 {
		t.Errorf("MinEdit = %d", MinEdit(a, b))
	}
	ops, cost := EditScript(a, b)
	if cost != 1 || len(ops) != 1 {
		t.Errorf("script = %v cost %d", ops, cost)
	}
	if FormatResultDelta(a, b) == "" {
		t.Error("delta rendering empty")
	}
}

func TestFacadeValuesAndRelations(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("numeric equality broken through facade")
	}
	rel := NewRelation("t", NewSchema("a", KindString))
	rel.Append(NewTuple("x"))
	var sb strings.Builder
	if err := WriteCSV(rel, &sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", strings.NewReader(sb.String()))
	if err != nil || !back.BagEqual(rel) {
		t.Errorf("csv round trip: %v %v", back, err)
	}
}
