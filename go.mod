module qfe

go 1.21
