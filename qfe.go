// Package qfe is a from-scratch Go implementation of Query From Examples
// (QFE) — "Query From Examples: An Iterative, Data-Driven Approach to Query
// Construction", Hao Li, Chee-Yong Chan, David Maier, PVLDB 8(13), 2015.
//
// QFE helps users who cannot write SQL construct select-project-join
// queries: the user supplies one example database-result pair (D, R); a
// query generator reverse-engineers candidate queries with Q(D) = R; QFE
// then winnows the candidates by showing the user minimally-modified
// databases D′ whose results distinguish them, until one query (or one
// class of provably indistinguishable queries) remains.
//
// The package re-exports the library's public surface:
//
//   - the relational substrate (Relation, Database, foreign-key joins),
//   - the SPJ query algebra and a SQL parser for it,
//   - the QBO-style candidate generator,
//   - the cost-model-driven database generator,
//   - feedback oracles (interactive, worst-case, target-following,
//     simulated user), and
//   - the Session driver implementing the paper's Algorithm 1.
//
// Quick start:
//
//	d := qfe.NewDatabase()
//	d.MustAddTable(employees)               // *qfe.Relation
//	qc, _ := qfe.GenerateCandidates(d, r, qfe.DefaultGenerateConfig())
//	s, _ := qfe.NewSession(d, r, qc, qfe.Interactive{In: os.Stdin, Out: os.Stdout}, qfe.DefaultSessionConfig())
//	out, _ := s.Run()
//	fmt.Println(out.Query.SQL())
//
// See examples/ for runnable programs and DESIGN.md for the paper-to-module
// map.
package qfe

import (
	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/editdist"
	"qfe/internal/evalcache"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
	"qfe/internal/relation"
	"qfe/internal/sqlx"
)

// Data model -----------------------------------------------------------------

// Kind enumerates cell value types.
type Kind = relation.Kind

// Value kinds.
const (
	KindNull   = relation.KindNull
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
	KindBool   = relation.KindBool
)

// Value is a typed cell value.
type Value = relation.Value

// Value constructors.
var (
	Null  = relation.Null
	Int   = relation.Int
	Float = relation.Float
	Str   = relation.Str
	Bool  = relation.Bool
)

// Column, Schema, Tuple and Relation form the relational substrate.
type (
	Column   = relation.Column
	Schema   = relation.Schema
	Tuple    = relation.Tuple
	Relation = relation.Relation
)

// NewSchema builds a schema from name/kind pairs.
var NewSchema = relation.NewSchema

// NewTuple builds a tuple from Go scalars.
var NewTuple = relation.NewTuple

// NewRelation creates an empty relation.
var NewRelation = relation.New

// ReadCSV and WriteCSV (de)serialise relations.
var (
	ReadCSV  = relation.ReadCSV
	WriteCSV = relation.WriteCSV
)

// Database --------------------------------------------------------------------

// Database is a set of relations with primary/foreign-key constraints.
type Database = db.Database

// CellEdit is a single attribute modification in a base table.
type CellEdit = db.CellEdit

// Joined is a foreign-key join with provenance (the paper's join index).
type Joined = db.Joined

// NewDatabase creates an empty database.
var NewDatabase = db.New

// Join computes the foreign-key join of the named tables; JoinAll joins
// every table.
var (
	Join    = db.Join
	JoinAll = db.JoinAll
)

// Queries ----------------------------------------------------------------------

// Query is an SPJ query π_ℓ(σ_p(J)) with a DNF predicate.
type Query = algebra.Query

// Term, Conjunct and Predicate build selection conditions programmatically.
type (
	Term      = algebra.Term
	Conjunct  = algebra.Conjunct
	Predicate = algebra.Predicate
)

// Op is a comparison operator.
type Op = algebra.Op

// Comparison operators.
const (
	OpEQ    = algebra.OpEQ
	OpNE    = algebra.OpNE
	OpLT    = algebra.OpLT
	OpLE    = algebra.OpLE
	OpGT    = algebra.OpGT
	OpGE    = algebra.OpGE
	OpIn    = algebra.OpIn
	OpNotIn = algebra.OpNotIn
)

// Term constructors.
var (
	NewTerm    = algebra.NewTerm
	NewSetTerm = algebra.NewSetTerm
)

// ParseSQL parses one SPJ SELECT statement into a Query (WHERE normalised
// to DNF).
var ParseSQL = sqlx.Parse

// Candidate generation -----------------------------------------------------------

// GenerateConfig bounds the QBO-style candidate search.
type GenerateConfig = qbo.Config

// DefaultGenerateConfig sizes the search to the paper's |QC| ≈ 19..64.
var DefaultGenerateConfig = qbo.DefaultConfig

// GenerateCandidates reverse-engineers SPJ queries with Q(D) = R.
var GenerateCandidates = qbo.Generate

// PerturbCandidates enlarges a candidate set by moving predicate constants
// within their active-domain gaps (§7.6).
var PerturbCandidates = qbo.PerturbConstants

// Feedback ------------------------------------------------------------------------

// Oracle chooses the correct result among the candidates' results on D′.
type Oracle = feedback.Oracle

// View is what one feedback round presents.
type View = feedback.View

// Built-in oracles.
type (
	// WorstCase always picks the largest candidate subset (§7's automation).
	WorstCase = feedback.WorstCase
	// TargetOracle follows a known target query.
	TargetOracle = feedback.Target
	// Interactive prompts a human on an io.Reader/Writer pair.
	Interactive = feedback.Interactive
	// SimulatedUser models a participant with a response-time model (§7.7).
	SimulatedUser = feedback.SimulatedUser
)

// NewSimulatedUser returns a participant with calibrated defaults.
var NewSimulatedUser = feedback.NewSimulatedUser

// Session (Algorithm 1) -------------------------------------------------------------

// SessionConfig tunes a QFE session (β, δ, search caps).
type SessionConfig = core.Config

// Session drives the iterative winnowing loop.
type Session = core.Session

// Outcome reports the identified query and per-round statistics.
type Outcome = core.Outcome

// IterationStats is one feedback round's statistics (paper Table 1).
type IterationStats = core.IterationStats

// GenOptions configures the Database Generator module (β, δ, strategy).
type GenOptions = dbgen.Options

// Budget bounds Algorithm 3's skyline enumeration (the paper's δ).
type Budget = dbgen.Budget

// Strategy selects the candidate-set ranking (cost model vs max-partitions).
type Strategy = dbgen.Strategy

// Strategies.
const (
	StrategyCostModel     = dbgen.StrategyCostModel
	StrategyMaxPartitions = dbgen.StrategyMaxPartitions
)

// DefaultSessionConfig returns the paper's defaults (β = 1, scaled δ), with
// the shared evaluation cache attached and Parallelism 0 (all cores). Set
// Config.Parallelism (or Gen.Parallelism) to 1 for the legacy serial path,
// and Gen.Cache to nil to disable result memoisation.
var DefaultSessionConfig = core.DefaultConfig

// NewSession validates inputs and prepares a session.
var NewSession = core.NewSession

// Step API --------------------------------------------------------------------

// Round is one suspended feedback round of the pausable session state
// machine: D' (as edits over D), the distinct candidate results and the
// query subsets producing them. Obtain rounds from Session.Start, resume
// with Session.Feedback(choice) — choice indexes Round.View.Results, or is
// NoneOfThese.
type Round = core.Round

// NoneOfThese is the Feedback choice for "no presented result is correct".
const NoneOfThese = core.NoneOfThese

// NewStepSession prepares a session driven through Start/Feedback without an
// oracle — the form services and custom UIs embed.
var NewStepSession = core.NewStepSession

// SessionSnapshot is the JSON-serializable state of a session (see
// internal/codec for the wire format). Session.Snapshot captures it;
// RestoreSession resumes it, mid-round, even in another process.
type SessionSnapshot = core.Snapshot

// RestoreSession rebuilds a session from a snapshot (oracle may be nil).
var RestoreSession = core.Restore

// UnmarshalSessionSnapshot parses a JSON-encoded snapshot.
var UnmarshalSessionSnapshot = core.UnmarshalSnapshot

// Evaluation cache ------------------------------------------------------------

// EvalCache memoises candidate evaluations across winnowing rounds and
// across sessions, keyed by (query fingerprint, data content hash). See
// internal/evalcache for the sharding and eviction details.
type EvalCache = evalcache.Cache

// EvalCacheStats is a snapshot of cache hit/miss/eviction counters.
type EvalCacheStats = evalcache.Stats

// NewEvalCache creates a size-bounded cache (maxEntries <= 0 selects the
// default capacity); DefaultEvalCache returns the process-wide cache the
// default configurations share.
var (
	NewEvalCache     = evalcache.New
	DefaultEvalCache = evalcache.Default
)

// Utilities ---------------------------------------------------------------------------

// MinEdit is the paper's relation edit distance (modify = 1,
// insert/delete = arity).
var MinEdit = editdist.MinEdit

// EditScript returns a minimum-cost edit script between two relations.
var EditScript = editdist.Script

// FormatEdits renders database modifications as boxed differences.
var FormatEdits = feedback.FormatEdits

// FormatResultDelta renders Δ(R, Rᵢ) as a minimal edit script.
var FormatResultDelta = feedback.FormatResultDelta
