#!/bin/sh
# Allocation-regression guard for the benchmark smoke step.
#
# Runs BenchmarkMicroFullSession with -benchmem and fails when allocs/op
# exceeds the recorded baseline (BENCH_baseline.txt) by more than the
# allowed headroom. Wall-clock is machine-dependent and not gated;
# allocations are deterministic modulo pool warm-up, which the headroom
# absorbs.
#
# Usage: scripts/bench_guard.sh [headroom_percent]
# Refresh the baseline after an intentional change with:
#   scripts/bench_guard.sh --record
set -e

cd "$(dirname "$0")/.."
BASELINE_FILE=BENCH_baseline.txt
HEADROOM="${1:-20}"

# -cpu 1 pins the measurement: allocs/op grows a few percent with
# GOMAXPROCS (per-worker scratch, per-P pools), so recorded baselines and
# CI runners must agree on the core count to be comparable.
OUT=$(go test -run '^$' -bench 'BenchmarkMicroFullSession$' -benchmem -benchtime 3x -cpu 1 .)
echo "$OUT"
ALLOCS=$(echo "$OUT" | awk '$1 ~ /^BenchmarkMicroFullSession/ {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
if [ -z "$ALLOCS" ]; then
    echo "bench_guard: could not parse allocs/op from benchmark output" >&2
    exit 2
fi

if [ "$HEADROOM" = "--record" ]; then
    echo "$ALLOCS" > "$BASELINE_FILE"
    echo "bench_guard: recorded baseline $ALLOCS allocs/op"
    exit 0
fi

if [ ! -f "$BASELINE_FILE" ]; then
    echo "bench_guard: no baseline file $BASELINE_FILE; run with --record first" >&2
    exit 2
fi
BASELINE=$(cat "$BASELINE_FILE")
LIMIT=$((BASELINE + BASELINE * HEADROOM / 100))
echo "bench_guard: MicroFullSession $ALLOCS allocs/op (baseline $BASELINE, limit $LIMIT = +$HEADROOM%)"
if [ "$ALLOCS" -gt "$LIMIT" ]; then
    echo "bench_guard: FAIL — allocation regression over the recorded baseline" >&2
    exit 1
fi
echo "bench_guard: OK"
