#!/bin/sh
# Benchmark regression guard for the CI smoke step. Two gates:
#
#  1. Allocation gate — BenchmarkMicroFullSession allocs/op must not exceed
#     the recorded baseline (BENCH_baseline.txt) by more than the allowed
#     headroom. Wall-clock is machine-dependent and not gated; allocations
#     are deterministic modulo pool warm-up, which the headroom absorbs.
#
#  2. Speedup gate — the parallel variants of MicroSessionParallelism and
#     MicroAlg4Parallelism must beat their serial twins by the required
#     ratio. ns/op ratios between two sub-benchmarks of the same run on the
#     same machine ARE comparable, unlike absolute times. The gate only runs
#     when the host exposes at least SPEEDUP_MIN_CPUS cores: below that
#     there is no parallel speedup to measure (the work-stealing paths still
#     run — the determinism and race tests cover them — but wall clock
#     cannot improve on one core), so the gate skips with a notice instead
#     of reporting noise.
#
# Usage: scripts/bench_guard.sh [headroom_percent]
# Refresh the allocation baseline after an intentional change with:
#   scripts/bench_guard.sh --record
set -e

cd "$(dirname "$0")/.."
BASELINE_FILE=BENCH_baseline.txt
HEADROOM="${1:-20}"

# Speedup-gate thresholds: parallel ns/op must be <= serial * MAX_RATIO.
# 45% on the full session (>= 2.2x speedup) and 67% on Algorithm 4
# (>= 1.5x), measured with GOMAXPROCS = SPEEDUP_MIN_CPUS.
SPEEDUP_MIN_CPUS=8
SESSION_MAX_RATIO_PCT=45
ALG4_MAX_RATIO_PCT=67

# --- gate 0: obs hot-path contract ------------------------------------------

# The metrics layer promises zero allocations per increment (internal/obs
# doc comment); gate 1 below then measures the full session WITH that
# instrumentation live, so an obs regression would show up twice. Run the
# contract test first for a precise failure message.
go test -run TestHotPathZeroAllocs -count=1 ./internal/obs >/dev/null || {
    echo "bench_guard: FAIL — obs hot-path allocation contract broken (go test -run TestHotPathZeroAllocs ./internal/obs)" >&2
    exit 1
}
echo "bench_guard: obs hot-path zero-alloc contract OK"

# --- gate 1: allocations (instrumented build) --------------------------------

# -cpu 1 pins the measurement: allocs/op grows a few percent with
# GOMAXPROCS (per-worker scratch, per-P pools), so recorded baselines and
# CI runners must agree on the core count to be comparable.
OUT=$(go test -run '^$' -bench 'BenchmarkMicroFullSession$' -benchmem -benchtime 3x -cpu 1 .)
echo "$OUT"
ALLOCS=$(echo "$OUT" | awk '$1 ~ /^BenchmarkMicroFullSession/ {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
if [ -z "$ALLOCS" ]; then
    echo "bench_guard: could not parse allocs/op from benchmark output" >&2
    exit 2
fi

if [ "$HEADROOM" = "--record" ]; then
    echo "$ALLOCS" > "$BASELINE_FILE"
    echo "bench_guard: recorded baseline $ALLOCS allocs/op"
    exit 0
fi

if [ ! -f "$BASELINE_FILE" ]; then
    echo "bench_guard: no baseline file $BASELINE_FILE; run with --record first" >&2
    exit 2
fi
BASELINE=$(cat "$BASELINE_FILE")
LIMIT=$((BASELINE + BASELINE * HEADROOM / 100))
echo "bench_guard: MicroFullSession $ALLOCS allocs/op (baseline $BASELINE, limit $LIMIT = +$HEADROOM%)"
if [ "$ALLOCS" -gt "$LIMIT" ]; then
    echo "bench_guard: FAIL — allocation regression over the recorded baseline" >&2
    exit 1
fi
echo "bench_guard: allocations OK"

# --- gate 2: parallel speedup ----------------------------------------------

NCPU=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$NCPU" -lt "$SPEEDUP_MIN_CPUS" ]; then
    echo "bench_guard: SKIP speedup gate — host has $NCPU CPUs, need >= $SPEEDUP_MIN_CPUS"
    echo "bench_guard: OK"
    exit 0
fi

POUT=$(go test -run '^$' \
    -bench 'BenchmarkMicroSessionParallelism|BenchmarkMicroAlg4Parallelism' \
    -benchtime 3x -cpu "$SPEEDUP_MIN_CPUS" .)
echo "$POUT"

# ns_of <bench-regex>: ns/op of the named sub-benchmark from $POUT.
ns_of() {
    echo "$POUT" | awk -v pat="$1" '$1 ~ pat {
        for (i = 1; i <= NF; i++) if ($i == "ns/op") print $(i-1)
    }' | head -1
}

check_ratio() {
    NAME=$1; SERIAL=$2; PARALLEL=$3; MAXPCT=$4
    if [ -z "$SERIAL" ] || [ -z "$PARALLEL" ]; then
        echo "bench_guard: could not parse $NAME serial/parallel ns/op" >&2
        exit 2
    fi
    # Integer arithmetic: parallel*100 <= serial*MAXPCT  <=>  ratio <= MAXPCT%.
    RATIO_PCT=$((PARALLEL * 100 / SERIAL))
    echo "bench_guard: $NAME parallel/serial = ${RATIO_PCT}% (limit ${MAXPCT}%)"
    if [ $((PARALLEL * 100)) -gt $((SERIAL * MAXPCT)) ]; then
        echo "bench_guard: FAIL — $NAME parallel speedup below the required ratio" >&2
        exit 1
    fi
}

check_ratio MicroSessionParallelism \
    "$(ns_of '^BenchmarkMicroSessionParallelism/serial')" \
    "$(ns_of '^BenchmarkMicroSessionParallelism/parallel')" \
    "$SESSION_MAX_RATIO_PCT"
check_ratio MicroAlg4Parallelism \
    "$(ns_of '^BenchmarkMicroAlg4Parallelism/serial')" \
    "$(ns_of '^BenchmarkMicroAlg4Parallelism/parallel')" \
    "$ALG4_MAX_RATIO_PCT"

echo "bench_guard: OK"
