#!/bin/sh
# Observability smoke gate (CI; `make metrics-smoke`): boot a 2-worker
# cluster behind qfe-router, drive real sessions through the router, SIGKILL
# one worker, and then assert that GET /metrics on the router AND on the
# surviving worker exposes the series DESIGN.md §13 promises — with non-zero
# values where the run must have produced them:
#
#   worker:  qfe_engine_round_seconds_count     > 0  (round-phase histogram)
#            qfe_engine_dbgen_seconds_count     > 0  (+ alg4/skyline phases)
#            qfe_wal_fsync_seconds_count        > 0  (durability latency)
#            qfe_evalcache_{hits,misses}_total  present
#            qfe_build_info / qfe_http_request_seconds present
#   router:  qfe_router_failovers_total         > 0  (the kill was detected)
#            qfe_router_proxied_total           > 0
#            qfe_router_proxy_seconds           per-worker histogram present
#            qfe_router_shed_total              present (counter exists)
#
# Usage: scripts/metrics_smoke.sh SERVER_BIN ROUTER_BIN
set -e

SERVER_BIN=${1:?usage: metrics_smoke.sh SERVER_BIN ROUTER_BIN}
ROUTER_BIN=${2:?usage: metrics_smoke.sh SERVER_BIN ROUTER_BIN}

DIR=$(mktemp -d /tmp/qfe-metrics-smoke.XXXXXX)
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "metrics_smoke: FAIL — $1" >&2
    exit 1
}

# wait_port LOGFILE: parse "listening on HOST:PORT" printed on stdout.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/.*listening on \([0-9.:]*[0-9]\) .*/\1/p' "$1" | head -1)
        [ -n "$ADDR" ] && { echo "$ADDR"; return 0; }
        i=$((i + 1)); sleep 0.1
    done
    echo "metrics_smoke: no listening line in $1" >&2
    cat "$1" >&2
    return 1
}

# --- boot two workers -------------------------------------------------------

# start_worker N: boots worker N and sets W_ADDR / W_PID (globals — command
# substitution would run in a subshell and lose the pid).
start_worker() {
    n=$1
    mkdir -p "$DIR/n$n/wal"
    "$SERVER_BIN" -addr 127.0.0.1:0 -admin \
        -state "$DIR/n$n/state.json" -wal "$DIR/n$n/wal" \
        -checkpoint 500ms >"$DIR/n$n.log" 2>"$DIR/n$n.err" &
    W_PID=$!
    PIDS="$PIDS $W_PID"
    W_ADDR=$(wait_addr "$DIR/n$n.log")
}

start_worker 0; W0=$W_ADDR; W0_PID=$W_PID
start_worker 1; W1=$W_ADDR; W1_PID=$W_PID
echo "metrics_smoke: workers on $W0 (pid $W0_PID) and $W1 (pid $W1_PID)"

# --- boot the router --------------------------------------------------------

"$ROUTER_BIN" -addr 127.0.0.1:0 \
    -worker "id=w0,url=http://$W0,state=$DIR/n0/state.json,wal=$DIR/n0/wal" \
    -worker "id=w1,url=http://$W1,state=$DIR/n1/state.json,wal=$DIR/n1/wal" \
    -probe-interval 200ms -dead-after 2 -recover-after 1 \
    >"$DIR/router.log" 2>"$DIR/router.err" &
RT_PID=$!
PIDS="$PIDS $RT_PID"
RT=$(wait_addr "$DIR/router.log")
echo "metrics_smoke: router on $RT (pid $RT_PID)"

# --- drive sessions through the router --------------------------------------

for i in 1 2 3 4; do
    SID=$(curl -sS -X POST "http://$RT/sessions" \
        -d '{"dataset":"demo"}' | jq -r .id)
    [ -n "$SID" ] && [ "$SID" != null ] || fail "session create $i returned no id"
    curl -sS -X POST "http://$RT/sessions/$SID/feedback" \
        -d '{"choice":0,"seq":1}' >/dev/null
done
echo "metrics_smoke: drove 4 sessions with feedback"

# --- kill one worker, wait for the failover ---------------------------------

kill -9 "$W1_PID"
echo "metrics_smoke: SIGKILLed worker w1 (pid $W1_PID)"

metric() { # metric NAME URL -> value (0 when absent)
    curl -sS "http://$2/metrics" | awk -v n="$1" '$1 == n { print $2; found=1 } END { if (!found) print 0 }'
}

i=0
until [ "$(metric qfe_router_failovers_done_total "$RT")" -ge 1 ] 2>/dev/null; do
    i=$((i + 1))
    [ $i -gt 150 ] && fail "failover did not complete within 30s"
    sleep 0.2
done
echo "metrics_smoke: failover completed"

# --- assertions: router ------------------------------------------------------

ROUTER_METRICS=$(curl -sS "http://$RT/metrics")
echo "$ROUTER_METRICS" > "$DIR/router-metrics.txt"

require_series() { # require_series TEXT NAME WHO
    echo "$1" | grep -q "^$2" || fail "$3 /metrics is missing $2"
}
require_nonzero() { # require_nonzero TEXT NAME WHO
    v=$(echo "$1" | awk -v n="$2" '$1 == n { print $2 }')
    [ -n "$v" ] || fail "$3 /metrics is missing $2"
    [ "$v" != 0 ] || fail "$3 $2 is zero"
}

require_nonzero "$ROUTER_METRICS" qfe_router_proxied_total router
require_nonzero "$ROUTER_METRICS" qfe_router_failovers_total router
require_series  "$ROUTER_METRICS" qfe_router_shed_total router
require_series  "$ROUTER_METRICS" qfe_router_proxy_seconds_bucket router
require_series  "$ROUTER_METRICS" qfe_router_probe_transitions_total router
require_series  "$ROUTER_METRICS" qfe_build_info router
require_nonzero "$ROUTER_METRICS" 'qfe_http_request_seconds_count{route="/sessions"}' router

# --- assertions: surviving worker -------------------------------------------

WORKER_METRICS=$(curl -sS "http://$W0/metrics")
echo "$WORKER_METRICS" > "$DIR/worker-metrics.txt"

require_nonzero "$WORKER_METRICS" qfe_engine_round_seconds_count worker
require_nonzero "$WORKER_METRICS" qfe_engine_dbgen_seconds_count worker
require_nonzero "$WORKER_METRICS" qfe_engine_alg4_seconds_count worker
require_nonzero "$WORKER_METRICS" qfe_engine_skyline_seconds_count worker
require_nonzero "$WORKER_METRICS" qfe_wal_fsync_seconds_count worker
require_nonzero "$WORKER_METRICS" qfe_wal_records_total worker
require_series  "$WORKER_METRICS" qfe_evalcache_hits_total worker
require_series  "$WORKER_METRICS" qfe_evalcache_misses_total worker
require_series  "$WORKER_METRICS" qfe_build_info worker
require_series  "$WORKER_METRICS" qfe_sessions_resident worker
require_nonzero "$WORKER_METRICS" qfe_sessions_started_total worker

# JSON snapshot flavour parses.
curl -sS "http://$W0/metrics?format=json" | jq -e 'length > 0' >/dev/null \
    || fail "worker /metrics?format=json is not a JSON array"

echo "metrics_smoke: OK"
