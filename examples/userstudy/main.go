// Userstudy: the §7.7 study comparing QFE's cost model against the
// "maximise partitions" alternative, with simulated participants over a
// census-style Adult relation (5227 rows).
//
// Each participant determines three target queries twice — once per cost
// model. The simulation charges response time proportional to the amount of
// new information each round presents, calibrated to the paper's observed
// 2–85 s responses. The paper's finding, reproduced here: the alternative
// model needs no more iterations but costs more total time (QFE up to
// ~1.5× faster), and user time dominates the total.
package main

import (
	"fmt"
	"log"

	"qfe"
	"qfe/internal/datasets"
)

func main() {
	a := datasets.NewAdult()
	fmt.Printf("Adult relation: %d rows × %d columns\n\n",
		a.DB.Table(datasets.AdultTable).Len(), a.DB.Table(datasets.AdultTable).Arity())

	strategies := []struct {
		name string
		s    qfe.Strategy
	}{
		{"QFE cost model", qfe.StrategyCostModel},
		{"max partitions", qfe.StrategyMaxPartitions},
	}

	totals := map[string]float64{}
	for _, target := range a.Targets {
		r, err := target.Evaluate(a.DB)
		if err != nil {
			log.Fatal(err)
		}
		gcfg := qfe.DefaultGenerateConfig()
		gcfg.MaxCandidates = 16
		qc, err := qfe.GenerateCandidates(a.DB, r, gcfg)
		if err != nil {
			log.Fatal(err)
		}
		// The study follows a known target; make sure it competes.
		present := false
		for _, q := range qc {
			if q.Key() == target.Key() {
				present = true
				break
			}
		}
		if !present {
			qc = append([]*qfe.Query{target}, qc...)
		}
		fmt.Printf("%s: %s\n  |R| = %d, |QC| = %d\n", target.Name, target.SQL(), r.Len(), len(qc))

		for _, strat := range strategies {
			user := qfe.NewSimulatedUser(qfe.TargetOracle{Query: target})
			cfg := qfe.DefaultSessionConfig()
			cfg.Gen.Strategy = strat.s
			s, err := qfe.NewSession(a.DB, r, qc, user, cfg)
			if err != nil {
				log.Fatal(err)
			}
			out, err := s.Run()
			if err != nil {
				log.Fatal(err)
			}
			total := user.Responded.Seconds() + out.TotalTime.Seconds()
			totals[strat.name] += total
			fmt.Printf("  %-15s %d rounds, user %.1fs + exec %.2fs = %.1fs (found=%v)\n",
				strat.name+":", len(out.Iterations), user.Responded.Seconds(),
				out.TotalTime.Seconds(), total, out.Found)
		}
		fmt.Println()
	}
	fmt.Printf("TOTALS: %s %.1fs  vs  %s %.1fs  (ratio %.2fx)\n",
		strategies[0].name, totals[strategies[0].name],
		strategies[1].name, totals[strategies[1].name],
		totals[strategies[1].name]/totals[strategies[0].name])
}
