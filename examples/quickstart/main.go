// Quickstart: the paper's worked Example 1.1, end to end.
//
// A user wants "names of employees matching some condition" but cannot write
// SQL. She provides the Employee table and the desired result {Bob, Darren}.
// The query generator proposes candidates (gender = 'M', salary > 4000,
// dept = 'IT', ...); QFE winnows them by showing minimally modified
// databases. Here the feedback is automated to follow the salary query, so
// the program is runnable without input; swap the oracle for
// qfe.Interactive{In: os.Stdin, Out: os.Stdout} to answer yourself.
package main

import (
	"fmt"
	"log"

	"qfe"
)

func main() {
	// The example pair (D, R) from the paper.
	d := qfe.NewDatabase()
	emp := qfe.NewRelation("Employee", qfe.NewSchema(
		"Eid", qfe.KindInt, "name", qfe.KindString, "gender", qfe.KindString,
		"dept", qfe.KindString, "salary", qfe.KindInt))
	emp.Append(
		qfe.NewTuple(1, "Alice", "F", "Sales", 3700),
		qfe.NewTuple(2, "Bob", "M", "IT", 4200),
		qfe.NewTuple(3, "Celina", "F", "Service", 3000),
		qfe.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Employee", "Eid")

	r := qfe.NewRelation("R", qfe.NewSchema("name", qfe.KindString)).
		Append(qfe.NewTuple("Bob"), qfe.NewTuple("Darren"))

	fmt.Println("Database D:")
	fmt.Println(emp)
	fmt.Println("Desired result R:")
	fmt.Println(r)

	// Step 1: reverse-engineer candidate queries with Q(D) = R.
	qc, err := qfe.GenerateCandidates(d, r, qfe.DefaultGenerateConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query generator proposed %d candidates, e.g.:\n", len(qc))
	for i, q := range qc {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", q.SQL())
	}

	// Step 2: winnow. The "user" here follows the salary interpretation.
	target, err := qfe.ParseSQL(
		"SELECT Employee.name FROM Employee WHERE Employee.salary > 4000")
	if err != nil {
		log.Fatal(err)
	}
	cfg := qfe.DefaultSessionConfig()
	s, err := qfe.NewSession(d, r, qc, qfe.TargetOracle{Query: target}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nQFE finished after %d feedback round(s).\n", len(out.Iterations))
	for _, it := range out.Iterations {
		fmt.Printf("  round %d: %d candidates -> %d result choices (db edits: %d)\n",
			it.Iteration, it.NumQueries, it.NumSubsets, it.DBCost)
	}
	switch {
	case out.Query != nil:
		fmt.Printf("\nIdentified query:\n  %s\n", out.Query.SQL())
	case out.Ambiguous:
		fmt.Printf("\n%d candidates are indistinguishable on every reachable database:\n",
			len(out.Remaining))
		for _, q := range out.Remaining {
			fmt.Printf("  %s\n", q.SQL())
		}
	}
}
