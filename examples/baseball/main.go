// Baseball: a three-table join workload (paper §7.1, queries Q3–Q6).
//
// The database mirrors the Lahman subset: Manager (200×11), Team (252×29)
// and Batting (6977×15), joined by foreign keys into 8810 tuples. The
// program runs QFE for the paper's Q4 — "managers, seasons and doubles for
// four named players" — whose natural form is a disjunction of playerID
// equalities, and shows the modified databases QFE presents along the way.
package main

import (
	"fmt"
	"log"

	"qfe"
	"qfe/internal/datasets"
)

func main() {
	bb := datasets.NewBaseball()
	d := bb.DB

	fmt.Println("Baseball database:")
	fmt.Print(d)

	target := bb.Q4
	r, err := target.Evaluate(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTarget query:\n  %s\n", target.SQL())
	fmt.Printf("Result R: %d tuples (paper: 14)\n\n", r.Len())

	cfg := qfe.DefaultGenerateConfig()
	cfg.MaxCandidates = 19
	qc, err := qfe.GenerateCandidates(d, r, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Candidates generated: %d\n", len(qc))
	for i, q := range qc {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", q.SQL())
	}

	// A verbose oracle: follow the target but also narrate each round the
	// way a user would see it (database changes + result deltas).
	oracle := &narratingOracle{inner: qfe.TargetOracle{Query: target}}
	s, err := qfe.NewSession(d, r, qc, oracle, qfe.DefaultSessionConfig())
	if err != nil {
		log.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIdentified after %d round(s); surviving candidate(s): %d\n",
		len(out.Iterations), len(out.Remaining))
	for _, q := range out.Remaining {
		fmt.Printf("  %s\n", q.SQL())
	}
}

// narratingOracle prints each feedback round before delegating the choice.
type narratingOracle struct {
	inner qfe.TargetOracle
}

func (n *narratingOracle) Choose(v qfe.View) (int, bool, error) {
	fmt.Printf("\n--- feedback round %d: %d result choice(s) ---\n", v.Iteration, len(v.Results))
	fmt.Printf("database changes:\n%s", qfe.FormatEdits(v.BaseDB, v.Edits))
	for i, res := range v.Results {
		fmt.Printf("result %d differs from R by:\n%s", i+1, qfe.FormatResultDelta(v.BaseR, res))
	}
	choice, ok, err := n.inner.Choose(v)
	if ok {
		fmt.Printf("user picks result %d\n", choice+1)
	}
	return choice, ok, err
}
