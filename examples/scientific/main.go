// Scientific: QFE on the paper's SQLShare-style biology workload (§7.1).
//
// The database mirrors the shape of the original: a 3926×16 differential-
// expression table joined to a 424×3 reference table (417 joined tuples).
// The program reverse-engineers candidates for the biologist's query Q2
// (genes up-regulated under P/Si/Urea with at least one significant
// p-value, |R| = 6) and winnows them with worst-case feedback, printing the
// per-round statistics the paper reports in Table 1.
package main

import (
	"fmt"
	"log"

	"qfe"
	"qfe/internal/datasets"
)

func main() {
	sci := datasets.NewScientific()
	d := sci.DB

	fmt.Println("Scientific database:")
	fmt.Print(d)

	r, err := sci.Q2.Evaluate(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTarget query (the biologist's intent):\n  %s\n", sci.Q2.SQL())
	fmt.Printf("Result R: %d tuple(s) of arity %d\n\n", r.Len(), r.Arity())

	cfg := qfe.DefaultGenerateConfig()
	cfg.MaxCandidates = 19 // the paper's |QC| for this workload
	qc, err := qfe.GenerateCandidates(d, r, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Candidates generated: %d\n", len(qc))

	s, err := qfe.NewSession(d, r, qc, qfe.WorstCase{}, qfe.DefaultSessionConfig())
	if err != nil {
		log.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nWorst-case winnowing took %d rounds (paper: 6):\n", len(out.Iterations))
	fmt.Printf("%-6s %-10s %-9s %-14s %-7s %-11s\n",
		"round", "#queries", "#subsets", "#skylinepairs", "dbCost", "resultCost")
	for _, it := range out.Iterations {
		fmt.Printf("%-6d %-10d %-9d %-14d %-7d %-11d\n",
			it.Iteration, it.NumQueries, it.NumSubsets, it.SkylinePairs,
			it.DBCost, it.ResultCost)
	}
	if len(out.Remaining) > 0 {
		fmt.Printf("\nSurviving candidate:\n  %s\n", out.Remaining[0].SQL())
	}
	fmt.Printf("Total modification cost: %d, wall time: %v\n",
		out.TotalModCost, out.TotalTime.Round(1e6))
}
