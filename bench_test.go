package qfe

// Benchmark harness: one benchmark per table/experiment of the paper's
// evaluation section (§7), as indexed in DESIGN.md §3, plus micro-benchmarks
// for the load-bearing primitives. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times differ from the paper's 2015 C++/MySQL testbed; the shapes
// (who dominates, how costs scale) are what EXPERIMENTS.md compares.

import (
	"runtime"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/dbgen"
	"qfe/internal/experiments"
	"qfe/internal/feedback"
)

// BenchmarkTable1PerRoundStats regenerates Table 1: per-round statistics of
// full QFE sessions for Q1 and Q2 on the scientific database.
func BenchmarkTable1PerRoundStats(b *testing.B) {
	for _, q := range []string{"Q1", "Q2"} {
		b.Run(q, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table1(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2BetaSweep regenerates Table 2: β ∈ {1..5} on baseball
// Q3–Q6.
func BenchmarkTable2BetaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3DeltaSweep regenerates Table 3: the δ threshold sweep on
// the scientific queries.
func BenchmarkTable3DeltaSweep(b *testing.B) {
	for _, q := range []string{"Q1", "Q2"} {
		b.Run(q, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table3(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Alg4PerIteration regenerates Table 4: per-iteration |SP|
// and Algorithm 4 runtime.
func BenchmarkTable4Alg4PerIteration(b *testing.B) {
	for _, q := range []string{"Q1", "Q2"} {
		b.Run(q, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table4(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5Alg4Scaling regenerates Table 5: Algorithm 4 time vs |SP|.
func BenchmarkTable5Alg4Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6CandidateSweep regenerates Tables 6 and 7: |QC| ∈ {5..80}
// plus the first-iteration breakdown.
func BenchmarkTable6CandidateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpInitialPairSize regenerates the §7.7 initial-pair-size study.
func BenchmarkExpInitialPairSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InitialPairSize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpDomainEntropy regenerates the §7.7 active-domain entropy
// study.
func BenchmarkExpDomainEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DomainEntropy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpUserStudy regenerates the §7.7 user study (simulated
// participants, both cost models).
func BenchmarkExpUserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.UserStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks --------------------------------------------------------

// BenchmarkMicroCandidateGeneration measures QBO candidate generation on
// the worked Example 1.1 database.
func BenchmarkMicroCandidateGeneration(b *testing.B) {
	b.ReportAllocs()
	d, r := example11DB()
	cfg := DefaultGenerateConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCandidates(d, r, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSkylinePairs measures Algorithm 3 on Example 1.1.
func BenchmarkMicroSkylinePairs(b *testing.B) {
	b.ReportAllocs()
	d, r := example11DB()
	qc, err := GenerateCandidates(d, r, DefaultGenerateConfig())
	if err != nil || len(qc) == 0 {
		b.Fatalf("candidates: %v", err)
	}
	j, err := JoinAll(d)
	if err != nil {
		b.Fatal(err)
	}
	opts := dbgen.DefaultOptions()
	opts.Budget = Budget{MaxPairs: 100000}
	opts.Cache = nil // measure uncached evaluation; BenchmarkMicroEvalCache covers warm runs
	gen, err := dbgen.New(d, j, qc, r, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.SkylinePairs()
	}
}

// BenchmarkMicroFullSession measures a complete winnowing session with
// worst-case feedback on Example 1.1.
func BenchmarkMicroFullSession(b *testing.B) {
	b.ReportAllocs()
	d, r := example11DB()
	qc, err := GenerateCandidates(d, r, DefaultGenerateConfig())
	if err != nil || len(qc) == 0 {
		b.Fatalf("candidates: %v", err)
	}
	cfg := DefaultSessionConfig()
	cfg.Gen.Budget = Budget{MaxPairs: 100000}
	cfg.Gen.Cache = nil // measure uncached sessions; BenchmarkMicroEvalCache covers warm runs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(d, r, qc, feedback.WorstCase{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSessionParallelism compares complete winnowing sessions on
// the scientific scenario at Parallelism = 1 (the legacy serial path) and
// Parallelism = GOMAXPROCS. Outcomes are identical (asserted by
// internal/core's parallel tests); only wall-clock should move. Caches are
// disabled so the comparison isolates the worker pools.
func BenchmarkMicroSessionParallelism(b *testing.B) {
	b.ReportAllocs()
	sc, err := experiments.ScientificScenario("Q1", 19)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := DefaultSessionConfig()
				cfg.Gen.Budget = Budget{MaxPairs: 100000}
				cfg.Parallelism = bc.parallelism
				cfg.Gen.Cache = nil
				s, err := NewSession(sc.DB, sc.R, sc.QC, feedback.WorstCase{}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicroAlg4Parallelism isolates Algorithm 4 (the Table 5 hot path)
// on an artificially enlarged skyline, serial vs all-cores.
func BenchmarkMicroAlg4Parallelism(b *testing.B) {
	b.ReportAllocs()
	sc, err := experiments.ScientificScenario("Q1", 19)
	if err != nil {
		b.Fatal(err)
	}
	j, err := Join(sc.DB, sc.QC[0].Tables)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := dbgen.DefaultOptions()
			opts.Budget = Budget{MaxPairs: 100000}
			opts.Parallelism = bc.parallelism
			opts.Cache = nil
			opts.MaxFrontier = 512
			opts.MaxSetsEvaluated = 200000
			gen, err := dbgen.New(sc.DB, j, sc.QC, sc.R, opts)
			if err != nil {
				b.Fatal(err)
			}
			_, stats := gen.SkylinePairs()
			sp := gen.EnumerateScoredPairs(400)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sets := gen.PickSubsets(sp, stats.X); len(sets) == 0 {
					b.Fatal("no candidate sets")
				}
			}
		})
	}
}

// BenchmarkMicroEvalCache measures candidate evaluation against a cold and
// a warm result cache: the warm path is what every winnowing round after
// the first — and every sweep re-run — pays.
func BenchmarkMicroEvalCache(b *testing.B) {
	b.ReportAllocs()
	sc, err := experiments.ScientificScenario("Q1", 19)
	if err != nil {
		b.Fatal(err)
	}
	j, err := Join(sc.DB, sc.QC[0].Tables)
	if err != nil {
		b.Fatal(err)
	}
	newGen := func(b *testing.B, cache *EvalCache) {
		opts := dbgen.DefaultOptions()
		opts.Budget = Budget{MaxPairs: 100000}
		opts.Cache = cache
		if _, err := dbgen.New(sc.DB, j, sc.QC, sc.R, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("nocache", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			newGen(b, nil) // evaluation alone, no hashing or Put overhead
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			newGen(b, NewEvalCache(4096)) // fresh cache: all misses + Puts
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		cache := NewEvalCache(4096)
		newGen(b, cache) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			newGen(b, cache)
		}
	})
}

// BenchmarkMicroBatchEval compares one round's candidate evaluation done the
// scalar way (one row-at-a-time scan per candidate) against the columnar
// batch engine's single shared scan (DESIGN.md §9) on the scientific Q1
// candidate set. The columnar build is memoised on the join, exactly as the
// winnowing loop sees it; the per-iteration cost is the scan itself.
func BenchmarkMicroBatchEval(b *testing.B) {
	b.ReportAllocs()
	sc, err := experiments.ScientificScenario("Q1", 19)
	if err != nil {
		b.Fatal(err)
	}
	j, err := Join(sc.DB, sc.QC[0].Tables)
	if err != nil {
		b.Fatal(err)
	}
	col := j.Columnar()
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range sc.QC {
				if _, err := q.EvaluateOnJoined(j.Rel); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.BatchEvaluateOnJoined(sc.QC, col); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The block-parallel scan at GOMAXPROCS workers; with -cpu 1,2,4,8 this
	// sub-benchmark becomes the batch engine's scaling curve.
	b.Run("batch-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.BatchEvaluateOnJoinedParallel(sc.QC, col,
				runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMicroMinEdit measures the Hungarian-based relation edit
// distance on 32-row relations.
func BenchmarkMicroMinEdit(b *testing.B) {
	b.ReportAllocs()
	schema := NewSchema("a", KindInt, "b", KindInt, "c", KindInt)
	x := NewRelation("x", schema)
	y := NewRelation("y", schema)
	for i := 0; i < 32; i++ {
		x.Append(NewTuple(i, i%5, i%7))
		y.Append(NewTuple(i, (i+1)%5, i%7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinEdit(x, y)
	}
}

// example11DB builds the paper's Example 1.1 Employee database.
func example11DB() (*Database, *Relation) {
	d := NewDatabase()
	emp := NewRelation("Employee", NewSchema(
		"Eid", KindInt, "name", KindString, "gender", KindString,
		"dept", KindString, "salary", KindInt))
	emp.Append(
		NewTuple(1, "Alice", "F", "Sales", 3700),
		NewTuple(2, "Bob", "M", "IT", 4200),
		NewTuple(3, "Celina", "F", "Service", 3000),
		NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Employee", "Eid")
	r := NewRelation("R", NewSchema("name", KindString)).
		Append(NewTuple("Bob"), NewTuple("Darren"))
	return d, r
}
