// Command qfe-server serves Query-From-Examples winnowing sessions over an
// HTTP/JSON API, turning the paper's interactive loop into a long-lived
// service: each session holds one user mid-round; feedback requests step the
// underlying state machine.
//
// API (see README.md for a curl transcript):
//
//	POST   /sessions                create a session from a built-in dataset
//	                                ({"dataset":"demo"}) or from CSV/JSON
//	                                tables and a result relation; responds
//	                                with the first feedback round
//	GET    /sessions/{id}           current round, or the outcome once done
//	POST   /sessions/{id}/feedback  {"choice": i, "seq": n} — 0-based result
//	                                index, -1 for "none of these"; seq makes
//	                                the request idempotent under retries
//	DELETE /sessions/{id}           abandon the session
//	GET    /stats                   session/round counters + cache hit rate
//
// Sessions are evicted after -ttl of inactivity and capped at -max-sessions
// live sessions (further creates get 429).
//
// Durability (DESIGN.md §11): with -state FILE, sessions are checkpointed to
// FILE (atomic temp-file + rename) on shutdown and every -checkpoint
// interval, and restored on the next start. With -wal DIR, every session
// transition is additionally journaled to a write-ahead log before it is
// acknowledged, so sessions survive crashes (SIGKILL, power loss per
// -wal-sync) — recovery replays the WAL tail on top of the newest snapshot
// and checkpoints truncate the log. -wal forces a deterministic pair-count
// generator budget so replay reproduces rounds byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfe/internal/core"
	"qfe/internal/fault"
	"qfe/internal/obs"
	"qfe/internal/service"
	"qfe/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (port 0 picks a free port, printed on start)")
		ttl         = flag.Duration("ttl", 30*time.Minute, "evict sessions idle for longer than this")
		maxSessions = flag.Int("max-sessions", 1024, "cap on live sessions (backpressure beyond)")
		maxCand     = flag.Int("candidates", 32, "max candidate queries generated per session")
		statePath   = flag.String("state", "", "snapshot file: restore on start, checkpoint on shutdown (atomic replace)")
		parallelism = flag.Int("parallelism", 0, "worker count per session (0 = all cores)")

		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "max time to read one request (hardening against slow clients)")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "max time to serve one request; must cover a slow round generation")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle limit")
		maxBody      = flag.Int64("max-body", 64<<20, "request body size cap in bytes (413 beyond)")
		admin        = flag.Bool("admin", false, "expose POST /admin/adopt (cluster failover handoff; enable only behind a router)")

		walDir       = flag.String("wal", "", "write-ahead log directory: journal every transition before acknowledging it")
		walSync      = flag.String("wal-sync", "always", "WAL sync policy: always (fsync per record), interval, off")
		walSyncEvery = flag.Duration("wal-sync-interval", 50*time.Millisecond, "fsync cadence for -wal-sync=interval")
		walSegBytes  = flag.Int64("wal-segment-bytes", 4<<20, "rotate WAL segments beyond this size")
		checkpoint   = flag.Duration("checkpoint", time.Minute, "snapshot + WAL truncation cadence (needs -state; 0 disables)")
		pairBudget   = flag.Int("pair-budget", 0, "deterministic generator budget in candidate pairs (0 = wall-clock default; forced to 100000 under -wal)")

		faultSpec = flag.String("fault-schedule", "", "deterministic fault injection: schedule JSON file or seed:N (testing only)")

		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this extra address (empty = off)")
	)
	flag.Parse()

	lf, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfe-server:", err)
		os.Exit(1)
	}
	// Logs go to stderr: stdout stays reserved for the machine-parsed
	// "listening on" line the port-0 harnesses read.
	logger := obs.SetupLogger(lf, os.Stderr)
	obs.ServeDebug(*debugAddr, func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
	})

	cfg := core.DefaultConfig()
	cfg.Parallelism = *parallelism
	if *pairBudget > 0 {
		cfg.Gen.Budget.MaxPairs = *pairBudget
		cfg.Gen.Budget.MaxDuration = 0
	}
	if *walDir != "" && cfg.Gen.Budget.MaxPairs <= 0 {
		// WAL replay re-runs the generator; a wall-clock budget would make
		// the regenerated rounds machine- and load-dependent. Force the
		// deterministic pair-count budget the simulator uses.
		cfg.Gen.Budget.MaxPairs = 100000
		cfg.Gen.Budget.MaxDuration = 0
		logger.Info("-wal forces deterministic generator budget", "pairs", 100000)
	}

	// The injected fault plane (testing only): scripted storage faults ride
	// the journal, scripted inbound network faults ride the listener.
	var sched *fault.Schedule
	if *faultSpec != "" {
		var err error
		if sched, err = fault.Load(*faultSpec); err != nil {
			logger.Error("bad -fault-schedule", "err", err)
			os.Exit(1)
		}
		logger.Warn("fault injection armed",
			"spec", *faultSpec, "storage", len(sched.Storage), "network", len(sched.Network))
	}
	faultLogf := func(format string, args ...any) {
		logger.Warn(fmt.Sprintf(format, args...))
	}

	// journal is assigned only when a log is actually open — a nil *wal.Log
	// stuffed into the interface would read as non-nil to the service tier.
	var (
		journal       service.Journal
		journalCloser interface{ Close() error }
	)
	if *walDir != "" {
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			logger.Error("bad -wal-sync", "err", err)
			os.Exit(1)
		}
		wopts := wal.Options{
			Dir:          *walDir,
			SegmentBytes: *walSegBytes,
			Sync:         pol,
			SyncInterval: *walSyncEvery,
		}
		if sched.HasStorage() {
			fj, err := fault.OpenJournal(wopts, sched, faultLogf)
			if err != nil {
				logger.Error("wal open failed", "dir", *walDir, "err", err)
				os.Exit(1)
			}
			journal, journalCloser = fj, fj
		} else {
			l, err := wal.Open(wopts)
			if err != nil {
				logger.Error("wal open failed", "dir", *walDir, "err", err)
				os.Exit(1)
			}
			journal, journalCloser = l, l
		}
	}

	m := service.New(service.Options{
		TTL:         *ttl,
		MaxSessions: *maxSessions,
		Config:      cfg,
		Journal:     journal,
	})

	// Session-population gauges are registered here, against this process's
	// single Manager (the service package cannot: tests build many Managers
	// and per-Manager registration would alias them).
	obs.NewGaugeFunc("qfe_sessions_resident",
		"Sessions currently held by this server.",
		func() float64 { return float64(m.Resident()) })
	obs.NewGaugeFunc("qfe_sessions_live",
		"Resident, unfinished sessions on this server.",
		func() float64 { return float64(m.Live()) })

	// Recover before serving: newest snapshot first, then deterministic
	// replay of the WAL tail. With no -wal this degrades to the plain
	// snapshot restore.
	if *statePath != "" || *walDir != "" {
		rstats, err := m.Recover(*statePath, *walDir)
		if err != nil {
			logger.Error("recover failed", "err", err)
			os.Exit(1)
		}
		for _, e := range rstats.Errors {
			logger.Warn("recover", "err", e)
		}
		if rstats.SnapshotSessions+rstats.ReplaySessions > 0 || rstats.WAL.Records > 0 {
			// A session can be counted in both: restored from the snapshot
			// and then advanced by WAL replay.
			logger.Info("recovery complete",
				"snapshot_sessions", rstats.SnapshotSessions,
				"replay_sessions", rstats.ReplaySessions,
				"wal_records", rstats.WAL.Records,
				"elapsed", time.Duration(rstats.DurationNs))
		}
		if rstats.WAL.TornTail {
			logger.Warn("torn WAL tail dropped (expected after a crash)",
				"dropped_bytes", rstats.WAL.DroppedBytes)
		}
		if rstats.WAL.Corrupt {
			logger.Warn("WAL corruption before the tail",
				"dropped_bytes", rstats.WAL.DroppedBytes)
		}
		// Fold the recovered state into a fresh snapshot immediately so the
		// replayed tail is not replayed again next time.
		if *statePath != "" {
			if _, err := m.Checkpoint(*statePath); err != nil {
				logger.Error("checkpoint failed", "err", err)
			}
		}
	}

	// Background TTL sweep so idle sessions release capacity even when no
	// requests arrive. -ttl <= 0 selects the manager's 30-minute default.
	sweepEvery := *ttl / 4
	if sweepEvery <= 0 {
		sweepEvery = 30 * time.Minute / 4
	}
	go func() {
		t := time.NewTicker(sweepEvery)
		defer t.Stop()
		for range t.C {
			m.EvictExpired()
		}
	}()

	// Periodic checkpoint: atomic snapshot + WAL truncation, bounding both
	// recovery replay time and log disk usage.
	if *statePath != "" && *checkpoint > 0 {
		go func() {
			t := time.NewTicker(*checkpoint)
			defer t.Stop()
			for range t.C {
				if _, err := m.Checkpoint(*statePath); err != nil {
					logger.Error("checkpoint failed", "err", err)
				}
			}
		}()
	}

	srv := &http.Server{
		Handler: service.NewHandler(m, service.HandlerOptions{
			MaxCandidates: *maxCand,
			MaxBodyBytes:  *maxBody,
			EnableAdmin:   *admin,
			StatePath:     *statePath,
			Logger:        logger,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	var serveLn net.Listener = ln
	if sched.HasNetwork(fault.SideInbound) {
		serveLn = fault.NewListener(ln, sched, faultLogf)
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// Drain in-flight requests first, then snapshot: feedback served
		// after the snapshot would otherwise be lost from the saved state.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		cancel()
		if *statePath != "" {
			if n, err := m.Checkpoint(*statePath); err != nil {
				logger.Error("final checkpoint failed", "err", err)
			} else {
				logger.Info("saved sessions", "count", n, "path", *statePath)
			}
		}
		if journalCloser != nil {
			if err := journalCloser.Close(); err != nil {
				logger.Error("wal close", "err", err)
			}
		}
		close(done)
	}()

	// Print the bound address (not the flag): -addr with port 0 lets test
	// harnesses pick a free port and parse it from this line.
	fmt.Printf("qfe-server: listening on %s (ttl %s, max %d sessions)\n", ln.Addr(), *ttl, *maxSessions)
	if err := srv.Serve(serveLn); err != nil && err != http.ErrServerClosed {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	<-done
}
