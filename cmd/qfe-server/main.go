// Command qfe-server serves Query-From-Examples winnowing sessions over an
// HTTP/JSON API, turning the paper's interactive loop into a long-lived
// service: each session holds one user mid-round; feedback requests step the
// underlying state machine.
//
// API (see README.md for a curl transcript):
//
//	POST   /sessions                create a session from a built-in dataset
//	                                ({"dataset":"demo"}) or from CSV/JSON
//	                                tables and a result relation; responds
//	                                with the first feedback round
//	GET    /sessions/{id}           current round, or the outcome once done
//	POST   /sessions/{id}/feedback  {"choice": i} — 0-based result index,
//	                                -1 for "none of these"
//	DELETE /sessions/{id}           abandon the session
//	GET    /stats                   session/round counters + cache hit rate
//
// Sessions are evicted after -ttl of inactivity and capped at -max-sessions
// live sessions (further creates get 429). With -state FILE, sessions are
// snapshotted to FILE on SIGINT/SIGTERM and restored on the next start, so
// in-flight sessions survive restarts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfe/internal/core"
	"qfe/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		ttl         = flag.Duration("ttl", 30*time.Minute, "evict sessions idle for longer than this")
		maxSessions = flag.Int("max-sessions", 1024, "cap on live sessions (backpressure beyond)")
		maxCand     = flag.Int("candidates", 32, "max candidate queries generated per session")
		statePath   = flag.String("state", "", "snapshot file: restore on start, save on shutdown")
		parallelism = flag.Int("parallelism", 0, "worker count per session (0 = all cores)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Parallelism = *parallelism
	m := service.New(service.Options{
		TTL:         *ttl,
		MaxSessions: *maxSessions,
		Config:      cfg,
	})

	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			n, errs := m.Load(f)
			f.Close()
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "qfe-server: restore:", e)
			}
			fmt.Printf("qfe-server: restored %d session(s) from %s\n", n, *statePath)
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "qfe-server:", err)
			os.Exit(1)
		}
	}

	// Background TTL sweep so idle sessions release capacity even when no
	// requests arrive. -ttl <= 0 selects the manager's 30-minute default.
	sweepEvery := *ttl / 4
	if sweepEvery <= 0 {
		sweepEvery = 30 * time.Minute / 4
	}
	go func() {
		t := time.NewTicker(sweepEvery)
		defer t.Stop()
		for range t.C {
			m.EvictExpired()
		}
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(m, service.HandlerOptions{MaxCandidates: *maxCand}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// Drain in-flight requests first, then snapshot: feedback served
		// after the snapshot would otherwise be lost from the saved state.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "qfe-server: shutdown:", err)
		}
		cancel()
		if *statePath != "" {
			if f, err := os.Create(*statePath); err == nil {
				if n, err := m.Save(f); err != nil {
					fmt.Fprintln(os.Stderr, "qfe-server: save:", err)
				} else {
					fmt.Printf("qfe-server: saved %d session(s) to %s\n", n, *statePath)
				}
				f.Close()
			} else {
				fmt.Fprintln(os.Stderr, "qfe-server: save:", err)
			}
		}
		close(done)
	}()

	fmt.Printf("qfe-server: listening on %s (ttl %s, max %d sessions)\n", *addr, *ttl, *maxSessions)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "qfe-server:", err)
		os.Exit(1)
	}
	<-done
}
