// Command qfe-router fronts a cluster of qfe-server workers (DESIGN.md
// §12): it places sessions on workers with a consistent-hash ring, probes
// worker health, proxies the session API with retry-safe backoff, sheds
// load at per-worker in-flight caps, and when a worker is declared dead
// hands its durable estate (snapshot + WAL) to the survivors before
// reassigning its hash range — acknowledged state outlives any one node.
//
// Each worker is declared with a repeatable -worker flag:
//
//	qfe-router -addr :8000 \
//	  -worker id=w0,url=http://127.0.0.1:9000,state=n0/state.json,wal=n0/wal \
//	  -worker id=w1,url=http://127.0.0.1:9001,state=n1/state.json,wal=n1/wal \
//	  -worker id=w2,url=http://127.0.0.1:9002,state=n2/state.json,wal=n2/wal
//
// Workers must run with -admin (to accept estate handoffs) and with the
// -state/-wal paths the router was told, on storage every worker can reach.
// Clients speak the ordinary qfe-server API to the router; sessions are
// named by the router so placement needs no shared table.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qfe/internal/cluster"
	"qfe/internal/fault"
	"qfe/internal/obs"
	"qfe/internal/retry"
)

// workerFlags collects repeated -worker definitions.
type workerFlags []cluster.Worker

func (w *workerFlags) String() string { return fmt.Sprintf("%d worker(s)", len(*w)) }

// Set parses "id=w0,url=http://...,state=PATH,wal=DIR".
func (w *workerFlags) Set(s string) error {
	var wk cluster.Worker
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("worker field %q: want key=value", kv)
		}
		switch k {
		case "id":
			wk.ID = v
		case "url":
			wk.URL = v
		case "state":
			wk.StatePath = v
		case "wal":
			wk.WALDir = v
		default:
			return fmt.Errorf("worker field %q: unknown key (want id, url, state, wal)", k)
		}
	}
	if wk.ID == "" || wk.URL == "" {
		return fmt.Errorf("worker %q needs at least id= and url=", s)
	}
	*w = append(*w, wk)
	return nil
}

func main() {
	var workers workerFlags
	var (
		addr          = flag.String("addr", ":8000", "listen address (port 0 picks a free port, printed on start)")
		vnodes        = flag.Int("vnodes", 128, "virtual nodes per worker on the hash ring")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health probe cadence")
		deadAfter     = flag.Int("dead-after", 3, "consecutive failed probes before a worker is declared dead")
		recoverAfter  = flag.Int("recover-after", 2, "consecutive successful probes before a suspect worker is trusted again")
		maxInflight   = flag.Int64("max-inflight", 64, "per-worker concurrent request cap (503 + Retry-After beyond)")
		retryBudget   = flag.Duration("retry-budget", 30*time.Second, "total retry time per proxied request (must cover failover)")
		callTimeout   = flag.Duration("call-timeout", 2*time.Minute, "per-attempt upstream timeout")
		breakThresh   = flag.Int("breaker-threshold", 5, "consecutive upstream failures that trip a worker's circuit breaker (-1 disables)")
		breakCooldown = flag.Duration("breaker-cooldown", time.Second, "how long a tripped breaker refuses attempts before a half-open probe")
		faultSpec     = flag.String("fault-schedule", "", "deterministic fault injection on upstream calls: schedule JSON file or seed:N (testing only)")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this extra address (empty = off)")
	)
	flag.Var(&workers, "worker", "worker definition id=ID,url=URL[,state=PATH,wal=DIR] (repeatable)")
	flag.Parse()

	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "qfe-router: at least one -worker is required")
		os.Exit(1)
	}
	lf, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfe-router:", err)
		os.Exit(1)
	}
	// Logs go to stderr: stdout stays reserved for the machine-parsed
	// "listening on" line the port-0 harnesses read.
	logger := obs.SetupLogger(lf, os.Stderr)
	obs.ServeDebug(*debugAddr, func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
	})

	// Optional injected faults on the upstream (router -> worker) path: the
	// schedule's outbound network faults wrap the shared client transport.
	var client *http.Client
	if *faultSpec != "" {
		sched, err := fault.Load(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfe-router: bad -fault-schedule:", err)
			os.Exit(1)
		}
		logger.Warn("fault injection armed on upstream calls",
			"spec", *faultSpec, "network", len(sched.Network))
		base := retry.HTTPClientPerRequest()
		base.Transport = fault.NewTransport(base.Transport, sched, func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		})
		client = base
	}

	rt, err := cluster.NewRouter(cluster.Options{
		Workers:          workers,
		VirtualNodes:     *vnodes,
		ProbeInterval:    *probeInterval,
		DeadAfter:        *deadAfter,
		RecoverAfter:     *recoverAfter,
		MaxInflight:      *maxInflight,
		RetryBudget:      *retryBudget,
		CallTimeout:      *callTimeout,
		BreakerThreshold: *breakThresh,
		BreakerCooldown:  *breakCooldown,
		Client:           client,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		logger.Error("router init failed", "err", err)
		os.Exit(1)
	}
	rt.Start()

	// The middleware mints the X-Request-ID here at the cluster's front
	// door; the router's proxy path forwards it so every worker log line
	// for the same client call carries the same id.
	handler := obs.Middleware(rt, obs.MiddlewareOptions{
		Routes: []string{
			"/sessions", "/sessions/{id}", "/sessions/{id}/feedback",
			"/healthz", "/cluster/stats", "/metrics",
		},
		RouteFor:     routeFor,
		SessionIDFor: sessionIDFor,
		Logger:       logger,
	})

	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Write timeout must cover a full retry budget plus one slow attempt.
		WriteTimeout: *retryBudget + *callTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		cancel()
		rt.Stop()
		close(done)
	}()

	// Bound address printed for harnesses that listen on port 0.
	fmt.Printf("qfe-router: listening on %s (%d worker(s), probe %s, dead after %d)\n",
		ln.Addr(), len(workers), *probeInterval, *deadAfter)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	<-done
}

// routeFor maps request paths to bounded route templates for per-route
// metrics (session ids must never become label values).
func routeFor(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/sessions", p == "/healthz", p == "/cluster/stats", p == "/metrics":
		return p
	case strings.HasPrefix(p, "/sessions/"):
		rest := strings.TrimPrefix(p, "/sessions/")
		if _, sub, _ := strings.Cut(rest, "/"); sub == "feedback" {
			return "/sessions/{id}/feedback"
		}
		return "/sessions/{id}"
	}
	return ""
}

// sessionIDFor extracts the session id from /sessions/{id}[...] paths for
// structured log attribution.
func sessionIDFor(r *http.Request) string {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/sessions/"); ok {
		id, _, _ := strings.Cut(rest, "/")
		return id
	}
	return ""
}
