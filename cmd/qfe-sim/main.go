// Command qfe-sim generates scenario corpora and runs large-scale session
// simulations over them.
//
//	qfe-sim generate -out corpus.jsonl -n 100 -seed 1 [-curated] [ranges...]
//	qfe-sim run -corpus corpus.jsonl -policy target -workers 0 \
//	    -report BENCH_sim.json [-server URL] [-require-converge 0.95]
//
// generate produces a seeded, deterministic corpus (internal/scenario):
// random FK-connected schemas, populated databases, target queries sampled
// from the SPJ+DISTINCT/DNF grammar with guaranteed non-trivial results.
// -curated appends the repository's hand-built datasets (scientific Q1–Q2,
// baseball Q3–Q6, adult U1–U3) so curated and generated scenarios mix in
// one run.
//
// run drives a full QFE session per scenario at the given concurrency
// (internal/simulate), in-process or against a qfe-server, with automated
// feedback (target, worst, noisy, abandon), per-session invariant checks
// and a metamorphic differential oracle on fresh databases. The JSON report
// (convergence rate, rounds histogram, latency percentiles, cache hit rate,
// peak sessions) is deterministic modulo its timing block. The exit status
// is non-zero when invariants are violated or the convergence rate falls
// below -require-converge — which is what makes `make sim-smoke` a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"qfe/internal/fault"
	"qfe/internal/obs"
	"qfe/internal/scenario"
	"qfe/internal/simulate"
)

// logFormatFlag registers the shared -log-format flag on a subcommand's
// FlagSet; the returned setup func installs the slog default (stderr, so
// stdout stays parseable report output).
func logFormatFlag(fs *flag.FlagSet) func() error {
	format := fs.String("log-format", "text", "structured log format: text or json")
	return func() error {
		lf, err := obs.ParseLogFormat(*format)
		if err != nil {
			return err
		}
		obs.SetupLogger(lf, os.Stderr)
		return nil
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = runGenerate(os.Args[2:])
	case "run":
		err = runRun(os.Args[2:])
	case "chaos":
		err = runChaos(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "qfe-sim: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		slog.Error("qfe-sim failed", "command", os.Args[1], "err", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  qfe-sim generate -out FILE -n N -seed S [-curated] [-tables MIN:MAX]
          [-cols MIN:MAX] [-rows MIN:MAX] [-domain MIN:MAX] [-skew F]
          [-distinct P] [-max-result N]
  qfe-sim run -corpus FILE [-policy target|worst|noisy|abandon]
          [-workers N] [-fresh N] [-max-candidates N] [-report FILE]
          [-server URL] [-noise P] [-abandon N] [-no-inject]
          [-require-converge RATE] [-allow-violations]
  qfe-sim chaos -corpus FILE -server-bin PATH [-sessions N] [-workers N]
          [-kills N] [-seed S] [-wal-sync POLICY] [-checkpoint D]
          [-max-candidates N] [-report FILE] [-quiet]
          [-cluster N -router-bin PATH]`)
}

// rangeFlag parses "min:max" (or a single value) into a MinMax.
type rangeFlag struct{ mm *scenario.MinMax }

func (f rangeFlag) String() string {
	if f.mm == nil {
		return ""
	}
	return fmt.Sprintf("%d:%d", f.mm.Min, f.mm.Max)
}

func (f rangeFlag) Set(s string) error {
	lo, hi, found := strings.Cut(s, ":")
	a, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return fmt.Errorf("bad range %q", s)
	}
	b := a
	if found {
		b, err = strconv.Atoi(strings.TrimSpace(hi))
		if err != nil {
			return fmt.Errorf("bad range %q", s)
		}
	}
	if b < a {
		return fmt.Errorf("range %q: max below min", s)
	}
	f.mm.Min, f.mm.Max = a, b
	return nil
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "corpus.jsonl", "output corpus file")
	n := fs.Int("n", 100, "number of generated scenarios")
	seed := fs.Int64("seed", 1, "corpus seed")
	curated := fs.Bool("curated", false, "append the curated dataset scenarios")
	opts := scenario.DefaultGenOptions()
	fs.Var(rangeFlag{&opts.Tables}, "tables", "tables per scenario (min:max)")
	fs.Var(rangeFlag{&opts.PayloadCols}, "cols", "payload columns per table (min:max)")
	fs.Var(rangeFlag{&opts.Rows}, "rows", "rows per table (min:max)")
	fs.Var(rangeFlag{&opts.DomainSize}, "domain", "active-domain size per column (min:max)")
	fs.Float64Var(&opts.Skew, "skew", opts.Skew, "value/FK skew exponent (1 = uniform)")
	fs.Float64Var(&opts.Query.DistinctProb, "distinct", opts.Query.DistinctProb, "P(SELECT DISTINCT)")
	fs.IntVar(&opts.Query.MaxResultRows, "max-result", opts.Query.MaxResultRows, "reject results larger than this (0 = unlimited)")
	setupLog := logFormatFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := setupLog(); err != nil {
		return err
	}

	corpus, err := scenario.GenerateCorpus(*seed, *n, opts)
	if err != nil {
		return err
	}
	if *curated {
		cs, err := scenario.Curated()
		if err != nil {
			return err
		}
		corpus = append(corpus, cs...)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := scenario.Header{Seed: *seed, Gen: &opts}
	if err := scenario.Write(f, hdr, corpus); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d scenarios (%d generated, seed %d) to %s\n",
		len(corpus), *n, *seed, *out)
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.jsonl", "corpus file to simulate")
	policy := fs.String("policy", "target", "feedback policy: target, worst, noisy, abandon")
	workers := fs.Int("workers", 0, "concurrent sessions (0 = NumCPU, 1 = serial)")
	fresh := fs.Int("fresh", 2, "fresh databases per generated scenario for the differential oracle")
	maxCand := fs.Int("max-candidates", 16, "candidate-set size cap per scenario")
	reportPath := fs.String("report", "BENCH_sim.json", "JSON report output file")
	server := fs.String("server", "", "drive sessions over HTTP against this qfe-server (empty = in-process)")
	noise := fs.Float64("noise", 0.1, "noisy policy: wrong-answer probability")
	abandon := fs.Int("abandon", 2, "abandon policy: rounds answered before walking away")
	noInject := fs.Bool("no-inject", false, "do not inject the target into the candidate set")
	requireConverge := fs.Float64("require-converge", 0, "exit non-zero when convergence rate falls below this")
	allowViolations := fs.Bool("allow-violations", false, "exit zero even when invariants are violated")
	setupLog := logFormatFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := setupLog(); err != nil {
		return err
	}

	f, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	rd, err := scenario.NewReader(f)
	if err != nil {
		f.Close()
		return err
	}
	var corpus []*scenario.Scenario
	for {
		s, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := s.Verify(); err != nil {
			f.Close()
			return err
		}
		corpus = append(corpus, s)
	}
	f.Close()
	if len(corpus) == 0 {
		return fmt.Errorf("corpus %s is empty", *corpusPath)
	}

	pol, err := simulate.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	runner, err := simulate.New(simulate.Options{
		Workers:        *workers,
		Policy:         pol,
		NoiseRate:      *noise,
		AbandonAfter:   *abandon,
		FreshDBs:       *fresh,
		MaxCandidates:  *maxCand,
		NoInjectTarget: *noInject,
		Server:         *server,
	})
	if err != nil {
		return err
	}
	rep, err := runner.Run(corpus)
	if err != nil {
		return err
	}
	rep.Corpus = *corpusPath

	out, err := os.Create(*reportPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}

	fmt.Printf("%d scenarios, policy %s, %d workers%s\n",
		rep.Scenarios, rep.Policy, rep.Workers, serverNote(rep.Server))
	fmt.Printf("converged %d (%.1f%%): %d identified, %d ambiguous; %d not found, %d abandoned, %d errors\n",
		rep.Converged, rep.ConvergenceRate*100, rep.Identified, rep.Ambiguous,
		rep.NotFound, rep.Abandoned, rep.Errors)
	fmt.Printf("rounds %d total; invariant violations %d; divergent class members %d\n",
		rep.TotalRounds, rep.InvariantViolations, rep.Divergent)
	fmt.Printf("latency p50/p90/p99/max = %.2f/%.2f/%.2f/%.2f ms; peak sessions %d; cache %d hits / %d misses\n",
		rep.Timing.RoundLatency.P50, rep.Timing.RoundLatency.P90,
		rep.Timing.RoundLatency.P99, rep.Timing.RoundLatency.Max,
		rep.Timing.PeakSessions, rep.Timing.Cache.Hits, rep.Timing.Cache.Misses)
	fmt.Printf("report written to %s\n", *reportPath)

	if rep.InvariantViolations > 0 && !*allowViolations {
		return fmt.Errorf("%d invariant violations", rep.InvariantViolations)
	}
	if *requireConverge > 0 && rep.ConvergenceRate < *requireConverge {
		return fmt.Errorf("convergence rate %.4f below required %.4f",
			rep.ConvergenceRate, *requireConverge)
	}
	return nil
}

// runChaos drives the crash-recovery harness. Single-node mode (default):
// a qfe-server subprocess with a WAL is SIGKILLed and restarted under load.
// Cluster mode (-cluster N with -router-bin): N workers behind a qfe-router
// are driven while random workers are SIGKILLed for good — the router must
// fail over their sessions to the survivors. Either way the run fails when
// any acknowledged session is lost or any outcome differs from an
// uninterrupted single-node reference run. Doc comments at
// internal/simulate/chaos.go and internal/simulate/cluster.go.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.jsonl", "corpus file to drive sessions from")
	serverBin := fs.String("server-bin", "", "path to a built qfe-server binary (required)")
	sessions := fs.Int("sessions", 50, "sessions to drive (cycling the corpus)")
	workers := fs.Int("workers", 8, "concurrent client sessions")
	kills := fs.Int("kills", 5, "SIGKILL cycles to inject (progress-triggered; restart+recover in single-node mode, permanent death in cluster mode)")
	seed := fs.Int64("seed", 1, "kill-point seed")
	walSync := fs.String("wal-sync", "off", "server -wal-sync policy (always, interval, off)")
	checkpoint := fs.Duration("checkpoint", 500*time.Millisecond, "server -checkpoint cadence")
	maxCand := fs.Int("max-candidates", 16, "candidate-set size cap per session")
	cluster := fs.Int("cluster", 0, "run against an N-worker cluster behind qfe-router (0 = single node)")
	routerBin := fs.String("router-bin", "", "path to a built qfe-router binary (required with -cluster)")
	faultSpec := fs.String("fault-schedule", "", "inject scripted faults during the chaos pass: schedule JSON file or seed:N (single-node mode)")
	reportPath := fs.String("report", "", "JSON report output file (default BENCH_chaos.json, or BENCH_cluster.json with -cluster)")
	quiet := fs.Bool("quiet", false, "suppress per-kill progress lines")
	setupLog := logFormatFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := setupLog(); err != nil {
		return err
	}
	if *serverBin == "" {
		return fmt.Errorf("chaos: -server-bin is required")
	}
	if *cluster > 0 && *routerBin == "" {
		return fmt.Errorf("chaos: -cluster needs -router-bin")
	}
	if *reportPath == "" {
		if *cluster > 0 {
			*reportPath = "BENCH_cluster.json"
		} else {
			*reportPath = "BENCH_chaos.json"
		}
	}

	f, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	rd, err := scenario.NewReader(f)
	if err != nil {
		f.Close()
		return err
	}
	var corpus []*scenario.Scenario
	for {
		s, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
		corpus = append(corpus, s)
	}
	f.Close()
	if len(corpus) == 0 {
		return fmt.Errorf("corpus %s is empty", *corpusPath)
	}

	log := io.Writer(os.Stderr)
	if *quiet {
		log = io.Discard
	}
	chaosOpts := simulate.ChaosOptions{
		ServerBin:     *serverBin,
		Corpus:        corpus,
		Sessions:      *sessions,
		Workers:       *workers,
		Kills:         *kills,
		Seed:          *seed,
		SyncPolicy:    *walSync,
		Checkpoint:    *checkpoint,
		MaxCandidates: *maxCand,
		Log:           log,
	}
	if *faultSpec != "" {
		if *cluster > 0 {
			return fmt.Errorf("chaos: -fault-schedule is single-node only (cluster workers each need their own schedule)")
		}
		sched, err := fault.Load(*faultSpec)
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		chaosOpts.Faults = sched
	}
	if *cluster > 0 {
		return runClusterChaos(simulate.ClusterChaosOptions{
			ChaosOptions: chaosOpts,
			RouterBin:    *routerBin,
			Nodes:        *cluster,
		}, *reportPath)
	}
	rep, err := simulate.RunChaos(chaosOpts)
	if err != nil {
		return err
	}
	rep.FaultSpec = *faultSpec

	out, err := os.Create(*reportPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}

	fmt.Printf("%d sessions, %d workers, %d kill(s) -> %d restart(s)\n",
		rep.Sessions, rep.Workers, rep.Kills, rep.Restarts)
	fmt.Printf("completed %d, lost %d, mismatched %d, errors %d, skipped %d; %d HTTP retries\n",
		rep.Completed, rep.Lost, rep.Mismatched, rep.Errors, rep.Skipped, rep.HTTPRetries)
	fmt.Printf("recovered %d from snapshots + %d via replay (%d WAL records); recovery max %s, total %s\n",
		rep.SessionsRestored, rep.SessionsReplayed, rep.WALRecordsReplayed,
		time.Duration(rep.RecoveryMaxNs), time.Duration(rep.RecoveryTotalNs))
	if chaosOpts.Faults != nil {
		fmt.Printf("faults: %d WAL append error(s) injected; degraded mode entered %d time(s), recovered %d time(s)\n",
			rep.WALAppendErrors, rep.DegradedEntered, rep.DegradedRecovered)
	}
	fmt.Printf("report written to %s\n", *reportPath)

	if rep.Lost > 0 {
		return fmt.Errorf("%d acknowledged session(s) lost to a crash", rep.Lost)
	}
	if rep.Mismatched > 0 {
		return fmt.Errorf("%d session outcome(s) differ from the uninterrupted reference run", rep.Mismatched)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d session(s) failed", rep.Errors)
	}
	// Vacuity gates: a faulted run must actually have exercised the fault
	// plane, or the zero-loss result proves nothing.
	if chaosOpts.Faults.HasStorage() && rep.WALAppendErrors == 0 {
		return fmt.Errorf("fault schedule scripted storage faults but no WAL append error was observed")
	}
	if chaosOpts.Faults.HasStorageKind(fault.KindENOSPC) {
		if rep.DegradedEntered == 0 {
			return fmt.Errorf("fault schedule scripted an ENOSPC window but the server never entered degraded mode")
		}
		if rep.DegradedRecovered == 0 {
			return fmt.Errorf("server entered degraded mode but never auto-recovered")
		}
	}
	return nil
}

// runClusterChaos executes the cluster-mode harness and gates on its
// report: zero lost acknowledged sessions, zero outcome mismatches, zero
// errors — with real worker deaths in between.
func runClusterChaos(opts simulate.ClusterChaosOptions, reportPath string) error {
	rep, err := simulate.RunClusterChaos(opts)
	if err != nil {
		return err
	}
	out, err := os.Create(reportPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}

	fmt.Printf("%d sessions, %d client workers, %d-node cluster, %d/%d worker kill(s) landed -> %d failover(s)\n",
		rep.Sessions, rep.Workers, rep.Nodes, rep.KillsLanded, rep.Kills, rep.Failovers)
	fmt.Printf("completed %d, lost %d, mismatched %d, errors %d, skipped %d\n",
		rep.Completed, rep.Lost, rep.Mismatched, rep.Errors, rep.Skipped)
	fmt.Printf("client retries %d; router retries %d, shed %d; adoptions %d (%d failed)\n",
		rep.HTTPRetries, rep.RouterRetries, rep.Shed, rep.AdoptCalls, rep.AdoptErrors)
	fmt.Printf("report written to %s\n", reportPath)

	if rep.KillsLanded < rep.Kills {
		return fmt.Errorf("only %d of %d worker kill(s) landed mid-run — the gate did not exercise failover", rep.KillsLanded, rep.Kills)
	}
	if rep.Lost > 0 {
		return fmt.Errorf("%d acknowledged session(s) lost to a worker death", rep.Lost)
	}
	if rep.Mismatched > 0 {
		return fmt.Errorf("%d session outcome(s) differ from the single-node reference run", rep.Mismatched)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d session(s) failed", rep.Errors)
	}
	return nil
}

func serverNote(s string) string {
	if s == "" {
		return " (in-process)"
	}
	return " (server " + s + ")"
}
