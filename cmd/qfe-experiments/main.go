// Command qfe-experiments regenerates the paper's evaluation artifacts
// (Tables 1–7 and the three §7.7 studies) and prints them as text tables.
//
// Usage:
//
//	qfe-experiments            # run everything
//	qfe-experiments table1     # run a single experiment
//	qfe-experiments -list      # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qfe/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func() error
}

func main() {
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	show := func(t *experiments.TextTable, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		return nil
	}

	exps := []experiment{
		{"table1", "per-round statistics for Q1 and Q2 (scientific)", func() error {
			if err := show(experiments.Table1("Q1")); err != nil {
				return err
			}
			return show(experiments.Table1("Q2"))
		}},
		{"table2", "effect of β on baseball Q3-Q6", func() error {
			return show(experiments.Table2())
		}},
		{"table3", "effect of δ on scientific Q1 and Q2", func() error {
			if err := show(experiments.Table3("Q1")); err != nil {
				return err
			}
			return show(experiments.Table3("Q2"))
		}},
		{"table4", "Algorithm 4 per-iteration performance", func() error {
			if err := show(experiments.Table4("Q1")); err != nil {
				return err
			}
			return show(experiments.Table4("Q2"))
		}},
		{"table5", "Algorithm 4 scaling with |SP|", func() error {
			return show(experiments.Table5())
		}},
		{"table6", "effect of |QC| on Q2 (includes Table 7 breakdown)", func() error {
			t6, t7, err := experiments.Table6()
			if err != nil {
				return err
			}
			fmt.Println(t6.String())
			fmt.Println(t7.String())
			return nil
		}},
		{"initsize", "§7.7 effect of initial database-result pair size", func() error {
			return show(experiments.InitialPairSize())
		}},
		{"entropy", "§7.7 effect of active-domain entropy", func() error {
			return show(experiments.DomainEntropy())
		}},
		{"userstudy", "§7.7 user study with simulated participants", func() error {
			t, _, err := experiments.UserStudy()
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		}},
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}

	want := flag.Args()
	run := func(e experiment) {
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		t0 := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	if len(want) == 0 {
		for _, e := range exps {
			run(e)
		}
		return
	}
	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	for _, n := range want {
		e, ok := byName[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
		run(e)
	}
}
