// Command qfe is the interactive Query-From-Examples CLI.
//
// Given a database (CSV files with name:type headers) and a desired result
// table, it generates candidate SPJ queries and walks the user through
// feedback rounds — each round shows a minimally modified database and the
// distinct results the remaining candidates produce; the user picks the one
// their intended query would return (or 0 for "none of these").
//
// Usage:
//
//	qfe -result R.csv [-fk child.col=parent.col ...] table1.csv table2.csv ...
//	qfe -demo            # run on the paper's Example 1.1 without files
//
// Foreign keys may be repeated; single-table databases need none.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qfe"
)

type fkFlags []string

func (f *fkFlags) String() string     { return strings.Join(*f, ",") }
func (f *fkFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var (
		resultPath = flag.String("result", "", "CSV file with the desired result table R")
		demo       = flag.Bool("demo", false, "run the paper's Example 1.1 instead of loading files")
		maxCand    = flag.Int("candidates", 32, "maximum number of candidate queries to generate")
		fks        fkFlags
	)
	flag.Var(&fks, "fk", "foreign key as Child.col=Parent.col (repeatable)")
	flag.Parse()

	if *demo {
		runDemo(*maxCand)
		return
	}
	if *resultPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: qfe -result R.csv [-fk C.c=P.p ...] table.csv ... | qfe -demo")
		os.Exit(2)
	}

	d := qfe.NewDatabase()
	for _, path := range flag.Args() {
		rel, err := loadCSV(path)
		if err != nil {
			fatal(err)
		}
		if err := d.AddTable(rel); err != nil {
			fatal(err)
		}
	}
	for _, fk := range fks {
		parts := strings.SplitN(fk, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -fk %q, want Child.col=Parent.col", fk))
		}
		c := strings.SplitN(parts[0], ".", 2)
		p := strings.SplitN(parts[1], ".", 2)
		if len(c) != 2 || len(p) != 2 {
			fatal(fmt.Errorf("bad -fk %q, want Child.col=Parent.col", fk))
		}
		d.AddForeignKey(c[0], []string{c[1]}, p[0], []string{p[1]})
	}
	r, err := loadCSV(*resultPath)
	if err != nil {
		fatal(err)
	}
	run(d, r, *maxCand)
}

func loadCSV(path string) (*qfe.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return qfe.ReadCSV(name, f)
}

func run(d *qfe.Database, r *qfe.Relation, maxCand int) {
	if err := d.Validate(); err != nil {
		fatal(fmt.Errorf("database constraints: %w", err))
	}
	cfg := qfe.DefaultGenerateConfig()
	cfg.MaxCandidates = maxCand
	qc, err := qfe.GenerateCandidates(d, r, cfg)
	if err != nil {
		fatal(err)
	}
	if len(qc) == 0 {
		fatal(fmt.Errorf("no SPJ query produces the given result on this database"))
	}
	fmt.Printf("Generated %d candidate queries; starting feedback rounds.\n", len(qc))
	fmt.Println("In each round, answer with the number of the result your intended")
	fmt.Println("query would produce on the modified database (0 = none of them).")

	// The CLI is a step-API client: each Start/Feedback call suspends the
	// session on a round, exactly as a qfe-server client would see it.
	s, err := qfe.NewStepSession(d, r, qc, qfe.DefaultSessionConfig())
	if err != nil {
		fatal(err)
	}
	out, err := drive(s, os.Stdin, os.Stdout)
	if err != nil {
		fatal(err)
	}
	switch {
	case out.Query != nil:
		fmt.Printf("\nYour query:\n  %s\n", out.Query.SQL())
	case out.Ambiguous:
		fmt.Printf("\nThese %d queries are indistinguishable on every reachable database;\n", len(out.Remaining))
		fmt.Println("any of them matches your feedback:")
		for _, q := range out.Remaining {
			fmt.Printf("  %s\n", q.SQL())
		}
	default:
		fmt.Println("\nNone of the candidate queries matches your feedback.")
		fmt.Println("Try increasing -candidates, or provide a richer example pair.")
	}
}

// drive loops the pausable session against a human, one Start/Feedback step
// per round — the same client loop a qfe-server front-end runs. The
// presentation and input handling are the feedback module's Interactive
// oracle, invoked per suspended round.
func drive(s *qfe.Session, in io.Reader, w io.Writer) (*qfe.Outcome, error) {
	round, err := s.Start()
	if err != nil {
		return nil, err
	}
	ui := qfe.Interactive{In: in, Out: w}
	for round != nil {
		choice, ok, err := ui.Choose(round.View)
		if err != nil {
			return nil, err
		}
		if !ok {
			choice = qfe.NoneOfThese
		}
		var out *qfe.Outcome
		round, out, err = s.Feedback(choice)
		if err != nil {
			return nil, err
		}
		if round == nil {
			return out, nil
		}
	}
	out, _ := s.Outcome()
	return out, nil
}

func runDemo(maxCand int) {
	d := qfe.NewDatabase()
	emp := qfe.NewRelation("Employee", qfe.NewSchema(
		"Eid", qfe.KindInt, "name", qfe.KindString, "gender", qfe.KindString,
		"dept", qfe.KindString, "salary", qfe.KindInt))
	emp.Append(
		qfe.NewTuple(1, "Alice", "F", "Sales", 3700),
		qfe.NewTuple(2, "Bob", "M", "IT", 4200),
		qfe.NewTuple(3, "Celina", "F", "Service", 3000),
		qfe.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Employee", "Eid")
	r := qfe.NewRelation("R", qfe.NewSchema("name", qfe.KindString)).
		Append(qfe.NewTuple("Bob"), qfe.NewTuple("Darren"))
	fmt.Println("Example 1.1 — Employee database:")
	fmt.Println(emp)
	fmt.Println("Desired result:")
	fmt.Println(r)
	run(d, r, maxCand)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qfe:", err)
	os.Exit(1)
}
