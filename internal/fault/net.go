// Network-fault injection: an http.RoundTripper wrapper for outbound
// faults (added latency, response drops, partitions) and a net.Listener
// wrapper for inbound partitions. Both are armed at construction and fire
// by elapsed time, so a scripted window hits whatever traffic is in flight
// — the point is ambiguity (was the write applied before the response was
// lost?), which the retry discipline and seq-idempotent API must absorb.
package fault

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper with the schedule's outbound
// network faults.
type Transport struct {
	inner  http.RoundTripper
	faults []NetworkFault
	start  time.Time
	now    func() time.Time
	logf   Logf
}

// NewTransport installs the schedule's outbound-side network faults around
// inner (nil inner selects http.DefaultTransport). The schedule arms now.
func NewTransport(inner http.RoundTripper, sched *Schedule, logf Logf) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	t := &Transport{inner: inner, start: time.Now(), now: time.Now, logf: logf}
	if sched != nil {
		for _, f := range sched.Network {
			if f.appliesTo(SideOutbound) {
				t.faults = append(t.faults, f)
			}
		}
	}
	return t
}

// active collects the faults of one kind whose window covers the current
// elapsed time.
func (t *Transport) active(kind string) []NetworkFault {
	el := t.now().Sub(t.start)
	var out []NetworkFault
	for _, f := range t.faults {
		if f.Kind != kind {
			continue
		}
		if from, to := f.window(); el >= from && el < to {
			out = append(out, f)
		}
	}
	return out
}

// RoundTrip applies active latency, partition and drop faults around the
// real round trip. A dropped response is fully read first, so the server
// has applied and acknowledged the request before the client loses the ack.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	for _, f := range t.active(KindLatency) {
		d := f.Latency.D()
		if d <= 0 {
			continue
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if fs := t.active(KindPartition); len(fs) > 0 {
		t.log("fault: outbound partition refuses %s %s", req.Method, req.URL)
		return nil, fmt.Errorf("fault: injected partition: %s unreachable", req.URL.Host)
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if fs := t.active(KindDrop); len(fs) > 0 {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		t.log("fault: dropped %d response for %s %s", resp.StatusCode, req.Method, req.URL)
		return nil, fmt.Errorf("fault: injected response drop from %s", req.URL.Host)
	}
	return resp, nil
}

// log emits a fault notice.
func (t *Transport) log(format string, args ...any) {
	if t.logf != nil {
		t.logf(format, args...)
	}
}

// Listener wraps a net.Listener with the schedule's inbound partition
// windows: while one is active, newly accepted connections are closed
// immediately and established connections are severed at their next read
// or write — keep-alive pools give a partition no free pass.
type Listener struct {
	net.Listener
	faults []NetworkFault
	start  time.Time
	now    func() time.Time
	logf   Logf
}

// NewListener installs the schedule's inbound-side partitions around ln.
// The schedule arms now.
func NewListener(ln net.Listener, sched *Schedule, logf Logf) *Listener {
	l := &Listener{Listener: ln, start: time.Now(), now: time.Now, logf: logf}
	if sched != nil {
		for _, f := range sched.Network {
			if f.Kind == KindPartition && f.appliesTo(SideInbound) {
				l.faults = append(l.faults, f)
			}
		}
	}
	return l
}

// log emits a fault notice.
func (l *Listener) log(format string, args ...any) {
	if l.logf != nil {
		l.logf(format, args...)
	}
}

// partitioned reports an active inbound partition window.
func (l *Listener) partitioned() bool {
	el := l.now().Sub(l.start)
	for _, f := range l.faults {
		if from, to := f.window(); el >= from && el < to {
			return true
		}
	}
	return false
}

// Accept rejects connections while partitioned (closing them models the
// peer's RST) and hands out severing wrappers otherwise.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		if l.partitioned() {
			l.log("fault: inbound partition closes connection from %s", c.RemoteAddr())
			_ = c.Close()
			continue
		}
		return &faultConn{Conn: c, l: l}, nil
	}
}

// faultConn severs an established connection when a partition window opens.
type faultConn struct {
	net.Conn
	l *Listener
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.l.partitioned() {
		_ = c.Conn.Close()
		return 0, fmt.Errorf("fault: injected partition severed connection")
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.l.partitioned() {
		_ = c.Conn.Close()
		return 0, fmt.Errorf("fault: injected partition severed connection")
	}
	return c.Conn.Write(b)
}
