// Package fault is the deterministic fault-injection plane (DESIGN.md §14):
// seeded, scripted failures for the storage and network paths, so the chaos
// harness can drive the system through full disks, torn writes, fsync
// stalls, dropped responses and partitions — and the degradation machinery
// (degraded read-only mode, the router's circuit breaker, deadline
// propagation) can be exercised and gated in CI instead of waited for in
// production.
//
// A Schedule is a JSON document with two fault lists:
//
//   - Storage faults trigger on the cumulative count of records appended to
//     the journal — deterministic against workload progress, independent of
//     machine speed. They are injected through a Journal wrapper
//     (service.Options.Journal) plus the wal package's WriteHook/SyncHook
//     seams, so torn writes put real partial records on disk and stalls
//     really block the fsync path.
//
//   - Network faults trigger on elapsed time since the process armed the
//     schedule. They are injected through an http.RoundTripper wrapper
//     (outbound: added latency, response drops, partitions) and a
//     net.Listener wrapper (inbound: partitions that refuse new connections
//     and sever established ones).
//
// Schedules re-arm from zero each process start: a restarted (chaos-killed)
// server replays its early faults, which multiplies coverage rather than
// weakening it.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"
)

// Logf receives human-readable fault-firing notices (nil discards them).
type Logf func(format string, args ...any)

// Duration marshals as a Go duration string ("750ms") so schedules stay
// hand-editable; plain JSON numbers are accepted as nanoseconds.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1.5s" strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("fault: bad duration %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Storage fault kinds.
const (
	// KindEIO fails one append with an I/O error before any byte is written.
	KindEIO = "eio"
	// KindENOSPC rejects every append and ping for Duration — the full-disk
	// window that drives a worker into (and back out of) degraded mode.
	KindENOSPC = "enospc"
	// KindTorn writes a genuine partial record to disk and fails the append —
	// the crashed-mid-write shape the WAL's longest-valid-prefix replay and
	// truncate-back self-healing exist for.
	KindTorn = "torn"
	// KindStall sleeps Duration inside one fsync, pinning the log lock —
	// the hung-disk shape deadline propagation exists for.
	KindStall = "stall"
)

// StorageFault scripts one journal failure.
type StorageFault struct {
	// AtRecord fires the fault when the cumulative appended-record count
	// reaches this value (1-based), counted per process lifetime.
	AtRecord int `json:"atRecord"`
	// Kind is one of eio, enospc, torn, stall.
	Kind string `json:"kind"`
	// Duration is the enospc window or stall length (default 1s).
	Duration Duration `json:"duration,omitempty"`
	// TornBytes bounds how many bytes of the batch reach disk for a torn
	// write (default: half the batch).
	TornBytes int `json:"tornBytes,omitempty"`
}

// Network fault kinds.
const (
	// KindPartition refuses outbound requests / severs inbound connections
	// while active — a directional network partition.
	KindPartition = "partition"
	// KindLatency adds Latency to every outbound request while active.
	KindLatency = "latency"
	// KindDrop lets the request reach the server, then discards the
	// response — the ack sent/not-sent ambiguity retried writes must absorb.
	KindDrop = "drop"
)

// Network fault sides.
const (
	// SideInbound applies at the server's listener.
	SideInbound = "inbound"
	// SideOutbound applies at the client's (or router's) transport.
	SideOutbound = "outbound"
)

// NetworkFault scripts one network failure window.
type NetworkFault struct {
	// After arms the fault this long after the schedule starts.
	After Duration `json:"after"`
	// Duration keeps it active this long (default 1s).
	Duration Duration `json:"duration,omitempty"`
	// Kind is one of partition, latency, drop.
	Kind string `json:"kind"`
	// Latency is the added per-request delay for latency faults.
	Latency Duration `json:"latency,omitempty"`
	// Side restricts the fault to "inbound" (listener) or "outbound"
	// (transport); empty applies wherever the schedule is installed.
	Side string `json:"side,omitempty"`
}

// window returns the fault's active interval as offsets from schedule start.
func (f NetworkFault) window() (from, to time.Duration) {
	from = f.After.D()
	d := f.Duration.D()
	if d <= 0 {
		d = time.Second
	}
	return from, from + d
}

// appliesTo reports whether the fault is installed on the given side.
func (f NetworkFault) appliesTo(side string) bool {
	return f.Side == "" || f.Side == side
}

// Schedule is a complete fault script for one process.
type Schedule struct {
	// Seed records the generator seed (informational for generated
	// schedules, ignored for hand-written ones).
	Seed int64 `json:"seed,omitempty"`
	// Storage faults fire by journal record count.
	Storage []StorageFault `json:"storage,omitempty"`
	// Network faults fire by elapsed time.
	Network []NetworkFault `json:"network,omitempty"`
}

// HasStorage reports whether any storage faults are scripted.
func (s *Schedule) HasStorage() bool { return s != nil && len(s.Storage) > 0 }

// HasNetwork reports whether any network faults are scripted for side.
func (s *Schedule) HasNetwork(side string) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Network {
		if f.appliesTo(side) {
			return true
		}
	}
	return false
}

// HasStorageKind reports whether a storage fault of the given kind is
// scripted — harnesses use it for vacuity checks ("the ENOSPC gate only
// applies when an ENOSPC was actually scheduled").
func (s *Schedule) HasStorageKind(kind string) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Storage {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// validate rejects unknown kinds/sides and nonsensical triggers early, so a
// typo in a hand-written schedule fails the process at startup rather than
// silently never firing.
func (s *Schedule) validate() error {
	for i, f := range s.Storage {
		switch f.Kind {
		case KindEIO, KindENOSPC, KindTorn, KindStall:
		default:
			return fmt.Errorf("fault: storage[%d]: unknown kind %q (want eio, enospc, torn or stall)", i, f.Kind)
		}
		if f.AtRecord <= 0 {
			return fmt.Errorf("fault: storage[%d]: atRecord must be >= 1", i)
		}
	}
	for i, f := range s.Network {
		switch f.Kind {
		case KindPartition, KindLatency, KindDrop:
		default:
			return fmt.Errorf("fault: network[%d]: unknown kind %q (want partition, latency or drop)", i, f.Kind)
		}
		switch f.Side {
		case "", SideInbound, SideOutbound:
		default:
			return fmt.Errorf("fault: network[%d]: unknown side %q (want inbound or outbound)", i, f.Side)
		}
		if f.After < 0 {
			return fmt.Errorf("fault: network[%d]: negative after", i)
		}
	}
	return nil
}

// Parse decodes and validates a schedule document.
func Parse(b []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("fault: parse schedule: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a schedule from a JSON file, or generates one when the spec is
// "seed:N" — the single flag syntax the binaries and the chaos harness
// accept for -fault-schedule.
func Load(spec string) (*Schedule, error) {
	if seed, ok := cutSeed(spec); ok {
		return Generate(seed), nil
	}
	b, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(b)
}

// cutSeed parses the "seed:N" spec form.
func cutSeed(spec string) (int64, bool) {
	const p = "seed:"
	if len(spec) <= len(p) || spec[:len(p)] != p {
		return 0, false
	}
	n, err := strconv.ParseInt(spec[len(p):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Save writes the schedule as indented JSON.
func (s *Schedule) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Generate builds a deterministic mixed schedule from a seed: an early torn
// write, an EIO, an ENOSPC window long enough to observe degraded mode, a
// sync stall, and one window of each network fault kind. The same seed
// always yields the same schedule; different seeds move the trigger points.
func Generate(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	ms := func(lo, hi int) Duration {
		return Duration(time.Duration(lo+rng.Intn(hi-lo)) * time.Millisecond)
	}
	return &Schedule{
		Seed: seed,
		Storage: []StorageFault{
			{AtRecord: 5 + rng.Intn(8), Kind: KindTorn},
			{AtRecord: 18 + rng.Intn(12), Kind: KindEIO},
			{AtRecord: 35 + rng.Intn(15), Kind: KindENOSPC, Duration: ms(1200, 2000)},
			{AtRecord: 60 + rng.Intn(20), Kind: KindStall, Duration: ms(250, 600)},
		},
		Network: []NetworkFault{
			{After: ms(1500, 3500), Duration: ms(600, 1200), Kind: KindPartition, Side: SideInbound},
			{After: ms(4000, 6000), Duration: ms(500, 1000), Kind: KindLatency, Latency: ms(20, 80)},
			{After: ms(6500, 9000), Duration: ms(400, 900), Kind: KindDrop, Side: SideOutbound},
		},
	}
}
