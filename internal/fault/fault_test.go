package fault

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"qfe/internal/wal"
)

// TestScheduleRoundTrip pins the JSON wire form: durations as strings, and
// parse → save → parse stability.
func TestScheduleRoundTrip(t *testing.T) {
	src := `{
		"storage": [
			{"atRecord": 5, "kind": "torn"},
			{"atRecord": 9, "kind": "enospc", "duration": "1.5s"}
		],
		"network": [
			{"after": "2s", "duration": "750ms", "kind": "partition", "side": "inbound"},
			{"after": 1000000, "kind": "latency", "latency": "10ms"}
		]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Storage[1].Duration.D() != 1500*time.Millisecond {
		t.Fatalf("duration string parse: %v", s.Storage[1].Duration.D())
	}
	if s.Network[1].After.D() != time.Millisecond {
		t.Fatalf("duration number parse: %v", s.Network[1].After.D())
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip changed schedule:\n  %+v\n  %+v", s, again)
	}
}

// TestScheduleValidate rejects unknown kinds, sides, and bad triggers.
func TestScheduleValidate(t *testing.T) {
	bad := []string{
		`{"storage":[{"atRecord":1,"kind":"explode"}]}`,
		`{"storage":[{"atRecord":0,"kind":"eio"}]}`,
		`{"network":[{"kind":"wormhole"}]}`,
		`{"network":[{"kind":"drop","side":"sideways"}]}`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("schedule %s parsed without error", src)
		}
	}
}

// TestGenerateDeterministic pins seeded generation: same seed, same
// schedule; different seeds, different trigger points; and the generated
// schedule covers the acceptance-critical kinds.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(Generate(7).Storage, Generate(8).Storage) {
		t.Fatal("different seeds produced identical storage faults")
	}
	for _, kind := range []string{KindTorn, KindEIO, KindENOSPC, KindStall} {
		if !a.HasStorageKind(kind) {
			t.Errorf("generated schedule lacks %s", kind)
		}
	}
	if !a.HasNetwork(SideInbound) || !a.HasNetwork(SideOutbound) {
		t.Error("generated schedule lacks a network side")
	}
}

// TestLoadSeedSpec accepts the "seed:N" flag form.
func TestLoadSeedSpec(t *testing.T) {
	s, err := Load("seed:42")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || !s.HasStorage() {
		t.Fatalf("seed spec: %+v", s)
	}
}

// openTestJournal opens a faulting journal over a temp WAL, returning the
// WAL directory for replay checks.
func openTestJournal(t *testing.T, sched *Schedule) (*Journal, string) {
	t.Helper()
	dir := t.TempDir()
	j, err := OpenJournal(wal.Options{Dir: dir, Sync: wal.SyncAlways},
		sched, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j, dir
}

func rec(id string, seq int) wal.Record {
	return wal.Record{Type: wal.TypeFeedback, ID: id, Seq: seq}
}

// TestJournalEIOOneShot: the scripted EIO fails exactly one append; the
// retry lands, and replay delivers only the successfully appended records.
func TestJournalEIOOneShot(t *testing.T) {
	j, dir := openTestJournal(t, &Schedule{Storage: []StorageFault{{AtRecord: 2, Kind: KindEIO}}})
	if err := j.Append(rec("a", 1)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := j.Append(rec("a", 2)); err == nil {
		t.Fatal("append 2 should hit the injected EIO")
	}
	if err := j.Append(rec("a", 2)); err != nil {
		t.Fatalf("retry after EIO: %v", err)
	}
	var got []int
	stats, err := wal.Replay(dir, func(r wal.Record) error {
		got = append(got, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTail || stats.Corrupt || !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("replay after EIO: %v %+v", got, stats)
	}
}

// TestJournalTornWrite: a torn write puts real partial bytes on disk, the
// append fails, the log heals (truncate-back), and the retry produces a
// clean replayable log — no torn tail, no corruption, no duplicates lost.
func TestJournalTornWrite(t *testing.T) {
	j, dir := openTestJournal(t, &Schedule{Storage: []StorageFault{{AtRecord: 2, Kind: KindTorn}}})
	if err := j.Append(rec("a", 1)); err != nil {
		t.Fatal(err)
	}
	err := j.Append(rec("a", 2))
	if err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("want injected torn write error, got %v", err)
	}
	if err := j.Append(rec("a", 2)); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	var got []int
	stats, err := wal.Replay(dir, func(r wal.Record) error {
		got = append(got, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTail || stats.Corrupt || !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("replay after torn write: %v %+v", got, stats)
	}
}

// TestJournalENOSPCWindow: while the window is open both Append and Ping
// fail; when it expires both recover — the degraded-mode round trip.
func TestJournalENOSPCWindow(t *testing.T) {
	j, _ := openTestJournal(t, &Schedule{Storage: []StorageFault{
		{AtRecord: 1, Kind: KindENOSPC, Duration: Duration(time.Second)}}})
	clock := time.Unix(100, 0)
	j.now = func() time.Time { return clock }

	if err := j.Append(rec("a", 1)); err == nil {
		t.Fatal("append inside ENOSPC window should fail")
	}
	if err := j.Ping(); err == nil {
		t.Fatal("ping inside ENOSPC window should fail")
	}
	clock = clock.Add(2 * time.Second)
	if err := j.Ping(); err != nil {
		t.Fatalf("ping after window: %v", err)
	}
	if err := j.Append(rec("a", 1)); err != nil {
		t.Fatalf("append after window: %v", err)
	}
}

// TestJournalStall: the scripted stall delays exactly one sync'd append.
func TestJournalStall(t *testing.T) {
	j, _ := openTestJournal(t, &Schedule{Storage: []StorageFault{
		{AtRecord: 1, Kind: KindStall, Duration: Duration(time.Hour)}}})
	var slept time.Duration
	j.sleep = func(d time.Duration) { slept += d }
	if err := j.Append(rec("a", 1)); err != nil {
		t.Fatal(err)
	}
	if slept != time.Hour {
		t.Fatalf("stall slept %v, want 1h", slept)
	}
	if err := j.Append(rec("a", 2)); err != nil {
		t.Fatal(err)
	}
	if slept != time.Hour {
		t.Fatalf("stall fired twice: %v", slept)
	}
}

// TestTransportFaults drives latency, partition and drop windows with a
// fake clock against a live test server.
func TestTransportFaults(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewTransport(nil, &Schedule{Network: []NetworkFault{
		{After: Duration(10 * time.Second), Duration: Duration(time.Second), Kind: KindPartition},
		{After: Duration(20 * time.Second), Duration: Duration(time.Second), Kind: KindDrop},
	}}, t.Logf)
	clock := tr.start
	tr.now = func() time.Time { return clock }
	client := &http.Client{Transport: tr}

	// Before any window: passes through.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Partition window: request never reaches the server.
	clock = tr.start.Add(10*time.Second + 500*time.Millisecond)
	before := hits
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("partition window should fail the request")
	}
	if hits != before {
		t.Fatal("partitioned request reached the server")
	}

	// Drop window: the server sees the request, the client loses the
	// response — the ack ambiguity.
	clock = tr.start.Add(20*time.Second + 500*time.Millisecond)
	before = hits
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("drop window should fail the request")
	}
	if hits != before+1 {
		t.Fatalf("dropped request should reach the server once, hits %d -> %d", before, hits)
	}

	// Windows closed: healthy again.
	clock = tr.start.Add(time.Minute)
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestListenerPartition severs both new and established connections during
// the window and accepts again after it closes.
func TestListenerPartition(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(raw, &Schedule{Network: []NetworkFault{
		{After: Duration(10 * time.Second), Duration: Duration(time.Second),
			Kind: KindPartition, Side: SideInbound}}}, t.Logf)
	clock := ln.start
	ln.now = func() time.Time { return clock }

	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + raw.Addr().String()

	// Dedicated client per phase: pooled connections must also be severed.
	c1 := &http.Client{Timeout: 5 * time.Second}
	resp, err := c1.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	clock = ln.start.Add(10*time.Second + 200*time.Millisecond)
	if resp, err := c1.Get(url); err == nil {
		resp.Body.Close()
		t.Fatal("request during partition should fail (even on a pooled connection)")
	}

	clock = ln.start.Add(time.Minute)
	resp, err = c1.Get(url)
	if err != nil {
		t.Fatalf("request after partition: %v", err)
	}
	resp.Body.Close()
}
