// Storage-fault injection: a service.Journal-compatible wrapper around
// *wal.Log that scripts append failures at record-count trigger points.
// EIO and torn writes are delivered through the wal package's WriteHook so
// the failure happens inside the real write path (torn writes leave genuine
// partial records on disk for the log's truncate-back healing to remove);
// fsync stalls ride the SyncHook; ENOSPC is a time window enforced at the
// wrapper, which also fails Ping so health probes and degraded-mode
// recovery see the full disk exactly as long as appends do.
package fault

import (
	"fmt"
	"sync"
	"time"

	"qfe/internal/wal"
)

// Journal wraps a write-ahead log with scripted storage faults. It
// implements the service layer's Journal interface; Close closes the
// underlying log.
type Journal struct {
	inner *wal.Log
	logf  Logf
	now   func() time.Time
	sleep func(time.Duration)

	mu      sync.Mutex
	faults  []StorageFault
	fired   []bool
	records int // cumulative records offered to Append this process
	// Armed one-shot faults, consumed inside the wal hooks.
	pendingEIO   bool
	pendingTorn  *StorageFault
	pendingStall time.Duration
	// Active ENOSPC window.
	enospcUntil time.Time
}

// OpenJournal opens a WAL with the schedule's storage faults installed in
// its write/sync hooks and returns the faulting wrapper. With no storage
// faults in the schedule the wrapper is a transparent pass-through.
func OpenJournal(wopts wal.Options, sched *Schedule, logf Logf) (*Journal, error) {
	j := &Journal{logf: logf, now: time.Now, sleep: time.Sleep}
	if sched != nil {
		j.faults = append(j.faults, sched.Storage...)
	}
	j.fired = make([]bool, len(j.faults))
	wopts.WriteHook = j.writeHook
	wopts.SyncHook = j.syncHook
	l, err := wal.Open(wopts)
	if err != nil {
		return nil, err
	}
	j.inner = l
	return j, nil
}

// log emits a fault notice.
func (j *Journal) log(format string, args ...any) {
	if j.logf != nil {
		j.logf(format, args...)
	}
}

// armLocked fires every not-yet-fired fault whose trigger the record count
// has reached; caller holds j.mu.
func (j *Journal) armLocked() {
	for i, f := range j.faults {
		if j.fired[i] || j.records < f.AtRecord {
			continue
		}
		j.fired[i] = true
		d := f.Duration.D()
		if d <= 0 {
			d = time.Second
		}
		switch f.Kind {
		case KindEIO:
			j.pendingEIO = true
			j.log("fault: arming EIO at record %d", j.records)
		case KindTorn:
			f := f
			j.pendingTorn = &f
			j.log("fault: arming torn write at record %d", j.records)
		case KindStall:
			j.pendingStall = d
			j.log("fault: arming %s fsync stall at record %d", d, j.records)
		case KindENOSPC:
			j.enospcUntil = j.now().Add(d)
			j.log("fault: ENOSPC window open for %s at record %d", d, j.records)
		}
	}
}

// writeHook intercepts the WAL's batch write (called under the log lock;
// j.mu is never held across inner calls, so lock order is always log→j).
func (j *Journal) writeHook(b []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if t := j.pendingTorn; t != nil {
		j.pendingTorn = nil
		n := t.TornBytes
		if n <= 0 || n >= len(b) {
			n = len(b) / 2
		}
		j.log("fault: torn write: %d of %d bytes hit disk", n, len(b))
		return n, fmt.Errorf("injected torn write after %d bytes", n)
	}
	if j.pendingEIO {
		j.pendingEIO = false
		j.log("fault: EIO on append")
		return 0, fmt.Errorf("injected I/O error")
	}
	return len(b), nil
}

// syncHook intercepts fsync entry: an armed stall sleeps here, pinning the
// log lock exactly as a hung disk would.
func (j *Journal) syncHook() error {
	j.mu.Lock()
	d := j.pendingStall
	j.pendingStall = 0
	j.mu.Unlock()
	if d > 0 {
		j.log("fault: fsync stalling %s", d)
		j.sleep(d)
	}
	return nil
}

// enospcLocked reports an open ENOSPC window; caller holds j.mu.
func (j *Journal) enospcLocked() error {
	if j.now().Before(j.enospcUntil) {
		return fmt.Errorf("injected ENOSPC: no space left on device")
	}
	return nil
}

// Append counts the batch toward the trigger points, arms whatever fires,
// and delegates — the armed one-shots are consumed inside the inner log's
// own write path.
func (j *Journal) Append(recs ...wal.Record) error {
	j.mu.Lock()
	j.records += len(recs)
	j.armLocked()
	if err := j.enospcLocked(); err != nil {
		j.mu.Unlock()
		j.log("fault: ENOSPC rejects append of %d record(s)", len(recs))
		return err
	}
	j.mu.Unlock()
	return j.inner.Append(recs...)
}

// Ping fails while the ENOSPC window is open — the signal degraded mode and
// health probes recover on — and otherwise probes the real log.
func (j *Journal) Ping() error {
	j.mu.Lock()
	err := j.enospcLocked()
	j.mu.Unlock()
	if err != nil {
		return err
	}
	return j.inner.Ping()
}

// Rotate delegates (checkpoint compaction is not a faulted path).
func (j *Journal) Rotate() (uint64, error) { return j.inner.Rotate() }

// TruncateBefore delegates.
func (j *Journal) TruncateBefore(boundary uint64) error { return j.inner.TruncateBefore(boundary) }

// Sync delegates.
func (j *Journal) Sync() error { return j.inner.Sync() }

// Close closes the underlying log.
func (j *Journal) Close() error { return j.inner.Close() }
