package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randColValue draws from a small mixed-kind pool, including Int/Float
// aliases of the same number so dictionary classes actually merge.
func randColValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Int(int64(rng.Intn(4)))
	case 1:
		return Float(float64(rng.Intn(4))) // KeyEqual to the Int above
	case 2:
		return Str([]string{"x", "y", "z"}[rng.Intn(3)])
	case 3:
		return Bool(rng.Intn(2) == 0)
	case 4:
		return Null()
	default:
		return Float(float64(rng.Intn(4)) + 0.5)
	}
}

func randColRelation(rng *rand.Rand) *Relation {
	r := New("T", NewSchema("a", KindInt, "b", KindString, "c", KindFloat))
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, Tuple{randColValue(rng), randColValue(rng), randColValue(rng)})
	}
	return r
}

// checkColumnar asserts the dictionary-code invariants: every row's code
// resolves to a KeyEqual representative, and two rows share a code in a
// column exactly when their values are KeyEqual.
func checkColumnar(t *testing.T, seed int64) {
	t.Helper()
	err := quick.Check(func(s int64) bool {
		rng := rand.New(rand.NewSource(seed ^ s))
		r := randColRelation(rng)
		c := NewColumnar(r)
		if c.NumRows() != r.Len() || len(c.Schema()) != r.Arity() {
			t.Logf("shape mismatch: %d/%d rows, %d/%d cols",
				c.NumRows(), r.Len(), len(c.Schema()), r.Arity())
			return false
		}
		for ci := 0; ci < r.Arity(); ci++ {
			cd := c.Col(ci)
			for ri, t0 := range r.Tuples {
				v := t0[ci]
				if !cd.Dict[cd.Codes[ri]].KeyEqual(v) {
					t.Logf("col %d row %d: code %d resolves to %v, value %v",
						ci, ri, cd.Codes[ri], cd.Dict[cd.Codes[ri]], v)
					return false
				}
				for rj := 0; rj < ri; rj++ {
					same := cd.Codes[ri] == cd.Codes[rj]
					if same != v.KeyEqual(r.Tuples[rj][ci]) {
						t.Logf("col %d rows %d/%d: code-sharing %v but KeyEqual %v",
							ci, ri, rj, same, !same)
						return false
					}
				}
			}
			// Dictionary entries must be pairwise distinct under KeyEqual.
			for i := range cd.Dict {
				for j := 0; j < i; j++ {
					if cd.Dict[i].KeyEqual(cd.Dict[j]) {
						t.Logf("col %d: duplicate dictionary entries %d/%d", ci, i, j)
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestColumnarCodes(t *testing.T) { checkColumnar(t, 11) }

func TestColumnarCodesForcedCollisions(t *testing.T) {
	ForceHashCollisionsForTesting(2)
	defer ForceHashCollisionsForTesting(0)
	checkColumnar(t, 22)
}

// TestBagSmallModeSpill drives a bag from the small linear mode through the
// spill into the hash map and compares every observable against the legacy
// string-keyed reference at each step.
func TestBagSmallModeSpill(t *testing.T) {
	for _, bits := range []int{0, 2} {
		t.Run(fmt.Sprintf("collisionBits=%d", bits), func(t *testing.T) {
			ForceHashCollisionsForTesting(bits)
			defer ForceHashCollisionsForTesting(0)
			rng := rand.New(rand.NewSource(99))
			bag := NewBag(0) // starts in small mode regardless of final size
			ref := map[string]int{}
			tuple := func() Tuple {
				return Tuple{randColValue(rng), randColValue(rng)}
			}
			for step := 0; step < 4*smallBagMax; step++ {
				tup := tuple()
				switch rng.Intn(3) {
				case 0:
					d := rng.Intn(3) - 1
					got := bag.Inc(tup, d)
					ref[tup.Key()] += d
					if got != ref[tup.Key()] {
						t.Fatalf("step %d: Inc = %d, want %d", step, got, ref[tup.Key()])
					}
				case 1:
					if got, want := bag.Count(tup), ref[tup.Key()]; got != want {
						t.Fatalf("step %d: Count = %d, want %d", step, got, want)
					}
				default:
					got := bag.TakeOne(tup)
					want := ref[tup.Key()] > 0
					if want {
						ref[tup.Key()]--
					}
					if got != want {
						t.Fatalf("step %d: TakeOne = %v, want %v", step, got, want)
					}
				}
			}
			if bag.m == nil {
				t.Fatalf("bag never spilled after %d mixed operations", 4*smallBagMax)
			}
			total := 0
			for _, n := range ref {
				total += n
			}
			if bag.Total() != total {
				t.Fatalf("Total = %d, want %d", bag.Total(), total)
			}
			// Every surviving count must round-trip through ForEach.
			seen := map[string]int{}
			bag.ForEach(func(tp Tuple, n int) { seen[tp.Key()] += n })
			for k, n := range ref {
				if seen[k] != n {
					t.Fatalf("ForEach count for %q = %d, want %d", k, seen[k], n)
				}
			}
		})
	}
}

// TestBagSmallModeProj exercises the projection operations across the spill
// boundary.
func TestBagSmallModeProj(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bag := NewBag(0)
	ref := map[string]int{}
	idx := []int{1, 2}
	for step := 0; step < 12*smallBagMax; step++ {
		tup := Tuple{randColValue(rng), Int(int64(rng.Intn(8))), randColValue(rng)}
		key := tup.Project(idx).Key()
		if rng.Intn(2) == 0 {
			got := bag.IncProj(tup, idx, 1)
			ref[key]++
			if got != ref[key] {
				t.Fatalf("step %d: IncProj = %d, want %d", step, got, ref[key])
			}
		} else if got, want := bag.CountProj(tup, idx), ref[key]; got != want {
			t.Fatalf("step %d: CountProj = %d, want %d", step, got, want)
		}
	}
	if bag.m == nil {
		t.Fatal("projection bag never spilled")
	}
}

// TestBagSmallModeFingerprint asserts that a bag's 128-bit fingerprint is
// identical whether its entries live in the small slice or in the map.
func TestBagSmallModeFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tuples := make([]Tuple, smallBagMax)
	for i := range tuples {
		tuples[i] = Tuple{Int(int64(i)), randColValue(rng)}
	}
	small := NewBag(0)             // stays in small mode (distinct <= max)
	big := NewBag(8 * smallBagMax) // map mode from the start
	for _, tp := range tuples {
		small.Inc(tp, 2)
		big.Inc(tp, 2)
	}
	for _, distinct := range []bool{false, true} {
		sl, sh := small.Fingerprint128(distinct)
		bl, bh := big.Fingerprint128(distinct)
		if sl != bl || sh != bh {
			t.Errorf("distinct=%v: small-mode fingerprint (%d,%d) != map-mode (%d,%d)",
				distinct, sl, sh, bl, bh)
		}
	}
	if small.m != nil {
		t.Error("small bag unexpectedly spilled")
	}
}
