package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a named bag (multiset) of tuples over a schema. Tuple order is
// preserved and meaningful for display, but all equality comparisons are
// order-insensitive (bag or set semantics as requested).
type Relation struct {
	Name   string
	Schema Schema
	Tuples []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Schema) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds tuples to the relation after checking arity. It returns r for
// chaining in dataset builders.
func (r *Relation) Append(ts ...Tuple) *Relation {
	for _, t := range ts {
		if len(t) != len(r.Schema) {
			panic(fmt.Sprintf("relation: %s: tuple arity %d != schema arity %d",
				r.Name, len(t), len(r.Schema)))
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// Clone deep-copies the relation (schema, tuples, values).
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Schema: r.Schema.Clone(), Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// Project returns a new relation containing the named columns in order.
// Duplicates are preserved (bag semantics).
func (r *Relation) Project(names []string) (*Relation, error) {
	schema, err := r.Schema.Project(names)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.Name, err)
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = r.Schema.IndexOf(n)
	}
	out := New(r.Name, schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Project(idx)
	}
	return out, nil
}

// Select returns a new relation containing the tuples for which keep returns
// true. The schema is shared (schemas are immutable by convention).
func (r *Relation) Select(keep func(Tuple) bool) *Relation {
	out := New(r.Name, r.Schema)
	for _, t := range r.Tuples {
		if keep(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Distinct returns a new relation with duplicate tuples removed, keeping the
// first occurrence of each (set semantics). Duplicates are detected through
// the hash kernel with equality verification on collision (see hash.go);
// slowDistinct is the string-keyed reference implementation.
func (r *Relation) Distinct() *Relation {
	out := New(r.Name, r.Schema)
	seen := NewBag(len(r.Tuples))
	for _, t := range r.Tuples {
		if seen.Inc(t, 1) == 1 {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// slowDistinct is the legacy string-keyed Distinct, kept as the reference
// implementation for the kernel's differential tests.
func (r *Relation) slowDistinct() *Relation {
	out := New(r.Name, r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Counts returns the multiset of tuple keys with multiplicities. It is the
// string-keyed reference form; hot paths use Bag instead.
func (r *Relation) Counts() map[string]int {
	m := make(map[string]int, len(r.Tuples))
	for _, t := range r.Tuples {
		m[t.Key()]++
	}
	return m
}

// BagEqual reports order-insensitive multiset equality of tuples. Schemas
// must have the same arity; column names are ignored (results are compared
// positionally, as SQL does).
func (r *Relation) BagEqual(s *Relation) bool {
	if r.Arity() != s.Arity() || r.Len() != s.Len() {
		return false
	}
	counts := r.Bag()
	for _, t := range s.Tuples {
		if counts.Inc(t, -1) < 0 {
			return false
		}
	}
	return true
}

// slowBagEqual is the legacy string-keyed BagEqual (differential reference).
func (r *Relation) slowBagEqual(s *Relation) bool {
	if r.Arity() != s.Arity() || r.Len() != s.Len() {
		return false
	}
	counts := r.Counts()
	for _, t := range s.Tuples {
		k := t.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// SetEqual reports equality of the distinct tuple sets.
func (r *Relation) SetEqual(s *Relation) bool {
	if r.Arity() != s.Arity() {
		return false
	}
	rs := r.Bag()
	ss := NewBag(len(s.Tuples))
	for _, t := range s.Tuples {
		if rs.Count(t) == 0 {
			return false
		}
		ss.Inc(t, 1)
	}
	missing := false
	rs.ForEach(func(t Tuple, _ int) {
		if ss.Count(t) == 0 {
			missing = true
		}
	})
	return !missing
}

// slowSetEqual is the legacy string-keyed SetEqual (differential reference).
func (r *Relation) slowSetEqual(s *Relation) bool {
	if r.Arity() != s.Arity() {
		return false
	}
	rs, ss := make(map[string]bool), make(map[string]bool)
	for _, t := range r.Tuples {
		rs[t.Key()] = true
	}
	for _, t := range s.Tuples {
		ss[t.Key()] = true
		if !rs[t.Key()] {
			return false
		}
	}
	for k := range rs {
		if !ss[k] {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the relation's bag of
// tuples (sorted tuple keys with multiplicity). Two relations have the same
// fingerprint iff BagEqual. It is how QFE partitions candidate queries by
// their result on D'.
func (r *Relation) Fingerprint() string {
	keys := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		keys[i] = t.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// Hash64 returns a 64-bit content hash over the schema and the tuples in
// stored order. It serves as the relation's version for the evaluation
// cache: two relations with equal hashes hold the same tuples in the same
// order under the same schema (modulo hash collisions, which at 64 bits are
// negligible for the relation counts QFE handles). Unlike Fingerprint it is
// order-sensitive and cheap to compare.
//
// The hash folds Tuple.Hash64 words (no per-tuple key strings, zero
// allocations) and therefore involves interner ids: it is process-local and
// must never be persisted. Codec snapshots do not store it; caches keyed by
// it (evalcache, db.Joined.ContentHash) recompute lazily after restore.
func (r *Relation) Hash64() uint64 {
	h := uint64(hashOffset64)
	for _, c := range r.Schema {
		h = hashString(h, c.Name)
		h = hashWord(h, uint64(c.Type))
	}
	h = hashWord(h, 0xff)
	for _, t := range r.Tuples {
		h = hashWord(h, t.Hash64())
	}
	return avalanche(h)
}

// SetFingerprint is Fingerprint under set semantics (duplicates collapsed).
func (r *Relation) SetFingerprint() string {
	seen := make(map[string]bool, len(r.Tuples))
	keys := make([]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// Sorted returns a copy of the relation with tuples in canonical order.
func (r *Relation) Sorted() *Relation {
	c := r.Clone()
	sort.Slice(c.Tuples, func(i, j int) bool { return c.Tuples[i].Less(c.Tuples[j]) })
	return c
}

// ActiveDomain returns the sorted distinct values of the named column.
func (r *Relation) ActiveDomain(col string) []Value {
	i := r.Schema.MustIndexOf(col)
	seen := make(map[uint64][]Value)
	var vals []Value
	for _, t := range r.Tuples {
		v := t[i]
		h := v.Hash64()
		dup := false
		for _, w := range seen[h] {
			if w.KeyEqual(v) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], v)
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].Compare(vals[b]) < 0 })
	return vals
}

// String renders the relation as an aligned text table, tuples in stored
// order. Used by the CLI, examples and failure messages.
func (r *Relation) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Schema))
	for i, c := range r.Schema {
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Tuples))
	for ti, t := range r.Tuples {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[ti] = row
	}
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	if r.Name != "" {
		b.WriteString(r.Name)
		b.WriteByte('\n')
	}
	writeRow(r.Schema.Names())
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
		_ = i
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
