// Hash-based evaluation kernel (DESIGN.md §7).
//
// Every hot path of the engine — bag/set dedup, hash joins, tuple-class
// partitioning, evaluation-cache fingerprints — used to funnel through
// Value.appendKey/Tuple.Key, building a fresh strings.Builder string per
// value per tuple per winnowing round. This file replaces that string
// material with fixed-width word hashing:
//
//   - an Interner maps strings to dense uint32 ids (RW-sharded, process-wide)
//     so string values hash as a single word;
//   - Value/Tuple hash by folding (kind tag, normalized numeric bits or
//     interned id) words through an FNV-1a-style multiply-xor with a final
//     avalanche — zero heap allocations;
//   - Bag is a hash-keyed multiset with equality verification on collision:
//     correctness NEVER depends on hash uniqueness, only speed does.
//
// The equality the kernel verifies is key equality — exactly the relation
// induced by Value.Key/Tuple.Key (Int(3) ≡ Float(3.0), mirroring Compare on
// the normalizable range) — exposed allocation-free as Value.KeyEqual and
// Tuple.KeyEqual, so the hashed paths are observationally identical to the
// legacy string-keyed paths (kept as slowXxx reference implementations and
// asserted equivalent by differential tests).
//
// Hashes involve interner ids and are therefore process-local: they must
// never be persisted. Codec snapshots do not store them; everything is
// recomputed lazily after restore.
package relation

import (
	"math"
	"sync"
	"sync/atomic"
)

// FNV-1a word folding with a murmur-style finalizer. hashWord is the
// per-word step; avalanche spreads the final state so truncated/bucketed
// uses of the hash stay well distributed.
const (
	hashOffset64 = 14695981039346656037
	hashPrime64  = 1099511628211

	// Seeds for the two independent words of 128-bit bag fingerprints.
	fpSeedLo = 0x9e3779b97f4a7c15
	fpSeedHi = 0xc2b2ae3d27d4eb4f
)

func hashWord(h, w uint64) uint64 { return (h ^ w) * hashPrime64 }

// hashString folds a string byte-wise (FNV-1a) without converting to []byte.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime64
	}
	return h
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// collisionTestBits, when positive, truncates every kernel hash to that many
// low bits, forcing unequal values and tuples into shared buckets. It exists
// solely so tests can prove the collision-verification invariant — every
// kernel operation must produce identical results at any truncation level,
// because equality is always verified with KeyEqual/Equal on bucket scans.
// Atomic so -race stays clean when parallel tests read full hashes; the
// relaxed load compiles to a plain move and is free on the hot path.
var collisionTestBits atomic.Int32

// ForceHashCollisionsForTesting truncates all kernel hashes to the low
// `bits` bits (bits <= 0 restores full 64-bit hashes). Test-only: it makes
// hash collisions routine instead of astronomically rare, so the
// verification paths actually execute. Callers must restore 0 when done.
func ForceHashCollisionsForTesting(bits int) { collisionTestBits.Store(int32(bits)) }

// CollisionTestMask applies the test truncation to a kernel hash. It is the
// identity in production. Kernel hashes computed outside this package
// (tupleclass.Class.Hash64) route through it so a test degrade applies
// uniformly across the whole stack.
func CollisionTestMask(h uint64) uint64 {
	if b := collisionTestBits.Load(); b > 0 {
		return h & (1<<uint(b) - 1)
	}
	return h
}

// Interner maps strings to dense uint32 ids so string values hash and
// compare as single machine words. It is sharded by string hash with one
// RWMutex per shard: lookups of already-interned strings (the steady state —
// a dataset's active domain is interned once) take only a read lock, so
// concurrent evaluation goroutines do not contend.
type Interner struct {
	next   atomic.Uint32
	shards [internShards]internShard
}

const internShards = 64

type internShard struct {
	mu sync.RWMutex
	m  map[string]uint32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[string]uint32)
	}
	return in
}

// Intern returns the id of s, assigning the next dense id on first sight.
// Ids are unique within one interner and stable for the process lifetime;
// they are never persisted (codec snapshots store the strings themselves).
func (in *Interner) Intern(s string) uint32 {
	sh := &in.shards[hashString(hashOffset64, s)%internShards]
	sh.mu.RLock()
	id, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[s]; ok {
		return id
	}
	id = in.next.Add(1)
	sh.m[s] = id
	return id
}

// Len returns the number of interned strings.
func (in *Interner) Len() int {
	n := 0
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// defaultInterner backs Value hashing. Process-wide by design: sessions
// share datasets, and a shared id space is what lets the evaluation cache
// match relation hashes across sessions. Growth is bounded by the number of
// distinct strings ever hashed — for the built-in datasets a few thousand;
// a long-lived server ingesting many novel user CSVs accumulates their
// distinct strings for the process lifetime (monitor with
// DefaultInterner().Len(); per-tenant interners are the escape hatch if
// that ever dominates, at the cost of cross-session cache hits).
var defaultInterner = NewInterner()

// DefaultInterner returns the process-wide interner used by Value hashing.
func DefaultInterner() *Interner { return defaultInterner }

// keyClass normalizes a value into the equality class its Key encodes:
// integral floats inside the exactly-representable window collapse onto
// ints (so Int(3) ≡ Float(3.0), mirroring Compare), NaNs collapse onto one
// class, and everything else keys on its own kind.
type keyClass uint8

const (
	kcNull keyClass = iota
	kcFalse
	kcTrue
	kcInt
	kcFloat
	kcNaN
	kcStr
)

// normalize returns the value's key class plus the class payload (int64
// value for kcInt, float bits for kcFloat; zero otherwise).
func (v Value) normalize() (keyClass, int64, uint64) {
	switch v.Kind {
	case KindNull:
		return kcNull, 0, 0
	case KindBool:
		if v.B {
			return kcTrue, 0, 0
		}
		return kcFalse, 0, 0
	case KindInt:
		return kcInt, v.I, 0
	case KindFloat:
		if v.F != v.F {
			return kcNaN, 0, 0
		}
		// Same window as appendKey: integral floats encode like ints so the
		// hashed and string-keyed paths induce the same equality.
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) && math.Abs(v.F) < 1e15 {
			return kcInt, int64(v.F), 0
		}
		return kcFloat, 0, math.Float64bits(v.F)
	default:
		return kcStr, 0, 0
	}
}

// KeyEqual reports whether v.Key() == w.Key() without materialising either
// key. It is the equality the hash kernel verifies on bucket collisions.
func (v Value) KeyEqual(w Value) bool {
	vc, vi, vf := v.normalize()
	wc, wi, wf := w.normalize()
	if vc != wc {
		return false
	}
	switch vc {
	case kcInt:
		return vi == wi
	case kcFloat:
		return vf == wf
	case kcStr:
		return v.S == w.S
	default: // null / bools / NaN: the class is the identity
		return true
	}
}

// appendHash folds v into a running hash as fixed-width words: one kind-tag
// word plus one payload word (normalized numeric bits or interned string
// id). Zero heap allocations.
func (v Value) appendHash(h uint64) uint64 {
	c, i, f := v.normalize()
	switch c {
	case kcInt:
		return hashWord(hashWord(h, uint64(c)), uint64(i))
	case kcFloat:
		return hashWord(hashWord(h, uint64(c)), f)
	case kcStr:
		return hashWord(hashWord(h, uint64(c)), uint64(defaultInterner.Intern(v.S)))
	default:
		return hashWord(h, uint64(c))
	}
}

// Hash64 returns the value's 64-bit hash. KeyEqual values hash equal;
// unequal values collide only with ordinary 64-bit probability, and every
// kernel use verifies equality on collision.
func (v Value) Hash64() uint64 {
	return CollisionTestMask(avalanche(v.appendHash(hashOffset64)))
}

// hashSeeded folds the tuple's values from the given seed. Hash64 and
// HashProj are both expressed through it, and the 128-bit bag fingerprint
// uses two distinct seeds.
func (t Tuple) hashSeeded(seed uint64) uint64 {
	h := seed
	for _, v := range t {
		h = v.appendHash(h)
	}
	return CollisionTestMask(avalanche(hashWord(h, uint64(len(t)))))
}

// Hash64 returns the tuple's 64-bit content hash with zero allocations.
// Tuples that are KeyEqual hash equal.
func (t Tuple) Hash64() uint64 { return t.hashSeeded(hashOffset64) }

// HashProj hashes the projection t[idx[0]], t[idx[1]], ... without
// materialising it: HashProj(t, idx) == Hash64(t.Project(idx)).
func (t Tuple) HashProj(idx []int) uint64 {
	h := uint64(hashOffset64)
	for _, j := range idx {
		h = t[j].appendHash(h)
	}
	return CollisionTestMask(avalanche(hashWord(h, uint64(len(idx)))))
}

// KeyEqual reports whether t.Key() == u.Key() without materialising keys.
func (t Tuple) KeyEqual(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].KeyEqual(u[i]) {
			return false
		}
	}
	return true
}

// keyEqualProj reports whether t.Project(idx) is KeyEqual to the already
// materialised tuple u.
func (t Tuple) keyEqualProj(idx []int, u Tuple) bool {
	if len(idx) != len(u) {
		return false
	}
	for k, j := range idx {
		if !t[j].KeyEqual(u[k]) {
			return false
		}
	}
	return true
}

// HashInts folds a slice of small ints through the kernel hash. It exists
// so sibling kernel hashes (tupleclass.Class.Hash64) share this package's
// fold, finalizer and CollisionTestMask instead of re-implementing them.
func HashInts(xs []int) uint64 {
	h := uint64(hashOffset64)
	for _, x := range xs {
		h = hashWord(h, uint64(x))
	}
	return CollisionTestMask(avalanche(h))
}

// bagEntry is one distinct tuple (under KeyEqual) with its multiplicity.
// In the small (slice) mode the stored hash stands in for the map key.
type bagEntry struct {
	h uint64
	t Tuple
	n int
}

// smallBagMax is the distinct-entry count up to which a Bag stays a flat
// slice scanned linearly instead of a hash map. Comparing a handful of
// uint64 hashes beats a map probe, and — more importantly on the tiny
// relations of Example 1.1-sized databases — skips the map allocation
// entirely. Past the threshold the bag spills into the map transparently.
const smallBagMax = 12

// Bag is a hash-keyed multiset of tuples with equality verification on hash
// collision: tuples sharing a 64-bit hash live in one bucket and are told
// apart by KeyEqual, so counts are exact regardless of hash quality. It
// replaces the map[string]int built from Tuple.Key on every hot path.
//
// Bags sized (by the NewBag hint) at or under smallBagMax start in a small
// mode — a flat entry slice with linear hash scan and no map — and spill to
// the hash map only when the distinct count outgrows the threshold, so the
// thousands of tiny bags built per candidate search on small databases never
// touch the map runtime. Not safe for concurrent use; the parallel paths
// build one bag per worker or per call.
type Bag struct {
	small    []bagEntry // small mode storage; nil once spilled
	m        map[uint64][]bagEntry
	total    int
	distinct int
}

// NewBag returns an empty bag sized for about hint distinct tuples.
func NewBag(hint int) *Bag {
	if hint <= smallBagMax {
		return &Bag{}
	}
	return &Bag{m: make(map[uint64][]bagEntry, hint)}
}

// smallFind returns the index of the entry with hash h that is KeyEqual to t
// in the small slice, or -1.
func (b *Bag) smallFind(h uint64, t Tuple) int {
	for i := range b.small {
		if b.small[i].h == h && b.small[i].t.KeyEqual(t) {
			return i
		}
	}
	return -1
}

// smallFindProj is smallFind for an unmaterialised projection t[idx].
func (b *Bag) smallFindProj(h uint64, t Tuple, idx []int) int {
	for i := range b.small {
		if b.small[i].h == h && t.keyEqualProj(idx, b.small[i].t) {
			return i
		}
	}
	return -1
}

// spill migrates the small slice into the hash map once the distinct count
// outgrows smallBagMax.
func (b *Bag) spill() {
	b.m = make(map[uint64][]bagEntry, 2*smallBagMax)
	for _, e := range b.small {
		b.m[e.h] = append(b.m[e.h], e)
	}
	b.small = nil
}

// insert stores a brand-new entry in whichever mode the bag is in.
func (b *Bag) insert(e bagEntry) {
	if b.m == nil {
		if len(b.small) < smallBagMax {
			b.small = append(b.small, e)
			b.distinct++
			return
		}
		b.spill()
	}
	b.m[e.h] = append(b.m[e.h], e)
	b.distinct++
}

// Inc adjusts the count of t by d (creating the entry if needed, including
// at negative counts) and returns the new count. The tuple is retained by
// reference; callers must not mutate it afterwards.
func (b *Bag) Inc(t Tuple, d int) int {
	h := t.Hash64()
	b.total += d
	if b.m == nil {
		if i := b.smallFind(h, t); i >= 0 {
			b.small[i].n += d
			return b.small[i].n
		}
	} else {
		bucket := b.m[h]
		for i := range bucket {
			if bucket[i].t.KeyEqual(t) {
				bucket[i].n += d
				return bucket[i].n
			}
		}
	}
	b.insert(bagEntry{h: h, t: t, n: d})
	return d
}

// Count returns the current count of t (0 if absent).
func (b *Bag) Count(t Tuple) int {
	h := t.Hash64()
	if b.m == nil {
		if i := b.smallFind(h, t); i >= 0 {
			return b.small[i].n
		}
		return 0
	}
	for _, e := range b.m[h] {
		if e.t.KeyEqual(t) {
			return e.n
		}
	}
	return 0
}

// TakeOne decrements t's count if it is positive and reports whether it did.
func (b *Bag) TakeOne(t Tuple) bool {
	h := t.Hash64()
	if b.m == nil {
		if i := b.smallFind(h, t); i >= 0 {
			if b.small[i].n <= 0 {
				return false
			}
			b.small[i].n--
			b.total--
			return true
		}
		return false
	}
	bucket := b.m[h]
	for i := range bucket {
		if bucket[i].t.KeyEqual(t) {
			if bucket[i].n <= 0 {
				return false
			}
			bucket[i].n--
			b.total--
			return true
		}
	}
	return false
}

// IncProj is Inc on the projection t[idx] without materialising it unless
// the projection is new to the bag (first occurrence stores a materialised
// copy, so later probes stay allocation-free).
func (b *Bag) IncProj(t Tuple, idx []int, d int) int {
	h := t.HashProj(idx)
	b.total += d
	if b.m == nil {
		if i := b.smallFindProj(h, t, idx); i >= 0 {
			b.small[i].n += d
			return b.small[i].n
		}
	} else {
		bucket := b.m[h]
		for i := range bucket {
			if t.keyEqualProj(idx, bucket[i].t) {
				bucket[i].n += d
				return bucket[i].n
			}
		}
	}
	b.insert(bagEntry{h: h, t: t.Project(idx), n: d})
	return d
}

// CountProj returns the count of the projection t[idx] without
// materialising it.
func (b *Bag) CountProj(t Tuple, idx []int) int {
	h := t.HashProj(idx)
	if b.m == nil {
		if i := b.smallFindProj(h, t, idx); i >= 0 {
			return b.small[i].n
		}
		return 0
	}
	for _, e := range b.m[h] {
		if t.keyEqualProj(idx, e.t) {
			return e.n
		}
	}
	return 0
}

// Distinct returns the number of distinct tuples ever inserted (entries are
// never removed, only counted down).
func (b *Bag) Distinct() int { return b.distinct }

// Total returns the sum of all counts.
func (b *Bag) Total() int { return b.total }

// ForEach visits every entry (including non-positive counts) in
// unspecified order. Callers needing determinism must sort or combine
// commutatively.
func (b *Bag) ForEach(f func(t Tuple, n int)) {
	for i := range b.small {
		f(b.small[i].t, b.small[i].n)
	}
	for _, bucket := range b.m {
		for _, e := range bucket {
			f(e.t, e.n)
		}
	}
}

// Fingerprint128 returns a 128-bit order-insensitive fingerprint of the
// bag's positive-count entries: two bags agree iff they hold the same
// tuples with the same multiplicities (with distinct=true, multiplicities
// collapse to set membership), up to 128-bit hash collision. Each entry
// contributes two independently seeded avalanche words combined by
// wrapping addition, so the result is independent of iteration order.
//
// Unlike the verified Bag operations this fingerprint is probabilistic —
// it is used only to group candidate queries by their predicted result
// (algebra.Query.DeltaFingerprint), where a collision would merge two
// query groups; at 128 bits that probability is negligible for any
// realistic candidate count.
func (b *Bag) Fingerprint128(distinct bool) (lo, hi uint64) {
	fold := func(e *bagEntry) {
		if e.n <= 0 {
			return
		}
		n := uint64(e.n)
		if distinct {
			n = 1
		}
		lo += avalanche(hashWord(e.t.hashSeeded(fpSeedLo), n))
		hi += avalanche(hashWord(e.t.hashSeeded(fpSeedHi), n))
	}
	for i := range b.small {
		fold(&b.small[i])
	}
	for _, bucket := range b.m {
		for i := range bucket {
			fold(&bucket[i])
		}
	}
	return lo, hi
}

// Bag returns the relation's tuples as a Bag (multiplicities under
// KeyEqual). It is the hashed replacement for Counts.
func (r *Relation) Bag() *Bag {
	b := NewBag(len(r.Tuples))
	for _, t := range r.Tuples {
		b.Inc(t, 1)
	}
	return b
}
