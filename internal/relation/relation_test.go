package relation

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func employeeRel() *Relation {
	r := New("Employee", NewSchema(
		"Eid", KindInt, "name", KindString, "gender", KindString,
		"dept", KindString, "salary", KindInt))
	r.Append(
		NewTuple(1, "Alice", "F", "Sales", 3700),
		NewTuple(2, "Bob", "M", "IT", 4200),
		NewTuple(3, "Celina", "F", "Service", 3000),
		NewTuple(4, "Darren", "M", "IT", 5000),
	)
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("a", KindInt, "b", KindString)
	if s.IndexOf("a") != 0 || s.IndexOf("b") != 1 || s.IndexOf("c") != -1 {
		t.Error("IndexOf broken")
	}
	if got := s.Names(); got[0] != "a" || got[1] != "b" {
		t.Error("Names broken")
	}
	if !s.Equal(s.Clone()) {
		t.Error("Clone should equal original")
	}
	q := s.Qualify("T")
	if q[0].Name != "T.a" || q[1].Name != "T.b" {
		t.Errorf("Qualify = %v", q.Names())
	}
	// Qualify is idempotent on already-qualified names.
	if qq := q.Qualify("U"); qq[0].Name != "T.a" {
		t.Errorf("double Qualify = %v", qq.Names())
	}
	cat := s.Concat(NewSchema("c", KindBool))
	if len(cat) != 3 || cat[2].Name != "c" {
		t.Error("Concat broken")
	}
	if s.String() != "a:int, b:string" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema("a", KindInt, "b", KindString, "c", KindBool)
	p, err := s.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Name != "c" || p[1].Name != "a" {
		t.Errorf("Project order = %v", p.Names())
	}
	if _, err := s.Project([]string{"zzz"}); err == nil {
		t.Error("Project should fail on missing column")
	}
}

func TestTupleBasics(t *testing.T) {
	a := NewTuple(1, "x", 2.5)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	b[0] = Int(9)
	if a.Equal(b) {
		t.Error("mutated clone should differ")
	}
	if a.DiffCount(b) != 1 {
		t.Errorf("DiffCount = %d, want 1", a.DiffCount(b))
	}
	if a.DiffCount(NewTuple(1)) != 3 {
		t.Error("DiffCount across arities should be max arity")
	}
	if got := a.String(); got != "(1, x, 2.5)" {
		t.Errorf("String = %q", got)
	}
	if !NewTuple(1, "a").Less(NewTuple(1, "b")) {
		t.Error("Less lexicographic order broken")
	}
	if !NewTuple(1).Less(NewTuple(1, "a")) {
		t.Error("shorter prefix should sort first")
	}
}

func TestTupleKeyCollisionResistance(t *testing.T) {
	// Adjacent string cells must not be confusable.
	a := NewTuple("ab", "c")
	b := NewTuple("a", "bc")
	if a.Key() == b.Key() {
		t.Error("tuple key collision between (ab,c) and (a,bc)")
	}
}

func TestRelationProjectSelect(t *testing.T) {
	r := employeeRel()
	males := r.Select(func(tu Tuple) bool { return tu[2].Equal(Str("M")) })
	if males.Len() != 2 {
		t.Fatalf("males = %d, want 2", males.Len())
	}
	names, err := males.Project([]string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	want := New("", NewSchema("name", KindString)).
		Append(NewTuple("Bob"), NewTuple("Darren"))
	if !names.BagEqual(want) {
		t.Errorf("project = %v", names.Tuples)
	}
	if _, err := r.Project([]string{"no_such"}); err == nil {
		t.Error("Project should fail on missing column")
	}
}

func TestBagEqualOrderInsensitive(t *testing.T) {
	a := New("a", NewSchema("x", KindInt)).Append(NewTuple(1), NewTuple(2), NewTuple(2))
	b := New("b", NewSchema("x", KindInt)).Append(NewTuple(2), NewTuple(1), NewTuple(2))
	c := New("c", NewSchema("x", KindInt)).Append(NewTuple(1), NewTuple(2))
	d := New("d", NewSchema("x", KindInt)).Append(NewTuple(1), NewTuple(1), NewTuple(2))
	if !a.BagEqual(b) {
		t.Error("a and b are bag-equal")
	}
	if a.BagEqual(c) {
		t.Error("a and c differ in cardinality")
	}
	if a.BagEqual(d) {
		t.Error("a and d differ in multiplicities")
	}
	if !a.SetEqual(c) || !a.SetEqual(d) {
		t.Error("a, c, d are set-equal")
	}
	e := New("e", NewSchema("x", KindInt)).Append(NewTuple(3))
	if a.SetEqual(e) {
		t.Error("a and e are not set-equal")
	}
}

func TestFingerprintMatchesBagEqual(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mk := func(vals []int) *Relation {
		rel := New("t", NewSchema("x", KindInt))
		for _, v := range vals {
			rel.Append(NewTuple(v))
		}
		return rel
	}
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(3)
		}
		perm := append([]int(nil), vals...)
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		a, b := mk(vals), mk(perm)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("permuted bags should share fingerprint: %v vs %v", vals, perm)
		}
		other := make([]int, n)
		copy(other, vals)
		if n > 0 {
			other[r.Intn(n)] += 10
			c := mk(other)
			if a.Fingerprint() == c.Fingerprint() {
				t.Fatalf("different bags share fingerprint: %v vs %v", vals, other)
			}
			if a.BagEqual(c) {
				t.Fatalf("different bags BagEqual: %v vs %v", vals, other)
			}
		}
	}
}

func TestSetFingerprint(t *testing.T) {
	a := New("a", NewSchema("x", KindInt)).Append(NewTuple(1), NewTuple(1), NewTuple(2))
	b := New("b", NewSchema("x", KindInt)).Append(NewTuple(2), NewTuple(1))
	if a.SetFingerprint() != b.SetFingerprint() {
		t.Error("set fingerprints should collapse duplicates")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("bag fingerprints should not collapse duplicates")
	}
}

func TestDistinct(t *testing.T) {
	a := New("a", NewSchema("x", KindInt)).Append(NewTuple(2), NewTuple(1), NewTuple(2))
	d := a.Distinct()
	if d.Len() != 2 {
		t.Fatalf("distinct len = %d", d.Len())
	}
	// First occurrence order preserved.
	if !d.Tuples[0].Equal(NewTuple(2)) || !d.Tuples[1].Equal(NewTuple(1)) {
		t.Errorf("distinct order = %v", d.Tuples)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := employeeRel()
	c := r.Clone()
	c.Tuples[0][1] = Str("Mallory")
	if r.Tuples[0][1].S != "Alice" {
		t.Error("Clone must deep-copy tuples")
	}
}

func TestActiveDomain(t *testing.T) {
	r := employeeRel()
	depts := r.ActiveDomain("dept")
	got := make([]string, len(depts))
	for i, v := range depts {
		got[i] = v.S
	}
	want := []string{"IT", "Sales", "Service"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("ActiveDomain = %v, want %v", got, want)
	}
}

func TestSortedCanonical(t *testing.T) {
	a := New("a", NewSchema("x", KindInt, "y", KindString)).
		Append(NewTuple(2, "b"), NewTuple(1, "z"), NewTuple(2, "a"))
	s := a.Sorted()
	if !sort.SliceIsSorted(s.Tuples, func(i, j int) bool { return s.Tuples[i].Less(s.Tuples[j]) }) {
		t.Error("Sorted not in canonical order")
	}
	if a.Tuples[0][0].I != 2 {
		t.Error("Sorted must not mutate the receiver")
	}
}

func TestRelationString(t *testing.T) {
	s := employeeRel().String()
	if !strings.Contains(s, "Employee") || !strings.Contains(s, "Darren") {
		t.Errorf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "salary") {
		t.Errorf("render missing header:\n%s", s)
	}
}

func TestAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong arity should panic")
		}
	}()
	New("t", NewSchema("x", KindInt)).Append(NewTuple(1, 2))
}

func TestCSVRoundTrip(t *testing.T) {
	r := employeeRel()
	r.Tuples[2][3] = Null() // exercise NULL round-trip
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("Employee", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema.Equal(r.Schema) {
		t.Fatalf("schema round trip: %v vs %v", back.Schema, r.Schema)
	}
	if !back.BagEqual(r) {
		t.Fatalf("tuples round trip:\n%s\nvs\n%s", back, r)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("a:int\nxyz\n")); err == nil {
		t.Error("bad int cell should error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a:wibble\n1\n")); err == nil {
		t.Error("unknown type should error")
	}
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	// Bare column name defaults to string.
	r, err := ReadCSV("t", strings.NewReader("a\nhello\n"))
	if err != nil || r.Schema[0].Type != KindString {
		t.Errorf("bare header: %v %v", r, err)
	}
}

func TestBagEqualQuick(t *testing.T) {
	// Property: shuffling a relation never changes BagEqual/Fingerprint.
	f := func(xs []int8, seed int64) bool {
		rel := New("t", NewSchema("x", KindInt))
		for _, x := range xs {
			rel.Append(NewTuple(int(x)))
		}
		shuf := rel.Clone()
		rnd := rand.New(rand.NewSource(seed))
		rnd.Shuffle(len(shuf.Tuples), func(i, j int) {
			shuf.Tuples[i], shuf.Tuples[j] = shuf.Tuples[j], shuf.Tuples[i]
		})
		return rel.BagEqual(shuf) && rel.Fingerprint() == shuf.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
