// Package relation implements the typed relational data model that every
// other QFE component builds on: values, schemas, tuples and relations with
// bag (multiset) and set semantics.
//
// The paper (Li, Chan, Maier, PVLDB 8(13)) runs on top of MySQL; this package
// is the in-memory substitute. It is deliberately small and deterministic:
// relations preserve tuple order, all iteration orders are stable, and every
// operation that "modifies" a relation returns a copy unless it is explicitly
// documented as in-place.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the engine. QFE only needs
// the types that appear in the paper's datasets: integers, floats, strings
// and booleans, plus NULL for outer-join-style extensions.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind ("int", "float", ...).
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is ordered-numeric (int or float).
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single typed cell value. The struct is comparable (usable as a
// map key) and compact; only the field selected by Kind is meaningful.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null returns the NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String2 is not provided; use Str. (The method name String is reserved for
// fmt.Stringer.)

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts a numeric value to float64. It panics on non-numeric
// kinds; callers are expected to have checked Kind.Numeric first.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		panic(fmt.Sprintf("relation: AsFloat on %s value", v.Kind))
	}
}

// Equal reports deep value equality. Int and float values compare
// numerically, so Int(3) equals Float(3.0); this mirrors SQL comparison
// semantics and keeps predicate evaluation consistent across numeric kinds.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Compare orders two values. The order is total:
//
//	NULL < bool(false) < bool(true) < numerics (by value) < strings (lexical)
//
// Numeric kinds compare with each other by numeric value; ties between an
// int and a float representing the same number are broken in favour of
// equality (0). Comparing across non-numeric kinds orders by kind rank.
func (v Value) Compare(w Value) int {
	vr, wr := v.rank(), w.rank()
	if vr != wr {
		if vr < wr {
			return -1
		}
		return 1
	}
	switch {
	case v.Kind == KindNull:
		return 0
	case v.Kind == KindBool:
		if v.B == w.B {
			return 0
		}
		if !v.B {
			return -1
		}
		return 1
	case v.Kind.Numeric():
		if v.Kind == KindInt && w.Kind == KindInt {
			switch {
			case v.I < w.I:
				return -1
			case v.I > w.I:
				return 1
			default:
				return 0
			}
		}
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	default: // string
		return strings.Compare(v.S, w.S)
	}
}

// rank groups kinds for cross-kind ordering; numerics share a rank.
func (v Value) rank() int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

// String renders the value for display: NULL, integers, shortest-float,
// quoted strings, true/false.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
	}
}

// SQL renders the value as a SQL literal (strings single-quoted with
// escaping, NULL as the keyword).
func (v Value) SQL() string {
	switch v.Kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindNull:
		return "NULL"
	default:
		return v.String()
	}
}

// appendKey writes a compact unambiguous encoding of v to b. It is the
// building block for tuple/relation fingerprints used in maps.
func (v Value) appendKey(b *strings.Builder) {
	switch v.Kind {
	case KindNull:
		b.WriteByte('n')
	case KindInt:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.I, 10))
	case KindFloat:
		// Integral floats encode like ints so Int(3) and Float(3) agree,
		// matching Equal/Compare semantics.
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) && math.Abs(v.F) < 1e15 {
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(int64(v.F), 10))
		} else {
			b.WriteByte('f')
			b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
		}
	case KindString:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.S)))
		b.WriteByte(':')
		b.WriteString(v.S)
	case KindBool:
		if v.B {
			b.WriteByte('t')
		} else {
			b.WriteByte('b')
		}
	}
}

// Key returns the canonical encoding of the value, safe as a map key across
// kinds (Int/Float that compare equal share a key).
func (v Value) Key() string {
	var b strings.Builder
	v.appendKey(&b)
	return b.String()
}

// ParseValue parses s into a value of the given kind. It is used by the CSV
// loader and the SQL parser.
func ParseValue(kind Kind, s string) (Value, error) {
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return Str(s), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("relation: parse: unknown kind %v", kind)
	}
}
