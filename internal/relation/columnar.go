// Columnar representation (DESIGN.md §9).
//
// A Columnar is a dictionary-encoded, column-oriented view of a Relation:
// per column, every row holds a dense uint32 code into a small dictionary of
// representative values, built through the hash kernel (hash bucket plus
// KeyEqual verification, so codes are exact regardless of hash quality —
// including under ForceHashCollisionsForTesting).
//
// The batch evaluator (internal/algebra) exploits one invariant: any
// predicate term whose outcome is defined through Value.Compare / Value.Equal
// is CONSTANT on KeyEqual classes. KeyEqual groups exactly the values whose
// canonical Key agrees — Int(3) ≡ Float(3.0) inside the exactly-representable
// window, one class per NaN, per bool, per string — and Compare cannot
// distinguish two members of such a class against any third value. A term can
// therefore be evaluated ONCE per dictionary code (on the representative) and
// looked up per row, instead of once per row, without changing a single
// outcome relative to the scalar row-at-a-time path.
package relation

import "sync"

// ColumnDict is one dictionary-encoded column: Codes[row] indexes Dict, and
// Dict holds the first-seen representative of each KeyEqual class in the
// column. len(Dict) is the column's distinct-value count under KeyEqual.
type ColumnDict struct {
	Codes []uint32
	Dict  []Value
}

// Columnar is the column-oriented view of Source. Source is retained because
// materialisation must project the actual row values (a dictionary
// representative is only KeyEqual to the row value, e.g. Int(3) for a row
// holding Float(3.0)); the dictionaries serve predicate evaluation only.
//
// Column dictionaries are built lazily on first access (Col): predicates of
// a candidate set typically reference a few columns of a wide join, so the
// unreferenced columns never pay the O(rows) encode. The Source relation is
// treated as immutable; a Columnar is safe for concurrent use.
type Columnar struct {
	Source *Relation
	cols   []ColumnDict
	once   []sync.Once
}

// NewColumnar prepares the columnar view of r. Per-column cost (one hash +
// bucket probe per cell) is deferred to the first Col access of each column;
// the view is meant to be built once per relation and shared by every batch
// evaluation over it (db.Joined memoises it per join).
func NewColumnar(r *Relation) *Columnar {
	return &Columnar{
		Source: r,
		cols:   make([]ColumnDict, r.Arity()),
		once:   make([]sync.Once, r.Arity()),
	}
}

// Col returns the dictionary encoding of column ci, building it on first
// access (concurrency-safe; subsequent calls are a sync.Once fast path).
func (c *Columnar) Col(ci int) *ColumnDict {
	c.once[ci].Do(func() { c.cols[ci] = encodeColumn(c.Source, ci) })
	return &c.cols[ci]
}

// encodeColumn dictionary-encodes one column through the hash kernel.
func encodeColumn(r *Relation, ci int) ColumnDict {
	n := r.Len()
	codes := make([]uint32, n)
	var dict []Value
	buckets := make(map[uint64][]uint32, n)
	for ri, t := range r.Tuples {
		v := t[ci]
		h := v.Hash64()
		code := ^uint32(0)
		for _, cand := range buckets[h] {
			if dict[cand].KeyEqual(v) {
				code = cand
				break
			}
		}
		if code == ^uint32(0) {
			code = uint32(len(dict))
			dict = append(dict, v)
			buckets[h] = append(buckets[h], code)
		}
		codes[ri] = code
	}
	return ColumnDict{Codes: codes, Dict: dict}
}

// NumRows returns the number of rows of the source relation.
func (c *Columnar) NumRows() int { return c.Source.Len() }

// Schema returns the source relation's schema.
func (c *Columnar) Schema() Schema { return c.Source.Schema }
