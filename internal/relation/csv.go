package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a relation from CSV. The first row must be a header of the
// form "name:type" (type in {int,float,string,bool}); a bare "name" defaults
// to string. Empty cells become NULL.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: csv %s: read header: %w", name, err)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		col := Column{Name: h, Type: KindString}
		if j := strings.LastIndexByte(h, ':'); j >= 0 {
			col.Name = h[:j]
			switch strings.ToLower(h[j+1:]) {
			case "int":
				col.Type = KindInt
			case "float":
				col.Type = KindFloat
			case "string", "str":
				col.Type = KindString
			case "bool":
				col.Type = KindBool
			default:
				return nil, fmt.Errorf("relation: csv %s: column %q: unknown type", name, h)
			}
		}
		schema[i] = col
	}
	rel := New(name, schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv %s line %d: %w", name, line, err)
		}
		if len(record) != len(schema) {
			return nil, fmt.Errorf("relation: csv %s line %d: %d fields, want %d",
				name, line, len(record), len(schema))
		}
		t := make(Tuple, len(record))
		for i, cell := range record {
			if cell == "" {
				t[i] = Null()
				continue
			}
			v, err := ParseValue(schema[i].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: csv %s line %d col %s: %w",
					name, line, schema[i].Name, err)
			}
			t[i] = v
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}

// WriteCSV writes the relation in the format ReadCSV accepts.
func WriteCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(rel.Schema))
	for i, c := range rel.Schema {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: csv write %s: %w", rel.Name, err)
	}
	row := make([]string, len(rel.Schema))
	for _, t := range rel.Tuples {
		for i, v := range t {
			switch v.Kind {
			case KindNull:
				row[i] = ""
			case KindFloat:
				row[i] = strconv.FormatFloat(v.F, 'g', -1, 64)
			default:
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: csv write %s: %w", rel.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
