package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, "hi"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("int/float should be numeric")
	}
	if KindString.Numeric() || KindBool.Numeric() || KindNull.Numeric() {
		t.Error("string/bool/null should not be numeric")
	}
}

func TestValueCompareSameKind(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(5).Compare(Int(5)) != 0 {
		t.Error("int comparison broken")
	}
	if Float(1.5).Compare(Float(2.5)) != -1 || Float(2.5).Compare(Float(1.5)) != 1 {
		t.Error("float comparison broken")
	}
	if Str("a").Compare(Str("b")) != -1 || Str("b").Compare(Str("a")) != 1 || Str("a").Compare(Str("a")) != 0 {
		t.Error("string comparison broken")
	}
	if Bool(false).Compare(Bool(true)) != -1 || Bool(true).Compare(Bool(false)) != 1 {
		t.Error("bool comparison broken")
	}
	if Null().Compare(Null()) != 0 {
		t.Error("null should equal null")
	}
}

func TestValueCompareCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Compare(Float(3.5)) != -1 {
		t.Error("Int(3) < Float(3.5)")
	}
	if Float(3.5).Compare(Int(4)) != -1 {
		t.Error("Float(3.5) < Int(4)")
	}
	// Cross-kind ordering: null < bool < numeric < string.
	if Null().Compare(Bool(false)) != -1 {
		t.Error("null < bool")
	}
	if Bool(true).Compare(Int(0)) != -1 {
		t.Error("bool < int")
	}
	if Int(999).Compare(Str("")) != -1 {
		t.Error("numeric < string")
	}
}

func TestValueKeyAgreesWithEqual(t *testing.T) {
	// Equal values share keys, including Int/Float that compare equal.
	if Int(3).Key() != Float(3).Key() {
		t.Errorf("Int(3).Key()=%q != Float(3.0).Key()=%q", Int(3).Key(), Float(3).Key())
	}
	if Int(3).Key() == Float(3.5).Key() {
		t.Error("distinct values share key")
	}
	if Str("t").Key() == Bool(true).Key() {
		t.Error("Str(t) and Bool(true) must not collide")
	}
	if Str("3").Key() == Int(3).Key() {
		t.Error("Str(3) and Int(3) must not collide")
	}
}

func TestValueKeyQuick(t *testing.T) {
	// Property: for random int pairs, key equality iff value equality.
	f := func(a, b int64) bool {
		return (Int(a).Key() == Int(b).Key()) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return (Str(a).Key() == Str(b).Key()) == (a == b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Float(a).Compare(Float(b)) == -Float(b).Compare(Float(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueSQL(t *testing.T) {
	if got := Str("O'Brien").SQL(); got != "'O''Brien'" {
		t.Errorf("SQL quoting = %q", got)
	}
	if got := Null().SQL(); got != "NULL" {
		t.Errorf("NULL literal = %q", got)
	}
	if got := Int(5).SQL(); got != "5" {
		t.Errorf("Int literal = %q", got)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt, " 42 ")
	if err != nil || !v.Equal(Int(42)) {
		t.Errorf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(KindFloat, "2.5")
	if err != nil || !v.Equal(Float(2.5)) {
		t.Errorf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue(KindString, "abc")
	if err != nil || !v.Equal(Str("abc")) {
		t.Errorf("ParseValue string: %v %v", v, err)
	}
	v, err = ParseValue(KindBool, "true")
	if err != nil || !v.Equal(Bool(true)) {
		t.Errorf("ParseValue bool: %v %v", v, err)
	}
	if _, err := ParseValue(KindInt, "zap"); err == nil {
		t.Error("ParseValue should fail on bad int")
	}
	if _, err := ParseValue(KindBool, "zap"); err == nil {
		t.Error("ParseValue should fail on bad bool")
	}
}

func TestAsFloatPanicsOnString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AsFloat on string should panic")
		}
	}()
	_ = Str("x").AsFloat()
}
