package relation

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// --- hash/key-equality semantics --------------------------------------------

func TestValueHashMirrorsKey(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Bool(false),
		Int(0), Int(3), Int(-3), Int(1 << 40),
		Float(3), Float(3.0), Float(3.5), Float(-0.0), Float(0.0),
		Float(math.Inf(1)), Float(math.Inf(-1)), Float(math.NaN()),
		Float(1e16), Int(10000000000000000),
		Str(""), Str("3"), Str("t"), Str("abc"),
	}
	for _, v := range vals {
		for _, w := range vals {
			keyEq := v.Key() == w.Key()
			if got := v.KeyEqual(w); got != keyEq {
				t.Errorf("KeyEqual(%v, %v) = %v, Key equality = %v", v, w, got, keyEq)
			}
			if keyEq && v.Hash64() != w.Hash64() {
				t.Errorf("key-equal values %v, %v hash differently", v, w)
			}
		}
	}
	// The paper-relevant coincidences.
	if !Int(3).KeyEqual(Float(3.0)) || Int(3).Hash64() != Float(3.0).Hash64() {
		t.Error("Int(3) and Float(3.0) must be key-equal and hash-equal (mirrors Compare)")
	}
	if Int(3).KeyEqual(Float(3.5)) || Str("3").KeyEqual(Int(3)) || Str("t").KeyEqual(Bool(true)) {
		t.Error("cross-kind values must not be key-equal")
	}
}

func TestTupleHashAgreesWithKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVal := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Int(int64(rng.Intn(5)))
		case 1:
			return Float(float64(rng.Intn(5)))
		case 2:
			return Str(fmt.Sprintf("s%d", rng.Intn(4)))
		case 3:
			return Bool(rng.Intn(2) == 0)
		default:
			return Null()
		}
	}
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(4)
		a, b := make(Tuple, n), make(Tuple, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = randVal(), randVal()
		}
		keyEq := a.Key() == b.Key()
		if got := a.KeyEqual(b); got != keyEq {
			t.Fatalf("Tuple.KeyEqual(%v, %v) = %v, Key equality = %v", a, b, got, keyEq)
		}
		if keyEq && a.Hash64() != b.Hash64() {
			t.Fatalf("key-equal tuples %v, %v hash differently", a, b)
		}
	}
}

func TestHashProjMatchesProjectedHash(t *testing.T) {
	tup := NewTuple(1, "a", 2.5, true, nil)
	idxs := [][]int{{}, {0}, {2, 0}, {4, 3, 1}, {0, 1, 2, 3, 4}}
	for _, idx := range idxs {
		if got, want := tup.HashProj(idx), tup.Project(idx).Hash64(); got != want {
			t.Errorf("HashProj(%v) = %x, Project().Hash64() = %x", idx, got, want)
		}
	}
}

// --- interner ---------------------------------------------------------------

func TestInternerStableAndConcurrent(t *testing.T) {
	in := NewInterner()
	if a, b := in.Intern("x"), in.Intern("x"); a != b {
		t.Fatal("same string must intern to the same id")
	}
	if in.Intern("x") == in.Intern("y") {
		t.Fatal("distinct strings must intern to distinct ids")
	}
	// Concurrent interning of an overlapping working set must stay
	// consistent (exercised under -race).
	var wg sync.WaitGroup
	ids := make([][]uint32, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, 100)
			for i := range ids[g] {
				ids[g][i] = in.Intern(fmt.Sprintf("k%d", i%25))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got id %d for key %d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if got := in.Len(); got != 25+2 {
		t.Errorf("interner holds %d strings, want 27", got)
	}
}

// --- forced-collision soundness ---------------------------------------------

// TestBagCollisionSoundness truncates every kernel hash to a single bit, so
// two unequal tuples land in the same bucket by construction, and checks
// that counting, membership and decrement still treat them as distinct —
// the collision-verification invariant of DESIGN.md §7.
func TestBagCollisionSoundness(t *testing.T) {
	ForceHashCollisionsForTesting(1)
	defer ForceHashCollisionsForTesting(0)

	t1 := NewTuple(1, "a")
	t2 := NewTuple(2, "b")
	if t1.KeyEqual(t2) {
		t.Fatal("test tuples must be unequal")
	}
	if t1.Hash64() != t2.Hash64() {
		// With 1-bit hashes the pair can land on opposite bits; pick another.
		t2 = NewTuple(3, "c")
		if t1.Hash64() != t2.Hash64() {
			t2 = NewTuple(4, "d")
		}
	}
	if t1.Hash64() != t2.Hash64() {
		t.Fatal("could not force two unequal tuples into one bucket")
	}
	b := NewBag(2)
	b.Inc(t1, 2)
	b.Inc(t2, 5)
	if got := b.Count(t1); got != 2 {
		t.Errorf("Count(t1) = %d, want 2", got)
	}
	if got := b.Count(t2); got != 5 {
		t.Errorf("Count(t2) in shared bucket = %d, want 5", got)
	}
	if !b.TakeOne(t2) || b.Count(t2) != 4 || b.Count(t1) != 2 {
		t.Error("TakeOne must decrement only the key-equal entry")
	}
	// Projection probes through the shared bucket must verify too.
	wide := Tuple{Int(0), t2[0], t2[1], Int(0)}
	if got := b.CountProj(wide, []int{1, 2}); got != 4 {
		t.Errorf("CountProj through collided bucket = %d, want 4", got)
	}
}

// TestRelationOpsUnderForcedCollisions reruns the hashed relation
// operations with kernel hashes truncated to 2 bits — every bucket scan
// handles unequal cohabitants — and cross-checks against the string-keyed
// slow paths, which do not depend on hashing at all.
func TestRelationOpsUnderForcedCollisions(t *testing.T) {
	ForceHashCollisionsForTesting(2)
	defer ForceHashCollisionsForTesting(0)

	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 400; trial++ {
		a, b := randomRelation(rng), randomRelation(rng)
		if a.BagEqual(b) != a.slowBagEqual(b) {
			t.Fatalf("trial %d: BagEqual diverges under collisions\na=%v\nb=%v", trial, a.Tuples, b.Tuples)
		}
		if a.SetEqual(b) != a.slowSetEqual(b) {
			t.Fatalf("trial %d: SetEqual diverges under collisions\na=%v\nb=%v", trial, a.Tuples, b.Tuples)
		}
		da, sa := a.Distinct(), a.slowDistinct()
		if len(da.Tuples) != len(sa.Tuples) {
			t.Fatalf("trial %d: Distinct diverges under collisions: %v vs %v", trial, da.Tuples, sa.Tuples)
		}
		for i := range da.Tuples {
			if !da.Tuples[i].KeyEqual(sa.Tuples[i]) {
				t.Fatalf("trial %d: Distinct order diverges under collisions", trial)
			}
		}
		bag, counts := a.Bag(), a.Counts()
		bag.ForEach(func(tp Tuple, n int) {
			if counts[tp.Key()] != n {
				t.Fatalf("trial %d: Bag count diverges under collisions for %v", trial, tp)
			}
		})
	}
}

// --- differential property tests (hashed vs string-keyed) -------------------

func randomRelation(rng *rand.Rand) *Relation {
	schema := NewSchema("a", KindInt, "b", KindString, "c", KindFloat)
	r := New("T", schema)
	n := rng.Intn(12)
	cats := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		// Int and integral Float columns deliberately overlap so the
		// Int(3) ≡ Float(3.0) coincidence is exercised constantly.
		r.Append(Tuple{
			Int(int64(rng.Intn(4))),
			Str(cats[rng.Intn(len(cats))]),
			Float(float64(rng.Intn(4))),
		})
	}
	return r
}

// TestDifferentialHashedVsStringOps is the testing/quick-style differential
// test of the tentpole: on randomized relations, every hashed operation
// must agree with its slowXxx string-keyed reference.
func TestDifferentialHashedVsStringOps(t *testing.T) {
	rng := rand.New(rand.NewSource(20150813))
	cfg := &quick.Config{
		MaxCount: 1500,
		Rand:     rng,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRelation(r))
			vals[1] = reflect.ValueOf(randomRelation(r))
		},
	}
	prop := func(a, b *Relation) bool {
		if a.BagEqual(b) != a.slowBagEqual(b) {
			t.Logf("BagEqual diverges on %v vs %v", a.Tuples, b.Tuples)
			return false
		}
		if a.SetEqual(b) != a.slowSetEqual(b) {
			t.Logf("SetEqual diverges on %v vs %v", a.Tuples, b.Tuples)
			return false
		}
		da, sa := a.Distinct(), a.slowDistinct()
		if len(da.Tuples) != len(sa.Tuples) {
			t.Logf("Distinct sizes diverge on %v", a.Tuples)
			return false
		}
		for i := range da.Tuples {
			if !da.Tuples[i].KeyEqual(sa.Tuples[i]) {
				t.Logf("Distinct order diverges on %v", a.Tuples)
				return false
			}
		}
		// Bag counts must equal the Counts() reference per distinct tuple.
		bag, counts := a.Bag(), a.Counts()
		ok := true
		bag.ForEach(func(tp Tuple, n int) {
			if counts[tp.Key()] != n {
				ok = false
			}
		})
		if !ok || bag.Distinct() != len(counts) || bag.Total() != a.Len() {
			t.Logf("Bag counts diverge on %v", a.Tuples)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDifferentialBagFingerprint checks that Fingerprint128 equality
// coincides with bag equality on random relations (equal bags always agree;
// unequal bags disagree absent a 128-bit collision, which would be a bug in
// practice at these sizes).
func TestDifferentialBagFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 1500; trial++ {
		a, b := randomRelation(rng), randomRelation(rng)
		alo, ahi := a.Bag().Fingerprint128(false)
		blo, bhi := b.Bag().Fingerprint128(false)
		fpEq := alo == blo && ahi == bhi
		if got := a.BagEqual(b); got != fpEq {
			t.Fatalf("trial %d: BagEqual=%v but Fingerprint128 equality=%v\na=%v\nb=%v",
				trial, got, fpEq, a.Tuples, b.Tuples)
		}
		// Shuffling never changes the fingerprint (order-insensitive).
		shuf := a.Clone()
		rng.Shuffle(len(shuf.Tuples), func(i, j int) {
			shuf.Tuples[i], shuf.Tuples[j] = shuf.Tuples[j], shuf.Tuples[i]
		})
		slo, shi := shuf.Bag().Fingerprint128(false)
		if slo != alo || shi != ahi {
			t.Fatalf("trial %d: fingerprint is order-sensitive", trial)
		}
	}
}

// TestRelationHash64Deterministic pins Hash64's contract: content-equal
// relations (same tuples, same order, same schema) hash equal; permuted
// ones (order-sensitive by design) do not, except with negligible
// probability.
func TestRelationHash64Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		a := randomRelation(rng)
		if a.Hash64() != a.Clone().Hash64() {
			t.Fatal("clone must hash equal")
		}
		if a.Len() >= 2 {
			perm := a.Clone()
			perm.Tuples[0], perm.Tuples[1] = perm.Tuples[1], perm.Tuples[0]
			if !perm.Tuples[0].KeyEqual(perm.Tuples[1]) && perm.Hash64() == a.Hash64() {
				t.Fatal("swapping unequal tuples should change the order-sensitive hash")
			}
		}
	}
}
