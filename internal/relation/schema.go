package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation. Name is unqualified inside a
// base table ("salary") and qualified ("Employee.salary") inside a joined
// relation; the package treats names as opaque strings.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// NewSchema builds a schema from alternating name/kind pairs, e.g.
// NewSchema("id", KindInt, "name", KindString).
func NewSchema(pairs ...any) Schema {
	if len(pairs)%2 != 0 {
		panic("relation: NewSchema requires name/kind pairs")
	}
	s := make(Schema, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("relation: NewSchema arg %d: want string name", i))
		}
		kind, ok := pairs[i+1].(Kind)
		if !ok {
			panic(fmt.Sprintf("relation: NewSchema arg %d: want Kind", i+1))
		}
		s = append(s, Column{Name: name, Type: kind})
	}
	return s
}

// IndexOf returns the position of the named column, or -1 if absent.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndexOf is IndexOf that panics on a missing column. It is used in
// internal code paths where the column set has already been validated.
func (s Schema) MustIndexOf(name string) int {
	i := s.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: column %q not in schema %v", name, s.Names()))
	}
	return i
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	ns := make([]string, len(s))
	for i, c := range s {
		ns[i] = c.Name
	}
	return ns
}

// Equal reports whether two schemas have identical columns in order.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	t := make(Schema, len(s))
	copy(t, s)
	return t
}

// Concat returns s followed by t as a new schema.
func (s Schema) Concat(t Schema) Schema {
	u := make(Schema, 0, len(s)+len(t))
	u = append(u, s...)
	u = append(u, t...)
	return u
}

// Qualify returns a copy of the schema with every column name prefixed by
// "table.". Already-qualified names (containing a dot) are left unchanged.
func (s Schema) Qualify(table string) Schema {
	t := make(Schema, len(s))
	for i, c := range s {
		if strings.Contains(c.Name, ".") {
			t[i] = c
		} else {
			t[i] = Column{Name: table + "." + c.Name, Type: c.Type}
		}
	}
	return t
}

// Project returns the sub-schema for the named columns, in the given order.
func (s Schema) Project(names []string) (Schema, error) {
	t := make(Schema, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return nil, fmt.Errorf("relation: project: column %q not in schema", n)
		}
		t = append(t, s[i])
	}
	return t, nil
}

// String renders the schema as "name:type, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + ":" + c.Type.String()
	}
	return strings.Join(parts, ", ")
}
