package relation

import "strings"

// Tuple is an ordered list of values aligned with a Schema.
type Tuple []Value

// NewTuple builds a tuple from Go scalars: int/int64 -> Int, float64 ->
// Float, string -> Str, bool -> Bool, nil -> Null, Value passes through.
// It exists to keep dataset builders and tests terse.
func NewTuple(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			t[i] = Null()
		case Value:
			t[i] = x
		case int:
			t[i] = Int(int64(x))
		case int64:
			t[i] = Int(x)
		case float64:
			t[i] = Float(x)
		case string:
			t[i] = Str(x)
		case bool:
			t[i] = Bool(x)
		default:
			panic("relation: NewTuple: unsupported value type")
		}
	}
	return t
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// Equal reports per-position value equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// DiffCount returns the number of positions where t and u differ. Tuples of
// different lengths return the max length (everything differs).
func (t Tuple) DiffCount(u Tuple) int {
	if len(t) != len(u) {
		if len(t) > len(u) {
			return len(t)
		}
		return len(u)
	}
	n := 0
	for i := range t {
		if !t[i].Equal(u[i]) {
			n++
		}
	}
	return n
}

// Key returns a canonical string encoding of the tuple, usable as a map key
// for multiset bookkeeping. Equal tuples (under Value.Equal) share a key.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		v.appendKey(&b)
		b.WriteByte('|')
	}
	return b.String()
}

// Project returns the tuple restricted to the given column indexes.
func (t Tuple) Project(idx []int) Tuple {
	u := make(Tuple, len(idx))
	for i, j := range idx {
		u[i] = t[j]
	}
	return u
}

// Less orders tuples lexicographically by Value.Compare; used for stable
// rendering and canonical sorting.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch t[i].Compare(u[i]) {
		case -1:
			return true
		case 1:
			return false
		}
	}
	return len(t) < len(u)
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
