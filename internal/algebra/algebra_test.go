package algebra

import (
	"strings"
	"testing"
	"testing/quick"

	"qfe/internal/db"
	"qfe/internal/relation"
)

func employeeDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	r := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	r.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(r)
	return d
}

func TestOpMatchesAndNegate(t *testing.T) {
	v := relation.Int(10)
	cases := []struct {
		op   Op
		c    relation.Value
		want bool
	}{
		{OpEQ, relation.Int(10), true},
		{OpEQ, relation.Int(11), false},
		{OpNE, relation.Int(11), true},
		{OpLT, relation.Int(11), true},
		{OpLT, relation.Int(10), false},
		{OpLE, relation.Int(10), true},
		{OpGT, relation.Int(9), true},
		{OpGE, relation.Int(10), true},
		{OpGE, relation.Int(11), false},
	}
	for _, c := range cases {
		term := NewTerm("x", c.op, c.c)
		if term.Matches(v) != c.want {
			t.Errorf("10 %v %v = %v, want %v", c.op, c.c, !c.want, c.want)
		}
		// Negation must invert on non-null values.
		neg := term
		neg.Op = term.Op.Negate()
		if neg.Matches(v) == term.Matches(v) {
			t.Errorf("negation of %v should invert", c.op)
		}
	}
}

func TestSetTerm(t *testing.T) {
	in := NewSetTerm("x", OpIn, []relation.Value{relation.Str("b"), relation.Str("a")})
	if !in.Matches(relation.Str("a")) || in.Matches(relation.Str("z")) {
		t.Error("IN membership broken")
	}
	notIn := NewSetTerm("x", OpNotIn, []relation.Value{relation.Str("a")})
	if notIn.Matches(relation.Str("a")) || !notIn.Matches(relation.Str("z")) {
		t.Error("NOT IN membership broken")
	}
	// Sets are sorted canonically so equal sets share keys.
	in2 := NewSetTerm("x", OpIn, []relation.Value{relation.Str("a"), relation.Str("b")})
	if in.Key() != in2.Key() {
		t.Error("set order should not affect Key")
	}
	if !strings.Contains(in.String(), "IN ('a', 'b')") {
		t.Errorf("String = %q", in.String())
	}
}

func TestNullNeverMatches(t *testing.T) {
	ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for _, op := range ops {
		if NewTerm("x", op, relation.Int(1)).Matches(relation.Null()) {
			t.Errorf("NULL must not match %v", op)
		}
	}
	if NewSetTerm("x", OpIn, []relation.Value{relation.Int(1)}).Matches(relation.Null()) {
		t.Error("NULL must not match IN")
	}
	if NewSetTerm("x", OpNotIn, []relation.Value{relation.Int(1)}).Matches(relation.Null()) {
		t.Error("NULL must not match NOT IN (three-valued logic collapsed)")
	}
}

func TestPredicateDNF(t *testing.T) {
	schema := relation.NewSchema("A", relation.KindInt, "B", relation.KindInt)
	// (A<=50 AND B>60) OR (A>80)
	p := Predicate{
		Conjunct{NewTerm("A", OpLE, relation.Int(50)), NewTerm("B", OpGT, relation.Int(60))},
		Conjunct{NewTerm("A", OpGT, relation.Int(80))},
	}
	cases := []struct {
		a, b int
		want bool
	}{
		{40, 70, true},
		{40, 50, false},
		{90, 0, true},
		{60, 99, false},
	}
	for _, c := range cases {
		tup := relation.NewTuple(c.a, c.b)
		if p.Matches(schema, tup) != c.want {
			t.Errorf("p(%d,%d) = %v, want %v", c.a, c.b, !c.want, c.want)
		}
	}
	if !True().Matches(schema, relation.NewTuple(1, 2)) {
		t.Error("empty predicate is TRUE")
	}
	attrs := p.Attrs()
	if len(attrs) != 2 || attrs[0] != "A" || attrs[1] != "B" {
		t.Errorf("Attrs = %v", attrs)
	}
	if len(p.Terms()) != 3 {
		t.Errorf("Terms = %d, want 3", len(p.Terms()))
	}
}

func TestPredicateKeyNormalisesOrder(t *testing.T) {
	p1 := Predicate{
		Conjunct{NewTerm("A", OpLE, relation.Int(1)), NewTerm("B", OpGT, relation.Int(2))},
		Conjunct{NewTerm("C", OpEQ, relation.Int(3))},
	}
	p2 := Predicate{
		Conjunct{NewTerm("C", OpEQ, relation.Int(3))},
		Conjunct{NewTerm("B", OpGT, relation.Int(2)), NewTerm("A", OpLE, relation.Int(1))},
	}
	if p1.Key() != p2.Key() {
		t.Error("predicate Key should normalise conjunct and term order")
	}
}

func TestQueryEvaluatePaperExample(t *testing.T) {
	d := employeeDB(t)
	// Paper Example 1.1: Q1 = π_name(σ_gender='M'(Employee)).
	q1 := &Query{
		Name:       "Q1",
		Tables:     []string{"Employee"},
		Projection: []string{"Employee.name"},
		Pred:       Predicate{Conjunct{NewTerm("Employee.gender", OpEQ, relation.Str("M"))}},
	}
	got, err := q1.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	if !got.BagEqual(want) {
		t.Errorf("Q1 result:\n%s", got)
	}

	// Q2 = salary > 4000, Q3 = dept = 'IT' produce the same result on D.
	q2 := &Query{Tables: []string{"Employee"}, Projection: []string{"Employee.name"},
		Pred: Predicate{Conjunct{NewTerm("Employee.salary", OpGT, relation.Int(4000))}}}
	q3 := &Query{Tables: []string{"Employee"}, Projection: []string{"Employee.name"},
		Pred: Predicate{Conjunct{NewTerm("Employee.dept", OpEQ, relation.Str("IT"))}}}
	r2, _ := q2.Evaluate(d)
	r3, _ := q3.Evaluate(d)
	if !r2.BagEqual(want) || !r3.BagEqual(want) {
		t.Error("all three candidates should produce R on D (paper Example 1.1)")
	}
}

func TestQueryDistinct(t *testing.T) {
	d := employeeDB(t)
	q := &Query{Tables: []string{"Employee"}, Projection: []string{"Employee.dept"}, Distinct: true}
	got, err := q.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("distinct dept count = %d, want 3", got.Len())
	}
}

func TestQuerySQLAndString(t *testing.T) {
	q := &Query{
		Name:       "Q",
		Tables:     []string{"A", "B"},
		Projection: []string{"A.x"},
		Pred: Predicate{
			Conjunct{NewTerm("A.x", OpGT, relation.Int(1)), NewTerm("B.y", OpEQ, relation.Str("z"))},
			Conjunct{NewTerm("A.x", OpLT, relation.Int(0))},
		},
		Distinct: true,
	}
	sql := q.SQL()
	for _, want := range []string{"SELECT DISTINCT A.x", "FROM A JOIN B",
		"(A.x > 1 AND B.y = 'z') OR (A.x < 0)"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
	if !strings.HasPrefix(q.String(), "Q: ") {
		t.Errorf("String = %q", q.String())
	}
	qs := &Query{Tables: []string{"A"}}
	if !strings.Contains(qs.SQL(), "SELECT *") {
		t.Errorf("empty projection should render *: %q", qs.SQL())
	}
}

func TestQueryCloneAndFingerprint(t *testing.T) {
	q := &Query{
		Tables:     []string{"A"},
		Projection: []string{"A.x"},
		Pred: Predicate{Conjunct{
			NewSetTerm("A.x", OpIn, []relation.Value{relation.Int(1), relation.Int(2)})}},
	}
	c := q.Clone()
	if c.Fingerprint() != q.Fingerprint() {
		t.Error("clone should share fingerprint")
	}
	// Queries are immutable once Key/Fingerprint has been called; variants
	// must be made by mutating a fresh clone BEFORE its first use. The
	// mutated clone's encodings must diverge (proving Clone deep-copies the
	// term sets rather than aliasing them), while the original's memoised
	// fingerprint is untouched.
	m := q.Clone()
	m.Pred[0][0].Set[0] = relation.Int(99)
	if m.Fingerprint() == q.Fingerprint() {
		t.Error("clone must deep-copy term sets")
	}
	if q.Fingerprint() != c.Fingerprint() {
		t.Error("original fingerprint must be stable")
	}
	// Memoisation: repeated calls return the identical key material.
	if q.Key() != q.Key() || q.Fingerprint() != q.Fingerprint() {
		t.Error("Key/Fingerprint must be deterministic")
	}
	// Join schema key is order-insensitive.
	a := &Query{Tables: []string{"A", "B"}}
	b := &Query{Tables: []string{"B", "A"}}
	if a.JoinSchemaKey() != b.JoinSchemaKey() {
		t.Error("JoinSchemaKey should sort tables")
	}
}

func TestDeltaOnJoined(t *testing.T) {
	d := employeeDB(t)
	j, err := db.JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Name: "Q", Tables: []string{"Employee"}, Projection: []string{"Employee.name"},
		Pred: Predicate{Conjunct{NewTerm("Employee.salary", OpGT, relation.Int(4000))}}}
	base, err := q.EvaluateOnJoined(j.Rel)
	if err != nil {
		t.Fatal(err)
	}

	// Modify Bob's salary 4200 -> 3900 (paper Example 1.1, database D1):
	// Bob leaves the salary>4000 result.
	si := j.Rel.Schema.MustIndexOf("Employee.salary")
	newBob := j.Rel.Tuples[1].Clone()
	newBob[si] = relation.Int(3900)
	delta, err := q.DeltaOnJoined(j.Rel, map[int]relation.Tuple{1: newBob})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Removed) != 1 || len(delta.Added) != 0 {
		t.Fatalf("delta = %+v, want 1 removal", delta)
	}
	if delta.Removed[0][0].S != "Bob" {
		t.Errorf("removed = %v", delta.Removed[0])
	}

	// Incremental result equals from-scratch evaluation.
	newRel := ApplyDelta(base, delta)
	edited, err := d.ApplyEdits([]db.CellEdit{{Table: "Employee", Row: 1, Column: "salary", Value: relation.Int(3900)}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := q.Evaluate(edited)
	if err != nil {
		t.Fatal(err)
	}
	if !newRel.BagEqual(direct) {
		t.Errorf("incremental %v vs direct %v", newRel.Tuples, direct.Tuples)
	}
	// The hashed fingerprint of the delta result must agree with a direct
	// full evaluation encoded the same way (same bag of tuples).
	if got, want := q.DeltaFingerprint(base, delta), q.DeltaFingerprint(direct, ResultDelta{}); got != want {
		t.Errorf("DeltaFingerprint diverges from direct evaluation: %v vs %v", got, want)
	}
}

func TestDeltaFingerprintGroupsQueriesCorrectly(t *testing.T) {
	d := employeeDB(t)
	j, _ := db.JoinAll(d)
	mkQ := func(name string, p Predicate) *Query {
		return &Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"}, Pred: p}
	}
	q1 := mkQ("Q1", Predicate{Conjunct{NewTerm("Employee.gender", OpEQ, relation.Str("M"))}})
	q2 := mkQ("Q2", Predicate{Conjunct{NewTerm("Employee.salary", OpGT, relation.Int(4000))}})
	q3 := mkQ("Q3", Predicate{Conjunct{NewTerm("Employee.dept", OpEQ, relation.Str("IT"))}})

	// D1: Bob's salary 4200 -> 3900. Paper: {Q1,Q3} keep R, {Q2} drops Bob.
	si := j.Rel.Schema.MustIndexOf("Employee.salary")
	newBob := j.Rel.Tuples[1].Clone()
	newBob[si] = relation.Int(3900)
	mod := map[int]relation.Tuple{1: newBob}

	fps := make(map[ResultFP][]string)
	for _, q := range []*Query{q1, q2, q3} {
		base, err := q.EvaluateOnJoined(j.Rel)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := q.DeltaOnJoined(j.Rel, mod)
		if err != nil {
			t.Fatal(err)
		}
		fp := q.DeltaFingerprint(base, delta)
		fps[fp] = append(fps[fp], q.Name)
	}
	if len(fps) != 2 {
		t.Fatalf("want 2 result groups, got %d: %v", len(fps), fps)
	}
	for _, group := range fps {
		switch len(group) {
		case 1:
			if group[0] != "Q2" {
				t.Errorf("singleton group should be Q2, got %v", group)
			}
		case 2: // Q1, Q3 together
		default:
			t.Errorf("unexpected group %v", group)
		}
	}
}

func TestDeltaErrors(t *testing.T) {
	d := employeeDB(t)
	j, _ := db.JoinAll(d)
	q := &Query{Tables: []string{"Employee"}, Projection: []string{"nope"}}
	if _, err := q.DeltaOnJoined(j.Rel, nil); err == nil {
		t.Error("bad projection should error")
	}
	q2 := &Query{Tables: []string{"Employee"}, Projection: []string{"Employee.name"}}
	if _, err := q2.DeltaOnJoined(j.Rel, map[int]relation.Tuple{99: nil}); err == nil {
		t.Error("row out of range should error")
	}
	if _, err := (&Query{Tables: []string{"ghost"}}).Evaluate(d); err == nil {
		t.Error("evaluate on missing table should error")
	}
}

func TestApplyDeltaBagSemantics(t *testing.T) {
	base := relation.New("r", relation.NewSchema("x", relation.KindInt)).
		Append(relation.NewTuple(1), relation.NewTuple(1), relation.NewTuple(2))
	delta := ResultDelta{
		Removed: []relation.Tuple{relation.NewTuple(1)},
		Added:   []relation.Tuple{relation.NewTuple(3)},
	}
	got := ApplyDelta(base, delta)
	want := relation.New("r", base.Schema).
		Append(relation.NewTuple(1), relation.NewTuple(2), relation.NewTuple(3))
	if !got.BagEqual(want) {
		t.Errorf("ApplyDelta = %v", got.Tuples)
	}
	if !delta.Empty() == (len(delta.Removed) == 0 && len(delta.Added) == 0) {
		t.Error("Empty() inconsistent")
	}
}

func TestIncrementalMatchesDirectQuick(t *testing.T) {
	// Property: for random single-cell salary edits, incremental evaluation
	// equals from-scratch evaluation.
	d := employeeDB(t)
	j, _ := db.JoinAll(d)
	q := &Query{Name: "Q", Tables: []string{"Employee"}, Projection: []string{"Employee.name"},
		Pred: Predicate{Conjunct{NewTerm("Employee.salary", OpGT, relation.Int(4000))}}}
	base, _ := q.EvaluateOnJoined(j.Rel)
	si := j.Rel.Schema.MustIndexOf("Employee.salary")

	f := func(rowRaw uint8, salary int16) bool {
		row := int(rowRaw) % j.Rel.Len()
		newT := j.Rel.Tuples[row].Clone()
		newT[si] = relation.Int(int64(salary))
		delta, err := q.DeltaOnJoined(j.Rel, map[int]relation.Tuple{row: newT})
		if err != nil {
			return false
		}
		incr := ApplyDelta(base, delta)
		edited, err := d.ApplyEdits([]db.CellEdit{{
			Table: "Employee", Row: row, Column: "salary", Value: relation.Int(int64(salary))}})
		if err != nil {
			return false
		}
		direct, err := q.Evaluate(edited)
		if err != nil {
			return false
		}
		return incr.BagEqual(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
