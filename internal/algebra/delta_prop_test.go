package algebra

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"qfe/internal/relation"
)

// This file is the property-based differential test for the incremental
// evaluator (Lemma 5.1): on randomized databases, queries and cell edits,
// DeltaOnJoined applied to the old result must agree with full
// re-evaluation — both as a materialised relation (ApplyDelta) and as the
// canonical fingerprint the winnowing partition is built from
// (DeltaFingerprint). The generator is seeded, so failures replay.

// randSchema is the fixed joined-relation schema the generator draws from:
// a numeric, a categorical and a second numeric attribute.
var propSchema = relation.NewSchema(
	"T.a", relation.KindInt,
	"T.b", relation.KindString,
	"T.c", relation.KindInt,
)

var propCats = []string{"x", "y", "z"}

func randTuple(rng *rand.Rand) relation.Tuple {
	return relation.Tuple{
		relation.Int(int64(rng.Intn(7))),
		relation.Str(propCats[rng.Intn(len(propCats))]),
		relation.Int(int64(rng.Intn(5))),
	}
}

func randRelation(rng *rand.Rand) *relation.Relation {
	r := relation.New("T", propSchema)
	n := rng.Intn(13)
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, randTuple(rng))
	}
	return r
}

func randTerm(rng *rand.Rand) Term {
	switch rng.Intn(4) {
	case 0:
		ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
		return NewTerm("T.a", ops[rng.Intn(len(ops))], relation.Int(int64(rng.Intn(7))))
	case 1:
		ops := []Op{OpEQ, OpNE}
		return NewTerm("T.b", ops[rng.Intn(len(ops))], relation.Str(propCats[rng.Intn(len(propCats))]))
	case 2:
		set := []relation.Value{relation.Str(propCats[rng.Intn(len(propCats))])}
		if rng.Intn(2) == 0 {
			set = append(set, relation.Str(propCats[rng.Intn(len(propCats))]))
		}
		ops := []Op{OpIn, OpNotIn}
		return NewSetTerm("T.b", ops[rng.Intn(2)], set)
	default:
		ops := []Op{OpLT, OpGE}
		return NewTerm("T.c", ops[rng.Intn(2)], relation.Int(int64(rng.Intn(5))))
	}
}

func randQuery(rng *rand.Rand, name string) *Query {
	q := &Query{Name: name, Tables: []string{"T"}}
	// Random projection: non-empty subset of columns, order shuffled.
	cols := []string{"T.a", "T.b", "T.c"}
	rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
	q.Projection = cols[:1+rng.Intn(len(cols))]
	// Random DNF: 0-2 conjuncts of 1-2 terms (0 conjuncts = TRUE).
	for c := rng.Intn(3); c > 0; c-- {
		conj := Conjunct{randTerm(rng)}
		if rng.Intn(2) == 0 {
			conj = append(conj, randTerm(rng))
		}
		q.Pred = append(q.Pred, conj)
	}
	q.Distinct = rng.Intn(4) == 0
	return q
}

// randEdits picks a random set of rows and replacement tuples.
func randEdits(rng *rand.Rand, rel *relation.Relation) map[int]relation.Tuple {
	modified := map[int]relation.Tuple{}
	if rel.Len() == 0 {
		return modified
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		row := rng.Intn(rel.Len())
		nt := rel.Tuples[row].Clone()
		// Change 1-2 attributes; sometimes to the same value (the TT-equal
		// projection case of Lemma 5.1 needs edits that miss the query).
		for k := 1 + rng.Intn(2); k > 0; k-- {
			col := rng.Intn(3)
			nt[col] = randTuple(rng)[col]
		}
		modified[row] = nt
	}
	return modified
}

// deltaStyleFP re-encodes a fully re-evaluated result in DeltaFingerprint's
// canonical form: sorted tuple keys, with ×multiplicity under bag semantics.
func deltaStyleFP(q *Query, r *relation.Relation) string {
	counts := r.Counts()
	keys := make([]string, 0, len(counts))
	for k, c := range counts {
		if c <= 0 {
			continue
		}
		if q.Distinct {
			keys = append(keys, k)
		} else {
			keys = append(keys, fmt.Sprintf("%s×%d", k, c))
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// applyModified materialises D' from the modification map.
func applyModified(rel *relation.Relation, modified map[int]relation.Tuple) *relation.Relation {
	out := rel.Clone()
	for row, nt := range modified {
		out.Tuples[row] = nt
	}
	return out
}

// lemmaCase classifies one modified row for a query, mirroring Lemma 5.1:
// "keep" (in before and after, projection unchanged), "mod" (in both,
// projection changed), "del" (falls out), "ins" (falls in), "none" (out
// both times).
func lemmaCase(q *Query, rel *relation.Relation, row int, nt relation.Tuple) string {
	oldIn := q.Pred.Matches(rel.Schema, rel.Tuples[row])
	newIn := q.Pred.Matches(rel.Schema, nt)
	switch {
	case oldIn && newIn:
		idx := make([]int, len(q.Projection))
		for i, n := range q.Projection {
			idx[i] = rel.Schema.MustIndexOf(n)
		}
		if rel.Tuples[row].Project(idx).Equal(nt.Project(idx)) {
			return "keep"
		}
		return "mod"
	case oldIn:
		return "del"
	case newIn:
		return "ins"
	default:
		return "none"
	}
}

func TestDeltaOnJoinedMatchesFullReevaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(20150813))
	caseSeen := map[string]int{}
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		rel := randRelation(rng)
		q := randQuery(rng, fmt.Sprintf("P%d", trial))
		modified := randEdits(rng, rel)

		delta, err := q.DeltaOnJoined(rel, modified)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The delta base is the bag-semantics evaluation, as dbgen stores it
		// (set membership after a modification depends on how many joined
		// rows still produce a tuple; see dbgen's evaluateBase).
		bagQ := q.Clone()
		bagQ.Distinct = false
		base, err := bagQ.EvaluateOnJoined(rel)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after := applyModified(rel, modified)
		full, err := q.EvaluateOnJoined(after)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Fingerprint path: exactly what partitionConcrete compares. The
		// string-keyed reference encoding must match a re-encoding of the
		// full re-evaluation, and the hashed 128-bit fingerprint must agree
		// with the fingerprint of that same full result (same bag ⇒ same
		// ResultFP; the slow reference proves "same bag").
		if got, want := q.slowDeltaFingerprint(base, delta), deltaStyleFP(q, full); got != want {
			t.Fatalf("trial %d: slowDeltaFingerprint diverges from full re-evaluation\nquery: %s\nD: %v\nedits: %v\ngot:  %q\nwant: %q",
				trial, q.SQL(), rel.Tuples, modified, got, want)
		}
		if got, want := q.DeltaFingerprint(base, delta), q.DeltaFingerprint(full, ResultDelta{}); got != want {
			t.Fatalf("trial %d: hashed DeltaFingerprint diverges from full re-evaluation\nquery: %s\nD: %v\nedits: %v\ngot:  %v\nwant: %v",
				trial, q.SQL(), rel.Tuples, modified, got, want)
		}

		// Materialisation path: ApplyDelta on the bag base, collapsed for
		// DISTINCT queries — the exact sequence in dbgen's partitionConcrete.
		inc := ApplyDelta(base, delta)
		if q.Distinct {
			inc = inc.Distinct()
		}
		if !inc.BagEqual(full) {
			t.Fatalf("trial %d: ApplyDelta diverges from full re-evaluation\nquery: %s\nD: %v\nedits: %v\ninc:  %v\nfull: %v",
				trial, q.SQL(), rel.Tuples, modified, inc.Tuples, full.Tuples)
		}

		// Classify the exercised Lemma 5.1 cases.
		for row, nt := range modified {
			caseSeen[lemmaCase(q, rel, row, nt)]++
		}
	}
	// All four effect cases (plus the no-op) must have been exercised.
	for _, c := range []string{"keep", "mod", "del", "ins", "none"} {
		if caseSeen[c] == 0 {
			t.Errorf("Lemma 5.1 case %q never exercised in %d trials (%v)", c, trials, caseSeen)
		}
	}
	t.Logf("case coverage over %d trials: %v", trials, caseSeen)
}

// TestDeltaOnJoinedErrors pins the error paths: unknown projection column
// and out-of-range rows.
func TestDeltaOnJoinedErrors(t *testing.T) {
	rel := relation.New("T", propSchema)
	rel.Tuples = append(rel.Tuples, relation.Tuple{
		relation.Int(1), relation.Str("x"), relation.Int(2)})
	q := &Query{Name: "Q", Tables: []string{"T"}, Projection: []string{"T.missing"}}
	if _, err := q.DeltaOnJoined(rel, map[int]relation.Tuple{0: rel.Tuples[0]}); err == nil {
		t.Error("missing projection column should error")
	}
	q2 := &Query{Name: "Q2", Tables: []string{"T"}, Projection: []string{"T.a"}}
	if _, err := q2.DeltaOnJoined(rel, map[int]relation.Tuple{5: rel.Tuples[0]}); err == nil {
		t.Error("out-of-range row should error")
	}
}
