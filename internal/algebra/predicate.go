// Package algebra defines the select-project-join (SPJ) query representation
// used throughout QFE: queries of the form π_ℓ(σ_p(J)) where J is the
// foreign-key join of a set of base tables, ℓ a projection list, and p a
// selection predicate in disjunctive normal form whose terms compare an
// attribute with a constant (paper §4).
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"qfe/internal/relation"
)

// Op is a comparison operator between an attribute and a constant.
type Op uint8

// Supported comparison operators. In and NotIn take a constant set and are
// used for categorical attributes (paper Example 5.2).
const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpIn
	OpNotIn
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpIn:
		return "IN"
	case OpNotIn:
		return "NOT IN"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Negate returns the complementary operator (= <-> <>, < <-> >=, ...).
func (o Op) Negate() Op {
	switch o {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	case OpIn:
		return OpNotIn
	case OpNotIn:
		return OpIn
	default:
		panic("algebra: negate of unknown op")
	}
}

// Term is a single comparison "Attr op Const" (or "Attr IN Set"). Attr is a
// qualified column name of the joined relation ("Table.col").
type Term struct {
	Attr  string
	Op    Op
	Const relation.Value   // for scalar operators
	Set   []relation.Value // for In / NotIn, kept sorted
}

// NewTerm builds a scalar comparison term.
func NewTerm(attr string, op Op, c relation.Value) Term {
	if op == OpIn || op == OpNotIn {
		panic("algebra: NewTerm with set operator; use NewSetTerm")
	}
	return Term{Attr: attr, Op: op, Const: c}
}

// NewSetTerm builds an IN / NOT IN term. The value set is copied and sorted
// so that equal sets render and fingerprint identically.
func NewSetTerm(attr string, op Op, set []relation.Value) Term {
	if op != OpIn && op != OpNotIn {
		panic("algebra: NewSetTerm requires In or NotIn")
	}
	s := append([]relation.Value(nil), set...)
	sort.Slice(s, func(i, j int) bool { return s[i].Compare(s[j]) < 0 })
	return Term{Attr: attr, Op: op, Set: s}
}

// Matches evaluates the term against a single value. NULL never matches any
// comparison (SQL three-valued logic collapsed to false).
func (t Term) Matches(v relation.Value) bool {
	if v.IsNull() {
		return false
	}
	switch t.Op {
	case OpIn, OpNotIn:
		found := false
		for _, m := range t.Set {
			if v.Equal(m) {
				found = true
				break
			}
		}
		if t.Op == OpIn {
			return found
		}
		return !found
	default:
		c := v.Compare(t.Const)
		switch t.Op {
		case OpEQ:
			return c == 0
		case OpNE:
			return c != 0
		case OpLT:
			return c < 0
		case OpLE:
			return c <= 0
		case OpGT:
			return c > 0
		case OpGE:
			return c >= 0
		}
	}
	return false
}

// String renders the term as SQL.
func (t Term) String() string {
	if t.Op == OpIn || t.Op == OpNotIn {
		parts := make([]string, len(t.Set))
		for i, v := range t.Set {
			parts[i] = v.SQL()
		}
		return fmt.Sprintf("%s %s (%s)", t.Attr, t.Op, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s %s", t.Attr, t.Op, t.Const.SQL())
}

// Key returns a canonical encoding for deduplication.
func (t Term) Key() string {
	var b strings.Builder
	b.WriteString(t.Attr)
	b.WriteByte('\x00')
	b.WriteString(t.Op.String())
	b.WriteByte('\x00')
	if t.Op == OpIn || t.Op == OpNotIn {
		for _, v := range t.Set {
			b.WriteString(v.Key())
			b.WriteByte(',')
		}
	} else {
		b.WriteString(t.Const.Key())
	}
	return b.String()
}

// Conjunct is a conjunction (AND) of terms.
type Conjunct []Term

// Matches evaluates the conjunct against a tuple under the given schema.
func (c Conjunct) Matches(schema relation.Schema, tup relation.Tuple) bool {
	for _, t := range c {
		i := schema.IndexOf(t.Attr)
		if i < 0 || !t.Matches(tup[i]) {
			return false
		}
	}
	return true
}

// String renders the conjunct as SQL, parenthesised when needed by the
// caller.
func (c Conjunct) String() string {
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.String()
	}
	return strings.Join(parts, " AND ")
}

// Key returns a canonical encoding (term order normalised).
func (c Conjunct) Key() string {
	keys := make([]string, len(c))
	for i, t := range c {
		keys[i] = t.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// Attrs returns the distinct attribute names referenced by the conjunct.
func (c Conjunct) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range c {
		if !seen[t.Attr] {
			seen[t.Attr] = true
			out = append(out, t.Attr)
		}
	}
	return out
}

// Predicate is a disjunction (OR) of conjuncts — DNF, as the paper assumes
// (§4). The empty predicate is TRUE (no selection).
type Predicate []Conjunct

// True is the predicate with no selection.
func True() Predicate { return nil }

// Matches evaluates the predicate against a tuple.
func (p Predicate) Matches(schema relation.Schema, tup relation.Tuple) bool {
	if len(p) == 0 {
		return true
	}
	for _, c := range p {
		if c.Matches(schema, tup) {
			return true
		}
	}
	return false
}

// String renders the predicate as SQL.
func (p Predicate) String() string {
	if len(p) == 0 {
		return "TRUE"
	}
	if len(p) == 1 {
		return p[0].String()
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " OR ")
}

// Key returns a canonical encoding (conjunct order normalised).
func (p Predicate) Key() string {
	keys := make([]string, len(p))
	for i, c := range p {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x02")
}

// Attrs returns the distinct attribute names referenced by the predicate,
// sorted. These are the "selection-predicate attributes" whose domains get
// partitioned into tuple classes (§5.1).
func (p Predicate) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p {
		for _, t := range c {
			if !seen[t.Attr] {
				seen[t.Attr] = true
				out = append(out, t.Attr)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Terms returns all terms of the predicate in order.
func (p Predicate) Terms() []Term {
	var out []Term
	for _, c := range p {
		out = append(out, c...)
	}
	return out
}

// Compile resolves the predicate's attribute names against a schema once
// and returns a fast evaluator. Evaluating a predicate over thousands of
// tuples through Matches pays a linear column lookup per term per tuple;
// the compiled form pays it once. A reference to a column missing from the
// schema yields an evaluator that is constantly false (mirroring Matches).
func (p Predicate) Compile(schema relation.Schema) func(relation.Tuple) bool {
	if len(p) == 0 {
		return func(relation.Tuple) bool { return true }
	}
	type ct struct {
		col  int
		term Term
	}
	compiled := make([][]ct, len(p))
	for ci, conj := range p {
		cts := make([]ct, len(conj))
		for ti, t := range conj {
			cts[ti] = ct{col: schema.IndexOf(t.Attr), term: t}
		}
		compiled[ci] = cts
	}
	return func(tup relation.Tuple) bool {
		for _, conj := range compiled {
			ok := true
			for _, c := range conj {
				if c.col < 0 || !c.term.Matches(tup[c.col]) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
}
