// Columnar batch evaluation (DESIGN.md §9).
//
// The winnowing loop evaluates every surviving candidate against the same
// joined relation each round. The scalar path (EvaluateOnJoined /
// DeltaOnJoined) pays one full row-at-a-time scan per candidate; the batch
// path here pays ONE shared pass for a whole candidate group:
//
//   - every candidate's DNF predicate is flattened into term ids over a
//     shared, deduplicated term table (candidates overwhelmingly share
//     terms — covering bounds, cluster equalities);
//   - each unique term is evaluated once per dictionary code of its column
//     (relation.Columnar; outcomes are constant on KeyEqual classes, see
//     that file's invariant note) and expanded into a selection bit vector
//     over all rows;
//   - per candidate, the DNF combines term bit vectors with word-wide
//     AND/OR — 64 rows per machine op;
//   - materialisation (projection, DISTINCT) is shared between candidates
//     with the same projection and selection vector, which is exactly the
//     candidates one result-partition block holds.
//
// Every function in this file is observationally identical to its scalar
// counterpart — same tuples, same order, same errors — which the
// differential tests in batch_test.go assert, including under forced hash
// collisions. The scalar path stays the reference implementation and keeps
// serving single-query callers.
package algebra

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"qfe/internal/par"
	"qfe/internal/relation"
)

// batchBlockRows is the row-block granularity of the parallel scan: 4096
// rows = 64 bitmap words, small enough that a block's column codes and
// bitmap spans stay cache-resident, and a multiple of 64 so two blocks never
// share a bitmap word — concurrent blocks write disjoint word ranges and
// "merge" by construction, with no barrier, lock or combining pass. Blocks
// are distributed by the work-stealing scheduler (internal/par, DESIGN.md
// §10); results are byte-identical at every worker count because every write
// is row-position-addressed.
const batchBlockRows = 4096

// batchProgram is the compiled form of a candidate batch: a deduplicated
// term table plus, per query, the DNF structure as term ids.
type batchProgram struct {
	terms []Term
	cols  []int // terms[i]'s column in the joined schema, -1 when absent
	progs [][][]int
}

// termsStructEqual reports whether two terms denote the same comparison —
// the same equivalence Term.Key encodes, decided without building keys.
func termsStructEqual(a, b *Term) bool {
	if a.Attr != b.Attr || a.Op != b.Op || len(a.Set) != len(b.Set) {
		return false
	}
	if a.Op == OpIn || a.Op == OpNotIn {
		// Sets are kept sorted by NewSetTerm, so positional comparison is
		// canonical.
		for i := range a.Set {
			if !a.Set[i].KeyEqual(b.Set[i]) {
				return false
			}
		}
		return true
	}
	return a.Const.KeyEqual(b.Const)
}

// compileBatch flattens the queries' predicates over a shared term table.
// Terms are deduplicated structurally (no key strings), so a term shared by
// many candidates is evaluated once per scan. The table stays small — it
// holds one entry per distinct comparison across the whole batch — so a
// hash-bucketed linear scan is cheaper than string-keyed map probes.
func compileBatch(queries []*Query, schema relation.Schema) *batchProgram {
	bp := &batchProgram{progs: make([][][]int, len(queries))}
	buckets := make(map[uint64][]int)
	for qi, q := range queries {
		conjs := make([][]int, len(q.Pred))
		for ci, conj := range q.Pred {
			ids := make([]int, len(conj))
			for ti := range conj {
				t := &conj[ti]
				h := hashTerm(t)
				id := -1
				for _, cand := range buckets[h] {
					if termsStructEqual(&bp.terms[cand], t) {
						id = cand
						break
					}
				}
				if id < 0 {
					id = len(bp.terms)
					bp.terms = append(bp.terms, *t)
					bp.cols = append(bp.cols, schema.IndexOf(t.Attr))
					buckets[h] = append(buckets[h], id)
				}
				ids[ti] = id
			}
			conjs[ci] = ids
		}
		bp.progs[qi] = conjs
	}
	return bp
}

// hashTerm folds a term's attribute, operator and constant(s) into a bucket
// hash; equality is always verified by termsStructEqual.
func hashTerm(t *Term) uint64 {
	h := uint64(hashWordsOffset)
	for i := 0; i < len(t.Attr); i++ {
		h = (h ^ uint64(t.Attr[i])) * hashWordsPrime
	}
	h = (h ^ uint64(t.Op)) * hashWordsPrime
	if t.Op == OpIn || t.Op == OpNotIn {
		for _, v := range t.Set {
			h = (h ^ v.Hash64()) * hashWordsPrime
		}
	} else {
		h = (h ^ t.Const.Hash64()) * hashWordsPrime
	}
	return h
}

// termBitmaps evaluates every unique term once per dictionary code and
// expands the outcomes into per-term row bit vectors. A term whose column is
// missing from the schema gets a nil vector (constant false, mirroring the
// scalar Compile behaviour).
//
// The expansion is the batch engine's row scan, and it parallelises over
// 64-aligned row blocks: dictionaries build first (concurrently per
// referenced column; Col is Once-guarded either way), then the per-code
// outcome tables (concurrently per term, carved from one arena), and finally
// each block fills its disjoint word range of every term's bitmap. Bit
// positions are row positions, so the assembled vectors are identical to the
// serial fill no matter which worker handled which block.
func (bp *batchProgram) termBitmaps(col *relation.Columnar, words, workers, blockRows int) [][]uint64 {
	// Distinct referenced columns (the term table is small: linear dedup).
	var uniq []int
	for _, ci := range bp.cols {
		if ci < 0 {
			continue
		}
		dup := false
		for _, u := range uniq {
			if u == ci {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, ci)
		}
	}
	par.Do(len(uniq), workers, func(k int) { col.Col(uniq[k]) })

	// Per-term outcome tables — term result per dictionary code — in one
	// arena, sized now that the dictionaries exist.
	offs := make([]int, len(bp.terms)+1)
	for ti := range bp.terms {
		sz := 0
		if ci := bp.cols[ti]; ci >= 0 {
			sz = len(col.Col(ci).Dict)
		}
		offs[ti+1] = offs[ti] + sz
	}
	outcomes := make([]bool, offs[len(bp.terms)])
	par.Do(len(bp.terms), workers, func(ti int) {
		ci := bp.cols[ti]
		if ci < 0 {
			return
		}
		t := &bp.terms[ti]
		oc := outcomes[offs[ti]:offs[ti+1]]
		for code, v := range col.Col(ci).Dict {
			oc[code] = t.Matches(v)
		}
	})

	// One backing array for all term bitmaps; blocks write disjoint word
	// ranges of it (blockRows is a multiple of 64).
	tb := make([][]uint64, len(bp.terms))
	arena := make([]uint64, len(bp.terms)*words)
	for ti := range bp.terms {
		if bp.cols[ti] >= 0 {
			tb[ti] = arena[ti*words : (ti+1)*words : (ti+1)*words]
		}
	}
	par.DoBlocks(col.NumRows(), blockRows, workers, func(_, lo, hi int) {
		for ti := range bp.terms {
			ci := bp.cols[ti]
			if ci < 0 {
				continue
			}
			oc := outcomes[offs[ti]:offs[ti+1]]
			bm := tb[ti]
			codes := col.Col(ci).Codes
			for ri := lo; ri < hi; ri++ {
				if oc[codes[ri]] {
					bm[ri>>6] |= 1 << (ri & 63)
				}
			}
		}
	})
	return tb
}

// selectionVector combines one query's compiled DNF over the term bit
// vectors: OR over conjuncts of AND over terms. full is the all-rows vector.
func selectionVector(prog [][]int, termBits [][]uint64, full []uint64, tmp []uint64) []uint64 {
	sel := make([]uint64, len(full))
	if len(prog) == 0 {
		copy(sel, full)
		return sel
	}
	for _, conj := range prog {
		copy(tmp, full)
		alive := true
		for _, ti := range conj {
			bm := termBits[ti]
			if bm == nil {
				alive = false
				break
			}
			live := false
			for w := range tmp {
				tmp[w] &= bm[w]
				if tmp[w] != 0 {
					live = true
				}
			}
			if !live {
				alive = false
				break
			}
		}
		if !alive {
			continue
		}
		for w := range sel {
			sel[w] |= tmp[w]
		}
	}
	return sel
}

// BatchEvaluateOnJoined evaluates a batch of candidate queries against one
// joined relation in a single shared scan, returning one result per query in
// input order. Results are byte-identical to calling EvaluateOnJoined per
// query (same tuple order, schema and name); queries sharing a projection
// and a selection vector share the materialised tuple storage, so callers
// must treat results as immutable — exactly the contract evaluation results
// already have everywhere (evalcache shares them too).
func BatchEvaluateOnJoined(queries []*Query, col *relation.Columnar) ([]*relation.Relation, error) {
	return batchEvaluate(queries, col, 1, batchBlockRows)
}

// BatchEvaluateOnJoinedParallel is BatchEvaluateOnJoined spread over a
// worker pool: the row scan runs block-parallel (termBitmaps), the per-query
// DNF combines run query-parallel with per-worker scratch, and
// materialisation fills its arena block-parallel behind per-block popcount
// offsets. Results are byte-identical to the workers = 1 path — and thus to
// the scalar per-query path — at every worker count; batch_test.go pins this
// differentially, including under forced hash collisions.
func BatchEvaluateOnJoinedParallel(queries []*Query, col *relation.Columnar, workers int) ([]*relation.Relation, error) {
	return batchEvaluate(queries, col, workers, batchBlockRows)
}

// batchEvaluate is the implementation behind the two public entry points,
// with the block size injectable so tests can straddle row-count boundaries
// (rows % blockRows ∈ {0, 1, blockRows−1}) at tiny sizes. blockRows is
// rounded up to a multiple of 64: the disjoint-word-write argument above
// needs block boundaries on word boundaries.
func batchEvaluate(queries []*Query, col *relation.Columnar, workers, blockRows int) ([]*relation.Relation, error) {
	mBatchScans.Inc()
	mBatchQueries.Add(uint64(len(queries)))
	if workers < 1 {
		workers = 1
	}
	if blockRows < 64 {
		blockRows = 64
	}
	blockRows = (blockRows + 63) &^ 63
	joined := col.Source
	n := joined.Len()
	words := (n + 63) / 64
	full := make([]uint64, words)
	for w := range full {
		full[w] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 && words > 0 {
		full[words-1] = 1<<uint(rem) - 1
	}

	bp := compileBatch(queries, joined.Schema)
	termBits := bp.termBitmaps(col, words, workers, blockRows)

	// Per-query selection vectors: the word-wide OR-of-AND combines are
	// independent per query, so they spread across the pool with one scratch
	// vector per worker. The dedup below stays serial in query order.
	selVecs := make([][]uint64, len(queries))
	tmps := make([][]uint64, workers)
	par.DoIndexed(len(queries), workers, func(worker, qi int) {
		if tmps[worker] == nil {
			tmps[worker] = make([]uint64, words)
		}
		selVecs[qi] = selectionVector(bp.progs[qi], termBits, full, tmps[worker])
	})

	// Selection vectors, deduplicated: queries with equal vectors share one
	// selID (hash of the words, equality-verified on collision).
	type selEntry struct {
		hash uint64
		sel  []uint64
	}
	var sels []selEntry
	selByHash := make(map[uint64][]int)
	selID := make([]int, len(queries))
	for qi := range queries {
		sel := selVecs[qi]
		h := hashWords(sel)
		id := -1
		for _, cand := range selByHash[h] {
			if slices.Equal(sels[cand].sel, sel) {
				id = cand
				break
			}
		}
		if id < 0 {
			id = len(sels)
			sels = append(sels, selEntry{hash: h, sel: sel})
			selByHash[h] = append(selByHash[h], id)
		}
		selID[qi] = id
	}

	// Materialise each distinct (projection, selection, distinct) combination
	// once; per-query results wrap the shared storage under the query's name.
	// The batch holds few distinct combinations (one per partition block), so
	// a linear scan over direct slice comparisons beats building key strings.
	type matEntry struct {
		proj     []string
		sel      int
		distinct bool
		rel      *relation.Relation
	}
	var mats []matEntry
	findShared := func(proj []string, sel int, distinct bool) *relation.Relation {
		for i := range mats {
			e := &mats[i]
			if e.sel == sel && e.distinct == distinct && slices.Equal(e.proj, proj) {
				return e.rel
			}
		}
		return nil
	}
	out := make([]*relation.Relation, len(queries))
	for qi, q := range queries {
		rel := findShared(q.Projection, selID[qi], q.Distinct)
		if rel == nil {
			// The bag form is materialised (and shared) first; DISTINCT
			// collapses it exactly as the scalar path does.
			bag := findShared(q.Projection, selID[qi], false)
			if bag == nil {
				var err error
				bag, err = materializeSelection(joined, sels[selID[qi]].sel, q.Projection, workers, blockRows)
				if err != nil {
					return nil, fmt.Errorf("algebra: evaluate %s: %w", q.Name, err)
				}
				mats = append(mats, matEntry{proj: q.Projection, sel: selID[qi], rel: bag})
			}
			rel = bag
			if q.Distinct {
				rel = bag.Distinct()
				mats = append(mats, matEntry{proj: q.Projection, sel: selID[qi], distinct: true, rel: rel})
			}
		}
		out[qi] = &relation.Relation{Name: q.Name, Schema: rel.Schema, Tuples: rel.Tuples}
	}
	return out, nil
}

// materializeSelection projects the selected rows, in row order, into a
// fresh relation whose tuples are carved from one arena allocation.
//
// The fill parallelises without changing a byte of the output: a first
// block-parallel pass popcounts each word block of the selection vector, a
// serial exclusive prefix sum turns the counts into per-block arena offsets,
// and a second block-parallel pass writes each block's rows at its offset —
// every tuple lands at the exact arena slot the serial scan would have given
// it, so row order (and storage sharing downstream) is position-determined,
// not schedule-determined.
func materializeSelection(joined *relation.Relation, sel []uint64, projection []string, workers, blockRows int) (*relation.Relation, error) {
	schema, err := joined.Schema.Project(projection)
	if err != nil {
		return nil, err
	}
	projIdx := make([]int, len(projection))
	for i, name := range projection {
		projIdx[i] = joined.Schema.IndexOf(name)
	}

	blockWords := blockRows / 64
	nBlocks := 0
	if len(sel) > 0 {
		nBlocks = (len(sel) + blockWords - 1) / blockWords
	}
	blockOff := make([]int, nBlocks+1)
	par.DoBlocks(len(sel), blockWords, workers, func(_, wlo, whi int) {
		c := 0
		for w := wlo; w < whi; w++ {
			c += bits.OnesCount64(sel[w])
		}
		blockOff[wlo/blockWords+1] = c
	})
	for b := 0; b < nBlocks; b++ {
		blockOff[b+1] += blockOff[b]
	}
	count := blockOff[nBlocks]

	arity := len(projIdx)
	arena := make([]relation.Value, count*arity)
	tuples := make([]relation.Tuple, count)
	par.DoBlocks(len(sel), blockWords, workers, func(_, wlo, whi int) {
		k := blockOff[wlo/blockWords]
		for w := wlo; w < whi; w++ {
			word := sel[w]
			base := w << 6
			for word != 0 {
				ri := base + bits.TrailingZeros64(word)
				word &= word - 1
				t := joined.Tuples[ri]
				row := arena[k*arity : (k+1)*arity : (k+1)*arity]
				for i, j := range projIdx {
					row[i] = t[j]
				}
				tuples[k] = relation.Tuple(row)
				k++
			}
		}
	})
	return &relation.Relation{Name: joined.Name, Schema: schema, Tuples: tuples}, nil
}

func hashWords(ws []uint64) uint64 {
	h := uint64(hashWordsOffset)
	for _, w := range ws {
		h = (h ^ w) * hashWordsPrime
	}
	return h
}

// FNV-1a constants, local so this file does not reach into relation's
// unexported kernel internals; collisions are equality-verified either way.
const (
	hashWordsOffset = 14695981039346656037
	hashWordsPrime  = 1099511628211
)

// BatchDeltaOnJoined computes every query's ResultDelta for one set of
// in-place joined-tuple modifications in a single pass over the modified
// rows: each unique term is evaluated once per modified row (old and new
// value) instead of once per query, and the per-query Lemma 5.1 case
// analysis then runs on cached term outcomes. It needs no columnar view —
// the modified-row count is small, so terms evaluate directly on the
// tuples. For the same reason the pass stays serial: a round modifies β
// edits' worth of rows plus side effects — far below the row counts where
// the block-parallel scan above starts paying. Deltas are byte-identical to
// DeltaOnJoined per query.
func BatchDeltaOnJoined(queries []*Query, joined *relation.Relation, modified map[int]relation.Tuple) ([]ResultDelta, error) {
	mDeltaBatches.Inc()
	mDeltaQueries.Add(uint64(len(queries)))
	rows := make([]int, 0, len(modified))
	for r := range modified {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for _, r := range rows {
		if r < 0 || r >= joined.Len() {
			// Same failure the scalar path reports for each query; the batch
			// shares one message since every query sees the same rows.
			return nil, fmt.Errorf("algebra: batch delta: row %d out of range", r)
		}
	}

	bp := compileBatch(queries, joined.Schema)
	rwords := (len(rows) + 63) / 64
	oldBits := make([][]uint64, len(bp.terms))
	newBits := make([][]uint64, len(bp.terms))
	for ti := range bp.terms {
		ci := bp.cols[ti]
		if ci < 0 {
			continue // constant-false term, both sides
		}
		t := &bp.terms[ti]
		ob := make([]uint64, rwords)
		nb := make([]uint64, rwords)
		for k, r := range rows {
			if t.Matches(joined.Tuples[r][ci]) {
				ob[k>>6] |= 1 << (k & 63)
			}
			if t.Matches(modified[r][ci]) {
				nb[k>>6] |= 1 << (k & 63)
			}
		}
		oldBits[ti] = ob
		newBits[ti] = nb
	}

	matchAt := func(prog [][]int, bits [][]uint64, k int) bool {
		if len(prog) == 0 {
			return true
		}
		w, m := k>>6, uint64(1)<<(k&63)
		for _, conj := range prog {
			ok := true
			for _, ti := range conj {
				if bits[ti] == nil || bits[ti][w]&m == 0 {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	deltas := make([]ResultDelta, len(queries))
	for qi, q := range queries {
		projIdx := make([]int, len(q.Projection))
		for i, name := range q.Projection {
			j := joined.Schema.IndexOf(name)
			if j < 0 {
				return nil, fmt.Errorf("algebra: delta %s: no column %q in join", q.Name, name)
			}
			projIdx[i] = j
		}
		prog := bp.progs[qi]
		var delta ResultDelta
		for k, r := range rows {
			oldT, newT := joined.Tuples[r], modified[r]
			oldIn := matchAt(prog, oldBits, k)
			newIn := matchAt(prog, newBits, k)
			switch {
			case oldIn && newIn:
				ox, nx := oldT.Project(projIdx), newT.Project(projIdx)
				if !ox.Equal(nx) {
					delta.Removed = append(delta.Removed, ox)
					delta.Added = append(delta.Added, nx)
				}
			case oldIn && !newIn:
				delta.Removed = append(delta.Removed, oldT.Project(projIdx))
			case !oldIn && newIn:
				delta.Added = append(delta.Added, newT.Project(projIdx))
			}
		}
		deltas[qi] = delta
	}
	return deltas, nil
}

// BatchApplyDelta applies each query's delta to its cached base result and
// returns the updated relations together with their ResultFP fingerprints,
// maintaining both incrementally — one combined pass over each base instead
// of the separate ApplyDelta and DeltaFingerprint scans. materialize selects
// which queries need the updated relation built (nil = all); fingerprints
// are computed for every query either way, since partitioning needs them
// all while only group representatives get materialised. Results and
// fingerprints are byte-identical to ApplyDelta / DeltaFingerprint.
func BatchApplyDelta(queries []*Query, bases []*relation.Relation, deltas []ResultDelta, materialize []bool) ([]*relation.Relation, []ResultFP) {
	results := make([]*relation.Relation, len(queries))
	fps := make([]ResultFP, len(queries))
	for qi, q := range queries {
		want := materialize == nil || materialize[qi]
		results[qi], fps[qi] = ApplyDeltaFP(q, bases[qi], deltas[qi], want)
	}
	return results, fps
}

// ApplyDeltaFP applies one query's delta to its base result in a single
// combined pass, returning the updated relation (nil unless materialize)
// and its ResultFP fingerprint. It is the per-query kernel behind
// BatchApplyDelta, exposed separately because the per-query work is
// independent — callers holding a worker pool (dbgen's partitioner) spread
// it across workers with indexed output slots, keeping results identical at
// every worker count.
func ApplyDeltaFP(q *Query, base *relation.Relation, delta ResultDelta, materialize bool) (*relation.Relation, ResultFP) {
	counts := relation.NewBag(base.Len())
	// The remove bag feeds only materialisation; fingerprints handle
	// removals through count decrements below.
	var remove *relation.Bag
	var out *relation.Relation
	if materialize {
		remove = relation.NewBag(len(delta.Removed))
		for _, t := range delta.Removed {
			remove.Inc(t, 1)
		}
		out = relation.New(base.Name, base.Schema)
	}
	for _, t := range base.Tuples {
		counts.Inc(t, 1)
		if materialize && !remove.TakeOne(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	for _, t := range delta.Removed {
		counts.Inc(t, -1)
	}
	for _, t := range delta.Added {
		counts.Inc(t, 1)
		if materialize {
			out.Tuples = append(out.Tuples, t)
		}
	}
	lo, hi := counts.Fingerprint128(q.Distinct)
	return out, ResultFP{Lo: lo, Hi: hi}
}
