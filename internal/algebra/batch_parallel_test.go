package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qfe/internal/relation"
)

// This file is the differential harness for the block-parallel batch
// evaluator: batchEvaluate at every worker count and block size must be
// byte-identical to the scalar reference path and to the serial batch path.
// Block sizes are driven through the unexported batchEvaluate entry so tests
// can force tiny (64-row) blocks and row counts that straddle the block
// boundary — rows % block ∈ {0, 1, block-1} — where a mis-merged bitmap
// word or a misaligned materialisation offset would actually bite.

// randBatchRelationN builds a relation with exactly n rows from the shared
// tuple generator, so tests can pin row counts to block-boundary cases.
func randBatchRelationN(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New("T", propSchema)
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, randBatchTuple(rng))
	}
	return r
}

// checkBlockParallel evaluates a random batch against a relation of the
// given size with the given worker count and block size, comparing every
// result to the scalar evaluation.
func checkBlockParallel(t *testing.T, rng *rand.Rand, rows, workers, blockRows int) bool {
	t.Helper()
	rel := randBatchRelationN(rng, rows)
	qs := randBatch(rng)
	// At least one DISTINCT query per batch: DISTINCT shares the dedup path
	// with selection-vector dedup and must survive block-parallel scans.
	qs[0] = qs[0].Clone()
	qs[0].Distinct = true
	col := relation.NewColumnar(rel)

	batch, err := batchEvaluate(qs, col, workers, blockRows)
	if err != nil {
		t.Logf("rows=%d workers=%d block=%d: batch evaluate: %v", rows, workers, blockRows, err)
		return false
	}
	for qi, q := range qs {
		scalar, err := q.EvaluateOnJoined(rel)
		if err != nil {
			t.Logf("scalar evaluate %s: %v", q.Name, err)
			return false
		}
		if err := relIdentical(batch[qi], scalar); err != nil {
			t.Logf("rows=%d workers=%d block=%d query %s (%s): diverges: %v\nbatch:  %v\nscalar: %v",
				rows, workers, blockRows, q.Name, q.SQL(), err, batch[qi].Tuples, scalar.Tuples)
			return false
		}
	}
	return true
}

// TestBatchEvaluateBlockBoundaries sweeps the exact row counts where block
// tiling can go wrong — multiples of the block size plus remainders 0, 1 and
// block-1, plus the empty and single-row relations — across worker counts
// 1, 2, 4 and 8 with the minimum (64-row) block.
func TestBatchEvaluateBlockBoundaries(t *testing.T) {
	const block = 64
	rows := []int{0, 1, block - 1, block, block + 1,
		2*block - 1, 2 * block, 2*block + 1, 3*block - 1}
	rng := rand.New(rand.NewSource(64646464))
	for _, n := range rows {
		for _, workers := range []int{1, 2, 4, 8} {
			if !checkBlockParallel(t, rng, n, workers, block) {
				t.Fatalf("rows=%d workers=%d: block-parallel batch diverged", n, workers)
			}
		}
	}
}

// TestBatchEvaluateBlockParallelQuick is the property form: random row
// counts (biased toward block boundaries), random worker counts and block
// sizes, batch vs scalar.
func TestBatchEvaluateBlockParallelQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(88238823))
	err := quick.Check(func(s int64) bool {
		r := rand.New(rand.NewSource(s ^ 0x9e3779b9))
		block := 64 * (1 + r.Intn(3)) // 64, 128, 192
		n := r.Intn(3 * block)
		if r.Intn(2) == 0 { // half the draws sit exactly on a boundary ± 1
			n = block*(1+r.Intn(2)) + []int{-1, 0, 1}[r.Intn(3)]
		}
		workers := 1 + r.Intn(8)
		return checkBlockParallel(t, rng, n, workers, block)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchEvaluateBlockParallelForcedCollisions repeats the boundary sweep
// with the hash kernel truncated to 2 bits, so dictionary builds and
// DISTINCT/selection dedup constantly take their collision-verification
// scans while blocks run concurrently.
func TestBatchEvaluateBlockParallelForcedCollisions(t *testing.T) {
	relation.ForceHashCollisionsForTesting(2)
	defer relation.ForceHashCollisionsForTesting(0)
	const block = 64
	rng := rand.New(rand.NewSource(271828))
	for _, n := range []int{block - 1, block, block + 1, 2 * block} {
		for _, workers := range []int{1, 2, 4, 8} {
			if !checkBlockParallel(t, rng, n, workers, block) {
				t.Fatalf("rows=%d workers=%d: diverged under forced collisions", n, workers)
			}
		}
	}
}

// TestBatchEvaluateParallelMatchesSerialBatch pins the public parallel entry
// against the public serial one on a relation large enough for several
// production-sized blocks per worker.
func TestBatchEvaluateParallelMatchesSerialBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5050))
	rel := randBatchRelationN(rng, 10_000)
	qs := randBatch(rng)
	col := relation.NewColumnar(rel)
	serial, err := BatchEvaluateOnJoined(qs, col)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := BatchEvaluateOnJoinedParallel(qs, col, workers)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range qs {
			if err := relIdentical(par[qi], serial[qi]); err != nil {
				t.Fatalf("workers=%d query %s: %v", workers, qs[qi].Name, err)
			}
		}
	}
}

// TestBatchEvaluateOddBlockRowsRoundedUp documents that batchEvaluate rounds
// block sizes up to a whole number of bitmap words: a 1-row "block" must
// behave as a 64-row block, never splitting a word between workers.
func TestBatchEvaluateOddBlockRowsRoundedUp(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, blockRows := range []int{1, 63, 65, 100} {
		if !checkBlockParallel(t, rng, 130, 4, blockRows) {
			t.Fatalf("blockRows=%d: rounded block evaluation diverged", blockRows)
		}
	}
}
