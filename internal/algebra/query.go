package algebra

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"

	"qfe/internal/db"
	"qfe/internal/relation"
)

// Query is an SPJ query π_ℓ(σ_p(J)): the foreign-key join J of Tables,
// filtered by the DNF predicate Pred, projected onto Projection. Distinct
// selects set semantics (SELECT DISTINCT); the default is bag semantics, the
// paper's §5 assumption.
//
// A query is immutable once any of Key, JoinSchemaKey or Fingerprint has
// been called: those canonical encodings are computed once and memoised on
// the query (winnowing rounds call them per candidate per round, and the
// sort-and-join work added up). Callers that need a variant of an existing
// query must Clone it and mutate the clone before its first Key use —
// Clone deliberately does not copy the memoised encodings.
type Query struct {
	Name       string   // optional label ("Q1", ...); not part of Key
	Tables     []string // base tables joined via foreign keys (the join schema)
	Projection []string // qualified column names of the joined relation
	Pred       Predicate
	Distinct   bool

	// memo holds the lazily computed canonical encodings. An atomic pointer
	// (not sync.Once) keeps the zero Query copyable and lets concurrent
	// first callers race benignly: both compute the same value, one wins.
	memo atomic.Pointer[queryMemo]
}

type queryMemo struct {
	joinKey string
	key     string
	fp      uint64
}

func (q *Query) memoized() *queryMemo {
	if m := q.memo.Load(); m != nil {
		return m
	}
	ts := append([]string(nil), q.Tables...)
	sort.Strings(ts)
	jk := strings.Join(ts, "⋈")
	key := jk + "\x03" + strings.Join(q.Projection, ",") +
		"\x03" + q.Pred.Key() + "\x03" + fmt.Sprint(q.Distinct)
	h := fnv.New64a()
	h.Write([]byte(key))
	m := &queryMemo{joinKey: jk, key: key, fp: h.Sum64()}
	q.memo.Store(m)
	return m
}

// JoinSchemaKey canonically identifies the query's join schema; queries with
// equal keys can be winnowed together (§6.2). Computed once, memoised.
func (q *Query) JoinSchemaKey() string { return q.memoized().joinKey }

// Key canonically encodes the whole query (join schema, projection,
// normalised predicate, semantics). Equal keys mean structurally identical
// queries, so Key is what exact deduplication compares. Computed once,
// memoised (queries are immutable after construction; see the type doc).
func (q *Query) Key() string { return q.memoized().key }

// Fingerprint returns a 64-bit structural hash of the query — FNV-1a over
// the canonical Key, covering the join schema, the projection list, the
// normalised predicate and the bag/set semantics flag. It is the query half
// of the evaluation-cache key (see internal/evalcache) and a compact
// identity for equality checks; exact-dedup paths keep comparing Key.
// Computed once, memoised.
func (q *Query) Fingerprint() uint64 { return q.memoized().fp }

// Clone deep-copies the query. The memoised Key/Fingerprint material is NOT
// copied: a clone may be mutated before its first Key use (e.g. dbgen's
// bag-semantics re-evaluation clones and clears Distinct), so it must
// re-derive its own encodings.
func (q *Query) Clone() *Query {
	c := &Query{
		Name:       q.Name,
		Tables:     append([]string(nil), q.Tables...),
		Projection: append([]string(nil), q.Projection...),
		Distinct:   q.Distinct,
	}
	c.Pred = make(Predicate, len(q.Pred))
	for i, conj := range q.Pred {
		cc := make(Conjunct, len(conj))
		for j, t := range conj {
			tt := t
			tt.Set = append([]relation.Value(nil), t.Set...)
			cc[j] = tt
		}
		c.Pred[i] = cc
	}
	return c
}

// SQL renders the query as a SQL statement. Joins are emitted as NATURAL
// JOIN-style explicit equality is omitted because the join conditions are
// implied by the declared foreign keys; the CLI prints FK edges alongside.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Projection) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Projection, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Tables, " JOIN "))
	if len(q.Pred) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(q.Pred.String())
	}
	return b.String()
}

// String implements fmt.Stringer; it prefixes the optional name.
func (q *Query) String() string {
	if q.Name != "" {
		return q.Name + ": " + q.SQL()
	}
	return q.SQL()
}

// Evaluate runs the query against a database: joins q.Tables by foreign
// keys, applies the predicate and the projection. The result relation's name
// is the query name.
func (q *Query) Evaluate(d *db.Database) (*relation.Relation, error) {
	j, err := db.Join(d, q.Tables)
	if err != nil {
		return nil, fmt.Errorf("algebra: evaluate %s: %w", q.Name, err)
	}
	return q.EvaluateOnJoined(j.Rel)
}

// EvaluateOnJoined runs selection+projection against an already-computed
// joined relation. All candidate queries of one QFE session share the join,
// so the session computes it once and calls this.
func (q *Query) EvaluateOnJoined(joined *relation.Relation) (*relation.Relation, error) {
	sel := joined.Select(q.Pred.Compile(joined.Schema))
	out, err := sel.Project(q.Projection)
	if err != nil {
		return nil, fmt.Errorf("algebra: evaluate %s: %w", q.Name, err)
	}
	if q.Distinct {
		out = out.Distinct()
	}
	out.Name = q.Name
	return out, nil
}

// ResultDelta is the effect of a set of joined-tuple modifications on one
// query's result: projected tuples removed from and added to Q(D). It
// captures Lemma 5.1's four cases per modified tuple.
type ResultDelta struct {
	Removed []relation.Tuple
	Added   []relation.Tuple
}

// Empty reports whether the delta leaves the result unchanged tuple-for-
// tuple (note: under bag semantics equal add/remove pairs cancel only if
// they are the same value; Canceled handles that).
func (d ResultDelta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// DeltaOnJoined computes the query's result delta when the joined tuples at
// the given indexes are replaced by new versions. modified maps joined-row
// index to the new tuple. This is the incremental evaluator: Q(D') =
// Q(D) − Removed ∪ Added, without re-running the join.
func (q *Query) DeltaOnJoined(joined *relation.Relation, modified map[int]relation.Tuple) (ResultDelta, error) {
	projIdx := make([]int, len(q.Projection))
	for i, n := range q.Projection {
		j := joined.Schema.IndexOf(n)
		if j < 0 {
			return ResultDelta{}, fmt.Errorf("algebra: delta %s: no column %q in join", q.Name, n)
		}
		projIdx[i] = j
	}
	var delta ResultDelta
	// Compile the predicate once for the whole delta: the column lookups and
	// term dispatch are resolved here instead of per modified row (Compile
	// mirrors Matches exactly, including the constant-false behaviour for
	// columns missing from the schema).
	match := q.Pred.Compile(joined.Schema)
	// Deterministic order: visit modified rows in ascending index.
	rows := make([]int, 0, len(modified))
	for r := range modified {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for _, r := range rows {
		if r < 0 || r >= joined.Len() {
			return ResultDelta{}, fmt.Errorf("algebra: delta %s: row %d out of range", q.Name, r)
		}
		oldT, newT := joined.Tuples[r], modified[r]
		oldIn := match(oldT)
		newIn := match(newT)
		switch {
		case oldIn && newIn:
			ox, nx := oldT.Project(projIdx), newT.Project(projIdx)
			if !ox.Equal(nx) {
				delta.Removed = append(delta.Removed, ox)
				delta.Added = append(delta.Added, nx)
			}
		case oldIn && !newIn:
			delta.Removed = append(delta.Removed, oldT.Project(projIdx))
		case !oldIn && newIn:
			delta.Added = append(delta.Added, newT.Project(projIdx))
		}
	}
	return delta, nil
}

// ApplyDelta applies a delta to a base result (bag semantics) and returns
// the resulting relation. Removal bookkeeping runs through the hash kernel
// (collision-verified), so no per-tuple key strings are built.
func ApplyDelta(base *relation.Relation, delta ResultDelta) *relation.Relation {
	out := relation.New(base.Name, base.Schema)
	remove := relation.NewBag(len(delta.Removed))
	for _, t := range delta.Removed {
		remove.Inc(t, 1)
	}
	for _, t := range base.Tuples {
		if remove.TakeOne(t) {
			continue
		}
		out.Tuples = append(out.Tuples, t)
	}
	for _, t := range delta.Added {
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// ResultFP is a 128-bit fingerprint of one query's predicted result on the
// modified database: a commutative combination of per-tuple hashes and
// multiplicities (relation.Bag.Fingerprint128). Two queries with equal
// fingerprints produce the same result bag on D' up to 128-bit collision;
// unlike the kernel's verified operations this grouping is probabilistic,
// which is acceptable because a collision merely merges two candidate
// groups and 2⁻¹²⁸-scale probabilities are negligible at QFE's candidate
// counts. ResultFP is comparable and replaces the canonical sorted-string
// encoding the partitioner used to build per query per round.
type ResultFP struct{ Lo, Hi uint64 }

// DeltaFingerprint returns the fingerprint of the post-delta result, given
// the base result, under the query's semantics. Two queries whose
// fingerprints agree produce the same result on D' — this is how QFE
// partitions QC without materialising each result (§2, step 4). The counts
// are exact (hash-keyed with equality verification); only the final 128-bit
// encoding is probabilistic. slowDeltaFingerprint is the legacy
// string-keyed encoding, kept as the differential-test reference.
func (q *Query) DeltaFingerprint(base *relation.Relation, delta ResultDelta) ResultFP {
	counts := relation.NewBag(base.Len())
	for _, t := range base.Tuples {
		counts.Inc(t, 1)
	}
	for _, t := range delta.Removed {
		counts.Inc(t, -1)
	}
	for _, t := range delta.Added {
		counts.Inc(t, 1)
	}
	lo, hi := counts.Fingerprint128(q.Distinct)
	return ResultFP{Lo: lo, Hi: hi}
}

// slowDeltaFingerprint is the legacy canonical string encoding of the
// post-delta result (sorted tuple keys, ×count under bag semantics). It is
// the reference implementation for DeltaFingerprint's differential tests:
// two (base, delta) pairs get equal slow encodings iff they describe the
// same result bag, which is exactly when DeltaFingerprint must agree.
func (q *Query) slowDeltaFingerprint(base *relation.Relation, delta ResultDelta) string {
	counts := base.Counts()
	for _, t := range delta.Removed {
		counts[t.Key()]--
	}
	for _, t := range delta.Added {
		counts[t.Key()]++
	}
	keys := make([]string, 0, len(counts))
	for k, c := range counts {
		if c <= 0 {
			continue
		}
		if q.Distinct {
			keys = append(keys, k)
		} else {
			keys = append(keys, fmt.Sprintf("%s×%d", k, c))
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
