package algebra

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qfe/internal/relation"
)

// This file is the differential property test for the columnar batch
// engine: on randomized relations, query batches and edit sets, the batch
// APIs must be byte-identical to the scalar reference path
// (EvaluateOnJoined / DeltaOnJoined / ApplyDelta / DeltaFingerprint) —
// same tuples in the same order, same names, same fingerprints — including
// for DISTINCT candidates and under forced hash collisions, where the
// dictionary build and selection-vector dedup fall back to their
// verification scans.

// randBatchTuple draws tuples whose numeric cells sometimes hold integral
// floats, so the columnar dictionaries actually merge KeyEqual classes
// (Int(3) ≡ Float(3.0)) that the scalar path distinguishes only by Compare.
func randBatchTuple(rng *rand.Rand) relation.Tuple {
	num := func(n int) relation.Value {
		v := int64(rng.Intn(n))
		if rng.Intn(3) == 0 {
			return relation.Float(float64(v))
		}
		return relation.Int(v)
	}
	return relation.Tuple{
		num(7),
		relation.Str(propCats[rng.Intn(len(propCats))]),
		num(5),
	}
}

func randBatchRelation(rng *rand.Rand) *relation.Relation {
	r := relation.New("T", propSchema)
	n := rng.Intn(13)
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, randBatchTuple(rng))
	}
	return r
}

// randBatch builds 2-8 queries over the relation's schema; roughly one in
// five is a structural duplicate of an earlier one so result sharing and
// selection-vector dedup both trigger.
func randBatch(rng *rand.Rand) []*Query {
	n := 2 + rng.Intn(7)
	qs := make([]*Query, 0, n)
	for i := 0; i < n; i++ {
		if len(qs) > 0 && rng.Intn(5) == 0 {
			dup := qs[rng.Intn(len(qs))].Clone()
			dup.Name = fmt.Sprintf("B%d", i)
			qs = append(qs, dup)
			continue
		}
		qs = append(qs, randQuery(rng, fmt.Sprintf("B%d", i)))
	}
	return qs
}

// relIdentical asserts stored-order, name and schema identity — stricter
// than BagEqual, because the batch engine promises byte-identical results.
func relIdentical(a, b *relation.Relation) error {
	if a.Name != b.Name {
		return fmt.Errorf("name %q vs %q", a.Name, b.Name)
	}
	if !a.Schema.Equal(b.Schema) {
		return fmt.Errorf("schema %v vs %v", a.Schema, b.Schema)
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("len %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			return fmt.Errorf("tuple %d: %v vs %v", i, a.Tuples[i], b.Tuples[i])
		}
	}
	return nil
}

func checkBatchEvaluate(t *testing.T, seed int64) {
	t.Helper()
	err := quick.Check(func(s int64) bool {
		rng := rand.New(rand.NewSource(seed ^ s))
		rel := randBatchRelation(rng)
		qs := randBatch(rng)
		col := relation.NewColumnar(rel)
		batch, err := BatchEvaluateOnJoined(qs, col)
		if err != nil {
			t.Logf("batch evaluate: %v", err)
			return false
		}
		for qi, q := range qs {
			scalar, err := q.EvaluateOnJoined(rel)
			if err != nil {
				t.Logf("scalar evaluate %s: %v", q.Name, err)
				return false
			}
			if err := relIdentical(batch[qi], scalar); err != nil {
				t.Logf("query %s (%s): batch diverges: %v\nbatch:  %v\nscalar: %v",
					q.Name, q.SQL(), err, batch[qi].Tuples, scalar.Tuples)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBatchEvaluateMatchesScalar(t *testing.T) {
	checkBatchEvaluate(t, 20150813)
}

func TestBatchEvaluateMatchesScalarForcedCollisions(t *testing.T) {
	relation.ForceHashCollisionsForTesting(2)
	defer relation.ForceHashCollisionsForTesting(0)
	checkBatchEvaluate(t, 424242)
}

func deltasIdentical(a, b ResultDelta) error {
	if len(a.Removed) != len(b.Removed) || len(a.Added) != len(b.Added) {
		return fmt.Errorf("sizes (-%d,+%d) vs (-%d,+%d)",
			len(a.Removed), len(a.Added), len(b.Removed), len(b.Added))
	}
	for i := range a.Removed {
		if !a.Removed[i].Equal(b.Removed[i]) {
			return fmt.Errorf("removed %d: %v vs %v", i, a.Removed[i], b.Removed[i])
		}
	}
	for i := range a.Added {
		if !a.Added[i].Equal(b.Added[i]) {
			return fmt.Errorf("added %d: %v vs %v", i, a.Added[i], b.Added[i])
		}
	}
	return nil
}

func checkBatchDelta(t *testing.T, seed int64) {
	t.Helper()
	err := quick.Check(func(s int64) bool {
		rng := rand.New(rand.NewSource(seed ^ s))
		rel := randBatchRelation(rng)
		if rel.Len() == 0 {
			return true
		}
		qs := randBatch(rng)
		modified := randEdits(rng, rel)

		batchDeltas, err := BatchDeltaOnJoined(qs, rel, modified)
		if err != nil {
			t.Logf("batch delta: %v", err)
			return false
		}
		// Bag-semantics bases, as dbgen stores them.
		bases := make([]*relation.Relation, len(qs))
		for qi, q := range qs {
			bagQ := q.Clone()
			bagQ.Distinct = false
			base, err := bagQ.EvaluateOnJoined(rel)
			if err != nil {
				t.Logf("base %s: %v", q.Name, err)
				return false
			}
			bases[qi] = base
		}
		// Materialise only every other query, exercising the selective flag.
		want := make([]bool, len(qs))
		for qi := range want {
			want[qi] = qi%2 == 0
		}
		results, fps := BatchApplyDelta(qs, bases, batchDeltas, want)

		for qi, q := range qs {
			scalarDelta, err := q.DeltaOnJoined(rel, modified)
			if err != nil {
				t.Logf("scalar delta %s: %v", q.Name, err)
				return false
			}
			if err := deltasIdentical(batchDeltas[qi], scalarDelta); err != nil {
				t.Logf("query %s (%s): batch delta diverges: %v", q.Name, q.SQL(), err)
				return false
			}
			if got, wantFP := fps[qi], q.DeltaFingerprint(bases[qi], scalarDelta); got != wantFP {
				t.Logf("query %s: batch fingerprint %v, scalar %v", q.Name, got, wantFP)
				return false
			}
			if !want[qi] {
				if results[qi] != nil {
					t.Logf("query %s: unrequested materialisation", q.Name)
					return false
				}
				continue
			}
			scalarRes := ApplyDelta(bases[qi], scalarDelta)
			if err := relIdentical(results[qi], scalarRes); err != nil {
				t.Logf("query %s: batch ApplyDelta diverges: %v", q.Name, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBatchDeltaMatchesScalar(t *testing.T) {
	checkBatchDelta(t, 977)
}

func TestBatchDeltaMatchesScalarForcedCollisions(t *testing.T) {
	relation.ForceHashCollisionsForTesting(1)
	defer relation.ForceHashCollisionsForTesting(0)
	checkBatchDelta(t, 1311)
}

// TestBatchEvaluateErrors pins the error path: a projection column missing
// from the join must fail just like the scalar evaluation does.
func TestBatchEvaluateErrors(t *testing.T) {
	rel := relation.New("T", propSchema)
	rel.Tuples = append(rel.Tuples, relation.Tuple{
		relation.Int(1), relation.Str("x"), relation.Int(2)})
	col := relation.NewColumnar(rel)
	good := &Query{Name: "G", Tables: []string{"T"}, Projection: []string{"T.a"}}
	bad := &Query{Name: "B", Tables: []string{"T"}, Projection: []string{"T.missing"}}
	if _, err := BatchEvaluateOnJoined([]*Query{good, bad}, col); err == nil {
		t.Error("missing projection column should error")
	}
	if _, err := BatchDeltaOnJoined([]*Query{good, bad}, rel,
		map[int]relation.Tuple{0: rel.Tuples[0]}); err == nil {
		t.Error("missing projection column should error in batch delta")
	}
	if _, err := BatchDeltaOnJoined([]*Query{good}, rel,
		map[int]relation.Tuple{5: rel.Tuples[0]}); err == nil {
		t.Error("out-of-range row should error in batch delta")
	}
}

// TestBatchEvaluateSharesStorage verifies that structurally identical
// candidates share one materialised tuple slice — the memory contract that
// makes one shared scan per partition block worthwhile.
func TestBatchEvaluateSharesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := randBatchRelation(rng)
	for rel.Len() == 0 {
		rel = randBatchRelation(rng)
	}
	q1 := randQuery(rng, "A")
	q2 := q1.Clone()
	q2.Name = "B"
	res, err := BatchEvaluateOnJoined([]*Query{q1, q2}, relation.NewColumnar(rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Tuples) > 0 && &res[0].Tuples[0] != &res[1].Tuples[0] {
		t.Error("identical candidates should share materialised tuple storage")
	}
	if res[0].Name != "A" || res[1].Name != "B" {
		t.Errorf("names not preserved: %q, %q", res[0].Name, res[1].Name)
	}
}
