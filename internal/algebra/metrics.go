package algebra

import "qfe/internal/obs"

// Batch-engine counters (DESIGN.md §13): scans are shared passes over one
// joined relation; queries counts the candidates answered by those passes.
// Incremented once per batch call, never per row.
var (
	mBatchScans = obs.NewCounter("qfe_engine_batch_scans_total",
		"Shared columnar batch scans executed.")
	mBatchQueries = obs.NewCounter("qfe_engine_batch_queries_total",
		"Candidate queries evaluated via shared batch scans.")
	mDeltaBatches = obs.NewCounter("qfe_engine_delta_batches_total",
		"Shared incremental (Lemma 5.1) delta passes executed.")
	mDeltaQueries = obs.NewCounter("qfe_engine_delta_queries_total",
		"Candidate queries maintained via shared delta passes.")
)
