package retry

import (
	"net"
	"net/http"
	"time"
)

// newTransport builds the shared upstream transport: bounded dial and TLS
// handshake times (a dead peer costs seconds, not the OS's minutes-long
// SYN retry ladder) and a small keep-alive pool per host. Each caller
// gets its own transport so one client's connection-pool state (or an
// injected fault wrapper) never bleeds into another's.
func newTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout: 2 * time.Second,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
}

// HTTPClient is the shared constructor for the repo's upstream HTTP
// clients (chaos harness, cluster harness, health probers): one place to
// decide dial/TLS bounds instead of scattered http.Client literals. The
// timeout caps each whole request, response body included (0 = no cap;
// prefer HTTPClientPerRequest then).
func HTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: newTransport()}
}

// HTTPClientPerRequest builds a client for callers that bound each call
// with its own context deadline (the router's proxy attempts, adoption
// RPCs): no global Timeout — a client-wide cap would race the caller's
// per-request deadlines — but the same bounded dial/TLS transport.
func HTTPClientPerRequest() *http.Client {
	return &http.Client{Transport: newTransport()}
}
