package retry

import "qfe/internal/obs"

// Process-wide retry-loop handles: every Policy.Do in the process (router
// proxying, failover adoptions, chaos clients) feeds the same counters —
// a rising retry rate is the earliest cluster-distress signal, and give-ups
// are requests that turned into client-visible 503s.
var (
	mRetriesScheduled = obs.NewCounter("qfe_retry_backoffs_total",
		"Retries scheduled (backoff sleeps) across all retry loops.")
	mGiveups = obs.NewCounter("qfe_retry_giveups_total",
		"Retry loops that gave up (MaxAttempts or Budget exhausted).")
)
