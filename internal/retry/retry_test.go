package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock drives a Policy without real sleeping: Sleep records each delay
// and advances the clock by it, so budget accounting sees simulated time.
type fakeClock struct {
	now    time.Time
	slept  []time.Duration
	cancel context.CancelFunc // when set, fires after cancelAfter sleeps
	after  int
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0)}
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	if c.cancel != nil && len(c.slept) >= c.after {
		c.cancel()
	}
	return nil
}

// policy builds a deterministic test policy: jitter draw fixed at frac.
func (c *fakeClock) policy(frac float64) Policy {
	return Policy{
		Initial: 25 * time.Millisecond,
		Cap:     400 * time.Millisecond,
		Rand:    func() float64 { return frac },
		Now:     c.Now,
		Sleep:   c.Sleep,
	}
}

func TestSucceedsFirstTry(t *testing.T) {
	c := newFakeClock()
	calls := 0
	if err := c.policy(1).Do(context.Background(), func() error { calls++; return nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 || len(c.slept) != 0 {
		t.Fatalf("calls=%d slept=%v, want 1 call and no sleeps", calls, c.slept)
	}
}

func TestExponentialCeilingWithCap(t *testing.T) {
	c := newFakeClock()
	boom := errors.New("boom")
	calls := 0
	p := c.policy(1) // jitter draw 1.0: sleep exactly the ceiling
	p.MaxAttempts = 7
	err := p.Do(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	if calls != 7 {
		t.Fatalf("calls = %d, want 7", calls)
	}
	want := []time.Duration{
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond,
	}
	if len(c.slept) != len(want) {
		t.Fatalf("slept %v, want %v", c.slept, want)
	}
	for i := range want {
		if c.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, c.slept[i], want[i], c.slept)
		}
	}
}

func TestFullJitterBounds(t *testing.T) {
	// With jitter draw 0.5 every sleep is exactly half the ceiling; more
	// generally every sleep must fall in [0, ceiling].
	c := newFakeClock()
	p := c.policy(0.5)
	p.MaxAttempts = 4
	_ = p.Do(context.Background(), func() error { return errors.New("x") })
	want := []time.Duration{
		25 * time.Millisecond / 2, 50 * time.Millisecond / 2, 100 * time.Millisecond / 2,
	}
	for i := range want {
		if c.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, c.slept[i], want[i])
		}
	}
}

func TestZeroJitterStillRetries(t *testing.T) {
	c := newFakeClock()
	p := c.policy(0) // jitter draw 0: zero-length sleeps, loop must not stall
	p.MaxAttempts = 3
	calls := 0
	_ = p.Do(context.Background(), func() error { calls++; return errors.New("x") })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	c := newFakeClock()
	boom := errors.New("boom")
	p := c.policy(1)
	p.Budget = 100 * time.Millisecond // covers 25+50, not the 100ms third sleep
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (budget covers two backoffs)", calls)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	c := newFakeClock()
	cause := errors.New("bad request")
	calls := 0
	err := c.policy(1).Do(context.Background(), func() error {
		calls++
		return Permanent(fmt_wrap(cause))
	})
	if !errors.Is(err, cause) {
		t.Fatalf("Do = %v, want cause", err)
	}
	if IsPermanent(err) {
		t.Fatalf("returned error should be unwrapped, got permanent-marked %v", err)
	}
	if calls != 1 || len(c.slept) != 0 {
		t.Fatalf("calls=%d slept=%v, want no retries", calls, c.slept)
	}
}

// fmt_wrap adds a layer so errors.As must traverse a chain.
func fmt_wrap(err error) error { return &wrapped{err} }

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func TestPermanentDetectedThroughWrapping(t *testing.T) {
	c := newFakeClock()
	cause := errors.New("cause")
	err := c.policy(1).Do(context.Background(), func() error {
		return fmt_wrap(Permanent(cause))
	})
	if !errors.Is(err, cause) {
		t.Fatalf("Do = %v, want cause", err)
	}
	if len(c.slept) != 0 {
		t.Fatalf("slept %v, want none", c.slept)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := newFakeClock()
	c.cancel, c.after = cancel, 2 // cancel during the second backoff
	p := c.policy(1)
	calls := 0
	err := p.Do(ctx, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestOnRetryObservesEveryBackoff(t *testing.T) {
	c := newFakeClock()
	p := c.policy(1)
	p.MaxAttempts = 4
	var attempts []int
	var delays []time.Duration
	p.OnRetry = func(attempt int, err error, delay time.Duration) {
		attempts = append(attempts, attempt)
		delays = append(delays, delay)
	}
	_ = p.Do(context.Background(), func() error { return errors.New("x") })
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("attempts = %v, want [1 2 3]", attempts)
	}
	for i, d := range delays {
		if d != c.slept[i] {
			t.Fatalf("OnRetry delay %d = %v, slept %v", i, d, c.slept[i])
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	// A zero policy with a real (tiny) sleep must still terminate via
	// MaxAttempts and produce sane backoff.
	p := Policy{MaxAttempts: 2, Initial: time.Microsecond, Cap: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return errors.New("x") })
	if err == nil || calls != 2 {
		t.Fatalf("err=%v calls=%d, want error after 2 attempts", err, calls)
	}
}
