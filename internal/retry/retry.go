// Package retry implements capped exponential backoff with full jitter —
// the retry discipline shared by every client that talks to a qfe-server
// through crashes and failovers (the chaos harness's HTTP client, the
// cluster router's proxy attempts, the failover handoff RPCs).
//
// The policy follows the classic "full jitter" scheme: attempt i sleeps a
// uniformly random duration in [0, min(Cap, Initial·Multiplier^i)]. Jitter
// decorrelates the retry storms that synchronized clients would otherwise
// aim at a server that just came back, while the cap bounds worst-case
// added latency. Retrying is only safe when the operation is idempotent;
// in this codebase that is arranged by construction (seq-tagged feedback,
// idempotent create-by-id, merge-by-progress adoption).
//
// Clock, sleep and randomness are injectable so tests can drive a retry
// loop through hours of simulated backoff without sleeping.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes one retry discipline. The zero value selects defaults
// (25ms initial, 1s cap, multiplier 2, no attempt bound, no budget).
// Policies are value types: copy freely, share safely.
type Policy struct {
	// Initial is the first backoff ceiling (default 25ms).
	Initial time.Duration
	// Cap bounds the backoff ceiling (default 1s).
	Cap time.Duration
	// Multiplier grows the ceiling between attempts (default 2).
	Multiplier float64
	// MaxAttempts bounds the number of fn invocations (0 = unbounded;
	// bound the loop with Budget or the context instead).
	MaxAttempts int
	// Budget bounds the total wall time of the loop, sleeps included: a
	// retry whose backoff would overrun the budget is not attempted and the
	// last error is returned (0 = no budget).
	Budget time.Duration

	// Rand supplies the jitter draw in [0, 1) (default math/rand global).
	Rand func() float64
	// Now supplies the clock for budget accounting (default time.Now).
	Now func() time.Time
	// Sleep waits for d or until ctx is done, returning ctx.Err() in the
	// latter case (default a real timer). Tests inject a fake.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes every scheduled retry: the attempt number
	// just failed (1-based), its error, and the backoff about to be slept.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns the original
// error: the failure is not transient (a 4xx response, a validation error,
// a durability violation) and retrying would either spin or double-apply.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked by Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Do invokes fn until it succeeds, returns a Permanent error, exhausts
// MaxAttempts or Budget, or ctx is cancelled. It returns nil on success,
// the unwrapped cause for Permanent failures, the last transient error on
// exhaustion, and ctx.Err() (joined with the last transient error, if any)
// on cancellation.
func (p Policy) Do(ctx context.Context, fn func() error) error {
	if p.Initial <= 0 {
		p.Initial = 25 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	if p.Sleep == nil {
		p.Sleep = realSleep
	}
	if ctx == nil {
		ctx = context.Background()
	}

	start := p.Now()
	ceiling := p.Initial
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			mGiveups.Inc()
			return err
		}
		delay := time.Duration(p.Rand() * float64(ceiling))
		if p.Budget > 0 && p.Now().Sub(start)+delay > p.Budget {
			mGiveups.Inc()
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		mRetriesScheduled.Inc()
		if serr := p.Sleep(ctx, delay); serr != nil {
			return fmt.Errorf("%w (last attempt: %v)", serr, err)
		}
		next := time.Duration(float64(ceiling) * p.Multiplier)
		if next > p.Cap || next < ceiling { // < guards overflow
			next = p.Cap
		}
		ceiling = next
	}
}

// realSleep waits for d or ctx, whichever first.
func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		// Still honour cancellation between attempts.
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
