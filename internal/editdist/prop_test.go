package editdist

import (
	"math/rand"
	"testing"

	"qfe/internal/relation"
)

// bruteForceMinEdit computes the paper's relation edit distance by exhaustive
// assignment: every tuple of a is either matched to a distinct tuple of b
// (cost = number of differing attributes) or deleted (cost = arity);
// unmatched tuples of b are inserted (cost = arity). Exponential, usable
// only for the small relations of this property test.
func bruteForceMinEdit(a, b *relation.Relation) int {
	arity := a.Arity()
	used := make([]bool, b.Len())
	var rec func(i int) int
	rec = func(i int) int {
		if i == a.Len() {
			cost := 0
			for j := range used {
				if !used[j] {
					cost += arity // insert remaining b tuples
				}
			}
			return cost
		}
		best := arity + rec(i+1) // delete a[i]
		for j := 0; j < b.Len(); j++ {
			if used[j] {
				continue
			}
			used[j] = true
			if c := a.Tuples[i].DiffCount(b.Tuples[j]) + rec(i+1); c < best {
				best = c
			}
			used[j] = false
		}
		return best
	}
	return rec(0)
}

func randPropRelation(rng *rand.Rand, maxTuples int) *relation.Relation {
	schema := relation.NewSchema(
		"a", relation.KindInt, "b", relation.KindString, "c", relation.KindInt)
	cats := []string{"p", "q", "r"}
	r := relation.New("T", schema)
	n := rng.Intn(maxTuples + 1)
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, relation.Tuple{
			relation.Int(int64(rng.Intn(4))),
			relation.Str(cats[rng.Intn(len(cats))]),
			relation.Int(int64(rng.Intn(3))),
		})
	}
	return r
}

// TestMinEditMatchesBruteForce: the Hungarian-based MinEdit must equal the
// exhaustive optimal assignment on random relations of up to 6 tuples. The
// domains are deliberately tiny so duplicate tuples (the zero-cost pre-match
// path) occur often.
func TestMinEditMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8131))
	for trial := 0; trial < 500; trial++ {
		a := randPropRelation(rng, 6)
		b := randPropRelation(rng, 6)
		got := MinEdit(a, b)
		want := bruteForceMinEdit(a, b)
		if got != want {
			t.Fatalf("trial %d: MinEdit = %d, brute force = %d\nA: %v\nB: %v",
				trial, got, want, a.Tuples, b.Tuples)
		}
		// The edit script must carry exactly the optimal cost, and its ops
		// must sum to it.
		ops, scriptCost := Script(a, b)
		if scriptCost != want {
			t.Fatalf("trial %d: Script cost %d != optimal %d", trial, scriptCost, want)
		}
		sum := 0
		for _, op := range ops {
			sum += op.Cost
		}
		if sum != scriptCost {
			t.Fatalf("trial %d: op costs sum to %d, script reports %d", trial, sum, scriptCost)
		}
	}
}

// TestMinEditIdentityAndSymmetry: d(a,a) = 0 and d(a,b) = d(b,a) on random
// relations — MinEdit is a metric-like distance over relations.
func TestMinEditIdentityAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		a := randPropRelation(rng, 6)
		b := randPropRelation(rng, 6)
		if d := MinEdit(a, a); d != 0 {
			t.Fatalf("trial %d: MinEdit(a,a) = %d", trial, d)
		}
		// Identity also holds across tuple reordering (bag semantics).
		shuffled := a.Clone()
		rng.Shuffle(len(shuffled.Tuples), func(i, j int) {
			shuffled.Tuples[i], shuffled.Tuples[j] = shuffled.Tuples[j], shuffled.Tuples[i]
		})
		if d := MinEdit(a, shuffled); d != 0 {
			t.Fatalf("trial %d: MinEdit(a, shuffle(a)) = %d", trial, d)
		}
		if dab, dba := MinEdit(a, b), MinEdit(b, a); dab != dba {
			t.Fatalf("trial %d: asymmetric: d(a,b)=%d d(b,a)=%d\nA: %v\nB: %v",
				trial, dab, dba, a.Tuples, b.Tuples)
		}
	}
}

// TestMinEditTriangleInequality: d(a,c) <= d(a,b) + d(b,c). Not required by
// the paper but implied by the edit model; a violation would mean the
// assignment search is not finding minima.
func TestMinEditTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 200; trial++ {
		a := randPropRelation(rng, 5)
		b := randPropRelation(rng, 5)
		c := randPropRelation(rng, 5)
		dac, dab, dbc := MinEdit(a, c), MinEdit(a, b), MinEdit(b, c)
		if dac > dab+dbc {
			t.Fatalf("trial %d: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d\nA: %v\nB: %v\nC: %v",
				trial, dac, dab, dbc, a.Tuples, b.Tuples, c.Tuples)
		}
	}
}
