// Package editdist computes the paper's minEdit(T, T′) distance between two
// relation instances (§3): the minimum total cost of transforming T into T′
// using (E1) attribute modifications at cost 1, (E2) tuple insertions at cost
// arity, and (E3) tuple deletions at cost arity.
//
// The minimum over all edit sequences reduces to an assignment problem:
// match tuples of T to tuples of T′ where matching costs the number of
// differing attributes, and unmatched tuples pay the insert/delete cost. The
// package solves it exactly with the O(n³) Hungarian algorithm after
// removing the common multiset of tuples (which always match at cost 0).
package editdist

import "math"

// hungarian solves the square assignment problem for the given cost matrix
// and returns, for each row, the assigned column, plus the total cost. It is
// the classic potentials-and-augmenting-paths formulation (Jonker/Volgenant
// style), O(n³).
func hungarian(cost [][]int) ([]int, int) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	const inf = math.MaxInt / 4
	// Potentials for rows (u) and columns (v); way[j] remembers the column
	// preceding j on the shortest augmenting path; p[j] is the row matched
	// to column j. Index 0 is a sentinel.
	u := make([]int, n+1)
	v := make([]int, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], inf, 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	total := 0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total
}
