package editdist

import (
	"fmt"
	"strings"

	"qfe/internal/relation"
)

// OpKind classifies one edit operation.
type OpKind uint8

// Edit operation kinds, matching the paper's E1/E2/E3.
const (
	OpModify OpKind = iota // E1: change one attribute of a kept tuple
	OpInsert               // E2: insert a tuple (cost = arity)
	OpDelete               // E3: delete a tuple (cost = arity)
)

// Op is one step of an edit script transforming relation A into relation B.
type Op struct {
	Kind OpKind
	// RowA indexes the tuple in A being modified or deleted (-1 for insert);
	// RowB indexes the tuple in B being produced (-1 for delete).
	RowA, RowB int
	// Col, From, To describe a single attribute modification (OpModify).
	Col      int
	From, To relation.Value
	// Cost of this op: 1 for modify, arity for insert/delete.
	Cost int
}

// String renders the op for Δ(D,R) presentation.
func (o Op) String() string {
	switch o.Kind {
	case OpModify:
		return fmt.Sprintf("modify row %d col %d: %s -> %s", o.RowA, o.Col, o.From, o.To)
	case OpInsert:
		return fmt.Sprintf("insert row %d", o.RowB)
	case OpDelete:
		return fmt.Sprintf("delete row %d", o.RowA)
	default:
		return "op(?)"
	}
}

// MinEdit returns the minimum edit cost transforming a into b under the
// paper's cost model. Relations must have equal arity.
func MinEdit(a, b *relation.Relation) int {
	_, cost := match(a, b)
	return cost
}

// Script returns a minimum-cost edit script transforming a into b, along
// with its total cost. The script lists per-attribute modifications for
// matched tuples and insert/delete ops for unmatched ones.
func Script(a, b *relation.Relation) ([]Op, int) {
	pairs, cost := match(a, b)
	arity := a.Arity()
	var ops []Op
	for _, pr := range pairs {
		switch {
		case pr.a >= 0 && pr.b >= 0:
			ta, tb := a.Tuples[pr.a], b.Tuples[pr.b]
			for c := range ta {
				if !ta[c].Equal(tb[c]) {
					ops = append(ops, Op{Kind: OpModify, RowA: pr.a, RowB: pr.b,
						Col: c, From: ta[c], To: tb[c], Cost: 1})
				}
			}
		case pr.a >= 0:
			ops = append(ops, Op{Kind: OpDelete, RowA: pr.a, RowB: -1, Cost: arity})
		default:
			ops = append(ops, Op{Kind: OpInsert, RowA: -1, RowB: pr.b, Cost: arity})
		}
	}
	return ops, cost
}

// pair couples a row of A with a row of B; -1 marks "unmatched".
type pair struct{ a, b int }

// match computes the optimal assignment between the tuples of a and b.
// Tuples appearing in both relations (as a multiset) are matched first at
// zero cost; the Hungarian algorithm handles the remainder.
func match(a, b *relation.Relation) ([]pair, int) {
	if a.Arity() != b.Arity() {
		panic(fmt.Sprintf("editdist: arity mismatch %d vs %d", a.Arity(), b.Arity()))
	}
	arity := a.Arity()

	// Multiset-match identical tuples at zero cost. B's rows are bucketed by
	// tuple hash and matched with KeyEqual verification (the legacy key-
	// string index is reproduced exactly: among equal tuples, the highest
	// unused B row is taken first).
	byHash := make(map[uint64][]int, b.Len())
	for i, t := range b.Tuples {
		h := t.Hash64()
		byHash[h] = append(byHash[h], i)
	}
	usedB := make([]bool, b.Len())
	var pairs []pair
	var restA []int
	for i, t := range a.Tuples {
		bucket := byHash[t.Hash64()]
		matched := false
		for bi := len(bucket) - 1; bi >= 0; bi-- {
			j := bucket[bi]
			if usedB[j] || !b.Tuples[j].KeyEqual(t) {
				continue
			}
			usedB[j] = true
			pairs = append(pairs, pair{i, j})
			matched = true
			break
		}
		if !matched {
			restA = append(restA, i)
		}
	}
	var restB []int
	for j := range b.Tuples {
		if !usedB[j] {
			restB = append(restB, j)
		}
	}

	na, nb := len(restA), len(restB)
	if na == 0 && nb == 0 {
		return pairs, 0
	}
	// Square matrix padded with dummies: row dummy = insert, col dummy =
	// delete. Matching two real tuples costs their attribute distance, which
	// never exceeds arity, so real-real matches are never worse than
	// delete+insert.
	n := na
	if nb > n {
		n = nb
	}
	cost := make([][]int, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]int, n)
		for j := 0; j < n; j++ {
			switch {
			case i < na && j < nb:
				cost[i][j] = a.Tuples[restA[i]].DiffCount(b.Tuples[restB[j]])
			case i < na: // real row, dummy column: delete
				cost[i][j] = arity
			case j < nb: // dummy row, real column: insert
				cost[i][j] = arity
			default:
				cost[i][j] = 0
			}
		}
	}
	assign, total := hungarian(cost)
	for i := 0; i < n; i++ {
		j := assign[i]
		switch {
		case i < na && j < nb:
			pairs = append(pairs, pair{restA[i], restB[j]})
		case i < na:
			pairs = append(pairs, pair{restA[i], -1})
		case j < nb:
			pairs = append(pairs, pair{-1, restB[j]})
		}
	}
	return pairs, total
}

// DatabaseEdit sums MinEdit over the tables of two databases with identical
// schemas, the paper's minEdit(D, D′). Tables present in only one database
// are not supported (QFE only modifies attribute values).
type TablePair struct {
	Name string
	A, B *relation.Relation
}

// MinEditTables sums minEdit over the given table pairs.
func MinEditTables(pairs []TablePair) int {
	total := 0
	for _, p := range pairs {
		total += MinEdit(p.A, p.B)
	}
	return total
}

// FormatScript renders an edit script with the relation's column names, for
// the Δ(D,Ri) presentation of the Result Feedback module.
func FormatScript(rel *relation.Relation, ops []Op) string {
	var b strings.Builder
	for _, op := range ops {
		switch op.Kind {
		case OpModify:
			fmt.Fprintf(&b, "  ~ %s[%d].%s: %s -> %s\n",
				rel.Name, op.RowA, rel.Schema[op.Col].Name, op.From, op.To)
		case OpDelete:
			fmt.Fprintf(&b, "  - %s[%d]: %s\n", rel.Name, op.RowA, rel.Tuples[op.RowA])
		case OpInsert:
			fmt.Fprintf(&b, "  + %s: (new tuple)\n", rel.Name)
		}
	}
	return b.String()
}
