package editdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qfe/internal/relation"
)

func rel(vals ...[]int) *relation.Relation {
	arity := 0
	if len(vals) > 0 {
		arity = len(vals[0])
	}
	schema := make(relation.Schema, arity)
	for i := range schema {
		schema[i] = relation.Column{Name: string(rune('a' + i)), Type: relation.KindInt}
	}
	r := relation.New("T", schema)
	for _, row := range vals {
		t := make(relation.Tuple, arity)
		for i, v := range row {
			t[i] = relation.Int(int64(v))
		}
		r.Append(t)
	}
	return r
}

func TestMinEditIdentity(t *testing.T) {
	a := rel([]int{1, 2}, []int{3, 4})
	if d := MinEdit(a, a.Clone()); d != 0 {
		t.Errorf("identical relations: %d, want 0", d)
	}
}

func TestMinEditSingleModification(t *testing.T) {
	a := rel([]int{1, 2}, []int{3, 4})
	b := rel([]int{1, 2}, []int{3, 5})
	if d := MinEdit(a, b); d != 1 {
		t.Errorf("single cell change: %d, want 1", d)
	}
}

func TestMinEditInsertDeleteCostArity(t *testing.T) {
	a := rel([]int{1, 2, 3})
	b := rel([]int{1, 2, 3}, []int{4, 5, 6})
	if d := MinEdit(a, b); d != 3 {
		t.Errorf("insert: %d, want arity 3", d)
	}
	if d := MinEdit(b, a); d != 3 {
		t.Errorf("delete: %d, want arity 3", d)
	}
	empty := rel()
	empty.Schema = a.Schema
	if d := MinEdit(a, empty); d != 3 {
		t.Errorf("delete all: %d, want 3", d)
	}
}

func TestMinEditPrefersModifyOverDeleteInsert(t *testing.T) {
	// One attribute differs: modify (1) beats delete+insert (4).
	a := rel([]int{1, 2})
	b := rel([]int{1, 9})
	if d := MinEdit(a, b); d != 1 {
		t.Errorf("got %d, want 1", d)
	}
	// All attributes differ: modify cost = arity = delete cost alone; still 2.
	c := rel([]int{7, 8})
	if d := MinEdit(a, c); d != 2 {
		t.Errorf("got %d, want 2", d)
	}
}

func TestMinEditOptimalAssignment(t *testing.T) {
	// Greedy row-order matching would pair (1,1)->(1,9) at cost 1 then
	// (2,9)->(2,1) at cost 1: total 2. Optimal is also 2 here; build a case
	// where naive pairing is suboptimal:
	// A: (0,0), (5,5)   B: (5,6), (0,1)
	// In-order matching: (0,0)->(5,6)=2, (5,5)->(0,1)=2: total 4.
	// Optimal: (0,0)->(0,1)=1, (5,5)->(5,6)=1: total 2.
	a := rel([]int{0, 0}, []int{5, 5})
	b := rel([]int{5, 6}, []int{0, 1})
	if d := MinEdit(a, b); d != 2 {
		t.Errorf("got %d, want 2 (optimal assignment)", d)
	}
}

func TestMinEditMultisetAware(t *testing.T) {
	// Duplicate tuples must match one-to-one.
	a := rel([]int{1}, []int{1})
	b := rel([]int{1}, []int{2})
	if d := MinEdit(a, b); d != 1 {
		t.Errorf("got %d, want 1", d)
	}
	b2 := rel([]int{1}, []int{1}, []int{1})
	if d := MinEdit(a, b2); d != 1 {
		t.Errorf("got %d, want 1 (one insert of arity-1 tuple)", d)
	}
}

func TestScriptReconstructsTarget(t *testing.T) {
	a := rel([]int{1, 2}, []int{3, 4}, []int{5, 6})
	b := rel([]int{1, 9}, []int{5, 6}, []int{7, 8}, []int{0, 0})
	ops, cost := Script(a, b)
	// Verify cost equals sum of op costs and MinEdit.
	sum := 0
	for _, op := range ops {
		sum += op.Cost
	}
	if sum != cost {
		t.Errorf("op cost sum %d != script cost %d", sum, cost)
	}
	if cost != MinEdit(a, b) {
		t.Errorf("script cost %d != MinEdit %d", cost, MinEdit(a, b))
	}
	// Replay the script: modified+kept rows of a plus inserts = bag(b).
	out := relation.New("out", a.Schema)
	handled := make(map[int]bool)
	for _, op := range ops {
		if op.Kind == OpDelete {
			handled[op.RowA] = true
		}
	}
	modified := make(map[int]relation.Tuple)
	for i, tup := range a.Tuples {
		if !handled[i] {
			modified[i] = tup.Clone()
		}
	}
	for _, op := range ops {
		if op.Kind == OpModify {
			modified[op.RowA][op.Col] = op.To
		}
	}
	for _, tup := range modified {
		out.Append(tup)
	}
	for _, op := range ops {
		if op.Kind == OpInsert {
			out.Append(b.Tuples[op.RowB].Clone())
		}
	}
	if !out.BagEqual(b) {
		t.Errorf("script replay mismatch:\ngot %v\nwant %v", out.Tuples, b.Tuples)
	}
}

func TestMinEditSymmetryQuick(t *testing.T) {
	// Modify is symmetric and insert/delete have equal cost, so minEdit is
	// symmetric.
	f := func(av, bv []uint8) bool {
		a, b := rel(), rel()
		schema := relation.NewSchema("a", relation.KindInt, "b", relation.KindInt)
		a.Schema, b.Schema = schema, schema
		for _, v := range av {
			a.Append(relation.NewTuple(int(v%4), int(v/4%4)))
		}
		for _, v := range bv {
			b.Append(relation.NewTuple(int(v%4), int(v/4%4)))
		}
		if a.Len() > 6 || b.Len() > 6 {
			return true // keep Hungarian small in the property test
		}
		return MinEdit(a, b) == MinEdit(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMinEditTriangleInequalityQuick(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	mk := func(n int) *relation.Relation {
		r := rel()
		r.Schema = relation.NewSchema("a", relation.KindInt, "b", relation.KindInt)
		for i := 0; i < n; i++ {
			r.Append(relation.NewTuple(rnd.Intn(3), rnd.Intn(3)))
		}
		return r
	}
	for trial := 0; trial < 100; trial++ {
		a, b, c := mk(rnd.Intn(5)), mk(rnd.Intn(5)), mk(rnd.Intn(5))
		ab, bc, ac := MinEdit(a, b), MinEdit(b, c), MinEdit(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d", ac, ab, bc)
		}
	}
}

func TestMinEditBruteForceSmall(t *testing.T) {
	// Cross-check the Hungarian solution against brute-force assignment on
	// all 3x3 permutations.
	rnd := rand.New(rand.NewSource(11))
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for trial := 0; trial < 200; trial++ {
		a, b := rel(), rel()
		schema := relation.NewSchema("a", relation.KindInt, "b", relation.KindInt, "c", relation.KindInt)
		a.Schema, b.Schema = schema, schema
		for i := 0; i < 3; i++ {
			a.Append(relation.NewTuple(rnd.Intn(3), rnd.Intn(3), rnd.Intn(3)))
			b.Append(relation.NewTuple(rnd.Intn(3), rnd.Intn(3), rnd.Intn(3)))
		}
		best := 1 << 30
		for _, p := range perms {
			c := 0
			for i, j := range p {
				c += a.Tuples[i].DiffCount(b.Tuples[j])
			}
			if c < best {
				best = c
			}
		}
		if got := MinEdit(a, b); got != best {
			t.Fatalf("trial %d: MinEdit=%d, brute force=%d\na=%v\nb=%v",
				trial, got, best, a.Tuples, b.Tuples)
		}
	}
}

func TestMinEditTables(t *testing.T) {
	a1, b1 := rel([]int{1}), rel([]int{2})
	a2, b2 := rel([]int{1, 2}), rel([]int{1, 2})
	total := MinEditTables([]TablePair{{"t1", a1, b1}, {"t2", a2, b2}})
	if total != 1 {
		t.Errorf("MinEditTables = %d, want 1", total)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	MinEdit(rel([]int{1}), rel([]int{1, 2}))
}

func TestFormatScript(t *testing.T) {
	a := rel([]int{1, 2}, []int{3, 4})
	b := rel([]int{1, 9})
	ops, _ := Script(a, b)
	s := FormatScript(a, ops)
	if s == "" {
		t.Error("FormatScript should render something")
	}
}

func TestHungarianKnownMatrix(t *testing.T) {
	// Classic example with optimum 5: rows to cols 0->1(2), 1->0(3)... use a
	// fixed matrix with known optimal assignment cost.
	cost := [][]int{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	_, total := hungarian(cost)
	if total != 5 {
		t.Errorf("hungarian total = %d, want 5", total)
	}
	if _, total := hungarian(nil); total != 0 {
		t.Error("empty matrix should cost 0")
	}
}
