package evalcache

import (
	"fmt"
	"sync"
	"testing"

	"qfe/internal/relation"
)

func rel(name string, v int64) *relation.Relation {
	r := relation.New(name, relation.NewSchema("a", relation.KindInt))
	r.Append(relation.NewTuple(v))
	return r
}

func TestGetPutHitMiss(t *testing.T) {
	c := New(64)
	k := Key{Query: 1, DB: 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	want := rel("r", 7)
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok || got != want {
		t.Fatalf("Get = (%v, %v), want the stored relation", got, ok)
	}
	if _, ok := c.Get(Key{Query: 1, DB: 3}); ok {
		t.Error("different DB version must miss")
	}
	if _, ok := c.Get(Key{Query: 9, DB: 2}); ok {
		t.Error("different query fingerprint must miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 3 misses / 1 entry", st)
	}
}

func TestGetBatch(t *testing.T) {
	c := New(1024)
	keys := make([]Key, 10)
	for i := range keys {
		keys[i] = Key{Query: uint64(i), DB: uint64(i * 7)}
	}
	// Cache the even keys only.
	for i := 0; i < len(keys); i += 2 {
		c.Put(keys[i], rel(fmt.Sprintf("r%d", i), int64(i)))
	}
	res, hits := c.GetBatch(keys)
	if hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
	for i := range keys {
		if i%2 == 0 {
			if res[i] == nil || res[i].Name != fmt.Sprintf("r%d", i) {
				t.Errorf("key %d: missing or wrong batch hit", i)
			}
		} else if res[i] != nil {
			t.Errorf("key %d: unexpected hit", i)
		}
	}
	// Counters must move exactly as per-key Gets would.
	st := c.Stats()
	if st.Hits != 5 || st.Misses != 5 {
		t.Errorf("stats = %+v, want 5 hits / 5 misses", st)
	}
	// Batch results must agree with per-key Get.
	for i, k := range keys {
		single, ok := c.Get(k)
		if ok != (res[i] != nil) || (ok && single != res[i]) {
			t.Errorf("key %d: GetBatch and Get disagree", i)
		}
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(64)
	k := Key{Query: 1, DB: 1}
	c.Put(k, rel("old", 1))
	fresh := rel("new", 2)
	c.Put(k, fresh)
	if got, _ := c.Get(k); got != fresh {
		t.Errorf("Put on existing key did not replace the value")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestEvictionIsBoundedAndLRU(t *testing.T) {
	// Capacity 1 rounds up to one entry per shard; keys in the same shard
	// therefore evict each other, oldest first.
	c := New(1)
	var a, b Key
	a = Key{Query: 1, DB: 0}
	found := false
	for q := uint64(2); q < 4096; q++ {
		b = Key{Query: q, DB: 0}
		if c.shardFor(a) == c.shardFor(b) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no colliding shard pair found")
	}
	c.Put(a, rel("a", 1))
	c.Put(b, rel("b", 2)) // evicts a (LRU)
	if _, ok := c.Get(a); ok {
		t.Error("a should have been evicted")
	}
	if _, ok := c.Get(b); !ok {
		t.Error("b should survive")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}

	// Recency: with two slots per shard, touching the older entry makes the
	// other one the eviction victim.
	c2 := New(64) // 2 entries per shard
	keys := []Key{}
	for q := uint64(0); len(keys) < 3; q++ {
		k := Key{Query: q, DB: 0}
		if len(keys) == 0 || c2.shardFor(k) == c2.shardFor(keys[0]) {
			keys = append(keys, k)
		}
	}
	c2.Put(keys[0], rel("k0", 0))
	c2.Put(keys[1], rel("k1", 1))
	c2.Get(keys[0])               // promote k0
	c2.Put(keys[2], rel("k2", 2)) // shard full: evicts k1, the LRU
	if _, ok := c2.Get(keys[0]); !ok {
		t.Error("recently used entry must survive eviction")
	}
	if _, ok := c2.Get(keys[1]); ok {
		t.Error("least recently used entry should have been evicted")
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(128)
	for i := 0; i < 10000; i++ {
		c.Put(Key{Query: uint64(i), DB: 1}, rel(fmt.Sprint(i), int64(i)))
	}
	// Per-shard bound: ceil(128/32) = 4 entries across 32 shards.
	if n := c.Len(); n > 128 {
		t.Errorf("Len = %d, want <= 128", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("expected evictions under sustained inserts")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Query: uint64(i % 97), DB: uint64(w % 3)}
				if r, ok := c.Get(k); ok {
					if r == nil {
						t.Error("hit returned nil relation")
						return
					}
					continue
				}
				c.Put(k, rel("r", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	if st.Entries > 256+32 { // per-shard rounding slack
		t.Errorf("entries = %d exceeds bound", st.Entries)
	}
}

// TestGetBatchConcurrentStress hammers GetBatch from many goroutines while
// writers churn the same key space through Put-driven eviction — the shape
// of concurrent winnowing rounds each subtracting cached candidates from a
// shared scan. Every hit must return the exact relation stored for that key
// (names encode keys), pinning that batch lookups never hand out an entry
// mid-eviction or from a neighbouring key. Run under -race in CI.
func TestGetBatchConcurrentStress(t *testing.T) {
	const keySpace = 200
	c := New(64) // small budget: eviction constantly in play
	keyFor := func(i int) Key { return Key{Query: uint64(i), DB: uint64(i * 31)} }
	relFor := func(i int) *relation.Relation { return rel(fmt.Sprintf("k%d", i), int64(i)) }

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ { // writers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := (i*7 + w*13) % keySpace
				c.Put(keyFor(k), relFor(k))
			}
		}(w)
	}
	for w := 0; w < 4; w++ { // batch readers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]Key, 64)
			for i := 0; i < 500; i++ {
				base := (i * 11 * (w + 1)) % keySpace
				for j := range keys {
					keys[j] = keyFor((base + j) % keySpace)
				}
				res, hits := c.GetBatch(keys)
				got := 0
				for j, r := range res {
					if r == nil {
						continue
					}
					got++
					if want := fmt.Sprintf("k%d", (base+j)%keySpace); r.Name != want {
						t.Errorf("batch hit for %s returned %s", want, r.Name)
						return
					}
				}
				if got != hits {
					t.Errorf("GetBatch reported %d hits, returned %d", hits, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default must return the same cache")
	}
}
