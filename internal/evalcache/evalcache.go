// Package evalcache memoises candidate-query evaluations across winnowing
// rounds and across experiment sweeps.
//
// The QFE loop (paper Algorithm 1) re-evaluates every surviving candidate
// query against the session's joined relation at the start of every round,
// and the β-sweep / δ-sweep experiments (Tables 2, 3 and 6) re-run whole
// sessions over the same (D, R, QC) instance with different knob settings.
// All of those evaluations are pure functions of (query, data), so the
// engine keys a result cache by the pair
//
//	(algebra.Query.Fingerprint(), content hash of the evaluated relation)
//
// and skips re-execution on a hit. The cache is sharded to keep lock
// contention negligible when the generator evaluates candidates from many
// goroutines, and size-bounded with per-shard LRU eviction so sweeps over
// thousands of perturbed candidates cannot grow it without bound.
//
// Both halves of the key are (uint64, uint64) words produced by the hash
// kernel: Query.Fingerprint is memoised on the query (computed once per
// query lifetime) and Relation.Hash64 folds per-tuple hashes with zero
// allocations, so cache probes build no strings. Relation hashes involve
// process-local interner ids and are never persisted — a restored session
// recomputes them lazily, so cross-restart hits are not expected (cross-
// session hits within one process are).
//
// Cached relations are shared between callers and MUST be treated as
// immutable; every producer in this repository already returns fresh
// relations from evaluation and never mutates results afterwards.
package evalcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"qfe/internal/relation"
)

// Key identifies one memoised evaluation.
type Key struct {
	// Query is the structural fingerprint of the evaluated query
	// (algebra.Query.Fingerprint()).
	Query uint64
	// DB is the version of the data the query was evaluated against — a
	// content hash of the joined relation (relation.Relation.Hash64), so
	// logically-identical databases hit the same entries even across
	// separately-constructed sessions.
	DB uint64
}

const numShards = 32

// shard is one lock domain: a map for O(1) lookup plus an LRU list for
// bounded eviction.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     list.List // front = most recently used; values are *entry
	weight  int       // sum of entry weights currently held
}

type entry struct {
	key    Key
	res    *relation.Relation
	weight int
}

// entryWeight charges an entry by its tuple count so large results (the
// baseball joins, the enlarged Table 5 scenarios) consume proportionally
// more of the capacity than empty or single-tuple ones — the bound tracks
// memory, not entry count. Every entry costs at least 1.
func entryWeight(res *relation.Relation) int {
	if res == nil || len(res.Tuples) == 0 {
		return 1
	}
	return len(res.Tuples)
}

// Cache is a sharded, size-bounded evaluation cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	shards      [numShards]shard
	maxPerShard int // per-shard weight budget (tuple-weighted)

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// New creates a cache bounded to roughly capacity tuple-weights: each entry
// charges max(1, number of tuples) against the budget, so the bound tracks
// memory rather than entry count. The budget is enforced per shard (rounded
// up to a multiple of the shard count), and a single entry larger than a
// whole shard's budget is still admitted — alone — so huge results keep
// their round-over-round reuse. capacity <= 0 selects the default of 4096.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{maxPerShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
	}
	return c
}

var (
	defaultOnce  sync.Once
	defaultCache *Cache
)

// Default returns the process-wide shared cache used by the default dbgen
// and qbo configurations. Sharing one cache is what makes results flow
// between the candidate generator, the per-round evaluations of a session,
// and repeated sessions of a parameter sweep.
func Default() *Cache {
	defaultOnce.Do(func() { defaultCache = New(1 << 14) })
	return defaultCache
}

func shardIndex(k Key) uint64 {
	// Mix both halves of the key; fingerprints are already well-mixed FNV
	// hashes, so a xor-fold suffices for shard selection.
	h := k.Query ^ (k.DB * 0x9e3779b97f4a7c15)
	return h % numShards
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[shardIndex(k)]
}

// Get returns the cached result for k, if present, promoting it to most
// recently used. The returned relation must not be mutated.
func (c *Cache) Get(k Key) (*relation.Relation, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.lru.MoveToFront(el)
		res := el.Value.(*entry).res
		s.mu.Unlock()
		c.hits.Add(1)
		return res, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// GetBatch looks up many keys in one call, taking each shard's lock at most
// once per batch instead of once per key. res[i] is nil for a miss; hits is
// the number of non-nil entries. Hit/miss counters and LRU recency update
// exactly as per-key Get calls would (within one shard, promotions happen in
// key order). It is how the batch evaluator subtracts cached candidates from
// a round's shared scan before it runs.
func (c *Cache) GetBatch(keys []Key) (res []*relation.Relation, hits int) {
	res = make([]*relation.Relation, len(keys))
	shardOf := make([]uint8, len(keys))
	var touched [numShards]bool
	for i, k := range keys {
		si := shardIndex(k)
		shardOf[i] = uint8(si)
		touched[si] = true
	}
	for si := range c.shards {
		if !touched[si] {
			continue
		}
		s := &c.shards[si]
		s.mu.Lock()
		for i, k := range keys {
			if shardOf[i] != uint8(si) {
				continue
			}
			if el, ok := s.entries[k]; ok {
				s.lru.MoveToFront(el)
				res[i] = el.Value.(*entry).res
				hits++
			}
		}
		s.mu.Unlock()
	}
	c.hits.Add(uint64(hits))
	c.misses.Add(uint64(len(keys) - hits))
	return res, hits
}

// Put stores the result for k, evicting least-recently-used entries until
// the shard's weight budget holds (the newest entry itself is never
// evicted). Storing an existing key refreshes its value and recency.
func (c *Cache) Put(k Key, res *relation.Relation) {
	w := entryWeight(res)
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		e := el.Value.(*entry)
		s.weight += w - e.weight
		e.res, e.weight = res, w
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(&entry{key: k, res: res, weight: w})
		s.weight += w
	}
	for s.weight > c.maxPerShard && s.lru.Len() > 1 {
		oldest := s.lru.Back()
		e := oldest.Value.(*entry)
		s.lru.Remove(oldest)
		delete(s.entries, e.key)
		s.weight -= e.weight
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of cache effectiveness counters. The
// json tags match the qfe-server /stats payload.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
