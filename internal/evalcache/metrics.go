package evalcache

import "qfe/internal/obs"

// The cache already keeps its own atomic counters for /stats, so its
// metrics are scrape-time readers over the Default cache — the Get/Put hot
// path is not touched at all. The hit ratio is derived by the scraper
// (hits / (hits + misses)), per Prometheus convention.
func init() {
	obs.NewCounterFunc("qfe_evalcache_hits_total",
		"Evaluation-cache hits on the process-wide cache.",
		func() uint64 { return Default().hits.Load() })
	obs.NewCounterFunc("qfe_evalcache_misses_total",
		"Evaluation-cache misses on the process-wide cache.",
		func() uint64 { return Default().misses.Load() })
	obs.NewCounterFunc("qfe_evalcache_evictions_total",
		"Evaluation-cache LRU evictions on the process-wide cache.",
		func() uint64 { return Default().evictions.Load() })
	obs.NewGaugeFunc("qfe_evalcache_entries",
		"Entries currently held by the process-wide evaluation cache.",
		func() float64 { return float64(Default().Len()) })
}
