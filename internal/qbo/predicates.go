package qbo

import (
	"math"
	"math/bits"
	"sort"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// rowClass classifies the joined tuples against R for one projection
// mapping: required rows must be selected (their projected value's full
// multiplicity is needed), excluded rows must not be, and optional rows may
// go either way (their projected value has surplus multiplicity in the
// join). Final verification resolves the optional rows.
type rowClass struct {
	required []int
	excluded []int
	optional []int
	feasible bool
}

func classifyRows(j *db.Joined, proj []string, r *relation.Relation) rowClass {
	idx := make([]int, len(proj))
	for i, p := range proj {
		idx[i] = j.Rel.Schema.MustIndexOf(p)
	}
	need := r.Bag()
	have := relation.NewBag(len(j.Rel.Tuples))
	for _, t := range j.Rel.Tuples {
		have.IncProj(t, idx, 1)
	}
	short := false
	need.ForEach(func(t relation.Tuple, n int) {
		if have.Count(t) < n {
			short = true
		}
	})
	if short {
		return rowClass{feasible: false}
	}
	var rc rowClass
	rc.feasible = true
	for ri, t := range j.Rel.Tuples {
		n := need.CountProj(t, idx)
		switch {
		case n == 0:
			rc.excluded = append(rc.excluded, ri)
		case n == have.CountProj(t, idx):
			rc.required = append(rc.required, ri)
		default:
			rc.optional = append(rc.optional, ri)
		}
	}
	return rc
}

// generateForJoin synthesizes predicates for one (join, projection) pair.
func (g *generator) generateForJoin(j *db.Joined, tables []string, proj []string) {
	rc := classifyRows(j, proj, g.r)
	if !rc.feasible {
		return
	}
	// No exclusions needed: projection alone may already work.
	if len(rc.excluded) == 0 {
		g.emit(j, tables, proj, algebra.True())
	}
	if len(rc.required) == 0 {
		// Every result tuple has surplus multiplicity in the join, so no
		// row is individually forced. Anchor the covering-term machinery on
		// a greedy system of distinct rows realising R; the exact-bag
		// verification in emit keeps this safe.
		rc.required = greedyAnchors(j, proj, g.r, rc.optional)
		if len(rc.required) == 0 {
			return
		}
	}

	vrf := g.newVerifier(j, tables, proj, rc)
	pools := g.coveringTermPools(j, rc.required)
	attrs := make([]string, 0, len(pools))
	for a := range pools {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	// Single-attribute conjuncts (including two-term ranges).
	// Precompute, per single term, the bitmap of excluded rows the term
	// still admits; a conjunct separates exactly when the intersection of
	// its units' bitmaps is empty. Range units (lo ∧ hi on one attribute)
	// derive their masks by ANDing the single-term masks, avoiding any
	// further row scans.
	words := (len(rc.excluded) + 63) / 64
	var units [][]algebra.Term // each unit: 1..MaxTermsPerAttr terms on one attribute
	unitAttr := []string{}
	var unitMasks [][]uint64
	for _, a := range attrs {
		pool := pools[a]
		masks := make([][]uint64, len(pool))
		for pi, t := range pool {
			mask := make([]uint64, words)
			match := algebra.Predicate{algebra.Conjunct{t}}.Compile(j.Rel.Schema)
			for ei, ri := range rc.excluded {
				if match(j.Rel.Tuples[ri]) {
					mask[ei/64] |= 1 << (ei % 64)
				}
			}
			masks[pi] = mask
			units = append(units, []algebra.Term{t})
			unitAttr = append(unitAttr, a)
			unitMasks = append(unitMasks, mask)
		}
		if g.cfg.MaxTermsPerAttr >= 2 {
			// Range conjunctions: pair a lower bound with an upper bound.
			for li, lo := range pool {
				if lo.Op != algebra.OpGT && lo.Op != algebra.OpGE {
					continue
				}
				for hi2, hi := range pool {
					if hi.Op != algebra.OpLT && hi.Op != algebra.OpLE {
						continue
					}
					mask := make([]uint64, words)
					for w := range mask {
						mask[w] = masks[li][w] & masks[hi2][w]
					}
					units = append(units, []algebra.Term{lo, hi})
					unitAttr = append(unitAttr, a)
					unitMasks = append(unitMasks, mask)
				}
			}
		}
	}
	// Strongest exclusion first: units admitting fewer excluded rows lead
	// to separating conjuncts at shallower depths, which matters because
	// the search is node-budgeted.
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	pop := func(mask []uint64) int {
		n := 0
		for _, w := range mask {
			n += bits.OnesCount64(w)
		}
		return n
	}
	popCache := make([]int, len(units))
	for i := range units {
		popCache[i] = pop(unitMasks[i])
	}
	sort.SliceStable(order, func(a, b int) bool { return popCache[order[a]] < popCache[order[b]] })
	reorderedUnits := make([][]algebra.Term, len(units))
	reorderedAttrs := make([]string, len(units))
	reorderedMasks := make([][]uint64, len(units))
	for i, o := range order {
		reorderedUnits[i] = units[o]
		reorderedAttrs[i] = unitAttr[o]
		reorderedMasks[i] = unitMasks[o]
	}
	units, unitAttr, unitMasks = reorderedUnits, reorderedAttrs, reorderedMasks
	empty := func(mask []uint64) bool {
		for _, w := range mask {
			if w != 0 {
				return false
			}
		}
		return true
	}

	// Combine units from distinct attributes, growing conjuncts until they
	// exclude every excluded row; emit all verified combinations up to the
	// attribute budget.
	full := make([]uint64, words)
	for i := range full {
		full[i] = ^uint64(0)
	}
	if bits := len(rc.excluded) % 64; bits != 0 && words > 0 {
		full[words-1] = (1 << bits) - 1
	}
	nodes := 0
	maxNodes := g.cfg.MaxGrowNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	// One scratch mask per recursion depth: the search explores one branch
	// at a time, so depth-indexed buffers avoid per-node allocation.
	scratch := make([][]uint64, g.cfg.MaxPredAttrs+1)
	for i := range scratch {
		scratch[i] = make([]uint64, words)
	}
	var grow func(start int, conj []algebra.Term, admit []uint64, used map[string]bool, depth int)
	grow = func(start int, conj []algebra.Term, admit []uint64, used map[string]bool, depth int) {
		if g.full() {
			return
		}
		nodes++
		if nodes > maxNodes {
			return
		}
		if len(conj) > 0 && empty(admit) {
			g.emitVerified(vrf, algebra.Predicate{append([]algebra.Term(nil), conj...)})
			// Deeper conjunctions of a separating conjunct stay separating
			// but only add redundancy; stop this branch.
			return
		}
		if depth >= g.cfg.MaxPredAttrs {
			return
		}
		next := scratch[depth]
		for u := start; u < len(units); u++ {
			if used[unitAttr[u]] {
				continue
			}
			narrowed := false
			for w := range next {
				next[w] = admit[w] & unitMasks[u][w]
				if next[w] != admit[w] {
					narrowed = true
				}
			}
			if len(conj) > 0 && !narrowed {
				continue // the unit adds nothing on the excluded rows
			}
			used[unitAttr[u]] = true
			grow(u+1, append(conj, units[u]...), next, used, depth+1)
			used[unitAttr[u]] = false
		}
	}
	grow(0, nil, full, map[string]bool{}, 0)

	// DNF by categorical clustering: split the required rows by the value
	// of one categorical attribute and synthesize a conjunct per cluster.
	g.generateClusterDNF(j, tables, proj, rc)
}

// greedyAnchors picks, from the optional rows, one row per needed result
// tuple (respecting multiplicities) to serve as the anchor set when nothing
// is strictly required.
func greedyAnchors(j *db.Joined, proj []string, r *relation.Relation, optional []int) []int {
	idx := make([]int, len(proj))
	for i, p := range proj {
		idx[i] = j.Rel.Schema.MustIndexOf(p)
	}
	need := r.Bag()
	var anchors []int
	for _, ri := range optional {
		t := j.Rel.Tuples[ri]
		if need.CountProj(t, idx) > 0 {
			need.IncProj(t, idx, -1)
			anchors = append(anchors, ri)
		}
	}
	return anchors
}

// coveringTermPools builds, per attribute, terms satisfied by every required
// row (candidates for conjunct membership).
func (g *generator) coveringTermPools(j *db.Joined, required []int) map[string][]algebra.Term {
	pools := make(map[string][]algebra.Term)
	for ci, col := range j.Rel.Schema {
		var pool []algebra.Term
		switch {
		case col.Type.Numeric():
			pool = g.numericCoveringTerms(j, ci, col.Name, required)
		case col.Type == relation.KindString || col.Type == relation.KindBool:
			pool = g.categoricalCoveringTerms(j, ci, col.Name, required)
		}
		if len(pool) > g.cfg.MaxTermsPerAttrPool {
			pool = pool[:g.cfg.MaxTermsPerAttrPool]
		}
		if len(pool) > 0 {
			pools[col.Name] = pool
		}
	}
	return pools
}

// numericCoveringTerms proposes bounds that hold for all required rows,
// anchored at data values: A ≥ min, A ≤ max, and strict versions at the
// nearest outside values (which is where real queries put constants, cf.
// the paper's Q3: year > 1982 AND year <= 1987).
func (g *generator) numericCoveringTerms(j *db.Joined, ci int, attr string, required []int) []algebra.Term {
	if len(required) == 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ri := range required {
		v := j.Rel.Tuples[ri][ci]
		if !v.Kind.Numeric() {
			return nil
		}
		f := v.AsFloat()
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	// Nearest values outside [lo, hi] in the full column, to anchor strict
	// bounds.
	below, above := math.Inf(-1), math.Inf(1)
	all := true
	for _, t := range j.Rel.Tuples {
		v := t[ci]
		if !v.Kind.Numeric() {
			continue
		}
		f := v.AsFloat()
		if f < lo && f > below {
			below = f
		}
		if f > hi && f < above {
			above = f
		}
		if f < lo || f > hi {
			all = false
		}
	}
	if all {
		return nil // attribute cannot separate anything
	}
	kind := j.Rel.Schema[ci].Type
	mk := func(f float64) relation.Value {
		if kind == relation.KindInt && f == math.Trunc(f) {
			return relation.Int(int64(f))
		}
		return relation.Float(f)
	}
	var pool []algebra.Term
	pool = append(pool, algebra.NewTerm(attr, algebra.OpGE, mk(lo)))
	if !math.IsInf(below, -1) {
		pool = append(pool, algebra.NewTerm(attr, algebra.OpGT, mk(below)))
	}
	pool = append(pool, algebra.NewTerm(attr, algebra.OpLE, mk(hi)))
	if !math.IsInf(above, 1) {
		pool = append(pool, algebra.NewTerm(attr, algebra.OpLT, mk(above)))
	}
	return pool
}

// categoricalCoveringTerms proposes equality / IN terms over the required
// rows' value set.
func (g *generator) categoricalCoveringTerms(j *db.Joined, ci int, attr string, required []int) []algebra.Term {
	vals := map[string]relation.Value{}
	for _, ri := range required {
		v := j.Rel.Tuples[ri][ci]
		vals[v.Key()] = v
	}
	if len(vals) == 0 {
		return nil
	}
	// If the required set covers the whole active domain the attribute
	// cannot separate.
	dom := map[string]bool{}
	for _, t := range j.Rel.Tuples {
		dom[t[ci].Key()] = true
	}
	if len(vals) == len(dom) {
		return nil
	}
	set := make([]relation.Value, 0, len(vals))
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		set = append(set, vals[k])
	}
	if len(set) == 1 {
		return []algebra.Term{algebra.NewTerm(attr, algebra.OpEQ, set[0])}
	}
	return []algebra.Term{algebra.NewSetTerm(attr, algebra.OpIn, set)}
}

// excludesAll reports whether the conjunct rejects every excluded row.
func (g *generator) excludesAll(j *db.Joined, conj []algebra.Term, excluded []int) bool {
	match := algebra.Predicate{algebra.Conjunct(conj)}.Compile(j.Rel.Schema)
	for _, ri := range excluded {
		if match(j.Rel.Tuples[ri]) {
			return false
		}
	}
	return true
}

// generateClusterDNF builds disjunctive candidates: the result-producing
// rows are clustered by the value of one categorical attribute; each cluster
// yields an equality-anchored conjunct, refined with up to two covering
// terms when the equality alone admits excluded rows. When the initial
// clusters (from the required rows) under-cover R — common when projected
// values collide and most result rows are "optional" — a residual-repair
// loop adds clusters for the optional rows that supply the missing result
// tuples. This produces queries like the paper's Q4 (a disjunction of
// playerID equalities) and Q5/Q6 (an equality plus numeric bounds).
func (g *generator) generateClusterDNF(j *db.Joined, tables, proj []string, rc rowClass) {
	excl := make(map[int]bool, len(rc.excluded))
	for _, ri := range rc.excluded {
		excl[ri] = true
	}
	projIdx := make([]int, len(proj))
	for i, p := range proj {
		projIdx[i] = j.Rel.Schema.MustIndexOf(p)
	}
	need := g.r.Bag()

	for ci, col := range j.Rel.Schema {
		if col.Type != relation.KindString {
			continue
		}
		if g.full() {
			return
		}
		// Initial cluster values: the required rows' values.
		var values []relation.Value
		haveVal := map[string]bool{}
		for _, ri := range rc.required {
			v := j.Rel.Tuples[ri][ci]
			if !haveVal[v.Key()] {
				haveVal[v.Key()] = true
				values = append(values, v)
			}
		}
		if len(values) == 0 || len(values) > g.cfg.MaxDisjuncts {
			continue
		}
		// Row index by cluster value: every row a cluster predicate can
		// select carries one of the cluster values, so scans below touch
		// only these rows instead of the whole join.
		rowsByVal := map[string][]int{}
		for ri, t := range j.Rel.Tuples {
			k := t[ci].Key()
			rowsByVal[k] = append(rowsByVal[k], ri)
		}
		conjCache := map[string]algebra.Conjunct{}

		for round := 0; round < 4; round++ {
			pred, ok := g.buildClusterPredicate(j, ci, values, excl, rowsByVal, conjCache)
			if !ok {
				break
			}
			// Project the selected rows and compare against R. Multiplicity
			// counting goes through the hash kernel — no projected-key
			// strings inside the per-round row scan.
			match := pred.Compile(j.Rel.Schema)
			got := relation.NewBag(need.Distinct())
			for _, v := range values {
				for _, ri := range rowsByVal[v.Key()] {
					if excl[ri] {
						continue
					}
					if t := j.Rel.Tuples[ri]; match(t) {
						got.IncProj(t, projIdx, 1)
					}
				}
			}
			overshoot, missing := false, false
			got.ForEach(func(t relation.Tuple, n int) {
				if n > need.Count(t) {
					overshoot = true
				}
			})
			missingSet := relation.NewBag(0)
			if !overshoot {
				need.ForEach(func(t relation.Tuple, n int) {
					if got.Count(t) < n {
						missingSet.Inc(t, 1)
						missing = true
					}
				})
			}
			if overshoot {
				break // repair can only add rows, never remove
			}
			if !missing {
				// got == need exactly and the cluster builder already
				// rejected every excluded row: the query is verified.
				g.emitTrusted(tables, proj, pred)
				// Enrich QC with variants that tighten one cluster by a
				// covering term: they select the same rows on D (covering
				// terms hold on every selected row) but behave differently
				// on modified databases, giving QFE something to winnow.
				for vi, v := range values {
					if g.full() {
						break
					}
					var rows []int
					for _, ri := range rowsByVal[v.Key()] {
						if !excl[ri] {
							rows = append(rows, ri)
						}
					}
					refs := g.clusterRefinements(j, rows)
					for k, extra := range refs {
						if k >= 3 {
							break
						}
						variant := make(algebra.Predicate, len(pred))
						for pi, conj := range pred {
							variant[pi] = append(algebra.Conjunct(nil), conj...)
						}
						variant[vi] = append(variant[vi], extra)
						g.emitTrusted(tables, proj, variant)
					}
				}
				break
			}
			// Repair: adopt cluster values of non-excluded rows that supply
			// missing result tuples. When several values can supply the
			// same missing tuple (projected-value collisions), prefer the
			// value whose cluster contains the fewest excluded rows —
			// "clean" clusters cannot cause overshoot in later rounds.
			badCount := map[string]int{}
			for ri, t := range j.Rel.Tuples {
				if excl[ri] {
					badCount[t[ci].Key()]++
				}
			}
			bestFor := map[string]relation.Value{}
			for ri, t := range j.Rel.Tuples {
				if excl[ri] {
					continue
				}
				// Cheap hashed membership test first; the canonical key
				// string is built only for the (rare) rows that actually
				// supply a missing result tuple.
				if missingSet.CountProj(t, projIdx) == 0 {
					continue
				}
				k := t.Project(projIdx).Key()
				v := t[ci]
				if haveVal[v.Key()] {
					continue
				}
				cur, ok := bestFor[k]
				if !ok || badCount[v.Key()] < badCount[cur.Key()] ||
					(badCount[v.Key()] == badCount[cur.Key()] && v.Key() < cur.Key()) {
					bestFor[k] = v
				}
			}
			keys := make([]string, 0, len(bestFor))
			for k := range bestFor {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			added := false
			for _, k := range keys {
				v := bestFor[k]
				if haveVal[v.Key()] {
					continue
				}
				if len(values) >= g.cfg.MaxDisjuncts {
					break
				}
				haveVal[v.Key()] = true
				values = append(values, v)
				added = true
			}
			if !added {
				break
			}
		}
	}
}

// buildClusterPredicate assembles one DNF: per cluster value an equality
// conjunct, refined with up to two covering terms (over the cluster's
// non-excluded rows) until the conjunct rejects every excluded row of the
// cluster.
func (g *generator) buildClusterPredicate(j *db.Joined, ci int,
	values []relation.Value, excl map[int]bool, rowsByVal map[string][]int,
	conjCache map[string]algebra.Conjunct) (algebra.Predicate, bool) {
	attr := j.Rel.Schema[ci].Name
	var pred algebra.Predicate
	for _, v := range values {
		if cached, ok := conjCache[v.Key()]; ok {
			pred = append(pred, cached)
			continue
		}
		var good, bad []int
		for _, ri := range rowsByVal[v.Key()] {
			if excl[ri] {
				bad = append(bad, ri)
			} else {
				good = append(good, ri)
			}
		}
		if len(good) == 0 {
			return nil, false
		}
		conj := algebra.Conjunct{algebra.NewTerm(attr, algebra.OpEQ, v)}
		if len(bad) > 0 {
			refs := g.clusterRefinements(j, good)
			refined := false
			for _, t1 := range refs {
				cand := append(append(algebra.Conjunct{}, conj...), t1)
				if g.excludesAll(j, cand, bad) {
					conj, refined = cand, true
					break
				}
			}
			if !refined {
				// Pairs of covering terms from different attributes.
			pairSearch:
				for a := 0; a < len(refs) && !refined; a++ {
					for b := a + 1; b < len(refs); b++ {
						if refs[a].Attr == refs[b].Attr &&
							refs[a].Op == refs[b].Op {
							continue
						}
						cand := append(append(algebra.Conjunct{}, conj...), refs[a], refs[b])
						if g.excludesAll(j, cand, bad) {
							conj, refined = cand, true
							break pairSearch
						}
					}
				}
			}
			if !refined {
				return nil, false
			}
		}
		conjCache[v.Key()] = conj
		pred = append(pred, conj)
	}
	return pred, true
}

// clusterRefinements proposes single covering terms for a row cluster, in a
// deterministic order.
func (g *generator) clusterRefinements(j *db.Joined, rows []int) []algebra.Term {
	pools := g.coveringTermPools(j, rows)
	attrs := make([]string, 0, len(pools))
	for a := range pools {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var out []algebra.Term
	for _, a := range attrs {
		out = append(out, pools[a]...)
	}
	return out
}
