// Package qbo reverse-engineers candidate SPJ queries from a database-result
// pair (D, R), playing the role of the paper's Query Generator module (§4),
// which adopts the QBO approach of Tran et al. [21]. Given (D, R) it
// produces queries Q with Q(D) = R exactly (bag semantics), of the form
// π_ℓ(σ_p(J)) with p in DNF.
//
// The generator enumerates (a) join schemas — connected-by-foreign-key
// subsets of the tables, (b) projection mappings from R's columns onto the
// joined schema, and (c) selection predicates built from covering terms
// (terms satisfied by every tuple that must appear in the result) combined
// conjunctively across attributes and disjunctively across categorical
// clusters. Every emitted query is verified by evaluation, so configuration
// knobs only control the search budget, never correctness.
package qbo

import (
	"fmt"
	"sort"
	"strings"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/evalcache"
	"qfe/internal/relation"
)

// Config bounds the candidate search, mirroring QBO's knobs: "the maximum
// number of selection-predicate attributes, the maximum number of joined
// relations, the maximum number of selection predicates in each conjunct,
// etc." (§4).
type Config struct {
	// MaxJoinTables caps the join schema size (0 = all tables allowed).
	MaxJoinTables int
	// MaxPredAttrs caps the number of distinct attributes per conjunct.
	MaxPredAttrs int
	// MaxTermsPerAttr caps terms on one attribute in a conjunct (2 allows
	// ranges lo < A ≤ hi).
	MaxTermsPerAttr int
	// MaxDisjuncts caps the DNF width explored by categorical clustering.
	MaxDisjuncts int
	// MaxCandidates stops the search once this many verified candidates
	// exist (0 = unlimited).
	MaxCandidates int
	// MaxTermsPerAttrPool caps the covering terms generated per attribute.
	MaxTermsPerAttrPool int
	// MaxProjectionMappings caps the projection mappings tried per join.
	MaxProjectionMappings int
	// MaxGrowNodes budgets the conjunction-combination search per
	// (join, projection) pair (0 = 100000).
	MaxGrowNodes int
	// Cache, when non-nil, memoises full candidate evaluations keyed by
	// (query fingerprint, joined-relation content hash). Repeated Generate
	// calls over the same (D, R) — e.g. the β/δ sweeps re-deriving the same
	// scenario — then verify recurring candidates without re-executing them.
	Cache *evalcache.Cache
}

// DefaultConfig returns a budget that yields candidate sets of the paper's
// magnitude (≈ 19 for the scientific queries).
func DefaultConfig() Config {
	return Config{
		MaxJoinTables:         0,
		MaxPredAttrs:          3,
		MaxTermsPerAttr:       2,
		MaxDisjuncts:          4,
		MaxCandidates:         64,
		MaxTermsPerAttrPool:   4,
		MaxProjectionMappings: 3,
		Cache:                 evalcache.Default(),
	}
}

// Generate produces verified candidate queries for (d, R). Candidates are
// deduplicated by fingerprint and returned in deterministic order, named
// C1, C2, ....
func Generate(d *db.Database, r *relation.Relation, cfg Config) ([]*algebra.Query, error) {
	if cfg.MaxPredAttrs <= 0 {
		cfg.MaxPredAttrs = 3
	}
	if cfg.MaxTermsPerAttr <= 0 {
		cfg.MaxTermsPerAttr = 2
	}
	if cfg.MaxDisjuncts <= 0 {
		cfg.MaxDisjuncts = 4
	}
	if cfg.MaxTermsPerAttrPool <= 0 {
		cfg.MaxTermsPerAttrPool = 4
	}
	if cfg.MaxProjectionMappings <= 0 {
		cfg.MaxProjectionMappings = 3
	}

	g := &generator{d: d, r: r, cfg: cfg, seen: map[string]bool{}}
	subsets := connectedTableSubsets(d, cfg.MaxJoinTables)
	for _, tables := range subsets {
		if g.full() {
			break
		}
		j, err := db.Join(d, tables)
		if err != nil {
			continue // disconnected combination; skip
		}
		if j.Rel.Len() < r.Len() {
			continue // join too small to produce R under bag semantics
		}
		for _, proj := range g.projectionMappings(j) {
			if g.full() {
				break
			}
			g.generateForJoin(j, tables, proj)
		}
	}
	for i, q := range g.out {
		q.Name = fmt.Sprintf("C%d", i+1)
	}
	return g.out, nil
}

type generator struct {
	d    *db.Database
	r    *relation.Relation
	cfg  Config
	out  []*algebra.Query
	seen map[string]bool
}

func (g *generator) full() bool {
	return g.cfg.MaxCandidates > 0 && len(g.out) >= g.cfg.MaxCandidates
}

// emit verifies Q(D) = R by full evaluation and appends the query if new.
// Evaluations route through the configured cache, so candidates recurring
// across Generate calls on the same data verify without re-execution.
func (g *generator) emit(j *db.Joined, tables []string, proj []string, pred algebra.Predicate) {
	if g.full() {
		return
	}
	q := &algebra.Query{Tables: tables, Projection: proj, Pred: pred}
	fp := q.Key()
	if g.seen[fp] {
		return
	}
	var key evalcache.Key
	if g.cfg.Cache != nil {
		key = evalcache.Key{Query: q.Fingerprint(), DB: j.ContentHash()}
	}
	res, cached := (*relation.Relation)(nil), false
	if g.cfg.Cache != nil {
		res, cached = g.cfg.Cache.Get(key)
	}
	if !cached {
		var err error
		res, err = q.EvaluateOnJoined(j.Rel)
		if err != nil {
			return
		}
		if g.cfg.Cache != nil {
			g.cfg.Cache.Put(key, res)
		}
	}
	if !res.BagEqual(g.r) {
		return
	}
	g.seen[fp] = true
	g.out = append(g.out, q)
}

// emitTrusted appends a query whose exactness the caller has already
// established (used by the cluster builder, whose residual check is itself
// a complete verification).
func (g *generator) emitTrusted(tables, proj []string, pred algebra.Predicate) {
	if g.full() {
		return
	}
	q := &algebra.Query{Tables: tables, Projection: proj, Pred: pred}
	fp := q.Key()
	if g.seen[fp] {
		return
	}
	g.seen[fp] = true
	g.out = append(g.out, q)
}

// verifier carries the per-(join, projection) state that lets emitVerified
// check Q(D) = R by scanning only the rows that can possibly be selected.
// It is sound only for predicates already known to reject every excluded
// row (the combination search guarantees this via exclusion bitmaps, the
// cluster builder via per-cluster bad-row checks).
type verifier struct {
	j       *db.Joined
	tables  []string
	proj    []string
	projIdx []int
	rows    []int // required ∪ optional
	need    *relation.Bag
}

func (g *generator) newVerifier(j *db.Joined, tables, proj []string, rc rowClass) *verifier {
	v := &verifier{j: j, tables: tables, proj: proj, need: g.r.Bag()}
	v.projIdx = make([]int, len(proj))
	for i, p := range proj {
		v.projIdx[i] = j.Rel.Schema.MustIndexOf(p)
	}
	v.rows = append(append([]int(nil), rc.required...), rc.optional...)
	return v
}

// emitVerified appends the query if it is new and selects exactly R from
// the verifier's candidate rows. Multiplicity bookkeeping runs through the
// hash kernel: projected tuples are hashed in place (no materialisation, no
// key strings) and verified on collision.
func (g *generator) emitVerified(v *verifier, pred algebra.Predicate) {
	if g.full() {
		return
	}
	q := &algebra.Query{Tables: v.tables, Projection: v.proj, Pred: pred}
	fp := q.Key()
	if g.seen[fp] {
		return
	}
	match := pred.Compile(v.j.Rel.Schema)
	got := relation.NewBag(v.need.Distinct())
	total := 0
	for _, ri := range v.rows {
		t := v.j.Rel.Tuples[ri]
		if !match(t) {
			continue
		}
		total++
		if got.IncProj(t, v.projIdx, 1) > v.need.CountProj(t, v.projIdx) {
			return // overshoot: cannot equal R
		}
	}
	if total != g.r.Len() {
		return
	}
	g.seen[fp] = true
	g.out = append(g.out, q)
}

// connectedTableSubsets enumerates subsets of tables connected by foreign
// keys, ordered by size then lexicographically, capped at maxSize (0 = no
// cap). Single tables are always connected.
func connectedTableSubsets(d *db.Database, maxSize int) [][]string {
	names := d.TableNames()
	n := len(names)
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	idx := map[string]int{}
	for i, t := range names {
		idx[t] = i
	}
	for _, fk := range d.ForeignKeys {
		a, aok := idx[fk.ChildTable]
		b, bok := idx[fk.ParentTable]
		if aok && bok {
			adj[a][b], adj[b][a] = true, true
		}
	}
	var out [][]string
	for mask := 1; mask < 1<<n; mask++ {
		size := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size++
			}
		}
		if size > maxSize {
			continue
		}
		if !maskConnected(mask, adj, n) {
			continue
		}
		var subset []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, names[i])
			}
		}
		out = append(out, subset)
	}
	sort.Slice(out, func(i, k int) bool {
		if len(out[i]) != len(out[k]) {
			return len(out[i]) < len(out[k])
		}
		for x := range out[i] {
			if out[i][x] != out[k][x] {
				return out[i][x] < out[k][x]
			}
		}
		return false
	})
	return out
}

func maskConnected(mask int, adj [][]bool, n int) bool {
	start := -1
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			start = i
			break
		}
	}
	if start < 0 {
		return false
	}
	visited := 1 << start
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := 0; w < n; w++ {
			if mask&(1<<w) != 0 && visited&(1<<w) == 0 && adj[v][w] {
				visited |= 1 << w
				queue = append(queue, w)
			}
		}
	}
	return visited == mask
}

// projectionMappings finds assignments of R's columns to joined columns with
// matching types and value containment. Candidates per column are ordered by
// plausibility (name match, exact kind, schema order) and complete mappings
// are kept only when the joint multiset classification is feasible, so a
// spurious single-column match (e.g. an integer that also occurs in some
// float column) cannot poison the search. Results are capped by the config.
func (g *generator) projectionMappings(j *db.Joined) [][]string {
	// Distinct values per joined column, computed at most once per column
	// through the hash kernel (the legacy path rebuilt a key-string set per
	// (R column, joined column) combination), and only for columns that
	// survive the type filter at least once.
	doms := make([]*relation.Bag, j.Rel.Arity())
	colIdx := make([][1]int, j.Rel.Arity())
	domOf := func(ci int) *relation.Bag {
		if doms[ci] == nil {
			colIdx[ci][0] = ci
			dom := relation.NewBag(len(j.Rel.Tuples))
			for _, t := range j.Rel.Tuples {
				dom.IncProj(t, colIdx[ci][:], 1)
			}
			doms[ci] = dom
		}
		return doms[ci]
	}
	// Candidate joined columns per R column.
	cands := make([][]string, g.r.Arity())
	for ri, rc := range g.r.Schema {
		rIdx := [1]int{ri}
		rvals := relation.NewBag(len(g.r.Tuples))
		for _, t := range g.r.Tuples {
			rvals.IncProj(t, rIdx[:], 1)
		}
		type scored struct {
			name string
			rank int
		}
		var cs []scored
		for ci, jc := range j.Rel.Schema {
			if jc.Type != rc.Type && !(jc.Type.Numeric() && rc.Type.Numeric()) {
				continue
			}
			dom := domOf(ci)
			ok := true
			rvals.ForEach(func(t relation.Tuple, _ int) {
				if ok && dom.Count(t) == 0 {
					ok = false
				}
			})
			if !ok {
				continue
			}
			rank := 2
			if jc.Type == rc.Type {
				rank = 1
			}
			if jc.Name == rc.Name || strings.HasSuffix(jc.Name, "."+rc.Name) {
				rank = 0
			}
			cs = append(cs, scored{name: jc.Name, rank: rank})
		}
		if len(cs) == 0 {
			return nil
		}
		sort.SliceStable(cs, func(a, b int) bool { return cs[a].rank < cs[b].rank })
		for _, c := range cs {
			cands[ri] = append(cands[ri], c.name)
		}
	}
	// Depth-first over the cartesian product in plausibility order; keep
	// only feasible mappings, bounding both results and attempts.
	var out [][]string
	attempts := 0
	maxAttempts := g.cfg.MaxProjectionMappings * 32
	cur := make([]string, g.r.Arity())
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= g.cfg.MaxProjectionMappings || attempts >= maxAttempts {
			return
		}
		if i == len(cands) {
			attempts++
			m := append([]string(nil), cur...)
			if classifyRows(j, m, g.r).feasible {
				out = append(out, m)
			}
			return
		}
		for _, c := range cands[i] {
			cur[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
