package qbo

import (
	"sort"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// PerturbConstants enlarges a candidate set the way §7.6 does: "we generated
// 61 additional candidate queries from the initial candidate queries by
// modifying their selection predicate constants." For every scalar numeric
// term, the constant is moved to nearby positions inside the same active-
// domain gap (midpoints and adjacent data values); each variant is verified
// to still produce R on D before being kept.
//
// maxExtra caps the number of variants returned; the result excludes queries
// fingerprint-equal to the inputs or to each other.
func PerturbConstants(d *db.Database, r *relation.Relation, base []*algebra.Query, maxExtra int) ([]*algebra.Query, error) {
	seen := map[string]bool{}
	for _, q := range base {
		seen[q.Key()] = true
	}
	var out []*algebra.Query

	joins := map[string]*db.Joined{}
	joinFor := func(q *algebra.Query) (*db.Joined, error) {
		k := q.JoinSchemaKey()
		if j, ok := joins[k]; ok {
			return j, nil
		}
		j, err := db.Join(d, q.Tables)
		if err != nil {
			return nil, err
		}
		joins[k] = j
		return j, nil
	}

	for _, q := range base {
		if maxExtra > 0 && len(out) >= maxExtra {
			break
		}
		j, err := joinFor(q)
		if err != nil {
			return nil, err
		}
		// Collect the query's variants first, then verify them against D in
		// one shared columnar scan — the variants differ from q (and from
		// each other) in a single constant, so the batch's term table is
		// nearly fully shared. A single variant keeps the scalar path (the
		// batch engine's differential reference).
		var variants []*algebra.Query
		for ci := range q.Pred {
			for ti := range q.Pred[ci] {
				term := q.Pred[ci][ti]
				if term.Op == algebra.OpIn || term.Op == algebra.OpNotIn || !term.Const.Kind.Numeric() {
					continue
				}
				for _, nc := range nearbyConstants(j.Rel, term.Attr, term.Const) {
					v := q.Clone()
					v.Name = ""
					v.Pred[ci][ti].Const = nc
					variants = append(variants, v)
				}
			}
		}
		var results []*relation.Relation
		if len(variants) > 1 {
			results, err = algebra.BatchEvaluateOnJoined(variants, j.Columnar())
			if err != nil {
				results = nil // fall back to per-variant scalar evaluation
			}
		}
		for vi, v := range variants {
			if maxExtra > 0 && len(out) >= maxExtra {
				break
			}
			fp := v.Key()
			if seen[fp] {
				continue
			}
			res := (*relation.Relation)(nil)
			if results != nil {
				res = results[vi]
			} else {
				var verr error
				res, verr = v.EvaluateOnJoined(j.Rel)
				if verr != nil {
					continue
				}
			}
			if !res.BagEqual(r) {
				continue
			}
			seen[fp] = true
			out = append(out, v)
		}
	}
	for i, q := range out {
		q.Name = "P" + itoa(i+1)
	}
	return out, nil
}

// nearbyConstants proposes replacement constants around c: the adjacent
// active-domain values and the midpoints of the gaps on either side of c.
func nearbyConstants(joined *relation.Relation, attr string, c relation.Value) []relation.Value {
	col := joined.Schema.IndexOf(attr)
	if col < 0 {
		return nil
	}
	kind := joined.Schema[col].Type
	var vals []float64
	seen := map[float64]bool{}
	for _, t := range joined.Tuples {
		v := t[col]
		if !v.Kind.Numeric() {
			continue
		}
		f := v.AsFloat()
		if !seen[f] {
			seen[f] = true
			vals = append(vals, f)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	cf := c.AsFloat()
	// Locate neighbours of cf in the active domain.
	lo := sort.SearchFloat64s(vals, cf)
	var cands []float64
	if lo > 0 {
		below := vals[lo-1]
		cands = append(cands, below, (below+cf)/2)
	}
	if lo < len(vals) {
		at := vals[lo]
		if at != cf {
			cands = append(cands, at, (at+cf)/2)
		} else if lo+1 < len(vals) {
			above := vals[lo+1]
			cands = append(cands, above, (above+cf)/2)
		}
	}
	var out []relation.Value
	for _, f := range cands {
		if f == cf {
			continue
		}
		if kind == relation.KindInt {
			i := int64(f)
			if float64(i) != f {
				continue // keep int columns integral
			}
			out = append(out, relation.Int(i))
		} else {
			out = append(out, relation.Float(f))
		}
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
