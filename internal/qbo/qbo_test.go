package qbo

import (
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// employeeDB is the paper's Example 1.1 database.
func employeeDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	r := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	r.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(r)
	d.AddPrimaryKey("Employee", "Eid")
	return d
}

func exampleResult() *relation.Relation {
	return relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
}

func TestGenerateExample11Candidates(t *testing.T) {
	d := employeeDB(t)
	r := exampleResult()
	qs, err := Generate(d, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no candidates generated")
	}
	// Every candidate must reproduce R exactly (the generator's contract).
	for _, q := range qs {
		res, err := q.Evaluate(d)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !res.BagEqual(r) {
			t.Errorf("candidate %s does not produce R: %v", q, res.Tuples)
		}
	}
	// The paper's three intents must all be found: gender='M',
	// salary>4000-style, dept='IT'.
	var hasGender, hasSalary, hasDept bool
	for _, q := range qs {
		for _, term := range q.Pred.Terms() {
			switch term.Attr {
			case "Employee.gender":
				hasGender = true
			case "Employee.salary":
				hasSalary = true
			case "Employee.dept":
				hasDept = true
			}
		}
	}
	if !hasGender || !hasSalary || !hasDept {
		t.Errorf("missing expected candidate families: gender=%v salary=%v dept=%v (got %d candidates)",
			hasGender, hasSalary, hasDept, len(qs))
		for _, q := range qs {
			t.Logf("  %s", q)
		}
	}
}

func TestGenerateDeduplicatesAndNames(t *testing.T) {
	d := employeeDB(t)
	qs, err := Generate(d, exampleResult(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, q := range qs {
		fp := q.Key()
		if seen[fp] {
			t.Errorf("duplicate candidate %s", q)
		}
		seen[fp] = true
		if q.Name == "" {
			t.Errorf("candidate %d unnamed", i)
		}
	}
}

func TestGenerateRespectsMaxCandidates(t *testing.T) {
	d := employeeDB(t)
	cfg := DefaultConfig()
	cfg.MaxCandidates = 2
	qs, err := Generate(d, exampleResult(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) > 2 {
		t.Errorf("MaxCandidates=2 produced %d", len(qs))
	}
}

func TestGenerateTruePredicateWhenRIsWholeProjection(t *testing.T) {
	d := employeeDB(t)
	r := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Alice"), relation.NewTuple("Bob"),
			relation.NewTuple("Celina"), relation.NewTuple("Darren"))
	qs, err := Generate(d, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	foundTrue := false
	for _, q := range qs {
		if len(q.Pred) == 0 {
			foundTrue = true
		}
	}
	if !foundTrue {
		t.Error("whole-column result should admit the TRUE predicate")
	}
}

func TestGenerateInfeasibleResult(t *testing.T) {
	d := employeeDB(t)
	// A value that does not exist anywhere.
	r := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Zorro"))
	qs, err := Generate(d, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Errorf("impossible result should yield no candidates, got %d", len(qs))
	}
}

func TestGenerateBagSemanticsExactness(t *testing.T) {
	// R demands Bob twice but the data has him once: infeasible.
	d := employeeDB(t)
	r := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Bob"))
	qs, err := Generate(d, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Errorf("over-demanding multiplicity should be infeasible, got %d candidates", len(qs))
	}
}

func TestGenerateTwoTableJoin(t *testing.T) {
	d := db.New()
	dept := relation.New("Dept", relation.NewSchema(
		"did", relation.KindInt, "dname", relation.KindString, "floor", relation.KindInt))
	dept.Append(
		relation.NewTuple(1, "IT", 3),
		relation.NewTuple(2, "Sales", 1),
	)
	emp := relation.New("Emp", relation.NewSchema(
		"eid", relation.KindInt, "ename", relation.KindString, "did", relation.KindInt))
	emp.Append(
		relation.NewTuple(1, "Bob", 1),
		relation.NewTuple(2, "Alice", 2),
		relation.NewTuple(3, "Darren", 1),
	)
	d.MustAddTable(dept)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Dept", "did")
	d.AddForeignKey("Emp", []string{"did"}, "Dept", []string{"did"})

	// R = names of employees on floor 3 = {Bob, Darren}.
	r := relation.New("R", relation.NewSchema("ename", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	qs, err := Generate(d, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no candidates for join query")
	}
	twoTable := false
	for _, q := range qs {
		if len(q.Tables) == 2 {
			twoTable = true
		}
		res, err := q.Evaluate(d)
		if err != nil || !res.BagEqual(r) {
			t.Errorf("candidate %s invalid: %v %v", q, res, err)
		}
	}
	if !twoTable {
		t.Error("expected at least one two-table candidate")
	}
}

func TestGenerateDisjunctiveCandidates(t *testing.T) {
	// R = {Alice, Celina}: the clean separators are gender='F' and the
	// disjunction name IN / dept clusters.
	d := employeeDB(t)
	r := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Alice"), relation.NewTuple("Celina"))
	qs, err := Generate(d, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	foundDisjunction := false
	for _, q := range qs {
		if len(q.Pred) >= 2 {
			foundDisjunction = true
		}
	}
	if len(qs) == 0 {
		t.Fatal("no candidates")
	}
	if !foundDisjunction {
		t.Log("no disjunctive candidate found (acceptable but unexpected); candidates:")
		for _, q := range qs {
			t.Logf("  %s", q)
		}
	}
}

func TestConnectedTableSubsets(t *testing.T) {
	d := db.New()
	for _, n := range []string{"A", "B", "C"} {
		d.MustAddTable(relation.New(n, relation.NewSchema("x", relation.KindInt)))
	}
	d.AddForeignKey("B", []string{"x"}, "A", []string{"x"})
	// C is an island: subsets = {A},{B},{C},{A,B} — not {A,C},{B,C},{A,B,C}.
	subsets := connectedTableSubsets(d, 0)
	keys := map[string]bool{}
	for _, s := range subsets {
		k := ""
		for _, n := range s {
			k += n
		}
		keys[k] = true
	}
	for _, want := range []string{"A", "B", "C", "AB"} {
		if !keys[want] {
			t.Errorf("missing connected subset %s", want)
		}
	}
	for _, bad := range []string{"AC", "BC", "ABC"} {
		if keys[bad] {
			t.Errorf("disconnected subset %s should be absent", bad)
		}
	}
	// Size cap.
	capped := connectedTableSubsets(d, 1)
	for _, s := range capped {
		if len(s) > 1 {
			t.Errorf("cap violated: %v", s)
		}
	}
}

func TestPerturbConstants(t *testing.T) {
	d := employeeDB(t)
	r := exampleResult()
	base := []*algebra.Query{{
		Name:       "Q",
		Tables:     []string{"Employee"},
		Projection: []string{"Employee.name"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))}},
	}}
	extra, err := PerturbConstants(d, r, base, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) == 0 {
		t.Fatal("expected perturbed variants (e.g. salary > 3700..4200 gap)")
	}
	for _, q := range extra {
		res, err := q.Evaluate(d)
		if err != nil || !res.BagEqual(r) {
			t.Errorf("perturbed %s changed the result", q)
		}
		if q.Fingerprint() == base[0].Fingerprint() {
			t.Errorf("perturbed query identical to base")
		}
		if q.Name == "" {
			t.Error("perturbed queries should be named")
		}
	}
	// Cap respected.
	capped, err := PerturbConstants(d, r, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 1 {
		t.Errorf("maxExtra=1 produced %d", len(capped))
	}
}

func TestGenerateCandidateMagnitude(t *testing.T) {
	// The paper's QC sizes are ~19; our generator should produce a two-digit
	// candidate set on Example 1.1 with the default budget.
	d := employeeDB(t)
	qs, err := Generate(d, exampleResult(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) < 3 {
		t.Errorf("candidate set suspiciously small: %d", len(qs))
		for _, q := range qs {
			t.Logf("  %s", q)
		}
	}
}
