package core

import (
	"encoding/json"
	"fmt"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/codec"
	"qfe/internal/dbgen"
	"qfe/internal/evalcache"
	"qfe/internal/feedback"
)

// SnapshotVersion identifies the snapshot wire format. Restore rejects
// snapshots with a different version rather than guessing.
const SnapshotVersion = 1

// Snapshot is the serializable state of a Session, sufficient to resume it
// in another process: the inputs (D, R, QC), the tuning knobs, the machine
// position (group, iteration, surviving representatives and their merged
// equivalence classes), the outcome accumulated so far, and — when the
// session is suspended on a round — the generated round itself, so a restore
// never has to re-run the Database Generator (whose δ time budget makes
// regeneration machine-dependent).
//
// Queries are referenced by index into QC throughout; the join-schema
// grouping is deterministic in QC and is rebuilt on restore rather than
// stored. The evaluation cache is process state and is not captured:
// restored sessions attach to the process-wide default cache.
type Snapshot struct {
	Version int            `json:"version"`
	Config  ConfigSnapshot `json:"config"`

	DB codec.Database `json:"db"`
	R  codec.Relation `json:"r"`
	QC []codec.Query  `json:"qc"`

	// State is "new", "awaiting", "done" or "failed".
	State string `json:"state"`
	// Fatal carries the stepping error of a failed session, so a restore
	// cannot mistake an engine failure for a legitimate not-found outcome.
	Fatal      string `json:"fatal,omitempty"`
	GroupIndex int    `json:"groupIndex"`
	GroupIter  int    `json:"groupIter"`
	Seq        int    `json:"seq"`
	// Reps indexes the surviving representatives into QC; Members holds, per
	// representative, the indexes of its merged equivalence class.
	Reps    []int   `json:"reps,omitempty"`
	Members [][]int `json:"members,omitempty"`

	// ElapsedNs is the session wall-clock consumed before the snapshot, so
	// Outcome.TotalTime keeps accumulating across restarts. RoundElapsedNs
	// is the same for the pending round's ExecTime.
	ElapsedNs      int64 `json:"elapsedNs"`
	RoundElapsedNs int64 `json:"roundElapsedNs,omitempty"`

	Outcome *OutcomeSnapshot `json:"outcome,omitempty"`
	Pending *RoundSnapshot   `json:"pending,omitempty"`
}

// ConfigSnapshot is the serializable subset of Config (the evaluation cache
// is process state, not session state).
type ConfigSnapshot struct {
	MaxIterations   int     `json:"maxIterations"`
	MergeEquivalent bool    `json:"mergeEquivalent"`
	MaxEquivClasses int     `json:"maxEquivClasses"`
	Parallelism     int     `json:"parallelism"`
	Beta            float64 `json:"beta"`
	BudgetNs        int64   `json:"budgetNs"`
	BudgetPairs     int     `json:"budgetPairs"`
	Strategy        uint8   `json:"strategy"`
	MaxSkylinePairs int     `json:"maxSkylinePairs"`
	MaxFrontier     int     `json:"maxFrontier"`
	MaxSetsEval     int     `json:"maxSetsEvaluated"`
	MaxCandSets     int     `json:"maxCandidateSets"`
	GenParallelism  int     `json:"genParallelism"`
}

// SnapshotConfig captures cfg in the serializable form. The evaluation
// cache is process state and is not captured.
func SnapshotConfig(cfg Config) ConfigSnapshot {
	return ConfigSnapshot{
		MaxIterations:   cfg.MaxIterations,
		MergeEquivalent: cfg.MergeEquivalent,
		MaxEquivClasses: cfg.MaxEquivClasses,
		Parallelism:     cfg.Parallelism,
		Beta:            cfg.Gen.Cost.Beta,
		BudgetNs:        int64(cfg.Gen.Budget.MaxDuration),
		BudgetPairs:     cfg.Gen.Budget.MaxPairs,
		Strategy:        uint8(cfg.Gen.Strategy),
		MaxSkylinePairs: cfg.Gen.MaxSkylinePairs,
		MaxFrontier:     cfg.Gen.MaxFrontier,
		MaxSetsEval:     cfg.Gen.MaxSetsEvaluated,
		MaxCandSets:     cfg.Gen.MaxCandidateSets,
		GenParallelism:  cfg.Gen.Parallelism,
	}
}

// Config rebuilds the runtime configuration, attaching the process-wide
// default evaluation cache (cache hits never change outcomes).
func (cs ConfigSnapshot) Config() Config {
	cfg := Config{
		MaxIterations:   cs.MaxIterations,
		MergeEquivalent: cs.MergeEquivalent,
		MaxEquivClasses: cs.MaxEquivClasses,
		Parallelism:     cs.Parallelism,
		Gen: dbgen.Options{
			Budget: dbgen.Budget{
				MaxDuration: time.Duration(cs.BudgetNs),
				MaxPairs:    cs.BudgetPairs,
			},
			Strategy:         dbgen.Strategy(cs.Strategy),
			MaxSkylinePairs:  cs.MaxSkylinePairs,
			MaxFrontier:      cs.MaxFrontier,
			MaxSetsEvaluated: cs.MaxSetsEval,
			MaxCandidateSets: cs.MaxCandSets,
			Parallelism:      cs.GenParallelism,
			Cache:            evalcache.Default(),
		},
	}
	cfg.Gen.Cost.Beta = cs.Beta
	return cfg
}

// OutcomeSnapshot serializes an Outcome with queries as indexes into QC.
type OutcomeSnapshot struct {
	Found        bool             `json:"found"`
	Ambiguous    bool             `json:"ambiguous"`
	Query        int              `json:"query"` // index into QC, -1 if none
	Remaining    []int            `json:"remaining,omitempty"`
	Iterations   []IterationStats `json:"iterations,omitempty"`
	TotalTimeNs  int64            `json:"totalTimeNs"`
	TotalModCost int              `json:"totalModCost"`
	QueryGenNs   int64            `json:"queryGenNs"`
}

// RoundSnapshot serializes a suspended round: the edits that produce D', the
// per-result relations, the partition of representative indexes, and the
// generator statistics that feed the round's IterationStats.
type RoundSnapshot struct {
	Edits     []codec.CellEdit `json:"edits"`
	Results   []codec.Relation `json:"results"`
	Partition [][]int          `json:"partition"`

	DBCost          int     `json:"dbCost"`
	NumRelations    int     `json:"numRelations"`
	ResultCost      int     `json:"resultCost"`
	AvgResultCost   float64 `json:"avgResultCost"`
	SkylinePairs    int     `json:"skylinePairs"`
	EnumeratedPairs int     `json:"enumeratedPairs"`
	X               int     `json:"x"`
	Alg3Ns          int64   `json:"alg3Ns"`
	Alg4Ns          int64   `json:"alg4Ns"`
	ConcretizeNs    int64   `json:"concretizeNs"`
}

// queryIndex locates q inside qc by pointer identity, falling back to the
// structural key (snapshots taken after a decode round-trip hold distinct
// pointers for structurally identical queries).
func queryIndex(qc []*algebra.Query, q *algebra.Query) (int, error) {
	for i, c := range qc {
		if c == q {
			return i, nil
		}
	}
	key := q.Key()
	for i, c := range qc {
		if c.Key() == key {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: snapshot: query %s not in candidate set", q.Name)
}

// Snapshot captures the session's current state. It is valid in every
// lifecycle phase except between Feedback accepting a choice and the next
// round being ready (a window that never escapes a single call).
func (s *Session) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		Version:    SnapshotVersion,
		DB:         codec.EncodeDatabase(s.DB),
		R:          codec.EncodeRelation(s.R),
		QC:         codec.EncodeQueries(s.QC),
		GroupIndex: s.gi,
		GroupIter:  s.groupIter,
		Seq:        s.seq,
		Config:     SnapshotConfig(s.Config),
	}
	switch {
	case s.state == stateNew:
		snap.State = "new"
		return snap, nil
	case s.state == stateAwaiting:
		snap.State = "awaiting"
	case s.fatal != nil:
		snap.State = "failed"
		snap.Fatal = s.fatal.Error()
	default:
		snap.State = "done"
	}
	snap.ElapsedNs = int64(time.Since(s.started))

	for _, rep := range s.reps {
		ri, err := queryIndex(s.QC, rep)
		if err != nil {
			return nil, err
		}
		snap.Reps = append(snap.Reps, ri)
		var grp []int
		for _, m := range s.members[rep.Key()] {
			mi, err := queryIndex(s.QC, m)
			if err != nil {
				return nil, err
			}
			grp = append(grp, mi)
		}
		snap.Members = append(snap.Members, grp)
	}

	if s.out != nil {
		os := &OutcomeSnapshot{
			Found:        s.out.Found,
			Ambiguous:    s.out.Ambiguous,
			Query:        -1,
			Iterations:   append([]IterationStats(nil), s.out.Iterations...),
			TotalTimeNs:  int64(s.out.TotalTime),
			TotalModCost: s.out.TotalModCost,
			QueryGenNs:   int64(s.out.QueryGenTime),
		}
		if s.out.Query != nil {
			qi, err := queryIndex(s.QC, s.out.Query)
			if err != nil {
				return nil, err
			}
			os.Query = qi
		}
		for _, q := range s.out.Remaining {
			qi, err := queryIndex(s.QC, q)
			if err != nil {
				return nil, err
			}
			os.Remaining = append(os.Remaining, qi)
		}
		snap.Outcome = os
	}

	if s.state == stateAwaiting {
		res := s.pendingRes
		rs := &RoundSnapshot{
			Edits:           codec.EncodeEdits(res.Edits),
			Partition:       res.Partition,
			DBCost:          res.DBCost,
			NumRelations:    res.NumRelations,
			ResultCost:      res.ResultCost,
			AvgResultCost:   res.AvgResultCost,
			SkylinePairs:    res.SkylinePairs,
			EnumeratedPairs: res.EnumeratedPairs,
			X:               res.X,
			Alg3Ns:          int64(res.Alg3Time),
			Alg4Ns:          int64(res.Alg4Time),
			ConcretizeNs:    int64(res.ConcretizeTime),
		}
		for _, r := range res.Results {
			rs.Results = append(rs.Results, codec.EncodeRelation(r))
		}
		snap.Pending = rs
		snap.RoundElapsedNs = int64(time.Since(s.roundStart))
	}
	return snap, nil
}

// MarshalJSON / reading convenience.

// Marshal serializes the snapshot to JSON.
func (snap *Snapshot) Marshal() ([]byte, error) { return json.Marshal(snap) }

// UnmarshalSnapshot parses a JSON snapshot.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return &snap, nil
}

// Restore rebuilds a session from a snapshot. The oracle may be nil for
// step-API use. The restored session attaches to the process-wide default
// evaluation cache (caches are process state; hits never change outcomes).
func Restore(snap *Snapshot, oracle feedback.Oracle) (*Session, error) {
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	d, err := codec.DecodeDatabase(snap.DB)
	if err != nil {
		return nil, err
	}
	r, err := codec.DecodeRelation(snap.R)
	if err != nil {
		return nil, err
	}
	qc, err := codec.DecodeQueries(snap.QC)
	if err != nil {
		return nil, err
	}
	s, err := NewStepSession(d, r, qc, snap.Config.Config())
	if err != nil {
		return nil, err
	}
	s.Oracle = oracle
	if snap.State == "new" {
		return s, nil
	}

	s.buildGroups()
	s.gi = snap.GroupIndex
	s.groupIter = snap.GroupIter
	s.seq = snap.Seq
	s.started = time.Now().Add(-time.Duration(snap.ElapsedNs))

	inRange := func(i int, what string) error {
		if i < 0 || i >= len(qc) {
			return fmt.Errorf("core: snapshot: %s index %d out of range (|QC| = %d)", what, i, len(qc))
		}
		return nil
	}
	if len(snap.Reps) > 0 {
		if len(snap.Members) != len(snap.Reps) {
			return nil, fmt.Errorf("core: snapshot: %d member groups for %d reps",
				len(snap.Members), len(snap.Reps))
		}
		s.members = map[string][]*algebra.Query{}
		for i, ri := range snap.Reps {
			if err := inRange(ri, "rep"); err != nil {
				return nil, err
			}
			rep := qc[ri]
			s.reps = append(s.reps, rep)
			for _, mi := range snap.Members[i] {
				if err := inRange(mi, "member"); err != nil {
					return nil, err
				}
				s.members[rep.Key()] = append(s.members[rep.Key()], qc[mi])
			}
		}
	}

	s.out = &Outcome{}
	if snap.Outcome != nil {
		s.out.Found = snap.Outcome.Found
		s.out.Ambiguous = snap.Outcome.Ambiguous
		s.out.Iterations = append([]IterationStats(nil), snap.Outcome.Iterations...)
		s.out.TotalTime = time.Duration(snap.Outcome.TotalTimeNs)
		s.out.TotalModCost = snap.Outcome.TotalModCost
		s.out.QueryGenTime = time.Duration(snap.Outcome.QueryGenNs)
		if snap.Outcome.Query >= 0 {
			if err := inRange(snap.Outcome.Query, "outcome query"); err != nil {
				return nil, err
			}
			s.out.Query = qc[snap.Outcome.Query]
		}
		for _, qi := range snap.Outcome.Remaining {
			if err := inRange(qi, "remaining"); err != nil {
				return nil, err
			}
			s.out.Remaining = append(s.out.Remaining, qc[qi])
		}
	}

	switch snap.State {
	case "done":
		s.state = stateDone
		return s, nil
	case "failed":
		s.state = stateDone
		msg := snap.Fatal
		if msg == "" {
			msg = "unknown failure"
		}
		s.fatal = fmt.Errorf("core: restored failed session: %s", msg)
		return s, nil
	case "awaiting":
		// fall through below
	default:
		return nil, fmt.Errorf("core: snapshot: unknown state %q", snap.State)
	}

	if snap.Pending == nil {
		return nil, fmt.Errorf("core: snapshot: awaiting state without pending round")
	}
	edits, err := codec.DecodeEdits(snap.Pending.Edits)
	if err != nil {
		return nil, err
	}
	newDB, err := d.ApplyEdits(edits)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: replaying edits: %w", err)
	}
	res := &dbgen.Result{
		DB:              newDB,
		Edits:           edits,
		Partition:       snap.Pending.Partition,
		DBCost:          snap.Pending.DBCost,
		NumRelations:    snap.Pending.NumRelations,
		ResultCost:      snap.Pending.ResultCost,
		AvgResultCost:   snap.Pending.AvgResultCost,
		SkylinePairs:    snap.Pending.SkylinePairs,
		EnumeratedPairs: snap.Pending.EnumeratedPairs,
		X:               snap.Pending.X,
		Alg3Time:        time.Duration(snap.Pending.Alg3Ns),
		Alg4Time:        time.Duration(snap.Pending.Alg4Ns),
		ConcretizeTime:  time.Duration(snap.Pending.ConcretizeNs),
	}
	for _, rel := range snap.Pending.Results {
		dr, err := codec.DecodeRelation(rel)
		if err != nil {
			return nil, err
		}
		res.Results = append(res.Results, dr)
	}
	if len(res.Partition) != len(res.Results) {
		return nil, fmt.Errorf("core: snapshot: %d partition blocks for %d results",
			len(res.Partition), len(res.Results))
	}
	// Partition entries index the surviving representatives; a corrupt
	// state file must fail here, not panic inside the next Feedback.
	for bi, block := range res.Partition {
		for _, qi := range block {
			if qi < 0 || qi >= len(s.reps) {
				return nil, fmt.Errorf("core: snapshot: partition block %d references rep %d of %d",
					bi, qi, len(s.reps))
			}
		}
	}
	s.pendingRes = res
	s.roundStart = time.Now().Add(-time.Duration(snap.RoundElapsedNs))
	s.pending = &Round{
		Seq:       s.seq,
		Iteration: s.groupIter,
		Group:     s.gi,
		NumGroups: len(s.groupKeys),
		View: feedback.View{
			Iteration: s.groupIter,
			BaseDB:    s.DB,
			BaseR:     s.R,
			NewDB:     res.DB,
			Edits:     res.Edits,
			Results:   res.Results,
			Groups:    res.Partition,
			Queries:   s.reps,
		},
	}
	s.state = stateAwaiting
	return s, nil
}
