package core

import (
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/feedback"
	"qfe/internal/relation"
)

// TestSetSemanticsWinnowing exercises the §6.1 extension: candidates with
// DISTINCT results, where removals can be masked by surviving duplicates
// and QFE must rely on the insert-style distinguishing strategy.
func TestSetSemanticsWinnowing(t *testing.T) {
	d := db.New()
	emp := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	emp.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
		relation.NewTuple(5, "Erik", "M", "IT", 4100), // duplicate dept
	)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Employee", "Eid")

	mk := func(name string, term algebra.Term) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.dept"},
			Pred:       algebra.Predicate{algebra.Conjunct{term}},
			Distinct:   true}
	}
	// Both produce DISTINCT {IT} on D.
	qc := []*algebra.Query{
		mk("A", algebra.NewTerm("Employee.gender", algebra.OpEQ, relation.Str("M"))),
		mk("B", algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))),
	}
	r := relation.New("R", relation.NewSchema("dept", relation.KindString)).
		Append(relation.NewTuple("IT"))
	for _, q := range qc {
		res, err := q.Evaluate(d)
		if err != nil || !res.SetEqual(r) {
			t.Fatalf("%s should produce {IT}: %v %v", q.Name, res, err)
		}
	}

	for _, target := range qc {
		s, err := NewSession(d, r, qc, feedback.Target{Query: target}, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Run()
		if err != nil {
			t.Fatalf("target %s: %v", target.Name, err)
		}
		if !out.Found {
			t.Fatalf("target %s not found: %+v", target.Name, out)
		}
		if out.Query == nil || out.Query.Name != target.Name {
			t.Errorf("target %s: identified %v", target.Name, out.Query)
		}
	}
}

// TestMixedSemanticsCandidates mixes bag- and set-semantics candidates in
// one session; the fingerprints must keep them apart when duplicates exist.
func TestMixedSemanticsCandidates(t *testing.T) {
	d := db.New()
	tt := relation.New("T", relation.NewSchema(
		"id", relation.KindInt, "cat", relation.KindString, "v", relation.KindInt))
	tt.Append(
		relation.NewTuple(1, "a", 10),
		relation.NewTuple(2, "a", 20),
		relation.NewTuple(3, "b", 30),
	)
	d.MustAddTable(tt)
	d.AddPrimaryKey("T", "id")

	bag := &algebra.Query{Name: "bag", Tables: []string{"T"}, Projection: []string{"T.cat"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("T.v", algebra.OpLE, relation.Int(20))}}}
	set := &algebra.Query{Name: "set", Tables: []string{"T"}, Projection: []string{"T.cat"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("T.v", algebra.OpLE, relation.Int(20))}},
		Distinct: true}

	rb, _ := bag.Evaluate(d)
	rs, _ := set.Evaluate(d)
	if rb.Len() != 2 || rs.Len() != 1 {
		t.Fatalf("fixture: bag %d set %d", rb.Len(), rs.Len())
	}
	// They disagree on D already, so any session with R = bag result must
	// immediately exclude the distinct variant via fingerprints.
	if bag.DeltaFingerprint(rb, algebra.ResultDelta{}) ==
		set.DeltaFingerprint(rs, algebra.ResultDelta{}) {
		t.Error("bag and set fingerprints must differ when duplicates exist")
	}
}
