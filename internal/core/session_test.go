package core

import (
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
	"qfe/internal/relation"
)

func employeeDB(t *testing.T) (*db.Database, *relation.Relation) {
	t.Helper()
	d := db.New()
	r := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	r.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(r)
	d.AddPrimaryKey("Employee", "Eid")
	res := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	return d, res
}

func paperCandidates() []*algebra.Query {
	mk := func(name string, term algebra.Term) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred:       algebra.Predicate{algebra.Conjunct{term}}}
	}
	return []*algebra.Query{
		mk("Q1", algebra.NewTerm("Employee.gender", algebra.OpEQ, relation.Str("M"))),
		mk("Q2", algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))),
		mk("Q3", algebra.NewTerm("Employee.dept", algebra.OpEQ, relation.Str("IT"))),
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Gen.Budget = dbgen.Budget{MaxPairs: 100000}
	return cfg
}

// TestPaperExample11 replays the paper's worked example: each of the three
// candidates, when chosen as the target, must be identified within two
// feedback rounds using single-attribute database changes.
func TestPaperExample11(t *testing.T) {
	d, r := employeeDB(t)
	for _, target := range paperCandidates() {
		qc := paperCandidates()
		s, err := NewSession(d, r, qc, feedback.Target{Query: target}, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Run()
		if err != nil {
			t.Fatalf("target %s: %v", target.Name, err)
		}
		if !out.Found || out.Query == nil {
			t.Fatalf("target %s not identified: %+v", target.Name, out)
		}
		if out.Query.Name != target.Name {
			t.Errorf("identified %s, want %s", out.Query.Name, target.Name)
		}
		if n := len(out.Iterations); n > 2 {
			t.Errorf("target %s took %d rounds, paper does it in ≤2", target.Name, n)
		}
		for _, it := range out.Iterations {
			if it.DBCost < 1 {
				t.Errorf("iteration %d has no database modification", it.Iteration)
			}
		}
	}
}

func TestWorstCaseTerminates(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewSession(d, r, paperCandidates(), feedback.WorstCase{}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || len(out.Remaining) != 1 {
		t.Fatalf("worst-case feedback should converge to one query: %+v", out)
	}
	if out.TotalModCost <= 0 {
		t.Error("TotalModCost not accumulated")
	}
	if len(out.Iterations) == 0 || out.Iterations[0].NumQueries != 3 {
		t.Errorf("iteration stats wrong: %+v", out.Iterations)
	}
}

func TestEndToEndWithQBOCandidates(t *testing.T) {
	// Full pipeline: QBO generates QC from (D, R); QFE winnows it toward a
	// chosen target with automated target feedback.
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qc) < 3 {
		t.Fatalf("too few candidates: %d", len(qc))
	}
	// Pick the salary-threshold candidate as target if present, else first.
	target := qc[0]
	for _, q := range qc {
		for _, term := range q.Pred.Terms() {
			if term.Attr == "Employee.salary" && term.Op == algebra.OpGT {
				target = q
			}
		}
	}
	s, err := NewSession(d, r, qc, feedback.Target{Query: target}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatal("target not found")
	}
	// The remaining candidates must all behave like the target on every
	// tested database; at minimum they agree on D.
	for _, q := range out.Remaining {
		res, err := q.Evaluate(d)
		if err != nil || !res.BagEqual(r) {
			t.Errorf("survivor %s does not produce R", q.Name)
		}
	}
	// Winnowing must shrink per round.
	prev := 1 << 30
	for _, it := range out.Iterations {
		if it.NumQueries >= prev {
			t.Errorf("candidate count did not shrink: %+v", out.Iterations)
		}
		prev = it.NumQueries
	}
}

func TestEquivalentCandidatesMergedUpfront(t *testing.T) {
	d, r := employeeDB(t)
	mk := func(name string, op algebra.Op, c int64) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred: algebra.Predicate{algebra.Conjunct{
				algebra.NewTerm("Employee.salary", op, relation.Int(c))}}}
	}
	// A ≡ B over the integer domain; C differs.
	qc := []*algebra.Query{
		mk("A", algebra.OpGT, 4000),
		mk("B", algebra.OpGE, 4001),
		paperCandidates()[0], // gender = 'M'
	}
	s, err := NewSession(d, r, qc, feedback.Target{Query: qc[0]}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatal("not found")
	}
	// The winner is the {A, B} equivalence class: ambiguous with exactly
	// those two members.
	if !out.Ambiguous || len(out.Remaining) != 2 {
		t.Fatalf("want ambiguous {A,B}, got %+v", out.Remaining)
	}
	names := map[string]bool{}
	for _, q := range out.Remaining {
		names[q.Name] = true
	}
	if !names["A"] || !names["B"] {
		t.Errorf("remaining = %v", names)
	}
}

func TestSingleCandidateShortCircuits(t *testing.T) {
	d, r := employeeDB(t)
	qc := paperCandidates()[:1]
	s, err := NewSession(d, r, qc, feedback.WorstCase{}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || out.Query == nil || len(out.Iterations) != 0 {
		t.Errorf("single candidate should need zero rounds: %+v", out)
	}
}

func TestJoinSchemaGroups(t *testing.T) {
	// Candidates over different join schemas: a single-table query group
	// and a two-table one; §6.2 processes the larger group first and moves
	// on when the oracle rejects every result.
	d := db.New()
	dept := relation.New("Dept", relation.NewSchema(
		"did", relation.KindInt, "dname", relation.KindString, "floor", relation.KindInt))
	dept.Append(relation.NewTuple(1, "IT", 3), relation.NewTuple(2, "Sales", 1))
	emp := relation.New("Emp", relation.NewSchema(
		"eid", relation.KindInt, "ename", relation.KindString, "did", relation.KindInt,
		"age", relation.KindInt))
	emp.Append(
		relation.NewTuple(1, "Bob", 1, 30),
		relation.NewTuple(2, "Alice", 2, 40),
		relation.NewTuple(3, "Darren", 1, 35),
	)
	d.MustAddTable(dept)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Dept", "did")
	d.AddPrimaryKey("Emp", "eid")
	d.AddForeignKey("Emp", []string{"did"}, "Dept", []string{"did"})
	r := relation.New("R", relation.NewSchema("ename", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))

	singleA := &algebra.Query{Name: "S1", Tables: []string{"Emp"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Emp.did", algebra.OpEQ, relation.Int(1))}}}
	singleB := &algebra.Query{Name: "S2", Tables: []string{"Emp"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Emp.age", algebra.OpLE, relation.Int(35))}}}
	joinA := &algebra.Query{Name: "J1", Tables: []string{"Emp", "Dept"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Dept.dname", algebra.OpEQ, relation.Str("IT"))}}}
	joinB := &algebra.Query{Name: "J2", Tables: []string{"Emp", "Dept"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Dept.floor", algebra.OpGE, relation.Int(2))}}}

	qc := []*algebra.Query{singleA, singleB, joinA, joinB}
	// Target is in the join group; the single-table group is the same size,
	// so order is deterministic by key — either way the session must find
	// the target across groups.
	s, err := NewSession(d, r, qc, feedback.Target{Query: joinA}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatalf("target in second group not found: %+v", out)
	}
	ok := false
	for _, q := range out.Remaining {
		if q.Name == "J1" {
			ok = true
		}
	}
	if !ok {
		t.Errorf("J1 should survive, got %v", out.Remaining)
	}
}

func TestSessionValidation(t *testing.T) {
	d, r := employeeDB(t)
	if _, err := NewSession(d, r, nil, feedback.WorstCase{}, testConfig()); err == nil {
		t.Error("empty QC should fail")
	}
	if _, err := NewSession(d, r, paperCandidates(), nil, testConfig()); err == nil {
		t.Error("nil oracle should fail")
	}
}

func TestIterationStatsPopulated(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewSession(d, r, paperCandidates(), feedback.WorstCase{}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range out.Iterations {
		if it.NumSubsets < 2 {
			t.Errorf("iteration %d: subsets = %d", it.Iteration, it.NumSubsets)
		}
		if it.SkylinePairs <= 0 {
			t.Errorf("iteration %d: no skyline pairs recorded", it.Iteration)
		}
		if it.AvgResultCost <= 0 {
			t.Errorf("iteration %d: avg result cost = %v", it.Iteration, it.AvgResultCost)
		}
		if it.ChosenSize <= 0 {
			t.Errorf("iteration %d: chosen size missing", it.Iteration)
		}
	}
}
