package core

import (
	"testing"

	"qfe/internal/feedback"
	"qfe/internal/qbo"
)

// finishWithOracle steps a (possibly restored) session to completion.
func finishWithOracle(t *testing.T, s *Session, oracle feedback.Oracle) *Outcome {
	t.Helper()
	round := s.Pending()
	if round == nil {
		if out, done := s.Outcome(); done {
			return out
		}
		var err error
		round, err = s.Start()
		if err != nil {
			t.Fatal(err)
		}
	}
	for round != nil {
		choice, ok, err := oracle.Choose(round.View)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			choice = NoneOfThese
		}
		round, _, err = s.Feedback(choice)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, done := s.Outcome()
	if !done {
		t.Fatal("session did not finish")
	}
	return out
}

// TestSnapshotRestoreMidSession is the acceptance check: suspend a session
// on its first round, serialize it to JSON, restore in a "new process"
// (fresh objects), and finish both; the restored session must reach the same
// final Outcome.
func TestSnapshotRestoreMidSession(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, oracle := range []feedback.Oracle{
		feedback.WorstCase{},
		feedback.Target{Query: qc[len(qc)/2]},
	} {
		orig, err := NewStepSession(d, r, qc, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if round, err := orig.Start(); err != nil || round == nil {
			t.Fatalf("expected a first round: %v", err)
		}

		snap, err := orig.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := snap.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := UnmarshalSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(decoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Pending() == nil {
			t.Fatal("restored session lost its pending round")
		}
		// The restored round must present the same view content.
		a, b := orig.Pending(), restored.Pending()
		if a.Seq != b.Seq || a.Iteration != b.Iteration || a.Group != b.Group {
			t.Errorf("oracle %T: round position differs: %+v vs %+v", oracle, a, b)
		}
		if len(a.View.Results) != len(b.View.Results) {
			t.Fatalf("oracle %T: result count differs", oracle)
		}
		for i := range a.View.Results {
			if a.View.Results[i].Fingerprint() != b.View.Results[i].Fingerprint() {
				t.Errorf("oracle %T: result %d differs after restore", oracle, i)
			}
		}
		if len(a.View.Edits) != len(b.View.Edits) {
			t.Errorf("oracle %T: edit count differs", oracle)
		}

		outA := finishWithOracle(t, orig, oracle)
		outB := finishWithOracle(t, restored, oracle)
		sigA, sigB := outcomeSignature(t, outA), outcomeSignature(t, outB)
		if !equalSignatures(sigA, sigB) {
			t.Errorf("oracle %T: outcome differs after snapshot/restore\norig:     %v\nrestored: %v",
				oracle, sigA, sigB)
		}
	}
}

// TestSnapshotEveryRound snapshots and restores at every suspension point of
// a multi-round session, finishing each fork and requiring the same outcome.
func TestSnapshotEveryRound(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := feedback.WorstCase{}

	ref, err := NewStepSession(d, r, qc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeSignature(t, stepWithOracle(t, ref, oracle))

	s, err := NewStepSession(d, r, qc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	round, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	for round != nil {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := snap.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := UnmarshalSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		fork, err := Restore(decoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := outcomeSignature(t, finishWithOracle(t, fork, oracle))
		if !equalSignatures(want, got) {
			t.Fatalf("fork at round %d diverged\nwant: %v\ngot:  %v", round.Seq, want, got)
		}
		choice, ok, err := oracle.Choose(round.View)
		if err != nil || !ok {
			t.Fatal(err)
		}
		round, _, err = s.Feedback(choice)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := outcomeSignature(t, finishWithOracle(t, s, oracle)); !equalSignatures(want, got) {
		t.Fatalf("stepped-through session diverged: %v vs %v", want, got)
	}
}

// TestSnapshotNewAndDoneStates round-trips the terminal and initial states.
func TestSnapshotNewAndDoneStates(t *testing.T) {
	d, r := employeeDB(t)
	qc := paperCandidates()

	// New: restore then run normally.
	s, err := NewStepSession(d, r, qc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != "new" {
		t.Fatalf("state = %q, want new", snap.State)
	}
	restored, err := Restore(snap, feedback.WorstCase{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatalf("restored-new session failed: %+v", out)
	}

	// Done: outcome must survive the round-trip.
	snap2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.State != "done" {
		t.Fatalf("state = %q, want done", snap2.State)
	}
	data, err := snap2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Restore(decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	out2, done := again.Outcome()
	if !done {
		t.Fatal("restored-done session lost its outcome")
	}
	if !equalSignatures(outcomeSignature(t, out), outcomeSignature(t, out2)) {
		t.Errorf("outcome changed across restore:\n%v\n%v",
			outcomeSignature(t, out), outcomeSignature(t, out2))
	}
}

// TestRunResumesRestoredSession: Run on a session restored mid-round must
// continue from the pending round under its oracle, not fail on Start.
func TestRunResumesRestoredSession(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := feedback.Target{Query: qc[1]}

	ref, err := NewSession(d, r, qc, oracle, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewStepSession(d, r, qc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if round, err := s.Start(); err != nil || round == nil {
		t.Fatalf("expected a first round: %v", err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap, oracle)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Run()
	if err != nil {
		t.Fatalf("Run on restored session: %v", err)
	}
	if !equalSignatures(outcomeSignature(t, want), outcomeSignature(t, got)) {
		t.Errorf("restored Run outcome differs:\n%v\n%v",
			outcomeSignature(t, want), outcomeSignature(t, got))
	}
	// Run on an already-finished session just reports the outcome.
	again, err := restored.Run()
	if err != nil || again != got {
		t.Errorf("Run on finished session: %v %p %p", err, again, got)
	}
}

// TestSnapshotPreservesFailure: a fatally-failed session must restore as
// failed — engine failures must not masquerade as not-found outcomes.
func TestSnapshotPreservesFailure(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxIterations = 1
	s, err := NewStepSession(d, r, qc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	round, err := s.Start()
	if err != nil || round == nil {
		t.Fatal(err)
	}
	choice, _, _ := feedback.WorstCase{}.Choose(round.View)
	if _, _, err := s.Feedback(choice); err == nil {
		t.Fatal("expected MaxIterations failure")
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != "failed" || snap.Fatal == "" {
		t.Fatalf("snapshot state %q fatal %q, want failed", snap.State, snap.Fatal)
	}
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Done() || restored.Err() == nil {
		t.Errorf("restored session should be failed: done=%v err=%v",
			restored.Done(), restored.Err())
	}
	if _, ok := restored.Outcome(); ok {
		t.Error("restored failed session must not report an outcome")
	}
}

// TestSnapshotVersionGuard rejects snapshots from a different format
// version.
func TestSnapshotVersionGuard(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewStepSession(d, r, paperCandidates(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Version = SnapshotVersion + 1
	if _, err := Restore(snap, nil); err == nil {
		t.Error("version mismatch should be rejected")
	}
}
