package core

import "qfe/internal/obs"

// Pre-resolved session-level handles (DESIGN.md §13). Outcome counters are
// resolved from their vec once, here, never per session.
var (
	mSessionRounds = obs.NewSize("qfe_engine_session_rounds",
		"Feedback rounds to convergence per finished session.")
	mRoundGen = obs.NewLatency("qfe_engine_round_seconds",
		"Round production time (join + generator build + Generate).")
	mSessionOutcomes = obs.NewCounterVec("qfe_engine_sessions_total",
		"Finished sessions by outcome.", "outcome")

	mOutcomeIdentified = mSessionOutcomes.With("identified")
	mOutcomeAmbiguous  = mSessionOutcomes.With("ambiguous")
	mOutcomeNotFound   = mSessionOutcomes.With("notfound")
	mOutcomeFailed     = mSessionOutcomes.With("failed")
)
