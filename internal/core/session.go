// Package core implements the QFE driver (paper §2, Algorithm 1): starting
// from a database-result pair (D, R) and a candidate query set QC, it
// iteratively asks the Database Generator for a distinguishing database D',
// partitions QC by the candidates' results on D', obtains feedback on which
// result is correct, and prunes the rest — until a single candidate (or an
// equivalence class of provably indistinguishable candidates) remains.
//
// The driver also implements the §6.2 extension: candidates with different
// join schemas are winnowed group by group, largest group first.
//
// The session is a pausable state machine: Start computes the first feedback
// round and suspends; Feedback consumes a choice and either produces the next
// round or the final Outcome. Run wires the machine to a feedback.Oracle and
// drives it to completion — the blocking loop of the paper — while services
// can hold many suspended sessions and step each one as user responses
// arrive. A Session is not safe for concurrent use; callers that share one
// across goroutines must serialize access (internal/service does).
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/relation"
	"qfe/internal/tupleclass"
)

// Config tunes a session. Zero values select the paper's defaults.
type Config struct {
	// Gen configures the Database Generator (β, δ, search caps).
	Gen dbgen.Options
	// MaxIterations bounds the winnowing loop per join-schema group
	// (safety; the loop provably shrinks QC every round otherwise).
	MaxIterations int
	// MergeEquivalent pre-merges candidates that are indistinguishable over
	// the tuple-class space (default on; set MaxEquivClasses to bound the
	// truth-table enumeration).
	MergeEquivalent bool
	MaxEquivClasses int
	// Parallelism sets the worker count for the session's parallel loops —
	// the equivalence-class truth-table enumeration here and, unless
	// Gen.Parallelism overrides it, the Database Generator's candidate
	// evaluation, skyline enumeration and Algorithm 4 scoring. 0 selects
	// GOMAXPROCS; 1 forces the legacy serial path, which parallel runs
	// reproduce exactly whenever the δ budget does not truncate (see
	// dbgen.Options.Parallelism).
	Parallelism int
}

// DefaultConfig returns the paper's defaults (β = 1, scaled δ).
func DefaultConfig() Config {
	return Config{
		Gen:             dbgen.DefaultOptions(),
		MaxIterations:   64,
		MergeEquivalent: true,
		MaxEquivClasses: 200000,
	}
}

// IterationStats records one feedback round — the quantities of the paper's
// Table 1, plus the Table 7 breakdown.
type IterationStats struct {
	Iteration    int
	NumQueries   int // |QC| at the start of the round
	NumSubsets   int // k
	SkylinePairs int // |SP|
	Enumerated   int // (STC,DTC) pairs considered by Algorithm 3

	ExecTime       time.Duration // whole round
	Alg3Time       time.Duration
	Alg4Time       time.Duration
	ConcretizeTime time.Duration

	DBCost        int
	ResultCost    int
	AvgResultCost float64
	ChosenSubset  int
	ChosenSize    int
}

// Outcome is the result of a session run.
type Outcome struct {
	// Found reports whether feedback converged on a candidate.
	Found bool
	// Query is the identified target (nil when the remaining candidates are
	// mutually indistinguishable; see Remaining).
	Query *algebra.Query
	// Remaining lists the final candidate set, including all members of a
	// merged equivalence class.
	Remaining []*algebra.Query
	// Ambiguous marks a termination with >1 indistinguishable candidates.
	Ambiguous bool

	Iterations []IterationStats
	TotalTime  time.Duration
	// TotalModCost sums database and result modification costs over all
	// rounds (the "modification cost" of Tables 2, 3 and 6).
	TotalModCost int
	// QueryGenTime is the time attributed to candidate generation by the
	// caller (reported inside the first iteration in the paper's tables).
	QueryGenTime time.Duration
}

// NoneOfThese is the Feedback choice meaning "none of the presented results
// is correct" — the target query is outside the current candidate group
// (Algorithm 1's unstated escape hatch, §2 / §6.2).
const NoneOfThese = -1

// Round is one suspended feedback round: the modified database D' (as edits
// over D), the k distinct candidate results, and which queries produce each.
// The caller inspects it, obtains a choice, and resumes with
// Session.Feedback.
type Round struct {
	// Seq is the session-global round number, 1-based.
	Seq int
	// Iteration is the round number within the current join-schema group —
	// the Iteration of the matching IterationStats entry.
	Iteration int
	// Group and NumGroups locate the current join-schema group (§6.2).
	Group, NumGroups int
	// View carries everything the round presents: D', its edits over D, the
	// distinct results R₁..Rₖ and the query subsets producing them.
	View feedback.View
}

// state tracks the session's position in its lifecycle.
type state uint8

const (
	stateNew      state = iota // Start not yet called
	stateAwaiting              // a Round is pending feedback
	stateDone                  // outcome available (or session failed)
)

// Session drives Algorithm 1 for one (D, R, QC) instance.
type Session struct {
	DB     *db.Database
	R      *relation.Relation
	QC     []*algebra.Query
	Oracle feedback.Oracle
	Config Config

	joins map[string]*db.Joined

	// State machine.
	state      state
	fatal      error // terminal stepping failure; no outcome
	started    time.Time
	out        *Outcome
	groupKeys  []string
	groups     map[string][]*algebra.Query
	gi         int // index into groupKeys
	reps       []*algebra.Query
	members    map[string][]*algebra.Query
	groupIter  int
	seq        int
	pending    *Round
	pendingRes *dbgen.Result
	roundStart time.Time
}

// NewSession validates the inputs and prepares a session driven by an
// oracle (via Run). For the step API alone, use NewStepSession.
func NewSession(d *db.Database, r *relation.Relation, qc []*algebra.Query,
	oracle feedback.Oracle, cfg Config) (*Session, error) {
	if oracle == nil {
		return nil, errors.New("core: nil oracle")
	}
	s, err := NewStepSession(d, r, qc, cfg)
	if err != nil {
		return nil, err
	}
	s.Oracle = oracle
	return s, nil
}

// NewStepSession validates the inputs and prepares a session to be driven
// through the step API (Start / Feedback) without an oracle.
func NewStepSession(d *db.Database, r *relation.Relation, qc []*algebra.Query,
	cfg Config) (*Session, error) {
	if len(qc) == 0 {
		return nil, errors.New("core: empty candidate set")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 64
	}
	if cfg.MaxEquivClasses <= 0 {
		cfg.MaxEquivClasses = 200000
	}
	if cfg.Gen.Parallelism == 0 {
		cfg.Gen.Parallelism = cfg.Parallelism
	}
	return &Session{DB: d, R: r, QC: qc, Config: cfg,
		joins: map[string]*db.Joined{}}, nil
}

// Run executes Algorithm 1 to completion against the session's Oracle and
// returns the outcome. It is the blocking loop of the paper, re-expressed on
// the step API: every round is produced by Start/Feedback exactly as a
// stepping caller would see it.
func (s *Session) Run() (*Outcome, error) {
	if s.Oracle == nil {
		return nil, errors.New("core: Run requires an oracle; use Start/Feedback")
	}
	// Resume wherever the machine stands: fresh sessions start, restored
	// mid-round sessions continue from their pending round, finished ones
	// just report.
	var round *Round
	switch s.state {
	case stateNew:
		var err error
		round, err = s.Start()
		if err != nil {
			return nil, err
		}
	case stateAwaiting:
		round = s.pending
	case stateDone:
		if s.fatal != nil {
			return nil, fmt.Errorf("core: session failed: %w", s.fatal)
		}
		return s.out, nil
	}
	for round != nil {
		choice, ok, err := s.Oracle.Choose(round.View)
		if err != nil {
			return nil, err
		}
		if !ok {
			choice = NoneOfThese
		} else if choice < 0 {
			return nil, fmt.Errorf("core: oracle chose %d of %d results",
				choice, len(round.View.Results))
		}
		round, _, err = s.Feedback(choice)
		if err != nil {
			return nil, err
		}
	}
	out, done := s.Outcome()
	if !done {
		return nil, errors.New("core: internal: session stopped without outcome")
	}
	return out, nil
}

// Start begins the session and computes its first feedback round. A nil
// Round means the session finished without needing feedback (single
// candidate, or provably indistinguishable candidates); the result is then
// available from Outcome.
func (s *Session) Start() (*Round, error) {
	if s.state != stateNew {
		return nil, errors.New("core: session already started")
	}
	s.started = time.Now()
	s.out = &Outcome{}
	s.buildGroups()
	round, err := s.advance()
	if err != nil {
		s.fatal = err
		s.state = stateDone
		mOutcomeFailed.Inc()
		return nil, err
	}
	return round, nil
}

// buildGroups partitions QC by join schema, larger groups first (§6.2). It
// is deterministic in QC, which lets Restore rebuild the grouping instead of
// serializing it. JoinSchemaKey (like Key in beginGroup/finish and joinFor's
// cache key below) is memoised on the query, so the per-round winnowing loop
// no longer re-sorts and re-joins the table list on every lookup.
func (s *Session) buildGroups() {
	s.groups = map[string][]*algebra.Query{}
	s.groupKeys = nil
	for _, q := range s.QC {
		k := q.JoinSchemaKey()
		if _, ok := s.groups[k]; !ok {
			s.groupKeys = append(s.groupKeys, k)
		}
		s.groups[k] = append(s.groups[k], q)
	}
	sort.SliceStable(s.groupKeys, func(i, j int) bool {
		gi, gj := s.groups[s.groupKeys[i]], s.groups[s.groupKeys[j]]
		if len(gi) != len(gj) {
			return len(gi) > len(gj)
		}
		return s.groupKeys[i] < s.groupKeys[j]
	})
}

// Feedback resumes a suspended session with the user's choice: an index into
// the pending round's Results, or NoneOfThese. It returns the next round, or
// (nil, outcome) when the session finished. An out-of-range choice is an
// error and leaves the session suspended on the same round, so interactive
// callers can retry.
func (s *Session) Feedback(choice int) (*Round, *Outcome, error) {
	switch s.state {
	case stateNew:
		return nil, nil, errors.New("core: session not started")
	case stateDone:
		if s.fatal != nil {
			return nil, nil, fmt.Errorf("core: session failed: %w", s.fatal)
		}
		return nil, nil, errors.New("core: session already finished")
	}
	res := s.pendingRes
	if choice != NoneOfThese && (choice < 0 || choice >= len(res.Partition)) {
		return nil, nil, fmt.Errorf("core: oracle chose %d of %d results",
			choice, len(res.Partition))
	}

	stats := IterationStats{
		Iteration:      s.groupIter,
		NumQueries:     len(s.reps),
		NumSubsets:     len(res.Partition),
		SkylinePairs:   res.SkylinePairs,
		Enumerated:     res.EnumeratedPairs,
		ExecTime:       time.Since(s.roundStart),
		Alg3Time:       res.Alg3Time,
		Alg4Time:       res.Alg4Time,
		ConcretizeTime: res.ConcretizeTime,
		DBCost:         res.DBCost,
		ResultCost:     res.ResultCost,
		AvgResultCost:  res.AvgResultCost,
	}
	if choice == NoneOfThese {
		// None of the presented results is correct: the target is not in
		// this group (§2 / §6.2); stop winnowing it and move on.
		s.out.Iterations = append(s.out.Iterations, stats)
		s.out.TotalModCost += res.DBCost + res.ResultCost
		s.reps, s.members = nil, nil
		s.gi++
	} else {
		stats.ChosenSubset = choice
		stats.ChosenSize = len(res.Partition[choice])
		s.out.Iterations = append(s.out.Iterations, stats)
		s.out.TotalModCost += res.DBCost + res.ResultCost
		next := make([]*algebra.Query, 0, len(res.Partition[choice]))
		for _, qi := range res.Partition[choice] {
			next = append(next, s.reps[qi])
		}
		s.reps = next
	}
	s.pending, s.pendingRes = nil, nil

	round, err := s.advance()
	if err != nil {
		// The choice was consumed but the session cannot continue; it is
		// terminally failed (not suspended — there is no round to retry).
		s.fatal = err
		s.state = stateDone
		mOutcomeFailed.Inc()
		return nil, nil, err
	}
	if round != nil {
		return round, nil, nil
	}
	return nil, s.out, nil
}

// Pending returns the round awaiting feedback, or nil.
func (s *Session) Pending() *Round {
	return s.pending
}

// Seq returns the session-global number of the most recently generated
// round (0 before the first round). When the session is suspended this
// equals Pending().Seq; once it finishes, every round up to Seq has been
// answered. The service tier uses it to make feedback idempotent across
// crash-recovery replays.
func (s *Session) Seq() int { return s.seq }

// Done reports whether the session has finished (including by failure).
func (s *Session) Done() bool { return s.state == stateDone }

// Err returns the fatal stepping error of a failed session, or nil.
func (s *Session) Err() error { return s.fatal }

// Outcome returns the final outcome once the session has finished. A
// session that failed terminally (see Err) has no outcome.
func (s *Session) Outcome() (*Outcome, bool) {
	if s.state != stateDone || s.fatal != nil {
		return nil, false
	}
	return s.out, true
}

// advance moves the state machine forward until a round needs feedback
// (returning it) or the session completes (returning nil).
func (s *Session) advance() (*Round, error) {
	for {
		if s.reps == nil {
			if s.gi >= len(s.groupKeys) {
				// Every group exhausted without convergence: not found.
				mOutcomeNotFound.Inc()
				s.complete()
				return nil, nil
			}
			if err := s.beginGroup(s.groups[s.groupKeys[s.gi]]); err != nil {
				return nil, err
			}
		}
		if len(s.reps) <= 1 {
			s.finish()
			return nil, nil
		}
		s.groupIter++
		if s.groupIter > s.Config.MaxIterations {
			return nil, fmt.Errorf("core: exceeded %d iterations with %d candidates left",
				s.Config.MaxIterations, len(s.reps))
		}
		t0 := time.Now()
		joined, err := s.joinFor(s.reps[0])
		if err != nil {
			return nil, err
		}
		gen, err := dbgen.New(s.DB, joined, s.reps, s.R, s.Config.Gen)
		if err != nil {
			return nil, err
		}
		res, err := gen.Generate()
		if errors.Is(err, dbgen.ErrNoSplit) {
			// Remaining candidates cannot be separated: ambiguous success.
			s.finish()
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		mRoundGen.ObserveDuration(time.Since(t0))
		s.seq++
		s.pendingRes = res
		s.roundStart = t0
		s.pending = &Round{
			Seq:       s.seq,
			Iteration: s.groupIter,
			Group:     s.gi,
			NumGroups: len(s.groupKeys),
			View: feedback.View{
				Iteration: s.groupIter,
				BaseDB:    s.DB,
				BaseR:     s.R,
				NewDB:     res.DB,
				Edits:     res.Edits,
				Results:   res.Results,
				Groups:    res.Partition,
				Queries:   s.reps,
			},
		}
		s.state = stateAwaiting
		return s.pending, nil
	}
}

// beginGroup prepares winnowing of one join-schema group: computes (or
// reuses) its foreign-key join and pre-merges candidates that no reachable
// modification can distinguish.
func (s *Session) beginGroup(qc []*algebra.Query) error {
	joined, err := s.joinFor(qc[0])
	if err != nil {
		return err
	}
	s.groupIter = 0
	s.members = map[string][]*algebra.Query{}
	s.reps = qc
	if s.Config.MergeEquivalent && len(qc) > 1 {
		space, err := tupleclass.NewSpace(joined.Rel, qc)
		if err != nil {
			return err
		}
		// Same modification model as the Database Generator: join-key
		// columns are structural and never modified, so candidates that
		// differ only on them are indistinguishable by any reachable
		// database and merge here instead of burning winnowing rounds that
		// must end in ErrNoSplit.
		space.Freeze(joined.KeyCols)
		eq := space.IndistinguishableGroupsParallel(s.Config.MaxEquivClasses, s.Config.Parallelism)
		s.reps = s.reps[:0:0]
		for _, grp := range eq {
			rep := qc[grp[0]]
			s.reps = append(s.reps, rep)
			k := rep.Key()
			for _, qi := range grp {
				s.members[k] = append(s.members[k], qc[qi])
			}
		}
	} else {
		for _, q := range qc {
			s.members[q.Key()] = []*algebra.Query{q}
		}
	}
	return nil
}

// finish expands the surviving representatives into their equivalence-class
// members, fills the outcome and completes the session.
func (s *Session) finish() {
	var remaining []*algebra.Query
	for _, rep := range s.reps {
		ms := s.members[rep.Key()]
		if len(ms) == 0 {
			ms = []*algebra.Query{rep}
		}
		remaining = append(remaining, ms...)
	}
	s.out.Found = true
	s.out.Remaining = remaining
	if len(remaining) == 1 {
		s.out.Query = remaining[0]
		mOutcomeIdentified.Inc()
	} else {
		s.out.Ambiguous = true
		mOutcomeAmbiguous.Inc()
	}
	s.complete()
}

// complete stamps the total time and transitions to the terminal state.
func (s *Session) complete() {
	s.out.TotalTime = time.Since(s.started)
	mSessionRounds.Observe(int64(len(s.out.Iterations)))
	s.state = stateDone
	s.pending, s.pendingRes = nil, nil
}

// joinFor returns the (cached) foreign-key join for the query's schema.
// Because the per-round generators all receive this shared *db.Joined, its
// lazily-memoised ContentHash and Columnar views (the batch engine's
// dictionary-encoded scan input, DESIGN.md §9) are computed once per
// join-schema group and reused by every winnowing round of the group.
func (s *Session) joinFor(q *algebra.Query) (*db.Joined, error) {
	k := q.JoinSchemaKey()
	if j, ok := s.joins[k]; ok {
		return j, nil
	}
	j, err := db.Join(s.DB, q.Tables)
	if err != nil {
		return nil, err
	}
	s.joins[k] = j
	return j, nil
}
