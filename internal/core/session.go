// Package core implements the QFE driver (paper §2, Algorithm 1): starting
// from a database-result pair (D, R) and a candidate query set QC, it
// iteratively asks the Database Generator for a distinguishing database D',
// partitions QC by the candidates' results on D', obtains feedback on which
// result is correct, and prunes the rest — until a single candidate (or an
// equivalence class of provably indistinguishable candidates) remains.
//
// The driver also implements the §6.2 extension: candidates with different
// join schemas are winnowed group by group, largest group first.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/relation"
	"qfe/internal/tupleclass"
)

// Config tunes a session. Zero values select the paper's defaults.
type Config struct {
	// Gen configures the Database Generator (β, δ, search caps).
	Gen dbgen.Options
	// MaxIterations bounds the winnowing loop per join-schema group
	// (safety; the loop provably shrinks QC every round otherwise).
	MaxIterations int
	// MergeEquivalent pre-merges candidates that are indistinguishable over
	// the tuple-class space (default on; set MaxEquivClasses to bound the
	// truth-table enumeration).
	MergeEquivalent bool
	MaxEquivClasses int
	// Parallelism sets the worker count for the session's parallel loops —
	// the equivalence-class truth-table enumeration here and, unless
	// Gen.Parallelism overrides it, the Database Generator's candidate
	// evaluation, skyline enumeration and Algorithm 4 scoring. 0 selects
	// GOMAXPROCS; 1 forces the legacy serial path, which parallel runs
	// reproduce exactly whenever the δ budget does not truncate (see
	// dbgen.Options.Parallelism).
	Parallelism int
}

// DefaultConfig returns the paper's defaults (β = 1, scaled δ).
func DefaultConfig() Config {
	return Config{
		Gen:             dbgen.DefaultOptions(),
		MaxIterations:   64,
		MergeEquivalent: true,
		MaxEquivClasses: 200000,
	}
}

// IterationStats records one feedback round — the quantities of the paper's
// Table 1, plus the Table 7 breakdown.
type IterationStats struct {
	Iteration    int
	NumQueries   int // |QC| at the start of the round
	NumSubsets   int // k
	SkylinePairs int // |SP|
	Enumerated   int // (STC,DTC) pairs considered by Algorithm 3

	ExecTime       time.Duration // whole round
	Alg3Time       time.Duration
	Alg4Time       time.Duration
	ConcretizeTime time.Duration

	DBCost        int
	ResultCost    int
	AvgResultCost float64
	ChosenSubset  int
	ChosenSize    int
}

// Outcome is the result of a session run.
type Outcome struct {
	// Found reports whether feedback converged on a candidate.
	Found bool
	// Query is the identified target (nil when the remaining candidates are
	// mutually indistinguishable; see Remaining).
	Query *algebra.Query
	// Remaining lists the final candidate set, including all members of a
	// merged equivalence class.
	Remaining []*algebra.Query
	// Ambiguous marks a termination with >1 indistinguishable candidates.
	Ambiguous bool

	Iterations []IterationStats
	TotalTime  time.Duration
	// TotalModCost sums database and result modification costs over all
	// rounds (the "modification cost" of Tables 2, 3 and 6).
	TotalModCost int
	// QueryGenTime is the time attributed to candidate generation by the
	// caller (reported inside the first iteration in the paper's tables).
	QueryGenTime time.Duration
}

// Session drives Algorithm 1 for one (D, R, QC) instance.
type Session struct {
	DB     *db.Database
	R      *relation.Relation
	QC     []*algebra.Query
	Oracle feedback.Oracle
	Config Config

	joins map[string]*db.Joined
}

// NewSession validates the inputs and prepares a session.
func NewSession(d *db.Database, r *relation.Relation, qc []*algebra.Query,
	oracle feedback.Oracle, cfg Config) (*Session, error) {
	if len(qc) == 0 {
		return nil, errors.New("core: empty candidate set")
	}
	if oracle == nil {
		return nil, errors.New("core: nil oracle")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 64
	}
	if cfg.MaxEquivClasses <= 0 {
		cfg.MaxEquivClasses = 200000
	}
	if cfg.Gen.Parallelism == 0 {
		cfg.Gen.Parallelism = cfg.Parallelism
	}
	return &Session{DB: d, R: r, QC: qc, Oracle: oracle, Config: cfg,
		joins: map[string]*db.Joined{}}, nil
}

// Run executes Algorithm 1 and returns the outcome.
func (s *Session) Run() (*Outcome, error) {
	start := time.Now()
	out := &Outcome{}

	// §6.2: group candidates by join schema, process larger groups first.
	groups := map[string][]*algebra.Query{}
	var keys []string
	for _, q := range s.QC {
		k := q.JoinSchemaKey()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], q)
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})

	for _, k := range keys {
		found, err := s.runGroup(groups[k], out)
		if err != nil {
			return nil, err
		}
		if found {
			out.Found = true
			break
		}
	}
	out.TotalTime = time.Since(start)
	return out, nil
}

// runGroup winnows one join-schema group. It returns true when feedback
// converged inside this group (target identified or provably ambiguous).
func (s *Session) runGroup(qc []*algebra.Query, out *Outcome) (bool, error) {
	joined, err := s.joinFor(qc[0])
	if err != nil {
		return false, err
	}

	// Merge candidates that no reachable modification can distinguish.
	members := map[string][]*algebra.Query{}
	reps := qc
	if s.Config.MergeEquivalent && len(qc) > 1 {
		space, err := tupleclass.NewSpace(joined.Rel, qc)
		if err != nil {
			return false, err
		}
		eq := space.IndistinguishableGroupsParallel(s.Config.MaxEquivClasses, s.Config.Parallelism)
		reps = reps[:0:0]
		for _, grp := range eq {
			rep := qc[grp[0]]
			reps = append(reps, rep)
			k := rep.Key()
			for _, qi := range grp {
				members[k] = append(members[k], qc[qi])
			}
		}
	} else {
		for _, q := range qc {
			members[q.Key()] = []*algebra.Query{q}
		}
	}

	for iter := 1; len(reps) > 1; iter++ {
		if iter > s.Config.MaxIterations {
			return false, fmt.Errorf("core: exceeded %d iterations with %d candidates left",
				s.Config.MaxIterations, len(reps))
		}
		t0 := time.Now()
		gen, err := dbgen.New(s.DB, joined, reps, s.R, s.Config.Gen)
		if err != nil {
			return false, err
		}
		res, err := gen.Generate()
		if errors.Is(err, dbgen.ErrNoSplit) {
			// Remaining candidates cannot be separated: ambiguous success.
			s.finish(out, reps, members)
			return true, nil
		}
		if err != nil {
			return false, err
		}

		view := feedback.View{
			Iteration: iter,
			BaseDB:    s.DB,
			BaseR:     s.R,
			NewDB:     res.DB,
			Edits:     res.Edits,
			Results:   res.Results,
			Groups:    res.Partition,
			Queries:   reps,
		}
		choice, ok, err := s.Oracle.Choose(view)
		if err != nil {
			return false, err
		}
		stats := IterationStats{
			Iteration:      iter,
			NumQueries:     len(reps),
			NumSubsets:     len(res.Partition),
			SkylinePairs:   res.SkylinePairs,
			Enumerated:     res.EnumeratedPairs,
			ExecTime:       time.Since(t0),
			Alg3Time:       res.Alg3Time,
			Alg4Time:       res.Alg4Time,
			ConcretizeTime: res.ConcretizeTime,
			DBCost:         res.DBCost,
			ResultCost:     res.ResultCost,
			AvgResultCost:  res.AvgResultCost,
		}
		if !ok {
			// None of the presented results is correct: the target is not
			// in this group (§2 / §6.2); stop winnowing it.
			out.Iterations = append(out.Iterations, stats)
			out.TotalModCost += res.DBCost + res.ResultCost
			return false, nil
		}
		if choice < 0 || choice >= len(res.Partition) {
			return false, fmt.Errorf("core: oracle chose %d of %d results", choice, len(res.Partition))
		}
		stats.ChosenSubset = choice
		stats.ChosenSize = len(res.Partition[choice])
		out.Iterations = append(out.Iterations, stats)
		out.TotalModCost += res.DBCost + res.ResultCost

		next := make([]*algebra.Query, 0, len(res.Partition[choice]))
		for _, qi := range res.Partition[choice] {
			next = append(next, reps[qi])
		}
		reps = next
	}
	s.finish(out, reps, members)
	return true, nil
}

// finish expands the surviving representatives into their equivalence-class
// members and fills the outcome.
func (s *Session) finish(out *Outcome, reps []*algebra.Query, members map[string][]*algebra.Query) {
	var remaining []*algebra.Query
	for _, rep := range reps {
		ms := members[rep.Key()]
		if len(ms) == 0 {
			ms = []*algebra.Query{rep}
		}
		remaining = append(remaining, ms...)
	}
	out.Remaining = remaining
	if len(remaining) == 1 {
		out.Query = remaining[0]
	} else {
		out.Ambiguous = true
	}
}

func (s *Session) joinFor(q *algebra.Query) (*db.Joined, error) {
	k := q.JoinSchemaKey()
	if j, ok := s.joins[k]; ok {
		return j, nil
	}
	j, err := db.Join(s.DB, q.Tables)
	if err != nil {
		return nil, err
	}
	s.joins[k] = j
	return j, nil
}
