package core

import (
	"runtime"
	"testing"

	"qfe/internal/dbgen"
	"qfe/internal/evalcache"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
)

// outcomeSignature projects an Outcome onto its deterministic content: the
// identified query, the surviving candidate set and the per-round |QC| / k /
// chosen-subset trajectory (the Table 1 quantities, minus wall-clock times).
func outcomeSignature(t *testing.T, out *Outcome) []any {
	t.Helper()
	sig := []any{out.Found, out.Ambiguous, out.TotalModCost}
	if out.Query != nil {
		sig = append(sig, out.Query.Key())
	}
	for _, q := range out.Remaining {
		sig = append(sig, q.Key())
	}
	for _, it := range out.Iterations {
		sig = append(sig, it.NumQueries, it.NumSubsets, it.SkylinePairs,
			it.Enumerated, it.DBCost, it.ResultCost, it.ChosenSubset, it.ChosenSize)
	}
	return sig
}

func equalSignatures(a, b []any) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionParallelMatchesSerial runs complete winnowing sessions — QBO
// candidates, worst-case and target feedback — at Parallelism 1 and at every
// worker count in {2, 4, 8, GOMAXPROCS} and asserts identical outcomes: same
// chosen query, same per-round |QC| trajectory, same costs. Worker counts
// above the CPU count are deliberate: oversubscription shuffles execution
// interleavings without being allowed to change results. Under -race this
// doubles as the concurrency-safety test for the whole engine.
func TestSessionParallelMatchesSerial(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qc) < 3 {
		t.Fatalf("too few candidates: %d", len(qc))
	}

	run := func(parallelism int, oracle feedback.Oracle) []any {
		cfg := testConfig()
		cfg.Parallelism = parallelism
		// A private cache per run: hits must never change outcomes, but a
		// fresh cache proves the parallel run computes everything itself.
		cfg.Gen.Cache = evalcache.New(1024)
		cfg.Gen.Budget = dbgen.Budget{MaxPairs: 100000}
		s, err := NewSession(d, r, qc, oracle, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeSignature(t, out)
	}

	ncpu := runtime.GOMAXPROCS(0)
	for _, oracle := range []feedback.Oracle{
		feedback.WorstCase{},
		feedback.Target{Query: qc[len(qc)/2]},
	} {
		serial := run(1, oracle)
		for _, p := range []int{2, 4, 8, ncpu} {
			parallel := run(p, oracle)
			if !equalSignatures(serial, parallel) {
				t.Errorf("oracle %T parallelism %d: outcome differs\nserial:   %v\nparallel: %v",
					oracle, p, serial, parallel)
			}
		}
	}
}

// TestSessionWarmCacheMatchesCold re-runs the same session against a shared
// warm cache and asserts the outcome is unchanged — memoisation must be
// invisible to results, only to timing.
func TestSessionWarmCacheMatchesCold(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := evalcache.New(1024)
	run := func() []any {
		cfg := testConfig()
		cfg.Gen.Cache = cache
		s, err := NewSession(d, r, qc, feedback.WorstCase{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeSignature(t, out)
	}
	cold := run()
	if cache.Stats().Misses == 0 {
		t.Fatal("cold run should populate the cache")
	}
	warm := run()
	if cache.Stats().Hits == 0 {
		t.Fatal("warm run should hit the cache")
	}
	if !equalSignatures(cold, warm) {
		t.Errorf("warm-cache outcome differs\ncold: %v\nwarm: %v", cold, warm)
	}
}
