package core

import (
	"strings"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
	"qfe/internal/relation"
)

// stepWithOracle drives a session through the public step API using an
// oracle for choices — the loop a service client would run, written out
// explicitly so the tests cover Start/Feedback directly rather than Run.
func stepWithOracle(t *testing.T, s *Session, oracle feedback.Oracle) *Outcome {
	t.Helper()
	round, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	for round != nil {
		choice, ok, err := oracle.Choose(round.View)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			choice = NoneOfThese
		}
		var out *Outcome
		round, out, err = s.Feedback(choice)
		if err != nil {
			t.Fatal(err)
		}
		if round == nil {
			if out == nil {
				t.Fatal("session ended without outcome")
			}
			return out
		}
	}
	out, done := s.Outcome()
	if !done {
		t.Fatal("no outcome after Start returned nil round")
	}
	return out
}

// TestStepMatchesRun drives identical sessions once through Run (oracle
// loop) and once through explicit Start/Feedback stepping, for target and
// worst-case feedback, and requires identical outcomes.
func TestStepMatchesRun(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracles := []feedback.Oracle{
		feedback.WorstCase{},
		feedback.Target{Query: qc[0]},
		feedback.Target{Query: qc[len(qc)/2]},
	}
	for _, oracle := range oracles {
		sr, err := NewSession(d, r, qc, oracle, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		runOut, err := sr.Run()
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewStepSession(d, r, qc, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		stepOut := stepWithOracle(t, ss, oracle)
		if !equalSignatures(outcomeSignature(t, runOut), outcomeSignature(t, stepOut)) {
			t.Errorf("oracle %T: step outcome differs from Run\nrun:  %v\nstep: %v",
				oracle, outcomeSignature(t, runOut), outcomeSignature(t, stepOut))
		}
	}
}

// TestStepRoundContents checks that each suspended round exposes the same
// view an oracle would have seen: consistent partition/results/queries and
// monotonically shrinking candidate sets on target feedback.
func TestStepRoundContents(t *testing.T) {
	d, r := employeeDB(t)
	qc := paperCandidates()
	s, err := NewStepSession(d, r, qc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := feedback.Target{Query: qc[1]}
	round, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	seq, prevQueries := 0, len(qc)+1
	for round != nil {
		seq++
		if round.Seq != seq {
			t.Errorf("round %d: Seq = %d", seq, round.Seq)
		}
		if len(round.View.Results) != len(round.View.Groups) {
			t.Fatalf("round %d: %d results for %d groups", seq,
				len(round.View.Results), len(round.View.Groups))
		}
		if len(round.View.Results) < 2 {
			t.Errorf("round %d: fewer than 2 distinct results", seq)
		}
		if len(round.View.Queries) >= prevQueries {
			t.Errorf("round %d: candidate count did not shrink: %d -> %d",
				seq, prevQueries, len(round.View.Queries))
		}
		prevQueries = len(round.View.Queries)
		if len(round.View.Edits) == 0 {
			t.Errorf("round %d: no database edits presented", seq)
		}
		if s.Pending() != round {
			t.Errorf("round %d: Pending() does not return the suspended round", seq)
		}
		choice, ok, err := oracle.Choose(round.View)
		if err != nil || !ok {
			t.Fatalf("target oracle failed: %v ok=%v", err, ok)
		}
		round, _, err = s.Feedback(choice)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, done := s.Outcome()
	if !done || !out.Found {
		t.Fatalf("session did not converge: %+v", out)
	}
	if out.Query == nil || out.Query.Name != "Q2" {
		t.Errorf("identified %v, want Q2", out.Query)
	}
	if !s.Done() || s.Pending() != nil {
		t.Error("terminal session should be Done with no pending round")
	}
}

// TestFeedbackInvalidChoiceKeepsSessionSuspended: an out-of-range choice is
// an error but must not corrupt the machine — the same round stays pending
// and a valid retry succeeds (the HTTP service depends on this).
func TestFeedbackInvalidChoiceKeepsSessionSuspended(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewStepSession(d, r, paperCandidates(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	round, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	if round == nil {
		t.Fatal("expected a pending round")
	}
	if _, _, err := s.Feedback(len(round.View.Results) + 3); err == nil {
		t.Fatal("out-of-range choice should error")
	} else if !strings.Contains(err.Error(), "chose") {
		t.Errorf("unexpected error: %v", err)
	}
	if s.Pending() == nil {
		t.Fatal("invalid choice must leave the round pending")
	}
	if _, _, err := s.Feedback(-7); err == nil {
		t.Fatal("negative non-sentinel choice should error")
	}
	// Valid retry proceeds.
	if _, _, err := s.Feedback(0); err != nil {
		t.Fatal(err)
	}
}

// TestStepLifecycleErrors: Feedback before Start, double Start, Feedback
// after completion.
func TestStepLifecycleErrors(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewStepSession(d, r, paperCandidates(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Feedback(0); err == nil {
		t.Error("Feedback before Start should error")
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err == nil {
		t.Error("second Start should error")
	}
	oracle := feedback.WorstCase{}
	for s.Pending() != nil {
		choice, _, _ := oracle.Choose(s.Pending().View)
		if _, _, err := s.Feedback(choice); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Feedback(0); err == nil {
		t.Error("Feedback after completion should error")
	}
}

// TestStepNoneOfTheseCrossesGroups reuses the §6.2 two-group scenario: the
// target lives in the second join-schema group, so the step caller answers
// NoneOfThese for the first group's rounds and the machine must move on.
func TestStepNoneOfTheseCrossesGroups(t *testing.T) {
	d, r, qc, target := twoGroupScenario(t)
	s, err := NewStepSession(d, r, qc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := feedback.Target{Query: target}
	sawSecondGroup := false
	round, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	for round != nil {
		if round.Group > 0 {
			sawSecondGroup = true
		}
		choice, ok, err := oracle.Choose(round.View)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			choice = NoneOfThese
		}
		round, _, err = s.Feedback(choice)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, done := s.Outcome()
	if !done || !out.Found {
		t.Fatalf("target not found across groups: %+v", out)
	}
	found := false
	for _, q := range out.Remaining {
		if q.Name == target.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("%s should survive, got %v", target.Name, out.Remaining)
	}
	_ = sawSecondGroup // the target's group position depends on sort order; found is the invariant
}

// twoGroupScenario builds the §6.2 setup of TestJoinSchemaGroups: two
// single-table candidates and two join candidates, target in the join group.
func twoGroupScenario(t *testing.T) (*db.Database, *relation.Relation, []*algebra.Query, *algebra.Query) {
	t.Helper()
	d := db.New()
	dept := relation.New("Dept", relation.NewSchema(
		"did", relation.KindInt, "dname", relation.KindString, "floor", relation.KindInt))
	dept.Append(relation.NewTuple(1, "IT", 3), relation.NewTuple(2, "Sales", 1))
	emp := relation.New("Emp", relation.NewSchema(
		"eid", relation.KindInt, "ename", relation.KindString, "did", relation.KindInt,
		"age", relation.KindInt))
	emp.Append(
		relation.NewTuple(1, "Bob", 1, 30),
		relation.NewTuple(2, "Alice", 2, 40),
		relation.NewTuple(3, "Darren", 1, 35),
	)
	d.MustAddTable(dept)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Dept", "did")
	d.AddPrimaryKey("Emp", "eid")
	d.AddForeignKey("Emp", []string{"did"}, "Dept", []string{"did"})
	r := relation.New("R", relation.NewSchema("ename", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))

	singleA := &algebra.Query{Name: "S1", Tables: []string{"Emp"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Emp.did", algebra.OpEQ, relation.Int(1))}}}
	singleB := &algebra.Query{Name: "S2", Tables: []string{"Emp"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Emp.age", algebra.OpLE, relation.Int(35))}}}
	joinA := &algebra.Query{Name: "J1", Tables: []string{"Emp", "Dept"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Dept.dname", algebra.OpEQ, relation.Str("IT"))}}}
	joinB := &algebra.Query{Name: "J2", Tables: []string{"Emp", "Dept"}, Projection: []string{"Emp.ename"},
		Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("Dept.floor", algebra.OpGE, relation.Int(2))}}}
	return d, r, []*algebra.Query{singleA, singleB, joinA, joinB}, joinA
}

// TestStepSingleCandidate: Start must complete immediately with no rounds.
func TestStepSingleCandidate(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewStepSession(d, r, paperCandidates()[:1], testConfig())
	if err != nil {
		t.Fatal(err)
	}
	round, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	if round != nil {
		t.Fatal("single candidate should not produce a round")
	}
	out, done := s.Outcome()
	if !done || !out.Found || out.Query == nil || len(out.Iterations) != 0 {
		t.Errorf("unexpected outcome: %+v", out)
	}
}

// TestFatalAdvanceErrorTerminatesSession: when the engine fails after a
// choice is consumed (here: MaxIterations exhausted), the session must end
// in a terminal failed state — retrying Feedback errors cleanly instead of
// panicking, and no outcome is reported.
func TestFatalAdvanceErrorTerminatesSession(t *testing.T) {
	d, r := employeeDB(t)
	qc, err := qbo.Generate(d, r, qbo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxIterations = 1 // force the second round over the limit
	s, err := NewStepSession(d, r, qc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	round, err := s.Start()
	if err != nil || round == nil {
		t.Fatalf("expected a first round: %v", err)
	}
	// Choose the largest subset so >1 candidate survives into round 2.
	choice, _, _ := feedback.WorstCase{}.Choose(round.View)
	if _, _, err := s.Feedback(choice); err == nil {
		t.Fatal("exceeding MaxIterations should error")
	}
	if !s.Done() || s.Err() == nil {
		t.Fatalf("session should be terminally failed: done=%v err=%v", s.Done(), s.Err())
	}
	if _, ok := s.Outcome(); ok {
		t.Error("failed session must not report an outcome")
	}
	// Retry must error, not panic.
	if _, _, err := s.Feedback(0); err == nil {
		t.Error("Feedback on a failed session should error")
	}
}

// TestRunWithoutOracle: a step session has no oracle, so Run must refuse.
func TestRunWithoutOracle(t *testing.T) {
	d, r := employeeDB(t)
	s, err := NewStepSession(d, r, paperCandidates(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("Run without oracle should error")
	}
}
