// Package experiments regenerates every table and measured experiment of
// the paper's evaluation (§7): Tables 1–7 plus the three §7.7 studies
// (initial-pair size, active-domain entropy, user study). Each experiment
// returns text tables whose rows mirror the paper's; EXPERIMENTS.md records
// paper-vs-measured values. DESIGN.md §3 is the experiment index.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/datasets"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
	"qfe/internal/relation"
)

// DeltaScale converts the paper's δ values (seconds, for 2015 C++/MySQL) to
// this engine's budgets: the paper's 1 s default maps to 10 ms (DESIGN.md
// §2 documents the substitution).
const DeltaScale = 10 * time.Millisecond

// TextTable is a printable experiment result.
type TextTable struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *TextTable) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scenario bundles one experiment instance: a database, the target query,
// its result R, and the candidate set produced by the Query Generator.
type Scenario struct {
	Name   string
	DB     *db.Database
	Target *algebra.Query
	R      *relation.Relation
	QC     []*algebra.Query
	// QGenTime is the Query Generator's runtime (part of the first
	// iteration's reported time, as in the paper's Table 1).
	QGenTime time.Duration
}

// qboConfig sizes candidate generation to the paper's |QC| ≈ 19.
func qboConfig(maxCandidates int) qbo.Config {
	cfg := qbo.DefaultConfig()
	if maxCandidates > 0 {
		cfg.MaxCandidates = maxCandidates
	}
	return cfg
}

// buildScenario evaluates the target and reverse-engineers candidates.
func buildScenario(name string, d *db.Database, target *algebra.Query, maxCandidates int) (*Scenario, error) {
	r, err := target.Evaluate(d)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	t0 := time.Now()
	qc, err := qbo.Generate(d, r, qboConfig(maxCandidates))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	qgen := time.Since(t0)
	if len(qc) == 0 {
		return nil, fmt.Errorf("experiments: %s: query generator produced no candidates", name)
	}
	return &Scenario{Name: name, DB: d, Target: target, R: r, QC: qc, QGenTime: qgen}, nil
}

// ScientificScenario builds the scenario for the scientific database's Q1 or
// Q2 with the paper-sized candidate set.
func ScientificScenario(qname string, maxCandidates int) (*Scenario, error) {
	s := datasets.NewScientific()
	switch qname {
	case "Q1":
		return buildScenario("scientific/"+qname, s.DB, s.Q1, maxCandidates)
	case "Q2":
		return buildScenario("scientific/"+qname, s.DB, s.Q2, maxCandidates)
	default:
		return nil, fmt.Errorf("experiments: unknown scientific query %q", qname)
	}
}

// BaseballScenario builds the scenario for Q3..Q6.
func BaseballScenario(qname string, maxCandidates int) (*Scenario, error) {
	b := datasets.NewBaseball()
	m := map[string]*algebra.Query{"Q3": b.Q3, "Q4": b.Q4, "Q5": b.Q5, "Q6": b.Q6}
	q, ok := m[qname]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown baseball query %q", qname)
	}
	return buildScenario("baseball/"+qname, b.DB, q, maxCandidates)
}

// sessionConfig is the experiments' default core configuration: β = 1 and
// the scaled δ = "1 s".
func sessionConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Gen.Budget = dbgen.Budget{MaxDuration: DeltaScale}
	return cfg
}

// Run executes one QFE session over the scenario with worst-case feedback
// (the paper's default automation).
func (s *Scenario) Run(cfg core.Config, oracle feedback.Oracle) (*core.Outcome, error) {
	if oracle == nil {
		oracle = feedback.WorstCase{}
	}
	sess, err := core.NewSession(s.DB, s.R, s.QC, oracle, cfg)
	if err != nil {
		return nil, err
	}
	out, err := sess.Run()
	if err != nil {
		return nil, err
	}
	out.QueryGenTime = s.QGenTime
	return out, nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
