package experiments

import (
	"strings"
	"testing"

	"qfe/internal/feedback"
)

func TestTextTableRendering(t *testing.T) {
	tt := &TextTable{
		Title:  "demo",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"a", "1"}, {"bbb", "22"}},
	}
	s := tt.String()
	for _, want := range []string{"demo", "col", "bbb", "22", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestScientificScenario(t *testing.T) {
	sc, err := ScientificScenario("Q2", 19)
	if err != nil {
		t.Fatal(err)
	}
	if sc.R.Len() != 6 {
		t.Errorf("|R| = %d, want 6", sc.R.Len())
	}
	if len(sc.QC) == 0 || len(sc.QC) > 19 {
		t.Errorf("|QC| = %d, want 1..19", len(sc.QC))
	}
	if _, err := ScientificScenario("Q9", 19); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestBaseballScenario(t *testing.T) {
	sc, err := BaseballScenario("Q3", 19)
	if err != nil {
		t.Fatal(err)
	}
	if sc.R.Len() != 5 {
		t.Errorf("|R| = %d, want 5", sc.R.Len())
	}
	if _, err := BaseballScenario("Q9", 19); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tab, err := Table1("Q2")
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: several iterations, every row filled, |QC| column one
	// shrinks monotonically.
	if len(tab.Header) < 3 {
		t.Fatalf("expected ≥2 iterations, header %v", tab.Header)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("expected 7 stat rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if cell == "" {
				t.Errorf("row %s has empty cell %d", row[0], i)
			}
		}
	}
}

func TestUserStudyDirectionMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, results, err := UserStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 18 { // 3 users × 3 targets × 2 strategies
		t.Fatalf("results = %d, want 18", len(results))
	}
	totals := map[string]float64{}
	for _, r := range results {
		if !r.Found {
			t.Errorf("%s/%s/%s did not identify the target", r.User, r.Target, r.Strategy)
		}
		totals[r.Strategy] += r.UserTime + r.ExecTime
	}
	// Paper: the max-partitions alternative costs more total time (QFE up
	// to 1.5× faster).
	if totals["QFE-cost-model"] >= totals["max-partitions"] {
		t.Errorf("cost model should beat max-partitions: %v", totals)
	}
}

func TestInitialPairSizeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tab, err := InitialPairSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 datasets, got %d", len(tab.Rows))
	}
	// Monotone |R| growth (the Q(Di) ⊆ Q(Di+1) requirement).
	prev := -1
	for _, row := range tab.Rows {
		var n int
		if _, err := fmtSscan(row[2], &n); err != nil {
			t.Fatalf("bad |R| cell %q", row[2])
		}
		if n < prev {
			t.Errorf("|R| not monotone: %v", tab.Rows)
		}
		prev = n
	}
}

// fmtSscan is a tiny indirection so the test reads naturally.
func fmtSscan(s string, n *int) (int, error) {
	return sscan(s, n)
}

func sscan(s string, n *int) (int, error) {
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		v = v*10 + int(c-'0')
	}
	*n = v
	return 1, nil
}

var errBadInt = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "not an int" }

func TestScenarioRunWithTargetOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	sc, err := ScientificScenario("Q2", 10)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Run(sessionConfig(), feedback.Target{Query: sc.Target})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Error("target-following feedback should converge")
	}
}
