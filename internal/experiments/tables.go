package experiments

import (
	"fmt"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
)

// Table1 reproduces the paper's Table 1: per-round statistics for Q1 and Q2
// on the scientific database under worst-case feedback (β = 1, default δ).
// Rows: # of queries, # of query subsets, # of skyline pairs, execution
// time, dbCost, resultCost, avgResultCost — one column per iteration.
func Table1(qname string) (*TextTable, error) {
	sc, err := ScientificScenario(qname, 19)
	if err != nil {
		return nil, err
	}
	out, err := sc.Run(sessionConfig(), feedback.WorstCase{})
	if err != nil {
		return nil, err
	}
	return perRoundTable(fmt.Sprintf("Table 1: per-round statistics for %s (|QC|=%d, worst-case feedback)",
		qname, len(sc.QC)), out), nil
}

// perRoundTable lays iterations out as columns, like the paper's Table 1.
func perRoundTable(title string, out *core.Outcome) *TextTable {
	n := len(out.Iterations)
	header := make([]string, n+1)
	header[0] = "Iteration No."
	for i := 0; i < n; i++ {
		header[i+1] = itoa(i + 1)
	}
	rowNames := []string{"# of queries", "# of query subsets", "# of skyline pairs",
		"Execution time", "dbCost", "resultCost", "avgResultCost"}
	rows := make([][]string, len(rowNames))
	for ri := range rows {
		rows[ri] = make([]string, n+1)
		rows[ri][0] = rowNames[ri]
	}
	for i, it := range out.Iterations {
		exec := it.ExecTime
		if i == 0 {
			exec += out.QueryGenTime // the paper folds query generation into round 1
		}
		rows[0][i+1] = itoa(it.NumQueries)
		rows[1][i+1] = itoa(it.NumSubsets)
		rows[2][i+1] = itoa(it.SkylinePairs)
		rows[3][i+1] = fmtDur(exec)
		rows[4][i+1] = itoa(it.DBCost)
		rows[5][i+1] = itoa(it.ResultCost)
		rows[6][i+1] = f2(it.AvgResultCost)
	}
	return &TextTable{Title: title, Header: header, Rows: rows}
}

// Table2 reproduces Table 2: the effect of the scale factor β ∈ {1..5} on
// the number of iterations and the total modification cost for Q3–Q6 on the
// baseball database.
func Table2() (*TextTable, error) {
	betas := []float64{1, 2, 3, 4, 5}
	t := &TextTable{
		Title:  "Table 2: effect of β (baseball): iterations | modification cost",
		Header: []string{"Query", "β=1", "β=2", "β=3", "β=4", "β=5"},
	}
	for _, qname := range []string{"Q3", "Q4", "Q5", "Q6"} {
		sc, err := BaseballScenario(qname, 19)
		if err != nil {
			return nil, err
		}
		row := []string{qname}
		for _, beta := range betas {
			cfg := sessionConfig()
			cfg.Gen.Cost.Beta = beta
			out, err := sc.Run(cfg, feedback.WorstCase{})
			if err != nil {
				return nil, fmt.Errorf("%s β=%v: %w", qname, beta, err)
			}
			row = append(row, fmt.Sprintf("%d | %d", len(out.Iterations), out.TotalModCost))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 reproduces Table 3: the effect of the time threshold δ on the
// number of iterations, modification cost and execution time for Q1 and Q2
// (scientific). The paper sweeps 0.1–10 s; our scaled engine sweeps the
// same ratios around the scaled default (see DeltaScale).
func Table3(qname string) (*TextTable, error) {
	sc, err := ScientificScenario(qname, 19)
	if err != nil {
		return nil, err
	}
	ratios := []float64{0.1, 0.2, 0.5, 1, 2, 5, 10} // × the paper's 1 s default
	t := &TextTable{
		Title:  fmt.Sprintf("Table 3: effect of δ on %s (δ columns in paper-equivalent seconds)", qname),
		Header: []string{"δ (paper s)", "# of iterations", "Modification cost", "Execution time"},
	}
	for _, ratio := range ratios {
		cfg := sessionConfig()
		cfg.Gen.Budget = dbgen.Budget{MaxDuration: time.Duration(float64(DeltaScale) * ratio)}
		out, err := sc.Run(cfg, feedback.WorstCase{})
		if err != nil {
			return nil, fmt.Errorf("δ ratio %v: %w", ratio, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", ratio),
			itoa(len(out.Iterations)),
			itoa(out.TotalModCost),
			fmtDur(out.TotalTime),
		})
	}
	return t, nil
}

// Table4 reproduces Table 4: the per-iteration skyline size |SP| and the
// execution time of Algorithm 4 for Q1 and Q2 (scientific).
func Table4(qname string) (*TextTable, error) {
	sc, err := ScientificScenario(qname, 19)
	if err != nil {
		return nil, err
	}
	out, err := sc.Run(sessionConfig(), feedback.WorstCase{})
	if err != nil {
		return nil, err
	}
	n := len(out.Iterations)
	header := make([]string, n+1)
	header[0] = "Iteration No."
	for i := 0; i < n; i++ {
		header[i+1] = itoa(i + 1)
	}
	spRow := make([]string, n+1)
	timeRow := make([]string, n+1)
	spRow[0], timeRow[0] = "# of skyline pairs", "Alg.4 exec. time"
	for i, it := range out.Iterations {
		spRow[i+1] = itoa(it.SkylinePairs)
		timeRow[i+1] = fmtMs(it.Alg4Time)
	}
	return &TextTable{
		Title:  fmt.Sprintf("Table 4: Algorithm 4 per-iteration performance for %s", qname),
		Header: header,
		Rows:   [][]string{spRow, timeRow},
	}, nil
}

// Table5 reproduces Table 5: Algorithm 4's execution time as |SP| grows to
// {200, 400, 600, 800, 1000} artificially enlarged skyline sets (scientific
// Q1 state, as in the paper's 2nd-iteration setup).
func Table5() (*TextTable, error) {
	sc, err := ScientificScenario("Q1", 19)
	if err != nil {
		return nil, err
	}
	joined, err := joinForScenario(sc)
	if err != nil {
		return nil, err
	}
	t := &TextTable{
		Title:  "Table 5: Algorithm 4 execution time for varying |SP|",
		Header: []string{"# of skyline pairs", "Exec. time"},
	}
	for _, n := range []int{200, 400, 600, 800, 1000} {
		// The paper runs Algorithm 4 uncapped and observes superlinear
		// growth; our implementation carries safety caps, so the evaluation
		// budget is scaled with |SP| to preserve the growth shape while
		// keeping the experiment re-runnable (see EXPERIMENTS.md).
		opts := sessionConfig().Gen
		opts.MaxFrontier = 512
		opts.MaxSetsEvaluated = 600 * n
		gen, err := dbgen.New(sc.DB, joined, sc.QC, sc.R, opts)
		if err != nil {
			return nil, err
		}
		_, stats := gen.SkylinePairs()
		sp := gen.EnumerateScoredPairs(n)
		t0 := time.Now()
		sets := gen.PickSubsets(sp, stats.X)
		el := time.Since(t0)
		if len(sets) == 0 {
			return nil, fmt.Errorf("experiments: table5: no candidate sets for |SP|=%d", len(sp))
		}
		t.Rows = append(t.Rows, []string{itoa(len(sp)), fmtDur(el)})
	}
	return t, nil
}

// Table6 reproduces Table 6: the effect of the candidate-set size |QC| ∈
// {5, 10, 20, 40, 60, 80} for Q2, with the extra candidates produced by
// §7.6-style constant perturbation. S1 ⊂ S2 ⊂ … ⊂ S6 and Q2 ∈ S1.
func Table6() (*TextTable, *TextTable, error) {
	pool, sc, err := table6Pool()
	if err != nil {
		return nil, nil, err
	}
	sizes := []int{5, 10, 20, 40, 60, 80}
	t := &TextTable{
		Title:  "Table 6: effect of the number of candidate queries on Q2",
		Header: []string{"Candidate query set", "S1", "S2", "S3", "S4", "S5", "S6"},
	}
	rows := map[string][]string{
		"# of candidate queries":     {"# of candidate queries"},
		"# of selection attributes":  {"# of selection attributes"},
		"# of iterations":            {"# of iterations"},
		"Execution time":             {"Execution time"},
		"Modification cost":          {"Modification cost"},
		"Avg. dbCost per round":      {"Avg. dbCost per round"},
		"Avg. resultCost per result": {"Avg. resultCost per result"},
	}
	breakdown := &TextTable{
		Title:  "Table 7: breakdown of first iteration's running time (seconds)",
		Header: []string{"Query set", "S1", "S2", "S3", "S4", "S5", "S6"},
	}
	bdRows := map[string][]string{
		"Algorithm 3": {"Algorithm 3"},
		"Algorithm 4": {"Algorithm 4"},
		"Modify DB":   {"Modify DB"},
		"Total":       {"Total"},
	}
	for _, n := range sizes {
		if n > len(pool) {
			n = len(pool)
		}
		qc := pool[:n]
		attrs := map[string]bool{}
		for _, q := range qc {
			for _, a := range q.Pred.Attrs() {
				attrs[a] = true
			}
		}
		sub := &Scenario{Name: fmt.Sprintf("table6/S%d", n), DB: sc.DB, Target: sc.Target, R: sc.R, QC: qc}
		out, err := sub.Run(sessionConfig(), feedback.WorstCase{})
		if err != nil {
			return nil, nil, fmt.Errorf("table6 |QC|=%d: %w", n, err)
		}
		iters := len(out.Iterations)
		sumDB, sumRes, sumSubsets := 0, 0, 0
		for _, it := range out.Iterations {
			sumDB += it.DBCost
			sumRes += it.ResultCost
			sumSubsets += it.NumSubsets
		}
		avgDB, avgRes := 0.0, 0.0
		if iters > 0 {
			avgDB = float64(sumDB) / float64(iters)
		}
		if sumSubsets > 0 {
			avgRes = float64(sumRes) / float64(sumSubsets)
		}
		rows["# of candidate queries"] = append(rows["# of candidate queries"], itoa(len(qc)))
		rows["# of selection attributes"] = append(rows["# of selection attributes"], itoa(len(attrs)))
		rows["# of iterations"] = append(rows["# of iterations"], itoa(iters))
		rows["Execution time"] = append(rows["Execution time"], fmtDur(out.TotalTime))
		rows["Modification cost"] = append(rows["Modification cost"], itoa(out.TotalModCost))
		rows["Avg. dbCost per round"] = append(rows["Avg. dbCost per round"], f2(avgDB))
		rows["Avg. resultCost per result"] = append(rows["Avg. resultCost per result"], f2(avgRes))

		if iters > 0 {
			it := out.Iterations[0]
			bdRows["Algorithm 3"] = append(bdRows["Algorithm 3"], fmtDur(it.Alg3Time))
			bdRows["Algorithm 4"] = append(bdRows["Algorithm 4"], fmtDur(it.Alg4Time))
			bdRows["Modify DB"] = append(bdRows["Modify DB"], fmtDur(it.ConcretizeTime))
			bdRows["Total"] = append(bdRows["Total"], fmtDur(it.ExecTime))
		}
	}
	for _, name := range []string{"# of candidate queries", "# of selection attributes",
		"# of iterations", "Execution time", "Modification cost",
		"Avg. dbCost per round", "Avg. resultCost per result"} {
		t.Rows = append(t.Rows, rows[name])
	}
	for _, name := range []string{"Algorithm 3", "Algorithm 4", "Modify DB", "Total"} {
		breakdown.Rows = append(breakdown.Rows, bdRows[name])
	}
	return t, breakdown, nil
}

// Table7 reproduces Table 7 alone (it shares the runs with Table 6).
func Table7() (*TextTable, error) {
	_, bd, err := Table6()
	return bd, err
}

// table6Pool builds the nested candidate pool: the target Q2 first, then
// the QBO candidates, then perturbed variants up to 80.
func table6Pool() ([]*algebra.Query, *Scenario, error) {
	sc, err := ScientificScenario("Q2", 19)
	if err != nil {
		return nil, nil, err
	}
	pool := []*algebra.Query{sc.Target}
	seen := map[string]bool{sc.Target.Key(): true}
	for _, q := range sc.QC {
		if !seen[q.Key()] {
			seen[q.Key()] = true
			pool = append(pool, q)
		}
	}
	extra, err := qbo.PerturbConstants(sc.DB, sc.R, pool, 80-len(pool))
	if err != nil {
		return nil, nil, err
	}
	pool = append(pool, extra...)
	return pool, sc, nil
}

func joinForScenario(sc *Scenario) (*db.Joined, error) {
	return db.Join(sc.DB, sc.QC[0].Tables)
}
