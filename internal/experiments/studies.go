package experiments

import (
	"fmt"
	"sort"

	"qfe/internal/algebra"
	"qfe/internal/datasets"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
	"qfe/internal/relation"
)

// InitialPairSize reproduces the first §7.7 experiment: the effect of the
// size of the initial database-result pair. D4 = D (scientific), and
// Dᵢ = the first ⌈i/4·|ref|⌉ reference rows, chosen so Q2(Dᵢ) ⊆ Q2(Dᵢ₊₁)
// as the paper requires. The paper observed no clear trend; the table
// reports iterations, modification cost and execution time per Dᵢ.
func InitialPairSize() (*TextTable, error) {
	t := &TextTable{
		Title:  "§7.7a: effect of the size of the initial database-result pair (Q2, scientific)",
		Header: []string{"Dataset", "|join|", "|R|", "# of iterations", "Modification cost", "Execution time"},
	}
	for i := 1; i <= 4; i++ {
		s := datasets.NewScientific()
		ref := s.DB.Table(datasets.SciRefTable)
		keep := 417 * i / 4
		if i == 4 {
			keep = ref.Len() // all rows incl. the NULL-keyed danglers
		}
		ref.Tuples = ref.Tuples[:keep]
		sc, err := buildScenario(fmt.Sprintf("initsize/D%d", i), s.DB, s.Q2, 19)
		if err != nil {
			return nil, err
		}
		out, err := sc.Run(sessionConfig(), feedback.WorstCase{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("D%d", i),
			itoa(keep),
			itoa(sc.R.Len()),
			itoa(len(out.Iterations)),
			itoa(out.TotalModCost),
			fmtDur(out.TotalTime),
		})
	}
	return t, nil
}

// DomainEntropy reproduces the second §7.7 experiment: the effect of the
// entropy of an attribute's active domain. The attribute is
// Batting.doubles (a selection attribute of Q5's candidates); D1..D5 shrink
// its distinct-value count to (6−i)/5 of the original by quantile
// bucketing of the background rows, leaving the planted rows (and hence
// Q5(Dᵢ) = Q5(D)) untouched.
func DomainEntropy() (*TextTable, error) {
	t := &TextTable{
		Title:  "§7.7b: effect of the entropy of the active domain (Q5, baseball, attr Batting.doubles)",
		Header: []string{"Dataset", "|π_A(T)|", "# of iterations", "Modification cost", "Execution time"},
	}
	planted := map[string]bool{
		"sotoma01": true, "brownto05": true, "pariske01": true,
		"welshch01": true, "rosepe01": true, "esaskni01": true,
	}
	for i := 1; i <= 5; i++ {
		b := datasets.NewBaseball()
		bat := b.DB.Table(datasets.BBBatting)
		di := bat.Schema.MustIndexOf("doubles")
		pi := bat.Schema.MustIndexOf("playerID")

		// Collect the background distinct values and bucket to the target
		// count.
		distinct := map[int64]bool{}
		for _, tup := range bat.Tuples {
			if !planted[tup[pi].S] {
				distinct[tup[di].I] = true
			}
		}
		var vals []int64
		for v := range distinct {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		target := len(vals) * (6 - i) / 5
		if target < 1 {
			target = 1
		}
		remap := map[int64]int64{}
		for vi, v := range vals {
			bucket := vi * target / len(vals)
			remap[v] = vals[bucket*len(vals)/target]
		}
		for _, tup := range bat.Tuples {
			if !planted[tup[pi].S] {
				tup[di] = relation.Int(remap[tup[di].I])
			}
		}

		sc, err := buildScenario(fmt.Sprintf("entropy/D%d", i), b.DB, b.Q5, 19)
		if err != nil {
			return nil, err
		}
		out, err := sc.Run(sessionConfig(), feedback.WorstCase{})
		if err != nil {
			return nil, err
		}
		// Count the resulting distinct values for the report.
		now := map[string]bool{}
		for _, tup := range bat.Tuples {
			now[tup[di].Key()] = true
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("D%d", i),
			itoa(len(now)),
			itoa(len(out.Iterations)),
			itoa(out.TotalModCost),
			fmtDur(out.TotalTime),
		})
	}
	return t, nil
}

// UserStudyResult summarises one participant × target × strategy cell.
type UserStudyResult struct {
	User       string
	Target     string
	Strategy   string
	Iterations int
	UserTime   float64 // seconds, simulated
	ExecTime   float64 // seconds, measured
	Found      bool
}

// UserStudy reproduces the §7.7 user study: three simulated participants
// determine three target queries over the Adult relation, once with the
// paper's cost model and once with the alternative model that maximises
// the number of partitioned query subsets. The paper found the alternative
// needs fewer iterations but more total time (QFE up to 1.5× faster), with
// user response time dominating (~92%).
func UserStudy() (*TextTable, []UserStudyResult, error) {
	a := datasets.NewAdult()

	type participant struct {
		name                string
		base, perDB, perRes float64
	}
	users := []participant{
		{"user1", 2.0, 3.0, 1.5},
		{"user2", 2.5, 4.0, 2.0}, // slower reader
		{"user3", 1.5, 2.5, 1.2}, // faster reader
	}
	strategies := []struct {
		name string
		s    dbgen.Strategy
	}{
		{"QFE-cost-model", dbgen.StrategyCostModel},
		{"max-partitions", dbgen.StrategyMaxPartitions},
	}

	var results []UserStudyResult
	t := &TextTable{
		Title:  "§7.7c: user study (simulated participants; times in seconds)",
		Header: []string{"User", "Target", "Strategy", "Iterations", "User time", "Exec time", "Total"},
	}
	// Pre-build per-target scenarios once (candidate generation is shared).
	scenarios := map[string]*Scenario{}
	for _, target := range a.Targets {
		r, err := target.Evaluate(a.DB)
		if err != nil {
			return nil, nil, err
		}
		qc, err := qbo.Generate(a.DB, r, qboConfig(16))
		if err != nil {
			return nil, nil, err
		}
		// The study follows a specific target: make sure an equivalent of
		// it is in QC (prepend if the generator missed it).
		qc = ensureTarget(qc, target)
		scenarios[target.Name] = &Scenario{Name: "adult/" + target.Name,
			DB: a.DB, Target: target, R: r, QC: qc}
	}

	for _, u := range users {
		for _, target := range a.Targets {
			sc := scenarios[target.Name]
			for _, strat := range strategies {
				oracle := &feedback.SimulatedUser{
					Target:               feedback.Target{Query: sc.Target},
					BaseSeconds:          u.base,
					PerDBCellSeconds:     u.perDB,
					PerResultCellSeconds: u.perRes,
				}
				cfg := sessionConfig()
				cfg.Gen.Strategy = strat.s
				out, err := sc.Run(cfg, oracle)
				if err != nil {
					return nil, nil, fmt.Errorf("user study %s/%s/%s: %w",
						u.name, target.Name, strat.name, err)
				}
				res := UserStudyResult{
					User:       u.name,
					Target:     target.Name,
					Strategy:   strat.name,
					Iterations: len(out.Iterations),
					UserTime:   oracle.Responded.Seconds(),
					ExecTime:   out.TotalTime.Seconds(),
					Found:      out.Found,
				}
				results = append(results, res)
				t.Rows = append(t.Rows, []string{
					res.User, res.Target, res.Strategy,
					itoa(res.Iterations),
					f2(res.UserTime), f2(res.ExecTime), f2(res.UserTime + res.ExecTime),
				})
			}
		}
	}
	// Summary rows: totals per strategy.
	totals := map[string][2]float64{} // strategy -> {time, iterations}
	for _, r := range results {
		v := totals[r.Strategy]
		v[0] += r.UserTime + r.ExecTime
		v[1] += float64(r.Iterations)
		totals[r.Strategy] = v
	}
	for _, strat := range strategies {
		v := totals[strat.name]
		t.Rows = append(t.Rows, []string{"TOTAL", "-", strat.name,
			f2(v[1]), "-", "-", f2(v[0])})
	}
	return t, results, nil
}

// ensureTarget prepends the target query when no candidate is structurally
// equal to it (exact Key comparison, per the repo's dedup convention).
func ensureTarget(qc []*algebra.Query, target *algebra.Query) []*algebra.Query {
	fp := target.Key()
	for _, q := range qc {
		if q.Key() == fp {
			return qc
		}
	}
	return append([]*algebra.Query{target}, qc...)
}
