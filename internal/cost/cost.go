// Package cost implements the paper's user-effort cost model (§3): the
// balance score of a query partitioning, the per-iteration effort
// cost(D') = currentCost + residualCost (Equations 1–5), and the estimation
// of the number of remaining iterations N (Equations 6–9, refined by
// Lemma 3.1).
package cost

import (
	"math"
)

// Params holds the model's configurable parameters.
type Params struct {
	// Beta scales the number of modified relations into attribute-
	// modification units in dbCost = minEdit(D,D') + β·n (Eq. 3).
	// The paper's default is 1.
	Beta float64
}

// DefaultParams returns the paper's default configuration (β = 1).
func DefaultParams() Params { return Params{Beta: 1} }

// Balance returns the balance score of a partitioning with the given subset
// sizes: σ/|C|, the standard deviation of sizes divided by the number of
// subsets (§3). Smaller is better. A "partitioning" into a single subset
// conveys no information, so its score is +Inf — such modifications must
// never be preferred.
func Balance(sizes []int) float64 {
	k := len(sizes)
	if k <= 1 {
		return math.Inf(1)
	}
	mean := 0.0
	for _, s := range sizes {
		mean += float64(s)
	}
	mean /= float64(k)
	variance := 0.0
	for _, s := range sizes {
		d := float64(s) - mean
		variance += d * d
	}
	variance /= float64(k)
	return math.Sqrt(variance) / float64(k)
}

// maxSize returns the largest subset size, 0 for empty input.
func maxSize(sizes []int) int {
	m := 0
	for _, s := range sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// EstimateIterationsSimple implements Eq. 6: N = log₂(max |QCᵢ|), the
// optimistic estimate assuming perfectly balanced binary partitionings are
// always available in later rounds.
func EstimateIterationsSimple(sizes []int) float64 {
	m := maxSize(sizes)
	if m <= 1 {
		return 0
	}
	return math.Log2(float64(m))
}

// EstimateIterations implements the refined estimate of Eq. 7–9. x is the
// number of queries in the smaller subset of the most balanced *binary*
// partitioning available in the current iteration; by Lemma 3.1 no later
// binary partitioning can eliminate more than x false positives per round.
// When no binary partitioning exists (x ≤ 0), the simple estimate of Eq. 6
// is used, as the paper prescribes.
func EstimateIterations(sizes []int, x int) float64 {
	m := maxSize(sizes)
	if m <= 1 {
		return 0
	}
	if x <= 0 {
		return EstimateIterationsSimple(sizes)
	}
	n1 := m/x - 1 // Eq. 8: ⌊max/x⌋ − 1
	if n1 < 0 {
		n1 = 0
	}
	rem := m - x*n1
	var n2 float64 // Eq. 9: ⌈log₂(max − x·N1)⌉
	if rem > 1 {
		n2 = math.Ceil(math.Log2(float64(rem)))
	}
	return float64(n1) + n2
}

// Inputs gathers every measured quantity the cost model consumes for one
// candidate modified database D'.
type Inputs struct {
	// DBEdit is minEdit(D, D'): total attribute-modification cost.
	DBEdit int
	// ModifiedRelations is n, the number of base relations touched.
	ModifiedRelations int
	// ModifiedTuples is µ, the number of distinct base tuples touched.
	ModifiedTuples int
	// ResultEdits[i] is minEdit(R, Rᵢ) for each partitioned subset.
	ResultEdits []int
	// SubsetSizes[i] is |QCᵢ| for each partitioned subset (k = len).
	SubsetSizes []int
	// X is the smaller-side size of the most balanced binary partitioning
	// observed in the current iteration; 0 means "undefined" (fall back to
	// Eq. 6).
	X int
}

// CurrentCost returns dbCost + resultCost for the iteration (Eq. 2–4).
func (p Params) CurrentCost(in Inputs) float64 {
	dbCost := float64(in.DBEdit) + p.Beta*float64(in.ModifiedRelations)
	resultCost := 0.0
	for _, e := range in.ResultEdits {
		resultCost += float64(e)
	}
	return dbCost + resultCost
}

// Cost returns cost(D') per Eq. 5:
//
//	cost = minEdit(D,D') + β·n + Σᵢ minEdit(R,Rᵢ)
//	     + N × ( minEdit(D,D')/µ + β + (2/k)·Σᵢ minEdit(R,Rᵢ) )
//
// The residual term conservatively assumes the user picks the largest
// subset and that each later round is a binary partitioning induced by a
// single-tuple change whose cost is the current round's average.
func (p Params) Cost(in Inputs) float64 {
	current := p.CurrentCost(in)
	k := len(in.SubsetSizes)
	if k <= 1 {
		// No split: infinite effort, the generator must avoid this D'.
		return math.Inf(1)
	}
	n := EstimateIterations(in.SubsetSizes, in.X)
	sumResult := 0.0
	for _, e := range in.ResultEdits {
		sumResult += float64(e)
	}
	mu := float64(in.ModifiedTuples)
	if mu <= 0 {
		mu = 1
	}
	residualPerRound := float64(in.DBEdit)/mu + p.Beta + (2.0/float64(k))*sumResult
	return current + n*residualPerRound
}

// BinaryX extracts, from a collection of binary partitionings described by
// their subset-size pairs, the x of Lemma 3.1: the smaller-side size of the
// most balanced one (the pair minimising Balance). It returns 0 when the
// collection contains no binary partitioning.
func BinaryX(binarySizes [][2]int) int {
	best := math.Inf(1)
	x := 0
	for _, s := range binarySizes {
		b := Balance([]int{s[0], s[1]})
		if b < best {
			best = b
			x = s[0]
			if s[1] < x {
				x = s[1]
			}
		}
	}
	return x
}
