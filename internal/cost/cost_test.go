package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBalancePrefersEvenSplits(t *testing.T) {
	even := Balance([]int{5, 5})
	uneven := Balance([]int{9, 1})
	if even >= uneven {
		t.Errorf("balanced split should score lower: even=%v uneven=%v", even, uneven)
	}
	if even != 0 {
		t.Errorf("perfectly even split should be 0, got %v", even)
	}
}

func TestBalanceMoreSubsetsScoreLower(t *testing.T) {
	// Same stddev (0) but more subsets divides by a larger k.
	two := Balance([]int{4, 4})
	four := Balance([]int{2, 2, 2, 2})
	if two != 0 || four != 0 {
		t.Errorf("uniform splits should score 0: %v %v", two, four)
	}
	// With nonzero σ, more subsets reduce the score.
	a := Balance([]int{3, 1})
	b := Balance([]int{3, 1, 3, 1})
	if b >= a {
		t.Errorf("σ/|C| should shrink with more subsets: %v vs %v", a, b)
	}
}

func TestBalanceSingletonIsInf(t *testing.T) {
	if !math.IsInf(Balance([]int{7}), 1) {
		t.Error("no-split partitioning must be infinitely bad")
	}
	if !math.IsInf(Balance(nil), 1) {
		t.Error("empty partitioning must be infinitely bad")
	}
}

func TestBalanceKnownValue(t *testing.T) {
	// sizes {3,1}: mean 2, variance ((1)²+(1)²)/2 = 1, σ = 1, |C| = 2.
	if got := Balance([]int{3, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Balance({3,1}) = %v, want 0.5", got)
	}
}

func TestEstimateIterationsSimple(t *testing.T) {
	if got := EstimateIterationsSimple([]int{8, 2}); got != 3 {
		t.Errorf("log2(8) = %v, want 3", got)
	}
	if got := EstimateIterationsSimple([]int{1, 1}); got != 0 {
		t.Errorf("singleton subsets need 0 more iterations, got %v", got)
	}
	if got := EstimateIterationsSimple(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
}

func TestEstimateIterationsRefined(t *testing.T) {
	// max=10, x=2: N1 = 10/2-1 = 4, rem = 10-8 = 2, N2 = 1, N = 5.
	if got := EstimateIterations([]int{10}, 2); got != 5 {
		t.Errorf("refined estimate = %v, want 5", got)
	}
	// x undefined falls back to Eq. 6.
	if got := EstimateIterations([]int{8}, 0); got != 3 {
		t.Errorf("fallback = %v, want 3", got)
	}
	// max <= 1: done.
	if got := EstimateIterations([]int{1}, 3); got != 0 {
		t.Errorf("done = %v, want 0", got)
	}
}

func TestEstimateRefinedAtLeastSimpleQuick(t *testing.T) {
	// Lemma 3.1 bounds progress, so the refined estimate is never more
	// optimistic than Eq. 6 when x is at most half the largest subset.
	f := func(m8, x8 uint8) bool {
		m := int(m8%60) + 2
		x := int(x8%uint8(m/2+1)) + 1
		simple := EstimateIterationsSimple([]int{m})
		refined := EstimateIterations([]int{m}, x)
		return refined >= math.Floor(simple)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCurrentCost(t *testing.T) {
	p := Params{Beta: 2}
	in := Inputs{
		DBEdit:            3,
		ModifiedRelations: 2,
		ResultEdits:       []int{1, 4},
		SubsetSizes:       []int{2, 2},
	}
	// dbCost = 3 + 2*2 = 7; resultCost = 5; total 12.
	if got := p.CurrentCost(in); got != 12 {
		t.Errorf("CurrentCost = %v, want 12", got)
	}
}

func TestCostEquation5(t *testing.T) {
	p := DefaultParams()
	in := Inputs{
		DBEdit:            2,
		ModifiedRelations: 1,
		ModifiedTuples:    2,
		ResultEdits:       []int{1, 1},
		SubsetSizes:       []int{2, 2},
		X:                 2,
	}
	// current = 2 + 1 + 2 = 5.
	// N: max=2, x=2 -> N1 = 0, rem=2, N2=1 -> N=1.
	// residual per round = 2/2 + 1 + (2/2)*2 = 1 + 1 + 2 = 4.
	// cost = 5 + 1*4 = 9.
	if got := p.Cost(in); math.Abs(got-9) > 1e-12 {
		t.Errorf("Cost = %v, want 9", got)
	}
}

func TestCostNoSplitInfinite(t *testing.T) {
	p := DefaultParams()
	if !math.IsInf(p.Cost(Inputs{SubsetSizes: []int{5}}), 1) {
		t.Error("cost of a non-splitting D' must be +Inf")
	}
}

func TestCostMonotoneInEdits(t *testing.T) {
	p := DefaultParams()
	base := Inputs{DBEdit: 1, ModifiedRelations: 1, ModifiedTuples: 1,
		ResultEdits: []int{1, 1}, SubsetSizes: []int{2, 2}, X: 2}
	more := base
	more.DBEdit = 5
	if p.Cost(more) <= p.Cost(base) {
		t.Error("more database edits must cost more")
	}
	more2 := base
	more2.ResultEdits = []int{4, 4}
	if p.Cost(more2) <= p.Cost(base) {
		t.Error("larger result deltas must cost more")
	}
}

func TestCostTradeoffBalanceVsEdits(t *testing.T) {
	// A modification splitting 16 queries evenly with 2 edits should beat
	// one splitting 15/1 with 1 edit, because the residual term dominates.
	p := DefaultParams()
	balanced := Inputs{DBEdit: 2, ModifiedRelations: 1, ModifiedTuples: 2,
		ResultEdits: []int{1, 1}, SubsetSizes: []int{8, 8}, X: 8}
	skewed := Inputs{DBEdit: 1, ModifiedRelations: 1, ModifiedTuples: 1,
		ResultEdits: []int{1, 1}, SubsetSizes: []int{15, 1}, X: 1}
	if p.Cost(balanced) >= p.Cost(skewed) {
		t.Errorf("balanced split should win: balanced=%v skewed=%v",
			p.Cost(balanced), p.Cost(skewed))
	}
}

func TestBinaryX(t *testing.T) {
	// Partitionings: (9,1) balance .4/... vs (6,4): most balanced is (6,4),
	// so x = 4.
	if x := BinaryX([][2]int{{9, 1}, {6, 4}}); x != 4 {
		t.Errorf("BinaryX = %d, want 4", x)
	}
	if x := BinaryX(nil); x != 0 {
		t.Errorf("BinaryX(nil) = %d, want 0", x)
	}
	if x := BinaryX([][2]int{{1, 9}}); x != 1 {
		t.Errorf("BinaryX = %d, want 1 (order-insensitive)", x)
	}
}

func TestDefaultParams(t *testing.T) {
	if DefaultParams().Beta != 1 {
		t.Error("paper default β is 1")
	}
}
