package scenario

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestCorpusRoundTrip: encode → decode → re-encode must be byte-identical
// (the codec preserves every value, constraint and query structurally).
func TestCorpusRoundTrip(t *testing.T) {
	opts := DefaultGenOptions()
	corpus, err := GenerateCorpus(5, 10, opts)
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	cs, err := Curated()
	if err != nil {
		t.Fatalf("Curated: %v", err)
	}
	corpus = append(corpus, cs[0]) // mix one curated entry in

	var first bytes.Buffer
	if err := Write(&first, Header{Seed: 5, Gen: &opts}, corpus); err != nil {
		t.Fatalf("Write: %v", err)
	}
	hdr, decoded, err := ReadAll(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if hdr.Count != len(corpus) || hdr.Seed != 5 {
		t.Fatalf("header = %+v, want count %d seed 5", hdr, len(corpus))
	}
	if len(decoded) != len(corpus) {
		t.Fatalf("decoded %d scenarios, want %d", len(decoded), len(corpus))
	}
	for _, s := range decoded {
		if err := s.Verify(); err != nil {
			t.Errorf("decoded scenario: %v", err)
		}
	}
	var second bytes.Buffer
	if err := Write(&second, Header{Seed: 5, Gen: &opts}, decoded); err != nil {
		t.Fatalf("re-Write: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical (%d vs %d bytes)", first.Len(), second.Len())
	}
}

// TestCorpusReaderStreams: the streaming reader yields entries in order and
// ends with io.EOF.
func TestCorpusReaderStreams(t *testing.T) {
	corpus, err := GenerateCorpus(3, 4, DefaultGenOptions())
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, corpus); err != nil {
		t.Fatalf("Write: %v", err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for i := 0; ; i++ {
		s, err := rd.Next()
		if err == io.EOF {
			if i != len(corpus) {
				t.Fatalf("EOF after %d entries, want %d", i, len(corpus))
			}
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if s.Name != corpus[i].Name {
			t.Fatalf("entry %d: name %q, want %q", i, s.Name, corpus[i].Name)
		}
	}
}

// TestCorpusRejectsForeignFiles: headers of the wrong format or version are
// refused up front.
func TestCorpusRejectsForeignFiles(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json\n",
		`{"format":"something-else","version":1}` + "\n",
		`{"format":"qfe-corpus","version":99}` + "\n",
	} {
		if _, err := NewReader(strings.NewReader(bad)); err == nil {
			t.Errorf("NewReader accepted %q", bad)
		}
	}
}
