package scenario

import (
	"fmt"

	"qfe/internal/algebra"
	"qfe/internal/datasets"
	"qfe/internal/db"
)

// Curated returns the repository's three hand-built datasets (paper §7.1,
// §7.7) as corpus entries — one scenario per study query — so qfe-sim can
// mix curated and generated scenarios in a single run. Curated scenarios
// carry no generation options: the differential oracle checks them on D
// only (no fresh databases).
func Curated() ([]*Scenario, error) {
	var out []*Scenario
	add := func(dataset string, d *db.Database, queries ...*algebra.Query) error {
		for _, q := range queries {
			r, err := q.Evaluate(d)
			if err != nil {
				return fmt.Errorf("scenario: curated %s/%s: %w", dataset, q.Name, err)
			}
			r.Name = "R"
			out = append(out, &Scenario{
				Name:   dataset + "/" + q.Name,
				Kind:   KindCurated,
				DB:     d,
				Target: q,
				R:      r,
			})
		}
		return nil
	}
	sci := datasets.NewScientific()
	if err := add("scientific", sci.DB, sci.Q1, sci.Q2); err != nil {
		return nil, err
	}
	bb := datasets.NewBaseball()
	if err := add("baseball", bb.DB, bb.Q3, bb.Q4, bb.Q5, bb.Q6); err != nil {
		return nil, err
	}
	ad := datasets.NewAdult()
	if err := add("adult", ad.DB, ad.Targets...); err != nil {
		return nil, err
	}
	return out, nil
}
