// Package scenario generates complete QFE problem instances end-to-end: a
// random relational schema connected by a foreign-key tree, a populated
// database with controllable skew and active-domain sizes, a target query
// sampled from the supported algebra grammar (SPJ + DISTINCT, DNF
// selection), and the implied result R = Q(D), guaranteed non-trivial
// (non-empty and not the whole projected join).
//
// Generation is seeded and fully deterministic: the same (seed, options)
// pair produces byte-identical scenarios, and each scenario can regenerate
// fresh databases over its own schema (FreshDB) — the data source for the
// simulation harness's metamorphic differential oracle (internal/simulate).
//
// The package also defines the corpus file format (corpus.go) so generated
// scenarios can be saved, replayed and shipped as fixtures, and registers
// the curated internal/datasets scenarios as corpus entries (curated.go).
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// MinMax is an inclusive integer range knob.
type MinMax struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

func (m MinMax) pick(rng *rand.Rand) int {
	if m.Max <= m.Min {
		return m.Min
	}
	return m.Min + rng.Intn(m.Max-m.Min+1)
}

// QueryOptions bounds the target-query grammar.
type QueryOptions struct {
	// MaxJoinTables caps the FK-connected table subset joined by the target
	// (0 = all generated tables allowed).
	MaxJoinTables int `json:"maxJoinTables"`
	// Conjuncts is the DNF width (number of OR'd conjuncts).
	Conjuncts MinMax `json:"conjuncts"`
	// TermsPerConjunct is the number of AND'd comparison terms per conjunct.
	TermsPerConjunct MinMax `json:"termsPerConjunct"`
	// ProjectionCols is the projection-list length (clamped to the joined
	// arity).
	ProjectionCols MinMax `json:"projectionCols"`
	// DistinctProb is the probability the target uses SELECT DISTINCT.
	DistinctProb float64 `json:"distinctProb"`
	// MaxResultRows rejects sampled queries whose result exceeds this many
	// tuples (0 = unlimited). Small results keep downstream winnowing and
	// edit-distance work proportionate, mirroring the paper's workloads
	// (result sizes 1–14).
	MaxResultRows int `json:"maxResultRows"`
}

// GenOptions configures the generator. The zero value is not useful; start
// from DefaultGenOptions.
type GenOptions struct {
	// Tables is the number of base tables. Tables beyond the first each get
	// one foreign key to a random earlier table, so the FK graph is a
	// connected tree and every table subset used by a query joins.
	Tables MinMax `json:"tables"`
	// PayloadCols is the number of non-key columns per table.
	PayloadCols MinMax `json:"payloadCols"`
	// Rows is the table cardinality range.
	Rows MinMax `json:"rows"`
	// DomainSize is the active-domain size per payload column.
	DomainSize MinMax `json:"domainSize"`
	// Skew shapes both value and FK-reference distributions: draws use
	// idx = ⌊n·u^Skew⌋ for u uniform in [0,1), so Skew = 1 is uniform and
	// larger values concentrate mass on low indexes (head-heavy).
	Skew float64 `json:"skew"`
	// FloatShare and StringShare set the expected fraction of float and
	// string payload columns; the remainder are integers.
	FloatShare  float64 `json:"floatShare"`
	StringShare float64 `json:"stringShare"`
	// Query bounds the target-query grammar.
	Query QueryOptions `json:"query"`
	// MaxAttempts bounds how many databases Generate tries before giving up
	// (each attempt re-derives everything from the seed, so the overall
	// generation stays deterministic). 0 selects 32.
	MaxAttempts int `json:"maxAttempts,omitempty"`
}

// DefaultGenOptions returns small-but-structured scenarios: 2–3 tables,
// tens of rows, mixed column kinds, mildly skewed values and paper-sized
// results. One scenario at these defaults drives a full QFE session in
// milliseconds, so corpora of hundreds are cheap.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		Tables:      MinMax{2, 3},
		PayloadCols: MinMax{2, 4},
		Rows:        MinMax{12, 36},
		DomainSize:  MinMax{2, 6},
		Skew:        1.2,
		FloatShare:  0.25,
		StringShare: 0.4,
		Query: QueryOptions{
			MaxJoinTables:    3,
			Conjuncts:        MinMax{1, 2},
			TermsPerConjunct: MinMax{1, 2},
			ProjectionCols:   MinMax{1, 3},
			DistinctProb:     0.25,
			MaxResultRows:    10,
		},
	}
}

// Scenario is one complete QFE problem instance. Generated scenarios carry
// their effective seed and options so fresh databases over the same schema
// can be re-derived (FreshDB); curated scenarios (internal/datasets) carry
// only the instance itself.
type Scenario struct {
	Name   string
	Kind   string // KindGenerated or KindCurated
	Seed   int64  // effective seed (generated scenarios)
	Opts   *GenOptions
	DB     *db.Database
	Target *algebra.Query
	R      *relation.Relation
}

// Scenario kinds.
const (
	KindGenerated = "generated"
	KindCurated   = "curated"
)

// CanFresh reports whether FreshDB is available (generated scenarios only).
func (s *Scenario) CanFresh() bool { return s.Kind == KindGenerated && s.Opts != nil }

// FreshDB regenerates a database over the scenario's schema — same tables,
// columns, constraints and active domains, new tuples — deterministically
// from the scenario seed and k. The target query is still well-formed over
// it (its attributes and join schema are schema-level), which makes
// (target, converged) result comparisons on fresh databases a metamorphic
// differential oracle.
func (s *Scenario) FreshDB(k int) (*db.Database, error) {
	if !s.CanFresh() {
		return nil, fmt.Errorf("scenario: %s is not generated; no fresh databases", s.Name)
	}
	spec := sampleSpec(rand.New(rand.NewSource(deriveSeed(s.Seed, saltSpec))), *s.Opts)
	return populate(spec, rand.New(rand.NewSource(deriveSeed(s.Seed, saltFresh+uint64(k)))), s.Opts.Skew), nil
}

// deriveSeed splits one seed into independent sub-streams (splitmix64).
func deriveSeed(seed int64, salt uint64) int64 {
	z := uint64(seed) + (salt+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Sub-stream salts. saltFresh leaves headroom for any number of fresh DBs.
const (
	saltSpec  uint64 = 1
	saltData  uint64 = 2
	saltQuery uint64 = 3
	saltFresh uint64 = 1 << 20
)

// Generate produces one scenario deterministically from (seed, opts). It
// retries with re-derived sub-seeds until the sampled query's result is
// non-trivial; a constructive fallback makes failure to terminate within
// MaxAttempts essentially impossible for sane options.
func Generate(seed int64, opts GenOptions) (*Scenario, error) {
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 32
	}
	for a := 0; a < attempts; a++ {
		eff := seed
		if a > 0 {
			eff = deriveSeed(seed, 0xA77E0000+uint64(a))
		}
		s, ok := build(eff, opts)
		if ok {
			s.Name = fmt.Sprintf("gen-%016x", uint64(eff))
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: no non-trivial query found in %d attempts (seed %d)", attempts, seed)
}

// GenerateCorpus produces n scenarios with per-scenario seeds derived from
// the corpus seed, named gen-00001.. in order.
func GenerateCorpus(seed int64, n int, opts GenOptions) ([]*Scenario, error) {
	out := make([]*Scenario, 0, n)
	for i := 0; i < n; i++ {
		s, err := Generate(deriveSeed(seed, 0xC0_0000+uint64(i)), opts)
		if err != nil {
			return nil, fmt.Errorf("scenario: corpus entry %d: %w", i, err)
		}
		s.Name = fmt.Sprintf("gen-%05d", i+1)
		out = append(out, s)
	}
	return out, nil
}

// build runs one full attempt: schema spec, population, query sampling.
func build(eff int64, opts GenOptions) (*Scenario, bool) {
	spec := sampleSpec(rand.New(rand.NewSource(deriveSeed(eff, saltSpec))), opts)
	d := populate(spec, rand.New(rand.NewSource(deriveSeed(eff, saltData))), opts.Skew)
	q, r, ok := sampleQuery(spec, d, rand.New(rand.NewSource(deriveSeed(eff, saltQuery))), opts)
	if !ok {
		return nil, false
	}
	o := opts
	return &Scenario{Kind: KindGenerated, Seed: eff, Opts: &o, DB: d, Target: q, R: r}, true
}

// colSpec is one payload column: a name, a kind and a fixed active domain
// values are drawn from (shared between the original and fresh databases,
// so query constants stay meaningful across regenerations).
type colSpec struct {
	name   string
	kind   relation.Kind
	domain []relation.Value
}

// tableSpec is one table: payload columns, a sequential int primary key
// "id", and (except for the root) one FK column "<parent>_id".
type tableSpec struct {
	name     string
	fkParent int // index of the parent table, -1 for the root
	rows     int
	cols     []colSpec
}

type dbSpec struct {
	tables []tableSpec
}

// sampleSpec draws the schema: an FK tree of tables with typed payload
// columns and per-column active domains.
func sampleSpec(rng *rand.Rand, opts GenOptions) *dbSpec {
	nt := opts.Tables.pick(rng)
	if nt < 1 {
		nt = 1
	}
	spec := &dbSpec{}
	for i := 0; i < nt; i++ {
		t := tableSpec{
			name:     fmt.Sprintf("T%d", i+1),
			fkParent: -1,
			rows:     opts.Rows.pick(rng),
		}
		if t.rows < 2 {
			t.rows = 2
		}
		if i > 0 {
			t.fkParent = rng.Intn(i)
		}
		nc := opts.PayloadCols.pick(rng)
		if nc < 1 {
			nc = 1
		}
		for c := 0; c < nc; c++ {
			cs := colSpec{name: fmt.Sprintf("c%d", c+1)}
			r := rng.Float64()
			switch {
			case r < opts.FloatShare:
				cs.kind = relation.KindFloat
			case r < opts.FloatShare+opts.StringShare:
				cs.kind = relation.KindString
			default:
				cs.kind = relation.KindInt
			}
			cs.domain = sampleDomain(rng, cs.kind, opts.DomainSize.pick(rng))
			t.cols = append(t.cols, cs)
		}
		spec.tables = append(spec.tables, t)
	}
	return spec
}

// sampleDomain draws size distinct values of the kind from a space ~8×
// larger, so domains overlap across columns only occasionally.
func sampleDomain(rng *rand.Rand, kind relation.Kind, size int) []relation.Value {
	if size < 2 {
		size = 2
	}
	span := size * 8
	seen := make(map[int]bool, size)
	var picks []int
	for len(picks) < size {
		v := rng.Intn(span)
		if !seen[v] {
			seen[v] = true
			picks = append(picks, v)
		}
	}
	sort.Ints(picks)
	out := make([]relation.Value, size)
	for i, p := range picks {
		switch kind {
		case relation.KindFloat:
			out[i] = relation.Float(float64(p) + 0.5)
		case relation.KindString:
			out[i] = relation.Str(fmt.Sprintf("v%02d", p))
		default:
			out[i] = relation.Int(int64(p))
		}
	}
	return out
}

// skewIndex draws an index in [0, n) with head-heavy bias for skew > 1
// (skew = 1 is uniform).
func skewIndex(rng *rand.Rand, n int, skew float64) int {
	if n <= 1 {
		return 0
	}
	if skew <= 1 {
		return rng.Intn(n)
	}
	i := int(math.Pow(rng.Float64(), skew) * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// populate builds the database for a spec: parents before children (the
// spec's order guarantees parents have lower indexes), FK values drawn from
// the parent's ids and payload values from the column domains, both with
// the configured skew. Every database it returns satisfies its declared
// primary- and foreign-key constraints by construction.
func populate(spec *dbSpec, rng *rand.Rand, skew float64) *db.Database {
	d := db.New()
	for _, ts := range spec.tables {
		pairs := []any{"id", relation.KindInt}
		if ts.fkParent >= 0 {
			pairs = append(pairs, spec.tables[ts.fkParent].name+"_id", relation.KindInt)
		}
		for _, c := range ts.cols {
			pairs = append(pairs, c.name, c.kind)
		}
		rel := relation.New(ts.name, relation.NewSchema(pairs...))
		parentRows := 0
		if ts.fkParent >= 0 {
			parentRows = spec.tables[ts.fkParent].rows
		}
		for row := 0; row < ts.rows; row++ {
			tup := make(relation.Tuple, 0, rel.Arity())
			tup = append(tup, relation.Int(int64(row)))
			if ts.fkParent >= 0 {
				tup = append(tup, relation.Int(int64(skewIndex(rng, parentRows, skew))))
			}
			for _, c := range ts.cols {
				tup = append(tup, c.domain[skewIndex(rng, len(c.domain), skew)])
			}
			rel.Append(tup)
		}
		d.MustAddTable(rel)
		d.AddPrimaryKey(ts.name, "id")
		if ts.fkParent >= 0 {
			parent := spec.tables[ts.fkParent].name
			d.AddForeignKey(ts.name, []string{parent + "_id"}, parent, []string{"id"})
		}
	}
	return d
}

// sampleQuery draws a target query over the populated database and returns
// it with its result, rejecting trivial ones: the result must be non-empty,
// the selection must filter at least one joined row, and the result must
// differ from the same projection with a TRUE predicate (non-total, under
// the query's own bag/set semantics). After a bounded number of grammar
// samples it falls back to a constructive predicate derived from the data,
// which succeeds whenever any payload column is non-constant on the join.
func sampleQuery(spec *dbSpec, d *db.Database, rng *rand.Rand, opts GenOptions) (*algebra.Query, *relation.Relation, bool) {
	tables := sampleJoinTables(spec, rng, opts.Query.MaxJoinTables)
	joined, err := db.Join(d, tables)
	if err != nil || joined.Rel.Len() < 2 {
		return nil, nil, false
	}
	proj := sampleProjection(joined.Rel.Schema, rng, opts.Query.ProjectionCols)
	distinct := rng.Float64() < opts.Query.DistinctProb

	// Predicates range over payload columns: small active domains give them
	// meaningful selectivity (id columns are near-unique keys).
	attrs := payloadAttrs(spec, joined.Rel.Schema, tables)
	if len(attrs) == 0 {
		return nil, nil, false
	}

	const grammarTries = 48
	for try := 0; try < grammarTries; try++ {
		pred := samplePredicate(spec, rng, attrs, opts.Query)
		if q, r, ok := admit(tables, proj, pred, distinct, joined, opts.Query.MaxResultRows); ok {
			return q, r, true
		}
	}
	// Constructive fallback: equality on the (attr, value) pair with the
	// smallest positive row count — a guaranteed proper, non-empty subset of
	// the join whenever some payload column is non-constant. It targets bag
	// semantics, and the result-size cap still applies: a cap too tight for
	// even the rarest value fails the attempt, and the outer retry
	// regenerates the database.
	if pred, ok := constructivePredicate(joined.Rel, attrs); ok {
		if q, r, ok := admit(tables, proj, pred, false, joined, opts.Query.MaxResultRows); ok {
			return q, r, true
		}
	}
	return nil, nil, false
}

// admit materialises and screens one sampled query.
func admit(tables, proj []string, pred algebra.Predicate, distinct bool,
	joined *db.Joined, maxRows int) (*algebra.Query, *relation.Relation, bool) {
	q := &algebra.Query{Name: "target", Tables: tables, Projection: proj, Pred: pred, Distinct: distinct}
	match := pred.Compile(joined.Rel.Schema)
	selected := 0
	for _, t := range joined.Rel.Tuples {
		if match(t) {
			selected++
		}
	}
	if selected == 0 || selected == joined.Rel.Len() {
		return nil, nil, false
	}
	r, err := q.EvaluateOnJoined(joined.Rel)
	if err != nil || r.Len() == 0 {
		return nil, nil, false
	}
	if maxRows > 0 && r.Len() > maxRows {
		return nil, nil, false
	}
	// Non-total under the query's own semantics: projection (and DISTINCT)
	// may collapse a proper selection back to the full result.
	trivial := &algebra.Query{Tables: tables, Projection: proj, Distinct: distinct}
	full, err := trivial.EvaluateOnJoined(joined.Rel)
	if err != nil || r.BagEqual(full) {
		return nil, nil, false
	}
	r.Name = "R"
	return q, r, true
}

// sampleJoinTables picks a random FK-connected subtree of the schema.
func sampleJoinTables(spec *dbSpec, rng *rand.Rand, maxTables int) []string {
	n := len(spec.tables)
	if maxTables <= 0 || maxTables > n {
		maxTables = n
	}
	// Adjacency from the FK tree.
	adj := make([][]int, n)
	for i, t := range spec.tables {
		if t.fkParent >= 0 {
			adj[i] = append(adj[i], t.fkParent)
			adj[t.fkParent] = append(adj[t.fkParent], i)
		}
	}
	in := map[int]bool{}
	start := rng.Intn(n)
	in[start] = true
	frontier := append([]int(nil), adj[start]...)
	for len(in) < maxTables && len(frontier) > 0 {
		// Grow with decaying probability, so single-table and full-join
		// queries both occur.
		if len(in) > 1 && rng.Float64() < 0.4 {
			break
		}
		i := rng.Intn(len(frontier))
		next := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		if in[next] {
			continue
		}
		in[next] = true
		for _, a := range adj[next] {
			if !in[a] {
				frontier = append(frontier, a)
			}
		}
	}
	var names []string
	for i := range spec.tables {
		if in[i] {
			names = append(names, spec.tables[i].name)
		}
	}
	sort.Strings(names)
	return names
}

// sampleProjection picks distinct joined columns in schema order.
func sampleProjection(schema relation.Schema, rng *rand.Rand, want MinMax) []string {
	k := want.pick(rng)
	if k < 1 {
		k = 1
	}
	if k > len(schema) {
		k = len(schema)
	}
	idx := rng.Perm(len(schema))[:k]
	sort.Ints(idx)
	out := make([]string, k)
	for i, j := range idx {
		out[i] = schema[j].Name
	}
	return out
}

// payloadAttrs lists the qualified payload columns of the joined schema.
func payloadAttrs(spec *dbSpec, schema relation.Schema, tables []string) []string {
	payload := map[string]*colSpec{}
	for ti := range spec.tables {
		t := &spec.tables[ti]
		for ci := range t.cols {
			payload[t.name+"."+t.cols[ci].name] = &t.cols[ci]
		}
	}
	var out []string
	for _, c := range schema {
		if payload[c.Name] != nil {
			out = append(out, c.Name)
		}
	}
	return out
}

// domainOf finds the spec domain for a qualified attribute.
func domainOf(spec *dbSpec, attr string) []relation.Value {
	for ti := range spec.tables {
		t := &spec.tables[ti]
		for ci := range t.cols {
			if t.name+"."+t.cols[ci].name == attr {
				return t.cols[ci].domain
			}
		}
	}
	return nil
}

// samplePredicate draws a DNF predicate from the grammar: OR of conjuncts,
// each an AND of comparison terms on payload attributes with constants from
// the attribute's active domain. String attributes use {=, <>, IN};
// numeric attributes use the six comparisons.
func samplePredicate(spec *dbSpec, rng *rand.Rand, attrs []string, q QueryOptions) algebra.Predicate {
	nc := q.Conjuncts.pick(rng)
	if nc < 1 {
		nc = 1
	}
	var pred algebra.Predicate
	for c := 0; c < nc; c++ {
		nt := q.TermsPerConjunct.pick(rng)
		if nt < 1 {
			nt = 1
		}
		var conj algebra.Conjunct
		used := map[string]bool{}
		for t := 0; t < nt; t++ {
			attr := attrs[rng.Intn(len(attrs))]
			if used[attr] {
				continue // at most one term per attribute per conjunct
			}
			used[attr] = true
			dom := domainOf(spec, attr)
			v := dom[rng.Intn(len(dom))]
			if v.Kind == relation.KindString {
				switch rng.Intn(3) {
				case 0:
					conj = append(conj, algebra.NewTerm(attr, algebra.OpEQ, v))
				case 1:
					conj = append(conj, algebra.NewTerm(attr, algebra.OpNE, v))
				default:
					k := 1 + rng.Intn(min(3, len(dom)))
					set := make([]relation.Value, 0, k)
					for _, i := range rng.Perm(len(dom))[:k] {
						set = append(set, dom[i])
					}
					conj = append(conj, algebra.NewSetTerm(attr, algebra.OpIn, set))
				}
			} else {
				ops := []algebra.Op{algebra.OpEQ, algebra.OpNE, algebra.OpLT,
					algebra.OpLE, algebra.OpGT, algebra.OpGE}
				conj = append(conj, algebra.NewTerm(attr, ops[rng.Intn(len(ops))], v))
			}
		}
		if len(conj) > 0 {
			pred = append(pred, conj)
		}
	}
	return pred
}

// constructivePredicate scans payload columns for the (attr, value) pair
// with the smallest positive count below the total, yielding a guaranteed
// non-empty proper selection. It fails only when every payload column is
// constant over the join.
func constructivePredicate(joined *relation.Relation, attrs []string) (algebra.Predicate, bool) {
	total := joined.Len()
	bestCount := total + 1
	var bestTerm algebra.Term
	for _, attr := range attrs {
		ci := joined.Schema.IndexOf(attr)
		if ci < 0 {
			continue
		}
		counts := map[string]int{}
		vals := map[string]relation.Value{}
		for _, t := range joined.Tuples {
			k := t[ci].Key()
			counts[k]++
			vals[k] = t[ci]
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if c := counts[k]; c > 0 && c < total && c < bestCount && !vals[k].IsNull() {
				bestCount = c
				bestTerm = algebra.NewTerm(attr, algebra.OpEQ, vals[k])
			}
		}
	}
	if bestCount > total {
		return nil, false
	}
	return algebra.Predicate{algebra.Conjunct{bestTerm}}, true
}
