package scenario

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/par"
)

// TestGenerateDeterminism: the same (seed, options) pair must produce
// byte-identical corpora — the property reproducible BENCH_sim runs and
// shipped fixtures rely on.
func TestGenerateDeterminism(t *testing.T) {
	opts := DefaultGenOptions()
	var bufs [2]bytes.Buffer
	for i := range bufs {
		corpus, err := GenerateCorpus(99, 20, opts)
		if err != nil {
			t.Fatalf("GenerateCorpus: %v", err)
		}
		if err := Write(&bufs[i], Header{Seed: 99, Gen: &opts}, corpus); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same seed produced different corpora (%d vs %d bytes)",
			bufs[0].Len(), bufs[1].Len())
	}
}

// TestGeneratedScenarios checks the generator's guarantees on 200 scenarios
// built concurrently (exercising the shared kernel under -race): declared
// primary/foreign keys hold, the stored result matches the target's
// evaluation, and results are non-trivial — non-empty and different from
// the same projection without selection.
func TestGeneratedScenarios(t *testing.T) {
	const n = 200
	opts := DefaultGenOptions()
	scenarios := make([]*Scenario, n)
	errs := make([]error, n)
	par.Do(n, par.Workers(0), func(i int) {
		s, err := Generate(deriveSeed(4242, uint64(i)), opts)
		if err != nil {
			errs[i] = err
			return
		}
		scenarios[i] = s
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
	}
	for i, s := range scenarios {
		if err := s.DB.Validate(); err != nil {
			t.Errorf("scenario %d: integrity violation: %v", i, err)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("scenario %d: %v", i, err)
		}
		if s.R.Len() == 0 {
			t.Errorf("scenario %d: empty result", i)
		}
		trivial := &algebra.Query{
			Tables:     s.Target.Tables,
			Projection: s.Target.Projection,
			Distinct:   s.Target.Distinct,
		}
		full, err := trivial.Evaluate(s.DB)
		if err != nil {
			t.Errorf("scenario %d: trivial query: %v", i, err)
			continue
		}
		if s.R.BagEqual(full) {
			t.Errorf("scenario %d: result is total (equals the unselected projection)", i)
		}
	}
}

// TestFreshDB: fresh databases share the schema and constraints, satisfy
// them, are deterministic in k, and the target stays evaluable.
func TestFreshDB(t *testing.T) {
	s, err := Generate(7, DefaultGenOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !s.CanFresh() {
		t.Fatal("generated scenario must support FreshDB")
	}
	d1, err := s.FreshDB(0)
	if err != nil {
		t.Fatalf("FreshDB: %v", err)
	}
	d1b, err := s.FreshDB(0)
	if err != nil {
		t.Fatalf("FreshDB: %v", err)
	}
	if err := d1.Validate(); err != nil {
		t.Fatalf("fresh db integrity: %v", err)
	}
	if len(d1.Tables()) != len(s.DB.Tables()) {
		t.Fatalf("fresh db has %d tables, want %d", len(d1.Tables()), len(s.DB.Tables()))
	}
	for _, tbl := range s.DB.Tables() {
		ft := d1.Table(tbl.Name)
		if ft == nil {
			t.Fatalf("fresh db missing table %s", tbl.Name)
		}
		if !ft.Schema.Equal(tbl.Schema) {
			t.Fatalf("fresh db table %s schema differs", tbl.Name)
		}
	}
	r1, err := s.Target.Evaluate(d1)
	if err != nil {
		t.Fatalf("target on fresh db: %v", err)
	}
	r1b, err := s.Target.Evaluate(d1b)
	if err != nil {
		t.Fatalf("target on fresh db: %v", err)
	}
	if !r1.BagEqual(r1b) {
		t.Fatal("FreshDB(0) is not deterministic")
	}
	// Curated scenarios have no generation spec to regenerate from.
	cur := &Scenario{Name: "x", Kind: KindCurated}
	if cur.CanFresh() {
		t.Fatal("curated scenario must not claim fresh databases")
	}
	if _, err := cur.FreshDB(0); err == nil {
		t.Fatal("FreshDB on curated scenario should error")
	}
}

// TestCurated registers the three datasets' study queries as verifiable
// corpus entries.
func TestCurated(t *testing.T) {
	cs, err := Curated()
	if err != nil {
		t.Fatalf("Curated: %v", err)
	}
	if len(cs) != 9 { // Q1-Q2, Q3-Q6, U1-U3
		t.Fatalf("got %d curated scenarios, want 9", len(cs))
	}
	names := map[string]bool{}
	for _, s := range cs {
		names[s.Name] = true
		if s.Kind != KindCurated {
			t.Errorf("%s: kind %q", s.Name, s.Kind)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("%v", err)
		}
		if s.R.Len() == 0 {
			t.Errorf("%s: empty result", s.Name)
		}
	}
	for _, want := range []string{"scientific/Q1", "baseball/Q4", "adult/U1"} {
		if !names[want] {
			t.Errorf("missing curated scenario %s", want)
		}
	}
}

// TestGenerateConcurrentSameSeed: concurrent generation from one seed is
// race-free and agrees with itself.
func TestGenerateConcurrentSameSeed(t *testing.T) {
	const workers = 8
	out := make([]*Scenario, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := Generate(11, DefaultGenOptions())
			if err != nil {
				t.Errorf("Generate: %v", err)
				return
			}
			out[i] = s
		}(i)
	}
	wg.Wait()
	want, err := json.Marshal(EncodeEntry(out[0]))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for i := 1; i < workers; i++ {
		got, err := json.Marshal(EncodeEntry(out[i]))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("concurrent generation diverged at %d", i)
		}
	}
}
