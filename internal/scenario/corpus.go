// Corpus file format: a self-describing JSON-lines container for scenarios.
// The first line is a Header identifying the format, version, entry count
// and (for generated corpora) the generation options; each following line
// is one Entry carrying the full instance through the internal/codec wire
// format — database, target query and result — plus the per-scenario seed
// and options needed to regenerate fresh databases for the differential
// oracle. A corpus is therefore replayable on its own: nothing outside the
// file is needed to re-run or re-verify it.
//
// Encoding is deterministic: the same scenarios serialize to byte-identical
// files, which is how the generator's determinism tests (and reproducible
// BENCH_sim runs) compare corpora.
package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"qfe/internal/codec"
)

// Format identification.
const (
	FormatName    = "qfe-corpus"
	FormatVersion = 1
)

// Header is the corpus file's first line.
type Header struct {
	Format  string      `json:"format"`
	Version int         `json:"version"`
	Count   int         `json:"count"`
	Seed    int64       `json:"seed,omitempty"` // corpus-level seed, generated corpora
	Gen     *GenOptions `json:"gen,omitempty"`  // options shared by generated entries
}

// Entry is one scenario in the wire format.
type Entry struct {
	Name   string         `json:"name"`
	Kind   string         `json:"kind"`
	Seed   int64          `json:"seed,omitempty"`
	Gen    *GenOptions    `json:"gen,omitempty"`
	DB     codec.Database `json:"db"`
	Target codec.Query    `json:"target"`
	Result codec.Relation `json:"result"`
}

// EncodeEntry converts a scenario to its corpus wire form.
func EncodeEntry(s *Scenario) Entry {
	return Entry{
		Name:   s.Name,
		Kind:   s.Kind,
		Seed:   s.Seed,
		Gen:    s.Opts,
		DB:     codec.EncodeDatabase(s.DB),
		Target: codec.EncodeQuery(s.Target),
		Result: codec.EncodeRelation(s.R),
	}
}

// DecodeEntry converts the wire form back to a scenario.
func DecodeEntry(e Entry) (*Scenario, error) {
	d, err := codec.DecodeDatabase(e.DB)
	if err != nil {
		return nil, fmt.Errorf("scenario: entry %s: %w", e.Name, err)
	}
	q, err := codec.DecodeQuery(e.Target)
	if err != nil {
		return nil, fmt.Errorf("scenario: entry %s: %w", e.Name, err)
	}
	r, err := codec.DecodeRelation(e.Result)
	if err != nil {
		return nil, fmt.Errorf("scenario: entry %s: %w", e.Name, err)
	}
	kind := e.Kind
	if kind == "" {
		kind = KindCurated
	}
	return &Scenario{Name: e.Name, Kind: kind, Seed: e.Seed, Opts: e.Gen,
		DB: d, Target: q, R: r}, nil
}

// Verify re-evaluates the scenario's target and checks it still produces R
// on D (bag semantics; DISTINCT queries collapse duplicates themselves).
// Corpus consumers call it to reject corrupted or hand-edited entries.
func (s *Scenario) Verify() error {
	got, err := s.Target.Evaluate(s.DB)
	if err != nil {
		return fmt.Errorf("scenario: %s: evaluating target: %w", s.Name, err)
	}
	if !got.BagEqual(s.R) {
		return fmt.Errorf("scenario: %s: target result does not match stored R (%d vs %d tuples)",
			s.Name, got.Len(), s.R.Len())
	}
	return nil
}

// Write serializes a corpus: the header (its Count is overwritten with
// len(scenarios)) followed by one entry per line.
func Write(w io.Writer, hdr Header, scenarios []*Scenario) error {
	hdr.Format = FormatName
	hdr.Version = FormatVersion
	hdr.Count = len(scenarios)
	bw := bufio.NewWriter(w)
	line, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("scenario: write corpus header: %w", err)
	}
	bw.Write(line)
	bw.WriteByte('\n')
	for _, s := range scenarios {
		line, err := json.Marshal(EncodeEntry(s))
		if err != nil {
			return fmt.Errorf("scenario: write corpus entry %s: %w", s.Name, err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Reader streams a corpus without holding every entry in memory.
type Reader struct {
	sc     *bufio.Scanner
	Header Header
}

// NewReader validates the header line and positions the reader at the first
// entry.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28) // curated entries hold thousands of rows
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("scenario: read corpus header: %w", err)
		}
		return nil, fmt.Errorf("scenario: empty corpus")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("scenario: corpus header: %w", err)
	}
	if hdr.Format != FormatName {
		return nil, fmt.Errorf("scenario: not a %s file (format %q)", FormatName, hdr.Format)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("scenario: unsupported corpus version %d", hdr.Version)
	}
	return &Reader{sc: sc, Header: hdr}, nil
}

// Next returns the next scenario, or io.EOF when the corpus is exhausted.
func (r *Reader) Next() (*Scenario, error) {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return nil, fmt.Errorf("scenario: read corpus: %w", err)
		}
		return nil, io.EOF
	}
	var e Entry
	if err := json.Unmarshal(r.sc.Bytes(), &e); err != nil {
		return nil, fmt.Errorf("scenario: corpus entry: %w", err)
	}
	return DecodeEntry(e)
}

// ReadAll decodes a whole corpus.
func ReadAll(r io.Reader) (Header, []*Scenario, error) {
	cr, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var out []*Scenario
	for {
		s, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return cr.Header, nil, err
		}
		out = append(out, s)
	}
	return cr.Header, out, nil
}
