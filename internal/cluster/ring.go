// Package cluster is the multi-node session fabric (DESIGN.md §12): a
// consistent-hash ring that places sessions on shared-nothing qfe-server
// workers, a health monitor that detects worker death from failed probes,
// and a router that proxies the session API with retry-safe semantics and
// hands a dead worker's durable estate (snapshot + WAL root) to the
// survivors so acknowledged state outlives any single node.
package cluster

import (
	"sort"
)

// ringReplicas is the default virtual-node count per member. More points
// smooth the load split and shrink the variance of the "keys moved on
// membership change" fraction toward the ideal 1/N.
const ringReplicas = 128

// Ring is a consistent-hash ring with virtual nodes. Placement is a pure
// function of the member set: two rings built from the same members agree
// on every key, across processes and restarts — the property that lets the
// router rebuild routing from configuration alone, with no placement table
// to persist. Ring is not safe for concurrent use; the router guards it.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	members  map[string]bool
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// member.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates an empty ring. replicas <= 0 selects the default (128
// virtual nodes per member).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// fnv1a is the 64-bit FNV-1a hash — cheap, dependency-free, and stable
// across processes (unlike maphash), which Lookup's determinism needs.
func fnv1a(parts ...[]byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, p := range parts {
		for _, b := range p {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}

// mix64 is MurmurHash3's 64-bit finalizer: a full-avalanche bijection.
// FNV-1a alone leaves the points of one member on a near-arithmetic lattice
// (consecutive indexes differ in one trailing byte, so their hashes differ
// by a linear step), which clumps arcs badly; the finalizer destroys that
// structure while keeping the hash deterministic across processes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pointHash positions virtual node i of a member on the circle.
func pointHash(node string, i int) uint64 {
	var idx [4]byte
	idx[0], idx[1], idx[2], idx[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
	// The separator keeps ("ab", 1) and ("a", ...) point families disjoint.
	return mix64(fnv1a([]byte(node), []byte{0}, idx[:]))
}

// Add inserts a member (no-op if present).
func (r *Ring) Add(node string) {
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties broken by node id so placement stays deterministic even
		// across colliding points of different members.
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a member (no-op if absent). Only keys owned by the removed
// member move; every other key keeps its node — the "minimal movement"
// contract consistent hashing exists for.
func (r *Ring) Remove(node string) {
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member ids, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports membership.
func (r *Ring) Has(node string) bool { return r.members[node] }

// Lookup returns the member owning key — the first virtual node at or
// clockwise of the key's hash — or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(key)].node
}

// LookupN returns up to n distinct members in preference order: the owner
// first, then each next distinct member clockwise. The order is the failover
// preference list — when the owner is removed, the key's new owner under
// Lookup is exactly the next entry, which is what lets the router place
// creates past a fenced node and still agree with post-removal lookups.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// successor finds the index of the first point at or clockwise of the
// key's hash (wrapping).
func (r *Ring) successor(key string) int {
	h := mix64(fnv1a([]byte(key)))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
