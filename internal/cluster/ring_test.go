package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys generates deterministic pseudo-session ids.
func ringKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("w%d", i)
	}
	return nodes
}

// TestLookupMapsEveryKeyToOneLiveNode: property (a) — with any non-empty
// member set, every key resolves to exactly one node, and it is a member.
func TestLookupMapsEveryKeyToOneLiveNode(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{1, 2, 3, 5, 8} {
		r := NewRing(0)
		for _, w := range ringNodes(n) {
			r.Add(w)
		}
		members := map[string]bool{}
		for _, m := range r.Members() {
			members[m] = true
		}
		for _, k := range keys {
			owner := r.Lookup(k)
			if !members[owner] {
				t.Fatalf("n=%d: Lookup(%q) = %q, not a member", n, k, owner)
			}
			pref := r.LookupN(k, n)
			if len(pref) != n {
				t.Fatalf("n=%d: LookupN returned %d nodes, want %d", n, len(pref), n)
			}
			if pref[0] != owner {
				t.Fatalf("n=%d: LookupN[0] = %q, Lookup = %q", n, pref[0], owner)
			}
			seen := map[string]bool{}
			for _, p := range pref {
				if seen[p] {
					t.Fatalf("n=%d: LookupN repeated node %q", n, p)
				}
				seen[p] = true
			}
		}
	}
}

// TestMembershipChangeMovesOnlyTheAffectedArcs: property (b) — adding a
// node moves keys only *to* it; removing a node moves only *its* keys; and
// the moved fraction is close to the ideal 1/N.
func TestMembershipChangeMovesOnlyTheAffectedArcs(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{3, 4, 8} {
		nodes := ringNodes(n)
		r := NewRing(0)
		for _, w := range nodes {
			r.Add(w)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Lookup(k)
		}

		// Add one node: every key either stays put or moves to the new node.
		added := "wNEW"
		r.Add(added)
		moved := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if after != before[k] {
				if after != added {
					t.Fatalf("n=%d add: key %q moved %q -> %q (not the added node)",
						n, k, before[k], after)
				}
				moved++
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f > 2*ideal || f < ideal/2 {
			t.Fatalf("n=%d add: %d keys moved, ideal %.0f (want within [0.5x, 2x])",
				n, moved, ideal)
		}

		// Remove it again: assignments return exactly to the original map
		// (removal moves only the removed node's keys, and placement is a
		// pure function of the member set).
		r.Remove(added)
		for _, k := range keys {
			if got := r.Lookup(k); got != before[k] {
				t.Fatalf("n=%d remove: key %q at %q, want original %q", n, k, got, before[k])
			}
		}

		// Remove an original node: only its keys move, and each moves to its
		// preference-list successor (what the router relies on for failover).
		victim := nodes[0]
		pref := make(map[string][]string, len(keys))
		for _, k := range keys {
			pref[k] = r.LookupN(k, 2)
		}
		r.Remove(victim)
		movedOff := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if before[k] != victim {
				if after != before[k] {
					t.Fatalf("n=%d remove victim: key %q on %q moved to %q", n, k, before[k], after)
				}
				continue
			}
			movedOff++
			if want := pref[k][1]; after != want {
				t.Fatalf("n=%d remove victim: key %q moved to %q, want successor %q",
					n, k, after, want)
			}
		}
		ideal = float64(len(keys)) / float64(n)
		if f := float64(movedOff); f > 2*ideal || f < ideal/2 {
			t.Fatalf("n=%d remove victim: %d keys moved, ideal %.0f", n, movedOff, ideal)
		}
	}
}

// TestPlacementDeterministicAcrossRestarts: property (c) — rings built in
// different orders (a restarted router re-reading its worker flags) agree
// on every key.
func TestPlacementDeterministicAcrossRestarts(t *testing.T) {
	nodes := ringNodes(5)
	a := NewRing(0)
	for _, w := range nodes {
		a.Add(w)
	}
	b := NewRing(0)
	for i := len(nodes) - 1; i >= 0; i-- { // reverse insertion order
		b.Add(nodes[i])
	}
	// Membership churn that ends at the same set must also converge.
	c := NewRing(0)
	for _, w := range nodes {
		c.Add(w)
	}
	c.Add("transient")
	c.Remove("transient")
	c.Remove(nodes[2])
	c.Add(nodes[2])

	for _, k := range ringKeys(10000) {
		x, y, z := a.Lookup(k), b.Lookup(k), c.Lookup(k)
		if x != y || x != z {
			t.Fatalf("key %q: placements diverge: %q / %q / %q", k, x, y, z)
		}
	}
}

// TestRingBalance: virtual nodes keep per-node load within a reasonable
// factor of even.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	nodes := ringNodes(4)
	for _, w := range nodes {
		r.Add(w)
	}
	counts := map[string]int{}
	keys := ringKeys(40000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	ideal := len(keys) / len(nodes)
	for _, w := range nodes {
		if c := counts[w]; c < ideal/2 || c > 2*ideal {
			t.Fatalf("node %s owns %d keys, ideal %d: ring badly unbalanced (%v)",
				w, c, ideal, counts)
		}
	}
}

// TestRingDegenerate covers the empty and single-member edges.
func TestRingDegenerate(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want \"\"", got)
	}
	if got := r.LookupN("k", 3); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
	r.Add("only")
	r.Add("only") // double-add is a no-op
	if got := r.Lookup("k"); got != "only" {
		t.Fatalf("Lookup = %q, want only", got)
	}
	if got := len(r.points); got != ringReplicas {
		t.Fatalf("double Add grew points to %d, want %d", got, ringReplicas)
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if r.Len() != 0 || r.Lookup("k") != "" {
		t.Fatalf("ring not empty after removing last member")
	}
}
