// Per-worker circuit breaker (DESIGN.md §14). The health monitor detects
// failures at probe speed — seconds. The proxy path sees failures at
// request speed — every attempt against a dying worker costs a full
// transport timeout before the retry loop moves on. The breaker closes
// that gap: consecutive request-path failures trip it open, open means
// attempts against that worker are refused instantly (the retry loop
// backs off and re-resolves, so failover fencing still wins the race),
// and after a cooldown a single half-open probe attempt decides whether
// to close it again or re-open for another cooldown.
//
// The breaker deliberately does NOT feed the failure detector or skip
// workers at resolve time: placement must stay a pure function of the
// ring (a breaker-open home still owns its keys; only fencing reroutes
// them). It only changes how fast the proxy path stops burning timeouts
// on a worker that is failing right now.
package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one worker's circuit breaker. All methods are safe for
// concurrent use; the now hook exists for tests.
type breaker struct {
	threshold int           // consecutive failures that trip it
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time
	onTrip    func() // optional trip notification (called under mu)

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int64     // cumulative closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether an attempt may proceed. While open it refuses
// until the cooldown elapses, then moves to half-open and admits exactly
// one probe attempt; concurrent attempts during the probe are refused so
// a single request decides the verdict.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Success records a completed attempt: it closes a half-open breaker and
// clears the consecutive-failure run.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed attempt: the half-open probe failing re-opens
// immediately; while closed, the threshold'th consecutive failure trips.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerOpen:
		// A straggler attempt admitted before the trip; already open.
	}
}

// trip opens the breaker; caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.trips++
	if b.onTrip != nil {
		b.onTrip()
	}
}

// State returns the current state and cumulative trip count. It does not
// advance open -> half-open on its own: stats report the state as last
// acted on by the request path.
func (b *breaker) State() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
