package cluster

import (
	"sync"
	"time"
)

// NodeState is a monitored worker's availability as the failure detector
// sees it.
type NodeState int

// Node states. Transitions: Healthy -> Suspect on the first failed probe;
// Suspect -> Healthy after RecoverAfter consecutive successes (hysteresis:
// one lucky probe does not clear suspicion, so a flapping worker cannot
// oscillate the router); Suspect -> Dead after DeadAfter consecutive
// failures. Dead is terminal — a dead worker's estate is handed off and its
// identity is fenced; a revived process rejoins as a new node rather than
// resurrecting (re-routing sessions back to a node whose durable state was
// adopted elsewhere would serve stale rounds).
const (
	StateHealthy NodeState = iota
	StateSuspect
	StateDead
)

// String names the state for logs and stats payloads.
func (s NodeState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// ProbeFunc checks one node, returning nil when it is serving. The monitor
// calls probes concurrently across nodes; a probe must apply its own
// timeout.
type ProbeFunc func(node string) error

// MonitorOptions tunes the failure detector. Zero values select defaults.
type MonitorOptions struct {
	// Interval between probe rounds (default 500ms).
	Interval time.Duration
	// DeadAfter is the consecutive-failure threshold that declares a node
	// dead (default 3). With Interval, it sets the detection latency floor:
	// a worker is declared dead after roughly DeadAfter * Interval.
	DeadAfter int
	// RecoverAfter is the consecutive-success count a suspect node needs to
	// be trusted again (default 2) — the recovery hysteresis.
	RecoverAfter int
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3
	}
	if o.RecoverAfter <= 0 {
		o.RecoverAfter = 2
	}
	return o
}

// Monitor is the cluster's failure detector: it probes watched nodes every
// Interval and reports confirmed deaths exactly once via the onDead
// callback. All methods are safe for concurrent use. The probe loop runs
// only between Start and Stop; tests drive Tick directly instead.
type Monitor struct {
	opts   MonitorOptions
	probe  ProbeFunc
	onDead func(node string)

	mu    sync.Mutex
	nodes map[string]*nodeHealth

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// nodeHealth is one node's detector state.
type nodeHealth struct {
	state   NodeState
	fails   int // consecutive failed probes
	oks     int // consecutive successful probes while suspect
	lastErr error
}

// NewMonitor creates a detector over probe; onDead fires once per node,
// from the probing goroutine (or the Tick caller), after DeadAfter
// consecutive failures.
func NewMonitor(probe ProbeFunc, onDead func(node string), opts MonitorOptions) *Monitor {
	return &Monitor{
		opts:   opts.withDefaults(),
		probe:  probe,
		onDead: onDead,
		nodes:  make(map[string]*nodeHealth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Watch adds a node in the Healthy (optimistic) state.
func (m *Monitor) Watch(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[node]; !ok {
		m.nodes[node] = &nodeHealth{state: StateHealthy}
	}
}

// State returns a node's current state (StateDead for unknown nodes: an
// unwatched node must not receive traffic).
func (m *Monitor) State(node string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if nh, ok := m.nodes[node]; ok {
		return nh.state
	}
	return StateDead
}

// LastErr returns the most recent probe error for a node (nil if healthy
// or unknown).
func (m *Monitor) LastErr(node string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if nh, ok := m.nodes[node]; ok {
		return nh.lastErr
	}
	return nil
}

// Tick runs one probe round: every watched, not-yet-dead node is probed
// concurrently and its counters advance. Confirmed deaths fire onDead
// (outside the monitor lock) before Tick returns. The Start loop calls
// this on a timer; tests call it directly for sleep-free determinism.
func (m *Monitor) Tick() {
	m.mu.Lock()
	targets := make([]string, 0, len(m.nodes))
	for node, nh := range m.nodes {
		if nh.state != StateDead {
			targets = append(targets, node)
		}
	}
	m.mu.Unlock()

	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, node := range targets {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			errs[i] = m.probe(node)
		}(i, node)
	}
	wg.Wait()

	var died []string
	m.mu.Lock()
	for i, node := range targets {
		nh, ok := m.nodes[node]
		if !ok || nh.state == StateDead {
			continue
		}
		if errs[i] != nil {
			mProbeFailures.Inc()
			nh.lastErr = errs[i]
			nh.oks = 0
			nh.fails++
			if nh.fails >= m.opts.DeadAfter {
				observeTransition(nh.state, StateDead)
				nh.state = StateDead
				died = append(died, node)
			} else {
				observeTransition(nh.state, StateSuspect)
				nh.state = StateSuspect
			}
			continue
		}
		nh.fails = 0
		switch nh.state {
		case StateSuspect:
			nh.oks++
			if nh.oks >= m.opts.RecoverAfter {
				observeTransition(StateSuspect, StateHealthy)
				nh.state = StateHealthy
				nh.lastErr = nil
				nh.oks = 0
			}
		case StateHealthy:
			nh.lastErr = nil
		}
	}
	m.mu.Unlock()

	if m.onDead != nil {
		for _, node := range died {
			m.onDead(node)
		}
	}
}

// Start launches the periodic probe loop.
func (m *Monitor) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}
