package cluster

import (
	"errors"
	"sync"
	"testing"
)

// scriptedProbe returns per-node scripted results, one per Tick, repeating
// the last entry once the script runs out.
type scriptedProbe struct {
	mu     sync.Mutex
	script map[string][]error
	calls  map[string]int
}

func newScriptedProbe() *scriptedProbe {
	return &scriptedProbe{script: map[string][]error{}, calls: map[string]int{}}
}

func (p *scriptedProbe) set(node string, results ...error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.script[node] = results
	p.calls[node] = 0
}

func (p *scriptedProbe) probe(node string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.script[node]
	i := p.calls[node]
	p.calls[node]++
	if len(s) == 0 {
		return nil
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func (p *scriptedProbe) callCount(node string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[node]
}

var errDown = errors.New("connection refused")

func TestMonitorDeclaresDeadAfterThreshold(t *testing.T) {
	p := newScriptedProbe()
	p.set("w0", errDown) // fails forever
	p.set("w1")          // healthy forever

	var mu sync.Mutex
	var deaths []string
	m := NewMonitor(p.probe, func(n string) {
		mu.Lock()
		deaths = append(deaths, n)
		mu.Unlock()
	}, MonitorOptions{DeadAfter: 3, RecoverAfter: 2})
	m.Watch("w0")
	m.Watch("w1")

	m.Tick()
	if got := m.State("w0"); got != StateSuspect {
		t.Fatalf("after 1 failure: state %v, want suspect", got)
	}
	m.Tick()
	if got := m.State("w0"); got != StateSuspect {
		t.Fatalf("after 2 failures: state %v, want suspect", got)
	}
	if len(deaths) != 0 {
		t.Fatalf("onDead fired before threshold: %v", deaths)
	}
	m.Tick()
	if got := m.State("w0"); got != StateDead {
		t.Fatalf("after 3 failures: state %v, want dead", got)
	}
	if got := m.State("w1"); got != StateHealthy {
		t.Fatalf("healthy node w1 state %v, want healthy", got)
	}
	if len(deaths) != 1 || deaths[0] != "w0" {
		t.Fatalf("deaths = %v, want [w0]", deaths)
	}
	if m.LastErr("w0") == nil {
		t.Fatal("LastErr(w0) = nil, want the probe error")
	}

	// Dead is terminal: further ticks neither probe the corpse nor re-fire
	// onDead.
	before := p.callCount("w0")
	m.Tick()
	m.Tick()
	if got := p.callCount("w0"); got != before {
		t.Fatalf("dead node probed again: %d calls, want %d", got, before)
	}
	if len(deaths) != 1 {
		t.Fatalf("onDead fired %d times, want exactly once", len(deaths))
	}
	if got := m.State("w0"); got != StateDead {
		t.Fatalf("dead node state %v, want dead (terminal)", got)
	}
}

// TestMonitorRecoveryHysteresis: a suspect node needs RecoverAfter
// consecutive successes to be trusted again, and an interleaved failure
// resets the success streak.
func TestMonitorRecoveryHysteresis(t *testing.T) {
	p := newScriptedProbe()
	// fail, ok, fail, ok, ok -> healthy only at the 5th tick.
	p.set("w0", errDown, nil, errDown, nil, nil)

	m := NewMonitor(p.probe, nil, MonitorOptions{DeadAfter: 3, RecoverAfter: 2})
	m.Watch("w0")

	m.Tick() // fail -> suspect
	if got := m.State("w0"); got != StateSuspect {
		t.Fatalf("tick 1: %v, want suspect", got)
	}
	m.Tick() // ok (1 of 2) -> still suspect
	if got := m.State("w0"); got != StateSuspect {
		t.Fatalf("tick 2: %v, want suspect (hysteresis)", got)
	}
	m.Tick() // fail -> success streak reset
	if got := m.State("w0"); got != StateSuspect {
		t.Fatalf("tick 3: %v, want suspect", got)
	}
	m.Tick() // ok (1 of 2)
	if got := m.State("w0"); got != StateSuspect {
		t.Fatalf("tick 4: %v, want suspect (streak restarted)", got)
	}
	m.Tick() // ok (2 of 2) -> healthy
	if got := m.State("w0"); got != StateHealthy {
		t.Fatalf("tick 5: %v, want healthy", got)
	}
	if m.LastErr("w0") != nil {
		t.Fatalf("recovered node keeps LastErr %v", m.LastErr("w0"))
	}
}

// TestMonitorFailureStreakSurvivesOneSuccessThenDies: interleaving below
// the recovery threshold does not save a node that keeps failing — the
// failure counter restarts after each success, so death needs DeadAfter
// *consecutive* failures.
func TestMonitorConsecutiveFailuresRequired(t *testing.T) {
	p := newScriptedProbe()
	// fail, fail, ok, fail, fail, fail -> dead at tick 6, not tick 4.
	p.set("w0", errDown, errDown, nil, errDown, errDown, errDown)

	var deaths int
	m := NewMonitor(p.probe, func(string) { deaths++ }, MonitorOptions{DeadAfter: 3, RecoverAfter: 2})
	m.Watch("w0")

	for i := 1; i <= 5; i++ {
		m.Tick()
		if got := m.State("w0"); got == StateDead {
			t.Fatalf("tick %d: dead too early (failures not consecutive)", i)
		}
	}
	m.Tick()
	if got := m.State("w0"); got != StateDead {
		t.Fatalf("tick 6: %v, want dead", got)
	}
	if deaths != 1 {
		t.Fatalf("onDead fired %d times, want 1", deaths)
	}
}

func TestMonitorUnknownNodeIsDead(t *testing.T) {
	m := NewMonitor(func(string) error { return nil }, nil, MonitorOptions{})
	if got := m.State("ghost"); got != StateDead {
		t.Fatalf("unknown node state %v, want dead", got)
	}
	// Watch is idempotent and optimistic.
	m.Watch("w0")
	m.Watch("w0")
	if got := m.State("w0"); got != StateHealthy {
		t.Fatalf("fresh node state %v, want healthy", got)
	}
}

func TestNodeStateString(t *testing.T) {
	for s, want := range map[NodeState]string{
		StateHealthy:  "healthy",
		StateSuspect:  "suspect",
		StateDead:     "dead",
		NodeState(99): "unknown",
	} {
		if got := s.String(); got != want {
			t.Fatalf("NodeState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
