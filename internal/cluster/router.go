package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qfe/internal/obs"
	"qfe/internal/retry"
)

// Worker is one qfe-server node the router places sessions on. StatePath
// and WALDir name the node's durable estate on storage the other workers
// can reach; they are what survives the node and gets handed off when the
// health monitor declares it dead.
type Worker struct {
	ID        string `json:"id"`
	URL       string `json:"url"` // base URL, e.g. http://127.0.0.1:9001
	StatePath string `json:"statePath,omitempty"`
	WALDir    string `json:"walDir,omitempty"`
}

// Estate is a dead worker's durable remains: the snapshot + WAL the
// survivors rebuild its sessions from. Estates stay on the router's
// outstanding list forever (death is terminal), so every later failover
// re-broadcasts them — the chained-failure guarantee that an adopter dying
// mid-handoff never strands acknowledged state.
type Estate struct {
	Node      string `json:"node"`
	StatePath string `json:"statePath,omitempty"`
	WALDir    string `json:"walDir,omitempty"`
}

// Options configures a Router. Zero values select defaults.
type Options struct {
	Workers      []Worker
	VirtualNodes int // ring points per worker (0 = 128)

	// Health detection (see MonitorOptions).
	ProbeInterval time.Duration
	DeadAfter     int
	RecoverAfter  int

	// MaxInflight caps concurrent proxied requests per worker; beyond it the
	// router sheds with 503 + Retry-After instead of queueing (0 = 64).
	MaxInflight int64
	// RetryBudget bounds how long one proxied request may spend retrying
	// through worker failures and failover fencing before the router gives
	// up with 503 (0 = 30s; must cover DeadAfter*ProbeInterval + handoff).
	RetryBudget time.Duration
	// CallTimeout bounds one proxy attempt (0 = 2m; must cover a slow round
	// generation, matching the worker's write timeout).
	CallTimeout time.Duration
	// AdoptTimeout bounds one /admin/adopt call during failover (0 = 2m;
	// adoption replays a WAL tail, which can be slow).
	AdoptTimeout time.Duration

	// BreakerThreshold is how many consecutive request-path failures trip
	// a worker's circuit breaker open (0 = 5; <0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker refuses attempts
	// before admitting a half-open probe (0 = 1s).
	BreakerCooldown time.Duration

	// Client issues all upstream requests (nil = a fresh http.Client;
	// timeouts come from per-request contexts).
	Client *http.Client
	// Logf receives operational events (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = ringReplicas
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 30 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Minute
	}
	if o.AdoptTimeout <= 0 {
		o.AdoptTimeout = 2 * time.Minute
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.Client == nil {
		// Per-request deadlines (CallTimeout, AdoptTimeout, probe contexts)
		// bound every call; the shared transport bounds dial/TLS so a dead
		// peer fails fast instead of riding the OS SYN retry ladder.
		o.Client = retry.HTTPClientPerRequest()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// workerPhase is a worker's routing lifecycle. active -> fenced when the
// monitor declares it dead (its keys get 503 + Retry-After while the
// estate handoff runs); fenced -> removed once every survivor has adopted
// the estate and the worker leaves the ring (its keys then route to their
// preference-list successors, which now hold the state). There is no way
// back: a revived process rejoins as a new worker id.
type workerPhase int32

const (
	phaseActive workerPhase = iota
	phaseFenced
	phaseRemoved
)

func (p workerPhase) String() string {
	switch p {
	case phaseActive:
		return "active"
	case phaseFenced:
		return "fenced"
	case phaseRemoved:
		return "removed"
	}
	return "unknown"
}

// workerState is the router's view of one worker.
type workerState struct {
	w        Worker
	phase    atomic.Int32 // workerPhase; written under Router.mu, read anywhere
	inflight atomic.Int64
	// breaker sheds request-path failures faster than the probe-interval
	// failure detector can (nil when disabled).
	breaker *breaker
	// proxyLatency is this worker's pre-resolved attempt-latency histogram
	// (resolved once in NewRouter; the proxy path does no lookups).
	proxyLatency *obs.Histogram
}

func (ws *workerState) getPhase() workerPhase { return workerPhase(ws.phase.Load()) }

// acquire reserves an in-flight slot, failing when the worker is at cap.
func (ws *workerState) acquire(max int64) bool {
	if ws.inflight.Add(1) > max {
		ws.inflight.Add(-1)
		return false
	}
	return true
}

func (ws *workerState) release() { ws.inflight.Add(-1) }

// routerCounters are the router's cumulative operational counters.
type routerCounters struct {
	proxied        atomic.Int64 // client requests accepted for proxying
	retries        atomic.Int64 // upstream attempts beyond the first
	shed           atomic.Int64 // requests dropped at a worker's in-flight cap
	fenced         atomic.Int64 // resolutions deferred by a fenced home
	unavailable    atomic.Int64 // requests that exhausted the retry budget
	failovers      atomic.Int64 // workers declared dead
	adoptCalls     atomic.Int64 // /admin/adopt attempts issued
	adoptErrors    atomic.Int64 // adoptions that exhausted their retries
	breakerTrips   atomic.Int64 // circuit breakers tripped open
	breakerRejects atomic.Int64 // attempts refused by an open breaker
}

// CounterSnapshot is the JSON form of the router counters.
type CounterSnapshot struct {
	Proxied        int64 `json:"proxied"`
	Retries        int64 `json:"retries"`
	Shed           int64 `json:"shed"`
	Fenced         int64 `json:"fenced"`
	Unavailable    int64 `json:"unavailable"`
	Failovers      int64 `json:"failovers"`
	AdoptCalls     int64 `json:"adoptCalls"`
	AdoptErrors    int64 `json:"adoptErrors"`
	BreakerTrips   int64 `json:"breakerTrips"`
	BreakerRejects int64 `json:"breakerRejects"`
}

// Router fronts a set of qfe-server workers: it places sessions with the
// consistent-hash ring, watches worker health, proxies the session API with
// capped-backoff retries (safe end to end because creates are idempotent by
// id and feedback is idempotent by seq), sheds load at per-worker in-flight
// caps, and on a confirmed death hands the dead node's durable estate to
// the survivors before reassigning its hash range.
//
// Router endpoints, beyond the proxied session API:
//
//	GET /healthz        200 while at least one worker is routable
//	GET /cluster/stats  worker phases, outstanding estates, counters
type Router struct {
	opts    Options
	monitor *Monitor

	mu      sync.Mutex
	ring    *Ring
	workers map[string]*workerState
	estates []Estate

	counters routerCounters

	// failoversDone counts completed handoffs; tests wait on it.
	failoversDone atomic.Int64
}

// NewRouter builds a router over a static worker set. Call Start to begin
// health probing (tests drive rt.Tick instead).
func NewRouter(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: router needs at least one worker")
	}
	rt := &Router{
		opts:    opts,
		ring:    NewRing(opts.VirtualNodes),
		workers: make(map[string]*workerState, len(opts.Workers)),
	}
	for _, w := range opts.Workers {
		if w.ID == "" || w.URL == "" {
			return nil, fmt.Errorf("cluster: worker needs id and url (got %+v)", w)
		}
		if _, dup := rt.workers[w.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker id %q", w.ID)
		}
		ws := &workerState{w: Worker{
			ID:        w.ID,
			URL:       strings.TrimRight(w.URL, "/"),
			StatePath: w.StatePath,
			WALDir:    w.WALDir,
		}}
		ws.proxyLatency = mProxyLatency.With(w.ID)
		if opts.BreakerThreshold > 0 {
			b := newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
			id := w.ID
			b.onTrip = func() {
				rt.counters.breakerTrips.Add(1)
				mBreakerTrips.Inc()
				rt.opts.Logf("cluster: breaker tripped open for worker %s (cooldown %s)", id, opts.BreakerCooldown)
			}
			ws.breaker = b
		}
		rt.workers[w.ID] = ws
		rt.ring.Add(w.ID)
	}
	rt.monitor = NewMonitor(rt.probeWorker, rt.onWorkerDead, MonitorOptions{
		Interval:     opts.ProbeInterval,
		DeadAfter:    opts.DeadAfter,
		RecoverAfter: opts.RecoverAfter,
	})
	for id := range rt.workers {
		rt.monitor.Watch(id)
	}
	return rt, nil
}

// Start launches periodic health probing.
func (rt *Router) Start() { rt.monitor.Start() }

// Stop halts health probing (in-flight failovers still complete).
func (rt *Router) Stop() { rt.monitor.Stop() }

// Tick runs one probe round synchronously (test hook; failovers it
// triggers still run asynchronously — wait on FailoversDone).
func (rt *Router) Tick() { rt.monitor.Tick() }

// FailoversDone returns how many estate handoffs have completed.
func (rt *Router) FailoversDone() int64 { return rt.failoversDone.Load() }

// probeWorker is the Monitor's ProbeFunc: a bounded GET /healthz.
func (rt *Router) probeWorker(id string) error {
	rt.mu.Lock()
	ws := rt.workers[id]
	rt.mu.Unlock()
	if ws == nil {
		return fmt.Errorf("unknown worker %q", id)
	}
	timeout := rt.opts.ProbeInterval
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.w.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A 503 healthz means the worker can no longer durably acknowledge
		// (WAL failure) — as dead as a refused connection, for routing.
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// onWorkerDead runs the failover asynchronously so the probe loop keeps
// ticking (a second death during a handoff must still be detected).
func (rt *Router) onWorkerDead(id string) { go rt.failover(id) }

// failover fences a confirmed-dead worker, broadcasts every outstanding
// estate (the dead node's and all earlier ones) to every live worker, and
// only then removes the dead node from the ring so its keys reroute.
//
// Safety argument, in order:
//   - Fencing first means no request for the dead node's keys can reach a
//     successor before the successor holds the state (clients see 503 +
//     Retry-After and retry — feedback is seq-idempotent, so this is safe).
//   - Broadcasting to ALL live workers (not just ring successors) is
//     deliberate redundancy: whichever workers survive, at least one
//     routable successor for every reassigned key has adopted the estate.
//   - Adoption is merge-by-progress and re-runnable, and the estate files
//     themselves are never deleted, so an adopter dying mid-handoff costs
//     nothing: its own failover re-broadcasts the full estate list.
//   - ring.Remove happens last; from then on Lookup sends each orphaned key
//     to its preference-list successor, which has the state.
func (rt *Router) failover(dead string) {
	rt.mu.Lock()
	ws := rt.workers[dead]
	if ws == nil || ws.getPhase() != phaseActive {
		rt.mu.Unlock()
		return
	}
	rt.counters.failovers.Add(1)
	mFailovers.Inc()
	ws.phase.Store(int32(phaseFenced))
	if ws.w.StatePath != "" || ws.w.WALDir != "" {
		rt.estates = append(rt.estates, Estate{Node: dead, StatePath: ws.w.StatePath, WALDir: ws.w.WALDir})
	}
	estates := append([]Estate(nil), rt.estates...)
	var targets []*workerState
	for _, t := range rt.workers {
		if t.getPhase() == phaseActive {
			targets = append(targets, t)
		}
	}
	rt.mu.Unlock()

	rt.opts.Logf("cluster: worker %s dead (%v); fenced, handing %d estate(s) to %d survivor(s)",
		dead, rt.monitor.LastErr(dead), len(estates), len(targets))
	for _, t := range targets {
		for _, e := range estates {
			rt.adoptEstate(t, e)
		}
	}

	rt.mu.Lock()
	ws.phase.Store(int32(phaseRemoved))
	rt.ring.Remove(dead)
	live := rt.liveCountLocked()
	rt.mu.Unlock()
	rt.failoversDone.Add(1)
	mFailoversDone.Inc()
	rt.opts.Logf("cluster: worker %s removed from ring; %d worker(s) remain routable", dead, live)
}

// adoptEstate tells one worker to ingest one estate, retrying with backoff.
// Failure is tolerable (counted, logged): the target either died — its own
// failover re-broadcasts — or the redundant copies on the other survivors
// carry the state.
func (rt *Router) adoptEstate(t *workerState, e Estate) {
	body, _ := json.Marshal(struct {
		StatePath string `json:"statePath,omitempty"`
		WALDir    string `json:"walDir,omitempty"`
	}{e.StatePath, e.WALDir})
	pol := retry.Policy{Budget: rt.opts.RetryBudget}
	err := pol.Do(context.Background(), func() error {
		rt.counters.adoptCalls.Add(1)
		mAdoptCalls.Inc()
		ctx, cancel := context.WithTimeout(context.Background(), rt.opts.AdoptTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			t.w.URL+"/admin/adopt", bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.opts.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("adopt: worker %s status %d: %s", t.w.ID, resp.StatusCode, bytes.TrimSpace(msg))
		}
		var ar struct {
			SnapshotSessions int `json:"snapshotSessions"`
			ReplaySessions   int `json:"replaySessions"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ar); err == nil {
			rt.opts.Logf("cluster: worker %s adopted estate of %s (%d from snapshot, %d via WAL replay)",
				t.w.ID, e.Node, ar.SnapshotSessions, ar.ReplaySessions)
		}
		return nil
	})
	if err != nil {
		rt.counters.adoptErrors.Add(1)
		mAdoptErrors.Inc()
		rt.opts.Logf("cluster: worker %s failed to adopt estate of %s: %v", t.w.ID, e.Node, err)
	}
}

func (rt *Router) liveCountLocked() int {
	n := 0
	for _, ws := range rt.workers {
		if ws.getPhase() == phaseActive {
			n++
		}
	}
	return n
}

// Routing sentinels. Fenced/unroutable homes are retryable — the retry loop
// re-resolves each attempt, so once a failover completes the request lands
// on the successor.
var (
	errNoWorkers   = errors.New("no routable workers")
	errFenced      = errors.New("home worker fenced, failover in progress")
	errShed        = errors.New("worker at in-flight capacity")
	errBreakerOpen = errors.New("worker circuit breaker open")
)

// resolve picks the worker for a key. Lookups and feedback go strictly to
// the ring home (fenced home -> retryable error: serving from a successor
// before the handoff completes could read pre-adoption state). Creates may
// skip fenced workers — the session does not exist yet, and by the
// preference-list property the skip agrees with every later post-removal
// Lookup of the same key.
func (rt *Router) resolve(key string, create bool) (*workerState, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.ring.Len() == 0 {
		return nil, retry.Permanent(errNoWorkers)
	}
	if create {
		for _, id := range rt.ring.LookupN(key, rt.ring.Len()) {
			if ws := rt.workers[id]; ws.getPhase() == phaseActive {
				return ws, nil
			}
		}
		rt.counters.fenced.Add(1)
		mFenced.Inc()
		return nil, errFenced
	}
	ws := rt.workers[rt.ring.Lookup(key)]
	if ws.getPhase() != phaseActive {
		rt.counters.fenced.Add(1)
		mFenced.Inc()
		return nil, errFenced
	}
	return ws, nil
}

// ServeHTTP proxies the qfe-server session API and serves the router's own
// health and stats endpoints.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		rt.healthz(w, r)
	case r.URL.Path == "/metrics":
		obs.Handler().ServeHTTP(w, r)
	case r.URL.Path == "/cluster/stats":
		rt.clusterStats(w, r)
	case r.URL.Path == "/sessions":
		rt.create(w, r)
	case strings.HasPrefix(r.URL.Path, "/sessions/"):
		rt.session(w, r)
	default:
		writeJSONR(w, http.StatusNotFound, map[string]string{"error": "not found"})
	}
}

// newSessionID draws a 128-bit random id. The router names sessions so that
// placement is a pure hash of the id — no placement table to persist, and a
// restarted router routes identically.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// create handles POST /sessions: inject a session id into the body (unless
// the client named one), route by its hash, proxy with retries. Retried or
// duplicated creates are safe: workers treat create-by-existing-id as a
// read of that session's current status.
func (rt *Router) create(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONR(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST /sessions"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSONR(w, status, map[string]string{"error": err.Error()})
		return
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		writeJSONR(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	var id string
	if rawID, ok := fields["sessionID"]; ok {
		_ = json.Unmarshal(rawID, &id)
	}
	if id == "" {
		id = newSessionID()
		fields["sessionID"], _ = json.Marshal(id)
		if raw, err = json.Marshal(fields); err != nil {
			writeJSONR(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	rt.proxy(w, r, id, true, http.MethodPost, "/sessions", raw)
}

// session handles /sessions/{id}[/feedback] by strict-home proxying.
func (rt *Router) session(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "feedback") {
		writeJSONR(w, http.StatusNotFound, map[string]string{"error": "not found"})
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeJSONR(w, status, map[string]string{"error": err.Error()})
			return
		}
	}
	rt.proxy(w, r, id, false, r.Method, r.URL.Path, body)
}

// bufferedResp is one upstream response, buffered so retries can discard
// failed attempts and the final answer is relayed whole.
type bufferedResp struct {
	status      int
	contentType string
	body        []byte
}

// proxy forwards one request to the key's worker, retrying with capped
// exponential backoff + full jitter through worker failures and failover
// fencing. Worker 503s are treated as transient (the worker may be dying —
// the route re-resolves next attempt); every other status, including
// application errors, passes through to the client.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, key string, create bool, method, path string, body []byte) {
	rt.counters.proxied.Add(1)
	mProxied.Inc()
	var out *bufferedResp
	pol := retry.Policy{
		Budget: rt.opts.RetryBudget,
		OnRetry: func(int, error, time.Duration) {
			rt.counters.retries.Add(1)
			mRetries.Inc()
		},
	}
	err := pol.Do(r.Context(), func() error {
		ws, err := rt.resolve(key, create)
		if err != nil {
			return err
		}
		if ws.breaker != nil && !ws.breaker.Allow() {
			// Short-circuit without burning a transport timeout. Retryable:
			// the loop backs off and re-resolves, so by the next attempt the
			// breaker may be half-open or the worker fenced and failed over.
			rt.counters.breakerRejects.Add(1)
			mBreakerRejects.Inc()
			return fmt.Errorf("worker %s: %w", ws.w.ID, errBreakerOpen)
		}
		if !ws.acquire(rt.opts.MaxInflight) {
			// Shed immediately rather than queue: under overload, fast 503s
			// with Retry-After keep latency bounded and let clients back off.
			rt.counters.shed.Add(1)
			mShed.Inc()
			return retry.Permanent(errShed)
		}
		defer ws.release()
		t0 := time.Now()
		resp, err := rt.attempt(r.Context(), ws, method, path, body)
		ws.proxyLatency.ObserveDuration(time.Since(t0))
		if err != nil {
			// Transport-level failure: the worker never answered. Feed the
			// breaker unless the client itself gave up (its canceled context
			// says nothing about the worker's health).
			if ws.breaker != nil && r.Context().Err() == nil {
				ws.breaker.Failure()
			}
			return err
		}
		if resp.status == http.StatusServiceUnavailable {
			// The worker answered but cannot serve (degraded WAL, shutting
			// down). Counts against the breaker: a degraded worker should
			// shed at request speed, not per-attempt timeout speed.
			if ws.breaker != nil {
				ws.breaker.Failure()
			}
			return fmt.Errorf("worker %s unavailable", ws.w.ID)
		}
		if ws.breaker != nil {
			ws.breaker.Success()
		}
		out = resp
		return nil
	})
	if err != nil {
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", "1")
			writeJSONR(w, http.StatusServiceUnavailable, map[string]string{"error": errShed.Error()})
			return
		}
		rt.counters.unavailable.Add(1)
		mUnavailable.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSONR(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	if out.contentType != "" {
		w.Header().Set("Content-Type", out.contentType)
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// attempt issues one upstream call and buffers the response.
func (rt *Router) attempt(ctx context.Context, ws *workerState, method, path string, body []byte) (*bufferedResp, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.CallTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ws.w.URL+path, rd)
	if err != nil {
		return nil, retry.Permanent(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the request id minted at the router's front door so the
	// worker's structured logs carry the same id as the router's.
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	return &bufferedResp{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        buf,
	}, nil
}

// healthz reports router health: 200 while at least one worker is routable.
func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	live := rt.liveCountLocked()
	total := len(rt.workers)
	rt.mu.Unlock()
	status := http.StatusOK
	if live == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSONR(w, status, map[string]any{"ok": live > 0, "live": live, "workers": total})
}

// WorkerInfo is one worker's row in /cluster/stats.
type WorkerInfo struct {
	ID           string          `json:"id"`
	URL          string          `json:"url"`
	Phase        string          `json:"phase"`
	Health       string          `json:"health"`
	Inflight     int64           `json:"inflight"`
	Breaker      string          `json:"breaker,omitempty"` // closed / open / half-open
	BreakerTrips int64           `json:"breakerTrips,omitempty"`
	Stats        json.RawMessage `json:"stats,omitempty"` // live worker's /stats, when reachable
}

// ClusterStats is the GET /cluster/stats payload.
type ClusterStats struct {
	Build         obs.Build       `json:"build"`
	UptimeSeconds float64         `json:"uptimeSeconds"`
	Live          int             `json:"live"`
	Workers       []WorkerInfo    `json:"workers"`
	Estates       []Estate        `json:"estates,omitempty"`
	Counters      CounterSnapshot `json:"counters"`
}

// clusterStats reports worker phases, outstanding estates, and counters,
// enriching live workers with their own /stats (best-effort, bounded).
func (rt *Router) clusterStats(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.workers))
	for id := range rt.workers {
		ids = append(ids, id)
	}
	states := make(map[string]*workerState, len(ids))
	for id, ws := range rt.workers {
		states[id] = ws
	}
	estates := append([]Estate(nil), rt.estates...)
	live := rt.liveCountLocked()
	rt.mu.Unlock()

	out := ClusterStats{
		Build:         obs.BuildInfo(),
		UptimeSeconds: obs.Uptime().Seconds(),
		Live:          live,
		Estates:       estates,
		Counters: CounterSnapshot{
			Proxied:        rt.counters.proxied.Load(),
			Retries:        rt.counters.retries.Load(),
			Shed:           rt.counters.shed.Load(),
			Fenced:         rt.counters.fenced.Load(),
			Unavailable:    rt.counters.unavailable.Load(),
			Failovers:      rt.counters.failovers.Load(),
			AdoptCalls:     rt.counters.adoptCalls.Load(),
			AdoptErrors:    rt.counters.adoptErrors.Load(),
			BreakerTrips:   rt.counters.breakerTrips.Load(),
			BreakerRejects: rt.counters.breakerRejects.Load(),
		},
	}
	infos := make([]WorkerInfo, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		ws := states[id]
		infos[i] = WorkerInfo{
			ID:       id,
			URL:      ws.w.URL,
			Phase:    ws.getPhase().String(),
			Health:   rt.monitor.State(id).String(),
			Inflight: ws.inflight.Load(),
		}
		if ws.breaker != nil {
			st, trips := ws.breaker.State()
			infos[i].Breaker = st.String()
			infos[i].BreakerTrips = trips
		}
		if ws.getPhase() != phaseActive {
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/stats", nil)
			if err != nil {
				return
			}
			resp, err := rt.opts.Client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			buf, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err == nil && json.Valid(buf) {
				infos[i].Stats = buf
			}
		}(i, ws.w.URL)
	}
	wg.Wait()
	// Deterministic order for humans and tests.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	out.Workers = infos
	writeJSONR(w, http.StatusOK, out)
}

// writeJSONR mirrors the service tier's JSON writer without importing it
// (the cluster package stays decoupled from the engine).
func writeJSONR(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
