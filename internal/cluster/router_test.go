package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"qfe/internal/core"
	"qfe/internal/service"
	"qfe/internal/wal"
)

// testWorker is one in-process qfe-server: a real Manager with a real WAL,
// behind an httptest server whose Close() plays the part of SIGKILL (the
// manager's memory survives but becomes unreachable; only its on-disk
// estate matters to the cluster from then on).
type testWorker struct {
	def     Worker
	manager *service.Manager
	srv     *httptest.Server
}

func newTestWorker(t *testing.T, id string) *testWorker {
	t.Helper()
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	walDir := filepath.Join(dir, "wal")
	journal, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg := core.DefaultConfig()
	// Deterministic generator budget: WAL replay on the adopter must rebuild
	// the same rounds the dead worker acknowledged.
	cfg.Gen.Budget.MaxPairs = 100000
	cfg.Gen.Budget.MaxDuration = 0
	m := service.New(service.Options{Config: cfg, Journal: journal})
	srv := httptest.NewServer(service.NewHandler(m, service.HandlerOptions{
		EnableAdmin: true,
		StatePath:   statePath,
	}))
	t.Cleanup(srv.Close)
	return &testWorker{
		def:     Worker{ID: id, URL: srv.URL, StatePath: statePath, WALDir: walDir},
		manager: m,
		srv:     srv,
	}
}

// clusterFixture is a 3-worker cluster behind a router, with the router
// itself also served over HTTP so the test exercises the full proxy path.
type clusterFixture struct {
	workers map[string]*testWorker
	rt      *Router
	front   *httptest.Server
}

func newClusterFixture(t *testing.T, n int) *clusterFixture {
	t.Helper()
	f := &clusterFixture{workers: map[string]*testWorker{}}
	var defs []Worker
	for i := 0; i < n; i++ {
		w := newTestWorker(t, fmt.Sprintf("w%d", i))
		f.workers[w.def.ID] = w
		defs = append(defs, w.def)
	}
	rt, err := NewRouter(Options{
		Workers:     defs,
		DeadAfter:   2,
		RetryBudget: 30 * time.Second,
		CallTimeout: 30 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	f.rt = rt
	f.front = httptest.NewServer(rt)
	t.Cleanup(f.front.Close)
	return f
}

// do issues one JSON request against the router front-end.
func (f *clusterFixture) do(t *testing.T, method, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, f.front.URL+path, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var fields map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, fields
}

// sessionView is the slice of SessionJSON the tests compare.
type sessionView struct {
	id   string
	done bool
	seq  int
}

func parseSession(t *testing.T, fields map[string]json.RawMessage) sessionView {
	t.Helper()
	var v sessionView
	if err := json.Unmarshal(fields["id"], &v.id); err != nil {
		t.Fatalf("session has no id: %v (%s)", err, fields["error"])
	}
	if raw, ok := fields["done"]; ok {
		json.Unmarshal(raw, &v.done)
	}
	if raw, ok := fields["round"]; ok && string(raw) != "null" {
		var round struct {
			Seq int `json:"seq"`
		}
		if err := json.Unmarshal(raw, &round); err != nil {
			t.Fatalf("bad round: %v", err)
		}
		v.seq = round.Seq
	}
	return v
}

// homeOf resolves a session's current worker through the router's ring.
func (f *clusterFixture) homeOf(t *testing.T, id string) string {
	t.Helper()
	ws, err := f.rt.resolve(id, false)
	if err != nil {
		t.Fatalf("resolve(%s): %v", id, err)
	}
	return ws.w.ID
}

// TestRouterFailoverPreservesAcknowledgedSessions is the tentpole's core
// correctness test: create sessions across the cluster, acknowledge one
// feedback round each, kill a worker, and require (a) sessions on the
// survivors stay available during the outage — the availability acceptance
// criterion — and (b) after failover, every session the dead worker owned
// is served by a survivor with all acknowledged progress intact and can
// continue.
func TestRouterFailoverPreservesAcknowledgedSessions(t *testing.T) {
	f := newClusterFixture(t, 3)

	// Create sessions until every worker owns at least two.
	perWorker := map[string][]sessionView{}
	for i := 0; i < 64; i++ {
		short := 0
		for _, w := range f.rt.opts.Workers {
			if len(perWorker[w.ID]) < 2 {
				short++
			}
		}
		if short == 0 {
			break
		}
		status, fields := f.do(t, http.MethodPost, "/sessions", map[string]string{"dataset": "demo"})
		if status != http.StatusCreated {
			t.Fatalf("create %d: status %d (%s)", i, status, fields["error"])
		}
		v := parseSession(t, fields)
		if v.seq == 0 && !v.done {
			t.Fatalf("create %d: no first round in response", i)
		}
		perWorker[f.homeOf(t, v.id)] = append(perWorker[f.homeOf(t, v.id)], v)
	}
	for _, w := range f.rt.opts.Workers {
		if len(perWorker[w.ID]) < 2 {
			t.Fatalf("worker %s owns %d sessions; placement badly skewed", w.ID, len(perWorker[w.ID]))
		}
	}

	// Acknowledge one feedback round per session; the recorded post-feedback
	// view is the state that must survive the crash.
	acked := map[string]sessionView{}
	for home, views := range perWorker {
		for _, v := range views {
			status, fields := f.do(t, http.MethodPost, "/sessions/"+v.id+"/feedback",
				map[string]int{"choice": 0, "seq": v.seq})
			if status != http.StatusOK {
				t.Fatalf("feedback %s (home %s): status %d (%s)", v.id, home, status, fields["error"])
			}
			acked[v.id] = parseSession(t, fields)
		}
	}

	// SIGKILL stand-in: the victim's listener dies; its WAL stays on disk.
	victim := "w1"
	f.workers[victim].srv.Close()

	// Availability under partial failure: sessions homed on the survivors
	// answer immediately while the victim is down and not yet failed over.
	for home, views := range perWorker {
		if home == victim {
			continue
		}
		for _, v := range views {
			status, fields := f.do(t, http.MethodGet, "/sessions/"+v.id, nil)
			if status != http.StatusOK {
				t.Fatalf("survivor session %s (home %s) unavailable during outage: %d (%s)",
					v.id, home, status, fields["error"])
			}
		}
	}

	// Drive the failure detector to a verdict, then wait for the handoff.
	for i := 0; i < 2; i++ {
		f.rt.Tick()
	}
	if got := f.rt.monitor.State(victim); got != StateDead {
		t.Fatalf("victim state %v after DeadAfter ticks, want dead", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for f.rt.FailoversDone() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("failover did not complete")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every session — including the victim's — must now be served with its
	// acknowledged progress intact.
	for id, want := range acked {
		status, fields := f.do(t, http.MethodGet, "/sessions/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("post-failover GET %s: status %d (%s)", id, status, fields["error"])
		}
		got := parseSession(t, fields)
		if got.done != want.done || got.seq != want.seq {
			t.Fatalf("session %s lost acknowledged state: got done=%v seq=%d, want done=%v seq=%d",
				id, got.done, got.seq, want.done, want.seq)
		}
		if home := f.homeOf(t, id); home == victim {
			t.Fatalf("session %s still routes to the dead worker", id)
		}
	}

	// And the adopted sessions keep working: push one further feedback round
	// on a session the victim used to own.
	for _, v := range perWorker[victim] {
		cur := acked[v.id]
		if cur.done {
			continue
		}
		status, fields := f.do(t, http.MethodPost, "/sessions/"+v.id+"/feedback",
			map[string]int{"choice": 0, "seq": cur.seq})
		if status != http.StatusOK {
			t.Fatalf("post-failover feedback %s: status %d (%s)", v.id, status, fields["error"])
		}
		next := parseSession(t, fields)
		if !next.done && next.seq <= cur.seq {
			t.Fatalf("post-failover feedback %s did not advance: seq %d -> %d", v.id, cur.seq, next.seq)
		}
		break
	}

	if got := f.rt.counters.failovers.Load(); got != 1 {
		t.Fatalf("failovers counter = %d, want 1", got)
	}

	// The router's own health and stats surfaces reflect the new topology.
	status, fields := f.do(t, http.MethodGet, "/cluster/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("/cluster/stats: %d", status)
	}
	var estates []Estate
	json.Unmarshal(fields["estates"], &estates)
	if len(estates) != 1 || estates[0].Node != victim {
		t.Fatalf("estates = %+v, want exactly the victim's", estates)
	}
	status, fields = f.do(t, http.MethodGet, "/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("router /healthz after failover: %d (%s)", status, fields["error"])
	}
	var live int
	json.Unmarshal(fields["live"], &live)
	if live != 2 {
		t.Fatalf("router reports %d live workers, want 2", live)
	}
}

// TestRouterCreateGeneratesUniqueRoutableIDs: the router names sessions
// itself, every id is fresh, and a client-chosen id is honored.
func TestRouterCreateRouting(t *testing.T) {
	f := newClusterFixture(t, 3)
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		status, fields := f.do(t, http.MethodPost, "/sessions", map[string]string{"dataset": "demo"})
		if status != http.StatusCreated {
			t.Fatalf("create: status %d (%s)", status, fields["error"])
		}
		v := parseSession(t, fields)
		if seen[v.id] {
			t.Fatalf("duplicate generated id %s", v.id)
		}
		seen[v.id] = true
	}

	// Client-supplied id: honored, and a retry of the same create is served
	// idempotently rather than erroring.
	body := map[string]string{"dataset": "demo", "sessionID": "retry-me"}
	status, fields := f.do(t, http.MethodPost, "/sessions", body)
	if status != http.StatusCreated {
		t.Fatalf("named create: status %d (%s)", status, fields["error"])
	}
	first := parseSession(t, fields)
	if first.id != "retry-me" {
		t.Fatalf("named create id = %s, want retry-me", first.id)
	}
	status, fields = f.do(t, http.MethodPost, "/sessions", body)
	if status != http.StatusCreated {
		t.Fatalf("replayed create: status %d (%s)", status, fields["error"])
	}
	if again := parseSession(t, fields); again.id != first.id || again.seq != first.seq {
		t.Fatalf("replayed create diverged: %+v vs %+v", again, first)
	}
}

// TestRouterShedsAtInflightCap: a worker at its in-flight cap sheds with
// 503 + Retry-After instead of queueing.
func TestRouterShedsAtInflightCap(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	// Unblock the slow handler before the deferred server Closes run (defers
	// precede t.Cleanup), so shutdown does not wait out its grace period.
	defer close(release)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		entered <- struct{}{}
		<-release
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x","done":false}`)
	}))
	t.Cleanup(slow.Close)

	rt, err := NewRouter(Options{
		Workers:     []Worker{{ID: "w0", URL: slow.URL}},
		MaxInflight: 1,
		RetryBudget: 5 * time.Second,
		CallTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	go func() { // occupies the single slot until release closes
		resp, err := http.Get(front.URL + "/sessions/x")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(front.URL + "/sessions/y")
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("at cap: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := rt.counters.shed.Load(); got < 1 {
		t.Fatalf("shed counter = %d, want >= 1", got)
	}
}
