package cluster

import "qfe/internal/obs"

// Router-tier handles (DESIGN.md §13). The routerCounters atomics remain the
// source of truth for /cluster/stats; these obs mirrors expose the same
// events on /metrics. Per-worker proxy latency histograms are resolved once
// in NewRouter and stored on each workerState, so the proxy hot path never
// touches a map.
var (
	mProxied = obs.NewCounter("qfe_router_proxied_total",
		"Client requests accepted for proxying.")
	mRetries = obs.NewCounter("qfe_router_retries_total",
		"Upstream proxy attempts beyond the first.")
	mShed = obs.NewCounter("qfe_router_shed_total",
		"Requests dropped at a worker's in-flight cap.")
	mFenced = obs.NewCounter("qfe_router_fenced_total",
		"Resolutions deferred because the home worker was fenced.")
	mUnavailable = obs.NewCounter("qfe_router_unavailable_total",
		"Requests that exhausted the retry budget.")
	mFailovers = obs.NewCounter("qfe_router_failovers_total",
		"Workers declared dead (estate handoffs started).")
	mFailoversDone = obs.NewCounter("qfe_router_failovers_done_total",
		"Estate handoffs completed (worker removed from the ring).")
	mAdoptCalls = obs.NewCounter("qfe_router_adopt_calls_total",
		"/admin/adopt attempts issued during failovers.")
	mAdoptErrors = obs.NewCounter("qfe_router_adopt_errors_total",
		"Estate adoptions that exhausted their retries.")
	mBreakerTrips = obs.NewCounter("qfe_router_breaker_trips_total",
		"Per-worker circuit breakers tripped open.")
	mBreakerRejects = obs.NewCounter("qfe_router_breaker_rejects_total",
		"Proxy attempts refused by an open circuit breaker.")

	mProxyLatency = obs.NewHistogramVec("qfe_router_proxy_seconds",
		"One upstream proxy attempt's latency by worker.",
		obs.LatencyOpts, "worker")

	mProbeFailures = obs.NewCounter("qfe_router_probe_failures_total",
		"Health probes that returned an error.")

	// Probe state transitions, pre-resolved per edge of the detector's state
	// machine (healthy -> suspect -> {healthy, dead}; healthy -> dead covers
	// DeadAfter=1 configurations).
	probeTransitions = obs.NewCounterVec("qfe_router_probe_transitions_total",
		"Failure-detector state transitions.", "from", "to")
	mHealthySuspect = probeTransitions.With("healthy", "suspect")
	mSuspectHealthy = probeTransitions.With("suspect", "healthy")
	mSuspectDead    = probeTransitions.With("suspect", "dead")
	mHealthyDead    = probeTransitions.With("healthy", "dead")
)

// observeTransition records one detector edge.
func observeTransition(from, to NodeState) {
	switch {
	case from == StateHealthy && to == StateSuspect:
		mHealthySuspect.Inc()
	case from == StateSuspect && to == StateHealthy:
		mSuspectHealthy.Inc()
	case from == StateSuspect && to == StateDead:
		mSuspectDead.Inc()
	case from == StateHealthy && to == StateDead:
		mHealthyDead.Inc()
	}
}
