package cluster

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks closed -> open -> half-open -> closed and
// the half-open -> open re-trip, with a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return clock }
	trips := 0
	b.onTrip = func() { trips++ }

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if st, _ := b.State(); st != breakerClosed {
		t.Fatalf("state after 2 failures: %v", st)
	}

	// Third consecutive failure trips it.
	b.Failure()
	if st, _ := b.State(); st != breakerOpen || trips != 1 {
		t.Fatalf("state after threshold: %v, trips %d", st, trips)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt inside the cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe is admitted.
	clock = clock.Add(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent half-open probe")
	}

	// Probe fails: re-open for another full cooldown.
	b.Failure()
	if st, _ := b.State(); st != breakerOpen || trips != 2 {
		t.Fatalf("state after failed probe: %v, trips %d", st, trips)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted an attempt immediately")
	}

	// Second probe succeeds: closed, failure run reset.
	clock = clock.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second half-open probe")
	}
	b.Success()
	if st, _ := b.State(); st != breakerClosed {
		t.Fatalf("state after successful probe: %v", st)
	}

	// The reset means two fresh failures do not trip.
	b.Failure()
	b.Failure()
	if st, _ := b.State(); st != breakerClosed {
		t.Fatal("failure run survived the successful probe")
	}
	// An interleaved success clears the run again.
	b.Success()
	b.Failure()
	b.Failure()
	if st, _ := b.State(); st != breakerClosed || trips != 2 {
		t.Fatalf("non-consecutive failures tripped the breaker: trips %d", trips)
	}
}
