package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition of a small,
// fully-controlled registry (a fresh one — Default() carries the package's
// init-registered build metrics, whose values vary by build).
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_requests_total", "Total requests.").Add(3)
	reg.Gauge("t_inflight", "In flight.").Set(2)
	reg.GaugeFunc("t_uptime", "Uptime.", func() float64 { return 1.5 })
	h := reg.Histogram("t_size", "Sizes.", HistogramOpts{MinExp: 0, MaxExp: 2})
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	cv := reg.CounterVec("t_by_route", "By route.", "route")
	cv.With("/a").Inc()
	cv.With("/b").Add(2)

	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# HELP t_by_route By route.
# TYPE t_by_route counter
t_by_route{route="/a"} 1
t_by_route{route="/b"} 2
# HELP t_inflight In flight.
# TYPE t_inflight gauge
t_inflight 2
# HELP t_requests_total Total requests.
# TYPE t_requests_total counter
t_requests_total 3
# HELP t_size Sizes.
# TYPE t_size histogram
t_size_bucket{le="1"} 1
t_size_bucket{le="2"} 2
t_size_bucket{le="4"} 3
t_size_bucket{le="+Inf"} 4
t_size_sum 106
t_size_count 4
# HELP t_uptime Uptime.
# TYPE t_uptime gauge
t_uptime 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusLatencyScaling(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_seconds", "Latency.", LatencyOpts)
	h.Observe(1000) // 1µs in ns -> first bucket (le = 2^10 / 1e9)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `t_seconds_bucket{le="1.024e-06"} 1`) {
		t.Errorf("first latency bucket not scaled to seconds:\n%s", out)
	}
	if !strings.Contains(out, "t_seconds_sum 1e-06\n") {
		t.Errorf("latency sum not scaled to seconds:\n%s", out)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("t_esc", "help with \"quotes\" and\nnewline", "l").
		With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `# HELP t_esc help with "quotes" and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `t_esc{l="a\"b\\c\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_total", "T.").Add(7)
	h := reg.Histogram("t_sizes", "S.", HistogramOpts{MinExp: 0, MaxExp: 4})
	for i := int64(1); i <= 10; i++ {
		h.Observe(i)
	}
	reg.GaugeVec("t_info", "I.", "version").With("v1").Set(1)

	var b strings.Builder
	reg.WriteJSON(&b)
	var out []MetricJSON
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
	}
	byName := map[string]MetricJSON{}
	for _, m := range out {
		byName[m.Name] = m
	}
	if m := byName["t_total"]; m.Type != "counter" || m.Value == nil || *m.Value != 7 {
		t.Errorf("t_total = %+v, want counter 7", m)
	}
	hist := byName["t_sizes"]
	if hist.Count == nil || *hist.Count != 10 || hist.Sum == nil || *hist.Sum != 55 {
		t.Errorf("t_sizes = %+v, want count 10 sum 55", hist)
	}
	if len(hist.Buckets) == 0 || hist.Quantiles == nil {
		t.Errorf("t_sizes missing buckets/quantiles: %+v", hist)
	}
	if m := byName["t_info"]; m.Labels["version"] != "v1" {
		t.Errorf("t_info labels = %v, want version=v1", m.Labels)
	}
}
