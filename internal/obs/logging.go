package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// LogFormat selects the slog handler flavour behind the shared
// -log-format flag on every binary.
type LogFormat string

// Log formats accepted by -log-format.
const (
	LogText LogFormat = "text"
	LogJSON LogFormat = "json"
)

// ParseLogFormat validates a -log-format flag value.
func ParseLogFormat(s string) (LogFormat, error) {
	switch LogFormat(s) {
	case LogText, LogJSON:
		return LogFormat(s), nil
	}
	return "", fmt.Errorf("bad log format %q (want %q or %q)", s, LogText, LogJSON)
}

// NewLogger builds a slog.Logger writing to w in the given format.
func NewLogger(format LogFormat, w io.Writer) *slog.Logger {
	var h slog.Handler
	switch format {
	case LogJSON:
		h = slog.NewJSONHandler(w, nil)
	default:
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// SetupLogger builds a logger and installs it as the slog default, so
// libraries that call slog.Info directly use the same handler.
func SetupLogger(format LogFormat, w io.Writer) *slog.Logger {
	l := NewLogger(format, w)
	slog.SetDefault(l)
	return l
}
