package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Unit tells the exposition layer how to scale a histogram's raw values.
type Unit uint8

const (
	// UnitNone exposes raw observed values (sizes, counts).
	UnitNone Unit = iota
	// UnitSeconds means values are observed in nanoseconds and exposed in
	// seconds (the Prometheus base unit for time).
	UnitSeconds
)

// HistogramOpts fixes a histogram's bucket layout: one bucket per power of
// two from 2^MinExp up to 2^MaxExp, plus a +Inf overflow bucket. Log₂
// spacing gives constant relative error (~2×) across the whole range with a
// fixed, small footprint and an O(1) branch-free bucket index.
type HistogramOpts struct {
	MinExp int  // lowest bucket upper bound is 2^MinExp
	MaxExp int  // highest finite bucket upper bound is 2^MaxExp
	Unit   Unit // scaling applied at exposition time
}

// LatencyOpts covers ~1µs (2^10 ns) to ~34s (2^35 ns), exposed in seconds —
// the default for every *_seconds histogram in the repo.
var LatencyOpts = HistogramOpts{MinExp: 10, MaxExp: 35, Unit: UnitSeconds}

// SizeOpts covers 1 to 2^30 for cardinalities and byte counts.
var SizeOpts = HistogramOpts{MinExp: 0, MaxExp: 30}

// Histogram counts observations into log₂ buckets. Observe is wait-free:
// one bits.Len64, two atomic adds, no allocation — safe on the engine's
// per-round hot path.
type Histogram struct {
	minExp, maxExp int
	unit           Unit
	buckets        []atomic.Uint64 // len = maxExp-minExp+1 finite + 1 overflow
	sum            atomic.Int64    // raw units (ns for UnitSeconds)
	count          atomic.Uint64
}

func newHistogram(o HistogramOpts) *Histogram {
	if o.MaxExp < o.MinExp {
		o.MaxExp = o.MinExp
	}
	return &Histogram{
		minExp:  o.MinExp,
		maxExp:  o.MaxExp,
		unit:    o.Unit,
		buckets: make([]atomic.Uint64, o.MaxExp-o.MinExp+2),
	}
}

// Observe records v (clamped below at 0). For v >= 1 the bucket exponent is
// bits.Len64(v-1): the smallest e with v <= 2^e. Values past 2^maxExp land
// in the +Inf overflow bucket; v <= 2^minExp lands in the first bucket.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	var e int
	if v > 1 {
		e = bits.Len64(uint64(v - 1))
	}
	slot := e - h.minExp
	if slot < 0 {
		slot = 0
	}
	if slot >= len(h.buckets) {
		slot = len(h.buckets) - 1
	}
	h.buckets[slot].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records d in nanoseconds (pair with UnitSeconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of raw observed values (ns for UnitSeconds).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// upperBound returns the raw-unit upper bound of finite bucket i.
func (h *Histogram) upperBound(i int) float64 {
	return math.Ldexp(1, h.minExp+i)
}

// scale converts a raw-unit value to exposition units.
func (h *Histogram) scale(v float64) float64 {
	if h.unit == UnitSeconds {
		return v / 1e9
	}
	return v
}

// snapshotBuckets loads all bucket counts at once (not atomic as a set, but
// each counter is monotone so cumulative sums stay monotone too).
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) in exposition units by
// linear interpolation inside the containing bucket (lower edge 0 for the
// first, 2× span otherwise). Returns 0 when empty; +Inf-bucket hits return
// the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.snapshotBuckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(counts)-1 {
			if i == len(counts)-1 && i > 0 {
				// Overflow bucket: no finite upper edge to interpolate to.
				return h.scale(h.upperBound(i - 1))
			}
			hi := h.upperBound(i)
			lo := 0.0
			if i > 0 {
				lo = h.upperBound(i - 1)
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return h.scale(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return h.scale(h.upperBound(len(counts) - 2))
}
