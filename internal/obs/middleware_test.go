package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testMiddleware(reg *Registry, inner http.Handler) http.Handler {
	return Middleware(inner, MiddlewareOptions{
		Routes: []string{"/sessions", "/sessions/{id}"},
		RouteFor: func(r *http.Request) string {
			if r.URL.Path == "/sessions" {
				return "/sessions"
			}
			if strings.HasPrefix(r.URL.Path, "/sessions/") {
				return "/sessions/{id}"
			}
			return ""
		},
		Registry: reg,
	})
}

func TestMiddlewareRequestID(t *testing.T) {
	reg := NewRegistry()
	var seen string
	h := testMiddleware(reg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))

	// No incoming id: one is minted, set on the response, and in context.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sessions/abc", nil))
	if seen == "" {
		t.Fatal("no request id in handler context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Fatalf("response header id %q != context id %q", got, seen)
	}

	// An incoming id (e.g. minted at the router) is honoured, not replaced.
	req := httptest.NewRequest(http.MethodGet, "/sessions/abc", nil)
	req.Header.Set(RequestIDHeader, "router-123")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "router-123" {
		t.Fatalf("incoming id not honoured: context has %q", seen)
	}

	// Minted ids are unique.
	if a, b := NewRequestID(), NewRequestID(); a == b || a == "" {
		t.Fatalf("NewRequestID not unique: %q, %q", a, b)
	}
}

func TestMiddlewareMetrics(t *testing.T) {
	reg := NewRegistry()
	h := testMiddleware(reg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/sessions" {
			w.WriteHeader(http.StatusCreated)
			return
		}
		if r.URL.Path == "/unknown" {
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	for _, path := range []string{"/sessions", "/sessions/abc", "/sessions/def", "/unknown"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, path, nil))
	}

	reqs := reg.CounterVec("qfe_http_requests_total", "", "route", "code")
	if got := reqs.With("/sessions", "2xx").Value(); got != 1 {
		t.Errorf("/sessions 2xx = %d, want 1", got)
	}
	if got := reqs.With("/sessions/{id}", "2xx").Value(); got != 2 {
		t.Errorf("/sessions/{id} 2xx = %d, want 2", got)
	}
	if got := reqs.With("other", "4xx").Value(); got != 1 {
		t.Errorf("other 4xx = %d, want 1", got)
	}
	lat := reg.HistogramVec("qfe_http_request_seconds", "", LatencyOpts, "route")
	if got := lat.With("/sessions/{id}").Count(); got != 2 {
		t.Errorf("latency count = %d, want 2", got)
	}
	if got := reg.Gauge("qfe_http_inflight", "").Value(); got != 0 {
		t.Errorf("inflight after completion = %d, want 0", got)
	}
}
