package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the request id minted at the router to workers,
// so one client call can be traced across tiers in structured logs.
const RequestIDHeader = "X-Request-ID"

// requestIDPrefix is a per-process random tag so ids from different
// processes (router vs. worker-originated) cannot collide.
var requestIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var requestIDSeq atomic.Uint64

// NewRequestID mints a process-unique request id (random process prefix
// plus an atomic sequence number).
func NewRequestID() string {
	return requestIDPrefix + "-" + strconv.FormatUint(requestIDSeq.Add(1), 16)
}

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID extracts the request id from a context ("" if absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter captures the response code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// routeInstruments is the pre-resolved handle set for one route: latency
// histogram plus one counter per status class, so the per-request path does
// no map lookups (the class index is status/100).
type routeInstruments struct {
	latency *Histogram
	byClass [6]*Counter // index status/100; 0 is unused
}

// MiddlewareOptions configures Middleware.
type MiddlewareOptions struct {
	// Routes are the known route templates; RouteFor must map each request
	// to one of them (or ""). Unknown routes share the "other" series.
	Routes []string
	// RouteFor maps a request to its route template.
	RouteFor func(r *http.Request) string
	// SessionIDFor extracts a session id for log attrs ("" if none).
	SessionIDFor func(r *http.Request) string
	// Logger receives one completion line per request; nil disables logging.
	Logger *slog.Logger
	// Registry defaults to Default().
	Registry *Registry
}

// Middleware wraps next with per-route latency histograms, status-class
// counters, an in-flight gauge, request-id propagation (honouring an
// incoming X-Request-ID, minting one otherwise) and a structured completion
// log. All instruments are resolved here, once, at wrap time.
func Middleware(next http.Handler, opts MiddlewareOptions) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	latVec := reg.HistogramVec("qfe_http_request_seconds",
		"HTTP request latency by route.", LatencyOpts, "route")
	reqVec := reg.CounterVec("qfe_http_requests_total",
		"HTTP requests by route and status class.", "route", "code")
	inflight := reg.Gauge("qfe_http_inflight",
		"HTTP requests currently being served.")

	instruments := make(map[string]*routeInstruments, len(opts.Routes)+1)
	resolve := func(route string) *routeInstruments {
		ri := &routeInstruments{latency: latVec.With(route)}
		for class := 1; class <= 5; class++ {
			ri.byClass[class] = reqVec.With(route, strconv.Itoa(class)+"xx")
		}
		return ri
	}
	for _, route := range opts.Routes {
		instruments[route] = resolve(route)
	}
	other := resolve("other")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		r = r.WithContext(WithRequestID(r.Context(), reqID))

		route := ""
		if opts.RouteFor != nil {
			route = opts.RouteFor(r)
		}
		ri, ok := instruments[route]
		if !ok {
			ri = other
			route = "other"
		}

		inflight.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		inflight.Dec()

		elapsed := time.Since(start)
		ri.latency.ObserveDuration(elapsed)
		class := sw.status / 100
		if class < 1 || class > 5 {
			class = 5
		}
		ri.byClass[class].Inc()

		if opts.Logger != nil {
			attrs := []any{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed),
				slog.String("request_id", reqID),
			}
			if opts.SessionIDFor != nil {
				if sid := opts.SessionIDFor(r); sid != "" {
					attrs = append(attrs, slog.String("session_id", sid))
				}
			}
			opts.Logger.Info("http request", attrs...)
		}
	})
}
