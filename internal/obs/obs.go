// Package obs is the repo's zero-dependency observability layer: a metrics
// registry (counters, gauges, log₂-bucketed histograms, labeled families),
// a Prometheus text-format exposition writer, a JSON snapshot API, HTTP
// middleware with request-id propagation, a log/slog setup helper and a
// pprof debug handler (DESIGN.md §13).
//
// Hot-path contract: incrementing a Counter, moving a Gauge or observing
// into a Histogram is a handful of atomic operations — zero allocations, no
// map lookups, no locks. Labeled families resolve their (label values →
// handle) mapping once, at setup time, through With; the returned handle is
// the same allocation-free primitive. The contract is enforced by an
// allocs-per-op test (alloc_test.go) and re-checked against the fully
// instrumented engine build by scripts/bench_guard.sh.
//
// Naming convention: qfe_<subsystem>_<what>[_<unit>]. Durations are
// histograms named *_seconds (observed as nanoseconds, exposed in seconds);
// monotone totals end in _total; free-standing values are gauges.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is unusable —
// obtain counters from a Registry so they are exported.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n is unsigned: counters never decrease).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates what a registered name holds.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVec:
		return "gauge"
	case kindHistogram, kindHistogramVec:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered name with its collector.
type metric struct {
	name, help string
	kind       kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfunc   func() uint64
	gfunc   func() float64
	vec     *vec
}

// Registry holds named metrics and renders them. All methods are safe for
// concurrent use; registration is idempotent by name (re-registering a name
// returns the existing collector, so package-level handles and per-instance
// setup code compose) and panics on a kind mismatch — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// NewRegistry creates an empty registry. Most callers use Default.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every package-level handle lives in;
// GET /metrics on qfe-server and qfe-router exposes it.
func Default() *Registry { return defaultRegistry }

// lookup returns the existing metric for name, checking the kind, or
// reserves the name with a new descriptor built by mk.
func (r *Registry) lookup(name, help string, k kind, mk func(*metric)) *metric {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, k, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: k}
	mk(m)
	r.byName[name] = m
	return m
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, help, kindCounter, func(m *metric) { m.counter = &Counter{} })
	return m.counter
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, help, kindGauge, func(m *metric) { m.gauge = &Gauge{} })
	return m.gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for subsystems that already keep their own atomic totals (the
// evaluation cache) so the hot path is not touched at all. Re-registering a
// name keeps the first function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.lookup(name, help, kindCounterFunc, func(m *metric) { m.cfunc = fn })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, help, kindGaugeFunc, func(m *metric) { m.gfunc = fn })
}

// Histogram registers (or returns) a histogram (see HistogramOpts).
func (r *Registry) Histogram(name, help string, opts HistogramOpts) *Histogram {
	m := r.lookup(name, help, kindHistogram, func(m *metric) { m.hist = newHistogram(opts) })
	return m.hist
}

// vec is the shared machinery of labeled families: a label schema plus a
// guarded (label values → child) map. With resolves once; the returned
// child is a plain Counter/Gauge/Histogram with no residual locking.
type vec struct {
	labels []string
	opts   HistogramOpts // histogram vecs only

	mu       sync.Mutex
	children map[string]*vecChild
}

type vecChild struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// childKey joins label values with an unprintable separator.
func childKey(values []string) string { return strings.Join(values, "\x1f") }

// child resolves (creating if needed) the child for values.
func (v *vec) child(values []string, k kind) *vecChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: got %d label values for %d labels %v",
			len(values), len(v.labels), v.labels))
	}
	key := childKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := &vecChild{values: append([]string(nil), values...)}
	switch k {
	case kindCounterVec:
		c.counter = &Counter{}
	case kindGaugeVec:
		c.gauge = &Gauge{}
	case kindHistogramVec:
		c.hist = newHistogram(v.opts)
	}
	v.children[key] = c
	return c
}

// sortedChildren returns children ordered by label values (deterministic
// exposition).
func (v *vec) sortedChildren() []*vecChild {
	v.mu.Lock()
	out := make([]*vecChild, 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a family of counters sharing a name, split by label values.
type CounterVec struct{ m *metric }

// With resolves the child counter for the given label values. Resolution
// takes a lock and may allocate — do it at setup time and keep the handle.
func (cv CounterVec) With(values ...string) *Counter {
	return cv.m.vec.child(values, kindCounterVec).counter
}

// GaugeVec is a family of gauges split by label values.
type GaugeVec struct{ m *metric }

// With resolves the child gauge (setup-time; see CounterVec.With).
func (gv GaugeVec) With(values ...string) *Gauge {
	return gv.m.vec.child(values, kindGaugeVec).gauge
}

// HistogramVec is a family of histograms split by label values.
type HistogramVec struct{ m *metric }

// With resolves the child histogram (setup-time; see CounterVec.With).
func (hv HistogramVec) With(values ...string) *Histogram {
	return hv.m.vec.child(values, kindHistogramVec).hist
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	m := r.lookup(name, help, kindCounterVec, func(m *metric) {
		m.vec = &vec{labels: append([]string(nil), labels...), children: map[string]*vecChild{}}
	})
	return CounterVec{m: m}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	m := r.lookup(name, help, kindGaugeVec, func(m *metric) {
		m.vec = &vec{labels: append([]string(nil), labels...), children: map[string]*vecChild{}}
	})
	return GaugeVec{m: m}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, opts HistogramOpts, labels ...string) HistogramVec {
	m := r.lookup(name, help, kindHistogramVec, func(m *metric) {
		m.vec = &vec{labels: append([]string(nil), labels...), opts: opts, children: map[string]*vecChild{}}
	})
	return HistogramVec{m: m}
}

// sorted returns the registered metrics ordered by name.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Package-level shortcuts on the Default registry — what instrumented
// packages use to declare their handles as vars at init time.

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default().Counter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default().Gauge(name, help) }

// NewCounterFunc registers a scrape-time counter on the Default registry.
func NewCounterFunc(name, help string, fn func() uint64) { Default().CounterFunc(name, help, fn) }

// NewGaugeFunc registers a scrape-time gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) { Default().GaugeFunc(name, help, fn) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, opts HistogramOpts) *Histogram {
	return Default().Histogram(name, help, opts)
}

// NewLatency registers a latency histogram (1µs … ~34s, exposed in seconds)
// on the Default registry.
func NewLatency(name, help string) *Histogram {
	return Default().Histogram(name, help, LatencyOpts)
}

// NewSize registers a size/count histogram (1 … 2³⁰) on the Default registry.
func NewSize(name, help string) *Histogram {
	return Default().Histogram(name, help, SizeOpts)
}

// NewCounterVec registers a labeled counter family on the Default registry.
func NewCounterVec(name, help string, labels ...string) CounterVec {
	return Default().CounterVec(name, help, labels...)
}

// NewGaugeVec registers a labeled gauge family on the Default registry.
func NewGaugeVec(name, help string, labels ...string) GaugeVec {
	return Default().GaugeVec(name, help, labels...)
}

// NewHistogramVec registers a labeled histogram family on the Default registry.
func NewHistogramVec(name, help string, opts HistogramOpts, labels ...string) HistogramVec {
	return Default().HistogramVec(name, help, opts, labels...)
}
