package obs

import (
	"runtime"
	"time"
)

// Version and Commit identify the build; override at link time:
//
//	go build -ldflags "-X qfe/internal/obs.Version=v1.2.3 -X qfe/internal/obs.Commit=$(git rev-parse --short HEAD)"
//
// The Makefile does this for every target.
var (
	Version = "dev"
	Commit  = "unknown"
)

var processStart = time.Now()

// Uptime returns how long this process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// Build is the JSON-ready build identity stamped into /stats and
// /cluster/stats payloads.
type Build struct {
	Version string `json:"version"`
	Commit  string `json:"commit"`
}

// BuildInfo returns this process's build identity.
func BuildInfo() Build { return Build{Version: Version, Commit: Commit} }

func init() {
	// qfe_build_info follows the Prometheus idiom: constant 1 with the
	// build identity as labels, so dashboards can join version onto any
	// other series.
	NewGaugeVec("qfe_build_info",
		"Build identity (constant 1; version and commit set via -ldflags).",
		"version", "commit").With(Version, Commit).Set(1)
	NewGaugeFunc("qfe_process_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return Uptime().Seconds() })
	NewGaugeFunc("qfe_go_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
