package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves net/http/pprof under /debug/pprof/ plus /metrics —
// the payload behind every binary's -debug-addr flag. It is a separate
// listener so profiling endpoints are never exposed on the service port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", Handler())
	return mux
}

// ServeDebug starts the debug listener on addr in a goroutine (no-op for
// empty addr). Errors are reported through errf (e.g. slog-backed); the
// server is best-effort and never takes the process down.
func ServeDebug(addr string, errf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, DebugHandler()); err != nil && errf != nil {
			errf("debug server: %v", err)
		}
	}()
}
