package obs

import (
	"math"
	"testing"
	"time"
)

// bucketIndex reports which slot an observation landed in (test helper:
// observe into a fresh histogram and find the incremented bucket).
func bucketIndex(t *testing.T, opts HistogramOpts, v int64) int {
	t.Helper()
	h := newHistogram(opts)
	h.Observe(v)
	counts := h.snapshotBuckets()
	idx := -1
	for i, c := range counts {
		if c == 1 {
			if idx >= 0 {
				t.Fatalf("Observe(%d) incremented two buckets (%d and %d)", v, idx, i)
			}
			idx = i
		} else if c != 0 {
			t.Fatalf("Observe(%d): bucket %d holds %d", v, i, c)
		}
	}
	if idx < 0 {
		t.Fatalf("Observe(%d) incremented no bucket", v)
	}
	return idx
}

func TestHistogramBucketBoundaries(t *testing.T) {
	size := HistogramOpts{MinExp: 0, MaxExp: 4} // bounds 1,2,4,8,16,+Inf
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, // v <= 2^MinExp -> first bucket
		{2, 1},
		{3, 2}, {4, 2}, // (2,4] -> le=4
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5}, {1 << 20, 5}, // past 2^MaxExp -> +Inf overflow
		{-7, 0},               // negative clamps to 0
	}
	for _, c := range cases {
		if got := bucketIndex(t, size, c.v); got != c.want {
			t.Errorf("Observe(%d): bucket %d, want %d", c.v, got, c.want)
		}
	}

	// Exact powers of two sit in the bucket they bound: v <= 2^e.
	lat := LatencyOpts // MinExp 10
	if got := bucketIndex(t, lat, 1024); got != 0 {
		t.Errorf("Observe(2^10): bucket %d, want 0", got)
	}
	if got := bucketIndex(t, lat, 1025); got != 1 {
		t.Errorf("Observe(2^10+1): bucket %d, want 1", got)
	}
	if got := bucketIndex(t, lat, 1<<35); got != 35-10 {
		t.Errorf("Observe(2^35): bucket %d, want %d", got, 35-10)
	}
	if got := bucketIndex(t, lat, 1<<35+1); got != 35-10+1 {
		t.Errorf("Observe(2^35+1): bucket %d (want overflow %d)", got, 35-10+1)
	}
}

func TestHistogramUpperBounds(t *testing.T) {
	h := newHistogram(HistogramOpts{MinExp: 2, MaxExp: 5})
	want := []float64{4, 8, 16, 32}
	if len(h.buckets) != len(want)+1 {
		t.Fatalf("bucket count %d, want %d finite + overflow", len(h.buckets), len(want))
	}
	for i, ub := range want {
		if got := h.upperBound(i); got != ub {
			t.Errorf("upperBound(%d) = %v, want %v", i, got, ub)
		}
	}
}

func TestHistogramSumCountAndSeconds(t *testing.T) {
	h := newHistogram(LatencyOpts)
	h.ObserveDuration(time.Millisecond)
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != int64(4*time.Millisecond) {
		t.Fatalf("Sum = %d, want %d", h.Sum(), int64(4*time.Millisecond))
	}
	// UnitSeconds scales exposition values by 1e9.
	if got := h.scale(float64(h.Sum())); math.Abs(got-0.004) > 1e-12 {
		t.Fatalf("scaled sum = %v, want 0.004", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(HistogramOpts{MinExp: 0, MaxExp: 10})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", q)
	}

	// 100 observations of 1 all land in [0,1]; every quantile interpolates
	// inside that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 of all-ones = %v, want within (0,1]", q)
	}

	// Add 100 observations in (512,1024]: the median stays in the first
	// bucket region, p90+ moves to the upper bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if q := h.Quantile(0.25); q > 1 {
		t.Errorf("p25 = %v, want <= 1", q)
	}
	if q := h.Quantile(0.9); q <= 512 || q > 1024 {
		t.Errorf("p90 = %v, want in (512,1024]", q)
	}
	// Quantiles are monotone in q.
	last := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Errorf("Quantile(%v) = %v below previous %v", q, v, last)
		}
		last = v
	}

	// Overflow-bucket hits report the largest finite bound, not +Inf.
	o := newHistogram(HistogramOpts{MinExp: 0, MaxExp: 3})
	o.Observe(1 << 20)
	if q := o.Quantile(0.99); q != 8 {
		t.Errorf("overflow Quantile = %v, want 8 (largest finite bound)", q)
	}
}
