package obs

import (
	"encoding/json"
	"io"
)

// MetricJSON is one metric (or one labeled child) in the JSON snapshot.
type MetricJSON struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`

	// Counters and gauges.
	Value *float64 `json:"value,omitempty"`

	// Histograms.
	Count     *uint64            `json:"count,omitempty"`
	Sum       *float64           `json:"sum,omitempty"`
	Buckets   []BucketJSON       `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// BucketJSON is one cumulative histogram bucket ("+Inf" has UpperBound
// omitted and Inf set).
type BucketJSON struct {
	UpperBound float64 `json:"le"`
	Inf        bool    `json:"inf,omitempty"`
	Count      uint64  `json:"count"`
}

func floatPtr(v float64) *float64 { return &v }
func uintPtr(v uint64) *uint64    { return &v }

func histJSON(base MetricJSON, h *Histogram) MetricJSON {
	counts := h.snapshotBuckets()
	var cum uint64
	buckets := make([]BucketJSON, 0, len(counts))
	for i, c := range counts {
		cum += c
		b := BucketJSON{Count: cum}
		if i < len(counts)-1 {
			b.UpperBound = h.scale(h.upperBound(i))
		} else {
			b.Inf = true
		}
		buckets = append(buckets, b)
	}
	base.Count = uintPtr(h.Count())
	base.Sum = floatPtr(h.scale(float64(h.Sum())))
	base.Buckets = buckets
	base.Quantiles = map[string]float64{
		"p50": h.Quantile(0.50),
		"p90": h.Quantile(0.90),
		"p99": h.Quantile(0.99),
	}
	return base
}

func labelMap(labels, values []string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for i, l := range labels {
		m[l] = values[i]
	}
	return m
}

// Snapshot returns every metric (vec children flattened, one entry per
// labeled series) as JSON-ready structs, sorted by name then label values.
func (r *Registry) Snapshot() []MetricJSON {
	var out []MetricJSON
	for _, m := range r.sorted() {
		base := MetricJSON{Name: m.name, Type: m.kind.String(), Help: m.help}
		switch m.kind {
		case kindCounter:
			base.Value = floatPtr(float64(m.counter.Value()))
			out = append(out, base)
		case kindGauge:
			base.Value = floatPtr(float64(m.gauge.Value()))
			out = append(out, base)
		case kindCounterFunc:
			base.Value = floatPtr(float64(m.cfunc()))
			out = append(out, base)
		case kindGaugeFunc:
			base.Value = floatPtr(m.gfunc())
			out = append(out, base)
		case kindHistogram:
			out = append(out, histJSON(base, m.hist))
		case kindCounterVec:
			for _, c := range m.vec.sortedChildren() {
				e := base
				e.Labels = labelMap(m.vec.labels, c.values)
				e.Value = floatPtr(float64(c.counter.Value()))
				out = append(out, e)
			}
		case kindGaugeVec:
			for _, c := range m.vec.sortedChildren() {
				e := base
				e.Labels = labelMap(m.vec.labels, c.values)
				e.Value = floatPtr(float64(c.gauge.Value()))
				out = append(out, e)
			}
		case kindHistogramVec:
			for _, c := range m.vec.sortedChildren() {
				e := base
				e.Labels = labelMap(m.vec.labels, c.values)
				out = append(out, histJSON(e, c.hist))
			}
		}
	}
	return out
}

// WriteJSON writes the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
