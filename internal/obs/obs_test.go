package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentByName(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t_total", "first")
	b := reg.Counter("t_total", "second help is ignored")
	if a != b {
		t.Fatal("re-registering a counter name returned a different handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles from duplicate registration do not share state")
	}
	h1 := reg.Histogram("t_h", "h", SizeOpts)
	h2 := reg.Histogram("t_h", "h", LatencyOpts) // opts of the first registration win
	if h1 != h2 {
		t.Fatal("re-registering a histogram name returned a different handle")
	}
	v1 := reg.CounterVec("t_v", "v", "l")
	v2 := reg.CounterVec("t_v", "v", "l")
	if v1.With("x") != v2.With("x") {
		t.Fatal("vec children not shared across duplicate registration")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("registering an existing counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("t_total", "g")
}

func TestVecLabelArityPanics(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("t_v", "v", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong label count did not panic")
		}
	}()
	cv.With("only-one")
}

// TestRegistryConcurrentStress hammers registration, increments, vec
// resolution and scraping from many goroutines; run under -race it verifies
// the registry's concurrency contract.
func TestRegistryConcurrentStress(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "c")
	g := reg.Gauge("t_gauge", "g")
	h := reg.Histogram("t_hist", "h", SizeOpts)
	cv := reg.CounterVec("t_vec", "v", "worker")

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			mine := cv.With(label)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				mine.Inc()
				if i%500 == 0 {
					// Concurrent re-registration and resolution must be safe.
					reg.Counter("t_total", "c").Inc()
					cv.With(label).Inc()
				}
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			reg.WritePrometheus(&b)
			reg.Snapshot()
		}
	}()
	wg.Wait()
	scrape.Wait()

	wantC := uint64(workers * (iters + iters/500))
	if c.Value() != wantC {
		t.Errorf("counter = %d, want %d", c.Value(), wantC)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	for w := 0; w < workers; w++ {
		label := string(rune('a' + w))
		want := uint64(iters + iters/500)
		if got := cv.With(label).Value(); got != want {
			t.Errorf("vec[%s] = %d, want %d", label, got, want)
		}
	}
}

func TestHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_total", "c").Add(5)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "t_total 5") {
		t.Errorf("text body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"t_total"`) {
		t.Errorf("json body missing counter:\n%s", rec.Body.String())
	}
}

func TestDefaultRegistryHasBuildInfo(t *testing.T) {
	var b strings.Builder
	Default().WritePrometheus(&b)
	out := b.String()
	for _, name := range []string{"qfe_build_info", "qfe_process_uptime_seconds", "qfe_go_goroutines"} {
		if !strings.Contains(out, name) {
			t.Errorf("default registry missing %s", name)
		}
	}
}
