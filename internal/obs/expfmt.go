package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, "+Inf" for infinity.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for a child's label values (empty string
// for no labels, so unlabeled series need no special case at call sites).
func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// writeHistogram renders one histogram series set (cumulative _bucket lines
// with le=, then _sum and _count). extraLabels/extraValues carry the vec
// labels, if any; they precede le in each bucket line.
func writeHistogram(w io.Writer, name string, h *Histogram, labels, values []string) {
	counts := h.snapshotBuckets()
	var cum uint64
	prefix := ""
	if len(labels) > 0 {
		var b strings.Builder
		for i, l := range labels {
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteString(`",`)
		}
		prefix = b.String()
	}
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(counts)-1 {
			le = fmtFloat(h.scale(h.upperBound(i)))
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, prefix, le, cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, values), fmtFloat(h.scale(float64(h.Sum()))))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values), h.Count())
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name, vec children sorted by
// label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, m := range r.sorted() {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case kindCounterFunc:
			fmt.Fprintf(w, "%s %d\n", m.name, m.cfunc())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gfunc()))
		case kindHistogram:
			writeHistogram(w, m.name, m.hist, nil, nil)
		case kindCounterVec:
			for _, c := range m.vec.sortedChildren() {
				fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.vec.labels, c.values), c.counter.Value())
			}
		case kindGaugeVec:
			for _, c := range m.vec.sortedChildren() {
				fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.vec.labels, c.values), c.gauge.Value())
			}
		case kindHistogramVec:
			for _, c := range m.vec.sortedChildren() {
				writeHistogram(w, m.name, c.hist, m.vec.labels, c.values)
			}
		}
	}
}

// Handler serves the registry: Prometheus text format by default, the JSON
// snapshot with ?format=json. Mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Handler serves the Default registry (see Registry.Handler).
func Handler() http.Handler { return Default().Handler() }
