package obs

import (
	"testing"
	"time"
)

// TestHotPathZeroAllocs enforces the package contract: incrementing any
// pre-resolved handle — plain or vec-resolved — performs zero allocations.
// Instrumented hot paths (per-round engine timers, WAL appends, proxy
// attempts) rely on this; a regression here is a performance bug in every
// tier at once.
func TestHotPathZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "c")
	g := reg.Gauge("t_gauge", "g")
	h := reg.Histogram("t_hist", "h", LatencyOpts)
	vc := reg.CounterVec("t_vec_total", "vc", "route").With("/sessions")
	vh := reg.HistogramVec("t_vec_seconds", "vh", LatencyOpts, "route").With("/sessions")

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(3 * time.Millisecond) }},
		{"CounterVec child Inc", func() { vc.Inc() }},
		{"HistogramVec child Observe", func() { vh.Observe(999) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("b_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("b_seconds", "b", LatencyOpts)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
