package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qfe/internal/relation"
)

// ColRef locates a column of a joined relation in its source base table.
type ColRef struct {
	Table    string // base table name
	Column   string // unqualified column name
	TableIdx int    // index into Joined.Tables
	ColIdx   int    // column index inside the base table
}

// Joined is the foreign-key join of a set of base tables, together with the
// provenance of every joined tuple. Provenance is the paper's "join index"
// (§5.4.1): it lets the database generator find every joined tuple affected
// by a single base-tuple modification (the "side effects").
type Joined struct {
	// Rel holds the joined tuples under a qualified schema ("Table.col").
	Rel *relation.Relation
	// Tables lists the joined base tables in join order.
	Tables []string
	// Prov[i][j] is the row index in base table Tables[j] that contributed
	// to joined tuple i.
	Prov [][]int
	// Cols maps each joined column (by position) to its source.
	Cols []ColRef
	// KeyCols lists the qualified column names (sorted, deduplicated) that
	// participate in a join condition of this join — the FK child and parent
	// columns of every edge between the joined tables. These columns are
	// structural: changing one of their values rewires which base tuples
	// join, so the single-tuple modification model (§5, in-place joined-tuple
	// replacement) does not apply to them. The database generator freezes
	// them in its tuple-class space.
	KeyCols []string

	// fromBase[table][row] lists joined-tuple indexes that include that base
	// row; rows joining nothing are absent.
	fromBase map[string]map[int][]int

	hashOnce sync.Once
	hash     uint64

	colOnce  sync.Once
	columnar *relation.Columnar

	// curVals / curProv track the arena currently backing Rel's tuples and
	// provenance while the join is being folded together; each fold recycles
	// its predecessor's arenas through the fold pools. The final fold's
	// arenas are owned by the finished Joined and never recycled.
	curVals  []relation.Value
	curProv  []int
	curDepth int
}

// Columnar returns the dictionary-encoded columnar view of the joined
// relation, computed lazily once — like ContentHash, a Joined is immutable
// after Join returns and all winnowing rounds of a session group share it,
// so one columnar build serves every batch evaluation of the group.
func (j *Joined) Columnar() *relation.Columnar {
	j.colOnce.Do(func() { j.columnar = relation.NewColumnar(j.Rel) })
	return j.columnar
}

// Fold-arena pools. Every fold of a join allocates one value arena, one
// provenance arena and match bookkeeping; all but the final fold's arenas
// die as soon as the next fold has copied them forward. Repeated joins of
// the same tables — the β/δ sweeps, qbo's join-schema enumeration, every
// simulator session — therefore cycle through identically-sized buffers,
// which the pools hand back instead of reallocating. Pools are keyed by
// fold depth (capped) so a join's k-th fold tends to find a buffer of
// exactly the right size.
const numFoldPools = 8

type foldBuffers struct {
	vals []relation.Value
	ints []int
}

var foldPools [numFoldPools]sync.Pool

func foldPool(depth int) *sync.Pool {
	if depth >= numFoldPools {
		depth = numFoldPools - 1
	}
	return &foldPools[depth]
}

// getFoldBuffers returns pooled buffers with at least the requested
// capacities (resliced to exactly the requested lengths), or fresh ones.
func getFoldBuffers(depth, nVals, nInts int) *foldBuffers {
	if v := foldPool(depth).Get(); v != nil {
		b := v.(*foldBuffers)
		if cap(b.vals) >= nVals && cap(b.ints) >= nInts {
			b.vals = b.vals[:nVals]
			b.ints = b.ints[:nInts]
			return b
		}
	}
	return &foldBuffers{vals: make([]relation.Value, nVals), ints: make([]int, nInts)}
}

// recycleCurrent returns the arenas backing the pre-fold Rel to their pool.
// Only callable once the successor fold has copied every value forward.
func (j *Joined) recycleCurrent() {
	if j.curVals == nil && j.curProv == nil {
		return
	}
	foldPool(j.curDepth).Put(&foldBuffers{vals: j.curVals, ints: j.curProv})
	j.curVals, j.curProv = nil, nil
}

// ContentHash returns the content hash of the joined relation, computed
// lazily once — a Joined is immutable after Join returns, and all winnowing
// rounds of a session share it, so the hash doubles as the "database
// version" half of the evaluation-cache key.
func (j *Joined) ContentHash() uint64 {
	j.hashOnce.Do(func() { j.hash = j.Rel.Hash64() })
	return j.hash
}

// tableIndex returns the position of a table in the join order, or -1.
func (j *Joined) tableIndex(name string) int {
	for i, t := range j.Tables {
		if t == name {
			return i
		}
	}
	return -1
}

// ColRefOf resolves a qualified column name ("Table.col") of the joined
// schema to its source location.
func (j *Joined) ColRefOf(qualified string) (ColRef, error) {
	i := j.Rel.Schema.IndexOf(qualified)
	if i < 0 {
		return ColRef{}, fmt.Errorf("db: joined relation has no column %q", qualified)
	}
	return j.Cols[i], nil
}

// TuplesFromBase returns the indexes of joined tuples that contain the given
// base row. The returned slice is shared; do not mutate.
func (j *Joined) TuplesFromBase(table string, row int) []int {
	m := j.fromBase[table]
	if m == nil {
		return nil
	}
	return m[row]
}

// FanOut returns the number of joined tuples containing the base row; a
// fan-out of 1 means a modification has no side effects beyond its own
// joined tuple (§5.4.1: such modifications are preferred).
func (j *Joined) FanOut(table string, row int) int {
	return len(j.TuplesFromBase(table, row))
}

// Join computes the foreign-key join of the named tables (in any connected
// order). All FK edges between two joined tables contribute equality
// conditions. Dangling tuples are dropped (inner join), matching the paper's
// experimental setup (e.g. the 424-row table joining to 417 tuples).
func Join(d *Database, tables []string) (*Joined, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("db: join of zero tables")
	}
	for _, n := range tables {
		if d.Table(n) == nil {
			return nil, fmt.Errorf("db: join: no such table %q", n)
		}
	}

	j := &Joined{fromBase: make(map[string]map[int][]int)}

	// Seed with the first table.
	first := d.Table(tables[0])
	j.Tables = []string{first.Name}
	j.Rel = relation.New(joinName(tables), first.Schema.Qualify(first.Name))
	for ci, c := range first.Schema {
		j.Cols = append(j.Cols, ColRef{Table: first.Name, Column: c.Name, TableIdx: 0, ColIdx: ci})
	}
	j.Rel.Tuples = make([]relation.Tuple, first.Len())
	j.Prov = make([][]int, first.Len())
	seedArity := first.Arity()
	seedBufs := getFoldBuffers(0, first.Len()*seedArity, first.Len())
	seedArena, provArena := seedBufs.vals, seedBufs.ints
	j.curVals, j.curProv, j.curDepth = seedArena, provArena, 0
	for i, t := range first.Tuples {
		row := seedArena[i*seedArity : (i+1)*seedArity : (i+1)*seedArity]
		copy(row, t)
		j.Rel.Tuples[i] = row
		provArena[i] = i
		j.Prov[i] = provArena[i : i+1 : i+1]
	}

	remaining := append([]string(nil), tables[1:]...)
	for len(remaining) > 0 {
		progressed := false
		for ri, name := range remaining {
			conds := joinConditions(d, j, name)
			if len(conds) == 0 {
				continue
			}
			in := d.Table(name)
			for _, c := range conds {
				j.KeyCols = append(j.KeyCols,
					j.Rel.Schema[c.joinedCol].Name,
					in.Name+"."+in.Schema[c.newCol].Name)
			}
			if err := j.foldIn(in, conds); err != nil {
				return nil, err
			}
			remaining = append(remaining[:ri], remaining[ri+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("db: join: tables %v not connected to %v by any foreign key",
				remaining, j.Tables)
		}
	}
	sort.Strings(j.KeyCols)
	j.KeyCols = dedupeSorted(j.KeyCols)
	// The final fold's arenas are owned by the finished join; drop the
	// tracking references so they are never recycled.
	j.curVals, j.curProv = nil, nil
	j.buildReverseIndex()
	return j, nil
}

// dedupeSorted removes adjacent duplicates in place.
func dedupeSorted(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// JoinAll joins every table of the database (the §5 assumption that all
// candidate queries share the full join schema).
func JoinAll(d *Database) (*Joined, error) { return Join(d, d.TableNames()) }

// joinCondition equates a column of the current joined relation with a
// column of the incoming table.
type joinCondition struct {
	joinedCol int // index into j.Rel.Schema
	newCol    int // index into the incoming table's schema
}

// joinConditions collects the equality conditions implied by every FK edge
// between the already-joined tables and the incoming table.
func joinConditions(d *Database, j *Joined, incoming string) []joinCondition {
	var conds []joinCondition
	add := func(joinedTable string, joinedCols []string, newCols []string, newTable *relation.Relation) {
		for i := range joinedCols {
			qc := joinedTable + "." + joinedCols[i]
			ji := j.Rel.Schema.IndexOf(qc)
			ni := newTable.Schema.IndexOf(newCols[i])
			if ji >= 0 && ni >= 0 {
				conds = append(conds, joinCondition{joinedCol: ji, newCol: ni})
			}
		}
	}
	in := d.Table(incoming)
	for _, fk := range d.ForeignKeys {
		switch {
		case fk.ChildTable == incoming && j.tableIndex(fk.ParentTable) >= 0:
			add(fk.ParentTable, fk.ParentColumns, fk.ChildColumns, in)
		case fk.ParentTable == incoming && j.tableIndex(fk.ChildTable) >= 0:
			add(fk.ChildTable, fk.ChildColumns, fk.ParentColumns, in)
		}
	}
	return conds
}

// foldIn hash-joins the incoming table into j under the given conditions.
// The build side is keyed by per-row join-column hashes (relation's hash
// kernel; no key strings) and every hash match is verified value-by-value
// with KeyEqual, so correctness never depends on hash uniqueness. The
// merged tuples and provenance rows are carved out of one backing array
// each — one allocation per fold, not one per output row.
func (j *Joined) foldIn(in *relation.Relation, conds []joinCondition) error {
	newTableIdx := len(j.Tables)
	j.Tables = append(j.Tables, in.Name)

	newIdx := make([]int, len(conds))
	joinedIdx := make([]int, len(conds))
	for i, c := range conds {
		newIdx[i] = c.newCol
		joinedIdx[i] = c.joinedCol
	}
	condsEqual := func(jt, it relation.Tuple) bool {
		for _, c := range conds {
			if !jt[c.joinedCol].KeyEqual(it[c.newCol]) {
				return false
			}
		}
		return true
	}

	// Index incoming rows by their join-column hash.
	index := make(map[uint64][]int, in.Len())
	for ri, t := range in.Tuples {
		h := t.HashProj(newIdx)
		index[h] = append(index[h], ri)
	}

	newSchema := j.Rel.Schema.Concat(in.Schema.Qualify(in.Name))
	for ci, c := range in.Schema {
		j.Cols = append(j.Cols, ColRef{Table: in.Name, Column: c.Name, TableIdx: newTableIdx, ColIdx: ci})
	}

	// Pass 1: probe with verification, recording the matching incoming rows
	// per joined tuple (flattened, so the pass allocates O(output), not
	// O(output rows) separate slices). The bookkeeping slices come from the
	// scratch pool and go back at the end of the fold.
	scr := getFoldScratch(len(j.Rel.Tuples))
	matches, starts := scr.matches[:0], scr.starts
	for ti, t := range j.Rel.Tuples {
		starts[ti] = len(matches)
		for _, ri := range index[t.HashProj(joinedIdx)] {
			if condsEqual(t, in.Tuples[ri]) {
				matches = append(matches, ri)
			}
		}
	}
	starts[len(j.Rel.Tuples)] = len(matches)

	// Pass 2: materialise output rows from (pooled) arenas.
	n := len(matches)
	arity := len(j.Rel.Schema) + in.Arity()
	provLen := newTableIdx + 1
	bufs := getFoldBuffers(newTableIdx, n*arity, n*provLen)
	valueArena, provArena := bufs.vals, bufs.ints
	outTuples := make([]relation.Tuple, n)
	outProv := make([][]int, n)
	oi := 0
	for ti, t := range j.Rel.Tuples {
		for _, ri := range matches[starts[ti]:starts[ti+1]] {
			merged := valueArena[oi*arity : (oi+1)*arity : (oi+1)*arity]
			copy(merged, t)
			copy(merged[len(t):], in.Tuples[ri])
			prov := provArena[oi*provLen : (oi+1)*provLen : (oi+1)*provLen]
			copy(prov, j.Prov[ti])
			prov[provLen-1] = ri
			outTuples[oi] = merged
			outProv[oi] = prov
			oi++
		}
	}
	j.Rel = &relation.Relation{Name: j.Rel.Name, Schema: newSchema, Tuples: outTuples}
	j.Prov = outProv
	// The pre-fold arenas were fully copied forward above: recycle them and
	// take ownership of this fold's arenas.
	j.recycleCurrent()
	j.curVals, j.curProv, j.curDepth = valueArena, provArena, newTableIdx
	scr.matches = matches
	putFoldScratch(scr)
	return nil
}

// foldScratch holds the per-fold match bookkeeping (pass 1), pooled across
// joins.
type foldScratch struct {
	matches []int
	starts  []int
}

var foldScratchPool sync.Pool

func getFoldScratch(tuples int) *foldScratch {
	if v := foldScratchPool.Get(); v != nil {
		s := v.(*foldScratch)
		if cap(s.starts) >= tuples+1 {
			s.starts = s.starts[:tuples+1]
			return s
		}
	}
	return &foldScratch{matches: make([]int, 0, tuples), starts: make([]int, tuples+1)}
}

func putFoldScratch(s *foldScratch) { foldScratchPool.Put(s) }

func (j *Joined) buildReverseIndex() {
	j.fromBase = make(map[string]map[int][]int, len(j.Tables))
	for _, t := range j.Tables {
		j.fromBase[t] = make(map[int][]int)
	}
	for ti, prov := range j.Prov {
		for tbl, row := range prov {
			name := j.Tables[tbl]
			j.fromBase[name][row] = append(j.fromBase[name][row], ti)
		}
	}
}

// Rebuilt recomputes the join on a (possibly edited) database with the same
// schema, preserving the join order. Used by tests to cross-check the
// incremental evaluator against a from-scratch join.
func (j *Joined) Rebuilt(d *Database) (*Joined, error) { return Join(d, j.Tables) }

func joinName(tables []string) string { return strings.Join(tables, "⋈") }
