package db

import (
	"sync"
	"testing"
)

// TestJoinArenaPoolingIsObservationallyPure re-runs the same joins many
// times — the shape of the β/δ sweeps and the simulator, where the fold
// pools actually cycle — and requires every run to reproduce the first
// run's joined relation, provenance and columnar view exactly. A pooled
// buffer leaking live data into a later join would surface here.
func TestJoinArenaPoolingIsObservationallyPure(t *testing.T) {
	d := twoTableDB(t)
	first, err := JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := first.Rel.Fingerprint()
	wantCols := first.Columnar()
	for run := 0; run < 50; run++ {
		j, err := JoinAll(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := j.Rel.Fingerprint(); got != wantFP {
			t.Fatalf("run %d: joined relation diverged", run)
		}
		if len(j.Prov) != len(first.Prov) {
			t.Fatalf("run %d: provenance length diverged", run)
		}
		for i := range j.Prov {
			for k := range j.Prov[i] {
				if j.Prov[i][k] != first.Prov[i][k] {
					t.Fatalf("run %d: provenance row %d diverged", run, i)
				}
			}
		}
		col := j.Columnar()
		if col.NumRows() != wantCols.NumRows() {
			t.Fatalf("run %d: columnar row count diverged", run)
		}
	}
	// The first join's tuples must still be intact after its arenas' peers
	// cycled through the pools 50 times (final arenas are never recycled).
	if got := first.Rel.Fingerprint(); got != wantFP {
		t.Fatal("original join corrupted by later pooled joins")
	}
}

// TestJoinArenaPoolingConcurrent hammers the fold pools from many
// goroutines; run under -race this checks the pools introduce no sharing
// between concurrent joins.
func TestJoinArenaPoolingConcurrent(t *testing.T) {
	d := twoTableDB(t)
	want := ""
	{
		j, err := JoinAll(d)
		if err != nil {
			t.Fatal(err)
		}
		want = j.Rel.Fingerprint()
	}
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := JoinAll(d)
				if err != nil {
					errs[w] = err.Error()
					return
				}
				if j.Rel.Fingerprint() != want {
					errs[w] = "fingerprint diverged"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, e := range errs {
		if e != "" {
			t.Errorf("worker %d: %s", w, e)
		}
	}
}

// TestColumnarConcurrentSharedJoin races many goroutines into one Joined's
// memoised Columnar() and Hash64() — the exact access pattern of concurrent
// batch lookups, where every cache probe hashes the join and every miss
// builds on the columnar view. All callers must observe the same fully-built
// view (sync.Once publication), with pooled join arenas cycling underneath.
func TestColumnarConcurrentSharedJoin(t *testing.T) {
	d := twoTableDB(t)
	j, err := JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := j.ContentHash()
	var wg sync.WaitGroup
	cols := make([]any, 16)
	for w := 0; w < len(cols); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Churn the fold pools concurrently so a pooled-arena bug could
			// only surface as divergence in the shared view.
			if _, err := JoinAll(d); err != nil {
				t.Error(err)
				return
			}
			col := j.Columnar()
			if col.NumRows() != j.Rel.Len() {
				t.Errorf("worker %d: columnar has %d rows, join has %d",
					w, col.NumRows(), j.Rel.Len())
			}
			if h := j.ContentHash(); h != wantHash {
				t.Errorf("worker %d: join hash diverged", w)
			}
			cols[w] = col
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(cols); w++ {
		if cols[w] != cols[0] {
			t.Errorf("worker %d saw a different columnar view", w)
		}
	}
}
