package db

import (
	"sort"

	"qfe/internal/relation"
)

// InferForeignKeys discovers soft foreign-key constraints by mining unary
// inclusion dependencies, the technique the paper's footnote 3 points at
// ("if foreign-key constraints are not explicitly provided ... we can infer
// soft foreign-key constraints by applying known techniques [16]" — de
// Marchi et al., EDBT 2002). A candidate child.c → parent.p is reported
// when
//
//   - parent.p's values are unique (it behaves like a key),
//   - every non-NULL child.c value occurs in parent.p,
//   - the columns' kinds match, and
//   - the pair is not trivially the same column.
//
// Among multiple parents for the same child column, the smaller parent
// table wins (the conventional dimension-table heuristic). The result is
// deterministic: candidates are ordered by child table, child column,
// parent table.
func InferForeignKeys(d *Database) []ForeignKey {
	type colInfo struct {
		table  string
		name   string
		kind   relation.Kind
		values map[string]bool
		unique bool
		rows   int
	}
	var cols []colInfo
	for _, t := range d.Tables() {
		for ci, c := range t.Schema {
			info := colInfo{table: t.Name, name: c.Name, kind: c.Type,
				values: make(map[string]bool, t.Len()), unique: true, rows: t.Len()}
			for _, tup := range t.Tuples {
				v := tup[ci]
				if v.IsNull() {
					continue
				}
				k := v.Key()
				if info.values[k] {
					info.unique = false
				}
				info.values[k] = true
			}
			cols = append(cols, info)
		}
	}

	var out []ForeignKey
	for _, child := range cols {
		if len(child.values) == 0 {
			continue
		}
		var best *colInfo
		for i := range cols {
			parent := &cols[i]
			if parent.table == child.table || !parent.unique || parent.kind != child.kind {
				continue
			}
			if len(child.values) > len(parent.values) {
				continue
			}
			contained := true
			for k := range child.values {
				if !parent.values[k] {
					contained = false
					break
				}
			}
			if !contained {
				continue
			}
			if best == nil || parent.rows < best.rows ||
				(parent.rows == best.rows && parent.table < best.table) {
				best = parent
			}
		}
		if best != nil {
			out = append(out, ForeignKey{
				ChildTable: child.table, ChildColumns: []string{child.name},
				ParentTable: best.table, ParentColumns: []string{best.name},
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ChildTable != out[j].ChildTable {
			return out[i].ChildTable < out[j].ChildTable
		}
		if out[i].ChildColumns[0] != out[j].ChildColumns[0] {
			return out[i].ChildColumns[0] < out[j].ChildColumns[0]
		}
		return out[i].ParentTable < out[j].ParentTable
	})
	return out
}
