package db

import (
	"strings"
	"testing"

	"qfe/internal/relation"
)

// twoTableDB builds the paper's Example 5.4 shape: T1(A,B,C) with T2(A,D)
// where T2.A references T1.A and A=1 fans out to two T2 rows.
func twoTableDB(t *testing.T) *Database {
	t.Helper()
	d := New()
	t1 := relation.New("T1", relation.NewSchema(
		"A", relation.KindInt, "B", relation.KindInt, "C", relation.KindInt))
	t1.Append(
		relation.NewTuple(1, 10, 50),
		relation.NewTuple(2, 80, 45),
		relation.NewTuple(3, 92, 80),
	)
	t2 := relation.New("T2", relation.NewSchema("A", relation.KindInt, "D", relation.KindInt))
	t2.Append(
		relation.NewTuple(1, 20),
		relation.NewTuple(1, 40),
		relation.NewTuple(2, 25),
		relation.NewTuple(3, 20),
	)
	d.MustAddTable(t1)
	d.MustAddTable(t2)
	d.AddPrimaryKey("T1", "A")
	d.AddForeignKey("T2", []string{"A"}, "T1", []string{"A"})
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	return d
}

func TestAddTableErrors(t *testing.T) {
	d := New()
	r := relation.New("T", relation.NewSchema("x", relation.KindInt))
	if err := d.AddTable(r); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTable(r); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := d.AddTable(relation.New("", nil)); err == nil {
		t.Error("unnamed table should fail")
	}
	if d.Table("T") != r || d.Table("missing") != nil {
		t.Error("Table lookup broken")
	}
}

func TestValidatePK(t *testing.T) {
	d := twoTableDB(t)
	// Introduce a duplicate key.
	d.Table("T1").Tuples[1][0] = relation.Int(1)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "primary key violation") {
		t.Errorf("want PK violation, got %v", err)
	}
}

func TestValidateFK(t *testing.T) {
	d := twoTableDB(t)
	d.Table("T2").Tuples[0][0] = relation.Int(99)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "foreign key") {
		t.Errorf("want FK violation, got %v", err)
	}
	// NULL foreign keys are allowed.
	d2 := twoTableDB(t)
	d2.Table("T2").Tuples[0][0] = relation.Null()
	if err := d2.Validate(); err != nil {
		t.Errorf("NULL FK should be allowed: %v", err)
	}
}

func TestValidateMissingTableConstraints(t *testing.T) {
	d := New()
	d.AddPrimaryKey("ghost", "x")
	if err := d.Validate(); err == nil {
		t.Error("PK on missing table should fail validation")
	}
	d2 := New()
	d2.AddForeignKey("a", []string{"x"}, "b", []string{"y"})
	if err := d2.Validate(); err == nil {
		t.Error("FK on missing tables should fail validation")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := twoTableDB(t)
	c := d.Clone()
	c.Table("T1").Tuples[0][1] = relation.Int(999)
	if d.Table("T1").Tuples[0][1].I != 10 {
		t.Error("Clone must deep-copy tables")
	}
	if len(c.ForeignKeys) != 1 || len(c.PrimaryKeys) != 1 {
		t.Error("Clone must copy constraints")
	}
}

func TestApplyEdits(t *testing.T) {
	d := twoTableDB(t)
	edited, err := d.ApplyEdits([]CellEdit{
		{Table: "T1", Row: 0, Column: "B", Value: relation.Int(11)},
		{Table: "T2", Row: 2, Column: "D", Value: relation.Int(26)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Table("T1").Tuples[0][1].I != 10 {
		t.Error("ApplyEdits must not mutate the receiver")
	}
	if edited.Table("T1").Tuples[0][1].I != 11 || edited.Table("T2").Tuples[2][1].I != 26 {
		t.Error("edits not applied")
	}

	for _, bad := range []CellEdit{
		{Table: "nope", Row: 0, Column: "B", Value: relation.Int(0)},
		{Table: "T1", Row: 99, Column: "B", Value: relation.Int(0)},
		{Table: "T1", Row: 0, Column: "nope", Value: relation.Int(0)},
	} {
		if _, err := d.ApplyEdits([]CellEdit{bad}); err == nil {
			t.Errorf("edit %v should fail", bad)
		}
	}
}

func TestModifiedCounters(t *testing.T) {
	edits := []CellEdit{
		{Table: "T1", Row: 0, Column: "B"},
		{Table: "T1", Row: 0, Column: "C"},
		{Table: "T1", Row: 1, Column: "B"},
		{Table: "T2", Row: 0, Column: "D"},
	}
	if n := ModifiedRelations(edits); n != 2 {
		t.Errorf("ModifiedRelations = %d, want 2", n)
	}
	if mu := ModifiedTuples(edits); mu != 3 {
		t.Errorf("ModifiedTuples = %d, want 3", mu)
	}
}

func TestJoinProvenance(t *testing.T) {
	d := twoTableDB(t)
	j, err := Join(d, []string{"T1", "T2"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.Len() != 4 {
		t.Fatalf("join size = %d, want 4", j.Rel.Len())
	}
	if j.Rel.Arity() != 5 {
		t.Fatalf("join arity = %d, want 5", j.Rel.Arity())
	}
	// Paper §5.4.1: base tuple T1(1,10,50) joins with two T2 rows.
	if got := j.FanOut("T1", 0); got != 2 {
		t.Errorf("FanOut(T1,0) = %d, want 2", got)
	}
	if got := j.FanOut("T1", 1); got != 1 {
		t.Errorf("FanOut(T1,1) = %d, want 1", got)
	}
	// Every joined tuple's provenance must point at its source rows.
	for ti, prov := range j.Prov {
		t1row := d.Table("T1").Tuples[prov[0]]
		if !j.Rel.Tuples[ti][0].Equal(t1row[0]) {
			t.Errorf("tuple %d provenance mismatch on T1", ti)
		}
		t2row := d.Table("T2").Tuples[prov[1]]
		if !j.Rel.Tuples[ti][4].Equal(t2row[1]) {
			t.Errorf("tuple %d provenance mismatch on T2", ti)
		}
	}
}

func TestJoinQualifiedSchemaAndColRefs(t *testing.T) {
	d := twoTableDB(t)
	j, err := Join(d, []string{"T1", "T2"})
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"T1.A", "T1.B", "T1.C", "T2.A", "T2.D"}
	for i, n := range wantCols {
		if j.Rel.Schema[i].Name != n {
			t.Errorf("col %d = %q, want %q", i, j.Rel.Schema[i].Name, n)
		}
	}
	ref, err := j.ColRefOf("T2.D")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Table != "T2" || ref.Column != "D" || ref.TableIdx != 1 || ref.ColIdx != 1 {
		t.Errorf("ColRefOf(T2.D) = %+v", ref)
	}
	if _, err := j.ColRefOf("T9.X"); err == nil {
		t.Error("missing column should error")
	}
}

func TestJoinDanglingTuplesDropped(t *testing.T) {
	d := twoTableDB(t)
	// T1 row with A=3 joins one T2 row; remove it and re-join.
	d.Table("T2").Tuples = d.Table("T2").Tuples[:3]
	j, err := Join(d, []string{"T1", "T2"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.Len() != 3 {
		t.Errorf("dangling T1 row should drop; join size = %d, want 3", j.Rel.Len())
	}
}

func TestJoinOrderIndependence(t *testing.T) {
	d := twoTableDB(t)
	a, err := Join(d, []string{"T1", "T2"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(d, []string{"T2", "T1"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rel.Len() != b.Rel.Len() {
		t.Errorf("join cardinality should not depend on order: %d vs %d", a.Rel.Len(), b.Rel.Len())
	}
	// Project both to a common column order and compare as bags.
	pa, _ := a.Rel.Project([]string{"T1.A", "T1.B", "T2.D"})
	pb, _ := b.Rel.Project([]string{"T1.A", "T1.B", "T2.D"})
	if !pa.BagEqual(pb) {
		t.Error("join contents should not depend on order")
	}
}

func TestJoinErrors(t *testing.T) {
	d := twoTableDB(t)
	if _, err := Join(d, nil); err == nil {
		t.Error("empty join should fail")
	}
	if _, err := Join(d, []string{"nope"}); err == nil {
		t.Error("unknown table should fail")
	}
	// Unconnected tables must be rejected.
	d.MustAddTable(relation.New("Island", relation.NewSchema("z", relation.KindInt)))
	if _, err := Join(d, []string{"T1", "Island"}); err == nil {
		t.Error("join without connecting FK should fail")
	}
}

func TestJoinSingleTable(t *testing.T) {
	d := twoTableDB(t)
	j, err := Join(d, []string{"T1"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.Len() != 3 || j.Rel.Arity() != 3 {
		t.Errorf("single-table join = %dx%d", j.Rel.Len(), j.Rel.Arity())
	}
	if j.Rel.Schema[0].Name != "T1.A" {
		t.Error("single-table join should still qualify columns")
	}
}

func TestJoinAllAndRebuilt(t *testing.T) {
	d := twoTableDB(t)
	j, err := JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	// Editing a base cell and rebuilding reflects the change.
	edited, err := d.ApplyEdits([]CellEdit{{Table: "T1", Row: 0, Column: "B", Value: relation.Int(77)}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := j.Rebuilt(edited)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	bi := j2.Rel.Schema.MustIndexOf("T1.B")
	for _, tup := range j2.Rel.Tuples {
		if tup[bi].Equal(relation.Int(77)) {
			found++
		}
	}
	if found != 2 { // fan-out of 2
		t.Errorf("edited value should appear in 2 joined tuples, got %d", found)
	}
}

func TestDatabaseString(t *testing.T) {
	s := twoTableDB(t).String()
	if !strings.Contains(s, "T1(3 cols, 3 rows)") || !strings.Contains(s, "FK T2(A) -> T1(A)") {
		t.Errorf("String() = %q", s)
	}
}
