package db

import (
	"testing"

	"qfe/internal/relation"
)

func TestInferForeignKeys(t *testing.T) {
	d := New()
	dept := relation.New("Dept", relation.NewSchema(
		"did", relation.KindInt, "dname", relation.KindString))
	dept.Append(relation.NewTuple(1, "IT"), relation.NewTuple(2, "Sales"))
	emp := relation.New("Emp", relation.NewSchema(
		"eid", relation.KindInt, "ename", relation.KindString, "did", relation.KindInt))
	emp.Append(
		relation.NewTuple(10, "Bob", 1),
		relation.NewTuple(11, "Alice", 2),
		relation.NewTuple(12, "Darren", 1),
	)
	d.MustAddTable(dept)
	d.MustAddTable(emp)

	fks := InferForeignKeys(d)
	found := false
	for _, fk := range fks {
		if fk.ChildTable == "Emp" && fk.ChildColumns[0] == "did" &&
			fk.ParentTable == "Dept" && fk.ParentColumns[0] == "did" {
			found = true
		}
		// No inferred FK may point from a column with values missing in the
		// parent.
		if fk.ChildTable == "Emp" && fk.ChildColumns[0] == "eid" {
			t.Errorf("eid (10..12) is not contained in any parent: %v", fk)
		}
	}
	if !found {
		t.Errorf("Emp.did -> Dept.did not inferred: %v", fks)
	}

	// The inferred FK must let the join machinery work.
	for _, fk := range fks {
		d.ForeignKeys = append(d.ForeignKeys, fk)
	}
	j, err := Join(d, []string{"Emp", "Dept"})
	if err != nil {
		t.Fatalf("join over inferred FK: %v", err)
	}
	if j.Rel.Len() != 3 {
		t.Errorf("join size = %d, want 3", j.Rel.Len())
	}
}

func TestInferForeignKeysRejectsNonUniqueParents(t *testing.T) {
	d := New()
	a := relation.New("A", relation.NewSchema("x", relation.KindInt))
	a.Append(relation.NewTuple(1), relation.NewTuple(1)) // not unique
	b := relation.New("B", relation.NewSchema("y", relation.KindInt))
	b.Append(relation.NewTuple(1))
	d.MustAddTable(a)
	d.MustAddTable(b)
	for _, fk := range InferForeignKeys(d) {
		if fk.ParentTable == "A" {
			t.Errorf("non-unique column proposed as parent key: %v", fk)
		}
	}
}

func TestInferForeignKeysKindMismatch(t *testing.T) {
	d := New()
	a := relation.New("A", relation.NewSchema("x", relation.KindString))
	a.Append(relation.NewTuple("1"))
	b := relation.New("B", relation.NewSchema("y", relation.KindInt))
	b.Append(relation.NewTuple(1))
	d.MustAddTable(a)
	d.MustAddTable(b)
	if fks := InferForeignKeys(d); len(fks) != 0 {
		t.Errorf("string->int FK inferred: %v", fks)
	}
}

func TestInferForeignKeysNullsIgnored(t *testing.T) {
	d := New()
	p := relation.New("P", relation.NewSchema("k", relation.KindInt))
	p.Append(relation.NewTuple(1), relation.NewTuple(2))
	c := relation.New("C", relation.NewSchema("fk", relation.KindInt))
	c.Append(relation.NewTuple(1), relation.Tuple{relation.Null()})
	d.MustAddTable(p)
	d.MustAddTable(c)
	found := false
	for _, fk := range InferForeignKeys(d) {
		if fk.ChildTable == "C" && fk.ParentTable == "P" {
			found = true
		}
	}
	if !found {
		t.Error("NULLs must not block containment")
	}
}
