package db

import (
	"testing"

	"qfe/internal/relation"
)

// TestJoinUnderForcedHashCollisions proves the hash join's collision-
// verification invariant: with every kernel hash truncated to 2 bits, rows
// with unequal join keys routinely share index buckets, yet the join must
// produce exactly the tuples and provenance of the untruncated run —
// equality of join columns is always verified value-by-value.
func TestJoinUnderForcedHashCollisions(t *testing.T) {
	d := twoTableDB(t)

	want, err := JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}

	relation.ForceHashCollisionsForTesting(2)
	defer relation.ForceHashCollisionsForTesting(0)

	got, err := JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rel.Len() != want.Rel.Len() {
		t.Fatalf("collided join has %d tuples, want %d", got.Rel.Len(), want.Rel.Len())
	}
	for i := range want.Rel.Tuples {
		if !got.Rel.Tuples[i].Equal(want.Rel.Tuples[i]) {
			t.Fatalf("tuple %d diverges under collisions: %v vs %v",
				i, got.Rel.Tuples[i], want.Rel.Tuples[i])
		}
		if len(got.Prov[i]) != len(want.Prov[i]) {
			t.Fatalf("provenance %d length diverges", i)
		}
		for j := range want.Prov[i] {
			if got.Prov[i][j] != want.Prov[i][j] {
				t.Fatalf("provenance %d diverges: %v vs %v", i, got.Prov[i], want.Prov[i])
			}
		}
	}
}
