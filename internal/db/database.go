// Package db implements the database substrate for QFE: a collection of
// named relations with primary-key and foreign-key constraints, integrity
// validation (paper §6.3), cell-level edits, and the foreign-key join that
// produces the "universal" relation the winnowing algorithms operate on
// (paper §5). The join records provenance — which base tuple produced each
// joined tuple — which is the paper's "join index" used to track the side
// effects of base-table modifications (§5.4.1).
package db

import (
	"fmt"
	"sort"
	"strings"

	"qfe/internal/relation"
)

// PrimaryKey declares that the named columns uniquely identify tuples of a
// table.
type PrimaryKey struct {
	Table   string
	Columns []string
}

// ForeignKey declares that ChildColumns of ChildTable reference
// ParentColumns of ParentTable (which should be the parent's key).
type ForeignKey struct {
	ChildTable    string
	ChildColumns  []string
	ParentTable   string
	ParentColumns []string
}

// String renders the constraint as "child(c1,c2) -> parent(p1,p2)".
func (fk ForeignKey) String() string {
	return fmt.Sprintf("%s(%s) -> %s(%s)",
		fk.ChildTable, strings.Join(fk.ChildColumns, ","),
		fk.ParentTable, strings.Join(fk.ParentColumns, ","))
}

// Database is an ordered collection of relations plus declared constraints.
// Table iteration order is the insertion order, which keeps all downstream
// algorithms deterministic.
type Database struct {
	tables []*relation.Relation
	byName map[string]*relation.Relation

	PrimaryKeys []PrimaryKey
	ForeignKeys []ForeignKey
}

// New creates an empty database.
func New() *Database {
	return &Database{byName: make(map[string]*relation.Relation)}
}

// AddTable registers a relation. The name must be unique.
func (d *Database) AddTable(r *relation.Relation) error {
	if r.Name == "" {
		return fmt.Errorf("db: table must be named")
	}
	if _, dup := d.byName[r.Name]; dup {
		return fmt.Errorf("db: duplicate table %q", r.Name)
	}
	d.tables = append(d.tables, r)
	d.byName[r.Name] = r
	return nil
}

// MustAddTable is AddTable that panics on error; for dataset builders.
func (d *Database) MustAddTable(r *relation.Relation) {
	if err := d.AddTable(r); err != nil {
		panic(err)
	}
}

// Table returns the named relation or nil.
func (d *Database) Table(name string) *relation.Relation { return d.byName[name] }

// Tables returns the relations in insertion order. The slice is shared; do
// not mutate it.
func (d *Database) Tables() []*relation.Relation { return d.tables }

// TableNames returns the table names in insertion order.
func (d *Database) TableNames() []string {
	ns := make([]string, len(d.tables))
	for i, t := range d.tables {
		ns[i] = t.Name
	}
	return ns
}

// AddPrimaryKey declares a primary key.
func (d *Database) AddPrimaryKey(table string, cols ...string) {
	d.PrimaryKeys = append(d.PrimaryKeys, PrimaryKey{Table: table, Columns: cols})
}

// AddForeignKey declares a foreign key.
func (d *Database) AddForeignKey(child string, childCols []string, parent string, parentCols []string) {
	d.ForeignKeys = append(d.ForeignKeys, ForeignKey{
		ChildTable: child, ChildColumns: childCols,
		ParentTable: parent, ParentColumns: parentCols,
	})
}

// Clone deep-copies the database, including constraint declarations.
func (d *Database) Clone() *Database {
	c := New()
	for _, t := range d.tables {
		c.MustAddTable(t.Clone())
	}
	c.PrimaryKeys = append([]PrimaryKey(nil), d.PrimaryKeys...)
	c.ForeignKeys = append([]ForeignKey(nil), d.ForeignKeys...)
	return c
}

// PrimaryKeyOf returns the primary key declared for a table, if any.
func (d *Database) PrimaryKeyOf(table string) (PrimaryKey, bool) {
	for _, pk := range d.PrimaryKeys {
		if pk.Table == table {
			return pk, true
		}
	}
	return PrimaryKey{}, false
}

// Validate checks every declared constraint and returns the first violation
// found, or nil. Paper §6.3: modified databases shown to the user must be
// valid.
func (d *Database) Validate() error {
	for _, pk := range d.PrimaryKeys {
		t := d.Table(pk.Table)
		if t == nil {
			return fmt.Errorf("db: primary key on missing table %q", pk.Table)
		}
		idx, err := columnIndexes(t, pk.Columns)
		if err != nil {
			return fmt.Errorf("db: primary key %s: %w", pk.Table, err)
		}
		seen := make(map[string]int, t.Len())
		for i, tup := range t.Tuples {
			k := tup.Project(idx).Key()
			if j, dup := seen[k]; dup {
				return fmt.Errorf("db: %s: primary key violation: rows %d and %d share key %s",
					pk.Table, j, i, tup.Project(idx))
			}
			seen[k] = i
		}
	}
	for _, fk := range d.ForeignKeys {
		if err := d.validateFK(fk); err != nil {
			return err
		}
	}
	return nil
}

func (d *Database) validateFK(fk ForeignKey) error {
	child, parent := d.Table(fk.ChildTable), d.Table(fk.ParentTable)
	if child == nil || parent == nil {
		return fmt.Errorf("db: foreign key %s: missing table", fk)
	}
	ci, err := columnIndexes(child, fk.ChildColumns)
	if err != nil {
		return fmt.Errorf("db: foreign key %s: %w", fk, err)
	}
	pi, err := columnIndexes(parent, fk.ParentColumns)
	if err != nil {
		return fmt.Errorf("db: foreign key %s: %w", fk, err)
	}
	keys := make(map[string]bool, parent.Len())
	for _, tup := range parent.Tuples {
		keys[tup.Project(pi).Key()] = true
	}
	for i, tup := range child.Tuples {
		ref := tup.Project(ci)
		null := false
		for _, v := range ref {
			if v.IsNull() {
				null = true
				break
			}
		}
		if null {
			continue // NULL references are permitted, as in SQL.
		}
		if !keys[ref.Key()] {
			return fmt.Errorf("db: foreign key %s: row %d references missing key %s", fk, i, ref)
		}
	}
	return nil
}

// CellEdit identifies one attribute-value modification in a base table
// (paper edit operation E1).
type CellEdit struct {
	Table  string
	Row    int
	Column string
	Value  relation.Value
}

// String renders the edit as "table[row].col = value".
func (e CellEdit) String() string {
	return fmt.Sprintf("%s[%d].%s = %s", e.Table, e.Row, e.Column, e.Value)
}

// ApplyEdits returns a deep copy of the database with the edits applied. The
// receiver is unchanged. An out-of-range edit returns an error.
func (d *Database) ApplyEdits(edits []CellEdit) (*Database, error) {
	c := d.Clone()
	for _, e := range edits {
		t := c.Table(e.Table)
		if t == nil {
			return nil, fmt.Errorf("db: edit %s: no such table", e)
		}
		if e.Row < 0 || e.Row >= t.Len() {
			return nil, fmt.Errorf("db: edit %s: row out of range (table has %d rows)", e, t.Len())
		}
		ci := t.Schema.IndexOf(e.Column)
		if ci < 0 {
			return nil, fmt.Errorf("db: edit %s: no such column", e)
		}
		t.Tuples[e.Row][ci] = e.Value
	}
	return c, nil
}

// ModifiedRelations returns the number of distinct tables touched by edits,
// the "n" of the paper's dbCost = minEdit + β·n (Eq. 3).
func ModifiedRelations(edits []CellEdit) int {
	seen := make(map[string]bool)
	for _, e := range edits {
		seen[e.Table] = true
	}
	return len(seen)
}

// ModifiedTuples returns the number of distinct (table,row) pairs touched by
// edits, the "µ" of the paper's residual cost model (§3).
func ModifiedTuples(edits []CellEdit) int {
	type key struct {
		t string
		r int
	}
	seen := make(map[key]bool)
	for _, e := range edits {
		seen[key{e.Table, e.Row}] = true
	}
	return len(seen)
}

func columnIndexes(t *relation.Relation, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Schema.IndexOf(c)
		if j < 0 {
			return nil, fmt.Errorf("column %q not in table %q", c, t.Name)
		}
		idx[i] = j
	}
	return idx, nil
}

// String summarises the database (tables, arities, cardinalities,
// constraints) for logs and the CLI.
func (d *Database) String() string {
	var b strings.Builder
	names := d.TableNames()
	sort.Strings(names)
	for _, n := range names {
		t := d.Table(n)
		fmt.Fprintf(&b, "%s(%d cols, %d rows)\n", n, t.Arity(), t.Len())
	}
	for _, fk := range d.ForeignKeys {
		fmt.Fprintf(&b, "FK %s\n", fk)
	}
	return b.String()
}
