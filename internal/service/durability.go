// Durability: the WAL-backed crash-recovery path for the session manager
// (DESIGN.md §11). The write side lives in service.go (Create/FeedbackAt
// journal every accepted transition before acknowledging it); this file owns
// the read side — Recover rebuilds the pre-crash session population from the
// newest snapshot plus a deterministic replay of the WAL tail — and the
// compaction protocol, Checkpoint, which bounds replay work by atomically
// persisting a snapshot and truncating the log segments it covers.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/codec"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/par"
	"qfe/internal/relation"
	"qfe/internal/wal"
)

// createdPayload is the schema of a TypeCreated record's opaque payload:
// everything replay needs to rebuild the session from nothing — the inputs
// in codec wire form and the deterministic per-session config. The wal
// package never interprets it.
type createdPayload struct {
	DB     codec.Database      `json:"db"`
	R      codec.Relation      `json:"r"`
	QC     []codec.Query       `json:"qc"`
	Config core.ConfigSnapshot `json:"config"`
}

// createdRecords builds the journal batch for a successful Create: the
// created record, plus a finished marker when the session completed on
// Start (no feedback will ever follow). Caller holds h.mu.
func (m *Manager) createdRecords(h *managed, d *db.Database, r *relation.Relation,
	qc []*algebra.Query, now time.Time) ([]wal.Record, error) {
	payload, err := json.Marshal(createdPayload{
		DB:     codec.EncodeDatabase(d),
		R:      codec.EncodeRelation(r),
		QC:     codec.EncodeQueries(qc),
		Config: core.SnapshotConfig(m.opts.Config),
	})
	if err != nil {
		return nil, err
	}
	recs := []wal.Record{{Type: wal.TypeCreated, ID: h.id, UnixNs: now.UnixNano(),
		Created: payload}}
	if h.outcome != nil {
		recs = append(recs, wal.Record{Type: wal.TypeFinished, ID: h.id,
			UnixNs: now.UnixNano()})
	}
	return recs, nil
}

// RecoveryStats reports what Recover rebuilt.
type RecoveryStats struct {
	// SnapshotSessions is how many sessions the snapshot file restored.
	SnapshotSessions int
	// ReplaySessions is how many sessions the WAL tail rebuilt from scratch
	// or advanced past their snapshot state.
	ReplaySessions int
	// RecordsApplied counts WAL records that changed state during replay
	// (created records that rebuilt a session, feedback records applied,
	// abandoned/dead markers honoured). Records made redundant by the
	// snapshot are replayed but not counted.
	RecordsApplied int
	// WAL is the raw log scan outcome (segments read, torn tail, corruption).
	WAL wal.ReplayStats
	// DurationNs is the wall time the whole recovery took.
	DurationNs int64
	// Errors collects per-session replay failures. A failed session is left
	// as a dead tombstone (clients get ErrDead, not ErrNotFound) rather than
	// silently dropped.
	Errors []error
}

// sessionTrail is the ordered WAL history of one session id.
type sessionTrail struct {
	id        string
	recs      []wal.Record
	abandoned bool
	dead      bool
}

// Recover rebuilds the manager's session population after a restart: load
// the newest snapshot (if snapshotPath names an existing file), then replay
// the WAL tail in walDir through the engine. Replay is idempotent — every
// feedback record carries the round seq it answered, so records already
// reflected in the snapshot are skipped and only the post-snapshot suffix
// advances each session. Sessions with no snapshot entry are rebuilt from
// their created record (deterministic by the pair-count generator budget:
// Start and Feedback reproduce the pre-crash rounds byte-identically).
// Independent sessions replay in parallel.
//
// Recover is not safe to run concurrently with client traffic; call it
// before serving. It returns an error only for infrastructure failures
// (unreadable WAL); per-session damage is reported in RecoveryStats.Errors
// and leaves dead tombstones.
func (m *Manager) Recover(snapshotPath, walDir string) (RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats

	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		if err == nil {
			n, errs := m.Load(f)
			f.Close()
			stats.SnapshotSessions = n
			stats.Errors = append(stats.Errors, errs...)
		} else if !os.IsNotExist(err) {
			return stats, fmt.Errorf("service: recover: snapshot: %w", err)
		}
	}

	// Group the log per session, preserving per-session record order (the
	// log is append-ordered, and one session's records are serialized by its
	// handle mutex, so within a session the order is the transition order).
	var order []string
	trails := map[string]*sessionTrail{}
	walStats, err := wal.Replay(walDir, func(rec wal.Record) error {
		t, ok := trails[rec.ID]
		if !ok {
			t = &sessionTrail{id: rec.ID}
			trails[rec.ID] = t
			order = append(order, rec.ID)
		}
		t.recs = append(t.recs, rec)
		switch rec.Type {
		case wal.TypeAbandoned:
			t.abandoned = true
		case wal.TypeDead:
			t.dead = true
		}
		return nil
	})
	stats.WAL = walStats
	if err != nil {
		return stats, fmt.Errorf("service: recover: %w", err)
	}

	type replayResult struct {
		advanced bool
		applied  int
		err      error
	}
	results := make([]replayResult, len(order))
	par.Do(len(order), par.Workers(0), func(i int) {
		t := trails[order[i]]
		advanced, applied, err := m.replaySession(t)
		results[i] = replayResult{advanced: advanced, applied: applied, err: err}
	})
	for i, res := range results {
		stats.RecordsApplied += res.applied
		if res.advanced {
			stats.ReplaySessions++
		}
		if res.err != nil {
			stats.Errors = append(stats.Errors, fmt.Errorf("session %s: %w", order[i], res.err))
		}
	}

	m.mu.Lock()
	m.enforceCapLocked()
	m.mu.Unlock()

	stats.DurationNs = int64(time.Since(start))
	m.replayed.Add(uint64(stats.ReplaySessions))
	m.recordsReplayed.Add(uint64(stats.RecordsApplied))
	m.recoveryNs.Store(stats.DurationNs)
	mReplayed.Add(uint64(stats.ReplaySessions))
	mReplayApplied.Add(uint64(stats.RecordsApplied))
	mRecovery.Observe(stats.DurationNs)
	return stats, nil
}

// replaySession applies one session's WAL trail on top of whatever the
// snapshot restored (possibly nothing). It reports whether the session was
// rebuilt or advanced, how many records changed state, and any replay
// failure — which tombstones the session rather than dropping it, so a
// client holding its id sees ErrDead, never a silent ErrNotFound.
func (m *Manager) replaySession(t *sessionTrail) (advanced bool, applied int, err error) {
	if t.abandoned {
		// The user walked away pre-crash; honour it whether or not the
		// snapshot still holds the session.
		m.mu.Lock()
		_, had := m.sessions[t.id]
		delete(m.sessions, t.id)
		m.mu.Unlock()
		if had {
			applied++
		}
		return false, applied, nil
	}

	m.mu.Lock()
	h := m.sessions[t.id]
	m.mu.Unlock()

	if h == nil {
		// Not in the snapshot: rebuild from the created record, if the tail
		// has one. A trail without it means the created record was truncated
		// by a checkpoint whose snapshot we then failed to restore — report,
		// and tombstone if the session is not known terminal.
		var created *wal.Record
		for i := range t.recs {
			if t.recs[i].Type == wal.TypeCreated {
				created = &t.recs[i]
				break
			}
		}
		if created == nil {
			if t.dead {
				m.installTombstone(t.id, fmt.Errorf("journal: session died pre-crash"))
				return false, applied, nil
			}
			return false, applied, fmt.Errorf("feedback records without created record or snapshot entry")
		}
		h, err = m.rebuildSession(t.id, created)
		if err != nil {
			m.installTombstone(t.id, err)
			return false, applied, err
		}
		advanced = true
		applied++
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rec := range t.recs {
		if rec.Type != wal.TypeFeedback {
			continue
		}
		if h.dead != nil {
			// Dead tombstone (restored failed session): nothing to advance.
			break
		}
		if h.outcome != nil {
			// Finished. Records at or below the session's last round are
			// history the snapshot already reflects (a checkpoint's rotate
			// happens before its snapshot, so a session's final rounds can
			// legitimately sit in the surviving tail); anything beyond means
			// the log and engine disagree.
			if rec.Seq <= h.sess.Seq() {
				continue
			}
			err = fmt.Errorf("feedback for round %d after session finished at round %d",
				rec.Seq, h.sess.Seq())
			break
		}
		pend := h.round
		if pend == nil {
			err = fmt.Errorf("feedback for round %d but no round pending", rec.Seq)
			break
		}
		if rec.Seq < pend.Seq {
			// Already reflected in the snapshot this session restored from.
			continue
		}
		if rec.Seq > pend.Seq {
			err = fmt.Errorf("feedback gap: journal answers round %d, session is at round %d",
				rec.Seq, pend.Seq)
			break
		}
		round, outcome, ferr := h.sess.Feedback(rec.Choice)
		if ferr != nil {
			err = fmt.Errorf("replaying round %d choice %d: %w", pend.Seq, rec.Choice, ferr)
			break
		}
		h.round = round
		if round == nil {
			h.outcome = outcome
			h.done.Store(true)
		}
		advanced = true
		applied++
	}
	if err != nil {
		h.dead = fmt.Errorf("%w: session %s: recovery: %v", ErrDead, t.id, err)
		h.done.Store(true)
		return advanced, applied, err
	}
	if t.dead && h.dead == nil {
		// The pre-crash process saw a fatal stepping error on the *next*
		// (unjournaled) choice; the tombstone is authoritative.
		h.dead = fmt.Errorf("%w: session %s: died pre-crash", ErrDead, t.id)
		h.done.Store(true)
		applied++
	}
	return advanced, applied, nil
}

// rebuildSession reconstructs a session from its created record: decode the
// payload, build a fresh engine session, and run Start — deterministic under
// a pair-count generator budget, so the regenerated round is byte-identical
// to the acknowledged pre-crash one.
func (m *Manager) rebuildSession(id string, created *wal.Record) (*managed, error) {
	var p createdPayload
	if err := json.Unmarshal(created.Created, &p); err != nil {
		return nil, fmt.Errorf("created payload: %w", err)
	}
	d, err := codec.DecodeDatabase(p.DB)
	if err != nil {
		return nil, fmt.Errorf("created payload: %w", err)
	}
	r, err := codec.DecodeRelation(p.R)
	if err != nil {
		return nil, fmt.Errorf("created payload: %w", err)
	}
	qc, err := codec.DecodeQueries(p.QC)
	if err != nil {
		return nil, fmt.Errorf("created payload: %w", err)
	}
	sess, err := core.NewStepSession(d, r, qc, p.Config.Config())
	if err != nil {
		return nil, err
	}
	now := m.opts.Clock()
	h := &managed{
		mu:       newSessLock(),
		id:       id,
		sess:     sess,
		created:  time.Unix(0, created.UnixNs),
		lastUsed: now,
	}
	round, err := sess.Start()
	if err != nil {
		return nil, fmt.Errorf("replaying start: %w", err)
	}
	h.round = round
	if round == nil {
		h.outcome, _ = sess.Outcome()
		h.done.Store(true)
	}
	m.mu.Lock()
	if prev, ok := m.sessions[id]; ok {
		// A concurrent recovery (two adoptions of overlapping estates)
		// registered the session first: continue replay on that handle —
		// the seq guards make double-applied trails idempotent.
		m.mu.Unlock()
		return prev, nil
	}
	m.sessions[id] = h
	m.mu.Unlock()
	return h, nil
}

// installTombstone registers a dead handle for a session that could not be
// recovered, so clients holding its id get ErrDead instead of ErrNotFound.
func (m *Manager) installTombstone(id string, cause error) {
	now := m.opts.Clock()
	h := &managed{mu: newSessLock(), id: id, created: now, lastUsed: now}
	h.dead = fmt.Errorf("%w: session %s: recovery: %v", ErrDead, id, cause)
	h.done.Store(true)
	m.mu.Lock()
	m.sessions[id] = h
	m.mu.Unlock()
}

// Checkpoint atomically persists the current session population to path and
// truncates the WAL segments the snapshot makes redundant, bounding recovery
// replay work. The protocol: rotate the log first (the returned boundary
// separates pre-checkpoint segments from the live one), then snapshot — so
// every record below the boundary describes a session the snapshot covers
// (or one legitimately gone); records racing in during the snapshot land at
// or above the boundary and survive truncation, and replaying them against
// the snapshot is idempotent by the seq guards. Truncation is skipped when
// any healthy session fails to snapshot: its history must stay replayable.
//
// An empty path is a no-op (no state file configured). Checkpoint is safe
// to run concurrently with client traffic; it returns the number of
// sessions persisted.
func (m *Manager) Checkpoint(path string) (int, error) {
	if path == "" {
		return 0, nil
	}
	defer func(start time.Time) { mCheckpoint.ObserveDuration(time.Since(start)) }(time.Now())
	var boundary uint64
	if m.opts.Journal != nil {
		b, err := m.opts.Journal.Rotate()
		if err != nil {
			return 0, fmt.Errorf("service: checkpoint: %w", err)
		}
		boundary = b
	}
	state, failed := m.collectState()
	data, err := json.Marshal(state)
	if err != nil {
		return 0, fmt.Errorf("service: checkpoint: %w", err)
	}
	if err := wal.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return 0, fmt.Errorf("service: checkpoint: %w", err)
	}
	if m.opts.Journal != nil && failed == 0 {
		if err := m.opts.Journal.TruncateBefore(boundary); err != nil {
			return len(state.Sessions), fmt.Errorf("service: checkpoint: truncate: %w", err)
		}
	}
	mCheckpointSessions.Observe(int64(len(state.Sessions)))
	return len(state.Sessions), nil
}
