// Package service turns the pausable core.Session state machine into a
// concurrent, long-lived session manager — the layer that serves many users
// who are each mid-winnowing-round, the workload interactive QBE systems are
// built around.
//
// The Manager owns a registry of sessions keyed by opaque IDs. Each session
// is stepped under its own mutex (core.Session is not concurrency-safe), so
// concurrent feedback for different sessions proceeds in parallel while
// concurrent requests for one session serialize. Idle sessions are evicted
// after a TTL; a global live-session cap applies backpressure (Create
// returns ErrCapacity) instead of letting memory grow unboundedly. Sessions
// survive process restarts: Save serializes every resident session through
// the internal/codec JSON snapshot format and Load restores them.
package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/evalcache"
	"qfe/internal/relation"
)

// Errors returned by the manager. HTTP front-ends map these to status codes
// (404, 429, 409, 500).
var (
	ErrNotFound = errors.New("service: no such session")
	ErrCapacity = errors.New("service: session capacity reached, retry later")
	ErrFinished = errors.New("service: session already finished")
	// ErrDead wraps a fatal engine error inside a session: the session is
	// unusable and the fault is the server's, not the client's.
	ErrDead = errors.New("service: session failed")
)

// Options tunes a Manager. Zero values select defaults.
type Options struct {
	// TTL evicts sessions idle for longer. 0 selects 30 minutes.
	TTL time.Duration
	// MaxSessions caps concurrently live (unfinished) sessions; Create
	// applies backpressure beyond it. 0 selects 1024.
	MaxSessions int
	// Config is the core configuration given to new sessions.
	Config core.Config
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

// Manager is a concurrent registry of winnowing sessions. All methods are
// safe for concurrent use.
type Manager struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*managed

	started      atomic.Uint64
	finished     atomic.Uint64
	evicted      atomic.Uint64
	abandoned    atomic.Uint64
	roundsServed atomic.Uint64
}

// managed wraps one session with its serialization lock and bookkeeping.
// The manager's map lock is never held while a session steps, so slow
// rounds in one session cannot stall the others.
type managed struct {
	mu      sync.Mutex
	id      string
	sess    *core.Session
	round   *core.Round
	outcome *core.Outcome
	dead    error // fatal stepping error; session unusable
	// done mirrors "outcome or dead is set" for lock-free reads by the
	// manager's capacity accounting (those fields are h.mu-guarded).
	done     atomic.Bool
	created  time.Time
	lastUsed time.Time // guarded by the manager's mu, not h.mu
}

// New creates a Manager.
func New(opts Options) *Manager {
	if opts.TTL <= 0 {
		opts.TTL = 30 * time.Minute
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 1024
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Manager{opts: opts, sessions: make(map[string]*managed)}
}

// Status is a point-in-time public view of one session.
type Status struct {
	ID string
	// Round is the pending feedback round, nil once the session finished.
	Round *core.Round
	// Outcome is the final result, nil while the session is live.
	Outcome *core.Outcome
	Created time.Time
}

// Done reports whether the session has reached its outcome.
func (s Status) Done() bool { return s.Outcome != nil }

func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: id generation: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new session over (D, R, QC) using the manager's
// default config, starts it, and returns its first status. When the live-
// session cap is reached (after evicting expired sessions) it returns
// ErrCapacity — the backpressure signal.
func (m *Manager) Create(d *db.Database, r *relation.Relation, qc []*algebra.Query) (Status, error) {
	sess, err := core.NewStepSession(d, r, qc, m.opts.Config)
	if err != nil {
		return Status{}, err
	}
	now := m.opts.Clock()
	h := &managed{id: newID(), sess: sess, created: now, lastUsed: now}
	h.mu.Lock() // reserve: nobody can step until Start finishes
	defer h.mu.Unlock()

	m.mu.Lock()
	m.evictExpiredLocked(now)
	if m.liveLocked() >= m.opts.MaxSessions {
		m.mu.Unlock()
		return Status{}, ErrCapacity
	}
	m.sessions[h.id] = h
	m.mu.Unlock()
	m.started.Add(1)

	round, err := sess.Start()
	if err != nil {
		m.remove(h.id)
		return Status{}, err
	}
	h.round = round
	if round == nil {
		h.outcome, _ = sess.Outcome()
		h.done.Store(true)
		m.finished.Add(1)
	} else {
		m.roundsServed.Add(1)
	}
	return m.statusLocked(h), nil
}

// statusLocked builds a Status; the caller holds h.mu.
func (m *Manager) statusLocked(h *managed) Status {
	return Status{ID: h.id, Round: h.round, Outcome: h.outcome, Created: h.created}
}

// lookup fetches a session handle, refreshing its idle timer.
func (m *Manager) lookup(id string) (*managed, error) {
	now := m.opts.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked(now)
	h, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	h.lastUsed = now
	return h, nil
}

// Get returns the session's current status: its pending round, or its
// outcome once finished.
func (m *Manager) Get(id string) (Status, error) {
	h, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead != nil {
		return Status{}, h.dead
	}
	return m.statusLocked(h), nil
}

// Feedback applies one feedback choice (an index into the pending round's
// results, or core.NoneOfThese) and returns the next status. Invalid
// choices return an error and leave the round pending, so clients can
// retry. A fatal stepping error kills the session and is returned to this
// and every later caller.
func (m *Manager) Feedback(id string, choice int) (Status, error) {
	h, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead != nil {
		return Status{}, h.dead
	}
	if h.outcome != nil {
		return Status{}, ErrFinished
	}
	round, outcome, err := h.sess.Feedback(choice)
	if err != nil {
		if h.sess.Pending() != nil {
			// Validation error (bad choice): round still pending, retryable.
			return Status{}, err
		}
		h.dead = fmt.Errorf("%w: session %s: %v", ErrDead, id, err)
		h.done.Store(true)
		return Status{}, h.dead
	}
	h.round = round
	if round != nil {
		m.roundsServed.Add(1)
	} else {
		h.outcome = outcome
		h.done.Store(true)
		m.finished.Add(1)
	}
	return m.statusLocked(h), nil
}

// Abandon removes a session before completion (user walked away).
func (m *Manager) Abandon(id string) error {
	m.mu.Lock()
	_, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	m.abandoned.Add(1)
	return nil
}

// remove deletes without counting it as abandoned (failed Create).
func (m *Manager) remove(id string) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// liveLocked counts unfinished resident sessions; caller holds m.mu.
func (m *Manager) liveLocked() int {
	n := 0
	for _, h := range m.sessions {
		if !h.done.Load() {
			n++
		}
	}
	return n
}

// evictExpiredLocked drops sessions idle past the TTL; caller holds m.mu.
// Finished and dead sessions age out the same way, so completed outcomes
// stay fetchable for one TTL window.
func (m *Manager) evictExpiredLocked(now time.Time) {
	for id, h := range m.sessions {
		if now.Sub(h.lastUsed) > m.opts.TTL {
			delete(m.sessions, id)
			m.evicted.Add(1)
		}
	}
}

// EvictExpired proactively applies the TTL (servers call this on a timer;
// it also runs inside every lookup) and returns the number of resident
// sessions remaining.
func (m *Manager) EvictExpired() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked(m.opts.Clock())
	return len(m.sessions)
}

// Stats is a snapshot of the manager's counters plus the effectiveness of
// the shared evaluation cache backing the sessions' generators.
type Stats struct {
	Resident int `json:"resident"` // sessions currently held
	Live     int `json:"live"`     // resident and unfinished

	SessionsStarted   uint64 `json:"sessionsStarted"`
	SessionsFinished  uint64 `json:"sessionsFinished"`
	SessionsEvicted   uint64 `json:"sessionsEvicted"`
	SessionsAbandoned uint64 `json:"sessionsAbandoned"`
	RoundsServed      uint64 `json:"roundsServed"`

	Cache evalcache.Stats `json:"cache"`
}

// cache returns the evaluation cache the manager's sessions use.
func (m *Manager) cache() *evalcache.Cache {
	if m.opts.Config.Gen.Cache != nil {
		return m.opts.Config.Gen.Cache
	}
	return evalcache.Default()
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	resident := len(m.sessions)
	live := m.liveLocked()
	m.mu.Unlock()
	return Stats{
		Resident:          resident,
		Live:              live,
		SessionsStarted:   m.started.Load(),
		SessionsFinished:  m.finished.Load(),
		SessionsEvicted:   m.evicted.Load(),
		SessionsAbandoned: m.abandoned.Load(),
		RoundsServed:      m.roundsServed.Load(),
		Cache:             m.cache().Stats(),
	}
}

// savedSession is one session in the persistence format.
type savedSession struct {
	ID       string         `json:"id"`
	Created  int64          `json:"createdUnixNs"`
	LastUsed int64          `json:"lastUsedUnixNs"`
	Snapshot *core.Snapshot `json:"snapshot"`
}

// savedState is the persistence envelope.
type savedState struct {
	Version  int            `json:"version"`
	Sessions []savedSession `json:"sessions"`
}

// Save serializes every resident, healthy session to w as JSON, so a
// restarted process can Load them and resume mid-round. Sessions that fail
// to snapshot are skipped (and counted in the returned error-free total).
func (m *Manager) Save(w io.Writer) (int, error) {
	type handleMeta struct {
		h        *managed
		lastUsed time.Time
	}
	m.mu.Lock()
	handles := make([]handleMeta, 0, len(m.sessions))
	for _, h := range m.sessions {
		handles = append(handles, handleMeta{h: h, lastUsed: h.lastUsed})
	}
	m.mu.Unlock()

	state := savedState{Version: 1}
	for _, hm := range handles {
		h := hm.h
		h.mu.Lock()
		if h.dead != nil {
			h.mu.Unlock()
			continue
		}
		snap, err := h.sess.Snapshot()
		h.mu.Unlock()
		if err != nil {
			continue
		}
		state.Sessions = append(state.Sessions, savedSession{
			ID:       h.id,
			Created:  h.created.UnixNano(),
			LastUsed: hm.lastUsed.UnixNano(),
			Snapshot: snap,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(state); err != nil {
		return 0, fmt.Errorf("service: save: %w", err)
	}
	return len(state.Sessions), nil
}

// Load restores sessions previously written by Save into the manager,
// returning how many were restored. Sessions whose snapshots no longer
// decode are skipped and reported in errs; existing sessions with the same
// ID are replaced.
func (m *Manager) Load(r io.Reader) (int, []error) {
	var state savedState
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return 0, []error{fmt.Errorf("service: load: %w", err)}
	}
	if state.Version != 1 {
		return 0, []error{fmt.Errorf("service: load: unknown state version %d", state.Version)}
	}
	var errs []error
	n := 0
	for _, ss := range state.Sessions {
		sess, err := core.Restore(ss.Snapshot, nil)
		if err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", ss.ID, err))
			continue
		}
		h := &managed{
			id:       ss.ID,
			sess:     sess,
			created:  time.Unix(0, ss.Created),
			lastUsed: time.Unix(0, ss.LastUsed),
			round:    sess.Pending(),
		}
		if out, done := sess.Outcome(); done {
			h.outcome = out
			h.done.Store(true)
		} else if serr := sess.Err(); serr != nil {
			h.dead = fmt.Errorf("%w: session %s: %v", ErrDead, ss.ID, serr)
			h.done.Store(true)
		}
		m.mu.Lock()
		m.sessions[ss.ID] = h
		m.mu.Unlock()
		n++
	}
	return n, errs
}
