// Package service turns the pausable core.Session state machine into a
// concurrent, long-lived session manager — the layer that serves many users
// who are each mid-winnowing-round, the workload interactive QBE systems are
// built around.
//
// The Manager owns a registry of sessions keyed by opaque IDs. Each session
// is stepped under its own mutex (core.Session is not concurrency-safe), so
// concurrent feedback for different sessions proceeds in parallel while
// concurrent requests for one session serialize. Idle sessions are evicted
// after a TTL; a global live-session cap applies backpressure (Create
// returns ErrCapacity) instead of letting memory grow unboundedly. Sessions
// survive process restarts: Save serializes every resident session through
// the internal/codec JSON snapshot format and Load restores them.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/evalcache"
	"qfe/internal/obs"
	"qfe/internal/relation"
	"qfe/internal/wal"
)

// Errors returned by the manager. HTTP front-ends map these to status codes
// (404, 429, 409, 500).
var (
	ErrNotFound = errors.New("service: no such session")
	ErrCapacity = errors.New("service: session capacity reached, retry later")
	ErrFinished = errors.New("service: session already finished")
	// ErrDead wraps a fatal engine error inside a session: the session is
	// unusable and the fault is the server's, not the client's.
	ErrDead = errors.New("service: session failed")
	// ErrSeqAhead reports a feedback request for a round the session has not
	// produced: the client knows more than the server, which after a crash
	// means acknowledged state was lost (the chaos harness's detector).
	ErrSeqAhead = errors.New("service: feedback seq ahead of session state")
	// ErrDegraded reports the manager in degraded read-only mode: the journal
	// stopped accepting appends, so mutations cannot be durably acknowledged.
	// HTTP maps it to 503 + Retry-After; reads keep working, and the manager
	// auto-recovers as soon as Journal.Ping succeeds again.
	ErrDegraded = errors.New("service: journal unavailable, read-only (degraded) mode")
)

// Journal is the write-ahead log the Manager acknowledges against. *wal.Log
// implements it directly; internal/fault wraps one to script storage
// failures. The method set is exactly what the manager uses: append-before-
// ack, the health probe, and the checkpoint rotation pair.
type Journal interface {
	Append(recs ...wal.Record) error
	Ping() error
	Rotate() (uint64, error)
	TruncateBefore(boundary uint64) error
}

// Options tunes a Manager. Zero values select defaults.
type Options struct {
	// TTL evicts sessions idle for longer. 0 selects 30 minutes.
	TTL time.Duration
	// MaxSessions caps concurrently live (unfinished) sessions; Create
	// applies backpressure beyond it. 0 selects 1024.
	MaxSessions int
	// Config is the core configuration given to new sessions.
	Config core.Config
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
	// Journal, when set, is the write-ahead log: every session lifecycle
	// transition is appended (and synced per the log's policy) before it is
	// acknowledged to the client, so Recover can rebuild sessions lost to a
	// crash by deterministic replay (DESIGN.md §11). For replay to reproduce
	// rounds byte-identically, Config must be deterministic — a pair-count
	// generator budget, not a wall-clock one. Assign only a non-nil journal:
	// a typed-nil *wal.Log in the interface would defeat the nil checks.
	Journal Journal
}

// Manager is a concurrent registry of winnowing sessions. All methods are
// safe for concurrent use.
type Manager struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*managed

	started      atomic.Uint64
	finished     atomic.Uint64
	evicted      atomic.Uint64
	abandoned    atomic.Uint64
	roundsServed atomic.Uint64

	// Recovery counters (see Recover): sessions restored from the snapshot,
	// sessions rebuilt or advanced by WAL replay, WAL records applied, and
	// the wall time the last recovery took.
	restored        atomic.Uint64
	replayed        atomic.Uint64
	recordsReplayed atomic.Uint64
	recoveryNs      atomic.Int64

	// Degraded (read-only) mode: set on any journal-append failure, cleared
	// when a Journal.Ping succeeds again (checked on every gated mutation
	// and every Health probe). While set, mutations fail with ErrDegraded
	// and /healthz reports not-OK so the cluster router fences the node.
	degraded          atomic.Bool
	degradedSinceNs   atomic.Int64
	degradedEntered   atomic.Uint64
	degradedRecovered atomic.Uint64
	lastDegradedNs    atomic.Int64 // duration of the last completed degraded episode
	walAppendErrors   atomic.Uint64
}

// enterDegraded flips the manager read-only (idempotent).
func (m *Manager) enterDegraded() {
	if !m.degraded.Swap(true) {
		m.degradedSinceNs.Store(m.nowNs())
		m.degradedEntered.Add(1)
		mDegradedEntered.Inc()
	}
}

// exitDegraded restores read-write mode (idempotent) and records how long
// the episode lasted.
func (m *Manager) exitDegraded() {
	if m.degraded.Swap(false) {
		m.lastDegradedNs.Store(m.nowNs() - m.degradedSinceNs.Load())
		m.degradedRecovered.Add(1)
		mDegradedRecovered.Inc()
	}
}

// noteAppendError counts a journal-append failure and trips degraded mode —
// the shared sink for every append path, best-effort ones included.
func (m *Manager) noteAppendError() {
	m.walAppendErrors.Add(1)
	mWALAppendErrors.Inc()
	m.enterDegraded()
}

// checkWritable gates mutations while degraded: it re-probes the journal so
// the first write after the fault clears flips the manager back to
// read-write (auto-recovery does not wait for a health probe).
func (m *Manager) checkWritable() error {
	if !m.degraded.Load() {
		return nil
	}
	if m.opts.Journal == nil {
		m.exitDegraded()
		return nil
	}
	if err := m.opts.Journal.Ping(); err != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	m.exitDegraded()
	return nil
}

// sessLock is a context-aware mutex guarding one session's stepping. Lock
// behaves like sync.Mutex; LockCtx gives up when the caller's context ends,
// so a request whose client is gone stops queueing behind a busy session
// instead of pinning a server slot for the full write timeout. The zero
// value is unusable — construct with newSessLock.
type sessLock struct{ ch chan struct{} }

func newSessLock() sessLock { return sessLock{ch: make(chan struct{}, 1)} }

func (l sessLock) Lock()   { l.ch <- struct{}{} }
func (l sessLock) Unlock() { <-l.ch }

// LockCtx acquires the lock or returns the context's error, preferring the
// lock when both are immediately available.
func (l sessLock) LockCtx(ctx context.Context) error {
	select {
	case l.ch <- struct{}{}:
		return nil
	default:
	}
	select {
	case l.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// managed wraps one session with its serialization lock and bookkeeping.
// The manager's map lock is never held while a session steps, so slow
// rounds in one session cannot stall the others.
type managed struct {
	mu      sessLock
	id      string
	sess    *core.Session
	round   *core.Round
	outcome *core.Outcome
	dead    error // fatal stepping error; session unusable
	// unjournaled holds accepted transitions whose journal append failed:
	// the in-memory state has advanced but the client was told the write
	// failed (503). They are prepended to the session's next append — in
	// particular by the seq-idempotent retry path, which must not
	// re-acknowledge a transition that never became durable.
	unjournaled []wal.Record
	// done mirrors "outcome or dead is set" for lock-free reads by the
	// manager's capacity accounting (those fields are h.mu-guarded).
	done     atomic.Bool
	created  time.Time
	lastUsed time.Time // guarded by the manager's mu, not h.mu
}

// New creates a Manager.
func New(opts Options) *Manager {
	if opts.TTL <= 0 {
		opts.TTL = 30 * time.Minute
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 1024
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Manager{opts: opts, sessions: make(map[string]*managed)}
}

// Status is a point-in-time public view of one session.
type Status struct {
	ID string
	// Round is the pending feedback round, nil once the session finished.
	Round *core.Round
	// Outcome is the final result, nil while the session is live.
	Outcome *core.Outcome
	Created time.Time
}

// Done reports whether the session has reached its outcome.
func (s Status) Done() bool { return s.Outcome != nil }

func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: id generation: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new session over (D, R, QC) using the manager's
// default config, starts it, and returns its first status. When the live-
// session cap is reached (after evicting expired sessions) it returns
// ErrCapacity — the backpressure signal.
func (m *Manager) Create(d *db.Database, r *relation.Relation, qc []*algebra.Query) (Status, error) {
	return m.CreateWithID(context.Background(), newID(), d, r, qc)
}

// CreateWithID is Create with a caller-chosen session id — the cluster
// router's placement primitive: the router generates the id, hashes it onto
// the consistent-hash ring, and sends the create to the id's home worker.
// Creating an id that already exists returns the existing session's current
// status instead of an error, which makes a retried create (whose first
// acknowledgement was lost to a crash or dropped connection) idempotent.
// ctx bounds the whole call: lock waits and the engine start are abandoned
// once the client's deadline passes.
func (m *Manager) CreateWithID(ctx context.Context, id string, d *db.Database, r *relation.Relation, qc []*algebra.Query) (Status, error) {
	if id == "" {
		return Status{}, errors.New("service: empty session id")
	}
	// Idempotency fast path: a retried create finds the first attempt's
	// session. Checked before the (expensive) engine start.
	m.mu.Lock()
	if prev, ok := m.sessions[id]; ok {
		m.mu.Unlock()
		if err := prev.mu.LockCtx(ctx); err != nil {
			return Status{}, err
		}
		defer prev.mu.Unlock()
		if prev.dead != nil {
			return Status{}, prev.dead
		}
		if err := m.flushUnjournaledLocked(prev); err != nil {
			return Status{}, err
		}
		return m.statusLocked(prev), nil
	}
	m.mu.Unlock()

	// Degraded gate before the expensive engine start: a node that cannot
	// journal must not take on new sessions.
	if err := m.checkWritable(); err != nil {
		return Status{}, err
	}
	if err := ctx.Err(); err != nil {
		return Status{}, err
	}
	sess, err := core.NewStepSession(d, r, qc, m.opts.Config)
	if err != nil {
		return Status{}, err
	}
	now := m.opts.Clock()
	h := &managed{mu: newSessLock(), id: id, sess: sess, created: now, lastUsed: now}
	h.mu.Lock() // reserve: nobody can step until Start finishes
	defer h.mu.Unlock()

	m.mu.Lock()
	m.evictExpiredLocked(now)
	if prev, ok := m.sessions[h.id]; ok {
		// Lost a race against a concurrent create of the same id: the first
		// registration wins, this one resolves idempotently against it.
		m.mu.Unlock()
		if err := prev.mu.LockCtx(ctx); err != nil {
			return Status{}, err
		}
		defer prev.mu.Unlock()
		if prev.dead != nil {
			return Status{}, prev.dead
		}
		if err := m.flushUnjournaledLocked(prev); err != nil {
			return Status{}, err
		}
		return m.statusLocked(prev), nil
	}
	if m.liveLocked() >= m.opts.MaxSessions {
		m.mu.Unlock()
		return Status{}, ErrCapacity
	}
	m.sessions[h.id] = h
	m.mu.Unlock()
	m.started.Add(1)
	mStarted.Inc()

	round, err := sess.Start()
	if err != nil {
		m.remove(h.id)
		return Status{}, err
	}
	h.round = round
	if round == nil {
		h.outcome, _ = sess.Outcome()
		h.done.Store(true)
		m.finished.Add(1)
		mFinished.Inc()
	} else {
		m.roundsServed.Add(1)
		mRoundsServed.Inc()
	}
	// Write-ahead: the creation (with everything replay needs to rebuild
	// the session from scratch) must be durable before the client learns
	// the session exists. A session whose Start failed is never journaled —
	// replay never sees it, matching the in-memory removal above.
	if m.opts.Journal != nil {
		recs, err := m.createdRecords(h, d, r, qc, now)
		if err != nil {
			m.remove(h.id)
			return Status{}, fmt.Errorf("service: journal: %w", err)
		}
		if err := m.opts.Journal.Append(recs...); err != nil {
			// Unwound entirely: replay never sees the session and the
			// client retries the create once the node is writable again.
			m.noteAppendError()
			m.remove(h.id)
			return Status{}, fmt.Errorf("%w: create journal append: %v", ErrDegraded, err)
		}
	}
	return m.statusLocked(h), nil
}

// statusLocked builds a Status; the caller holds h.mu.
func (m *Manager) statusLocked(h *managed) Status {
	return Status{ID: h.id, Round: h.round, Outcome: h.outcome, Created: h.created}
}

// lookup fetches a session handle, refreshing its idle timer.
func (m *Manager) lookup(id string) (*managed, error) {
	now := m.opts.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked(now)
	h, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	h.lastUsed = now
	return h, nil
}

// Get returns the session's current status: its pending round, or its
// outcome once finished.
func (m *Manager) Get(id string) (Status, error) {
	h, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead != nil {
		return Status{}, h.dead
	}
	return m.statusLocked(h), nil
}

// Feedback applies one feedback choice (an index into the pending round's
// results, or core.NoneOfThese) and returns the next status. Invalid
// choices return an error and leave the round pending, so clients can
// retry. A fatal stepping error kills the session and is returned to this
// and every later caller.
func (m *Manager) Feedback(id string, choice int) (Status, error) {
	return m.FeedbackAt(context.Background(), id, 0, choice)
}

// FeedbackAt is Feedback with at-most-once semantics: seq names the round
// the choice answers (Round.Seq). If the session has already advanced past
// seq — a retried request whose acknowledgement was lost to a crash or a
// dropped connection — the current status is returned without applying the
// choice again. A seq beyond any round the session has produced returns
// ErrSeqAhead: the client has acknowledged state the server lost. seq 0
// skips the check (the legacy unconditional apply). ctx bounds the lock
// wait and is checked once more before the engine steps.
func (m *Manager) FeedbackAt(ctx context.Context, id string, seq, choice int) (Status, error) {
	h, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	if err := h.mu.LockCtx(ctx); err != nil {
		return Status{}, err
	}
	defer h.mu.Unlock()
	if h.dead != nil {
		return Status{}, h.dead
	}
	if seq > 0 {
		switch {
		case h.round != nil && h.round.Seq == seq:
			// The pending round: apply below.
		case seq <= h.sess.Seq():
			// Already answered (possibly pre-crash, replayed from the WAL):
			// idempotent success — but only once the transition is durable.
			// Its original append may have failed, leaving it unjournaled;
			// re-acknowledging then would hand back an ack a crash could
			// still lose.
			if err := m.flushUnjournaledLocked(h); err != nil {
				return Status{}, err
			}
			return m.statusLocked(h), nil
		default:
			return Status{}, fmt.Errorf("%w: session %s: feedback for round %d, latest round is %d",
				ErrSeqAhead, id, seq, h.sess.Seq())
		}
	}
	if h.outcome != nil {
		return Status{}, ErrFinished
	}
	// Degraded gate before mutating: while the journal is down the round
	// must stay pending (503, client retries) rather than advance state we
	// cannot make durable. A successful Ping here is also the recovery
	// path — the first mutation after the fault clears reopens writes.
	if err := m.checkWritable(); err != nil {
		return Status{}, err
	}
	if err := ctx.Err(); err != nil {
		return Status{}, err
	}
	answered := 0
	if h.round != nil {
		answered = h.round.Seq
	}
	round, outcome, err := h.sess.Feedback(choice)
	if err != nil {
		if h.sess.Pending() != nil {
			// Validation error (bad choice): round still pending, retryable,
			// and never journaled — only accepted transitions are.
			return Status{}, err
		}
		h.dead = fmt.Errorf("%w: session %s: %v", ErrDead, id, err)
		h.done.Store(true)
		mDeadSessions.Inc()
		// Best-effort tombstone so recovery can skip replaying a session
		// that is known dead. Replaying without it reproduces the same
		// deterministic failure, so a lost append here is harmless.
		m.journalAppend(wal.Record{Type: wal.TypeDead, ID: id, UnixNs: m.nowNs()})
		return Status{}, h.dead
	}
	h.round = round
	if round != nil {
		m.roundsServed.Add(1)
		mRoundsServed.Inc()
	} else {
		h.outcome = outcome
		h.done.Store(true)
		m.finished.Add(1)
		mFinished.Inc()
	}
	// Write-ahead contract: the accepted transition is durable before it is
	// acknowledged. On journal failure the in-memory state has advanced but
	// the client gets 503 (no ack): the records are stashed on the handle
	// and the seq-idempotent retry flushes them before re-acknowledging, so
	// a transition is never acknowledged while undurable.
	if m.opts.Journal != nil {
		recs := append([]wal.Record{}, h.unjournaled...)
		recs = append(recs, wal.Record{Type: wal.TypeFeedback, ID: id, Seq: answered,
			Choice: choice, UnixNs: m.nowNs()})
		if h.outcome != nil {
			recs = append(recs, wal.Record{Type: wal.TypeFinished, ID: id, UnixNs: m.nowNs()})
		}
		if err := m.opts.Journal.Append(recs...); err != nil {
			h.unjournaled = recs
			m.noteAppendError()
			return Status{}, fmt.Errorf("%w: journal append: %v", ErrDegraded, err)
		}
		h.unjournaled = nil
		m.exitDegraded()
	}
	return m.statusLocked(h), nil
}

// flushUnjournaledLocked makes a handle's stashed (accepted but undurable)
// transitions durable before they can be re-acknowledged; the caller holds
// h.mu. No-op when nothing is pending.
func (m *Manager) flushUnjournaledLocked(h *managed) error {
	if len(h.unjournaled) == 0 || m.opts.Journal == nil {
		return nil
	}
	if err := m.opts.Journal.Append(h.unjournaled...); err != nil {
		m.noteAppendError()
		return fmt.Errorf("%w: journal append: %v", ErrDegraded, err)
	}
	h.unjournaled = nil
	m.exitDegraded()
	return nil
}

// Abandon removes a session (user walked away). Only live sessions count
// toward the abandoned statistic; deleting an already finished or dead
// session is a plain cleanup, not an abandonment.
func (m *Manager) Abandon(id string) error {
	m.mu.Lock()
	h, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	if !h.done.Load() {
		m.abandoned.Add(1)
		mAbandoned.Inc()
	}
	m.journalAppend(wal.Record{Type: wal.TypeAbandoned, ID: id, UnixNs: m.nowNs()})
	return nil
}

// journalAppend is the best-effort append for terminal bookkeeping records
// (abandoned, dead): losing one degrades recovery to replaying a session
// that will immediately reach the same terminal state, never to wrong data.
// Failures are still not silent: they count toward walAppendErrors and trip
// degraded mode, because a journal that rejects bookkeeping records will
// reject the next acknowledgement-bearing append too.
func (m *Manager) journalAppend(recs ...wal.Record) {
	if m.opts.Journal == nil {
		return
	}
	if err := m.opts.Journal.Append(recs...); err != nil {
		m.noteAppendError()
	}
}

// nowNs is the manager clock in WAL timestamp form.
func (m *Manager) nowNs() int64 { return m.opts.Clock().UnixNano() }

// remove deletes without counting it as abandoned (failed Create).
func (m *Manager) remove(id string) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// liveLocked counts unfinished resident sessions; caller holds m.mu.
func (m *Manager) liveLocked() int {
	n := 0
	for _, h := range m.sessions {
		if !h.done.Load() {
			n++
		}
	}
	return n
}

// evictExpiredLocked drops sessions idle past the TTL; caller holds m.mu.
// Finished and dead sessions age out the same way, so completed outcomes
// stay fetchable for one TTL window.
func (m *Manager) evictExpiredLocked(now time.Time) {
	for id, h := range m.sessions {
		if now.Sub(h.lastUsed) > m.opts.TTL {
			delete(m.sessions, id)
			m.evicted.Add(1)
			mEvicted.Inc()
		}
	}
}

// EvictExpired proactively applies the TTL (servers call this on a timer;
// it also runs inside every lookup) and returns the number of resident
// sessions remaining.
func (m *Manager) EvictExpired() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked(m.opts.Clock())
	return len(m.sessions)
}

// Stats is a snapshot of the manager's counters plus the effectiveness of
// the shared evaluation cache backing the sessions' generators.
type Stats struct {
	// Build identity and process uptime (PR 9): which binary is serving, and
	// for how long — the same facts qfe_build_info / qfe_process_uptime_seconds
	// expose to scrapers.
	Build         obs.Build `json:"build"`
	UptimeSeconds float64   `json:"uptimeSeconds"`

	Resident int `json:"resident"` // sessions currently held
	Live     int `json:"live"`     // resident and unfinished

	SessionsStarted   uint64 `json:"sessionsStarted"`
	SessionsFinished  uint64 `json:"sessionsFinished"`
	SessionsEvicted   uint64 `json:"sessionsEvicted"`
	SessionsAbandoned uint64 `json:"sessionsAbandoned"`
	RoundsServed      uint64 `json:"roundsServed"`

	// Recovery counters: sessions restored from the snapshot (Load),
	// sessions rebuilt or advanced by WAL replay, WAL records applied, and
	// the wall time of the last Recover call.
	SessionsRestored   uint64 `json:"sessionsRestored"`
	SessionsReplayed   uint64 `json:"sessionsReplayed"`
	WALRecordsReplayed uint64 `json:"walRecordsReplayed"`
	RecoveryNs         int64  `json:"recoveryNs"`

	// Fault-plane counters (DESIGN.md §14): journal appends that failed,
	// whether the manager is currently read-only, how often it entered and
	// left degraded mode, and the last episode's duration.
	WALAppendErrors   uint64 `json:"walAppendErrors"`
	Degraded          bool   `json:"degraded"`
	DegradedEntered   uint64 `json:"degradedEntered"`
	DegradedRecovered uint64 `json:"degradedRecovered"`
	LastDegradedNs    int64  `json:"lastDegradedNs"`

	Cache evalcache.Stats `json:"cache"`
}

// cache returns the evaluation cache the manager's sessions use.
func (m *Manager) cache() *evalcache.Cache {
	if m.opts.Config.Gen.Cache != nil {
		return m.opts.Config.Gen.Cache
	}
	return evalcache.Default()
}

// HealthStatus is the /healthz payload: whether this node can accept new
// work and durably acknowledge it. The cluster router's failure detector
// probes it; OK is false exactly when acknowledgements would be unsafe
// (the write-ahead log can no longer be written or flushed).
type HealthStatus struct {
	OK bool `json:"ok"`
	// WALWritable reports the journal accepting appends (a probe flush
	// succeeded); true when no journal is configured.
	WALWritable bool   `json:"walWritable"`
	WALError    string `json:"walError,omitempty"`
	// Degraded mirrors the manager's read-only mode: mutations are being
	// refused with 503 until the journal is writable again.
	Degraded bool `json:"degraded,omitempty"`
	// Session-count headroom: how many more live sessions fit under the cap.
	Resident    int `json:"resident"`
	Live        int `json:"live"`
	MaxSessions int `json:"maxSessions"`
	Headroom    int `json:"headroom"`
}

// Health reports the node's ability to take on and durably acknowledge
// sessions.
func (m *Manager) Health() HealthStatus {
	m.mu.Lock()
	resident := len(m.sessions)
	live := m.liveLocked()
	m.mu.Unlock()
	hs := HealthStatus{
		OK:          true,
		WALWritable: true,
		Resident:    resident,
		Live:        live,
		MaxSessions: m.opts.MaxSessions,
	}
	if hs.Headroom = m.opts.MaxSessions - live; hs.Headroom < 0 {
		hs.Headroom = 0
	}
	if m.opts.Journal != nil {
		if err := m.opts.Journal.Ping(); err != nil {
			hs.OK = false
			hs.WALWritable = false
			hs.WALError = err.Error()
			// The health probe and degraded mode agree by construction: a
			// node whose journal fails its probe goes read-only, and a
			// probe that succeeds again restores it (the router unfences
			// on the same signal).
			m.enterDegraded()
		} else {
			m.exitDegraded()
		}
	}
	hs.Degraded = m.degraded.Load()
	return hs
}

// Resident returns the number of sessions currently held — a cheap
// accessor for scrape-time gauges (no WAL probe, unlike Health).
func (m *Manager) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Live returns the number of resident, unfinished sessions.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveLocked()
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	resident := len(m.sessions)
	live := m.liveLocked()
	m.mu.Unlock()
	return Stats{
		Build:              obs.BuildInfo(),
		UptimeSeconds:      obs.Uptime().Seconds(),
		Resident:           resident,
		Live:               live,
		SessionsStarted:    m.started.Load(),
		SessionsFinished:   m.finished.Load(),
		SessionsEvicted:    m.evicted.Load(),
		SessionsAbandoned:  m.abandoned.Load(),
		RoundsServed:       m.roundsServed.Load(),
		SessionsRestored:   m.restored.Load(),
		SessionsReplayed:   m.replayed.Load(),
		WALRecordsReplayed: m.recordsReplayed.Load(),
		RecoveryNs:         m.recoveryNs.Load(),
		WALAppendErrors:    m.walAppendErrors.Load(),
		Degraded:           m.degraded.Load(),
		DegradedEntered:    m.degradedEntered.Load(),
		DegradedRecovered:  m.degradedRecovered.Load(),
		LastDegradedNs:     m.lastDegradedNs.Load(),
		Cache:              m.cache().Stats(),
	}
}

// savedSession is one session in the persistence format.
type savedSession struct {
	ID       string         `json:"id"`
	Created  int64          `json:"createdUnixNs"`
	LastUsed int64          `json:"lastUsedUnixNs"`
	Snapshot *core.Snapshot `json:"snapshot"`
}

// savedState is the persistence envelope.
type savedState struct {
	Version  int            `json:"version"`
	Sessions []savedSession `json:"sessions"`
}

// collectState captures every resident, healthy session as a snapshot,
// reporting how many healthy sessions failed to snapshot (failed > 0 makes
// WAL truncation after a checkpoint unsafe — see Checkpoint).
func (m *Manager) collectState() (savedState, int) {
	type handleMeta struct {
		h        *managed
		lastUsed time.Time
	}
	m.mu.Lock()
	handles := make([]handleMeta, 0, len(m.sessions))
	for _, h := range m.sessions {
		handles = append(handles, handleMeta{h: h, lastUsed: h.lastUsed})
	}
	m.mu.Unlock()

	state := savedState{Version: 1}
	failed := 0
	for _, hm := range handles {
		h := hm.h
		h.mu.Lock()
		if h.dead != nil {
			h.mu.Unlock()
			continue
		}
		snap, err := h.sess.Snapshot()
		h.mu.Unlock()
		if err != nil {
			failed++
			continue
		}
		state.Sessions = append(state.Sessions, savedSession{
			ID:       h.id,
			Created:  h.created.UnixNano(),
			LastUsed: hm.lastUsed.UnixNano(),
			Snapshot: snap,
		})
	}
	return state, failed
}

// Save serializes every resident, healthy session to w as JSON, so a
// restarted process can Load them and resume mid-round. Sessions that fail
// to snapshot are skipped (and counted in the returned error-free total).
// Callers persisting to a file should prefer Checkpoint, which writes
// atomically — a crash mid-Save through a truncating writer destroys the
// previous good state.
func (m *Manager) Save(w io.Writer) (int, error) {
	state, _ := m.collectState()
	enc := json.NewEncoder(w)
	if err := enc.Encode(state); err != nil {
		return 0, fmt.Errorf("service: save: %w", err)
	}
	return len(state.Sessions), nil
}

// snapshotProgress extracts a snapshot's logical progress without the cost
// of restoring it: the last generated round number and whether the session
// has reached a terminal state.
func snapshotProgress(snap *core.Snapshot) (seq int, done bool) {
	if snap == nil {
		return 0, false
	}
	return snap.Seq, snap.State == "done" || snap.State == "failed" || snap.Outcome != nil
}

// progress reads a resident handle's logical progress under its lock.
// Tombstones (no engine session) report seq -1 so any real state beats them.
func (h *managed) progress() (seq int, done bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sess == nil {
		return -1, true
	}
	return h.sess.Seq(), h.done.Load()
}

// moreAdvanced orders two copies of one session by logical progress: a
// higher round seq wins; at equal seq a terminal copy beats a live one (the
// terminal copy has consumed that round's feedback). This is the merge rule
// that makes cluster estate adoption monotone — restoring an old copy of a
// session the node already holds in a fresher state is a no-op, so replayed
// or re-broadcast handoffs can never regress acknowledged state.
func moreAdvanced(incSeq int, incDone bool, curSeq int, curDone bool) bool {
	if incSeq != curSeq {
		return incSeq > curSeq
	}
	return incDone && !curDone
}

// Load restores sessions previously written by Save into the manager,
// returning how many were restored (surfaced as sessionsRestored in Stats).
// Sessions whose snapshots no longer decode are skipped and reported in
// errs. An existing session with the same ID is replaced only when the
// loaded copy is strictly more advanced (see moreAdvanced): Load merges
// states rather than overwriting, so adopting a failed-over node's estate
// cannot roll back sessions this node already serves. The live-session cap
// applies to restored sessions exactly as to created ones: when the state
// file holds more live sessions than MaxSessions allows, the idlest (oldest
// lastUsed) are evicted first and counted as evictions.
func (m *Manager) Load(r io.Reader) (int, []error) {
	var state savedState
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return 0, []error{fmt.Errorf("service: load: %w", err)}
	}
	if state.Version != 1 {
		return 0, []error{fmt.Errorf("service: load: unknown state version %d", state.Version)}
	}
	var errs []error
	n := 0
	for _, ss := range state.Sessions {
		incSeq, incDone := snapshotProgress(ss.Snapshot)
		m.mu.Lock()
		cur := m.sessions[ss.ID]
		m.mu.Unlock()
		if cur != nil {
			curSeq, curDone := cur.progress()
			if !moreAdvanced(incSeq, incDone, curSeq, curDone) {
				continue
			}
		}
		sess, err := core.Restore(ss.Snapshot, nil)
		if err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", ss.ID, err))
			continue
		}
		h := &managed{
			mu:       newSessLock(),
			id:       ss.ID,
			sess:     sess,
			created:  time.Unix(0, ss.Created),
			lastUsed: time.Unix(0, ss.LastUsed),
			round:    sess.Pending(),
		}
		if out, done := sess.Outcome(); done {
			h.outcome = out
			h.done.Store(true)
		} else if serr := sess.Err(); serr != nil {
			h.dead = fmt.Errorf("%w: session %s: %v", ErrDead, ss.ID, serr)
			h.done.Store(true)
		}
		m.mu.Lock()
		if m.sessions[ss.ID] != cur {
			// The handle changed while we were decoding (a concurrent adopt
			// installed a fresher copy): keep it — re-running Load is
			// idempotent, regressing is not.
			m.mu.Unlock()
			continue
		}
		m.sessions[ss.ID] = h
		m.mu.Unlock()
		m.restored.Add(1)
		mRestored.Inc()
		n++
	}
	m.mu.Lock()
	dropped := m.enforceCapLocked()
	m.mu.Unlock()
	if dropped > 0 {
		errs = append(errs, fmt.Errorf(
			"service: load: %d live session(s) beyond the %d-session cap evicted idlest-first",
			dropped, m.opts.MaxSessions))
	}
	return n, errs
}

// enforceCapLocked evicts idlest-first until the live-session count fits
// MaxSessions, returning how many were dropped; caller holds m.mu.
func (m *Manager) enforceCapLocked() int {
	dropped := 0
	for m.liveLocked() > m.opts.MaxSessions {
		victim := ""
		var oldest time.Time
		for id, h := range m.sessions {
			if h.done.Load() {
				continue
			}
			if victim == "" || h.lastUsed.Before(oldest) {
				victim, oldest = id, h.lastUsed
			}
		}
		if victim == "" {
			break
		}
		delete(m.sessions, victim)
		m.evicted.Add(1)
		mEvicted.Inc()
		dropped++
	}
	return dropped
}
