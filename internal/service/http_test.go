package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	m := New(testOptions())
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{}))
	t.Cleanup(srv.Close)
	return srv, m
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

// TestHTTPDemoSessionEndToEnd drives the demo dataset through the full API:
// create, inspect, feed back choices until the outcome arrives.
func TestHTTPDemoSessionEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)

	var st SessionJSON
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "demo"}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if st.ID == "" || st.Round == nil || st.Candidates == 0 {
		t.Fatalf("bad create response: %+v", st)
	}
	if st.Round.EditsText == "" || len(st.Round.Results) < 2 {
		t.Fatalf("round missing presentation data: %+v", st.Round)
	}

	// GET returns the same round.
	var got SessionJSON
	code, raw = doJSON(t, http.MethodGet, srv.URL+"/sessions/"+st.ID, nil, &got)
	if code != http.StatusOK || got.Round == nil || got.Round.Seq != st.Round.Seq {
		t.Fatalf("get: %d %s", code, raw)
	}

	// Always answer 0 until done (bounded: every round shrinks the set).
	for rounds := 0; !st.Done; rounds++ {
		if rounds > 64 {
			t.Fatal("session did not converge")
		}
		code, raw = doJSON(t, http.MethodPost,
			srv.URL+"/sessions/"+st.ID+"/feedback", FeedbackRequest{Choice: 0}, &st)
		if code != http.StatusOK {
			t.Fatalf("feedback: %d %s", code, raw)
		}
	}
	if st.Outcome == nil || (!st.Outcome.Found && len(st.Outcome.Remaining) != 0) {
		t.Fatalf("bad outcome: %+v", st.Outcome)
	}

	// Stats reflect the activity.
	var stats Stats
	code, _ = doJSON(t, http.MethodGet, srv.URL+"/stats", nil, &stats)
	if code != http.StatusOK || stats.SessionsStarted != 1 || stats.RoundsServed == 0 {
		t.Fatalf("stats: %d %+v", code, stats)
	}
}

// TestHTTPCSVTables creates a session from CSV text, exactly as the curl
// quickstart in the README does.
func TestHTTPCSVTables(t *testing.T) {
	srv, _ := newTestServer(t)
	req := CreateRequest{
		TablesCSV: []NamedCSV{{
			Name: "Employee",
			CSV: "Eid:int,name:string,gender:string,dept:string,salary:int\n" +
				"1,Alice,F,Sales,3700\n2,Bob,M,IT,4200\n3,Celina,F,Service,3000\n4,Darren,M,IT,5000\n",
		}},
		ResultCSV: "name:string\nBob\nDarren\n",
	}
	var st SessionJSON
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions", req, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if st.Round == nil {
		t.Fatalf("no round: %+v", st)
	}
}

// TestHTTPErrors exercises the error mapping: bad dataset, missing session,
// invalid choice, finished session, capacity.
func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "nope"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown dataset: %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/sessions/missing", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing session: %d", code)
	}
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/sessions/missing/feedback",
		FeedbackRequest{Choice: 0}, nil); code != http.StatusNotFound {
		t.Errorf("feedback on missing session: %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/sessions", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /sessions: %d", code)
	}

	var st SessionJSON
	if code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "demo"}, &st); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+st.ID+"/feedback",
		FeedbackRequest{Choice: 99}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid choice: %d", code)
	}
	// Session still alive after the invalid choice.
	var got SessionJSON
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/sessions/"+st.ID, nil, &got); code != http.StatusOK || got.Done {
		t.Errorf("session should survive invalid choice: %d %+v", code, got)
	}
	// Abandon, then 404.
	if code, _ := doJSON(t, http.MethodDelete, srv.URL+"/sessions/"+st.ID, nil, nil); code != http.StatusOK {
		t.Errorf("abandon: %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/sessions/"+st.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("get after abandon: %d", code)
	}
}

// TestHTTPCapacity maps ErrCapacity to 429.
func TestHTTPCapacity(t *testing.T) {
	opts := testOptions()
	opts.MaxSessions = 1
	m := New(opts)
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{}))
	defer srv.Close()

	if code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "demo"}, nil); code != http.StatusCreated {
		t.Fatalf("first create: %d %s", code, raw)
	}
	code, _ := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "demo"}, nil)
	if code != http.StatusTooManyRequests {
		t.Errorf("second create should 429, got %d", code)
	}
}

// TestHTTPNoneOfThese: answering -1 on every round must terminate with a
// not-found outcome.
func TestHTTPNoneOfThese(t *testing.T) {
	srv, _ := newTestServer(t)
	var st SessionJSON
	if code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "demo"}, &st); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	for rounds := 0; !st.Done; rounds++ {
		if rounds > 64 {
			t.Fatal("did not terminate")
		}
		code, raw := doJSON(t, http.MethodPost,
			srv.URL+"/sessions/"+st.ID+"/feedback", FeedbackRequest{Choice: -1}, &st)
		if code != http.StatusOK {
			t.Fatalf("feedback: %d %s", code, raw)
		}
	}
	if st.Outcome == nil || st.Outcome.Found {
		t.Fatalf("rejecting everything must end not-found: %+v", st.Outcome)
	}
}
