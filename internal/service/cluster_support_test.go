package service

// Tests for the service-tier surface the cluster router depends on:
// idempotent create-by-id, merge-by-progress Load (adoption never regresses
// acknowledged state), the /healthz probe target, the /admin/adopt handoff
// endpoint, and request-body hardening.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"qfe/internal/wal"
)

// TestCreateWithIDIdempotent: creating an id that already exists returns
// that session's current status instead of erroring or double-creating —
// what makes routed create retries safe.
func TestCreateWithIDIdempotent(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	qc := paperCandidates()

	st1, err := m.CreateWithID(context.Background(), "dup", d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID != "dup" || st1.Round == nil {
		t.Fatalf("bad first create: %+v", st1)
	}
	st2, err := m.CreateWithID(context.Background(), "dup", d, r, qc)
	if err != nil {
		t.Fatalf("replayed create errored: %v", err)
	}
	if st2.ID != st1.ID || st2.Round == nil || st2.Round.Seq != st1.Round.Seq {
		t.Fatalf("replayed create diverged: %+v vs %+v", st2, st1)
	}
	if got := m.Stats().SessionsStarted; got != 1 {
		t.Fatalf("replay counted as a new session: started = %d", got)
	}

	// The replay stays idempotent after progress: it reads the current
	// state, it does not reset the session.
	adv, err := m.FeedbackAt(context.Background(), "dup", st1.Round.Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	st3, err := m.CreateWithID(context.Background(), "dup", d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Done() != adv.Done() || (st3.Round != nil) != (adv.Round != nil) ||
		(st3.Round != nil && st3.Round.Seq != adv.Round.Seq) {
		t.Fatalf("replay after feedback regressed: %+v vs %+v", st3, adv)
	}

	if _, err := m.CreateWithID(context.Background(), "", d, r, qc); err == nil {
		t.Fatal("empty id accepted")
	}
}

// TestLoadMergesByProgress: Load replaces a resident session only when the
// incoming copy is strictly more advanced. Estate adoption broadcasts and
// re-broadcasts snapshots freely; a stale copy arriving after the live one
// must never roll acknowledged rounds back.
func TestLoadMergesByProgress(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	st, err := m.CreateWithID(context.Background(), "s1", d, r, paperCandidates())
	if err != nil {
		t.Fatal(err)
	}
	var early bytes.Buffer
	if _, err := m.Save(&early); err != nil {
		t.Fatal(err)
	}
	adv, err := m.FeedbackAt(context.Background(), "s1", st.Round.Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	var late bytes.Buffer
	if _, err := m.Save(&late); err != nil {
		t.Fatal(err)
	}

	// Stale copy into the manager holding the advanced session: no-op.
	if _, errs := m.Load(bytes.NewReader(early.Bytes())); len(errs) > 0 {
		t.Fatalf("loading stale copy errored: %v", errs)
	}
	got, err := m.Get("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Done() != adv.Done() || (got.Round != nil && got.Round.Seq != adv.Round.Seq) {
		t.Fatalf("stale Load regressed the session: %+v vs %+v", got, adv)
	}

	// Fresh manager: stale then advanced converges forward.
	m2 := New(testOptions())
	if _, errs := m2.Load(bytes.NewReader(early.Bytes())); len(errs) > 0 {
		t.Fatalf("load early: %v", errs)
	}
	if st2, _ := m2.Get("s1"); st2.Round == nil || st2.Round.Seq != st.Round.Seq {
		t.Fatalf("early state wrong: %+v", st2)
	}
	if _, errs := m2.Load(bytes.NewReader(late.Bytes())); len(errs) > 0 {
		t.Fatalf("load late: %v", errs)
	}
	got2, err := m2.Get("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Done() != adv.Done() || (got2.Round != nil && got2.Round.Seq != adv.Round.Seq) {
		t.Fatalf("advanced Load did not win: %+v vs %+v", got2, adv)
	}
}

// TestHealthzReportsWALWritability: /healthz answers 200 while the node
// can durably acknowledge and 503 once its journal is gone — the exact
// signal the router's failure detector consumes.
func TestHealthzReportsWALWritability(t *testing.T) {
	srv, _ := newTestServer(t)
	var hs HealthStatus
	code, raw := doJSON(t, http.MethodGet, srv.URL+"/healthz", nil, &hs)
	if code != http.StatusOK || !hs.OK || !hs.WALWritable {
		t.Fatalf("healthz without journal: %d %s", code, raw)
	}
	if hs.Headroom != hs.MaxSessions {
		t.Fatalf("idle node reports headroom %d of %d", hs.Headroom, hs.MaxSessions)
	}

	journal, err := wal.Open(wal.Options{Dir: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Journal = journal
	m := New(opts)
	jsrv := httptest.NewServer(NewHandler(m, HandlerOptions{}))
	t.Cleanup(jsrv.Close)
	if code, raw := doJSON(t, http.MethodGet, jsrv.URL+"/healthz", nil, &hs); code != http.StatusOK || !hs.WALWritable {
		t.Fatalf("healthz with live journal: %d %s", code, raw)
	}
	// A node whose journal is closed must stop advertising itself: it could
	// still compute, but it can no longer durably acknowledge.
	journal.Close()
	code, raw = doJSON(t, http.MethodGet, jsrv.URL+"/healthz", nil, &hs)
	if code != http.StatusServiceUnavailable || hs.OK || hs.WALWritable {
		t.Fatalf("healthz with closed journal: %d %s", code, raw)
	}
}

// TestAdoptEndpoint: a worker ingests a dead node's WAL estate and serves
// its sessions at their acknowledged progress; without EnableAdmin the
// endpoint does not exist.
func TestAdoptEndpoint(t *testing.T) {
	// The "dead" node: journaled sessions in its own WAL directory.
	deadDir := t.TempDir()
	deadWAL := filepath.Join(deadDir, "wal")
	journal, err := wal.Open(wal.Options{Dir: deadWAL})
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Journal = journal
	dead := New(opts)
	d, r := employeeDB()
	st, err := dead.CreateWithID(context.Background(), "victim-session", d, r, paperCandidates())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := dead.FeedbackAt(context.Background(), "victim-session", st.Round.Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	// The survivor: admin enabled, own state path.
	survivorState := filepath.Join(t.TempDir(), "state.json")
	survivor := New(testOptions())
	srv := httptest.NewServer(NewHandler(survivor, HandlerOptions{
		EnableAdmin: true,
		StatePath:   survivorState,
	}))
	t.Cleanup(srv.Close)

	var ar AdoptResponse
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/admin/adopt",
		AdoptRequest{WALDir: deadWAL}, &ar)
	if code != http.StatusOK {
		t.Fatalf("adopt: %d %s", code, raw)
	}
	if ar.ReplaySessions != 1 || len(ar.Errors) > 0 {
		t.Fatalf("adopt response: %+v", ar)
	}
	var got SessionJSON
	code, raw = doJSON(t, http.MethodGet, srv.URL+"/sessions/victim-session", nil, &got)
	if code != http.StatusOK {
		t.Fatalf("adopted session: %d %s", code, raw)
	}
	if got.Done != adv.Done() || (got.Round != nil && got.Round.Seq != adv.Round.Seq) {
		t.Fatalf("adopted session at wrong progress: %+v vs %+v", got, adv)
	}

	// Re-adoption is idempotent (the router retries handoffs freely).
	if code, raw := doJSON(t, http.MethodPost, srv.URL+"/admin/adopt",
		AdoptRequest{WALDir: deadWAL}, &ar); code != http.StatusOK {
		t.Fatalf("re-adopt: %d %s", code, raw)
	}
	var again SessionJSON
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/sessions/victim-session", nil, &again); code != http.StatusOK ||
		again.Done != got.Done || (again.Round != nil && again.Round.Seq != got.Round.Seq) {
		t.Fatalf("re-adoption changed the session: %+v vs %+v", again, got)
	}

	// Without EnableAdmin the endpoint is not even routed.
	plain, _ := newTestServer(t)
	if code, _ := doJSON(t, http.MethodPost, plain.URL+"/admin/adopt",
		AdoptRequest{WALDir: deadWAL}, nil); code != http.StatusNotFound {
		t.Fatalf("adopt without EnableAdmin: %d, want 404", code)
	}
}

// TestHTTPRequestHardening: oversized bodies answer 413 and invalid
// router-supplied session ids answer 400.
func TestHTTPRequestHardening(t *testing.T) {
	m := New(testOptions())
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{MaxBodyBytes: 1024}))
	t.Cleanup(srv.Close)

	big := CreateRequest{Dataset: "demo", Target: strings.Repeat("x", 4096)}
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/sessions", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: %d, want 413", code)
	}
	// Under the cap the handler still works.
	if code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions",
		CreateRequest{Dataset: "demo"}, nil); code != http.StatusCreated {
		t.Fatalf("small create: %d %s", code, raw)
	}

	for _, bad := range []string{"has space", "slash/y", strings.Repeat("a", 129), "semi;colon"} {
		code, raw := doJSON(t, http.MethodPost, srv.URL+"/sessions",
			CreateRequest{Dataset: "demo", SessionID: bad}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("session id %q: %d %s, want 400", bad, code, raw)
		}
	}
}
