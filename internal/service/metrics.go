package service

import "qfe/internal/obs"

// Service-tier handles (DESIGN.md §13): cumulative counters across every
// Manager in the process (the server runs exactly one; tests may run many,
// which only makes the process totals larger). The resident/live session
// gauges are registered by cmd/qfe-server against its single Manager —
// registering per-Manager funcs here would alias test instances.
var (
	mStarted = obs.NewCounter("qfe_sessions_started_total",
		"Sessions created and started.")
	mFinished = obs.NewCounter("qfe_sessions_finished_total",
		"Sessions that reached an outcome.")
	mEvicted = obs.NewCounter("qfe_sessions_evicted_total",
		"Sessions evicted (TTL expiry or live-session cap).")
	mAbandoned = obs.NewCounter("qfe_sessions_abandoned_total",
		"Live sessions deleted by the client.")
	mDeadSessions = obs.NewCounter("qfe_sessions_dead_total",
		"Sessions killed by a fatal engine error.")
	mRoundsServed = obs.NewCounter("qfe_service_rounds_served_total",
		"Feedback rounds produced and handed to clients.")
	mRestored = obs.NewCounter("qfe_sessions_restored_total",
		"Sessions restored from snapshots (Load / estate adoption).")
	mReplayed = obs.NewCounter("qfe_sessions_replayed_total",
		"Sessions rebuilt or advanced by WAL replay during recovery.")
	mReplayApplied = obs.NewCounter("qfe_recovery_records_applied_total",
		"WAL records that changed state during recovery replay.")
	mRecovery = obs.NewLatency("qfe_recovery_seconds",
		"Wall time of Recover (snapshot load + WAL replay).")
	mCheckpoint = obs.NewLatency("qfe_checkpoint_seconds",
		"Wall time of Checkpoint (rotate + snapshot + truncate).")
	mCheckpointSessions = obs.NewSize("qfe_checkpoint_sessions",
		"Sessions persisted per checkpoint.")
	mWALAppendErrors = obs.NewCounter("qfe_wal_append_errors_total",
		"Journal appends that failed (each one trips degraded mode).")
	mDegradedEntered = obs.NewCounter("qfe_service_degraded_entered_total",
		"Transitions into degraded (read-only) mode.")
	mDegradedRecovered = obs.NewCounter("qfe_service_degraded_recovered_total",
		"Recoveries out of degraded mode (journal writable again).")
)
