package service

import (
	"fmt"
	"sync"
	"testing"

	"qfe/internal/core"
	"qfe/internal/dbgen"
	"qfe/internal/evalcache"
	"qfe/internal/feedback"
	"qfe/internal/qbo"
)

// TestConcurrentSessionsMatchSerialRuns is the service-layer stress test:
// many goroutines drive independent sessions through one Manager — all
// sharing the process-wide default evaluation cache — and every concurrent
// outcome must equal the outcome of the same (D, R, QC, oracle) instance
// run serially through core.Session.Run. Run with -race this doubles as the
// data-race check for the whole manager/step/cache stack.
func TestConcurrentSessionsMatchSerialRuns(t *testing.T) {
	d, r := employeeDB()
	qcfg := qbo.DefaultConfig()
	qcfg.MaxCandidates = 12
	qc, err := qbo.Generate(d, r, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qc) < 4 {
		t.Fatalf("too few candidates: %d", len(qc))
	}

	// The manager's sessions use the shared default cache (DefaultConfig
	// wires it); keep the budget deterministic so serial and service runs
	// enumerate identically.
	cfg := core.DefaultConfig()
	cfg.Gen.Budget = dbgen.Budget{MaxPairs: 100000}
	if cfg.Gen.Cache != evalcache.Default() {
		t.Fatal("test assumes the default config shares the default cache")
	}

	workers, sessionsPerWorker := 16, 3
	if testing.Short() {
		workers, sessionsPerWorker = 4, 1
	}

	// Serial references, one per distinct oracle; workers share them.
	type ref struct {
		oracle feedback.Oracle
		sig    string
	}
	distinct := 5 // target oracles for qc[0..distinct-1], plus worst-case
	if distinct > len(qc) {
		distinct = len(qc)
	}
	serial := func(oracle feedback.Oracle) string {
		s, err := core.NewSession(d, r, qc, oracle, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeKey(out)
	}
	pool := make([]ref, 0, distinct+1)
	for i := 0; i < distinct; i++ {
		oracle := feedback.Target{Query: qc[i]}
		pool = append(pool, ref{oracle: oracle, sig: serial(oracle)})
	}
	pool = append(pool, ref{oracle: feedback.WorstCase{}, sig: serial(feedback.WorstCase{})})
	refs := make([]ref, workers)
	for i := range refs {
		refs[i] = pool[i%len(pool)]
	}

	m := New(Options{Config: cfg, MaxSessions: workers*sessionsPerWorker + 1})
	var wg sync.WaitGroup
	errCh := make(chan error, workers*sessionsPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < sessionsPerWorker; k++ {
				st, err := m.Create(d, r, qc)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: create: %w", w, err)
					return
				}
				for !st.Done() {
					choice, ok, err := refs[w].oracle.Choose(st.Round.View)
					if err != nil {
						errCh <- fmt.Errorf("worker %d: choose: %w", w, err)
						return
					}
					if !ok {
						choice = core.NoneOfThese
					}
					st, err = m.Feedback(st.ID, choice)
					if err != nil {
						errCh <- fmt.Errorf("worker %d: feedback: %w", w, err)
						return
					}
				}
				if got := outcomeKey(st.Outcome); got != refs[w].sig {
					errCh <- fmt.Errorf("worker %d session %d: outcome differs from serial run\nserial:  %s\nservice: %s",
						w, k, refs[w].sig, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	stats := m.Stats()
	if want := uint64(workers * sessionsPerWorker); stats.SessionsStarted != want && !t.Failed() {
		t.Errorf("sessions started = %d, want %d", stats.SessionsStarted, want)
	}
	if stats.Cache.Hits == 0 {
		t.Error("shared cache saw no hits across concurrent sessions")
	}
}

// outcomeKey canonically encodes the deterministic content of an outcome:
// identification result, surviving candidate keys, and the per-round
// trajectory (sizes, costs, choices).
func outcomeKey(out *core.Outcome) string {
	s := fmt.Sprintf("found=%v ambiguous=%v cost=%d", out.Found, out.Ambiguous, out.TotalModCost)
	if out.Query != nil {
		s += " query=" + out.Query.Key()
	}
	for _, q := range out.Remaining {
		s += " rem=" + q.Key()
	}
	for _, it := range out.Iterations {
		s += fmt.Sprintf(" [%d:%d/%d sp=%d db=%d rc=%d ch=%d/%d]",
			it.Iteration, it.NumQueries, it.NumSubsets, it.SkylinePairs,
			it.DBCost, it.ResultCost, it.ChosenSubset, it.ChosenSize)
	}
	return s
}
