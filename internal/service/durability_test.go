// Crash-recovery test suite for the WAL durability path (DESIGN.md §11):
// recovery at every crash point is differential against an uninterrupted
// run, across engine worker counts; snapshot+tail recovery, torn and
// corrupt logs, checkpoint truncation, seq-idempotent feedback, and a
// Save/Checkpoint racing live feedback round out the matrix. Run with
// -race: the replay path is parallel across sessions.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qfe/internal/core"
	"qfe/internal/feedback"
	"qfe/internal/wal"
)

// walManager builds a manager journaling into dir, with the deterministic
// pair-budget config recovery replay requires.
func walManager(t *testing.T, dir string, parallelism int) (*Manager, *wal.Log) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	opts := testOptions()
	opts.Config.Parallelism = parallelism
	opts.Journal = l
	return New(opts), l
}

// collectRecords reads the full WAL back.
func collectRecords(t *testing.T, dir string) []wal.Record {
	t.Helper()
	var recs []wal.Record
	if _, err := wal.Replay(dir, func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// writeWALPrefix writes the given records into a fresh WAL directory,
// simulating a log that a crash cut after the last of them.
func writeWALPrefix(t *testing.T, recs []wal.Record) string {
	t.Helper()
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 0 {
		if err := l.Append(recs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// outcomeFingerprint reduces an outcome to its comparable identity.
func outcomeFingerprint(out *core.Outcome) string {
	q := "<none>"
	if out.Query != nil {
		q = out.Query.Key()
	}
	rem := ""
	for _, r := range out.Remaining {
		rem += r.Key() + ";"
	}
	return fmt.Sprintf("found=%v ambiguous=%v query=%s remaining=%s rounds=%d modcost=%d",
		out.Found, out.Ambiguous, q, rem, len(out.Iterations), out.TotalModCost)
}

// TestRecoverAtEveryPoint is the core differential guarantee: crash the
// journaled session after every prefix of its feedback history, recover a
// fresh manager from the WAL alone (no snapshot), resume with the same
// oracle, and demand the identical outcome — at every engine worker count.
func TestRecoverAtEveryPoint(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	oracle := feedback.Target{Query: qc[2]}

	// Reference: uninterrupted, serial.
	ref := New(testOptions())
	rst, err := ref.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeFingerprint(driveToOutcome(t, ref, rst.ID, oracle))

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			walDir := t.TempDir()
			m1, _ := walManager(t, walDir, workers)
			st, err := m1.Create(d, r, qc)
			if err != nil {
				t.Fatal(err)
			}
			id := st.ID
			if got := outcomeFingerprint(driveToOutcome(t, m1, id, oracle)); got != want {
				t.Fatalf("live outcome differs from reference:\n  got  %s\n  want %s", got, want)
			}

			recs := collectRecords(t, walDir)
			var feedbacks int
			for _, rec := range recs {
				if rec.Type == wal.TypeFeedback {
					feedbacks++
				}
			}
			if feedbacks == 0 {
				t.Fatal("session produced no feedback records")
			}

			// Crash after created + k feedbacks, for every k.
			for k := 0; k <= feedbacks; k++ {
				var prefix []wal.Record
				seen := 0
				for _, rec := range recs {
					if rec.Type == wal.TypeFeedback {
						if seen == k {
							break
						}
						seen++
					}
					prefix = append(prefix, rec)
				}
				crashDir := writeWALPrefix(t, prefix)

				opts := testOptions()
				opts.Config.Parallelism = workers
				m2 := New(opts)
				stats, err := m2.Recover("", crashDir)
				if err != nil {
					t.Fatalf("k=%d: recover: %v", k, err)
				}
				if len(stats.Errors) > 0 {
					t.Fatalf("k=%d: recover errors: %v", k, stats.Errors)
				}
				if stats.ReplaySessions != 1 {
					t.Fatalf("k=%d: replayed %d sessions, want 1", k, stats.ReplaySessions)
				}
				st2, err := m2.Get(id)
				if err != nil {
					t.Fatalf("k=%d: recovered session gone: %v", k, err)
				}
				if k < feedbacks {
					if st2.Done() || st2.Round == nil || st2.Round.Seq != k+1 {
						t.Fatalf("k=%d: resumed at wrong round: %+v", k, st2.Round)
					}
				}
				if got := outcomeFingerprint(driveToOutcome(t, m2, id, oracle)); got != want {
					t.Fatalf("k=%d: recovered outcome differs:\n  got  %s\n  want %s", k, got, want)
				}
			}
		})
	}
}

// TestRecoverSnapshotPlusTail checkpoints mid-session (snapshot + WAL
// truncation) then crashes: recovery must combine the snapshot with the
// surviving tail and land exactly where the crash happened.
func TestRecoverSnapshotPlusTail(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	oracle := feedback.Target{Query: qc[2]}

	ref := New(testOptions())
	rst, err := ref.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeFingerprint(driveToOutcome(t, ref, rst.ID, oracle))

	walDir := t.TempDir()
	snapPath := filepath.Join(t.TempDir(), "state.json")
	m1, _ := walManager(t, walDir, 1)
	st, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// One feedback, then checkpoint (truncates the created record), then
	// one more feedback that only the WAL tail knows about.
	choice, ok, err := oracle.Choose(st.Round.View)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		choice = core.NoneOfThese
	}
	st, err = m1.Feedback(id, choice)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := m1.Checkpoint(snapPath); err != nil || n != 1 {
		t.Fatalf("checkpoint: n=%d err=%v", n, err)
	}
	if !st.Done() {
		choice, ok, err = oracle.Choose(st.Round.View)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			choice = core.NoneOfThese
		}
		if _, err := m1.Feedback(id, choice); err != nil {
			t.Fatal(err)
		}
	}

	// The checkpoint must have truncated the pre-rotate history: replaying
	// the surviving tail alone cannot rebuild the session from scratch.
	sawCreated := false
	for _, rec := range collectRecords(t, walDir) {
		if rec.Type == wal.TypeCreated {
			sawCreated = true
		}
	}
	if sawCreated {
		t.Fatal("checkpoint did not truncate the created record")
	}

	m2 := New(testOptions())
	stats, err := m2.Recover(snapPath, walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Errors) > 0 {
		t.Fatalf("recover errors: %v", stats.Errors)
	}
	if stats.SnapshotSessions != 1 {
		t.Fatalf("snapshot sessions = %d", stats.SnapshotSessions)
	}
	if got := outcomeFingerprint(driveToOutcome(t, m2, id, oracle)); got != want {
		t.Fatalf("snapshot+tail outcome differs:\n  got  %s\n  want %s", got, want)
	}
}

// TestRecoverTornTail truncates the newest WAL segment mid-record: recovery
// must keep the longest durable prefix, flag the torn tail, and the session
// must still reach the reference outcome when resumed.
func TestRecoverTornTail(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	oracle := feedback.Target{Query: qc[2]}

	ref := New(testOptions())
	rst, err := ref.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeFingerprint(driveToOutcome(t, ref, rst.ID, oracle))

	walDir := t.TempDir()
	m1, l := walManager(t, walDir, 1)
	st, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	driveToOutcome(t, m1, id, oracle)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 3 bytes of the newest segment.
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(walDir, ents[len(ents)-1].Name())
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := New(testOptions())
	stats, err := m2.Recover("", walDir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WAL.TornTail {
		t.Fatalf("torn tail not flagged: %+v", stats.WAL)
	}
	if len(stats.Errors) > 0 {
		t.Fatalf("recover errors: %v", stats.Errors)
	}
	if got := outcomeFingerprint(driveToOutcome(t, m2, id, oracle)); got != want {
		t.Fatalf("torn-tail outcome differs:\n  got  %s\n  want %s", got, want)
	}
}

// TestRecoverCorruptMidLog flips a byte in a non-final segment: everything
// from the corruption on is dropped and flagged, and the session still
// resumes from the surviving prefix.
func TestRecoverCorruptMidLog(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	oracle := feedback.Target{Query: qc[2]}

	ref := New(testOptions())
	rst, err := ref.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeFingerprint(driveToOutcome(t, ref, rst.ID, oracle))

	walDir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncOff, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Journal = l
	m1 := New(opts)
	// SegmentBytes 1 puts each append in its own segment: seg1 = A created,
	// seg2 = B created, seg3.. = A's feedback. Corrupting seg2 is a mid-log
	// hit that drops B and A's feedback but keeps A's created record.
	stA, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	driveToOutcome(t, m1, stA.ID, oracle)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 4 {
		t.Fatalf("expected one segment per append, got %d files", len(ents))
	}
	victim := filepath.Join(walDir, ents[2].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := New(testOptions())
	stats, err := m2.Recover("", walDir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WAL.Corrupt {
		t.Fatalf("corruption not flagged: %+v", stats.WAL)
	}
	// B and everything after the corruption are gone; A is back at round 1
	// and must still reach the reference outcome.
	if _, err := m2.Get(stB.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("session after corruption point should be dropped, got %v", err)
	}
	if got := outcomeFingerprint(driveToOutcome(t, m2, stA.ID, oracle)); got != want {
		t.Fatalf("post-corruption outcome differs:\n  got  %s\n  want %s", got, want)
	}
}

// TestRecoverHonoursAbandonAndCap replays a WAL whose sessions include an
// abandoned one (must stay gone) and more live sessions than the cap
// (idlest evicted).
func TestRecoverHonoursAbandon(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()

	walDir := t.TempDir()
	m1, _ := walManager(t, walDir, 1)
	keep, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	gone, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Abandon(gone.ID); err != nil {
		t.Fatal(err)
	}

	m2 := New(testOptions())
	if _, err := m2.Recover("", walDir); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Get(keep.ID); err != nil {
		t.Fatalf("live session not recovered: %v", err)
	}
	if _, err := m2.Get(gone.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("abandoned session resurrected: %v", err)
	}
}

// TestSaveRacingFeedback runs Checkpoint in a loop while sessions take
// concurrent feedback (run under -race): every checkpoint must be loadable
// and internally consistent.
func TestSaveRacingFeedback(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	walDir := t.TempDir()
	snapPath := filepath.Join(t.TempDir(), "state.json")
	m, _ := walManager(t, walDir, 1)

	const sessions = 4
	ids := make([]string, sessions)
	for i := range ids {
		st, err := m.Create(d, r, qc)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}

	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			oracle := feedback.WorstCase{}
			st, err := m.Get(id)
			if err != nil {
				t.Error(err)
				return
			}
			for !st.Done() {
				choice, ok, err := oracle.Choose(st.Round.View)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					choice = core.NoneOfThese
				}
				st, err = m.Feedback(id, choice)
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	checkpointDone := make(chan struct{})
	go func() {
		defer close(checkpointDone)
		for i := 0; i < 20; i++ {
			if _, err := m.Checkpoint(snapPath); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-checkpointDone

	// The final durable state must recover every session.
	if _, err := m.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	m2 := New(testOptions())
	stats, err := m2.Recover(snapPath, walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Errors) > 0 {
		t.Fatalf("recover errors: %v", stats.Errors)
	}
	for _, id := range ids {
		st, err := m2.Get(id)
		if err != nil {
			t.Fatalf("session %s lost: %v", id, err)
		}
		if !st.Done() {
			t.Fatalf("session %s not finished after recovery: %+v", id, st)
		}
	}
}

// TestFeedbackAtIdempotent exercises the at-most-once protocol: a retried
// seq is absorbed without double-applying, and a seq from the future is the
// lost-state detector.
func TestFeedbackAtIdempotent(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	qc := paperCandidates()
	st, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	if st.Round.Seq != 1 {
		t.Fatalf("first round seq = %d", st.Round.Seq)
	}

	st2, err := m.FeedbackAt(context.Background(), id, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Retry of the same (seq, choice): must not step the engine again.
	st3, err := m.FeedbackAt(context.Background(), id, 1, 0)
	if err != nil {
		t.Fatalf("idempotent retry errored: %v", err)
	}
	if !statusEqual(st2, st3) {
		t.Fatalf("retry changed state:\n  first %+v\n  retry %+v", st2, st3)
	}
	// A retry with a different choice for an absorbed seq is also absorbed:
	// the server's acknowledged history wins.
	if _, err := m.FeedbackAt(context.Background(), id, 1, core.NoneOfThese); err != nil {
		t.Fatalf("stale-seq retry errored: %v", err)
	}
	// Future seq: the client knows rounds the server never produced.
	if _, err := m.FeedbackAt(context.Background(), id, 99, 0); !errors.Is(err, ErrSeqAhead) {
		t.Fatalf("want ErrSeqAhead, got %v", err)
	}
}

func statusEqual(a, b Status) bool {
	if a.ID != b.ID || a.Done() != b.Done() {
		return false
	}
	if (a.Round == nil) != (b.Round == nil) {
		return false
	}
	if a.Round != nil && a.Round.Seq != b.Round.Seq {
		return false
	}
	return true
}

// TestAbandonFinishedNotCounted is the satellite-2 regression: deleting an
// already-finished session is cleanup, not abandonment.
func TestAbandonFinishedNotCounted(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	qc := paperCandidates()
	st, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	driveToOutcome(t, m, st.ID, feedback.WorstCase{})
	if err := m.Abandon(st.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.SessionsAbandoned != 0 {
		t.Errorf("finished session counted as abandoned: %d", s.SessionsAbandoned)
	}

	// A genuinely live session still counts.
	st, err = m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Abandon(st.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.SessionsAbandoned != 1 {
		t.Errorf("live abandon not counted: %d", s.SessionsAbandoned)
	}
}

// TestLoadEnforcesCapacity is the satellite-3 regression: restored sessions
// obey MaxSessions, evicting idlest-first, and surface the restored count.
func TestLoadEnforcesCapacity(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	now := time.Unix(1000, 0)
	opts := testOptions()
	opts.Clock = func() time.Time { return now }
	m1 := New(opts)

	ids := make([]string, 3)
	for i := range ids {
		st, err := m1.Create(d, r, qc)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		now = now.Add(time.Minute) // distinct lastUsed: ids[0] is idlest
	}
	var buf bytes.Buffer
	if _, err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	small := testOptions()
	small.MaxSessions = 2
	// Same frozen clock: with the real clock, the decades-old lastUsed
	// stamps would TTL-evict everything on first Get.
	small.Clock = func() time.Time { return now }
	m2 := New(small)
	n, errs := m2.Load(&buf)
	if n != 3 {
		t.Fatalf("loaded %d sessions, want 3", n)
	}
	if len(errs) == 0 {
		t.Fatal("over-cap load reported no eviction")
	}
	if _, err := m2.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idlest session should be evicted, got %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := m2.Get(id); err != nil {
			t.Fatalf("recently used session %s evicted: %v", id, err)
		}
	}
	s := m2.Stats()
	if s.SessionsRestored != 3 {
		t.Errorf("sessionsRestored = %d, want 3", s.SessionsRestored)
	}
	if s.SessionsEvicted != 1 {
		t.Errorf("sessionsEvicted = %d, want 1", s.SessionsEvicted)
	}
	if s.Live > 2 {
		t.Errorf("live %d exceeds cap 2", s.Live)
	}
}

// TestCheckpointAtomicNoLitter verifies the snapshot file is replaced
// atomically (no temp files left, always valid JSON).
func TestCheckpointAtomicNoLitter(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.json")
	m := New(testOptions())
	if _, err := m.Create(d, r, qc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Checkpoint(snapPath); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state.json" {
		t.Fatalf("directory litter: %v", ents)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m2 := New(testOptions())
	if n, errs := m2.Load(f); n != 1 || len(errs) > 0 {
		t.Fatalf("checkpoint not loadable: n=%d errs=%v", n, errs)
	}
}

// flakyJournal wraps a real log with a switchable failure, standing in for
// a disk that starts erroring and later heals (the fault package's wrapper
// does the same at scripted trigger points; this one is hand-driven so the
// test controls exactly which append fails).
type flakyJournal struct {
	inner *wal.Log
	mu    sync.Mutex
	fail  error
}

func (f *flakyJournal) setFail(err error) {
	f.mu.Lock()
	f.fail = err
	f.mu.Unlock()
}

func (f *flakyJournal) failing() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail
}

func (f *flakyJournal) Append(recs ...wal.Record) error {
	if err := f.failing(); err != nil {
		return err
	}
	return f.inner.Append(recs...)
}

func (f *flakyJournal) Ping() error {
	if err := f.failing(); err != nil {
		return err
	}
	return f.inner.Ping()
}

func (f *flakyJournal) Rotate() (uint64, error)              { return f.inner.Rotate() }
func (f *flakyJournal) TruncateBefore(boundary uint64) error { return f.inner.TruncateBefore(boundary) }

// TestFeedbackExactlyOnceThroughEIO is the degraded-mode contract end to
// end: a feedback that hits a journal I/O error is refused with ErrDegraded
// (the engine has advanced, but the client must NOT treat the round as
// acknowledged), reads keep working, and the client's seq-idempotent retry
// after the fault clears journals the stashed records and acknowledges the
// SAME round exactly once — leaving a WAL that a fresh manager recovers to
// the identical outcome.
func TestFeedbackExactlyOnceThroughEIO(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	oracle := feedback.Target{Query: qc[2]}

	// Reference outcome from an unfaulted run.
	ref := New(testOptions())
	rst, err := ref.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	want := outcomeFingerprint(driveToOutcome(t, ref, rst.ID, oracle))

	walDir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	fj := &flakyJournal{inner: l}
	opts := testOptions()
	opts.Journal = fj
	m := New(opts)

	st, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	// Answer round 1 the way the reference run did, so outcomes compare.
	choice, ok, err := oracle.Choose(st.Round.View)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		choice = core.NoneOfThese
	}

	// The disk starts failing: feedback must be refused with ErrDegraded.
	fj.setFail(fmt.Errorf("injected I/O error"))
	if _, err := m.FeedbackAt(context.Background(), id, 1, choice); !errors.Is(err, ErrDegraded) {
		t.Fatalf("feedback during EIO: want ErrDegraded, got %v", err)
	}
	stats := m.Stats()
	if stats.WALAppendErrors == 0 {
		t.Error("append error not counted in WALAppendErrors")
	}
	if !stats.Degraded || stats.DegradedEntered == 0 {
		t.Errorf("manager not degraded after append failure: %+v", stats)
	}
	// Reads still work in degraded mode.
	if _, err := m.Get(id); err != nil {
		t.Fatalf("get during degraded mode: %v", err)
	}
	// Health reflects the unusable journal, so a router fences this worker.
	if hs := m.Health(); hs.OK || !hs.Degraded {
		t.Fatalf("health during degraded mode: %+v", hs)
	}
	// While the fault persists, retries keep being refused.
	if _, err := m.FeedbackAt(context.Background(), id, 1, choice); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second feedback during EIO: want ErrDegraded, got %v", err)
	}

	// Fault clears; the client retries the SAME seq. Exactly-once: the
	// stashed records are journaled and the round acknowledged without
	// stepping the engine again.
	fj.setFail(nil)
	st2, err := m.FeedbackAt(context.Background(), id, 1, choice)
	if err != nil {
		t.Fatalf("retry after fault cleared: %v", err)
	}
	if !st2.Done() && (st2.Round == nil || st2.Round.Seq != 2) {
		t.Fatalf("retry did not advance exactly one round: %+v", st2)
	}
	stats = m.Stats()
	if stats.Degraded || stats.DegradedRecovered == 0 {
		t.Errorf("manager did not auto-recover: %+v", stats)
	}
	if hs := m.Health(); !hs.OK || hs.Degraded {
		t.Fatalf("health after recovery: %+v", hs)
	}
	// A further retry of the absorbed seq stays idempotent.
	st3, err := m.FeedbackAt(context.Background(), id, 1, choice)
	if err != nil || !statusEqual(st2, st3) {
		t.Fatalf("idempotent retry after recovery: %+v %v", st3, err)
	}

	// The WAL holds the acknowledged round exactly once.
	seq1 := 0
	for _, rec := range collectRecords(t, walDir) {
		if rec.Type == wal.TypeFeedback && rec.ID == id && rec.Seq == 1 {
			seq1++
		}
	}
	if seq1 != 1 {
		t.Fatalf("WAL holds seq-1 feedback %d times, want exactly once", seq1)
	}

	// Finish the session and prove the log the fault plane left behind
	// recovers to the reference outcome.
	if got := outcomeFingerprint(driveToOutcome(t, m, id, oracle)); got != want {
		t.Fatalf("outcome through fault differs:\n  got  %s\n  want %s", got, want)
	}
	m2 := New(testOptions())
	if _, err := m2.Recover("", walDir); err != nil {
		t.Fatal(err)
	}
	st4, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st4.Done() {
		t.Fatalf("recovered session not finished: %+v", st4)
	}
	if got := outcomeFingerprint(st4.Outcome); got != want {
		t.Fatalf("recovered outcome differs:\n  got  %s\n  want %s", got, want)
	}
}

// TestCreateRefusedWhileDegraded pins create's degraded behaviour: a failed
// create-journal append refuses the session outright (nothing half-made
// survives) and the manager recovers once the journal heals.
func TestCreateRefusedWhileDegraded(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	walDir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	fj := &flakyJournal{inner: l, fail: fmt.Errorf("injected ENOSPC: no space left on device")}
	opts := testOptions()
	opts.Journal = fj
	m := New(opts)

	if _, err := m.Create(d, r, qc); !errors.Is(err, ErrDegraded) {
		t.Fatalf("create during ENOSPC: want ErrDegraded, got %v", err)
	}
	if m.Resident() != 0 {
		t.Fatalf("refused create left %d resident session(s)", m.Resident())
	}

	fj.setFail(nil)
	st, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatalf("create after window: %v", err)
	}
	if _, err := m.FeedbackAt(context.Background(), st.ID, 1, 0); err != nil {
		t.Fatalf("feedback after recovery: %v", err)
	}
	if stats := m.Stats(); stats.Degraded {
		t.Errorf("still degraded after successful create+feedback: %+v", stats)
	}
}
