package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"

	"qfe/internal/algebra"
	"qfe/internal/codec"
	"qfe/internal/core"
	"qfe/internal/datasets"
	"qfe/internal/db"
	"qfe/internal/feedback"
	"qfe/internal/obs"
	"qfe/internal/qbo"
	"qfe/internal/relation"
)

// HandlerOptions tunes the HTTP front-end.
type HandlerOptions struct {
	// MaxCandidates bounds candidate generation per session (0 = 32). A
	// request may ask for fewer but never more.
	MaxCandidates int
	// MaxBodyBytes bounds request bodies (0 = 64 MiB); larger requests are
	// rejected with 413 instead of buffering unboundedly.
	MaxBodyBytes int64
	// EnableAdmin exposes POST /admin/adopt — the cluster failover handoff
	// endpoint. Off by default: only router-fronted workers should accept
	// instructions to ingest another node's durable state.
	EnableAdmin bool
	// StatePath, when set with EnableAdmin, is this node's own snapshot
	// file: after adopting an estate the worker checkpoints to it, so the
	// adopted sessions are covered by this node's snapshot+WAL from then on
	// (a later failover of this node hands off self-contained state).
	StatePath string
	// Logger receives one structured access-log line per request (nil =
	// slog.Default()).
	Logger *slog.Logger
}

// NewHandler wraps a Manager in the qfe-server HTTP/JSON API:
//
//	POST   /sessions                {dataset | tables+result} -> first round
//	GET    /sessions/{id}           current round or outcome
//	POST   /sessions/{id}/feedback  {"choice": i} (0-based; -1 = none)
//	DELETE /sessions/{id}           abandon
//	GET    /stats                   manager + cache counters
//	GET    /healthz                 WAL writability + session headroom
//	POST   /admin/adopt             ingest a dead node's snapshot+WAL
//	                                (only with EnableAdmin)
//
// Routing is done by hand so the server behaves identically across Go
// versions (the 1.22 ServeMux pattern syntax is gated by go.mod version).
func NewHandler(m *Manager, opts HandlerOptions) http.Handler {
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 32
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	h := &httpAPI{m: m, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/sessions", h.sessions)
	mux.HandleFunc("/sessions/", h.session)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/healthz", h.healthz)
	mux.Handle("/metrics", obs.Handler())
	if opts.EnableAdmin {
		mux.HandleFunc("/admin/adopt", h.adopt)
	}
	return obs.Middleware(mux, obs.MiddlewareOptions{
		Routes: []string{
			"/sessions", "/sessions/{id}", "/sessions/{id}/feedback",
			"/stats", "/healthz", "/metrics", "/admin/adopt",
		},
		RouteFor:     routeFor,
		SessionIDFor: sessionIDFor,
		Logger:       opts.Logger,
	})
}

// routeFor maps a request path to its route template so per-route metrics
// stay bounded-cardinality (session ids never become label values).
func routeFor(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/sessions", p == "/stats", p == "/healthz", p == "/metrics",
		p == "/admin/adopt":
		return p
	case strings.HasPrefix(p, "/sessions/"):
		rest := strings.TrimPrefix(p, "/sessions/")
		if _, sub, _ := strings.Cut(rest, "/"); sub == "feedback" {
			return "/sessions/{id}/feedback"
		}
		return "/sessions/{id}"
	}
	return ""
}

// sessionIDFor extracts the session id from /sessions/{id}[...] paths for
// structured log attribution.
func sessionIDFor(r *http.Request) string {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/sessions/"); ok {
		id, _, _ := strings.Cut(rest, "/")
		return id
	}
	return ""
}

type httpAPI struct {
	m    *Manager
	opts HandlerOptions
	// adoptMu serializes estate adoptions: concurrent Recover calls are
	// individually safe (merge-by-progress), but running them one at a time
	// keeps replay work and memory bounded under failover storms.
	adoptMu sync.Mutex
}

// healthz reports node health: 200 when the node can durably acknowledge
// work, 503 when the WAL is no longer writable. The body carries the
// session-count headroom either way, for load-aware routing.
func (h *httpAPI) healthz(w http.ResponseWriter, r *http.Request) {
	hs := h.m.Health()
	status := http.StatusOK
	if !hs.OK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, hs)
}

// AdoptRequest is the POST /admin/adopt body: a dead node's durable estate.
// Paths are resolved on this worker's filesystem — the deployment contract
// is that per-node WAL roots and snapshots live on storage the surviving
// workers can reach (shared disk, replicated volume; in the chaos harness,
// one machine).
type AdoptRequest struct {
	StatePath string `json:"statePath,omitempty"`
	WALDir    string `json:"walDir,omitempty"`
}

// AdoptResponse summarizes what an adoption rebuilt.
type AdoptResponse struct {
	SnapshotSessions int      `json:"snapshotSessions"`
	ReplaySessions   int      `json:"replaySessions"`
	RecordsApplied   int      `json:"recordsApplied"`
	DurationNs       int64    `json:"durationNs"`
	Errors           []string `json:"errors,omitempty"`
}

// adopt ingests a dead node's snapshot + WAL into this worker: Recover
// merges the estate (by logical progress, never regressing local sessions),
// then a checkpoint folds the adopted sessions into this node's own
// durable state. Re-adoption of the same estate is idempotent, so the
// router can retry handoffs freely.
func (h *httpAPI) adopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST /admin/adopt"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req AdoptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.StatePath == "" && req.WALDir == "" {
		writeErr(w, errors.New("adopt needs a statePath or walDir"))
		return
	}
	h.adoptMu.Lock()
	defer h.adoptMu.Unlock()
	rstats, err := h.m.Recover(req.StatePath, req.WALDir)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if h.opts.StatePath != "" {
		if _, err := h.m.Checkpoint(h.opts.StatePath); err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
	}
	resp := AdoptResponse{
		SnapshotSessions: rstats.SnapshotSessions,
		ReplaySessions:   rstats.ReplaySessions,
		RecordsApplied:   rstats.RecordsApplied,
		DurationNs:       rstats.DurationNs,
	}
	for _, e := range rstats.Errors {
		resp.Errors = append(resp.Errors, e.Error())
	}
	writeJSON(w, http.StatusOK, resp)
}

// CreateRequest is the POST /sessions body. Either Dataset selects a
// built-in scenario, or Tables+Result supply the example pair — as
// structured JSON relations (codec format) or as CSV text with name:type
// headers (TablesCSV/ResultCSV), matching the qfe CLI's file format.
type CreateRequest struct {
	Dataset string `json:"dataset,omitempty"` // "demo", "scientific", "baseball", "adult"
	Target  string `json:"target,omitempty"`  // dataset query name ("Q1", ...), default first

	// SessionID, when set, names the session instead of letting the server
	// pick (the cluster router generates ids and places them by hash).
	// Creating an id that already exists returns that session's current
	// status — the idempotency that makes routed create retries safe.
	SessionID string `json:"sessionID,omitempty"`

	Tables      []codec.Relation   `json:"tables,omitempty"`
	Result      *codec.Relation    `json:"result,omitempty"`
	TablesCSV   []NamedCSV         `json:"tablesCSV,omitempty"`
	ResultCSV   string             `json:"resultCSV,omitempty"`
	PrimaryKeys []codec.Key        `json:"primaryKeys,omitempty"`
	ForeignKeys []codec.ForeignKey `json:"foreignKeys,omitempty"`

	MaxCandidates int `json:"maxCandidates,omitempty"`
}

// NamedCSV is one CSV-encoded table.
type NamedCSV struct {
	Name string `json:"name"`
	CSV  string `json:"csv"`
}

// FeedbackRequest is the POST /sessions/{id}/feedback body. Choice is a
// 0-based index into the round's results; -1 means "none of these". Seq,
// when positive, names the round the choice answers (RoundJSON.Seq) and
// makes the request idempotent: retrying after a lost acknowledgement
// returns the current status instead of double-applying, and a seq beyond
// any round the server has produced is rejected with 409 (acknowledged
// state was lost — the crash-recovery detector). Seq 0 preserves the legacy
// unconditional apply.
type FeedbackRequest struct {
	Choice int `json:"choice"`
	Seq    int `json:"seq,omitempty"`
}

// RoundJSON is the wire form of a pending feedback round.
type RoundJSON struct {
	Seq        int              `json:"seq"`
	Iteration  int              `json:"iteration"`
	NumQueries int              `json:"numQueries"`
	Edits      []codec.CellEdit `json:"edits"`
	EditsText  string           `json:"editsText"`
	Results    []ResultJSON     `json:"results"`
}

// ResultJSON is one distinct candidate result in a round.
type ResultJSON struct {
	Result    codec.Relation `json:"result"`
	DeltaText string         `json:"deltaText"`
	Queries   []string       `json:"queries"` // SQL of the candidates producing it
}

// OutcomeJSON is the wire form of a finished session.
type OutcomeJSON struct {
	Found        bool          `json:"found"`
	Ambiguous    bool          `json:"ambiguous"`
	Query        *codec.Query  `json:"query,omitempty"`
	Remaining    []codec.Query `json:"remaining,omitempty"`
	Rounds       int           `json:"rounds"`
	TotalModCost int           `json:"totalModCost"`
}

// SessionJSON is the wire form of a session status.
type SessionJSON struct {
	ID         string       `json:"id"`
	Done       bool         `json:"done"`
	Candidates int          `json:"candidates,omitempty"`
	Round      *RoundJSON   `json:"round,omitempty"`
	Outcome    *OutcomeJSON `json:"outcome,omitempty"`
}

func encodeStatus(st Status, candidates int) SessionJSON {
	out := SessionJSON{ID: st.ID, Done: st.Done(), Candidates: candidates}
	if st.Round != nil {
		v := st.Round.View
		rj := &RoundJSON{
			Seq:        st.Round.Seq,
			Iteration:  st.Round.Iteration,
			NumQueries: len(v.Queries),
			Edits:      codec.EncodeEdits(v.Edits),
			EditsText:  feedback.FormatEdits(v.BaseDB, v.Edits),
		}
		for i, res := range v.Results {
			r := ResultJSON{
				Result:    codec.EncodeRelation(res),
				DeltaText: feedback.FormatResultDelta(v.BaseR, res),
			}
			for _, qi := range v.Groups[i] {
				r.Queries = append(r.Queries, v.Queries[qi].SQL())
			}
			rj.Results = append(rj.Results, r)
		}
		out.Round = rj
	}
	if st.Outcome != nil {
		oj := &OutcomeJSON{
			Found:        st.Outcome.Found,
			Ambiguous:    st.Outcome.Ambiguous,
			Rounds:       len(st.Outcome.Iterations),
			TotalModCost: st.Outcome.TotalModCost,
		}
		if st.Outcome.Query != nil {
			q := codec.EncodeQuery(st.Outcome.Query)
			oj.Query = &q
		}
		for _, q := range st.Outcome.Remaining {
			oj.Remaining = append(oj.Remaining, codec.EncodeQuery(q))
		}
		out.Outcome = oj
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrCapacity):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrFinished), errors.Is(err, ErrSeqAhead):
		status = http.StatusConflict
	case errors.Is(err, ErrDead):
		status = http.StatusInternalServerError
	case errors.Is(err, ErrDegraded):
		// Read-only mode: the mutation was not applied (or not
		// acknowledged); the client should retry shortly.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The caller's deadline expired before the operation was applied;
		// 503 marks the request safely retryable for proxies.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// validSessionID accepts router-supplied ids: non-empty, bounded, and
// path/query safe.
func validSessionID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// sessions handles POST /sessions.
func (h *httpAPI) sessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST /sessions"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.SessionID != "" && !validSessionID(req.SessionID) {
		writeErr(w, fmt.Errorf("invalid session id %q (want 1-128 chars of [A-Za-z0-9._-])", req.SessionID))
		return
	}
	d, res, err := h.examplePair(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := d.Validate(); err != nil {
		writeErr(w, fmt.Errorf("database constraints: %w", err))
		return
	}
	maxCand := h.opts.MaxCandidates
	if req.MaxCandidates > 0 && req.MaxCandidates < maxCand {
		maxCand = req.MaxCandidates
	}
	qcfg := qbo.DefaultConfig()
	qcfg.MaxCandidates = maxCand
	qc, err := qbo.Generate(d, res, qcfg)
	if err != nil {
		// The inputs were already validated; a generation failure is the
		// engine's fault, not the client's.
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if len(qc) == 0 {
		writeErr(w, errors.New("no SPJ query produces the given result on this database"))
		return
	}
	var st Status
	if req.SessionID != "" {
		st, err = h.m.CreateWithID(r.Context(), req.SessionID, d, res, qc)
	} else {
		st, err = h.m.CreateWithID(r.Context(), newID(), d, res, qc)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrCapacity), errors.Is(err, ErrDegraded),
			errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeErr(w, err)
		default:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusCreated, encodeStatus(st, len(qc)))
}

// examplePair resolves the (D, R) instance a create request describes.
func (h *httpAPI) examplePair(req CreateRequest) (*db.Database, *relation.Relation, error) {
	if req.Dataset != "" {
		return datasetPair(req.Dataset, req.Target)
	}
	d := db.New()
	for _, t := range req.Tables {
		rel, err := codec.DecodeRelation(t)
		if err != nil {
			return nil, nil, err
		}
		if err := d.AddTable(rel); err != nil {
			return nil, nil, err
		}
	}
	for _, t := range req.TablesCSV {
		rel, err := relation.ReadCSV(t.Name, strings.NewReader(t.CSV))
		if err != nil {
			return nil, nil, fmt.Errorf("table %s: %w", t.Name, err)
		}
		if err := d.AddTable(rel); err != nil {
			return nil, nil, err
		}
	}
	if len(d.Tables()) == 0 {
		return nil, nil, errors.New("request needs a dataset name or at least one table")
	}
	for _, pk := range req.PrimaryKeys {
		d.AddPrimaryKey(pk.Table, pk.Columns...)
	}
	for _, fk := range req.ForeignKeys {
		d.AddForeignKey(fk.ChildTable, fk.ChildColumns, fk.ParentTable, fk.ParentColumns)
	}
	var res *relation.Relation
	switch {
	case req.Result != nil:
		rel, err := codec.DecodeRelation(*req.Result)
		if err != nil {
			return nil, nil, err
		}
		res = rel
	case req.ResultCSV != "":
		rel, err := relation.ReadCSV("R", strings.NewReader(req.ResultCSV))
		if err != nil {
			return nil, nil, fmt.Errorf("result: %w", err)
		}
		res = rel
	default:
		return nil, nil, errors.New("request needs a result relation")
	}
	return d, res, nil
}

// datasetPair loads a built-in dataset and derives R by evaluating one of
// its reference queries (the named target, or the first).
func datasetPair(name, target string) (*db.Database, *relation.Relation, error) {
	var d *db.Database
	var queries []*algebra.Query
	switch strings.ToLower(name) {
	case "demo":
		return demoPair()
	case "scientific":
		s := datasets.NewScientific()
		d = s.DB
		queries = []*algebra.Query{s.Q1, s.Q2}
	case "baseball":
		b := datasets.NewBaseball()
		d = b.DB
		queries = []*algebra.Query{b.Q3, b.Q4, b.Q5, b.Q6}
	case "adult":
		a := datasets.NewAdult()
		d = a.DB
		queries = a.Targets
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want demo, scientific, baseball or adult)", name)
	}
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("dataset %q has no reference queries", name)
	}
	q := queries[0]
	if target != "" {
		q = nil
		for _, c := range queries {
			if strings.EqualFold(c.Name, target) {
				q = c
			}
		}
		if q == nil {
			return nil, nil, fmt.Errorf("dataset %q has no query %q", name, target)
		}
	}
	res, err := q.Evaluate(d)
	if err != nil {
		return nil, nil, err
	}
	res.Name = "R"
	return d, res, nil
}

// demoPair is the paper's Example 1.1.
func demoPair() (*db.Database, *relation.Relation, error) {
	d := db.New()
	emp := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	emp.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(emp)
	d.AddPrimaryKey("Employee", "Eid")
	r := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	return d, r, nil
}

// session handles /sessions/{id} (GET, DELETE) and
// /sessions/{id}/feedback (POST).
func (h *httpAPI) session(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, ErrNotFound)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		st, err := h.m.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, encodeStatus(st, 0))
	case sub == "" && r.Method == http.MethodDelete:
		if err := h.m.Abandon(id); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "abandoned"})
	case sub == "feedback" && r.Method == http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		var req FeedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("bad request body: %w", err))
			return
		}
		if req.Choice < core.NoneOfThese {
			writeErr(w, fmt.Errorf("choice %d out of range (-1 = none)", req.Choice))
			return
		}
		st, err := h.m.FeedbackAt(r.Context(), id, req.Seq, req.Choice)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, encodeStatus(st, 0))
	default:
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "unsupported method or path"})
	}
}

// stats handles GET /stats.
func (h *httpAPI) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "GET /stats"})
		return
	}
	writeJSON(w, http.StatusOK, h.m.Stats())
}
