package service

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/feedback"
	"qfe/internal/relation"
)

func employeeDB() (*db.Database, *relation.Relation) {
	d := db.New()
	r := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	r.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(r)
	d.AddPrimaryKey("Employee", "Eid")
	res := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	return d, res
}

func paperCandidates() []*algebra.Query {
	mk := func(name string, term algebra.Term) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred:       algebra.Predicate{algebra.Conjunct{term}}}
	}
	return []*algebra.Query{
		mk("Q1", algebra.NewTerm("Employee.gender", algebra.OpEQ, relation.Str("M"))),
		mk("Q2", algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))),
		mk("Q3", algebra.NewTerm("Employee.dept", algebra.OpEQ, relation.Str("IT"))),
	}
}

func testOptions() Options {
	cfg := core.DefaultConfig()
	cfg.Gen.Budget = dbgen.Budget{MaxPairs: 100000}
	return Options{Config: cfg}
}

// driveToOutcome answers every round with the given oracle until done.
func driveToOutcome(t *testing.T, m *Manager, id string, oracle feedback.Oracle) *core.Outcome {
	t.Helper()
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		choice, ok, err := oracle.Choose(st.Round.View)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			choice = core.NoneOfThese
		}
		st, err = m.Feedback(id, choice)
		if err != nil {
			t.Fatal(err)
		}
	}
	return st.Outcome
}

func TestCreateFeedbackLifecycle(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	qc := paperCandidates()
	st, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Done() || st.Round == nil {
		t.Fatalf("unexpected initial status: %+v", st)
	}
	out := driveToOutcome(t, m, st.ID, feedback.Target{Query: qc[1]})
	if !out.Found || out.Query == nil || out.Query.Name != "Q2" {
		t.Fatalf("wrong outcome: %+v", out)
	}
	// Finished session stays fetchable.
	again, err := m.Get(st.ID)
	if err != nil || !again.Done() {
		t.Fatalf("finished session not fetchable: %v %+v", err, again)
	}
	stats := m.Stats()
	if stats.SessionsStarted != 1 || stats.SessionsFinished != 1 || stats.RoundsServed == 0 {
		t.Errorf("stats wrong: %+v", stats)
	}
	if stats.Live != 0 || stats.Resident != 1 {
		t.Errorf("resident/live wrong: %+v", stats)
	}
}

func TestFeedbackValidation(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	st, err := m.Create(d, r, paperCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Feedback(st.ID, 99); err == nil {
		t.Fatal("out-of-range choice should error")
	}
	// Session still usable after the bad choice.
	if _, err := m.Feedback(st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Feedback("nope", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestFeedbackAfterFinishErrs(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	qc := paperCandidates()
	st, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	driveToOutcome(t, m, st.ID, feedback.WorstCase{})
	if _, err := m.Feedback(st.ID, 0); !errors.Is(err, ErrFinished) {
		t.Errorf("want ErrFinished, got %v", err)
	}
}

func TestAbandon(t *testing.T) {
	d, r := employeeDB()
	m := New(testOptions())
	st, err := m.Create(d, r, paperCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Abandon(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("abandoned session still resident: %v", err)
	}
	if err := m.Abandon(st.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double abandon: %v", err)
	}
	if s := m.Stats(); s.SessionsAbandoned != 1 {
		t.Errorf("abandoned counter = %d", s.SessionsAbandoned)
	}
}

func TestCapacityBackpressure(t *testing.T) {
	d, r := employeeDB()
	opts := testOptions()
	opts.MaxSessions = 2
	m := New(opts)
	qc := paperCandidates()
	a, err := m.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(d, r, qc); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(d, r, qc); !errors.Is(err, ErrCapacity) {
		t.Fatalf("third session should hit the cap, got %v", err)
	}
	// Finishing one frees a slot: finished sessions do not count as live.
	driveToOutcome(t, m, a.ID, feedback.WorstCase{})
	if _, err := m.Create(d, r, qc); err != nil {
		t.Fatalf("cap should release after completion: %v", err)
	}
}

func TestTTLEviction(t *testing.T) {
	d, r := employeeDB()
	now := time.Unix(1000, 0)
	opts := testOptions()
	opts.TTL = time.Minute
	opts.Clock = func() time.Time { return now }
	m := New(opts)
	st, err := m.Create(d, r, paperCandidates())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, err := m.Get(st.ID); err != nil {
		t.Fatalf("session evicted before TTL: %v", err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("session should be evicted, got %v", err)
	}
	if s := m.Stats(); s.SessionsEvicted != 1 {
		t.Errorf("evicted counter = %d", s.SessionsEvicted)
	}
	if n := m.EvictExpired(); n != 0 {
		t.Errorf("resident after eviction = %d", n)
	}
}

// TestSaveLoadResumesMidRound snapshots a manager with a session suspended
// mid-round, restores into a fresh manager ("process restart") and finishes
// there; the outcome must match an uninterrupted run.
func TestSaveLoadResumesMidRound(t *testing.T) {
	d, r := employeeDB()
	qc := paperCandidates()
	oracle := feedback.Target{Query: qc[2]}

	// Reference: uninterrupted.
	ref := New(testOptions())
	rst, err := ref.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	want := driveToOutcome(t, ref, rst.ID, oracle)

	m1 := New(testOptions())
	st, err := m1.Create(d, r, qc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := m1.Save(&buf)
	if err != nil || n != 1 {
		t.Fatalf("save: n=%d err=%v", n, err)
	}

	m2 := New(testOptions())
	loaded, errs := m2.Load(&buf)
	if len(errs) > 0 || loaded != 1 {
		t.Fatalf("load: n=%d errs=%v", loaded, errs)
	}
	st2, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Done() || st2.Round == nil {
		t.Fatalf("restored session lost its round: %+v", st2)
	}
	got := driveToOutcome(t, m2, st.ID, oracle)
	if !got.Found || got.Query == nil || want.Query == nil ||
		got.Query.Key() != want.Query.Key() {
		t.Fatalf("restored outcome differs: %+v vs %+v", got.Query, want.Query)
	}
	if got.TotalModCost != want.TotalModCost || len(got.Iterations) != len(want.Iterations) {
		t.Errorf("restored trajectory differs: cost %d vs %d, rounds %d vs %d",
			got.TotalModCost, want.TotalModCost, len(got.Iterations), len(want.Iterations))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m := New(testOptions())
	if n, errs := m.Load(bytes.NewBufferString("{not json")); n != 0 || len(errs) == 0 {
		t.Errorf("garbage load: n=%d errs=%v", n, errs)
	}
	if n, errs := m.Load(bytes.NewBufferString(`{"version":9,"sessions":[]}`)); n != 0 || len(errs) == 0 {
		t.Errorf("bad version load: n=%d errs=%v", n, errs)
	}
}
