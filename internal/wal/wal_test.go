package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := Replay(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, stats
}

func feedbackRec(id string, seq, choice int) Record {
	return Record{Type: TypeFeedback, ID: id, Seq: seq, Choice: choice}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	want := []Record{
		{Type: TypeCreated, ID: "a", UnixNs: 123, Created: json.RawMessage(`{"x":1}`)},
		feedbackRec("a", 1, 0),
		feedbackRec("a", 2, -1), // NoneOfThese must round-trip
		{Type: TypeFinished, ID: "a"},
		{Type: TypeAbandoned, ID: "b"},
		{Type: TypeDead, ID: "c"},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, stats := collect(t, dir)
	if stats.TornTail || stats.Corrupt || stats.Records != len(want) {
		t.Fatalf("stats: %+v", stats)
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID ||
			got[i].Seq != want[i].Seq || got[i].Choice != want[i].Choice ||
			!bytes.Equal(got[i].Created, want[i].Created) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestAppendBatchIsOneWrite(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	if err := l.Append(feedbackRec("a", 1, 2), Record{Type: TypeFinished, ID: "a"}); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, dir)
	if stats.Records != 2 || got[1].Type != TypeFinished {
		t.Fatalf("batch append lost records: %+v %+v", stats, got)
	}
}

// TestTornTail truncates the newest segment at every byte boundary inside
// the final record: replay must deliver the longest valid prefix and flag
// the torn tail, never error or deliver a partial record.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := l.Append(feedbackRec("s", i+1, i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	path := segPath(dir, segs[len(segs)-1])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the third record: replay the prefix lengths.
	recs, _ := collect(t, dir)
	if len(recs) != 3 {
		t.Fatalf("setup: %d records", len(recs))
	}
	// Truncate to every length between "after record 2" and "almost full".
	var offsets []int
	off := 8 // magic
	for i := 0; i < 2; i++ {
		payload, _ := json.Marshal(recs[i])
		off += 8 + len(payload)
	}
	for cut := off + 1; cut < len(full); cut++ {
		offsets = append(offsets, cut)
	}
	offsets = append(offsets, off) // clean cut exactly after record 2
	for _, cut := range offsets {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, stats := collect(t, dir)
		if len(got) != 2 {
			t.Fatalf("cut %d: got %d records, want 2", cut, len(got))
		}
		if cut > off && !stats.TornTail {
			t.Fatalf("cut %d: torn tail not detected: %+v", cut, stats)
		}
		if cut == off && (stats.TornTail || stats.Corrupt) {
			t.Fatalf("clean cut flagged: %+v", stats)
		}
	}
}

// TestCRCCorruption flips one payload byte: the record and everything after
// it must be dropped, and corruption before the last segment must be
// flagged Corrupt (not TornTail).
func TestCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir, SegmentBytes: 1}) // rotate every append
	for i := 0; i < 4; i++ {
		if err := l.Append(feedbackRec("s", i+1, i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments", len(segs))
	}
	// Corrupt the second record (lives in a non-final segment: the first
	// segment holds only the header, records start in the second).
	path := segPath(dir, segs[2])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, dir)
	if len(got) != 1 || !stats.Corrupt || stats.TornTail {
		t.Fatalf("got %d records, stats %+v", len(got), stats)
	}
	if stats.DroppedBytes == 0 {
		t.Fatal("dropped bytes not counted")
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	if err := l.Append(feedbackRec("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(feedbackRec("a", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(boundary); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, dir)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("after truncation: %+v (stats %+v)", got, stats)
	}
	segs, _ := listSegments(dir)
	for _, s := range segs {
		if s < boundary {
			t.Fatalf("segment %d survived truncation below %d", s, boundary)
		}
	}
}

// TestReopenStartsFreshSegment ensures Open never appends to an existing
// (possibly torn) segment, and that records from previous generations
// replay before the new ones.
func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	if err := l.Append(feedbackRec("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	seg1 := l.Segment()
	l.Close()
	l2 := openT(t, Options{Dir: dir})
	if l2.Segment() <= seg1 {
		t.Fatalf("reopen reused segment %d (was %d)", l2.Segment(), seg1)
	}
	if err := l2.Append(feedbackRec("a", 2, 1)); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("cross-generation order: %+v", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		dir := t.TempDir()
		l := openT(t, Options{Dir: dir, Sync: pol, SyncInterval: time.Millisecond})
		for i := 0; i < 10; i++ {
			if err := l.Append(feedbackRec("a", i+1, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got, _ := collect(t, dir); len(got) != 10 {
			t.Fatalf("policy %d: %d records", pol, len(got))
		}
	}
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir, Sync: SyncOff, SegmentBytes: 1024})
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(feedbackRec(fmt.Sprintf("s%d", w), i+1, 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, stats := collect(t, dir)
	if len(got) != workers*per || stats.TornTail || stats.Corrupt {
		t.Fatalf("%d records, stats %+v", len(got), stats)
	}
	// Per-session order must be preserved even across segment rotations.
	last := map[string]int{}
	for _, r := range got {
		if r.Seq != last[r.ID]+1 {
			t.Fatalf("session %s: seq %d after %d", r.ID, r.Seq, last[r.ID])
		}
		last[r.ID] = r.Seq
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2-longer" {
		t.Fatalf("read back %q err %v", data, err)
	}
	// No temp litter.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory litter: %v", ents)
	}
}

func TestOpenMissingDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	l := openT(t, Options{Dir: dir})
	if err := l.Append(feedbackRec("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir); len(got) != 1 {
		t.Fatal("nested dir not usable")
	}
	// Replay of a directory that never existed is empty, not an error.
	if recs, stats := collect(t, filepath.Join(dir, "missing")); len(recs) != 0 || stats.Segments != 0 {
		t.Fatalf("missing dir: %v %+v", recs, stats)
	}
}
