package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data crash-safely: write to a temp file
// in the same directory, fsync it, rename it over path, fsync the directory.
// A crash at any point leaves either the old complete file or the new
// complete file — never a truncated or partial one. This is the save path
// for session snapshots (qfe-server's -state file and WAL checkpoints); the
// previous truncate-in-place os.Create destroyed the last good state
// whenever a save failed mid-write.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
// Filesystems that refuse directory fsync (some network mounts) degrade
// gracefully: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}
