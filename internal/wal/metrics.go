package wal

import (
	"time"

	"qfe/internal/obs"
)

// WAL durability metrics (DESIGN.md §13). Append time excludes the fsync so
// the two histograms decompose an acknowledged write: encode+write vs.
// stable-storage latency. The segment-bytes gauge tracks the active segment
// (rotation resets it); all processes' logs share the handles — the series
// aggregate over every open Log in the process, which in the server is one.
var (
	mAppend = obs.NewLatency("qfe_wal_append_seconds",
		"WAL record batch encode+write latency (excluding fsync).")
	mFsync = obs.NewLatency("qfe_wal_fsync_seconds",
		"WAL fsync latency (per-append under SyncAlways, else per flush).")
	mRecords = obs.NewCounter("qfe_wal_records_total",
		"WAL records appended.")
	mBytes = obs.NewCounter("qfe_wal_bytes_total",
		"WAL bytes appended (headers + payloads).")
	mRotations = obs.NewCounter("qfe_wal_rotations_total",
		"WAL segment rotations (including the segment opened by Open).")
	mSegmentBytes = obs.NewGauge("qfe_wal_segment_bytes",
		"Bytes written to the currently active WAL segment.")
	mReplayRecords = obs.NewCounter("qfe_wal_replay_records_total",
		"Valid WAL records delivered by Replay across recoveries.")
)

// syncTimed wraps an fsync of the active segment with the latency histogram.
// A SyncHook (fault injection) replaces the fsync entirely when it errors;
// its sleep time is deliberately included in the histogram so an injected
// stall is visible where a real one would be.
func (l *Log) syncTimed() error {
	start := time.Now()
	var err error
	if l.opts.SyncHook != nil {
		err = l.opts.SyncHook()
	}
	if err == nil {
		err = l.f.Sync()
	}
	mFsync.ObserveDuration(time.Since(start))
	return err
}
