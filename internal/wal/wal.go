// Package wal provides the per-session write-ahead durability layer between
// snapshots (DESIGN.md §11): a segmented, CRC-per-record, append-only log of
// session lifecycle events. The service tier appends a record *before*
// acknowledging the transition it describes; after a crash, recovery loads
// the newest valid snapshot and deterministically replays the log's valid
// prefix through the engine, which is byte-identical by construction (the
// engine's determinism across restarts is what makes logging the *choice*
// sufficient — the round it produces need not be logged).
//
// On-disk layout: Dir holds segments named %016d.wal. Each segment starts
// with an 8-byte magic and carries length-prefixed records:
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C of the payload
//	[]byte  payload (JSON-encoded Record)
//
// A crash can leave a torn record only at the tail of the newest segment
// (appends are sequential and each record is written with a single write).
// Replay therefore reads the longest valid prefix: a bad record at the tail
// of the last segment is a normal crash artifact (ReplayStats.TornTail);
// a bad record anywhere earlier indicates real corruption
// (ReplayStats.Corrupt) and everything after it is dropped — recovery
// proceeds with the prefix rather than guessing.
//
// Compaction pairs with snapshots: Rotate() starts a fresh segment and
// returns its index — every record appended earlier lives in a lower
// segment — then, once a snapshot capturing all live sessions has been
// atomically written (WriteFileAtomic), TruncateBefore(idx) deletes the
// segments the snapshot subsumes.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Type enumerates session lifecycle events.
type Type string

// Session lifecycle event types.
const (
	// TypeCreated carries the session's codec-encoded inputs and config —
	// everything replay needs to rebuild it from scratch.
	TypeCreated Type = "created"
	// TypeFeedback records one accepted feedback choice for round Seq.
	TypeFeedback Type = "feedback"
	// TypeFinished marks the session's outcome being reached.
	TypeFinished Type = "finished"
	// TypeAbandoned marks an explicit delete; replay skips the session.
	TypeAbandoned Type = "abandoned"
	// TypeDead marks a fatal engine error; replay tombstones the session.
	TypeDead Type = "dead"
)

// Record is one logged session event. Created payloads are opaque to this
// package (the service defines their schema), keeping the log format
// independent of the engine's wire types.
type Record struct {
	Type   Type   `json:"type"`
	ID     string `json:"id"`
	UnixNs int64  `json:"unixNs,omitempty"`
	// Seq is the session-global round number a feedback record answers
	// (1-based; rounds are numbered from 1).
	Seq int `json:"seq,omitempty"`
	// Choice is the feedback choice: a 0-based result index, or -1 for
	// "none of these". Deliberately not omitempty — 0 is a legal choice.
	Choice  int             `json:"choice"`
	Created json.RawMessage `json:"created,omitempty"`
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

// Sync policies, strongest first.
const (
	// SyncAlways fsyncs after every append (durable against power loss).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer: bounded data loss on power
	// failure, none on process crash (the OS holds completed writes).
	SyncInterval
	// SyncOff never fsyncs; durability against process crash only.
	SyncOff
)

// ParseSyncPolicy maps flag spellings to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
}

// Options tunes a Log. Zero values select defaults.
type Options struct {
	// Dir holds the segments; created if missing.
	Dir string
	// SegmentBytes rotates the active segment when it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// Sync selects the sync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is SyncInterval's flush period (default 50ms).
	SyncInterval time.Duration
	// WriteHook, when set, intercepts every batch write — the seam
	// internal/fault uses to script storage failures. It reports how many
	// prefix bytes of the batch to actually write (n < len(b) produces a
	// genuine torn record on disk) and an error to surface to the caller.
	// A nil hook writes the whole batch.
	WriteHook func(b []byte) (n int, err error)
	// SyncHook, when set, runs in place of each fsync's entry: it may
	// sleep (fsync stall) and/or return an error (EIO), in which case the
	// real fsync is skipped and the error surfaces to the caller.
	SyncHook func() error
}

var (
	segMagic  = [8]byte{'q', 'f', 'e', 'w', 'a', 'l', 0, 1}
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
	maxRecLen = uint32(1 << 28) // sanity cap; larger lengths are corruption
)

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	opts Options

	mu      sync.Mutex
	f       *os.File
	seg     uint64 // index of the active segment
	size    int64  // bytes written to the active segment
	closed  bool
	broken  bool // torn tail could not be truncated away; log refuses appends
	stopSyn chan struct{}
}

// Open creates Dir if needed and opens a fresh segment after the newest
// existing one. It never appends to a pre-existing segment: a crashed
// process may have left a torn record at its tail, and a clean segment
// boundary keeps "longest valid prefix" equal to "everything acknowledged".
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	l := &Log{opts: opts, seg: next - 1}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stopSyn = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// segPath names segment idx inside dir.
func segPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d.wal", idx))
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range ents {
		var idx uint64
		if n, err := fmt.Sscanf(e.Name(), "%016d.wal", &idx); n == 1 && err == nil &&
			e.Name() == fmt.Sprintf("%016d.wal", idx) {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// openSegmentLocked creates and syncs segment idx and makes it active.
func (l *Log) openSegmentLocked(idx uint64) error {
	f, err := os.OpenFile(segPath(l.opts.Dir, idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: segment header sync: %w", err)
		}
	}
	if l.f != nil {
		_ = l.f.Sync()
		_ = l.f.Close()
	}
	l.f = f
	l.seg = idx
	l.size = int64(len(segMagic))
	mRotations.Inc()
	mSegmentBytes.Set(l.size)
	return nil
}

// Append encodes and writes the records, then applies the sync policy once
// for the whole batch. The call returns only after the records are durable
// to the degree the policy promises — the caller may then acknowledge the
// transitions to the client.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("wal: encode: %w", err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.broken {
		return fmt.Errorf("wal: segment tail unrecoverable after failed write")
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.openSegmentLocked(l.seg + 1); err != nil {
			return err
		}
	}
	// One write per batch: a crash tears at most the batch's tail, never
	// interleaves records.
	n, hookErr := len(buf), error(nil)
	if l.opts.WriteHook != nil {
		n, hookErr = l.opts.WriteHook(buf)
		if n > len(buf) {
			n = len(buf)
		}
		if n < 0 {
			n = 0
		}
	}
	wrote := 0
	var werr error
	if n > 0 {
		wrote, werr = l.f.Write(buf[:n])
	}
	if werr == nil && hookErr != nil {
		werr = hookErr
	}
	if werr == nil && wrote < len(buf) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		// A failed or short write leaves a torn record at the segment
		// tail. Restore the invariant that a live segment holds only
		// whole records by truncating the partial bytes away; if even
		// that fails, latch the log broken — appending past torn bytes
		// would let replay's corruption rule drop later acknowledged
		// records, so a log that cannot heal its tail must refuse all
		// further appends (the node degrades and the cluster fails over).
		if terr := l.truncateTailLocked(); terr != nil {
			l.broken = true
		}
		return fmt.Errorf("wal: append: %w", werr)
	}
	l.size += int64(len(buf))
	mAppend.ObserveDuration(time.Since(start))
	mRecords.Add(uint64(len(recs)))
	mBytes.Add(uint64(len(buf)))
	mSegmentBytes.Set(l.size)
	if l.opts.Sync == SyncAlways {
		if err := l.syncTimed(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// truncateTailLocked drops any partially-written bytes past the last whole
// record and repositions the write offset (the file is plain O_WRONLY, not
// O_APPEND, so the offset must follow the truncation).
func (l *Log) truncateTailLocked() error {
	if err := l.f.Truncate(l.size); err != nil {
		return err
	}
	_, err := l.f.Seek(l.size, io.SeekStart)
	return err
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return nil
	}
	return l.syncTimed()
}

// Ping probes the log's ability to durably accept appends — the health
// check's WAL-writability signal. Unlike Sync (a no-op on a closed log, by
// design: the shutdown path calls it unconditionally), Ping reports a
// closed log as an error, because a node that can no longer journal must
// not acknowledge new transitions.
func (l *Log) Ping() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if l.broken {
		return fmt.Errorf("wal: segment tail unrecoverable after failed write")
	}
	return l.syncTimed()
}

// syncLoop is SyncInterval's background flusher.
func (l *Log) syncLoop() {
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stopSyn:
			return
		}
	}
}

// Rotate closes the active segment and starts the next one, returning the
// new segment's index: every previously appended record lives in a segment
// below it. Checkpointing rotates first, snapshots, then truncates below
// the returned boundary.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if err := l.openSegmentLocked(l.seg + 1); err != nil {
		return 0, err
	}
	return l.seg, nil
}

// TruncateBefore deletes every segment with index below boundary (the
// compaction step after a successful snapshot). The active segment is never
// deleted.
func (l *Log) TruncateBefore(boundary uint64) error {
	l.mu.Lock()
	cur := l.seg
	l.mu.Unlock()
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx >= boundary || idx == cur {
			continue
		}
		if err := os.Remove(segPath(l.opts.Dir, idx)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return syncDir(l.opts.Dir)
}

// Segment returns the index of the active segment.
func (l *Log) Segment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.stopSyn != nil {
		close(l.stopSyn)
	}
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReplayStats describes what Replay found.
type ReplayStats struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of valid records delivered.
	Records int
	// TornTail reports an incomplete or checksum-failed record at the tail
	// of the newest segment — the normal artifact of a crash mid-append.
	TornTail bool
	// Corrupt reports a bad record before the newest segment's tail: real
	// damage. Everything after the longest valid prefix was dropped.
	Corrupt bool
	// DroppedBytes counts bytes skipped after the valid prefix.
	DroppedBytes int64
}

// Replay reads every record of the log's longest valid prefix, in append
// order, and hands each to fn. A fn error aborts the replay and is returned.
// A missing directory replays nothing.
func Replay(dir string, fn func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	for si, idx := range segs {
		stats.Segments++
		last := si == len(segs)-1
		bad, dropped, err := replaySegment(segPath(dir, idx), &stats, fn)
		if err != nil {
			return stats, err
		}
		if bad {
			stats.DroppedBytes += dropped
			if last {
				stats.TornTail = true
			} else {
				// Corruption mid-log: the remaining segments may reference
				// state the dropped records established; stop at the valid
				// prefix rather than replaying out of order.
				stats.Corrupt = true
				for _, rest := range segs[si+1:] {
					if fi, err := os.Stat(segPath(dir, rest)); err == nil {
						stats.DroppedBytes += fi.Size()
					}
				}
			}
			return stats, nil
		}
	}
	return stats, nil
}

// replaySegment streams one segment's records into fn. It reports (via bad)
// a torn or corrupt record, with the number of bytes dropped after the valid
// prefix; fn errors abort.
func replaySegment(path string, stats *ReplayStats, fn func(Record) error) (bad bool, dropped int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false, 0, fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		// Header torn (crash during segment creation) or foreign file.
		return true, size, nil
	}
	off := int64(len(segMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return false, 0, nil // clean end
			}
			return true, size - off, nil // torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecLen || off+8+int64(n) > size {
			return true, size - off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return true, size - off, nil
		}
		if crc32.Checksum(payload, crcTable) != want {
			return true, size - off, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return true, size - off, nil
		}
		off += 8 + int64(n)
		stats.Records++
		mReplayRecords.Inc()
		if err := fn(rec); err != nil {
			return false, 0, err
		}
	}
}
