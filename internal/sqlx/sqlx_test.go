package sqlx

import (
	"strings"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/relation"
)

func mustParse(t *testing.T, src string) *algebra.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseBasicSelect(t *testing.T) {
	q := mustParse(t, "SELECT Employee.name FROM Employee WHERE Employee.gender = 'M'")
	if len(q.Tables) != 1 || q.Tables[0] != "Employee" {
		t.Errorf("tables = %v", q.Tables)
	}
	if len(q.Projection) != 1 || q.Projection[0] != "Employee.name" {
		t.Errorf("projection = %v", q.Projection)
	}
	if len(q.Pred) != 1 || len(q.Pred[0]) != 1 {
		t.Fatalf("pred = %v", q.Pred)
	}
	term := q.Pred[0][0]
	if term.Attr != "Employee.gender" || term.Op != algebra.OpEQ || !term.Const.Equal(relation.Str("M")) {
		t.Errorf("term = %v", term)
	}
}

func TestParseDistinctStarAndJoins(t *testing.T) {
	q := mustParse(t, "select distinct * from A join B, C")
	if !q.Distinct {
		t.Error("DISTINCT not recognised (case-insensitive)")
	}
	if len(q.Projection) != 0 {
		t.Error("* should produce empty projection")
	}
	if len(q.Tables) != 3 {
		t.Errorf("tables = %v", q.Tables)
	}
}

func TestParseOperators(t *testing.T) {
	q := mustParse(t, "SELECT a FROM T WHERE a=1 AND b<>2 AND c<3 AND d<=4 AND e>5 AND f>=6 AND g != 7")
	if len(q.Pred) != 1 {
		t.Fatalf("pred = %v", q.Pred)
	}
	ops := []algebra.Op{algebra.OpEQ, algebra.OpNE, algebra.OpLT, algebra.OpLE,
		algebra.OpGT, algebra.OpGE, algebra.OpNE}
	if len(q.Pred[0]) != len(ops) {
		t.Fatalf("conjunct size = %d", len(q.Pred[0]))
	}
	for i, op := range ops {
		if q.Pred[0][i].Op != op {
			t.Errorf("term %d op = %v, want %v", i, q.Pred[0][i].Op, op)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT a FROM T WHERE a = -3 AND b = 2.5 AND c = 'it''s' AND d = TRUE AND e = FALSE")
	c := q.Pred[0]
	if !c[0].Const.Equal(relation.Int(-3)) {
		t.Errorf("int literal = %v", c[0].Const)
	}
	if !c[1].Const.Equal(relation.Float(2.5)) {
		t.Errorf("float literal = %v", c[1].Const)
	}
	if !c[2].Const.Equal(relation.Str("it's")) {
		t.Errorf("string literal with escaped quote = %v", c[2].Const)
	}
	if !c[3].Const.Equal(relation.Bool(true)) || !c[4].Const.Equal(relation.Bool(false)) {
		t.Error("bool literals broken")
	}
}

func TestParseInAndNotIn(t *testing.T) {
	q := mustParse(t, "SELECT a FROM T WHERE x IN ('a','b') AND y NOT IN (1, 2)")
	c := q.Pred[0]
	if c[0].Op != algebra.OpIn || len(c[0].Set) != 2 {
		t.Errorf("IN term = %v", c[0])
	}
	if c[1].Op != algebra.OpNotIn || len(c[1].Set) != 2 {
		t.Errorf("NOT IN term = %v", c[1])
	}
}

func TestParseDNFConversion(t *testing.T) {
	// (a=1 OR b=2) AND c=3  ->  (a=1 AND c=3) OR (b=2 AND c=3)
	q := mustParse(t, "SELECT x FROM T WHERE (a=1 OR b=2) AND c=3")
	if len(q.Pred) != 2 {
		t.Fatalf("DNF should have 2 conjuncts, got %d: %v", len(q.Pred), q.Pred)
	}
	for _, conj := range q.Pred {
		if len(conj) != 2 {
			t.Errorf("conjunct = %v, want 2 terms", conj)
		}
		last := conj[len(conj)-1]
		if last.Attr != "c" || !last.Const.Equal(relation.Int(3)) {
			t.Errorf("c=3 should distribute into %v", conj)
		}
	}
}

func TestParseNotPushdown(t *testing.T) {
	// NOT (a < 1 OR b = 2) -> a >= 1 AND b <> 2
	q := mustParse(t, "SELECT x FROM T WHERE NOT (a < 1 OR b = 2)")
	if len(q.Pred) != 1 || len(q.Pred[0]) != 2 {
		t.Fatalf("pred = %v", q.Pred)
	}
	if q.Pred[0][0].Op != algebra.OpGE {
		t.Errorf("NOT(<) should become >=, got %v", q.Pred[0][0].Op)
	}
	if q.Pred[0][1].Op != algebra.OpNE {
		t.Errorf("NOT(=) should become <>, got %v", q.Pred[0][1].Op)
	}
	// Double negation cancels.
	q2 := mustParse(t, "SELECT x FROM T WHERE NOT NOT a = 1")
	if q2.Pred[0][0].Op != algebra.OpEQ {
		t.Error("double negation should cancel")
	}
	// NOT IN via negation of IN.
	q3 := mustParse(t, "SELECT x FROM T WHERE NOT x IN (1)")
	if q3.Pred[0][0].Op != algebra.OpNotIn {
		t.Errorf("NOT (x IN) = %v", q3.Pred[0][0].Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM T WHERE",
		"SELECT a FROM T WHERE a",
		"SELECT a FROM T WHERE a = ",
		"SELECT a FROM T WHERE a = 'unterminated",
		"SELECT a FROM T WHERE (a = 1",
		"SELECT a FROM T WHERE a IN 1",
		"SELECT a FROM T WHERE a IN (1",
		"SELECT a FROM T trailing junk",
		"SELECT a. FROM T",
		"SELECT a FROM T WHERE a @ 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTripThroughSQL(t *testing.T) {
	srcs := []string{
		"SELECT A.x FROM A WHERE A.x > 1",
		"SELECT A.x, B.y FROM A JOIN B WHERE (A.x <= 5 AND B.y = 'z') OR (A.x > 10)",
		"SELECT DISTINCT A.x FROM A WHERE A.s IN ('p', 'q')",
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		q2 := mustParse(t, q1.SQL())
		if q1.Fingerprint() != q2.Fingerprint() {
			t.Errorf("round trip changed query:\n  src:  %s\n  sql1: %s\n  sql2: %s",
				src, q1.SQL(), q2.SQL())
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := (&lexer{src: "SELECT x, y FROM t WHERE a <= 1.5e3 AND b = 'o''k'"}).all()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("token stream must end with EOF")
	}
	// Spot-check: string contents unescaped.
	found := false
	for _, tok := range toks {
		if tok.kind == tokString && tok.text == "o'k" {
			found = true
		}
	}
	if !found {
		t.Error("escaped quote not handled in lexer")
	}
	if _, err := (&lexer{src: "a ; b"}).all(); err == nil {
		t.Error("lexer should reject unknown characters")
	}
	if !strings.Contains(err1(t).Error(), "position") {
		t.Error("lex errors should carry position")
	}
}

func err1(t *testing.T) error {
	t.Helper()
	_, err := (&lexer{src: "'open"}).all()
	if err == nil {
		t.Fatal("want error")
	}
	return err
}
