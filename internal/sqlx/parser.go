package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"qfe/internal/algebra"
	"qfe/internal/relation"
)

// Parse parses one SPJ SELECT statement into an algebra.Query. The WHERE
// clause may be any boolean combination of comparisons; it is normalised to
// DNF (the representation the paper assumes for candidate queries, §4).
//
// Grammar (case-insensitive keywords):
//
//	query   = SELECT [DISTINCT] cols FROM tables [WHERE expr]
//	cols    = '*' | col {',' col}
//	col     = ident ['.' ident]
//	tables  = ident {(JOIN | ',') ident}
//	expr    = or ; or = and {OR and} ; and = unary {AND unary}
//	unary   = [NOT] (comparison | '(' expr ')')
//	compare = col (op literal | [NOT] IN '(' literal {',' literal} ')')
func Parse(src string) (*algebra.Query, error) {
	toks, err := (&lexer{src: src}).all()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks  []token
	i     int
	src   string
	depth int // boolean-expression nesting, bounded by maxExprDepth
}

// maxExprDepth bounds NOT/parenthesis nesting so adversarial input cannot
// overflow the goroutine stack through the recursive-descent parser.
const maxExprDepth = 200

// maxDNFConjuncts and maxDNFTerms bound the size of the normalised
// predicate. AND distributing over OR multiplies conjunct counts, so a small
// input like (a=1 OR a=2) AND ... AND (a=1 OR a=2) denotes an exponentially
// large DNF; and even under the conjunct cap, a long AND chain duplicated
// into every conjunct multiplies the term count. Both are computed
// symbolically and rejected before any materialisation.
const (
	maxDNFConjuncts = 4096
	maxDNFTerms     = 1 << 16
)

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s, found %q", kw, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseQuery() (*algebra.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &algebra.Query{}
	q.Distinct = p.acceptKeyword("DISTINCT")

	if p.acceptSymbol("*") {
		// Projection of * is resolved by the caller against the join schema;
		// an empty Projection slice encodes it.
	} else {
		for {
			col, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			q.Projection = append(q.Projection, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected table name, found %q", t.text)
		}
		q.Tables = append(q.Tables, t.text)
		p.advance()
		if p.acceptKeyword("JOIN") || p.acceptSymbol(",") {
			continue
		}
		break
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		pred, err := toDNF(e)
		if err != nil {
			return nil, err
		}
		q.Pred = pred
	}
	return q, nil
}

func (p *parser) parseColumn() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected column name, found %q", t.text)
	}
	p.advance()
	name := t.text
	if p.acceptSymbol(".") {
		t2 := p.peek()
		if t2.kind != tokIdent {
			return "", p.errf("expected column after %q.", name)
		}
		p.advance()
		name = name + "." + t2.text
	}
	return name, nil
}

// boolExpr is the parser's intermediate boolean AST, later flattened to DNF.
type boolExpr struct {
	op    string // "term", "and", "or", "not"
	term  algebra.Term
	left  *boolExpr
	right *boolExpr
}

func (p *parser) parseOr() (*boolExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &boolExpr{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (*boolExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &boolExpr{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (*boolExpr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, p.errf("expression nested deeper than %d levels", maxExprDepth)
	}
	if p.acceptKeyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &boolExpr{op: "not", left: inner}, nil
	}
	if p.acceptSymbol("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.acceptSymbol(")") {
			return nil, p.errf("expected )")
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (*boolExpr, error) {
	col, err := p.parseColumn()
	if err != nil {
		return nil, err
	}
	// IN / NOT IN
	negated := false
	if p.acceptKeyword("NOT") {
		negated = true
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
	} else if p.acceptKeyword("IN") {
		// fallthrough to set parsing
	} else {
		t := p.peek()
		if t.kind != tokSymbol {
			return nil, p.errf("expected comparison operator, found %q", t.text)
		}
		var op algebra.Op
		switch t.text {
		case "=":
			op = algebra.OpEQ
		case "<>":
			op = algebra.OpNE
		case "<":
			op = algebra.OpLT
		case "<=":
			op = algebra.OpLE
		case ">":
			op = algebra.OpGT
		case ">=":
			op = algebra.OpGE
		default:
			return nil, p.errf("expected comparison operator, found %q", t.text)
		}
		p.advance()
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &boolExpr{op: "term", term: algebra.NewTerm(col, op, v)}, nil
	}
	// Set membership.
	if !p.acceptSymbol("(") {
		return nil, p.errf("expected ( after IN")
	}
	var set []relation.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		set = append(set, v)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if !p.acceptSymbol(")") {
		return nil, p.errf("expected ) closing IN list")
	}
	op := algebra.OpIn
	if negated {
		op = algebra.OpNotIn
	}
	return &boolExpr{op: "term", term: algebra.NewSetTerm(col, op, set)}, nil
}

func (p *parser) parseLiteral() (relation.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.advance()
		return relation.Str(t.text), nil
	case tokNumber:
		p.advance()
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return relation.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return relation.Value{}, p.errf("bad numeric literal %q", t.text)
		}
		return relation.Float(f), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return relation.Bool(true), nil
		case "FALSE":
			p.advance()
			return relation.Bool(false), nil
		case "NULL":
			p.advance()
			return relation.Null(), nil
		}
	}
	return relation.Value{}, p.errf("expected literal, found %q", t.text)
}

// toDNF flattens the boolean AST into algebra's DNF predicate. NOT is pushed
// down to the term level first (De Morgan), then AND distributes over OR.
// Predicates whose DNF exceeds maxDNFConjuncts are rejected before any
// materialisation (the count is computed symbolically, so the check itself
// is linear in the input).
func toDNF(e *boolExpr) (algebra.Predicate, error) {
	n, err := pushNot(e, false)
	if err != nil {
		return nil, err
	}
	conjuncts, terms := dnfSize(n)
	if conjuncts > maxDNFConjuncts {
		return nil, fmt.Errorf("sql: predicate normalises to %d conjuncts (limit %d)", conjuncts, maxDNFConjuncts)
	}
	if terms > maxDNFTerms {
		return nil, fmt.Errorf("sql: predicate normalises to %d terms (limit %d)", terms, maxDNFTerms)
	}
	return distribute(n), nil
}

// dnfSize returns the number of conjuncts and total terms distribute would
// produce, saturating at an implementation ceiling well above the limits.
// For AND, every left conjunct is concatenated with every right conjunct, so
// the term total is terms(l)·size(r) + terms(r)·size(l).
func dnfSize(e *boolExpr) (conjuncts, terms int) {
	const ceiling = 1 << 30
	sat := func(v int) int {
		if v > ceiling || v < 0 {
			return ceiling
		}
		return v
	}
	switch e.op {
	case "term":
		return 1, 1
	case "or":
		lc, lt := dnfSize(e.left)
		rc, rt := dnfSize(e.right)
		return sat(lc + rc), sat(lt + rt)
	case "and":
		lc, lt := dnfSize(e.left)
		rc, rt := dnfSize(e.right)
		if lc > 0 && rc > ceiling/lc {
			return ceiling, ceiling
		}
		return sat(lc * rc), sat(lt*rc + rt*lc)
	default:
		return 1, 1
	}
}

func pushNot(e *boolExpr, neg bool) (*boolExpr, error) {
	switch e.op {
	case "term":
		if !neg {
			return e, nil
		}
		t := e.term
		t.Op = t.Op.Negate()
		return &boolExpr{op: "term", term: t}, nil
	case "not":
		return pushNot(e.left, !neg)
	case "and", "or":
		l, err := pushNot(e.left, neg)
		if err != nil {
			return nil, err
		}
		r, err := pushNot(e.right, neg)
		if err != nil {
			return nil, err
		}
		op := e.op
		if neg { // De Morgan
			if op == "and" {
				op = "or"
			} else {
				op = "and"
			}
		}
		return &boolExpr{op: op, left: l, right: r}, nil
	default:
		return nil, fmt.Errorf("sql: internal: unknown boolean node %q", e.op)
	}
}

func distribute(e *boolExpr) algebra.Predicate {
	switch e.op {
	case "term":
		return algebra.Predicate{algebra.Conjunct{e.term}}
	case "or":
		return append(distribute(e.left), distribute(e.right)...)
	case "and":
		l, r := distribute(e.left), distribute(e.right)
		out := make(algebra.Predicate, 0, len(l)*len(r))
		for _, lc := range l {
			for _, rc := range r {
				conj := make(algebra.Conjunct, 0, len(lc)+len(rc))
				conj = append(conj, lc...)
				conj = append(conj, rc...)
				out = append(out, conj)
			}
		}
		return out
	default:
		panic("sql: internal: distribute on " + e.op)
	}
}
