// Package sqlx provides a textual front-end for the SPJ dialect QFE
// supports: a lexer and recursive-descent parser that turn SQL text into
// algebra.Query values (with arbitrary boolean WHERE clauses normalised to
// DNF), and the inverse rendering via Query.SQL. It exists for the CLI and
// examples — the winnowing algorithms themselves operate on the algebra.
package sqlx

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , . * = <> < <= > >=
	tokKeyword // SELECT FROM WHERE AND OR NOT IN JOIN DISTINCT TRUE FALSE NULL
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "JOIN": true, "DISTINCT": true,
	"TRUE": true, "FALSE": true, "NULL": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset in the input, for error messages
}

// lexer splits SQL text into tokens.
type lexer struct {
	src string
	i   int
}

// lexError reports a lexical error with position context.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("sql: position %d: %s", e.pos, e.msg) }

func (l *lexer) all() ([]token, error) {
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.i < len(l.src) && unicode.IsSpace(rune(l.src[l.i])) {
		l.i++
	}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	start := l.i
	c := l.src[l.i]
	switch {
	case c == '\'':
		l.i++
		var b strings.Builder
		for {
			if l.i >= len(l.src) {
				return token{}, &lexError{start, "unterminated string literal"}
			}
			if l.src[l.i] == '\'' {
				if l.i+1 < len(l.src) && l.src[l.i+1] == '\'' { // escaped quote
					b.WriteByte('\'')
					l.i += 2
					continue
				}
				l.i++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.i])
			l.i++
		}
	case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
		l.i++
		for l.i < len(l.src) && (unicode.IsDigit(rune(l.src[l.i])) ||
			l.src[l.i] == '.' || l.src[l.i] == 'e' || l.src[l.i] == 'E' ||
			((l.src[l.i] == '-' || l.src[l.i] == '+') && (l.src[l.i-1] == 'e' || l.src[l.i-1] == 'E'))) {
			l.i++
		}
		return token{kind: tokNumber, text: l.src[start:l.i], pos: start}, nil
	case isIdentStart(c):
		l.i++
		for l.i < len(l.src) && isIdentPart(l.src[l.i]) {
			l.i++
		}
		word := l.src[start:l.i]
		if keywords[strings.ToUpper(word)] {
			return token{kind: tokKeyword, text: strings.ToUpper(word), pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	default:
		// Multi-byte operators first.
		for _, op := range []string{"<>", "<=", ">=", "!="} {
			if strings.HasPrefix(l.src[l.i:], op) {
				l.i += len(op)
				text := op
				if op == "!=" {
					text = "<>"
				}
				return token{kind: tokSymbol, text: text, pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', '*', '=', '<', '>':
			l.i++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, &lexError{start, fmt.Sprintf("unexpected character %q", c)}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
