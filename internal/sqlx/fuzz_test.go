package sqlx

import (
	"strings"
	"testing"

	"qfe/internal/datasets"
)

// seedCorpus returns the SQL renderings of the paper's reference queries —
// the scientific Q1/Q2, the baseball Q3–Q6, the adult-census targets — plus
// Example 1.1 and grammar corner cases (DNF, NOT, IN, literals of every
// kind).
func seedCorpus() []string {
	seeds := []string{
		// Example 1.1 (the three candidate queries of the paper's Figure 1).
		"SELECT name FROM Employee WHERE gender = 'M'",
		"SELECT name FROM Employee WHERE salary > 4000",
		"SELECT name FROM Employee WHERE dept = 'IT'",
		// Grammar corners.
		"SELECT * FROM t",
		"SELECT DISTINCT a.b, c FROM t JOIN u WHERE NOT (a.b < 3 OR c IN ('x', 'y''z'))",
		"SELECT a FROM t WHERE x = TRUE AND y = FALSE OR z = NULL",
		"SELECT a FROM t WHERE f <> -1.5e-3 AND g >= +7",
		"SELECT a FROM t, u, v WHERE t.a NOT IN (1, 2, 3)",
		"select a from t where (((x = 1)))",
	}
	sci := datasets.NewScientific()
	seeds = append(seeds, sci.Q1.SQL(), sci.Q2.SQL())
	bb := datasets.NewBaseball()
	seeds = append(seeds, bb.Q3.SQL(), bb.Q4.SQL(), bb.Q5.SQL(), bb.Q6.SQL())
	for _, q := range datasets.NewAdult().Targets {
		seeds = append(seeds, q.SQL())
	}
	return seeds
}

// FuzzParse asserts the parser's two safety properties on arbitrary input:
//
//  1. Parse never panics (it returns an error for anything it rejects,
//     including pathological nesting and exponential DNF blow-ups);
//  2. any accepted query round-trips: rendering it with Query.SQL and
//     parsing again yields a query with an identical canonical Key — the
//     encoding dedup, fingerprinting and the evaluation cache all key on.
//
// Run long with: go test -fuzz=FuzzParse ./internal/sqlx
func FuzzParse(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		key := q.Key()
		sql := q.SQL()
		q2, err := Parse(sql)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, sql, err)
		}
		if q2.Key() != key {
			t.Fatalf("round-trip changed the query\ninput:    %q\nrendered: %q\nkey before: %q\nkey after:  %q",
				src, sql, key, q2.Key())
		}
	})
}

// TestSeedCorpusRoundTrips runs the fuzz property over the seed corpus in a
// plain test, so the invariant is checked on every `go test` run, not only
// under -fuzz.
func TestSeedCorpusRoundTrips(t *testing.T) {
	for _, src := range seedCorpus() {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("seed %q does not parse: %v", src, err)
			continue
		}
		q2, err := Parse(q.SQL())
		if err != nil {
			t.Errorf("seed %q: rendering %q does not re-parse: %v", src, q.SQL(), err)
			continue
		}
		if q2.Key() != q.Key() {
			t.Errorf("seed %q: round-trip changed key", src)
		}
	}
}

// TestParserResourceGuards pins the hardening limits the fuzzer relies on.
func TestParserResourceGuards(t *testing.T) {
	// Deep parenthesis nesting must be rejected, not overflow the stack.
	deep := "SELECT a FROM t WHERE " + strings.Repeat("(", 100000) + "x = 1"
	if _, err := Parse(deep); err == nil {
		t.Error("deep nesting should be rejected")
	}
	// NOT chains likewise.
	nots := "SELECT a FROM t WHERE " + strings.Repeat("NOT ", 100000) + "x = 1"
	if _, err := Parse(nots); err == nil {
		t.Error("deep NOT chain should be rejected")
	}
	// Exponential DNF must be rejected before materialisation.
	blowup := "SELECT a FROM t WHERE (x = 1 OR x = 2)" +
		strings.Repeat(" AND (x = 1 OR x = 2)", 40)
	if _, err := Parse(blowup); err == nil {
		t.Error("2^41-conjunct DNF should be rejected")
	}
	// Term-count blow-up under the conjunct cap: a long AND chain times a
	// 4096-way OR would copy the chain into every conjunct.
	// 2000 AND terms × a 40-way OR = 80040 materialised terms in only 40
	// conjuncts — over the term cap while far under the conjunct cap.
	wide := "SELECT a FROM t WHERE " + strings.Repeat("z = 0 AND ", 2000) +
		"(x = 1" + strings.Repeat(" OR x = 2", 39) + ")"
	if _, err := Parse(wide); err == nil {
		t.Error("term blow-up should be rejected")
	}
	// Within the limits, both shapes still parse.
	if _, err := Parse("SELECT a FROM t WHERE NOT NOT ((x = 1 OR x = 2) AND (y = 1 OR y = 2))"); err != nil {
		t.Errorf("moderate nesting should parse: %v", err)
	}
}
