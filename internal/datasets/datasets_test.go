package datasets

import (
	"testing"

	"qfe/internal/db"
)

func TestScientificShape(t *testing.T) {
	s := NewScientific()
	main := s.DB.Table(SciMainTable)
	ref := s.DB.Table(SciRefTable)
	// Paper §7.1: 3926 × 16 and 424 × 3; join = 417.
	if main.Len() != 3926 || main.Arity() != 16 {
		t.Errorf("main = %d×%d, want 3926×16", main.Len(), main.Arity())
	}
	if ref.Len() != 424 || ref.Arity() != 3 {
		t.Errorf("ref = %d×%d, want 424×3", ref.Len(), ref.Arity())
	}
	if err := s.DB.Validate(); err != nil {
		t.Fatalf("constraints violated: %v", err)
	}
	j, err := db.JoinAll(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.Len() != 417 {
		t.Errorf("join = %d tuples, want 417", j.Rel.Len())
	}
}

func TestScientificQueryCardinalities(t *testing.T) {
	s := NewScientific()
	// Paper: |Q1(D)| = 1, |Q2(D)| = 6.
	r1, err := s.Q1.Evaluate(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 1 {
		t.Errorf("|Q1(D)| = %d, want 1", r1.Len())
	}
	r2, err := s.Q2.Evaluate(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 6 {
		t.Errorf("|Q2(D)| = %d, want 6", r2.Len())
	}
}

func TestScientificDeterminism(t *testing.T) {
	a, b := NewScientific(), NewScientific()
	ja, _ := db.JoinAll(a.DB)
	jb, _ := db.JoinAll(b.DB)
	if ja.Rel.Fingerprint() != jb.Rel.Fingerprint() {
		t.Error("generation must be deterministic")
	}
}

func TestBaseballShape(t *testing.T) {
	b := NewBaseball()
	// Paper §7.1: Manager 200×11, Team 252×29, Batting 6977×15, join 8810.
	cases := []struct {
		table       string
		rows, arity int
	}{
		{BBManager, 200, 11},
		{BBTeam, 252, 29},
		{BBBatting, 6977, 15},
	}
	for _, c := range cases {
		tab := b.DB.Table(c.table)
		if tab.Len() != c.rows || tab.Arity() != c.arity {
			t.Errorf("%s = %d×%d, want %d×%d", c.table, tab.Len(), tab.Arity(), c.rows, c.arity)
		}
	}
	if err := b.DB.Validate(); err != nil {
		t.Fatalf("constraints violated: %v", err)
	}
	j, err := db.JoinAll(b.DB)
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.Len() != b.ExpectedJoinedSize || j.Rel.Len() != 8810 {
		t.Errorf("3-way join = %d tuples, want 8810", j.Rel.Len())
	}
}

func TestBaseballQueryCardinalities(t *testing.T) {
	b := NewBaseball()
	// Paper: |Q3..Q6| = 5, 14, 4, 4.
	want := map[string]int{"Q3": 5, "Q4": 14, "Q5": 4, "Q6": 4}
	r3, err := b.Q3.Evaluate(b.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Len() != want["Q3"] {
		t.Errorf("|Q3(D)| = %d, want %d", r3.Len(), want["Q3"])
	}
	r4, err := b.Q4.Evaluate(b.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Len() != want["Q4"] {
		t.Errorf("|Q4(D)| = %d, want %d", r4.Len(), want["Q4"])
	}
	r5, err := b.Q5.Evaluate(b.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Len() != want["Q5"] {
		t.Errorf("|Q5(D)| = %d, want %d", r5.Len(), want["Q5"])
	}
	r6, err := b.Q6.Evaluate(b.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r6.Len() != want["Q6"] {
		t.Errorf("|Q6(D)| = %d, want %d", r6.Len(), want["Q6"])
	}
}

func TestBaseballManagerJoinForQ3(t *testing.T) {
	b := NewBaseball()
	// Manager ⋈ Team (two tables) must work too: 200 manager rows all match.
	j, err := db.Join(b.DB, []string{BBManager, BBTeam})
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.Len() != 200 {
		t.Errorf("Manager⋈Team = %d, want 200", j.Rel.Len())
	}
}

func TestAdultShape(t *testing.T) {
	a := NewAdult()
	tab := a.DB.Table(AdultTable)
	// Paper §7.7: 5227 tuples.
	if tab.Len() != 5227 {
		t.Errorf("Adult = %d rows, want 5227", tab.Len())
	}
	if tab.Arity() != 13 {
		t.Errorf("Adult arity = %d, want 13", tab.Arity())
	}
	if err := a.DB.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Targets) != 3 {
		t.Fatalf("want 3 target queries")
	}
}

func TestAdultTargetsSelectOnlyPlantedRows(t *testing.T) {
	a := NewAdult()
	want := []int{5, 4, 6}
	for i, q := range a.Targets {
		r, err := q.Evaluate(a.DB)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != want[i] {
			t.Errorf("|%s(D)| = %d, want %d", q.Name, r.Len(), want[i])
		}
	}
}

func TestAdultDeterminism(t *testing.T) {
	a, b := NewAdult(), NewAdult()
	if a.DB.Table(AdultTable).Fingerprint() != b.DB.Table(AdultTable).Fingerprint() {
		t.Error("generation must be deterministic")
	}
}
