// Package datasets provides deterministic synthetic equivalents of the
// paper's evaluation datasets (§7.1, §7.7). The real data (a SQLShare
// biology database, the Lahman baseball archive, the 1994 Census Adult
// table) is not redistributable here, so each generator reproduces the
// *shape* the algorithms see: table arities and cardinalities, foreign-key
// join cardinalities, attribute types and the result cardinalities of the
// paper's queries Q1–Q6 (1, 6, 5, 14, 4 and 4 tuples). See DESIGN.md §2 for
// the substitution argument.
//
// All generation is seeded and deterministic: two calls produce identical
// databases.
package datasets

import (
	"fmt"
	"math/rand"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// Scientific mirrors the SQLShare biology database: PmTE_ALL_DE
// (3926 rows × 16 columns) holding differential-expression statistics under
// four nutrient conditions (Fe, P, Si, Urea), and Psemu1FL_RT (424 rows × 3
// columns) referencing it through a soft foreign key; their join has 417
// tuples (7 reference rows carry NULL gene ids, mirroring the dangling rows
// of the original data). Q1 and Q2 are the two actual biologist queries,
// with result cardinalities 1 and 6.
type Scientific struct {
	DB     *db.Database
	Q1, Q2 *algebra.Query
}

// Scientific table and column names (abbreviated from the originals).
const (
	SciMainTable = "PmTE_ALL_DE"
	SciRefTable  = "Psemu1FL_RT"
)

// NewScientific generates the dataset.
func NewScientific() *Scientific {
	rng := rand.New(rand.NewSource(20150901)) // deterministic

	main := relation.New(SciMainTable, relation.NewSchema(
		"gene_id", relation.KindString,
		"logFC_Fe", relation.KindFloat,
		"logFC_P", relation.KindFloat,
		"logFC_Si", relation.KindFloat,
		"logFC_Urea", relation.KindFloat,
		"PValue_Fe", relation.KindFloat,
		"PValue_P", relation.KindFloat,
		"PValue_Si", relation.KindFloat,
		"PValue_Urea", relation.KindFloat,
		"logCPM", relation.KindFloat,
		"LR_Fe", relation.KindFloat,
		"LR_P", relation.KindFloat,
		"FDR", relation.KindFloat,
		"cluster", relation.KindInt,
		"contig", relation.KindString,
		"strand", relation.KindString,
	))

	// Background rows: logFC_P/Si/Urea stay in (−0.95, 0.95) so they satisfy
	// neither Q1 (needs < −1) nor Q2 (needs > 1). logFC_Fe roams wider.
	const nMain = 3926
	for i := 0; i < nMain; i++ {
		main.Append(sciRow(rng, i, 0))
	}

	// Planted rows: referenced gene indexes [0,417) are the ones that join;
	// plant Q1's single satisfier and Q2's six satisfiers among them.
	plant := func(geneIdx int, profile int) {
		main.Tuples[geneIdx] = sciRow(rng, geneIdx, profile)
	}
	plant(41, 1) // Q1: |logFC_Fe| < 0.5, others < −1, one PValue < 0.05
	for _, gi := range []int{7, 83, 145, 220, 301, 399} {
		plant(gi, 2) // Q2: logFC_Fe < 1, P/Si/Urea > 1, one PValue < 0.05
	}

	ref := relation.New(SciRefTable, relation.NewSchema(
		"gene_id", relation.KindString,
		"rt_value", relation.KindFloat,
		"spgp", relation.KindString,
	))
	// 417 rows referencing the first 417 genes, 7 dangling rows with NULL
	// gene ids (soft foreign key; they drop out of the join).
	for i := 0; i < 417; i++ {
		ref.Append(relation.NewTuple(geneID(i), round3(rng.Float64()*30), fmt.Sprintf("sp%02d", rng.Intn(12))))
	}
	for i := 0; i < 7; i++ {
		ref.Append(relation.Tuple{relation.Null(),
			relation.Float(round3(rng.Float64() * 30)), relation.Str(fmt.Sprintf("sp%02d", rng.Intn(12)))})
	}

	d := db.New()
	d.MustAddTable(main)
	d.MustAddTable(ref)
	d.AddPrimaryKey(SciMainTable, "gene_id")
	d.AddForeignKey(SciRefTable, []string{"gene_id"}, SciMainTable, []string{"gene_id"})

	s := &Scientific{DB: d}
	s.Q1 = sciQ1()
	s.Q2 = sciQ2()
	return s
}

// sciRow synthesizes one gene row. profile 0 = background, 1 = Q1
// satisfier, 2 = Q2 satisfier.
func sciRow(rng *rand.Rand, idx, profile int) relation.Tuple {
	bg := func(span float64) float64 { return round3((rng.Float64()*2 - 1) * span) }
	logFe := bg(2.5)
	logP, logSi, logUrea := bg(0.9), bg(0.9), bg(0.9)
	pFe, pP := round3(0.05+rng.Float64()*0.9), round3(0.05+rng.Float64()*0.9)
	pSi, pUrea := round3(0.05+rng.Float64()*0.9), round3(0.05+rng.Float64()*0.9)
	switch profile {
	case 1:
		logFe = round3(rng.Float64()*0.8 - 0.4)  // |logFC_Fe| < 0.5
		logP = round3(-1.2 - rng.Float64()*0.8)  // < −1
		logSi = round3(-1.1 - rng.Float64()*0.8) // < −1
		logUrea = round3(-1.3 - rng.Float64())   // < −1
		pFe = round3(0.001 + rng.Float64()*0.04) // < 0.05
	case 2:
		logFe = round3(rng.Float64()*1.6 - 0.8) // < 1
		logP = round3(1.1 + rng.Float64()*0.9)  // > 1
		logSi = round3(1.2 + rng.Float64())     // > 1
		logUrea = round3(1.05 + rng.Float64())  // > 1
		pP = round3(0.001 + rng.Float64()*0.04) // < 0.05
	}
	return relation.NewTuple(
		geneID(idx), logFe, logP, logSi, logUrea, pFe, pP, pSi, pUrea,
		round3(rng.Float64()*12),  // logCPM
		round3(rng.Float64()*200), // LR_Fe
		round3(rng.Float64()*200), // LR_P
		round3(rng.Float64()),     // FDR
		rng.Intn(20),              // cluster
		fmt.Sprintf("ctg%04d", rng.Intn(500)),
		[]string{"+", "-"}[rng.Intn(2)],
	)
}

func geneID(i int) string { return fmt.Sprintf("Pm%05d", i) }

func round3(f float64) float64 { return float64(int(f*1000)) / 1000 }

// sciQ1 is the paper's Q1: a SELECT * over the join with conjunctive logFC
// bounds and a disjunction of PValue thresholds; |Q1(D)| = 1.
func sciQ1() *algebra.Query {
	m := SciMainTable
	conj := algebra.Conjunct{
		algebra.NewTerm(m+".logFC_Fe", algebra.OpLT, relation.Float(0.5)),
		algebra.NewTerm(m+".logFC_Fe", algebra.OpGT, relation.Float(-0.5)),
		algebra.NewTerm(m+".logFC_P", algebra.OpLT, relation.Float(-1)),
		algebra.NewTerm(m+".logFC_Si", algebra.OpLT, relation.Float(-1)),
		algebra.NewTerm(m+".logFC_Urea", algebra.OpLT, relation.Float(-1)),
	}
	var pred algebra.Predicate
	for _, pv := range []string{"PValue_Fe", "PValue_P", "PValue_Si", "PValue_Urea"} {
		c := append(algebra.Conjunct{}, conj...)
		c = append(c, algebra.NewTerm(m+"."+pv, algebra.OpLT, relation.Float(0.05)))
		pred = append(pred, c)
	}
	return &algebra.Query{
		Name:       "Q1",
		Tables:     []string{SciMainTable, SciRefTable},
		Projection: sciStarProjection(),
		Pred:       pred,
	}
}

// sciQ2 is the paper's Q2; |Q2(D)| = 6.
func sciQ2() *algebra.Query {
	m := SciMainTable
	conj := algebra.Conjunct{
		algebra.NewTerm(m+".logFC_Fe", algebra.OpLT, relation.Float(1)),
		algebra.NewTerm(m+".logFC_P", algebra.OpGT, relation.Float(1)),
		algebra.NewTerm(m+".logFC_Si", algebra.OpGT, relation.Float(1)),
		algebra.NewTerm(m+".logFC_Urea", algebra.OpGT, relation.Float(1)),
	}
	var pred algebra.Predicate
	for _, pv := range []string{"PValue_Fe", "PValue_P", "PValue_Si", "PValue_Urea"} {
		c := append(algebra.Conjunct{}, conj...)
		c = append(c, algebra.NewTerm(m+"."+pv, algebra.OpLT, relation.Float(0.05)))
		pred = append(pred, c)
	}
	return &algebra.Query{
		Name:       "Q2",
		Tables:     []string{SciMainTable, SciRefTable},
		Projection: sciStarProjection(),
		Pred:       pred,
	}
}

// sciStarProjection lists every joined column (the π* of the paper's Q1/Q2).
func sciStarProjection() []string {
	cols := []string{
		"gene_id", "logFC_Fe", "logFC_P", "logFC_Si", "logFC_Urea",
		"PValue_Fe", "PValue_P", "PValue_Si", "PValue_Urea",
		"logCPM", "LR_Fe", "LR_P", "FDR", "cluster", "contig", "strand",
	}
	var out []string
	for _, c := range cols {
		out = append(out, SciMainTable+"."+c)
	}
	for _, c := range []string{"gene_id", "rt_value", "spgp"} {
		out = append(out, SciRefTable+"."+c)
	}
	return out
}
