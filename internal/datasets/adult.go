package datasets

import (
	"math/rand"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// Adult mirrors the §7.7 user-study relation: a single census-like table of
// 5227 rows (the paper's extract of the 1994 Census "Adult" dataset) with
// mixed categorical and numeric attributes, plus the three synthetic target
// queries used in the study. Background data is constrained so each target
// query selects only its planted rows, keeping result sizes small and
// stable.
type Adult struct {
	DB      *db.Database
	Targets []*algebra.Query // U1, U2, U3
}

// AdultTable is the table name.
const AdultTable = "Adult"

// NewAdult generates the dataset.
func NewAdult() *Adult {
	rng := rand.New(rand.NewSource(19940601))

	workclasses := []string{"Private", "Self-emp", "Federal-gov", "Local-gov", "State-gov"}
	educations := []string{"HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate", "11th"}
	maritals := []string{"Married", "Never-married", "Divorced", "Widowed"}
	occupations := []string{"Tech-support", "Craft-repair", "Sales", "Exec-managerial",
		"Prof-specialty", "Machine-op", "Adm-clerical", "Farming-fishing"}
	races := []string{"White", "Black", "Asian-Pac", "Amer-Indian", "Other"}
	sexes := []string{"Male", "Female"}
	countries := []string{"United-States", "Mexico", "Philippines", "Germany", "Canada", "India"}

	rel := relation.New(AdultTable, relation.NewSchema(
		"id", relation.KindInt,
		"age", relation.KindInt,
		"workclass", relation.KindString,
		"education", relation.KindString,
		"education_num", relation.KindInt,
		"marital_status", relation.KindString,
		"occupation", relation.KindString,
		"race", relation.KindString,
		"sex", relation.KindString,
		"capital_gain", relation.KindInt,
		"hours_per_week", relation.KindInt,
		"native_country", relation.KindString,
		"income", relation.KindString,
	))

	const total = 5227
	const planted = 15
	// Row ids come from a seeded permutation so the planted rows do not get
	// contiguous ids — contiguous ids would let the query generator invent
	// id-range predicates no real user intends (and whose tuple-class
	// modifications could only violate the primary key).
	idPerm := rng.Perm(total)
	for i := 0; i < total-planted; i++ {
		age := 17 + rng.Intn(74) // 17..90
		wc := workclasses[rng.Intn(len(workclasses))]
		edu := educations[rng.Intn(len(educations))]
		occ := occupations[rng.Intn(len(occupations))]
		sex := sexes[rng.Intn(len(sexes))]
		hours := 10 + rng.Intn(70) // 10..79
		gain := 0
		if rng.Intn(10) == 0 {
			gain = rng.Intn(20000)
		}
		// Background constraints that reserve the target regions for the
		// planted rows (see type comment):
		if edu == "Doctorate" && hours > 55 {
			hours = 35 + rng.Intn(21) // U1 region: Doctorate ∧ hours>60
		}
		if age > 74 && gain > 5000 {
			gain = rng.Intn(5001) // U2 region: age>74 ∧ capital_gain>8000
		}
		if wc == "Federal-gov" && occ == "Tech-support" {
			sex = "Male" // U3 region: that combo with sex = Female
		}
		rel.Append(relation.NewTuple(
			idPerm[i]+1, age, wc, edu, 3+rng.Intn(14),
			maritals[rng.Intn(len(maritals))], occ,
			races[rng.Intn(len(races))], sex,
			gain, hours,
			countries[rng.Intn(len(countries))],
			[]string{"<=50K", ">50K"}[rng.Intn(10)/8],
		))
	}
	// Planted rows: 5 for U1, 4 for U2, 6 for U3.
	next := total - planted
	add := func(age int, wc, edu string, eduNum int, occ, sex string, gain, hours int) {
		rel.Append(relation.NewTuple(
			idPerm[next]+1, age, wc, edu, eduNum, "Married", occ, "White", sex,
			gain, hours, "United-States", ">50K"))
		next++
	}
	for i := 0; i < 5; i++ { // U1: Doctorate ∧ hours > 60
		add(35+i*3, "Private", "Doctorate", 16, "Prof-specialty", "Male", 0, 61+i*4)
	}
	for i := 0; i < 4; i++ { // U2: age > 74 ∧ capital_gain > 8000
		add(75+i*3, "Self-emp", "Bachelors", 13, "Exec-managerial", "Female", 8500+i*1000, 20+i*5)
	}
	for i := 0; i < 6; i++ { // U3: Federal-gov ∧ Tech-support ∧ Female
		add(28+i*5, "Federal-gov", "HS-grad", 9, "Tech-support", "Female", 0, 40)
	}

	d := db.New()
	d.MustAddTable(rel)
	d.AddPrimaryKey(AdultTable, "id")

	a := &Adult{DB: d}
	proj := func(cols ...string) []string {
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = AdultTable + "." + c
		}
		return out
	}
	a.Targets = []*algebra.Query{
		{
			Name:       "U1",
			Tables:     []string{AdultTable},
			Projection: proj("age", "occupation", "hours_per_week"),
			Pred: algebra.Predicate{algebra.Conjunct{
				algebra.NewTerm(AdultTable+".education", algebra.OpEQ, relation.Str("Doctorate")),
				algebra.NewTerm(AdultTable+".hours_per_week", algebra.OpGT, relation.Int(60)),
			}},
		},
		{
			Name:       "U2",
			Tables:     []string{AdultTable},
			Projection: proj("age", "occupation", "capital_gain"),
			Pred: algebra.Predicate{algebra.Conjunct{
				algebra.NewTerm(AdultTable+".age", algebra.OpGT, relation.Int(74)),
				algebra.NewTerm(AdultTable+".capital_gain", algebra.OpGT, relation.Int(8000)),
			}},
		},
		{
			Name:       "U3",
			Tables:     []string{AdultTable},
			Projection: proj("age", "education", "hours_per_week"),
			Pred: algebra.Predicate{algebra.Conjunct{
				algebra.NewTerm(AdultTable+".workclass", algebra.OpEQ, relation.Str("Federal-gov")),
				algebra.NewTerm(AdultTable+".occupation", algebra.OpEQ, relation.Str("Tech-support")),
				algebra.NewTerm(AdultTable+".sex", algebra.OpEQ, relation.Str("Female")),
			}},
		},
	}
	return a
}
