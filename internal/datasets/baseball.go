package datasets

import (
	"fmt"
	"math/rand"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// Baseball mirrors the Lahman baseball subset of §7.1: Manager
// (200 rows × 11 columns), Team (252 rows × 29 columns) and Batting
// (6977 rows × 15 columns), with foreign keys Manager→Team and Batting→Team
// on (teamID, year); the three-way foreign-key join has 8810 tuples (some
// team-seasons had two managers, fanning batting rows out). Q3–Q6 are the
// paper's four synthetic queries with result cardinalities 5, 14, 4 and 4.
//
// Column renames vs. Lahman (documented in DESIGN.md): 2B→doubles,
// 3B→triples, so every identifier survives a SQL parser.
type Baseball struct {
	DB                 *db.Database
	Q3, Q4, Q5, Q6     *algebra.Query
	TeamYears          int // 252
	CoveredSingle      int // team-years with exactly one manager
	CoveredDouble      int // team-years with two managers
	ExpectedJoinedSize int // 8810
}

// Baseball table names.
const (
	BBManager = "Manager"
	BBTeam    = "Team"
	BBBatting = "Batting"
)

const (
	bbTeams     = 28
	bbYears     = 9 // 1979..1987
	bbFirstYear = 1979
)

var bbTeamNames = []string{
	"ATL", "BAL", "BOS", "CAL", "CHA", "CIN", "CLE", "DET", "HOU", "KCA",
	"LAN", "MIL", "MIN", "ML4", "MON", "NYA", "NYN", "OAK", "PHI", "PIT",
	"SDN", "SEA", "SFN", "SLN", "TEX", "TOR", "WS1", "CHN",
}

// NewBaseball generates the dataset.
func NewBaseball() *Baseball {
	rng := rand.New(rand.NewSource(19871025))

	// ---- Team: 252 rows, 29 columns --------------------------------------
	team := relation.New(BBTeam, relation.NewSchema(
		"teamID", relation.KindString, "year", relation.KindInt,
		"lgID", relation.KindString, "divID", relation.KindString,
		"franchID", relation.KindString, "name", relation.KindString,
		"park", relation.KindString, "rank", relation.KindInt,
		"G", relation.KindInt, "Ghome", relation.KindInt,
		"W", relation.KindInt, "L", relation.KindInt,
		"R", relation.KindInt, "AB", relation.KindInt,
		"H", relation.KindInt, "doubles", relation.KindInt,
		"triples", relation.KindInt, "HR", relation.KindInt,
		"BB", relation.KindInt, "SO", relation.KindInt,
		"SB", relation.KindInt, "RA", relation.KindInt,
		"ER", relation.KindInt, "ERA", relation.KindFloat,
		"IP", relation.KindInt, "HA", relation.KindInt,
		"BBA", relation.KindInt, "SOA", relation.KindInt,
		"attendance", relation.KindInt,
	))
	for t := 0; t < bbTeams; t++ {
		for y := 0; y < bbYears; y++ {
			w := 60 + rng.Intn(45)
			team.Append(relation.NewTuple(
				bbTeamNames[t], bbFirstYear+y,
				[]string{"AL", "NL"}[t%2], []string{"E", "W"}[rng.Intn(2)],
				bbTeamNames[t], "Club "+bbTeamNames[t],
				fmt.Sprintf("%s Park", bbTeamNames[t]), 1+rng.Intn(7),
				162, 81, w, 162-w,
				600+rng.Intn(300), 5300+rng.Intn(400),
				1300+rng.Intn(250), 200+rng.Intn(120),
				25+rng.Intn(40), 80+rng.Intn(120),
				400+rng.Intn(250), 700+rng.Intn(500),
				60+rng.Intn(120), 600+rng.Intn(300),
				550+rng.Intn(250), round3(3+rng.Float64()*2),
				4000+rng.Intn(800), 1300+rng.Intn(250),
				400+rng.Intn(200), 700+rng.Intn(400),
				1000000+rng.Intn(2000000),
			))
		}
	}
	// Q6 needs controlled Team.IP / Team.BBA on the team-years where
	// esaskni01 plays (team-year indexes 110..114).
	ipIdx, bbaIdx := team.Schema.MustIndexOf("IP"), team.Schema.MustIndexOf("BBA")
	for i, vals := range map[int][2]int{
		110: {4500, 500}, // IP > 4380                       -> satisfies
		111: {4300, 450}, // IP ≤ 4380 ∧ BBA ≤ 485           -> satisfies
		112: {4400, 520}, // IP > 4380                       -> satisfies
		113: {4200, 480}, // IP ≤ 4380 ∧ BBA ≤ 485           -> satisfies
		114: {4100, 550}, // IP ≤ 4380 ∧ BBA > 485           -> fails
	} {
		team.Tuples[i][ipIdx] = relation.Int(int64(vals[0]))
		team.Tuples[i][bbaIdx] = relation.Int(int64(vals[1]))
	}

	// ---- Manager: 200 rows, 11 columns -----------------------------------
	// Team-year coverage: indexes 0..24 have two managers, 25..174 one,
	// 175..251 none. 25·2 + 150·1 = 200 managers.
	manager := relation.New(BBManager, relation.NewSchema(
		"managerID", relation.KindString, "year", relation.KindInt,
		"teamID", relation.KindString, "lgID", relation.KindString,
		"inseason", relation.KindInt, "G", relation.KindInt,
		"W", relation.KindInt, "L", relation.KindInt,
		"rank", relation.KindInt, "plyrMgr", relation.KindString,
		"half", relation.KindInt,
	))
	mgrSeq := 0
	addManager := func(ty, inseason int) {
		t, y := ty/bbYears, ty%bbYears
		g := 162 / (inseason + 1)
		w := g / 3 * 2
		manager.Append(relation.NewTuple(
			fmt.Sprintf("mgr%03d", mgrSeq), bbFirstYear+y, bbTeamNames[t],
			[]string{"AL", "NL"}[t%2], inseason+1, g, w, g-w,
			1+rng.Intn(7), []string{"N", "Y"}[rng.Intn(10)/9], 1,
		))
		mgrSeq++
	}
	for ty := 0; ty < 25; ty++ {
		addManager(ty, 0)
		addManager(ty, 1)
	}
	for ty := 25; ty < 175; ty++ {
		addManager(ty, 0)
	}

	// ---- Batting: 6977 rows, 15 columns ----------------------------------
	// Quotas per team-year: double-manager 80 each (2000 rows ×2 = 4000
	// joined), single 32/33 each (4810 ×1), uncovered 2/3 each (167, drop
	// out of the manager join): 4810 + 4000 = 8810 joined tuples.
	batting := relation.New(BBBatting, relation.NewSchema(
		"playerID", relation.KindString, "year", relation.KindInt,
		"teamID", relation.KindString, "stint", relation.KindInt,
		"lgID", relation.KindString, "G", relation.KindInt,
		"AB", relation.KindInt, "R", relation.KindInt,
		"H", relation.KindInt, "doubles", relation.KindInt,
		"triples", relation.KindInt, "HR", relation.KindInt,
		"RBI", relation.KindInt, "SB", relation.KindInt,
		"BB", relation.KindInt,
	))
	quota := func(ty int) int {
		switch {
		case ty < 25:
			return 80
		case ty < 175:
			if ty < 35 {
				return 33
			}
			return 32
		default:
			if ty < 188 {
				return 3
			}
			return 2
		}
	}
	tyRowStart := map[int]int{}
	for ty := 0; ty < bbTeams*bbYears; ty++ {
		tyRowStart[ty] = batting.Len()
		t, y := ty/bbYears, ty%bbYears
		for k := 0; k < quota(ty); k++ {
			pid := fmt.Sprintf("p%04d", (ty*7+k*13)%800)
			batting.Append(relation.NewTuple(
				pid, bbFirstYear+y, bbTeamNames[t], 1,
				[]string{"AL", "NL"}[t%2], 20+rng.Intn(142),
				50+rng.Intn(550), rng.Intn(120), 10+rng.Intn(190),
				4+rng.Intn(46), rng.Intn(15), rng.Intn(41),
				rng.Intn(130), rng.Intn(60), rng.Intn(100),
			))
		}
	}

	// Planted players (all on single-manager team-years so multiplicities
	// are exact). plant overwrites one generic row of the team-year.
	// Planted triples values sit above the background range (0..14) so the
	// projected tuples of Q4–Q6 are collision-free and anchor the query
	// generator, mirroring the distinctive stat lines of the real players.
	type plantSpec struct {
		ty           int
		pid          string
		hr, dbl, tpl int
	}
	plants := []plantSpec{
		// Q4: 4+4+3+3 = 14 joined rows.
		{60, "sotoma01", 10, 20, 15}, {61, "sotoma01", 12, 22, 16}, {62, "sotoma01", 9, 18, 17}, {63, "sotoma01", 11, 25, 18},
		{70, "brownto05", 3, 15, 15}, {71, "brownto05", 5, 17, 16}, {72, "brownto05", 2, 12, 17}, {73, "brownto05", 4, 19, 18},
		{80, "pariske01", 6, 21, 15}, {81, "pariske01", 7, 23, 16}, {82, "pariske01", 8, 26, 17},
		{90, "welshch01", 1, 9, 15}, {91, "welshch01", 2, 11, 16}, {92, "welshch01", 3, 13, 17},
		// Q5: rosepe01, HR>1 ∧ doubles≤3 in four seasons, fails in two.
		{100, "rosepe01", 5, 2, 15}, {101, "rosepe01", 3, 1, 16}, {102, "rosepe01", 7, 3, 17}, {103, "rosepe01", 4, 0, 18},
		{104, "rosepe01", 0, 2, 19}, // HR not > 1
		{105, "rosepe01", 6, 9, 19}, // doubles not ≤ 3
		// Q6: esaskni01 on team-years 110..114 (Team.IP/BBA control above).
		{110, "esaskni01", 14, 20, 15}, {111, "esaskni01", 15, 21, 16},
		{112, "esaskni01", 16, 22, 17}, {113, "esaskni01", 17, 23, 18},
		{114, "esaskni01", 18, 24, 19},
	}
	pidIdx := batting.Schema.MustIndexOf("playerID")
	hrIdx := batting.Schema.MustIndexOf("HR")
	dblIdx := batting.Schema.MustIndexOf("doubles")
	tplIdx := batting.Schema.MustIndexOf("triples")
	used := map[int]int{}
	for _, p := range plants {
		row := tyRowStart[p.ty] + used[p.ty]
		used[p.ty]++
		batting.Tuples[row][pidIdx] = relation.Str(p.pid)
		batting.Tuples[row][hrIdx] = relation.Int(int64(p.hr))
		batting.Tuples[row][dblIdx] = relation.Int(int64(p.dbl))
		batting.Tuples[row][tplIdx] = relation.Int(int64(p.tpl))
	}

	d := db.New()
	d.MustAddTable(manager)
	d.MustAddTable(team)
	d.MustAddTable(batting)
	d.AddPrimaryKey(BBTeam, "teamID", "year")
	d.AddForeignKey(BBManager, []string{"teamID", "year"}, BBTeam, []string{"teamID", "year"})
	d.AddForeignKey(BBBatting, []string{"teamID", "year"}, BBTeam, []string{"teamID", "year"})

	b := &Baseball{
		DB: d, TeamYears: bbTeams * bbYears,
		CoveredSingle: 150, CoveredDouble: 25, ExpectedJoinedSize: 8810,
	}
	b.Q3 = bbQ3()
	b.Q4 = bbQ4()
	b.Q5 = bbQ5()
	b.Q6 = bbQ6()
	return b
}

// bbQ3 is the paper's Q3: managers of CIN between 1983 and 1987 (5 tuples).
func bbQ3() *algebra.Query {
	return &algebra.Query{
		Name:       "Q3",
		Tables:     []string{BBManager, BBTeam},
		Projection: []string{"Manager.managerID", "Manager.year", "Team.R"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("Team.teamID", algebra.OpEQ, relation.Str("CIN")),
			algebra.NewTerm("Team.year", algebra.OpGT, relation.Int(1982)),
			algebra.NewTerm("Team.year", algebra.OpLE, relation.Int(1987)),
		}},
	}
}

// bbQ4 is the paper's Q4: a disjunction of four playerID equalities over the
// three-way join (14 tuples).
func bbQ4() *algebra.Query {
	var pred algebra.Predicate
	for _, pid := range []string{"sotoma01", "brownto05", "pariske01", "welshch01"} {
		pred = append(pred, algebra.Conjunct{
			algebra.NewTerm("Batting.playerID", algebra.OpEQ, relation.Str(pid))})
	}
	return &algebra.Query{
		Name:       "Q4",
		Tables:     []string{BBManager, BBTeam, BBBatting},
		Projection: []string{"Manager.managerID", "Manager.year", "Batting.doubles"},
		Pred:       pred,
	}
}

// bbQ5 is the paper's Q5: rosepe01 seasons with HR>1 and doubles≤3 (4
// tuples).
func bbQ5() *algebra.Query {
	return &algebra.Query{
		Name:       "Q5",
		Tables:     []string{BBManager, BBTeam, BBBatting},
		Projection: []string{"Manager.managerID", "Manager.year", "Batting.HR"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("Batting.playerID", algebra.OpEQ, relation.Str("rosepe01")),
			algebra.NewTerm("Batting.HR", algebra.OpGT, relation.Int(1)),
			algebra.NewTerm("Batting.doubles", algebra.OpLE, relation.Int(3)),
		}},
	}
}

// bbQ6 is the paper's Q6: esaskni01 with a disjunctive team-pitching
// condition (4 tuples).
func bbQ6() *algebra.Query {
	pid := algebra.NewTerm("Batting.playerID", algebra.OpEQ, relation.Str("esaskni01"))
	return &algebra.Query{
		Name:       "Q6",
		Tables:     []string{BBManager, BBTeam, BBBatting},
		Projection: []string{"Manager.managerID", "Manager.year", "Batting.triples"},
		Pred: algebra.Predicate{
			algebra.Conjunct{pid, algebra.NewTerm("Team.IP", algebra.OpGT, relation.Int(4380))},
			algebra.Conjunct{pid,
				algebra.NewTerm("Team.IP", algebra.OpLE, relation.Int(4380)),
				algebra.NewTerm("Team.BBA", algebra.OpLE, relation.Int(485))},
		},
	}
}
