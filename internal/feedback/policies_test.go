package feedback

import (
	"errors"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// distinctFixture builds a one-table database and a DISTINCT target whose
// result on it is {a, b}.
func distinctFixture(t *testing.T) (*db.Database, *relation.Relation, *algebra.Query) {
	t.Helper()
	d := db.New()
	tbl := relation.New("T", relation.NewSchema("name", relation.KindString))
	tbl.Append(relation.NewTuple("a"), relation.NewTuple("a"), relation.NewTuple("b"))
	d.MustAddTable(tbl)
	q := &algebra.Query{Tables: []string{"T"}, Projection: []string{"T.name"}, Distinct: true}
	r, err := q.Evaluate(d)
	if err != nil {
		t.Fatalf("fixture target: %v", err)
	}
	return d, r, q
}

// stubOracle always answers a fixed choice.
type stubOracle struct {
	choice int
	ok     bool
}

func (s stubOracle) Choose(View) (int, bool, error) { return s.choice, s.ok, nil }

func viewWithResults(k int) View {
	rs := make([]*relation.Relation, k)
	gs := make([][]int, k)
	for i := range rs {
		rs[i] = relation.New("R", relation.NewSchema("a", relation.KindInt))
		gs[i] = []int{i}
	}
	return View{Results: rs, Groups: gs}
}

func TestNoisyRateZeroIsTransparent(t *testing.T) {
	n := NewNoisy(stubOracle{choice: 2, ok: true}, 0, 1)
	for i := 0; i < 50; i++ {
		c, ok, err := n.Choose(viewWithResults(4))
		if err != nil || !ok || c != 2 {
			t.Fatalf("rate 0 flipped the inner choice: %d %v %v", c, ok, err)
		}
	}
}

func TestNoisyRateOneAlwaysWrong(t *testing.T) {
	n := NewNoisy(stubOracle{choice: 1, ok: true}, 1, 2)
	for i := 0; i < 100; i++ {
		c, ok, err := n.Choose(viewWithResults(3))
		if err != nil {
			t.Fatalf("Choose: %v", err)
		}
		if ok && c == 1 {
			t.Fatal("rate 1 returned the inner (correct) choice")
		}
		if ok && (c < 0 || c >= 3) {
			t.Fatalf("choice %d out of range", c)
		}
	}
}

func TestNoisySingleResultFlipsToNone(t *testing.T) {
	n := NewNoisy(stubOracle{choice: 0, ok: true}, 1, 3)
	if _, ok, err := n.Choose(viewWithResults(1)); err != nil || ok {
		t.Fatalf("want ok=false on single-result flip, got ok=%v err=%v", ok, err)
	}
}

func TestNoisyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		n := NewNoisy(stubOracle{choice: 0, ok: true}, 0.5, seed)
		var out []int
		for i := 0; i < 32; i++ {
			c, ok, _ := n.Choose(viewWithResults(4))
			if !ok {
				c = -1
			}
			out = append(out, c)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAbandoningStopsAfterBudget(t *testing.T) {
	a := &Abandoning{Inner: stubOracle{choice: 0, ok: true}, After: 2}
	for i := 0; i < 2; i++ {
		if _, _, err := a.Choose(viewWithResults(2)); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if _, _, err := a.Choose(viewWithResults(2)); !errors.Is(err, ErrAbandoned) {
		t.Fatalf("want ErrAbandoned, got %v", err)
	}
}

// TestTargetPrefersExactMatch: a DISTINCT target must pick the block whose
// materialised result is identical to its own collapsed result, not a
// bag-semantics block that merely has the same distinct tuple set (the
// regression the simulation harness's invariants caught).
func TestTargetPrefersExactMatch(t *testing.T) {
	d, r, q := distinctFixture(t)
	_ = r
	// Bag block {a, a, b}; exact block {a, b}.
	bag := relation.New("R1", relation.NewSchema("name", relation.KindString))
	bag.Append(relation.NewTuple("a"), relation.NewTuple("a"), relation.NewTuple("b"))
	exact := relation.New("R2", relation.NewSchema("name", relation.KindString))
	exact.Append(relation.NewTuple("a"), relation.NewTuple("b"))
	v := View{
		NewDB:   d,
		Results: []*relation.Relation{bag, exact},
		Groups:  [][]int{{0}, {1}},
	}
	choice, ok, err := Target{Query: q}.Choose(v)
	if err != nil || !ok {
		t.Fatalf("Choose: ok=%v err=%v", ok, err)
	}
	if choice != 1 {
		t.Fatalf("chose block %d, want the exact match (1)", choice)
	}
}
