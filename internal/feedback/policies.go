package feedback

import (
	"errors"
	"math/rand"
)

// ErrAbandoned is returned by Abandoning once its round allowance is spent:
// the simulated user walks away mid-session. Drivers treat it as an
// abandonment signal, not a failure (internal/simulate counts the session
// abandoned; a service would evict it via TTL).
var ErrAbandoned = errors.New("feedback: user abandoned the session")

// Noisy wraps an oracle with a seeded error model: with probability Rate it
// replaces the inner choice with a uniformly random *wrong* answer (a
// different result index, or "none of these" when only one result is
// shown). It models users who mis-read a round — the failure mode the §7.7
// user study worried about — and lets the simulation harness measure how
// winnowing degrades under unreliable feedback.
type Noisy struct {
	Inner Oracle
	Rate  float64
	rng   *rand.Rand
}

// NewNoisy builds a noisy wrapper with its own deterministic random stream.
func NewNoisy(inner Oracle, rate float64, seed int64) *Noisy {
	return &Noisy{Inner: inner, Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Oracle.
func (n *Noisy) Choose(v View) (int, bool, error) {
	choice, ok, err := n.Inner.Choose(v)
	if err != nil {
		return choice, ok, err
	}
	if n.rng.Float64() >= n.Rate {
		return choice, ok, nil
	}
	k := len(v.Results)
	if !ok || k <= 1 {
		// The inner oracle said "none of these" (flip to an arbitrary claim)
		// or there is no other index to mis-pick: answer "none of these".
		if !ok && k > 0 {
			return n.rng.Intn(k), true, nil
		}
		return 0, false, nil
	}
	j := n.rng.Intn(k - 1)
	if j >= choice {
		j++
	}
	return j, true, nil
}

// Abandoning wraps an oracle with a patience budget: it answers After
// rounds normally, then returns ErrAbandoned. After <= 0 abandons on the
// first round.
type Abandoning struct {
	Inner    Oracle
	After    int
	answered int
}

// Choose implements Oracle.
func (a *Abandoning) Choose(v View) (int, bool, error) {
	if a.answered >= a.After {
		return 0, false, ErrAbandoned
	}
	a.answered++
	return a.Inner.Choose(v)
}
