// Package feedback implements the paper's Result Feedback module (§2): it
// presents the modified database D' and the candidate results R₁..Rₖ to a
// feedback source as differences from the original pair (D, R) — the
// Δ(D, Rᵢ) of Figure 1 — and collects the choice of the correct result.
//
// Besides the interactive oracle, the package provides the two automated
// feedback policies the paper's experiments use (§7.2): worst-case feedback
// (always pick the largest query subset) and target feedback (always pick
// the subset containing the target query), plus a simulated user with a
// response-time model for reproducing the §7.7 user study.
package feedback

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/editdist"
	"qfe/internal/relation"
)

// View is everything one feedback round presents: the modified database (as
// edits over D), and the k distinct candidate results with the queries that
// produce them.
type View struct {
	Iteration int
	BaseDB    *db.Database
	BaseR     *relation.Relation
	NewDB     *db.Database
	Edits     []db.CellEdit
	Results   []*relation.Relation
	Groups    [][]int // query indexes per result
	Queries   []*algebra.Query
}

// Oracle chooses which presented result is the output of the user's target
// query on the modified database. Returning ok=false means "none of these
// results is correct" — the target query is outside the current candidate
// set (Algorithm 1's unstated escape hatch, §2).
type Oracle interface {
	Choose(v View) (choice int, ok bool, err error)
}

// WorstCase always selects the largest query subset, the paper's default
// automated policy "to examine worst-case behavior" (§7). Ties resolve to
// the first.
type WorstCase struct{}

// Choose implements Oracle.
func (WorstCase) Choose(v View) (int, bool, error) {
	best, size := -1, -1
	for i, g := range v.Groups {
		if len(g) > size {
			best, size = i, len(g)
		}
	}
	if best < 0 {
		return 0, false, errors.New("feedback: empty partition")
	}
	return best, true, nil
}

// Target follows a known target query: it evaluates the target on D' and
// picks the result block with the matching fingerprint. This reproduces the
// paper's "automated result feedback that always chooses the query subset
// that contains the target query".
type Target struct {
	Query *algebra.Query
}

// Choose implements Oracle. An exact (bag) match is preferred: the target's
// true result, as the user would see it printed, including multiplicities.
// For DISTINCT targets a set-level match is the fallback — a block
// materialised under bag semantics can be set-equal to the target's
// collapsed result without being identical, and picking such a block over
// an exact match would follow a different query than the user's (the
// simulation harness's invariant checks caught exactly that misstep).
func (t Target) Choose(v View) (int, bool, error) {
	want, err := t.Query.Evaluate(v.NewDB)
	if err != nil {
		return 0, false, fmt.Errorf("feedback: evaluating target: %w", err)
	}
	wantFP := want.Fingerprint()
	for i, r := range v.Results {
		if r.Fingerprint() == wantFP {
			return i, true, nil
		}
	}
	if t.Query.Distinct {
		wantSet := want.SetFingerprint()
		for i, r := range v.Results {
			if r.SetFingerprint() == wantSet {
				return i, true, nil
			}
		}
	}
	return 0, false, nil // target's result not among the candidates
}

// Interactive prompts a human on Out and reads the chosen result number
// from In. The presentation follows the paper: differences only.
type Interactive struct {
	In  io.Reader
	Out io.Writer
}

// Choose implements Oracle.
func (ia Interactive) Choose(v View) (int, bool, error) {
	w := ia.Out
	fmt.Fprintf(w, "\n=== Iteration %d ===\n", v.Iteration)
	fmt.Fprintf(w, "Database changes (everything else is unchanged):\n%s", FormatEdits(v.BaseDB, v.Edits))
	for i, r := range v.Results {
		fmt.Fprintf(w, "\n[%d] Result %d differs from your original result by:\n%s",
			i+1, i+1, FormatResultDelta(v.BaseR, r))
	}
	fmt.Fprintf(w, "\nWhich result would your query produce on the modified database?\n")
	fmt.Fprintf(w, "Enter 1-%d, or 0 if none: ", len(v.Results))
	sc := bufio.NewScanner(ia.In)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		n, err := strconv.Atoi(text)
		if err != nil || n < 0 || n > len(v.Results) {
			fmt.Fprintf(w, "Please enter a number between 0 and %d: ", len(v.Results))
			continue
		}
		if n == 0 {
			return 0, false, nil
		}
		return n - 1, true, nil
	}
	if err := sc.Err(); err != nil {
		return 0, false, err
	}
	return 0, false, io.ErrUnexpectedEOF
}

// FormatEdits renders D' as boxed differences from D, the way the paper
// displays modified databases (Example 1.1 shows only Bob's changed salary).
func FormatEdits(base *db.Database, edits []db.CellEdit) string {
	var b strings.Builder
	for _, e := range edits {
		t := base.Table(e.Table)
		old := "?"
		if t != nil {
			if ci := t.Schema.IndexOf(e.Column); ci >= 0 && e.Row < t.Len() {
				old = t.Tuples[e.Row][ci].String()
			}
		}
		fmt.Fprintf(&b, "  %s row %d: %s = [%s]  (was %s)\n", e.Table, e.Row+1, e.Column, e.Value, old)
	}
	if len(edits) == 0 {
		b.WriteString("  (no changes)\n")
	}
	return b.String()
}

// FormatResultDelta renders Rᵢ as a minimal edit script against R — the
// Δ(D, Rᵢ) presentation that reduces the user's reading effort (§2).
func FormatResultDelta(base, ri *relation.Relation) string {
	ops, cost := editdist.Script(base, ri)
	if cost == 0 {
		return "  (identical to your original result)\n"
	}
	var b strings.Builder
	for _, op := range ops {
		switch op.Kind {
		case editdist.OpModify:
			fmt.Fprintf(&b, "  ~ row %d: %s %s -> %s\n",
				op.RowA+1, base.Schema[op.Col].Name, op.From, op.To)
		case editdist.OpDelete:
			fmt.Fprintf(&b, "  - row %d: %s\n", op.RowA+1, base.Tuples[op.RowA])
		case editdist.OpInsert:
			fmt.Fprintf(&b, "  + %s\n", ri.Tuples[op.RowB])
		}
	}
	return b.String()
}
