package feedback

import (
	"strings"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

func exampleView(t *testing.T) View {
	t.Helper()
	d := db.New()
	emp := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	emp.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(emp)

	edits := []db.CellEdit{{Table: "Employee", Row: 1, Column: "salary", Value: relation.Int(3900)}}
	newDB, err := d.ApplyEdits(edits)
	if err != nil {
		t.Fatal(err)
	}

	baseR := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	r1 := baseR.Clone() // unchanged (Q1, Q3)
	r2 := relation.New("R", baseR.Schema).Append(relation.NewTuple("Darren"))

	mk := func(name string, term algebra.Term) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred:       algebra.Predicate{algebra.Conjunct{term}}}
	}
	queries := []*algebra.Query{
		mk("Q1", algebra.NewTerm("Employee.gender", algebra.OpEQ, relation.Str("M"))),
		mk("Q2", algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))),
		mk("Q3", algebra.NewTerm("Employee.dept", algebra.OpEQ, relation.Str("IT"))),
	}
	return View{
		Iteration: 1,
		BaseDB:    d,
		BaseR:     baseR,
		NewDB:     newDB,
		Edits:     edits,
		Results:   []*relation.Relation{r1, r2},
		Groups:    [][]int{{0, 2}, {1}},
		Queries:   queries,
	}
}

func TestWorstCaseChoosesLargestSubset(t *testing.T) {
	v := exampleView(t)
	choice, ok, err := WorstCase{}.Choose(v)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if choice != 0 {
		t.Errorf("worst-case choice = %d, want 0 (the {Q1,Q3} block)", choice)
	}
	if _, ok, _ := (WorstCase{}).Choose(View{}); ok {
		t.Error("empty view should not produce a choice")
	}
}

func TestTargetFollowsTargetQuery(t *testing.T) {
	v := exampleView(t)
	// Target = Q2 (salary > 4000): on D1 Bob drops out, so result r2.
	choice, ok, err := Target{Query: v.Queries[1]}.Choose(v)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if choice != 1 {
		t.Errorf("target choice = %d, want 1", choice)
	}
	// Target = Q1: result unchanged, block 0.
	choice, ok, _ = Target{Query: v.Queries[0]}.Choose(v)
	if !ok || choice != 0 {
		t.Errorf("target Q1 choice = %d ok=%v, want 0 true", choice, ok)
	}
}

func TestTargetOutsideCandidates(t *testing.T) {
	v := exampleView(t)
	// A target whose result on D1 matches no block: name = 'Alice'.
	alien := &algebra.Query{Tables: []string{"Employee"}, Projection: []string{"Employee.name"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("Employee.name", algebra.OpEQ, relation.Str("Alice"))}}}
	_, ok, err := Target{Query: alien}.Choose(v)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("target outside candidates must report ok=false")
	}
}

func TestInteractiveOracle(t *testing.T) {
	v := exampleView(t)
	var out strings.Builder
	ia := Interactive{In: strings.NewReader("2\n"), Out: &out}
	choice, ok, err := ia.Choose(v)
	if err != nil || !ok || choice != 1 {
		t.Fatalf("choice=%d ok=%v err=%v", choice, ok, err)
	}
	rendered := out.String()
	for _, want := range []string{"Iteration 1", "salary", "3900", "was 4200", "Bob"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("prompt missing %q:\n%s", want, rendered)
		}
	}
	// "0" means none of the results.
	ia = Interactive{In: strings.NewReader("0\n"), Out: &strings.Builder{}}
	_, ok, err = ia.Choose(v)
	if err != nil || ok {
		t.Errorf("0 should mean none: ok=%v err=%v", ok, err)
	}
	// Garbage then a valid answer.
	ia = Interactive{In: strings.NewReader("x\n9\n1\n"), Out: &strings.Builder{}}
	choice, ok, err = ia.Choose(v)
	if err != nil || !ok || choice != 0 {
		t.Errorf("retry path: choice=%d ok=%v err=%v", choice, ok, err)
	}
	// EOF without an answer.
	ia = Interactive{In: strings.NewReader(""), Out: &strings.Builder{}}
	if _, _, err := ia.Choose(v); err == nil {
		t.Error("EOF should error")
	}
}

func TestFormatEdits(t *testing.T) {
	v := exampleView(t)
	s := FormatEdits(v.BaseDB, v.Edits)
	if !strings.Contains(s, "Employee row 2: salary = [3900]  (was 4200)") {
		t.Errorf("FormatEdits = %q", s)
	}
	if FormatEdits(v.BaseDB, nil) != "  (no changes)\n" {
		t.Error("empty edits should render placeholder")
	}
}

func TestFormatResultDelta(t *testing.T) {
	v := exampleView(t)
	if got := FormatResultDelta(v.BaseR, v.Results[0]); !strings.Contains(got, "identical") {
		t.Errorf("identical delta = %q", got)
	}
	got := FormatResultDelta(v.BaseR, v.Results[1])
	if !strings.Contains(got, "- row 1") || !strings.Contains(got, "Bob") {
		t.Errorf("delta should show Bob's removal, got %q", got)
	}
}

func TestSimulatedUserAccountsTime(t *testing.T) {
	v := exampleView(t)
	u := NewSimulatedUser(Target{Query: v.Queries[1]})
	choice, ok, err := u.Choose(v)
	if err != nil || !ok || choice != 1 {
		t.Fatalf("choice=%d ok=%v err=%v", choice, ok, err)
	}
	if u.Rounds != 1 {
		t.Errorf("rounds = %d", u.Rounds)
	}
	// 1 edit * 3s + 1 result-delta cell * 1.5s + base 2s = 6.5s.
	if got := u.Responded.Seconds(); got < 6 || got > 7 {
		t.Errorf("simulated response = %vs, want ≈6.5s", got)
	}
	// A second round accumulates.
	if _, _, err := u.Choose(v); err != nil {
		t.Fatal(err)
	}
	if u.Rounds != 2 || u.Responded.Seconds() < 12 {
		t.Errorf("accumulation broken: rounds=%d time=%v", u.Rounds, u.Responded)
	}
}
