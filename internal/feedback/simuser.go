package feedback

import (
	"time"

	"qfe/internal/editdist"
)

// SimulatedUser models a human participant for the §7.7 user study: it
// follows the target query (perfect accuracy, as all three participants
// succeeded) but charges simulated response time proportional to the amount
// of new information in the round — the database changes shown plus the
// result deltas the user must read to decide.
//
// The defaults are calibrated to the paper's observations: responses ranged
// from 2 s to 85 s and user time dominated (~92.4% of the total), so the
// per-cell cost is a few seconds.
type SimulatedUser struct {
	Target Target
	// BaseSeconds is charged every round (orienting, reading the prompt).
	BaseSeconds float64
	// PerDBCellSeconds is charged per modified database cell shown.
	PerDBCellSeconds float64
	// PerResultCellSeconds is charged per result-delta edit unit across all
	// presented results.
	PerResultCellSeconds float64

	// Responded accumulates the simulated response time.
	Responded time.Duration
	// Rounds counts feedback rounds answered.
	Rounds int
}

// NewSimulatedUser returns a participant with the calibrated defaults.
func NewSimulatedUser(t Target) *SimulatedUser {
	return &SimulatedUser{
		Target:               t,
		BaseSeconds:          2.0,
		PerDBCellSeconds:     3.0,
		PerResultCellSeconds: 1.5,
	}
}

// Choose implements Oracle: it answers like Target while accounting the
// simulated reading/deciding time.
func (u *SimulatedUser) Choose(v View) (int, bool, error) {
	effort := u.BaseSeconds + u.PerDBCellSeconds*float64(len(v.Edits))
	for _, r := range v.Results {
		effort += u.PerResultCellSeconds * float64(editdist.MinEdit(v.BaseR, r))
	}
	u.Responded += time.Duration(effort * float64(time.Second))
	u.Rounds++
	return u.Target.Choose(v)
}
