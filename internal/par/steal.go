// Work-stealing core (DESIGN.md §10).
//
// The original pool pulled single indexes from one shared atomic counter:
// correct, but every item paid one contended atomic RMW, and uneven item
// costs serialised behind the hottest cache line. The scheduler here splits
// [0, n) into one contiguous range per worker; owners pop *chunks* from the
// head of their own range (amortising the atomics and preserving the
// sequential memory walk the columnar kernels want), and a worker whose
// range runs dry steals the back half of a victim's remainder. Work only
// ever shrinks — nothing is produced mid-run — so termination is one clean
// sweep: a worker exits when every range is empty.
//
// Determinism contract: the scheduler decides only WHICH worker executes an
// index and WHEN, never what the call computes or where results land.
// Callers write to index-addressed slots (or disjoint block ranges), so
// output is byte-identical to the serial loop at every worker count —
// deterministic merge, not deterministic execution order.
package par

import (
	"sync"
	"sync/atomic"
)

// stealRange is one worker's share of the iteration space, packed into a
// single atomic word: head in the high 32 bits, tail in the low 32. Owner
// pops (advancing head) and thief steals (retreating tail) both go through
// CAS on the same word, so the two ends can move concurrently without a
// lock and without ABA hazards (ranges only shrink).
//
// The struct is padded to its own cache line: ranges sit in one array, and
// an owner hammering its head must not false-share with its neighbour.
type stealRange struct {
	hb atomic.Uint64
	_  [7]uint64 // pad to 64 bytes
}

func packRange(head, tail int) uint64 { return uint64(head)<<32 | uint64(uint32(tail)) }

func unpackRange(v uint64) (head, tail int) { return int(v >> 32), int(uint32(v)) }

// take pops up to chunk indexes from the head of the range (owner side).
func (r *stealRange) take(chunk int) (lo, hi int, ok bool) {
	for {
		v := r.hb.Load()
		head, tail := unpackRange(v)
		if head >= tail {
			return 0, 0, false
		}
		c := chunk
		if rem := tail - head; c > rem {
			c = rem
		}
		if r.hb.CompareAndSwap(v, packRange(head+c, tail)) {
			return head, head + c, true
		}
	}
}

// steal takes the back half of the range's remainder (thief side), leaving
// the front — the part whose cache lines the owner is walking toward — in
// place. Stealing half at a time keeps the number of steals logarithmic in
// the imbalance instead of linear.
func (r *stealRange) steal() (lo, hi int, ok bool) {
	for {
		v := r.hb.Load()
		head, tail := unpackRange(v)
		if head >= tail {
			return 0, 0, false
		}
		half := (tail - head + 1) / 2
		if r.hb.CompareAndSwap(v, packRange(head, tail-half)) {
			return tail - half, tail, true
		}
	}
}

// runStealing executes fn(worker, lo, hi) over [0, n) on the given number of
// workers (callers have already clamped workers to a useful count and
// handled the serial path). chunk bounds how many indexes an owner claims
// per pop; stolen spans are re-popped chunkwise by the thief through its own
// range slot, so fn never sees a span longer than chunk.
func runStealing(n, workers, chunk int, fn func(worker, lo, hi int)) {
	ranges := make([]stealRange, workers)
	// Even initial split; the first n%workers ranges get one extra index.
	per, rem := n/workers, n%workers
	start := 0
	for w := 0; w < workers; w++ {
		end := start + per
		if w < rem {
			end++
		}
		ranges[w].hb.Store(packRange(start, end))
		start = end
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 1; w < workers; w++ {
		go workerLoop(ranges, w, chunk, fn, &wg)
	}
	// The caller's goroutine is worker 0: with hot caches and no handoff
	// latency it usually drains the largest share, and the fork-join costs
	// workers-1 spawns instead of workers.
	workerLoop(ranges, 0, chunk, fn, &wg)
	wg.Wait()
}

// workerLoop drains the worker's own range, then turns thief: it scans the
// other ranges round-robin, re-homes every successful steal into its own
// (empty) slot and drains it chunkwise. It exits after a full sweep finds
// every range empty — safe precisely because work is never added.
func workerLoop(ranges []stealRange, w, chunk int, fn func(worker, lo, hi int), wg *sync.WaitGroup) {
	defer wg.Done()
	self := &ranges[w]
	for {
		for {
			lo, hi, ok := self.take(chunk)
			if !ok {
				break
			}
			fn(w, lo, hi)
		}
		stole := false
		for off := 1; off < len(ranges); off++ {
			victim := &ranges[(w+off)%len(ranges)]
			if lo, hi, ok := victim.steal(); ok {
				// Re-home the stolen span so other thieves can in turn
				// steal from us, splitting large spans cooperatively.
				self.hb.Store(packRange(lo, hi))
				stole = true
				break
			}
		}
		if !stole {
			return
		}
	}
}
