package par

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestDoCoversRangeExactlyOnce drives the scheduler across worker counts,
// sizes and (for DoBlocks) block sizes, asserting every index runs exactly
// once — the only functional contract the stealing core must keep.
func TestDoCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 65, 1000} {
		for _, workers := range []int{1, 2, 3, 4, 8, 16} {
			counts := make([]atomic.Int32, n)
			Do(n, workers, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, workers, i, got)
				}
			}
		}
	}
}

// TestDoIndexedWorkerIDsClamped pins the degenerate n < workers fix: worker
// ids must stay below min(workers, n), i.e. requesting 8 workers for 3 items
// engages at most 3 — no idle goroutines are spawned for the shortfall.
func TestDoIndexedWorkerIDsClamped(t *testing.T) {
	for _, tc := range []struct{ n, workers, maxID int }{
		{3, 8, 2},
		{1, 8, 0},
		{2, 16, 1},
		{5, 5, 4},
		{100, 4, 3},
	} {
		var maxSeen atomic.Int32
		maxSeen.Store(-1)
		DoIndexed(tc.n, tc.workers, func(worker, i int) {
			for {
				cur := maxSeen.Load()
				if int32(worker) <= cur || maxSeen.CompareAndSwap(cur, int32(worker)) {
					break
				}
			}
			if worker > tc.maxID {
				t.Errorf("n=%d workers=%d: worker id %d > %d", tc.n, tc.workers, worker, tc.maxID)
			}
		})
		if maxSeen.Load() < 0 && tc.n > 0 {
			t.Errorf("n=%d workers=%d: fn never ran", tc.n, tc.workers)
		}
	}
}

// TestDoDegenerate pins the n=0 and n=1 cases: n=0 never calls fn (and
// spawns nothing); n=1 runs exactly one call, as worker 0, synchronously on
// the caller's goroutine regardless of the requested worker count.
func TestDoDegenerate(t *testing.T) {
	DoIndexed(0, 8, func(worker, i int) {
		t.Errorf("n=0: unexpected call fn(%d, %d)", worker, i)
	})
	DoBlocks(0, 4, 8, func(worker, lo, hi int) {
		t.Errorf("n=0: unexpected block call fn(%d, %d, %d)", worker, lo, hi)
	})

	before := runtime.NumGoroutine()
	calls := 0
	DoIndexed(1, 8, func(worker, i int) {
		calls++ // unsynchronised on purpose: the n=1 fast path runs inline
		if worker != 0 || i != 0 {
			t.Errorf("n=1: got fn(%d, %d), want fn(0, 0)", worker, i)
		}
	})
	if calls != 1 {
		t.Errorf("n=1: fn ran %d times", calls)
	}
	// The serial fast path must not have left goroutines behind.
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("n=1 spawned goroutines: %d -> %d", before, after)
	}
}

// TestDoSerialPreservesOrder asserts the workers <= 1 reference path visits
// indexes in ascending order with worker id 0 — the determinism anchor every
// parallel path is compared against.
func TestDoSerialPreservesOrder(t *testing.T) {
	var order []int
	DoIndexed(100, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial path reported worker %d", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken at %d: %v", i, order[:i+1])
		}
	}
}

// TestDoBlocksCoverage asserts DoBlocks tiles [0, n) exactly: block spans
// are disjoint, in-bounds, sized to the block (except the last), and cover
// every index once — including when n % block is 0, 1 and block-1.
func TestDoBlocksCoverage(t *testing.T) {
	for _, block := range []int{1, 3, 64} {
		for _, rem := range []int{0, 1, block - 1} {
			n := 4*block + rem
			for _, workers := range []int{1, 2, 4, 9} {
				counts := make([]atomic.Int32, n)
				DoBlocks(n, block, workers, func(worker, lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("block=%d n=%d: bad span [%d,%d)", block, n, lo, hi)
						return
					}
					if hi-lo != block && hi != n {
						t.Errorf("block=%d n=%d: short interior span [%d,%d)", block, n, lo, hi)
					}
					if lo%block != 0 {
						t.Errorf("block=%d n=%d: misaligned span start %d", block, n, lo)
					}
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				})
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("block=%d n=%d workers=%d: index %d covered %d times",
							block, n, workers, i, got)
					}
				}
			}
		}
	}
}

// TestStealRange exercises the packed-word primitive directly: concurrent
// owner pops and thief steals must partition the range without loss or
// duplication.
func TestStealRange(t *testing.T) {
	const n = 1 << 14
	var r stealRange
	r.hb.Store(packRange(0, n))
	var covered [n]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(owner bool) {
			defer wg.Done()
			for {
				var lo, hi int
				var ok bool
				if owner {
					lo, hi, ok = r.take(7)
				} else {
					lo, hi, ok = r.steal()
				}
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			}
		}(g%2 == 0)
	}
	wg.Wait()
	for i := range covered {
		if got := covered[i].Load(); got != 1 {
			t.Fatalf("index %d claimed %d times", i, got)
		}
	}
}

// TestDoMatchesSerialSum is a quick-check property: for random (n, workers),
// an order-insensitive fold over fn's calls matches the serial loop — the
// scheduler may reorder but never drop, duplicate or invent work.
func TestDoMatchesSerialSum(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		workers := 1 + rng.Intn(12)
		var sum atomic.Int64
		Do(n, workers, func(i int) { sum.Add(int64(i)*3 + 1) })
		want := int64(0)
		for i := 0; i < n; i++ {
			want += int64(i)*3 + 1
		}
		return sum.Load() == want
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
