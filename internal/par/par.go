// Package par provides the worker-scheduling primitives shared by the
// engine's parallel loops. Every parallel path in the repository funnels
// through Do / DoIndexed / DoBlocks so that the Parallelism knob has one
// semantics everywhere: 0 selects runtime.GOMAXPROCS(0), 1 forces the legacy
// serial path (no goroutines at all, loop order preserved), and n > 1 runs
// on n workers.
//
// Since the round-pipeline PR the implementation is a chunked work-stealing
// scheduler (steal.go) rather than a shared atomic counter: each worker owns
// a contiguous slice of the iteration space, pops cache-friendly chunks from
// its head, and steals the back half of a straggler's remainder when its own
// range drains. Results must stay byte-identical to the serial loop at every
// worker count, which callers get by writing to index-addressed output slots
// — the scheduler only decides who computes an index, never what it computes.
package par

import "runtime"

// Workers resolves a Parallelism knob to a concrete worker count.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Do runs fn(i) for every i in [0, n). With workers <= 1 (or n <= 1) it
// degenerates to a plain serial loop in index order — the deterministic
// reference path. Otherwise min(workers, n) workers run the range with work
// stealing; fn must therefore be safe to call concurrently, and callers that
// need deterministic output collect per-index results and merge them in
// index order afterwards.
func Do(n, workers int, fn func(i int)) {
	DoIndexed(n, workers, func(_, i int) { fn(i) })
}

// DoIndexed is Do with the executing worker's id (0-based, stable for the
// call) passed alongside the item index, so callers can reuse per-worker
// scratch buffers across items without synchronisation. The serial path
// always reports worker 0. Worker ids must not influence results — only
// allocation reuse — or serial/parallel equivalence breaks.
//
// Never more than min(workers, n) workers are engaged — the degenerate
// n < workers case spawns no idle goroutines — and worker ids stay below
// that clamped count.
func DoIndexed(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	runStealing(n, workers, ownerChunk(n, workers), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// DoBlocks partitions [0, n) into blocks of the given size and runs
// fn(worker, lo, hi) once per block, [lo, hi) being the block's index range
// (the final block may be short). It is the entry point for kernels that
// want a span rather than single indexes — the columnar batch evaluator's
// row blocks — so the per-item dispatch cost vanishes into the block loop.
// Blocks are the stealing granularity: workers own contiguous runs of
// blocks and steal block runs, never splitting inside one.
//
// With workers <= 1 (or a single block) the blocks run serially in
// ascending order on worker 0 — the deterministic reference path. block <= 0
// selects one block per worker.
func DoBlocks(n, block, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if block <= 0 {
		block = (n + workers - 1) / workers
	}
	nBlocks := (n + block - 1) / block
	if workers > nBlocks {
		workers = nBlocks
	}
	span := func(worker, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*block, (b+1)*block
			if hi > n {
				hi = n
			}
			fn(worker, lo, hi)
		}
	}
	if workers <= 1 || nBlocks == 1 {
		span(0, 0, nBlocks)
		return
	}
	runStealing(nBlocks, workers, 1, span)
}

// ownerChunk sizes the owner-side pop: small enough that a straggler's
// un-popped remainder stays stealable, large enough to amortise the CAS.
// One sixteenth of a worker's fair share, floored at 1, keeps at least ~16
// steal opportunities per worker range.
func ownerChunk(n, workers int) int {
	c := n / (workers * 16)
	if c < 1 {
		c = 1
	}
	return c
}
