// Package par provides the tiny worker-pool primitive shared by the
// engine's parallel loops. Every parallel path in the repository funnels
// through Do so that the Parallelism knob has one semantics everywhere:
// 0 selects runtime.GOMAXPROCS(0), 1 forces the legacy serial path (no
// goroutines at all, loop order preserved), and n > 1 runs on n workers.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob to a concrete worker count.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Do runs fn(i) for every i in [0, n). With workers <= 1 (or n <= 1) it
// degenerates to a plain serial loop in index order — the deterministic
// reference path. Otherwise min(workers, n) goroutines pull indexes from a
// shared atomic counter until the range is exhausted; fn must therefore be
// safe to call concurrently, and callers that need deterministic output
// collect per-index results and merge them in index order afterwards.
func Do(n, workers int, fn func(i int)) {
	DoIndexed(n, workers, func(_, i int) { fn(i) })
}

// DoIndexed is Do with the executing worker's id (0-based, stable for the
// call) passed alongside the item index, so callers can reuse per-worker
// scratch buffers across items without synchronisation. The serial path
// always reports worker 0. Worker ids must not influence results — only
// allocation reuse — or serial/parallel equivalence breaks.
func DoIndexed(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
