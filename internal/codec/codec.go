// Package codec provides a stable JSON representation for QFE's data model —
// values, schemas, relations, databases, cell edits and SPJ queries. It is
// the wire format of the qfe-server HTTP API and the persistence format for
// session snapshots (sessions survive process restarts by serializing their
// state through this package; see internal/core's Snapshot/Restore).
//
// Every Encode*/Decode* pair round-trips exactly: decoding an encoded value
// yields a structurally identical one (relation.Value keys, algebra.Query
// keys and relation fingerprints are preserved). The DTO types are plain
// structs with json tags so callers can embed them in larger messages.
//
// Snapshots never persist kernel hashes (relation.Relation.Hash64,
// db.Joined.ContentHash, algebra.Query.Fingerprint): those involve
// process-local string-interner ids and memoised state, and are recomputed
// lazily after restore. Only the canonical string forms (keys, fingerprint
// strings) are stable across processes.
package codec

import (
	"fmt"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// Value is the JSON form of relation.Value. Exactly one of the payload
// fields is set, selected by Kind.
type Value struct {
	Kind  string   `json:"kind"` // "null", "int", "float", "string", "bool"
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
}

// EncodeValue converts a relation.Value to its JSON form.
func EncodeValue(v relation.Value) Value {
	switch v.Kind {
	case relation.KindInt:
		i := v.I
		return Value{Kind: "int", Int: &i}
	case relation.KindFloat:
		f := v.F
		return Value{Kind: "float", Float: &f}
	case relation.KindString:
		s := v.S
		return Value{Kind: "string", Str: &s}
	case relation.KindBool:
		b := v.B
		return Value{Kind: "bool", Bool: &b}
	default:
		return Value{Kind: "null"}
	}
}

// DecodeValue converts the JSON form back to a relation.Value.
func DecodeValue(v Value) (relation.Value, error) {
	switch v.Kind {
	case "null":
		return relation.Null(), nil
	case "int":
		if v.Int == nil {
			return relation.Value{}, fmt.Errorf("codec: int value without payload")
		}
		return relation.Int(*v.Int), nil
	case "float":
		if v.Float == nil {
			return relation.Value{}, fmt.Errorf("codec: float value without payload")
		}
		return relation.Float(*v.Float), nil
	case "string":
		if v.Str == nil {
			return relation.Value{}, fmt.Errorf("codec: string value without payload")
		}
		return relation.Str(*v.Str), nil
	case "bool":
		if v.Bool == nil {
			return relation.Value{}, fmt.Errorf("codec: bool value without payload")
		}
		return relation.Bool(*v.Bool), nil
	default:
		return relation.Value{}, fmt.Errorf("codec: unknown value kind %q", v.Kind)
	}
}

// Column is the JSON form of relation.Column.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"` // relation.Kind name: "int", "float", ...
}

func encodeKind(k relation.Kind) string { return k.String() }

func decodeKind(s string) (relation.Kind, error) {
	switch s {
	case "null":
		return relation.KindNull, nil
	case "int":
		return relation.KindInt, nil
	case "float":
		return relation.KindFloat, nil
	case "string":
		return relation.KindString, nil
	case "bool":
		return relation.KindBool, nil
	default:
		return 0, fmt.Errorf("codec: unknown kind %q", s)
	}
}

// Relation is the JSON form of relation.Relation.
type Relation struct {
	Name   string    `json:"name"`
	Schema []Column  `json:"schema"`
	Tuples [][]Value `json:"tuples"`
}

// EncodeRelation converts a relation to its JSON form.
func EncodeRelation(r *relation.Relation) Relation {
	out := Relation{Name: r.Name, Schema: make([]Column, len(r.Schema))}
	for i, c := range r.Schema {
		out.Schema[i] = Column{Name: c.Name, Type: encodeKind(c.Type)}
	}
	out.Tuples = make([][]Value, len(r.Tuples))
	for ti, t := range r.Tuples {
		row := make([]Value, len(t))
		for i, v := range t {
			row[i] = EncodeValue(v)
		}
		out.Tuples[ti] = row
	}
	return out
}

// DecodeRelation converts the JSON form back to a relation.
func DecodeRelation(r Relation) (*relation.Relation, error) {
	schema := make(relation.Schema, len(r.Schema))
	for i, c := range r.Schema {
		k, err := decodeKind(c.Type)
		if err != nil {
			return nil, fmt.Errorf("codec: relation %s column %s: %w", r.Name, c.Name, err)
		}
		schema[i] = relation.Column{Name: c.Name, Type: k}
	}
	out := relation.New(r.Name, schema)
	out.Tuples = make([]relation.Tuple, len(r.Tuples))
	for ti, row := range r.Tuples {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("codec: relation %s row %d: arity %d != schema arity %d",
				r.Name, ti, len(row), len(schema))
		}
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			dv, err := DecodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("codec: relation %s row %d col %d: %w", r.Name, ti, i, err)
			}
			t[i] = dv
		}
		out.Tuples[ti] = t
	}
	return out, nil
}

// Key is the JSON form of a primary-key constraint.
type Key struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
}

// ForeignKey is the JSON form of db.ForeignKey.
type ForeignKey struct {
	ChildTable    string   `json:"childTable"`
	ChildColumns  []string `json:"childColumns"`
	ParentTable   string   `json:"parentTable"`
	ParentColumns []string `json:"parentColumns"`
}

// Database is the JSON form of db.Database.
type Database struct {
	Tables      []Relation   `json:"tables"`
	PrimaryKeys []Key        `json:"primaryKeys,omitempty"`
	ForeignKeys []ForeignKey `json:"foreignKeys,omitempty"`
}

// EncodeDatabase converts a database to its JSON form.
func EncodeDatabase(d *db.Database) Database {
	out := Database{}
	for _, t := range d.Tables() {
		out.Tables = append(out.Tables, EncodeRelation(t))
	}
	for _, pk := range d.PrimaryKeys {
		out.PrimaryKeys = append(out.PrimaryKeys, Key{Table: pk.Table,
			Columns: append([]string(nil), pk.Columns...)})
	}
	for _, fk := range d.ForeignKeys {
		out.ForeignKeys = append(out.ForeignKeys, ForeignKey{
			ChildTable:    fk.ChildTable,
			ChildColumns:  append([]string(nil), fk.ChildColumns...),
			ParentTable:   fk.ParentTable,
			ParentColumns: append([]string(nil), fk.ParentColumns...),
		})
	}
	return out
}

// DecodeDatabase converts the JSON form back to a database.
func DecodeDatabase(d Database) (*db.Database, error) {
	out := db.New()
	for _, t := range d.Tables {
		rel, err := DecodeRelation(t)
		if err != nil {
			return nil, err
		}
		if err := out.AddTable(rel); err != nil {
			return nil, fmt.Errorf("codec: %w", err)
		}
	}
	for _, pk := range d.PrimaryKeys {
		out.AddPrimaryKey(pk.Table, pk.Columns...)
	}
	for _, fk := range d.ForeignKeys {
		out.AddForeignKey(fk.ChildTable, fk.ChildColumns, fk.ParentTable, fk.ParentColumns)
	}
	return out, nil
}

// CellEdit is the JSON form of db.CellEdit.
type CellEdit struct {
	Table  string `json:"table"`
	Row    int    `json:"row"`
	Column string `json:"column"`
	Value  Value  `json:"value"`
}

// EncodeEdits converts cell edits to their JSON form.
func EncodeEdits(edits []db.CellEdit) []CellEdit {
	out := make([]CellEdit, len(edits))
	for i, e := range edits {
		out[i] = CellEdit{Table: e.Table, Row: e.Row, Column: e.Column,
			Value: EncodeValue(e.Value)}
	}
	return out
}

// DecodeEdits converts the JSON form back to cell edits.
func DecodeEdits(edits []CellEdit) ([]db.CellEdit, error) {
	out := make([]db.CellEdit, len(edits))
	for i, e := range edits {
		v, err := DecodeValue(e.Value)
		if err != nil {
			return nil, fmt.Errorf("codec: edit %d: %w", i, err)
		}
		out[i] = db.CellEdit{Table: e.Table, Row: e.Row, Column: e.Column, Value: v}
	}
	return out, nil
}

// Term is the JSON form of algebra.Term.
type Term struct {
	Attr  string  `json:"attr"`
	Op    string  `json:"op"` // SQL spelling: "=", "<>", "<", "<=", ">", ">=", "IN", "NOT IN"
	Const *Value  `json:"const,omitempty"`
	Set   []Value `json:"set,omitempty"`
}

func decodeOp(s string) (algebra.Op, error) {
	switch s {
	case "=":
		return algebra.OpEQ, nil
	case "<>", "!=":
		return algebra.OpNE, nil
	case "<":
		return algebra.OpLT, nil
	case "<=":
		return algebra.OpLE, nil
	case ">":
		return algebra.OpGT, nil
	case ">=":
		return algebra.OpGE, nil
	case "IN":
		return algebra.OpIn, nil
	case "NOT IN":
		return algebra.OpNotIn, nil
	default:
		return 0, fmt.Errorf("codec: unknown operator %q", s)
	}
}

// Query is the JSON form of algebra.Query. Pred is DNF: an OR of ANDs.
type Query struct {
	Name       string   `json:"name,omitempty"`
	Tables     []string `json:"tables"`
	Projection []string `json:"projection"`
	Pred       [][]Term `json:"pred,omitempty"`
	Distinct   bool     `json:"distinct,omitempty"`
	// SQL is the rendered statement, included for human consumers of the
	// HTTP API. DecodeQuery ignores it (the structured fields are
	// authoritative).
	SQL string `json:"sql,omitempty"`
}

// EncodeQuery converts a query to its JSON form.
func EncodeQuery(q *algebra.Query) Query {
	out := Query{
		Name:       q.Name,
		Tables:     append([]string(nil), q.Tables...),
		Projection: append([]string(nil), q.Projection...),
		Distinct:   q.Distinct,
		SQL:        q.SQL(),
	}
	for _, conj := range q.Pred {
		jc := make([]Term, len(conj))
		for i, t := range conj {
			jt := Term{Attr: t.Attr, Op: t.Op.String()}
			if t.Op == algebra.OpIn || t.Op == algebra.OpNotIn {
				jt.Set = make([]Value, len(t.Set))
				for si, v := range t.Set {
					jt.Set[si] = EncodeValue(v)
				}
			} else {
				cv := EncodeValue(t.Const)
				jt.Const = &cv
			}
			jc[i] = jt
		}
		out.Pred = append(out.Pred, jc)
	}
	return out
}

// DecodeQuery converts the JSON form back to a query.
func DecodeQuery(q Query) (*algebra.Query, error) {
	out := &algebra.Query{
		Name:       q.Name,
		Tables:     append([]string(nil), q.Tables...),
		Projection: append([]string(nil), q.Projection...),
		Distinct:   q.Distinct,
	}
	for ci, conj := range q.Pred {
		ac := make(algebra.Conjunct, 0, len(conj))
		for ti, t := range conj {
			op, err := decodeOp(t.Op)
			if err != nil {
				return nil, fmt.Errorf("codec: query %s conjunct %d term %d: %w", q.Name, ci, ti, err)
			}
			if op == algebra.OpIn || op == algebra.OpNotIn {
				set := make([]relation.Value, len(t.Set))
				for si, v := range t.Set {
					set[si], err = DecodeValue(v)
					if err != nil {
						return nil, fmt.Errorf("codec: query %s conjunct %d term %d: %w", q.Name, ci, ti, err)
					}
				}
				ac = append(ac, algebra.NewSetTerm(t.Attr, op, set))
			} else {
				if t.Const == nil {
					return nil, fmt.Errorf("codec: query %s conjunct %d term %d: scalar operator without constant", q.Name, ci, ti)
				}
				c, err := DecodeValue(*t.Const)
				if err != nil {
					return nil, fmt.Errorf("codec: query %s conjunct %d term %d: %w", q.Name, ci, ti, err)
				}
				ac = append(ac, algebra.NewTerm(t.Attr, op, c))
			}
		}
		out.Pred = append(out.Pred, ac)
	}
	return out, nil
}

// EncodeQueries maps EncodeQuery over a slice.
func EncodeQueries(qs []*algebra.Query) []Query {
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = EncodeQuery(q)
	}
	return out
}

// DecodeQueries maps DecodeQuery over a slice.
func DecodeQueries(qs []Query) ([]*algebra.Query, error) {
	out := make([]*algebra.Query, len(qs))
	for i, q := range qs {
		dq, err := DecodeQuery(q)
		if err != nil {
			return nil, err
		}
		out[i] = dq
	}
	return out, nil
}
