package codec

import (
	"encoding/json"
	"math"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/db"
	"qfe/internal/relation"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []relation.Value{
		relation.Null(),
		relation.Int(0),
		relation.Int(-42),
		relation.Int(math.MaxInt64),
		relation.Float(3.14),
		relation.Float(-0.001),
		relation.Float(1e300),
		relation.Str(""),
		relation.Str("O'Brien"),
		relation.Str("line\nbreak \"quoted\" ünïcode"),
		relation.Bool(true),
		relation.Bool(false),
	}
	for _, v := range vals {
		enc := EncodeValue(v)
		data, err := json.Marshal(enc)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var dec Value
		if err := json.Unmarshal(data, &dec); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got, err := DecodeValue(dec)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got.Key() != v.Key() || got.Kind != v.Kind {
			t.Errorf("round-trip %v -> %v", v, got)
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	bad := []Value{
		{Kind: "int"},     // missing payload
		{Kind: "float"},   // missing payload
		{Kind: "string"},  // missing payload
		{Kind: "bool"},    // missing payload
		{Kind: "decimal"}, // unknown kind
		{Kind: ""},        // empty kind
	}
	for _, v := range bad {
		if _, err := DecodeValue(v); err == nil {
			t.Errorf("DecodeValue(%+v) should fail", v)
		}
	}
}

func sampleRelation() *relation.Relation {
	r := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"rate", relation.KindFloat, "active", relation.KindBool))
	r.Append(
		relation.NewTuple(1, "Alice", 3.5, true),
		relation.NewTuple(2, "Bob", 4.25, false),
	)
	r.Tuples = append(r.Tuples, relation.Tuple{
		relation.Int(3), relation.Null(), relation.Float(0), relation.Bool(true)})
	return r
}

func TestRelationRoundTrip(t *testing.T) {
	r := sampleRelation()
	data, err := json.Marshal(EncodeRelation(r))
	if err != nil {
		t.Fatal(err)
	}
	var dec Relation
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRelation(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != r.Name || !got.Schema.Equal(r.Schema) {
		t.Errorf("schema/name changed: %v vs %v", got.Schema, r.Schema)
	}
	if got.Fingerprint() != r.Fingerprint() {
		t.Errorf("fingerprint changed")
	}
	if got.Hash64() != r.Hash64() {
		t.Errorf("content hash changed (order must be preserved)")
	}
}

func TestDecodeRelationArityMismatch(t *testing.T) {
	enc := EncodeRelation(sampleRelation())
	enc.Tuples[0] = enc.Tuples[0][:2]
	if _, err := DecodeRelation(enc); err == nil {
		t.Error("short row should fail")
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	d := db.New()
	d.MustAddTable(sampleRelation())
	dept := relation.New("Dept", relation.NewSchema("did", relation.KindInt))
	dept.Append(relation.NewTuple(1))
	d.MustAddTable(dept)
	d.AddPrimaryKey("Employee", "Eid")
	d.AddForeignKey("Employee", []string{"Eid"}, "Dept", []string{"did"})

	data, err := json.Marshal(EncodeDatabase(d))
	if err != nil {
		t.Fatal(err)
	}
	var dec Database
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDatabase(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TableNames()) != 2 || got.TableNames()[0] != "Employee" {
		t.Errorf("table order changed: %v", got.TableNames())
	}
	if got.Table("Employee").Fingerprint() != d.Table("Employee").Fingerprint() {
		t.Error("table content changed")
	}
	if len(got.PrimaryKeys) != 1 || len(got.ForeignKeys) != 1 {
		t.Errorf("constraints lost: %+v %+v", got.PrimaryKeys, got.ForeignKeys)
	}
	if got.ForeignKeys[0].String() != d.ForeignKeys[0].String() {
		t.Errorf("FK changed: %s vs %s", got.ForeignKeys[0], d.ForeignKeys[0])
	}
}

func TestEditsRoundTrip(t *testing.T) {
	edits := []db.CellEdit{
		{Table: "Employee", Row: 1, Column: "salary", Value: relation.Int(4500)},
		{Table: "Employee", Row: 0, Column: "name", Value: relation.Str("Eve")},
	}
	data, err := json.Marshal(EncodeEdits(edits))
	if err != nil {
		t.Fatal(err)
	}
	var dec []CellEdit
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEdits(dec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edits {
		if got[i].String() != edits[i].String() {
			t.Errorf("edit %d: %s vs %s", i, got[i], edits[i])
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	queries := []*algebra.Query{
		{
			Name:       "Q1",
			Tables:     []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred: algebra.Predicate{algebra.Conjunct{
				algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))}},
		},
		{
			Name:       "Qset",
			Tables:     []string{"Employee", "Dept"},
			Projection: []string{"Employee.name", "Dept.dname"},
			Distinct:   true,
			Pred: algebra.Predicate{
				algebra.Conjunct{
					algebra.NewSetTerm("Employee.dept", algebra.OpIn,
						[]relation.Value{relation.Str("IT"), relation.Str("Sales")}),
					algebra.NewTerm("Employee.salary", algebra.OpLE, relation.Float(99.5)),
				},
				algebra.Conjunct{
					algebra.NewSetTerm("Employee.gender", algebra.OpNotIn,
						[]relation.Value{relation.Str("M")}),
				},
			},
		},
		{Name: "Qtrue", Tables: []string{"T"}, Projection: []string{"T.a"}},
	}
	for _, q := range queries {
		data, err := json.Marshal(EncodeQuery(q))
		if err != nil {
			t.Fatal(err)
		}
		var dec Query
		if err := json.Unmarshal(data, &dec); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeQuery(dec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key() != q.Key() {
			t.Errorf("%s: key changed\n%q\n%q", q.Name, q.Key(), got.Key())
		}
		if got.SQL() != q.SQL() {
			t.Errorf("%s: SQL changed: %s vs %s", q.Name, got.SQL(), q.SQL())
		}
	}
}

func TestDecodeQueryErrors(t *testing.T) {
	if _, err := DecodeQuery(Query{Tables: []string{"T"},
		Pred: [][]Term{{{Attr: "T.a", Op: "~"}}}}); err == nil {
		t.Error("unknown operator should fail")
	}
	if _, err := DecodeQuery(Query{Tables: []string{"T"},
		Pred: [][]Term{{{Attr: "T.a", Op: "="}}}}); err == nil {
		t.Error("scalar op without constant should fail")
	}
}

func TestEncodeQueryIncludesSQL(t *testing.T) {
	q := &algebra.Query{Name: "Q", Tables: []string{"T"}, Projection: []string{"T.a"}}
	if enc := EncodeQuery(q); enc.SQL != q.SQL() {
		t.Errorf("SQL = %q, want %q", enc.SQL, q.SQL())
	}
}
