package dbgen

import "qfe/internal/obs"

// Pre-resolved handles for the generator's round-phase timers (DESIGN.md
// §13). Every observation is a handful of atomic adds — the hot-path
// contract — so instrumentation never perturbs the determinism or the
// allocation profile the bench guard pins.
var (
	mRounds = obs.NewCounter("qfe_engine_rounds_total",
		"Database-generator rounds completed (one per feedback round).")
	mNoSplit = obs.NewCounter("qfe_engine_nosplit_total",
		"Generator rounds ending in ErrNoSplit (candidates indistinguishable).")
	mCandidates = obs.NewSize("qfe_engine_candidates",
		"Candidate queries handed to the generator per round (|QC|).")
	mSkylinePairs = obs.NewSize("qfe_engine_skyline_pairs",
		"Skyline (STC,DTC) pairs surviving Algorithm 3 per round (|SP|).")
	mGenerate = obs.NewLatency("qfe_engine_dbgen_seconds",
		"Whole database-generator invocation (Algorithm 2 end to end).")
	mSkyline = obs.NewLatency("qfe_engine_skyline_seconds",
		"Algorithm 3 skyline (STC,DTC) pair enumeration per round.")
	mAlg4 = obs.NewLatency("qfe_engine_alg4_seconds",
		"Algorithm 4 subset search per round (all levels).")
	mAlg4Enumerate = obs.NewLatency("qfe_engine_alg4_enumerate_seconds",
		"Algorithm 4 candidate-set enumeration stage per round.")
	mAlg4Score = obs.NewLatency("qfe_engine_alg4_score_seconds",
		"Algorithm 4 cost-model scoring stage per round.")
	mAlg4TopK = obs.NewLatency("qfe_engine_alg4_topk_seconds",
		"Algorithm 4 in-order prune/rank (top-k) stage per round.")
	mConcretize = obs.NewLatency("qfe_engine_concretize_seconds",
		"Concretization of chosen pair sets into cell edits per round.")
	mBatchEval = obs.NewLatency("qfe_engine_batch_eval_seconds",
		"Per-round candidate evaluation (cache probe + shared batch scan).")
)
