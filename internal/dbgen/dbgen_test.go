package dbgen

import (
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/cost"
	"qfe/internal/db"
	"qfe/internal/relation"
)

// example11 builds the paper's Example 1.1: Employee with QC = {Q1: gender
// = 'M', Q2: salary > 4000, Q3: dept = 'IT'}, all projecting name.
func example11(t *testing.T) (*db.Database, *db.Joined, []*algebra.Query, *relation.Relation) {
	t.Helper()
	d := db.New()
	r := relation.New("Employee", relation.NewSchema(
		"Eid", relation.KindInt, "name", relation.KindString,
		"gender", relation.KindString, "dept", relation.KindString,
		"salary", relation.KindInt))
	r.Append(
		relation.NewTuple(1, "Alice", "F", "Sales", 3700),
		relation.NewTuple(2, "Bob", "M", "IT", 4200),
		relation.NewTuple(3, "Celina", "F", "Service", 3000),
		relation.NewTuple(4, "Darren", "M", "IT", 5000),
	)
	d.MustAddTable(r)
	d.AddPrimaryKey("Employee", "Eid")

	mk := func(name string, term algebra.Term) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred:       algebra.Predicate{algebra.Conjunct{term}}}
	}
	qc := []*algebra.Query{
		mk("Q1", algebra.NewTerm("Employee.gender", algebra.OpEQ, relation.Str("M"))),
		mk("Q2", algebra.NewTerm("Employee.salary", algebra.OpGT, relation.Int(4000))),
		mk("Q3", algebra.NewTerm("Employee.dept", algebra.OpEQ, relation.Str("IT"))),
	}
	res := relation.New("R", relation.NewSchema("name", relation.KindString)).
		Append(relation.NewTuple("Bob"), relation.NewTuple("Darren"))
	j, err := db.JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, j, qc, res
}

func testOptions() Options {
	o := DefaultOptions()
	o.Budget = Budget{MaxPairs: 100000} // deterministic for tests
	return o
}

func TestGenerateSplitsExample11(t *testing.T) {
	d, j, qc, r := example11(t)
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partition) < 2 {
		t.Fatalf("D' must split QC, got partition %v", res.Partition)
	}
	total := 0
	for _, p := range res.Partition {
		total += len(p)
	}
	if total != 3 {
		t.Errorf("partition covers %d queries, want 3", total)
	}
	if len(res.Edits) == 0 {
		t.Error("expected at least one cell edit")
	}
	// The partition must be concretely correct: evaluate every query on D'
	// and check group consistency.
	for bi, grp := range res.Partition {
		var fp string
		for gi, qi := range grp {
			out, err := qc[qi].Evaluate(res.DB)
			if err != nil {
				t.Fatal(err)
			}
			if gi == 0 {
				fp = out.Fingerprint()
				if out.Fingerprint() != res.Results[bi].Fingerprint() {
					t.Errorf("block %d representative result mismatch", bi)
				}
			} else if out.Fingerprint() != fp {
				t.Errorf("block %d: %s and %s disagree on D'", bi, qc[grp[0]].Name, qc[qi].Name)
			}
		}
	}
	// Across blocks results differ.
	seen := map[string]bool{}
	for _, r := range res.Results {
		fp := r.Fingerprint()
		if seen[fp] {
			t.Error("two blocks share a result — partition is wrong")
		}
		seen[fp] = true
	}
	// Costs populated.
	if res.DBCost != len(res.Edits) {
		t.Errorf("DBCost = %d, want %d", res.DBCost, len(res.Edits))
	}
	if res.NumRelations != 1 {
		t.Errorf("NumRelations = %d, want 1", res.NumRelations)
	}
	if res.ResultCost <= 0 {
		t.Errorf("ResultCost = %d, want > 0 (results differ from R)", res.ResultCost)
	}
}

func TestGeneratePrefersSmallEdits(t *testing.T) {
	d, j, qc, r := example11(t)
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's D1 modifies a single attribute value; the cost model
	// should keep edits minimal here too.
	if res.DBCost > 2 {
		t.Errorf("DBCost = %d; expected a one- or two-cell modification", res.DBCost)
	}
}

func TestSkylinePairsNonEmptyAndScored(t *testing.T) {
	d, j, qc, r := example11(t)
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	sp, stats := g.SkylinePairs()
	if len(sp) == 0 {
		t.Fatal("no skyline pairs")
	}
	if stats.Enumerated < len(sp) {
		t.Errorf("enumerated %d < |SP| %d", stats.Enumerated, len(sp))
	}
	for _, p := range sp {
		if len(p.Sizes) < 2 {
			t.Errorf("skyline pair does not split: sizes %v", p.Sizes)
		}
		if p.Pair.EditCost < 1 {
			t.Errorf("pair with zero edit cost")
		}
	}
	// x should be defined here: binary partitions of {Q1,Q2,Q3} exist.
	if stats.X < 1 {
		t.Errorf("x = %d, want >= 1", stats.X)
	}
}

func TestBudgetTruncatesEnumeration(t *testing.T) {
	d, j, qc, r := example11(t)
	opts := testOptions()
	opts.Budget = Budget{MaxPairs: 3}
	g, err := New(d, j, qc, r, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := g.SkylinePairs()
	if stats.Enumerated > 3 {
		t.Errorf("budget of 3 pairs exceeded: %d", stats.Enumerated)
	}
	if !stats.Truncated {
		t.Error("truncation flag not set")
	}
}

func TestPickSubsetsRanked(t *testing.T) {
	d, j, qc, r := example11(t)
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	sp, stats := g.SkylinePairs()
	sets := g.PickSubsets(sp, stats.X)
	if len(sets) == 0 {
		t.Fatal("no candidate sets")
	}
	for i := 1; i < len(sets); i++ {
		if sets[i].Cost < sets[i-1].Cost {
			t.Error("candidate sets not ranked by cost")
		}
	}
	for _, cs := range sets {
		if len(cs.Pairs) != len(cs.Indices) {
			t.Error("pairs/indices mismatch")
		}
	}
}

func TestGenerateNoSplitForEquivalentQueries(t *testing.T) {
	d, j, _, r := example11(t)
	// Two syntactically different but semantically identical predicates
	// over the integer domain: salary > 4000 vs salary >= 4001.
	mk := func(name string, op algebra.Op, c int64) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"Employee"},
			Projection: []string{"Employee.name"},
			Pred: algebra.Predicate{algebra.Conjunct{
				algebra.NewTerm("Employee.salary", op, relation.Int(c))}}}
	}
	qc := []*algebra.Query{mk("A", algebra.OpGT, 4000), mk("B", algebra.OpGE, 4001)}
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(); err == nil {
		t.Fatal("equivalent queries must yield ErrNoSplit")
	}
}

func TestConcretizeRespectsPrimaryKey(t *testing.T) {
	// Force a scenario where the only distinguishing attribute is the
	// primary key; the generator must avoid creating duplicates.
	d := db.New()
	r := relation.New("T", relation.NewSchema("id", relation.KindInt, "x", relation.KindString))
	r.Append(
		relation.NewTuple(1, "a"),
		relation.NewTuple(2, "a"),
		relation.NewTuple(3, "b"),
	)
	d.MustAddTable(r)
	d.AddPrimaryKey("T", "id")
	j, err := db.JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, op algebra.Op, c int64) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"T"}, Projection: []string{"T.x"},
			Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("T.id", op, relation.Int(c))}}}
	}
	qc := []*algebra.Query{mk("A", algebra.OpLE, 2), mk("B", algebra.OpLT, 3)}
	res := relation.New("R", relation.NewSchema("x", relation.KindString)).
		Append(relation.NewTuple("a"), relation.NewTuple("a"))
	g, err := New(d, j, qc, res, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Generate()
	if err != nil {
		// Equivalent over integers? A: id<=2, B: id<3 — identical on ints;
		// ErrNoSplit is the correct answer then.
		return
	}
	if err := out.DB.Validate(); err != nil {
		t.Errorf("generated D' violates constraints: %v", err)
	}
}

func TestGeneratedDBAlwaysValid(t *testing.T) {
	d, j, qc, r := example11(t)
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.DB.Validate(); err != nil {
		t.Errorf("D' violates constraints: %v", err)
	}
	// D' must differ from D in exactly DBCost cells.
	diff := 0
	for ti, tab := range d.Tables() {
		newTab := res.DB.Tables()[ti]
		for ri := range tab.Tuples {
			diff += tab.Tuples[ri].DiffCount(newTab.Tuples[ri])
		}
	}
	if diff != res.DBCost {
		t.Errorf("D/D' differ in %d cells, DBCost says %d", diff, res.DBCost)
	}
}

func TestSideEffectsAccountedInPartition(t *testing.T) {
	// Two-table database where the preferred modification has fan-out > 1:
	// the concrete partition must still be consistent with evaluation.
	d := db.New()
	t1 := relation.New("P", relation.NewSchema("pid", relation.KindInt, "cat", relation.KindString))
	t1.Append(relation.NewTuple(1, "x"), relation.NewTuple(2, "y"))
	t2 := relation.New("C", relation.NewSchema("cid", relation.KindInt, "pid", relation.KindInt,
		"v", relation.KindInt))
	t2.Append(
		relation.NewTuple(1, 1, 10),
		relation.NewTuple(2, 1, 20),
		relation.NewTuple(3, 2, 30),
	)
	d.MustAddTable(t1)
	d.MustAddTable(t2)
	d.AddPrimaryKey("P", "pid")
	d.AddPrimaryKey("C", "cid")
	d.AddForeignKey("C", []string{"pid"}, "P", []string{"pid"})
	j, err := db.JoinAll(d)
	if err != nil {
		t.Fatal(err)
	}
	mkQ := func(name, attr string, op algebra.Op, v relation.Value) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"P", "C"}, Projection: []string{"C.v"},
			Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm(attr, op, v)}}}
	}
	qc := []*algebra.Query{
		mkQ("A", "P.cat", algebra.OpEQ, relation.Str("x")),
		mkQ("B", "C.v", algebra.OpLE, relation.Int(20)),
	}
	res := relation.New("R", relation.NewSchema("v", relation.KindInt)).
		Append(relation.NewTuple(10), relation.NewTuple(20))
	g, err := New(d, j, qc, res, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for bi, grp := range out.Partition {
		for _, qi := range grp {
			direct, err := qc[qi].Evaluate(out.DB)
			if err != nil {
				t.Fatal(err)
			}
			if direct.Fingerprint() != out.Results[bi].Fingerprint() {
				t.Errorf("query %s: incremental result diverges from direct evaluation (side effects mishandled)",
					qc[qi].Name)
			}
		}
	}
}

func TestEnumerateScoredPairsCap(t *testing.T) {
	d, j, qc, r := example11(t)
	g, err := New(d, j, qc, r, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ps := g.EnumerateScoredPairs(5)
	if len(ps) > 5 {
		t.Errorf("cap violated: %d", len(ps))
	}
	for _, p := range ps {
		if len(p.Sizes) < 2 {
			t.Error("non-splitting pair returned")
		}
	}
}

func TestCostParamsFlowThrough(t *testing.T) {
	d, j, qc, r := example11(t)
	opts := testOptions()
	opts.Cost = cost.Params{Beta: 5}
	g, err := New(d, j, qc, r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(); err != nil {
		t.Fatalf("β=5 run failed: %v", err)
	}
}

func TestNewRejectsEmptyQC(t *testing.T) {
	d, j, _, r := example11(t)
	if _, err := New(d, j, nil, r, testOptions()); err == nil {
		t.Error("empty QC should be rejected")
	}
}
