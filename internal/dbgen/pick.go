package dbgen

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"qfe/internal/cost"
	"qfe/internal/par"
	"qfe/internal/relation"
	"qfe/internal/tupleclass"
)

// CandidateSet is a subset of skyline pairs evaluated by the cost model.
type CandidateSet struct {
	Indices []int // positions in the SP slice, ascending
	Pairs   []tupleclass.Pair
	Balance float64
	Cost    float64
	Subsets int // predicted number of partition blocks
}

// evalCtx caches, per skyline pair, everything the cost model needs so that
// evaluating a candidate set is pure byte arithmetic: the Lemma 5.1 case
// code per query, the replace-cost per query, the pair's edit cost and the
// base tables it touches. Algorithm 4 evaluates thousands of sets; without
// this cache every evaluation would re-run predicate matching.
type evalCtx struct {
	g      *Generator
	sp     []ScoredPair
	x      int
	codes  [][]uint8 // [pair][query] case code
	codesT []uint8   // [query*np+pair] transposed case codes (scan-friendly)
	repl   [][]int   // [pair][query] modify cost when code == replace
	edit   []int     // [pair] minEdit(s,d)
	tables [][]string
	nq     int
	np     int
	arityR int
	// srcID[pair] resolves the pair's source class to its index in
	// g.srcClasses (by class hash, Equal-verified), -1 when the class has no
	// inhabitants; srcCap[class] is the inhabitant count. Feasibility checks
	// then count duplicates over small index slices instead of building a
	// map keyed by Class.Key strings per candidate set.
	srcID  []int
	srcCap []int
}

func (g *Generator) newEvalCtx(sp []ScoredPair, x, workers int) *evalCtx {
	ctx := &evalCtx{g: g, sp: sp, x: x, nq: len(g.Queries), np: len(sp), arityR: g.R.Arity()}
	ctx.codes = make([][]uint8, len(sp))
	ctx.repl = make([][]int, len(sp))
	ctx.edit = make([]int, len(sp))
	ctx.tables = make([][]string, len(sp))
	byHash := make(map[uint64][]int, len(g.srcClasses))
	for si := range g.srcClasses {
		h := g.srcClasses[si].Class.Hash64()
		byHash[h] = append(byHash[h], si)
	}
	ctx.srcCap = make([]int, len(g.srcClasses))
	for si := range g.srcClasses {
		ctx.srcCap[si] = len(g.srcClasses[si].Rows)
	}
	ctx.srcID = make([]int, len(sp))
	for i := range sp {
		ctx.srcID[i] = -1
		for _, si := range byHash[sp[i].Pair.Src.Hash64()] {
			if g.srcClasses[si].Class.Equal(sp[i].Pair.Src) {
				ctx.srcID[i] = si
				break
			}
		}
	}
	// Per-pair slots are written by disjoint indexes, and CaseOf/ReplaceCost
	// only read the space, so building the cache parallelises trivially.
	par.Do(len(sp), workers, func(pi int) {
		p := sp[pi]
		ctx.edit[pi] = p.Pair.EditCost
		codes := make([]uint8, ctx.nq)
		repl := make([]int, ctx.nq)
		for qi := 0; qi < ctx.nq; qi++ {
			codes[qi] = g.Space.CaseOf(p.Pair, qi)
			repl[qi] = g.Space.ReplaceCost(p.Pair, qi)
		}
		ctx.codes[pi] = codes
		ctx.repl[pi] = repl
		tset := map[string]bool{}
		for _, a := range p.Pair.ChangedAttrs() {
			tset[g.Joined.Cols[g.Space.Parts[a].Col].Table] = true
		}
		for t := range tset {
			ctx.tables[pi] = append(ctx.tables[pi], t)
		}
	})
	// Transposed copy of the case codes: evaluate reads all of one query's
	// codes across a set's pairs, which in [pair][query] layout touches one
	// cache line per pair; [query][pair] makes the inner loop walk one row.
	ctx.codesT = make([]uint8, ctx.nq*ctx.np)
	for pi := range sp {
		for qi := 0; qi < ctx.nq; qi++ {
			ctx.codesT[qi*ctx.np+pi] = ctx.codes[pi][qi]
		}
	}
	return ctx
}

// pblock is one result-partition block during set evaluation: the packed
// case-vector key, the block size and a representative query.
type pblock struct {
	key  uint64
	size int
	rep  int
}

// evalScratch carries the per-evaluation working buffers. Algorithm 4
// evaluates tens of thousands of sets per round; reusing one scratch per
// worker (par.DoIndexed) removes every per-evaluation allocation from the
// hot loop. Scratch contents never outlive an evaluate call — the cost
// model consumes sizes and edits by value.
type evalScratch struct {
	blocks      []pblock
	sizes       []int
	resultEdits []int
	tbls        []string
	keyBuf      []byte
}

// evaluate scores the candidate set identified by ascending SP indices.
// Sets of up to 32 pairs — every set Algorithm 4 reaches in practice — pack
// the per-query case vector into a uint64 (2 bits per pair) and group
// through a small linear-scanned slice, replacing the per-query key-string
// allocations and the map of blocks the legacy path built per evaluation.
// The cost model consumes sizes and edits through order-insensitive sums,
// so block order does not matter (the legacy path iterated a map).
func (ctx *evalCtx) evaluate(indices []int, scr *evalScratch) (costVal, balance float64, k int) {
	sizes, resultEdits := scr.sizes[:0], scr.resultEdits[:0]
	if len(indices) <= 32 {
		blocks := scr.blocks[:0]
		// Linear scan while the block count stays small (the common case:
		// partitions have a handful of blocks); an index map takes over past
		// that so diverse case vectors never go quadratic in |QC|.
		var blockIdx map[uint64]int
		for qi := 0; qi < ctx.nq; qi++ {
			var key uint64
			row := ctx.codesT[qi*ctx.np : (qi+1)*ctx.np]
			for _, pi := range indices {
				key = key<<2 | uint64(row[pi])
			}
			found := -1
			if blockIdx != nil {
				if bi, ok := blockIdx[key]; ok {
					found = bi
				}
			} else {
				for bi := range blocks {
					if blocks[bi].key == key {
						found = bi
						break
					}
				}
			}
			if found < 0 {
				blocks = append(blocks, pblock{key: key, size: 1, rep: qi})
				if blockIdx != nil {
					blockIdx[key] = len(blocks) - 1
				} else if len(blocks) > 32 {
					blockIdx = make(map[uint64]int, ctx.nq)
					for bi := range blocks {
						blockIdx[blocks[bi].key] = bi
					}
				}
			} else {
				blocks[found].size++
			}
		}
		scr.blocks = blocks
		for _, b := range blocks {
			sizes = append(sizes, b.size)
			edit := 0
			key := b.key
			for i := len(indices) - 1; i >= 0; i-- {
				switch key & 3 {
				case 1, 2: // add / remove
					edit += ctx.arityR
				case 3: // replace
					edit += ctx.repl[indices[i]][b.rep]
				}
				key >>= 2
			}
			resultEdits = append(resultEdits, edit)
		}
	} else {
		// Partition queries by their case-code vector across the set's pairs.
		type block struct {
			size int
			rep  int
		}
		blocks := map[string]*block{}
		if cap(scr.keyBuf) < len(indices) {
			scr.keyBuf = make([]byte, len(indices))
		}
		keyBuf := scr.keyBuf[:len(indices)]
		for qi := 0; qi < ctx.nq; qi++ {
			for i, pi := range indices {
				keyBuf[i] = ctx.codes[pi][qi]
			}
			k := string(keyBuf)
			b := blocks[k]
			if b == nil {
				blocks[k] = &block{size: 1, rep: qi}
			} else {
				b.size++
			}
		}
		for key, b := range blocks {
			sizes = append(sizes, b.size)
			edit := 0
			for i, pi := range indices {
				switch key[i] {
				case 1, 2: // add / remove
					edit += ctx.arityR
				case 3: // replace
					edit += ctx.repl[pi][b.rep]
				}
			}
			resultEdits = append(resultEdits, edit)
		}
	}
	dbEdit := 0
	tbls := scr.tbls[:0]
	for _, pi := range indices {
		dbEdit += ctx.edit[pi]
		for _, t := range ctx.tables[pi] {
			dup := false
			for _, u := range tbls {
				if u == t {
					dup = true
					break
				}
			}
			if !dup {
				tbls = append(tbls, t)
			}
		}
	}
	scr.sizes, scr.resultEdits, scr.tbls = sizes, resultEdits, tbls
	in := cost.Inputs{
		DBEdit:            dbEdit,
		ModifiedRelations: len(tbls),
		ModifiedTuples:    len(indices),
		ResultEdits:       resultEdits,
		SubsetSizes:       sizes,
		X:                 ctx.x,
	}
	return ctx.g.Opts.Cost.Cost(in), cost.Balance(sizes), len(sizes)
}

// scoredChild is one enumerated candidate set flowing through the scoring
// pipeline: the enumerator fills indices and parentBalance, a scorer fills
// cost/balance/subsets, and the in-order consumer reads everything.
type scoredChild struct {
	indices       []int
	parentBalance float64
	cost          float64
	balance       float64
	subsets       int
}

// childBatch is the pipeline's hand-off unit: a run of children in
// enumeration order plus a completion signal. Batching amortises channel
// operations — scoring one set costs microseconds, so per-set sends would
// drown the win in synchronisation. Batches cycle through a freelist
// (scorer.run), so the WaitGroup is reused: the consumer's Wait always
// returns before the enumerator's next Add.
type childBatch struct {
	items  []scoredChild
	scored sync.WaitGroup // 1 while a scorer owns the batch
}

// scoreBatchSize trades pipeline latency against channel traffic; 64 sets
// per batch keeps hand-off costs under ~2% of scoring time while letting
// scoring start long before a level's enumeration finishes.
const scoreBatchSize = 64

// scorer runs Algorithm 4's enumerate → score → consume sequence as
// pipelined stages connected by bounded channels (DESIGN.md §10).
//
//   - enumerate lists candidate sets in the serial evaluation order — it
//     owns the dedup table, the feasibility filter and the evaluation
//     budget, exactly as the serial sweep does;
//   - scoring spreads batches of listed sets across the worker pool, each
//     worker with its own evalScratch (evaluate is a pure function of the
//     precomputed evalCtx);
//   - consume sees every child in enumeration order with its score filled
//     in, and applies the order-sensitive rules: the pruning decision, the
//     top-k insertion, the frontier append.
//
// Because the order-sensitive stage replays the exact serial order, output
// is byte-identical to the workers = 1 path at every worker count and batch
// size — the pipeline changes when sets are scored, never what any stage
// observes. With workers <= 1 the stages collapse into one loop with no
// goroutines or channels: the deterministic reference.
type scorer struct {
	ctx       *evalCtx
	workers   int
	scratches []evalScratch    // one per worker, reused across levels
	free      chan *childBatch // recycled batches, shared across levels

	// Stage-time attribution in nanoseconds, accumulated across levels and
	// read once per PickSubsets call (observe-only; never affects control
	// flow, so determinism is untouched). In the parallel path scoreNs sums
	// busy time across workers and enumNs includes back-pressure waits —
	// these are attribution metrics, not a wall-clock decomposition.
	enumNs, scoreNs, consumeNs atomic.Int64
}

func newScorer(ctx *evalCtx, workers int) *scorer {
	return &scorer{
		ctx:       ctx,
		workers:   workers,
		scratches: make([]evalScratch, max(workers, 1)),
		// Capacity exceeds the maximum number of distinct batches in flight
		// (cur + ordered's buffer + the consumer's one), so returning a
		// consumed batch never blocks and a session's levels cycle the same
		// handful of batches.
		free: make(chan *childBatch, 3*workers+2),
	}
}

// run drives one level through the pipeline. enumerate must call emit once
// per candidate set, in the serial evaluation order; consume is called once
// per emitted set, in that same order, on the caller's goroutine. The
// *scoredChild passed to consume is only valid for the duration of the call
// — the serial path reuses one struct and the parallel path recycles batch
// slots — so consume must copy out what it keeps.
func (sc *scorer) run(enumerate func(emit func(indices []int, parentBalance float64)), consume func(ch *scoredChild)) {
	if sc.workers <= 1 {
		scr := &sc.scratches[0]
		var ch scoredChild
		runStart := time.Now()
		var scoreNs, consumeNs int64
		enumerate(func(indices []int, parentBalance float64) {
			ch = scoredChild{indices: indices, parentBalance: parentBalance}
			t0 := time.Now()
			ch.cost, ch.balance, ch.subsets = sc.ctx.evaluate(indices, scr)
			t1 := time.Now()
			consume(&ch)
			consumeNs += int64(time.Since(t1))
			scoreNs += int64(t1.Sub(t0))
		})
		sc.scoreNs.Add(scoreNs)
		sc.consumeNs.Add(consumeNs)
		if rest := int64(time.Since(runStart)) - scoreNs - consumeNs; rest > 0 {
			sc.enumNs.Add(rest)
		}
		return
	}

	// Bounded channels: work feeds the scorers, ordered preserves the
	// enumeration sequence for the consumer. Every batch is sent to work
	// BEFORE ordered, so a batch the consumer waits on is always visible to
	// some scorer — the wait cannot deadlock. Capacities bound the number of
	// in-flight batches (and so memory) without ever stalling the consumer:
	// if enumeration runs ahead it blocks, while scoring and consumption
	// drain freely. Consumed batches return through free for reuse, so a
	// level's steady state allocates nothing per batch; free's capacity
	// exceeds the maximum number in flight, so returns never block.
	work := make(chan *childBatch, sc.workers)
	ordered := make(chan *childBatch, 2*sc.workers)
	free := sc.free
	var wg sync.WaitGroup
	for w := 0; w < sc.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			scr := &sc.scratches[worker]
			for b := range work {
				t0 := time.Now()
				for i := range b.items {
					it := &b.items[i]
					it.cost, it.balance, it.subsets = sc.ctx.evaluate(it.indices, scr)
				}
				sc.scoreNs.Add(int64(time.Since(t0)))
				b.scored.Done()
			}
		}(w)
	}
	go func() {
		next := func() *childBatch {
			var b *childBatch
			select {
			case b = <-free:
				b.items = b.items[:0]
			default:
				b = &childBatch{items: make([]scoredChild, 0, scoreBatchSize)}
			}
			b.scored.Add(1)
			return b
		}
		cur := next()
		enumStart := time.Now()
		enumerate(func(indices []int, parentBalance float64) {
			cur.items = append(cur.items, scoredChild{indices: indices, parentBalance: parentBalance})
			if len(cur.items) >= scoreBatchSize {
				work <- cur
				ordered <- cur
				cur = next()
			}
		})
		sc.enumNs.Add(int64(time.Since(enumStart)))
		if len(cur.items) > 0 {
			work <- cur
			ordered <- cur
		} else {
			cur.scored.Done() // never handed to a scorer
		}
		close(work)
		close(ordered)
	}()
	for b := range ordered {
		b.scored.Wait()
		t0 := time.Now()
		for i := range b.items {
			consume(&b.items[i])
		}
		sc.consumeNs.Add(int64(time.Since(t0)))
		free <- b
	}
	wg.Wait()
}

// feasible checks that the multiset of source classes demanded by the set
// does not exceed the tuples available in each class. It counts duplicate
// source-class ids over the (small) index slice — O(k²), zero allocations.
func (ctx *evalCtx) feasible(indices []int) bool {
	for _, a := range indices {
		id := ctx.srcID[a]
		if id < 0 {
			return false
		}
		n := 0
		for _, b := range indices {
			if ctx.srcID[b] == id {
				n++
			}
		}
		if n > ctx.srcCap[id] {
			return false
		}
	}
	return true
}

// PickSubsets implements Algorithm 4 (Pick-STC-DTC-Subset) and returns
// candidate sets ranked by the configured strategy (the paper's cost model,
// or max-partitions for the §7.7 comparison): the head is the paper's Sopt;
// the tail provides fallbacks for when concretization of the optimum fails
// (side effects or integrity constraints).
//
// The search grows i-pair sets from (i−1)-pair sets, keeping only sets whose
// balance strictly improves on their parent — the paper's pruning heuristic.
// MaxFrontier additionally caps each level by balance, bounding the
// O(2^|SP|) worst case without changing behaviour on the small frontiers
// observed in practice (paper §5.4, Table 4).
//
// Each level flows through a three-stage pipeline (see scorer): a serial
// enumeration that lists the unique feasible candidate sets in the legacy
// evaluation order (up to the remaining evaluation budget), concurrent
// scoring of listed batches — evaluate is a pure function of the precomputed
// evalCtx — and a serial in-order replay that applies the pruning rule and
// ranking. Scoring of a level's early candidates overlaps enumeration of its
// later ones; only the level boundary is a sequence point, because the
// pruning rule (step 15) needs a child's own score before the child may
// parent the next level. The output is byte-identical to the serial
// algorithm at every Parallelism setting, including when MaxSetsEvaluated
// truncates the search.
func (g *Generator) PickSubsets(sp []ScoredPair, x int) []CandidateSet {
	if len(sp) == 0 {
		return nil
	}
	workers := par.Workers(g.Opts.Parallelism)
	ctx := g.newEvalCtx(sp, x, workers)
	best := newTopK(g.Opts.MaxCandidateSets, g.Opts.Strategy)
	evaluated := 0
	maxEval := g.Opts.MaxSetsEvaluated
	if maxEval <= 0 {
		maxEval = 50000
	}
	pipe := newScorer(ctx, workers)

	// Steps 1–8: singletons.
	type frontierEntry struct {
		indices []int
		balance float64
	}
	var frontier []frontierEntry
	pipe.run(func(emit func([]int, float64)) {
		for i := range sp {
			if single := []int{i}; ctx.feasible(single) {
				// Singletons have no parent; +Inf parent balance means the
				// consumer's pruning rule keeps every one, as steps 1–8 do.
				emit(single, math.Inf(1))
			}
		}
	}, func(ch *scoredChild) {
		evaluated++
		best.add(CandidateSet{Indices: ch.indices,
			Balance: ch.balance, Cost: ch.cost, Subsets: ch.subsets})
		frontier = append(frontier, frontierEntry{indices: ch.indices, balance: ch.balance})
	})

	// inSet stamps which pair indices the current parent holds; bumping the
	// generation clears it in O(1) between parents.
	inSet := make([]int, len(sp))
	generation := 0

	// Steps 9–21: grow sets while balance improves.
	for level := 2; level <= len(sp) && len(frontier) > 0 && evaluated < maxEval; level++ {
		// The enumeration stage lists this level's unique feasible children
		// in evaluation order, recording the balance of the first parent
		// reaching each (later parents are deduplicated away, as in the
		// serial sweep). Deduplication is exact: children hash through the
		// kernel fold and collisions are verified against the arena of
		// already-seen sets, so no key strings are built. The dedup table,
		// stamp array and child arena all stay on the enumerator stage —
		// scoring and replay never touch them.
		seen := newSeenSets(level, len(frontier)*len(sp))
		childBuf := make([]int, level)
		// Kept children are carved out of one arena per level instead of one
		// allocation per child.
		var childArena []int
		budget := maxEval - evaluated
		var next []frontierEntry
		pipe.run(func(emit func([]int, float64)) {
			emitted := 0
		enumerate:
			for _, op := range frontier {
				generation++
				for _, i := range op.indices {
					inSet[i] = generation
				}
				for pi := range sp {
					if inSet[pi] == generation {
						continue
					}
					// Merge pi into the sorted parent without a general sort.
					k := 0
					for _, v := range op.indices {
						if v < pi {
							childBuf[k] = v
							k++
						}
					}
					childBuf[k] = pi
					for _, v := range op.indices[k:] {
						childBuf[k+1] = v
						k++
					}
					if seen.insert(childBuf) {
						continue // already recorded (feasible or not)
					}
					if !ctx.feasible(childBuf) {
						continue
					}
					if len(childArena)+level > cap(childArena) {
						childArena = make([]int, 0, 1024*level)
					}
					base := len(childArena)
					childArena = append(childArena, childBuf...)
					emit(childArena[base:base+level:base+level], op.balance)
					emitted++
					if emitted >= budget {
						break enumerate
					}
				}
			}
		}, func(ch *scoredChild) {
			// In-order replay: prune, rank, grow the next frontier.
			evaluated++
			if ch.balance < ch.parentBalance { // strict improvement required (step 15)
				next = append(next, frontierEntry{indices: ch.indices, balance: ch.balance})
				best.add(CandidateSet{Indices: ch.indices,
					Balance: ch.balance, Cost: ch.cost, Subsets: ch.subsets})
			}
		})
		if g.Opts.MaxFrontier > 0 && len(next) > g.Opts.MaxFrontier {
			slices.SortStableFunc(next, func(a, b frontierEntry) int {
				switch {
				case a.balance < b.balance:
					return -1
				case a.balance > b.balance:
					return 1
				default:
					return 0
				}
			})
			next = next[:g.Opts.MaxFrontier]
		}
		frontier = next
	}
	g.alg4Enum = time.Duration(pipe.enumNs.Load())
	g.alg4Score = time.Duration(pipe.scoreNs.Load())
	g.alg4TopK = time.Duration(pipe.consumeNs.Load())
	mAlg4Enumerate.ObserveDuration(g.alg4Enum)
	mAlg4Score.ObserveDuration(g.alg4Score)
	mAlg4TopK.ObserveDuration(g.alg4TopK)
	return best.ranked(sp)
}

// seenSets is an exact, open-addressed dedup set of fixed-length ascending
// index tuples. Entries live flattened in one arena; the probe hashes
// through the kernel fold (relation.HashInts) and verifies equality against
// the arena on collision, so deduplication never depends on hash quality
// and builds no key strings or per-bucket slices.
type seenSets struct {
	level int
	arena []int32
	table []int32 // arena offset + 1; 0 = empty slot
	count int
}

func newSeenSets(level, expect int) *seenSets {
	size := 1024
	for size < 2*expect && size < 1<<22 {
		size <<= 1
	}
	return &seenSets{level: level, table: make([]int32, size)}
}

// insert records the set and reports whether it was already present.
func (s *seenSets) insert(set []int) bool {
	h := relation.HashInts(set)
	mask := uint64(len(s.table) - 1)
	slot := h & mask
	for {
		off := s.table[slot]
		if off == 0 {
			break
		}
		cand := s.arena[off-1 : int(off-1)+s.level]
		same := true
		for i, v := range set {
			if int(cand[i]) != v {
				same = false
				break
			}
		}
		if same {
			return true
		}
		slot = (slot + 1) & mask
	}
	off := int32(len(s.arena)) + 1
	for _, v := range set {
		s.arena = append(s.arena, int32(v))
	}
	s.table[slot] = off
	s.count++
	if 4*s.count > 3*len(s.table) {
		s.grow()
	}
	return false
}

// grow doubles the table and reinserts every arena offset.
func (s *seenSets) grow() {
	old := s.table
	s.table = make([]int32, 2*len(old))
	mask := uint64(len(s.table) - 1)
	buf := make([]int, s.level)
	for _, off := range old {
		if off == 0 {
			continue
		}
		ent := s.arena[off-1 : int(off-1)+s.level]
		for i, v := range ent {
			buf[i] = int(v)
		}
		slot := relation.HashInts(buf) & mask
		for s.table[slot] != 0 {
			slot = (slot + 1) & mask
		}
		s.table[slot] = off
	}
}

func pairsAt(sp []ScoredPair, indices []int) []tupleclass.Pair {
	out := make([]tupleclass.Pair, len(indices))
	for i, idx := range indices {
		out[i] = sp[idx].Pair
	}
	return out
}

// topK keeps the k best candidate sets under the configured strategy:
// cost model (cost, balance, size) or max-partitions (subsets desc, cost).
// Entries are kept sorted by ordered insertion — equivalent to the legacy
// append-stable-sort-truncate, since a stable sort moves a new tail element
// exactly to the first position whose occupant ranks strictly after it —
// and the Pairs of the surviving sets are only materialised at the end,
// not once per evaluated set.
type topK struct {
	k        int
	strategy Strategy
	sets     []CandidateSet
}

func newTopK(k int, s Strategy) *topK {
	if k <= 0 {
		k = 8
	}
	return &topK{k: k, strategy: s}
}

// less reports whether x ranks strictly before y under the strategy.
func (t *topK) less(x, y *CandidateSet) bool {
	if t.strategy == StrategyMaxPartitions {
		if x.Subsets != y.Subsets {
			return x.Subsets > y.Subsets
		}
	}
	if x.Cost != y.Cost {
		return x.Cost < y.Cost
	}
	if x.Balance != y.Balance {
		return x.Balance < y.Balance
	}
	return len(x.Indices) < len(y.Indices)
}

func (t *topK) add(c CandidateSet) {
	if math.IsInf(c.Cost, 1) {
		return // never consider non-splitting sets
	}
	if len(t.sets) == t.k && !t.less(&c, &t.sets[t.k-1]) {
		return // ranks at or below the current cut-off
	}
	pos := len(t.sets)
	for pos > 0 && t.less(&c, &t.sets[pos-1]) {
		pos--
	}
	if len(t.sets) < t.k {
		t.sets = append(t.sets, CandidateSet{})
	}
	copy(t.sets[pos+1:], t.sets[pos:])
	t.sets[pos] = c
}

// ranked returns the kept sets, best first, with their Pairs materialised.
func (t *topK) ranked(sp []ScoredPair) []CandidateSet {
	for i := range t.sets {
		t.sets[i].Pairs = pairsAt(sp, t.sets[i].Indices)
	}
	return t.sets
}
